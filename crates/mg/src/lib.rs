//! Generic nonlinear (FAS) multigrid machinery.
//!
//! Both flow solvers — the NSU3D-style RANS solver and the Cart3D-style
//! Euler solver — drive their level hierarchies with the same cycling
//! logic: several smoothing steps on the fine level, transfer to the next
//! coarser level (restriction of state + residual into a FAS forcing
//! function), recursion, prolongation of the coarse correction, and
//! optional post-smoothing. The W-cycle re-visits coarse levels twice per
//! entry (paper Figure 4(b)): the coarsest of `L` levels is visited
//! `2^(L-1)` times per fine-grid cycle, which is exactly what erodes
//! scalability at high CPU counts.
//!
//! Levels are solver-specific and implement [`MultigridLevel`].
//!
//! Both drivers take a `columbia_exec::ExecContext` and record the cycle
//! structure into its trace sink: one span per cycle, one child span per
//! level *visit* (so a W-cycle's `2^l` coarse revisits are individually
//! visible), with sweep counts as counters and residuals as gauges. The
//! default context's tracer is disabled and every recording call is a
//! no-op — one code path, zero overhead when off.

use columbia_exec::ExecContext;
use columbia_rt::trace::{SpanKey, Tracer};

/// Multigrid cycle type (paper Figure 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CycleType {
    /// One coarse visit per entry.
    V,
    /// Two coarse visits per entry — superior convergence and robustness;
    /// used exclusively by NSU3D in the paper.
    #[default]
    W,
}

/// One level of a solver's multigrid hierarchy.
///
/// Index 0 of a level slice is the *finest* level.
pub trait MultigridLevel {
    /// Advance the level's state with `sweeps` smoothing iterations.
    fn smooth(&mut self, sweeps: usize);

    /// RMS norm of the current residual (including FAS forcing).
    fn residual_norm(&mut self) -> f64;

    /// Initialise `coarse` from this level: restrict the state, compute the
    /// FAS forcing term, and remember the restricted state for the
    /// subsequent correction.
    fn restrict_into(&mut self, coarse: &mut Self);

    /// Apply the coarse-grid correction (`coarse state - restricted state`)
    /// to this level.
    fn prolong_from(&mut self, coarse: &Self);
}

/// Cycling parameters.
#[derive(Clone, Copy, Debug)]
pub struct CycleParams {
    /// Smoothing sweeps before restriction.
    pub pre_sweeps: usize,
    /// Smoothing sweeps after prolongation (0 reproduces the paper's
    /// "no time steps on the refinement phase" sawtooth variant).
    pub post_sweeps: usize,
    /// Sweeps on the coarsest level.
    pub coarse_sweeps: usize,
    /// V or W.
    pub cycle: CycleType,
}

impl Default for CycleParams {
    fn default() -> Self {
        CycleParams {
            pre_sweeps: 2,
            post_sweeps: 1,
            coarse_sweeps: 4,
            cycle: CycleType::W,
        }
    }
}

/// Execute one full multigrid cycle over `levels` (index 0 = finest).
///
/// When `ctx` carries an enabled tracer, the cycle structure is recorded:
/// a `mg_level` span per level *visit* (coarse W-cycle revisits appear
/// individually), `smooth_sweeps` / `restrictions` / `prolongations`
/// counters on each. The default context records nothing at no cost.
pub fn fas_cycle<L: MultigridLevel>(levels: &mut [L], params: &CycleParams, ctx: &mut ExecContext) {
    assert!(!levels.is_empty());
    cycle_recursive(levels, params, ctx.tracer(), 0);
}

fn cycle_recursive<L: MultigridLevel>(
    levels: &mut [L],
    params: &CycleParams,
    tracer: &mut Tracer,
    depth: usize,
) {
    if levels.len() == 1 {
        tracer.scoped(SpanKey::new("mg_level").level(depth), |t| {
            levels[0].smooth(params.coarse_sweeps);
            t.add("smooth_sweeps", params.coarse_sweeps as u64);
        });
        return;
    }
    let (fine_slice, rest) = levels.split_at_mut(1);
    let fine = &mut fine_slice[0];
    tracer.begin(SpanKey::new("mg_level").level(depth));
    fine.smooth(params.pre_sweeps);
    tracer.add("smooth_sweeps", params.pre_sweeps as u64);
    fine.restrict_into(&mut rest[0]);
    tracer.add("restrictions", 1);
    tracer.end();
    let visits = match params.cycle {
        CycleType::V => 1,
        CycleType::W => 2,
    };
    for _ in 0..visits {
        cycle_recursive(rest, params, tracer, depth + 1);
    }
    tracer.scoped(SpanKey::new("mg_level").level(depth), |t| {
        fine.prolong_from(&rest[0]);
        t.add("prolongations", 1);
        fine.smooth(params.post_sweeps);
        t.add("smooth_sweeps", params.post_sweeps as u64);
    });
}

/// Convergence history of a multigrid solve.
#[derive(Clone, Debug, Default)]
pub struct ConvergenceHistory {
    /// Fine-level residual norm before cycle `i` (index 0 = initial).
    pub residuals: Vec<f64>,
}

impl ConvergenceHistory {
    /// Orders of magnitude reduced from the initial residual.
    pub fn orders_reduced(&self) -> f64 {
        match (self.residuals.first(), self.residuals.last()) {
            (Some(&r0), Some(&rn)) if r0 > 0.0 && rn > 0.0 => (r0 / rn).log10(),
            _ => 0.0,
        }
    }

    /// Mean per-cycle residual reduction factor (geometric).
    pub fn mean_reduction_factor(&self) -> f64 {
        if self.residuals.len() < 2 {
            return 1.0;
        }
        let r0 = self.residuals[0];
        let rn = *self.residuals.last().unwrap();
        if r0 <= 0.0 || rn <= 0.0 {
            return 0.0;
        }
        (rn / r0).powf(1.0 / (self.residuals.len() - 1) as f64)
    }

    /// Number of cycles recorded.
    pub fn cycles(&self) -> usize {
        self.residuals.len().saturating_sub(1)
    }
}

/// Run cycles until the fine residual drops below `tol` or `max_cycles` is
/// reached; records the residual before every cycle and after the last.
///
/// With tracing enabled on `ctx`, each cycle wraps its [`fas_cycle`]
/// level-visit spans in one `cycle` span (indexed by cycle number, final
/// residual recorded as a gauge).
pub fn solve_to_tolerance<L: MultigridLevel>(
    levels: &mut [L],
    params: &CycleParams,
    tol: f64,
    max_cycles: usize,
    ctx: &mut ExecContext,
) -> ConvergenceHistory {
    let mut history = ConvergenceHistory::default();
    history.residuals.push(levels[0].residual_norm());
    for i in 0..max_cycles {
        if *history.residuals.last().unwrap() <= tol {
            break;
        }
        ctx.tracer().begin(SpanKey::new("cycle").cycle(i));
        fas_cycle(levels, params, ctx);
        let r = levels[0].residual_norm();
        let tracer = ctx.tracer();
        tracer.gauge("residual_rms", r);
        tracer.end();
        history.residuals.push(r);
    }
    history
}

/// Number of visits each level receives during one cycle over `nlevels`
/// levels. For a W-cycle level `l` (0 = finest) is visited `2^l` times; the
/// performance model multiplies per-level cost by these counts (the paper:
/// "the coarsest level is visited 2^(n-1) = 32 times for a six-level
/// multigrid cycle").
pub fn level_visits(nlevels: usize, cycle: CycleType) -> Vec<usize> {
    (0..nlevels)
        .map(|l| match cycle {
            CycleType::V => 1,
            CycleType::W => 1usize << l,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linear 1-D Poisson FAS test level: -u'' = f on a uniform grid,
    /// damped-Jacobi smoother, aggregation restriction (pairs), injection
    /// prolongation. Linear problems are a special case of FAS, so this
    /// exercises the full trait surface.
    struct PoissonLevel {
        n: usize,
        h2: f64,
        u: Vec<f64>,
        f: Vec<f64>,
        /// State stored at restriction time for the FAS correction.
        restricted_u: Vec<f64>,
    }

    impl PoissonLevel {
        fn new(n: usize) -> Self {
            let h = 1.0 / (n + 1) as f64;
            PoissonLevel {
                n,
                h2: h * h,
                u: vec![0.0; n],
                f: vec![0.0; n],
                restricted_u: vec![0.0; n],
            }
        }

        fn residual(&self) -> Vec<f64> {
            // r = f - A u, A = (-u[i-1] + 2 u[i] - u[i+1]) / h^2.
            (0..self.n)
                .map(|i| {
                    let um = if i > 0 { self.u[i - 1] } else { 0.0 };
                    let up = if i + 1 < self.n { self.u[i + 1] } else { 0.0 };
                    self.f[i] - (2.0 * self.u[i] - um - up) / self.h2
                })
                .collect()
        }
    }

    impl MultigridLevel for PoissonLevel {
        fn smooth(&mut self, sweeps: usize) {
            for _ in 0..sweeps {
                let r = self.residual();
                for (u, &ri) in self.u.iter_mut().zip(&r) {
                    // Damped Jacobi, omega = 2/3.
                    *u += (2.0 / 3.0) * ri * self.h2 / 2.0;
                }
            }
        }

        fn residual_norm(&mut self) -> f64 {
            let r = self.residual();
            (r.iter().map(|v| v * v).sum::<f64>() / self.n as f64).sqrt()
        }

        fn restrict_into(&mut self, coarse: &mut Self) {
            let r = self.residual();
            for j in 0..coarse.n {
                // Full weighting over pairs (2j, 2j+1).
                let a = 2 * j;
                let b = (2 * j + 1).min(self.n - 1);
                coarse.u[j] = 0.5 * (self.u[a] + self.u[b]);
                coarse.restricted_u[j] = coarse.u[j];
            }
            // FAS forcing f_c = A_c(restricted u) + R(r_fine), computed after
            // the full restricted state is in place.
            for j in 0..coarse.n {
                let um = if j > 0 {
                    coarse.restricted_u[j - 1]
                } else {
                    0.0
                };
                let up = if j + 1 < coarse.n {
                    coarse.restricted_u[j + 1]
                } else {
                    0.0
                };
                let a = 2 * j;
                let b = (2 * j + 1).min(self.n - 1);
                let rj = 0.5 * (r[a] + r[b]);
                coarse.f[j] = (2.0 * coarse.restricted_u[j] - um - up) / coarse.h2 + rj;
            }
        }

        fn prolong_from(&mut self, coarse: &Self) {
            for j in 0..coarse.n {
                let corr = coarse.u[j] - coarse.restricted_u[j];
                let a = 2 * j;
                let b = (2 * j + 1).min(self.n - 1);
                self.u[a] += corr;
                if b != a {
                    self.u[b] += corr;
                }
            }
        }
    }

    fn build_hierarchy(n_fine: usize, nlevels: usize) -> Vec<PoissonLevel> {
        let mut levels = Vec::new();
        let mut n = n_fine;
        for _ in 0..nlevels {
            levels.push(PoissonLevel::new(n));
            n /= 2;
        }
        // Load: f = 1 on the fine level.
        levels[0].f = vec![1.0; n_fine];
        levels
    }

    #[test]
    fn multigrid_beats_smoothing_alone() {
        let n = 256;
        let mut mg = build_hierarchy(n, 6);
        let hist = solve_to_tolerance(
            &mut mg,
            &CycleParams::default(),
            1e-10,
            60,
            &mut ExecContext::default(),
        );
        assert!(
            hist.orders_reduced() > 8.0,
            "MG reduced only {} orders in {} cycles",
            hist.orders_reduced(),
            hist.cycles()
        );

        // Smoother alone, same total work budget (generous), barely moves.
        let mut single = build_hierarchy(n, 1);
        let r0 = single[0].residual_norm();
        single[0].smooth(200);
        let r1 = single[0].residual_norm();
        assert!(
            (r0 / r1) < 10.0,
            "smoother alone should stall: {r0} -> {r1}"
        );
    }

    #[test]
    fn w_cycle_converges_at_least_as_fast_as_v() {
        let n = 128;
        let mut v = build_hierarchy(n, 5);
        let mut w = build_hierarchy(n, 5);
        let pv = CycleParams {
            cycle: CycleType::V,
            ..Default::default()
        };
        let pw = CycleParams {
            cycle: CycleType::W,
            ..Default::default()
        };
        let hv = solve_to_tolerance(&mut v, &pv, 0.0, 10, &mut ExecContext::default());
        let hw = solve_to_tolerance(&mut w, &pw, 0.0, 10, &mut ExecContext::default());
        assert!(
            hw.orders_reduced() >= hv.orders_reduced() - 0.5,
            "W {} vs V {}",
            hw.orders_reduced(),
            hv.orders_reduced()
        );
    }

    #[test]
    fn more_levels_converge_faster_per_cycle() {
        let n = 256;
        let mut two = build_hierarchy(n, 2);
        let mut five = build_hierarchy(n, 5);
        let p = CycleParams::default();
        let h2 = solve_to_tolerance(&mut two, &p, 0.0, 8, &mut ExecContext::default());
        let h5 = solve_to_tolerance(&mut five, &p, 0.0, 8, &mut ExecContext::default());
        assert!(
            h5.orders_reduced() > h2.orders_reduced(),
            "5-level {} should beat 2-level {}",
            h5.orders_reduced(),
            h2.orders_reduced()
        );
    }

    #[test]
    fn level_visit_counts_match_paper() {
        assert_eq!(level_visits(6, CycleType::W), vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(level_visits(4, CycleType::V), vec![1, 1, 1, 1]);
    }

    #[test]
    fn traced_cycle_exposes_w_cycle_revisits() {
        let nlevels = 4;
        let mut mg = build_hierarchy(64, nlevels);
        let mut ctx = ExecContext::traced();
        let hist = solve_to_tolerance(&mut mg, &CycleParams::default(), 0.0, 2, &mut ctx);
        assert_eq!(hist.cycles(), 2);
        let trace = ctx.finish_trace();
        assert_eq!(trace.spans.len(), 2, "one span per cycle");
        let cycle = &trace.spans[0];
        assert_eq!(cycle.key.name, "cycle");
        assert_eq!(cycle.key.cycle, Some(0));
        assert!(cycle.gauges.contains_key("residual_rms"));
        // Span count per level matches the paper's visit accounting:
        // 2 spans per non-coarsest visit (pre+restrict, prolong+post),
        // 1 per coarsest visit.
        let visits = level_visits(nlevels, CycleType::W);
        for (l, &v) in visits.iter().enumerate() {
            let n = cycle
                .children
                .iter()
                .filter(|s| s.key.name == "mg_level" && s.key.level == Some(l))
                .count();
            let expect = if l == nlevels - 1 { v } else { 2 * v };
            assert_eq!(n, expect, "level {l} span count");
        }
        // And the traced solve is identical to the untraced one.
        let mut plain = build_hierarchy(64, nlevels);
        let hist2 = solve_to_tolerance(
            &mut plain,
            &CycleParams::default(),
            0.0,
            2,
            &mut ExecContext::default(),
        );
        assert_eq!(
            hist.residuals
                .iter()
                .map(|r| r.to_bits())
                .collect::<Vec<_>>(),
            hist2
                .residuals
                .iter()
                .map(|r| r.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn history_metrics() {
        let h = ConvergenceHistory {
            residuals: vec![1.0, 0.1, 0.01],
        };
        assert!((h.orders_reduced() - 2.0).abs() < 1e-12);
        assert!((h.mean_reduction_factor() - 0.1).abs() < 1e-12);
        assert_eq!(h.cycles(), 2);
    }

    #[test]
    fn solve_stops_at_tolerance() {
        let mut mg = build_hierarchy(128, 5);
        let hist = solve_to_tolerance(
            &mut mg,
            &CycleParams::default(),
            1e-6,
            100,
            &mut ExecContext::default(),
        );
        assert!(hist.cycles() < 100, "tolerance never reached");
        assert!(*hist.residuals.last().unwrap() <= 1e-6);
    }

    columbia_rt::props! {
        /// Visit accounting for any depth: a W-cycle visits level `l`
        /// exactly `2^l` times (total `2^L - 1`), a V-cycle visits every
        /// level once. This is the count the paper's scalability argument
        /// rests on ("the coarsest level is visited 32 times").
        fn prop_level_visits_accounting(nlevels in 1usize..12) {
            let w = level_visits(nlevels, CycleType::W);
            let v = level_visits(nlevels, CycleType::V);
            assert_eq!(w.len(), nlevels);
            assert!(v.iter().all(|&c| c == 1));
            for (l, &c) in w.iter().enumerate() {
                assert_eq!(c, 1usize << l);
            }
            assert_eq!(w.iter().sum::<usize>(), (1usize << nlevels) - 1);
        }

        /// FAS W-cycles converge on the Poisson model problem whenever the
        /// hierarchy is deep enough that the coarsest grid is genuinely
        /// coarse (n <= 8) — the regime every real solver hierarchy here
        /// targets. Twenty cycles then gain at least two orders.
        fn prop_w_cycles_reduce_residual(k in 5usize..9, extra in 0usize..2) {
            let n = 1usize << k;
            let nlevels = k - 2 + extra; // coarsest grid has 8 or 4 points
            let mut mg = build_hierarchy(n, nlevels);
            let hist = solve_to_tolerance(&mut mg, &CycleParams::default(), 0.0, 20, &mut ExecContext::default());
            assert!(
                hist.orders_reduced() > 2.0,
                "only {} orders reduced for n={} levels={}",
                hist.orders_reduced(), n, nlevels
            );
        }
    }
}
