//! Workload profiles: what a multigrid cycle *is*, measured by the solvers.
//!
//! The solver crates run real partitioning experiments on real (smaller)
//! meshes, measure per-level work and communication-surface statistics, fit
//! the surface-to-volume law, and package everything into a [`CycleProfile`]
//! that this crate prices at paper scale. FLOP counts come from software
//! FLOP accounting in the solver kernels (the paper used Itanium `pfmon`
//! hardware counters).

/// Per-multigrid-level workload description.
#[derive(Clone, Debug)]
pub struct LevelProfile {
    /// Human-readable tag ("fine 72M", "level 2 (9M)").
    pub name: String,
    /// Global number of unknown carriers (points / cells) on this level.
    pub points: f64,
    /// FLOPs executed per point per level visit (smoothing + residual +
    /// transfers attributed to the level).
    pub flops_per_point: f64,
    /// Working-set bytes per point (state + residual + metrics + Jacobian
    /// scratch) — drives the cache model.
    pub state_bytes_per_point: f64,
    /// Bytes exchanged per ghost entry per exchange (e.g. 6 vars x 8 B).
    pub exchange_bytes_per_entry: f64,
    /// Ghost exchanges per level visit (residual accumulation + state
    /// copies x smoothing sweeps).
    pub exchanges_per_visit: f64,
    /// Surface law: ghost entries per partition ~ coeff * q^exponent where
    /// q = points per partition. Measured by partitioning real meshes.
    pub surface_coeff: f64,
    /// Surface law exponent (~2/3 for 3-D).
    pub surface_exponent: f64,
    /// Asymptotic communication-graph degree (paper: 18 on the fine grid).
    pub max_degree: f64,
    /// Visits per multigrid cycle (W-cycle: 2^level).
    pub visits: f64,
    /// Per-code single-CPU tuning factor on the sustained rate (1.0 for
    /// NSU3D's calibration; Cart3D's "somewhat better than 1.5 GFLOP/s"
    /// cell-centred kernels use ~1.10).
    pub rate_scale: f64,
    /// Fraction of the kernel that speeds up when the working set fits in
    /// L3 (1.0 = fully memory-bound like NSU3D's scattered edge kernels —
    /// source of its superlinear speedups; Cart3D's structured-stencil
    /// kernels are already cache-blocked and show near-ideal, not
    /// superlinear, scaling: ~0.2).
    pub cache_fraction: f64,
}

impl LevelProfile {
    /// Ghost entries per partition of `q` points (capped: a partition can
    /// never ghost more than ~all its points' neighbours).
    pub fn ghosts_per_partition(&self, q: f64) -> f64 {
        if q <= 0.0 {
            return 0.0;
        }
        (self.surface_coeff * q.powf(self.surface_exponent)).min(6.0 * q)
    }
}

/// Inter-grid (restriction/prolongation) transfer description between a
/// level and the next coarser one.
#[derive(Clone, Debug)]
pub struct IntergridProfile {
    /// Bytes moved per fine point per transfer pair (restrict + prolong).
    pub bytes_per_fine_point: f64,
    /// Transfer pairs per cycle (= visits of the coarser level).
    pub transfers_per_cycle: f64,
    /// Fraction of the volume crossing partition boundaries (non-nested
    /// coarse/fine partitions; measured by the inter-level matcher).
    pub nonlocal_fraction: f64,
    /// Degree of the inter-grid communication graph (paper: 19).
    pub max_degree: f64,
    /// Fine points of the finer of the two levels.
    pub fine_points: f64,
}

/// Full multigrid cycle workload: `levels[0]` is the finest;
/// `intergrid[l]` couples level `l` and `l + 1`.
#[derive(Clone, Debug)]
pub struct CycleProfile {
    /// Descriptive name ("NSU3D 72M-pt 6-level W-cycle").
    pub name: String,
    /// Per-level profiles, finest first.
    pub levels: Vec<LevelProfile>,
    /// Inter-grid transfers, `levels.len() - 1` entries.
    pub intergrid: Vec<IntergridProfile>,
}

impl CycleProfile {
    /// Total FLOPs of one full cycle.
    pub fn total_flops(&self) -> f64 {
        self.levels
            .iter()
            .map(|l| l.points * l.flops_per_point * l.visits)
            .sum()
    }

    /// Consistency checks used by tests and the figure binaries.
    pub fn validate(&self) -> Result<(), String> {
        if self.levels.is_empty() {
            return Err("no levels".into());
        }
        if self.intergrid.len() + 1 != self.levels.len() {
            return Err("intergrid count must be levels - 1".into());
        }
        for (i, l) in self.levels.iter().enumerate() {
            if !(l.points > 0.0) || !(l.flops_per_point > 0.0) || !(l.visits >= 1.0) {
                return Err(format!("level {i} has non-positive workload"));
            }
            if i > 0 && l.points >= self.levels[i - 1].points {
                return Err(format!("level {i} is not coarser than level {}", i - 1));
            }
        }
        Ok(())
    }

    /// Keep only the finest `nlevels` levels (used to sweep 1..6-level
    /// multigrid variants from one measured 6-level profile), recomputing
    /// W-cycle visit counts.
    pub fn truncated(&self, nlevels: usize, w_cycle: bool) -> CycleProfile {
        assert!(nlevels >= 1 && nlevels <= self.levels.len());
        let mut levels = self.levels[..nlevels].to_vec();
        for (l, lev) in levels.iter_mut().enumerate() {
            lev.visits = if w_cycle { (1usize << l) as f64 } else { 1.0 };
        }
        let mut intergrid = self.intergrid[..nlevels - 1].to_vec();
        for (l, ig) in intergrid.iter_mut().enumerate() {
            ig.transfers_per_cycle = if w_cycle {
                (1usize << (l + 1)) as f64
            } else {
                1.0
            };
        }
        CycleProfile {
            name: format!("{} [{} levels]", self.name, nlevels),
            levels,
            intergrid,
        }
    }

    /// Extract a single level as a standalone single-grid profile (paper
    /// Figure 19 runs coarse levels alone).
    pub fn single_level(&self, level: usize) -> CycleProfile {
        let mut l = self.levels[level].clone();
        l.visits = 1.0;
        CycleProfile {
            name: format!("{} [level {level} alone]", self.name),
            levels: vec![l],
            intergrid: vec![],
        }
    }
}

/// The paper's 72M-point NSU3D six-level W-cycle workload, with constants
/// consistent with the published measurements (31.3 s/cycle at 128 CPUs,
/// 1.95 s at 2008, ~2.8 TFLOP/s, coarsest level of 8188 vertices, fine
/// communication-graph degree 18, inter-grid degree 19). The `columbia-rans`
/// crate can regenerate the same structure from measured small-mesh runs;
/// this constant profile is the paper-scale reference used by the figure
/// binaries.
pub fn paper_nsu3d_72m() -> CycleProfile {
    let sizes = [72.0e6, 9.6e6, 1.28e6, 0.17e6, 2.3e4, 8188.0];
    let levels = sizes
        .iter()
        .enumerate()
        .map(|(l, &pts)| LevelProfile {
            name: format!("level {l}"),
            points: pts,
            flops_per_point: 56_700.0,
            state_bytes_per_point: 500.0,
            exchange_bytes_per_entry: 48.0,
            exchanges_per_visit: 8.0,
            surface_coeff: 6.0,
            surface_exponent: 2.0 / 3.0,
            max_degree: 18.0,
            visits: (1usize << l) as f64,
            rate_scale: 1.0,
            cache_fraction: 1.0,
        })
        .collect::<Vec<_>>();
    let intergrid = (0..sizes.len() - 1)
        .map(|l| IntergridProfile {
            bytes_per_fine_point: 48.0,
            transfers_per_cycle: (1usize << (l + 1)) as f64,
            nonlocal_fraction: 0.4,
            max_degree: 19.0,
            fine_points: sizes[l],
        })
        .collect();
    CycleProfile {
        name: "NSU3D 72M-point 6-level W-cycle".into(),
        levels,
        intergrid,
    }
}

/// The paper's 25M-cell Cart3D SSLV four-level W-cycle workload
/// (5 unknowns/cell, >1.5 GFLOP/s single-CPU tuning, coarsest mesh of
/// ~32000 cells, ~2.4 TFLOP/s at 2016 CPUs on NUMAlink).
pub fn paper_cart3d_25m() -> CycleProfile {
    let sizes = [25.0e6, 3.3e6, 0.44e6, 3.2e4];
    let levels = sizes
        .iter()
        .enumerate()
        .map(|(l, &pts)| LevelProfile {
            name: format!("level {l}"),
            points: pts,
            flops_per_point: 29_000.0,
            state_bytes_per_point: 320.0,
            exchange_bytes_per_entry: 40.0,
            // RK5: each of ~3 sweeps per visit exchanges state + residual
            // + time-step accumulators per stage.
            exchanges_per_visit: 16.0,
            surface_coeff: 5.0,
            surface_exponent: 2.0 / 3.0,
            max_degree: 14.0,
            visits: (1usize << l) as f64,
            rate_scale: 1.10,
            cache_fraction: 0.2,
        })
        .collect::<Vec<_>>();
    let intergrid = (0..sizes.len() - 1)
        .map(|l| IntergridProfile {
            bytes_per_fine_point: 40.0,
            transfers_per_cycle: (1usize << (l + 1)) as f64,
            nonlocal_fraction: 0.3,
            max_degree: 15.0,
            fine_points: sizes[l],
        })
        .collect();
    CycleProfile {
        name: "Cart3D SSLV 25M-cell 4-level W-cycle".into(),
        levels,
        intergrid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_profile(nlevels: usize) -> CycleProfile {
        let mut levels = Vec::new();
        let mut intergrid = Vec::new();
        let mut pts = 1.0e6;
        for l in 0..nlevels {
            levels.push(LevelProfile {
                name: format!("L{l}"),
                points: pts,
                flops_per_point: 1.0e4,
                state_bytes_per_point: 500.0,
                exchange_bytes_per_entry: 48.0,
                exchanges_per_visit: 4.0,
                surface_coeff: 6.0,
                surface_exponent: 2.0 / 3.0,
                max_degree: 18.0,
                visits: (1usize << l) as f64,
                rate_scale: 1.0,
                cache_fraction: 1.0,
            });
            if l + 1 < nlevels {
                intergrid.push(IntergridProfile {
                    bytes_per_fine_point: 48.0,
                    transfers_per_cycle: (1usize << (l + 1)) as f64,
                    nonlocal_fraction: 0.4,
                    max_degree: 19.0,
                    fine_points: pts,
                });
            }
            pts /= 7.5;
        }
        CycleProfile {
            name: "demo".into(),
            levels,
            intergrid,
        }
    }

    #[test]
    fn validate_accepts_wellformed() {
        demo_profile(4).validate().unwrap();
    }

    #[test]
    fn validate_rejects_broken_hierarchies() {
        let mut p = demo_profile(3);
        p.intergrid.pop();
        assert!(p.validate().is_err());
        let mut p2 = demo_profile(3);
        p2.levels[2].points = p2.levels[0].points * 2.0;
        assert!(p2.validate().is_err());
    }

    #[test]
    fn total_flops_weighted_by_visits() {
        let p = demo_profile(2);
        let expect = 1.0e6 * 1.0e4 * 1.0 + (1.0e6 / 7.5) * 1.0e4 * 2.0;
        assert!((p.total_flops() - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn truncation_recomputes_visits() {
        let p = demo_profile(5);
        let t = p.truncated(2, true);
        assert_eq!(t.levels.len(), 2);
        assert_eq!(t.levels[1].visits, 2.0);
        assert_eq!(t.intergrid.len(), 1);
        let v = p.truncated(3, false);
        assert!(v.levels.iter().all(|l| l.visits == 1.0));
        t.validate().unwrap();
    }

    #[test]
    fn single_level_extraction() {
        let p = demo_profile(4);
        let s = p.single_level(2);
        assert_eq!(s.levels.len(), 1);
        assert_eq!(s.levels[0].visits, 1.0);
        assert!(s.intergrid.is_empty());
        s.validate().unwrap();
    }

    #[test]
    fn ghost_law_is_capped() {
        let l = &demo_profile(1).levels[0];
        assert!(l.ghosts_per_partition(1e6) > 0.0);
        // Tiny partitions: ghosts bounded by a multiple of the points.
        assert!(l.ghosts_per_partition(2.0) <= 12.0);
        assert_eq!(l.ghosts_per_partition(0.0), 0.0);
    }
}
