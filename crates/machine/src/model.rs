//! The multigrid cycle-time simulator.
//!
//! Given a [`CycleProfile`] (measured workload), a [`MachineConfig`]
//! (hardware) and a [`RunConfig`] (CPU count, fabric, programming model),
//! predict the wall-clock time of one multigrid cycle and its breakdown.
//!
//! Model structure, per level `l` with `k_l` visits:
//!
//! * **compute** — `q_l * flops/point / rate(working set)` with the L3
//!   cache model (superlinear speedups) and a small-partition load
//!   imbalance factor;
//! * **intra-level exchange** — per rank, `degree` messages costing
//!   latency + CPU message overhead plus surface bytes over the fabric
//!   bandwidth; aggregated at rank granularity for hybrid runs; checked
//!   against the fabric's cross-node bisection capacity;
//! * **inter-grid transfer** — volumetric, non-nested traffic priced at
//!   the fabric's *random-ring* derated bandwidth (this is what kills
//!   InfiniBand multigrid, paper Figures 16-18, while per-level traffic is
//!   fabric-insensitive, Figure 19);
//! * **hybrid penalty** — master-thread-only MPI and OpenMP runtime
//!   overheads as an efficiency factor in the thread count (Figure 15);
//! * **pure OpenMP** — no messages, shared-memory copies only, but a
//!   "coarse mode" address-translation derate above 128 CPUs (Figure 20).

use crate::columbia::MachineConfig;
use crate::interconnect::{ib_rank_limit, Fabric};
use crate::profile::CycleProfile;

/// Programming model of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgModel {
    /// One MPI rank per CPU.
    PureMpi,
    /// MPI ranks with `threads` OpenMP threads each (master-thread comm).
    Hybrid {
        /// OpenMP threads per MPI rank.
        threads: usize,
    },
    /// Single process, one OpenMP thread per CPU (single node only).
    PureOpenMp,
}

/// A specific run configuration to price.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Total CPUs used.
    pub ncpus: usize,
    /// Interconnect fabric between nodes.
    pub fabric: Fabric,
    /// Programming model.
    pub model: ProgModel,
    /// Minimum node span: the paper's Figure 15 deliberately distributes
    /// 128 CPUs over four compute nodes; default 1 packs nodes in order.
    pub min_nodes: usize,
}

impl RunConfig {
    /// Convenience pure-MPI run.
    pub fn mpi(ncpus: usize, fabric: Fabric) -> Self {
        RunConfig {
            ncpus,
            fabric,
            model: ProgModel::PureMpi,
            min_nodes: 1,
        }
    }

    /// Convenience hybrid run.
    pub fn hybrid(ncpus: usize, fabric: Fabric, threads: usize) -> Self {
        RunConfig {
            ncpus,
            fabric,
            model: if threads <= 1 {
                ProgModel::PureMpi
            } else {
                ProgModel::Hybrid { threads }
            },
            min_nodes: 1,
        }
    }

    /// Force the job to spread over at least `nodes` compute nodes.
    pub fn spread_over(mut self, nodes: usize) -> Self {
        self.min_nodes = nodes;
        self
    }

    /// OpenMP threads per rank.
    pub fn threads(&self) -> usize {
        match self.model {
            ProgModel::PureMpi => 1,
            ProgModel::Hybrid { threads } => threads,
            ProgModel::PureOpenMp => self.ncpus,
        }
    }

    /// Number of MPI ranks.
    pub fn ranks(&self) -> usize {
        match self.model {
            ProgModel::PureMpi => self.ncpus,
            ProgModel::Hybrid { threads } => self.ncpus.div_ceil(threads),
            ProgModel::PureOpenMp => 1,
        }
    }
}

/// Why a run is infeasible on Columbia.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimError {
    /// More CPUs than the machine has.
    NotEnoughCpus {
        /// CPUs requested.
        requested: usize,
        /// CPUs available.
        available: usize,
    },
    /// NUMAlink spans at most 4 nodes (2048 CPUs).
    FabricSpan {
        /// Nodes the job needs.
        needed: usize,
        /// Nodes the fabric spans.
        max: usize,
    },
    /// InfiniBand MPI connection limit (paper eq. 1): the run would drop to
    /// 10GigE. Use fewer ranks (more OpenMP threads).
    IbRankLimit {
        /// Ranks requested.
        ranks: usize,
        /// Limit for this node span.
        limit: usize,
    },
    /// Pure OpenMP cannot cross the cache-coherence boundary (one node).
    OpenMpSingleNode {
        /// CPUs requested.
        requested: usize,
        /// CPUs in one node.
        node: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NotEnoughCpus { requested, available } => {
                write!(f, "requested {requested} CPUs, machine has {available}")
            }
            SimError::FabricSpan { needed, max } => {
                write!(f, "fabric spans {max} nodes, job needs {needed}")
            }
            SimError::IbRankLimit { ranks, limit } => write!(
                f,
                "InfiniBand supports at most {limit} MPI ranks here, requested {ranks} \
                 (job would fall back to 10GigE)"
            ),
            SimError::OpenMpSingleNode { requested, node } => write!(
                f,
                "pure OpenMP is limited to one cache-coherent node ({node} CPUs), requested {requested}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Predicted cycle time and its breakdown.
#[derive(Clone, Debug)]
pub struct CycleBreakdown {
    /// Total wall-clock seconds per multigrid cycle.
    pub seconds: f64,
    /// Compute part.
    pub compute_seconds: f64,
    /// Intra-level communication part.
    pub comm_seconds: f64,
    /// Inter-grid transfer part.
    pub intergrid_seconds: f64,
    /// Total cycle FLOPs (profile property).
    pub flops: f64,
    /// Per-level `(compute, comm)` seconds.
    pub per_level: Vec<(f64, f64)>,
}

impl CycleBreakdown {
    /// Achieved FLOP rate.
    pub fn flops_per_second(&self) -> f64 {
        self.flops / self.seconds
    }
}

/// Validate a run against machine constraints.
pub fn check_run(machine: &MachineConfig, run: &RunConfig) -> Result<(), SimError> {
    if run.ncpus > machine.total_cpus() {
        return Err(SimError::NotEnoughCpus {
            requested: run.ncpus,
            available: machine.total_cpus(),
        });
    }
    let span = machine.nodes_spanned(run.ncpus).max(run.min_nodes);
    if span > run.fabric.max_nodes() {
        return Err(SimError::FabricSpan {
            needed: span,
            max: run.fabric.max_nodes(),
        });
    }
    if run.model == ProgModel::PureOpenMp && run.ncpus > machine.cpus_per_node {
        return Err(SimError::OpenMpSingleNode {
            requested: run.ncpus,
            node: machine.cpus_per_node,
        });
    }
    if run.fabric == Fabric::InfiniBand && span > 1 {
        let limit = ib_rank_limit(span);
        if run.ranks() > limit {
            return Err(SimError::IbRankLimit {
                ranks: run.ranks(),
                limit,
            });
        }
    }
    Ok(())
}

/// Fabric cross-node bisection capacity in bytes/s for a job spanning
/// `span` nodes.
fn bisection_bandwidth(fabric: Fabric, span: usize) -> f64 {
    match fabric {
        // NUMAlink4 fat-tree: effectively not binding at these scales.
        Fabric::NumaLink4 => 400e9,
        // 8 IB cards per node at ~0.9 GB/s each.
        Fabric::InfiniBand => span as f64 * 8.0 * 0.9e9,
        Fabric::TenGigE => span as f64 * 1.25e9,
    }
}

/// Predict one multigrid cycle.
///
/// ```
/// use columbia_machine::{simulate_cycle, paper_nsu3d_72m, Fabric, MachineConfig, RunConfig};
/// let machine = MachineConfig::columbia_vortex();
/// let profile = paper_nsu3d_72m();
/// let b = simulate_cycle(&profile, &machine, &RunConfig::mpi(2008, Fabric::NumaLink4)).unwrap();
/// assert!((b.seconds - 1.95).abs() < 0.3); // paper: 1.95 s/cycle
/// ```
pub fn simulate_cycle(
    profile: &CycleProfile,
    machine: &MachineConfig,
    run: &RunConfig,
) -> Result<CycleBreakdown, SimError> {
    check_run(machine, run)?;
    profile.validate().expect("invalid profile");

    let ncpus = run.ncpus as f64;
    let span = machine.nodes_spanned(run.ncpus).max(run.min_nodes);
    let ranks = run.ranks() as f64;
    let threads = run.threads();
    let pure_openmp = run.model == ProgModel::PureOpenMp;

    let mut compute_total = 0.0;
    let mut comm_total = 0.0;
    let mut per_level = Vec::with_capacity(profile.levels.len());

    for lev in &profile.levels {
        // --- compute ---
        let q = lev.points / ncpus;
        let ws = q * lev.state_bytes_per_point;
        // Cache boost applies only to the profile's cache-sensitive
        // fraction of the kernel.
        let base_rate = machine.base_efficiency * machine.peak_flops();
        let full_rate = machine.effective_rate(ws);
        let mut rate = (base_rate + (full_rate - base_rate) * lev.cache_fraction) * lev.rate_scale;
        if pure_openmp && run.ncpus > 128 {
            rate *= machine.coarse_mode_derate;
        }
        let imb = machine.imbalance_factor(q);
        let rate = rate * machine.small_partition_factor(q);
        let compute_visit = q * lev.flops_per_point / rate * imb;

        // --- intra-level exchange ---
        let comm_visit = if pure_openmp {
            // Shared-memory copy of the partition surfaces; no messages,
            // but OpenMP barriers still pay synchronisation jitter.
            let surf = lev.ghosts_per_partition(q) * lev.exchange_bytes_per_entry;
            let sync = machine.sync_jitter * (ncpus.max(2.0)).ln();
            lev.exchanges_per_visit * (surf / 4.0e9 + sync)
        } else {
            // Rank-level surface (threads of one rank aggregate).
            let q_rank = q * threads as f64;
            let surf_rank = lev.ghosts_per_partition(q_rank) * lev.exchange_bytes_per_entry;
            // Occupied ranks bound the communication graph degree.
            let occupied = ranks.min(lev.points);
            let degree = lev.max_degree.min((occupied - 1.0).max(0.0));
            let per_msg = run.fabric.latency(span) + machine.mpi_msg_overhead;
            let sync = machine.sync_jitter * (ranks.max(2.0)).ln();
            let rank_term = degree * per_msg + sync + surf_rank / run.fabric.bandwidth(span);
            // Cross-node aggregate volume vs bisection capacity.
            let bis = if span > 1 {
                let crossnode_surface = lev.ghosts_per_partition(lev.points / span as f64)
                    * span as f64
                    * lev.exchange_bytes_per_entry;
                crossnode_surface / bisection_bandwidth(run.fabric, span)
            } else {
                0.0
            };
            lev.exchanges_per_visit * rank_term.max(bis)
        };

        let c = lev.visits * compute_visit;
        let m = lev.visits * comm_visit;
        compute_total += c;
        comm_total += m;
        per_level.push((c, m));
    }

    // --- inter-grid transfers ---
    let mut intergrid_total = 0.0;
    if !pure_openmp {
        for ig in &profile.intergrid {
            let bytes_total = ig.bytes_per_fine_point * ig.fine_points * ig.nonlocal_fraction;
            let bytes_rank = bytes_total / ranks;
            let occupied = ranks.min(ig.fine_points);
            let degree = ig.max_degree.min((occupied - 1.0).max(0.0));
            let per_msg = run.fabric.latency(span) + machine.mpi_msg_overhead;
            let derate = run.fabric.random_ring_derate(span);
            let sync = machine.sync_jitter * (ranks.max(2.0)).ln();
            let rank_term =
                degree * per_msg + sync + bytes_rank / (run.fabric.bandwidth(span) * derate);
            let bis = if span > 1 {
                let crossnode = bytes_total * (span as f64 - 1.0) / span as f64;
                crossnode / (bisection_bandwidth(run.fabric, span) * derate)
            } else {
                0.0
            };
            intergrid_total += ig.transfers_per_cycle * rank_term.max(bis);
        }
    } else {
        // Shared-memory restriction/prolongation copies.
        for ig in &profile.intergrid {
            let bytes = ig.bytes_per_fine_point * ig.fine_points * ig.nonlocal_fraction / ncpus;
            intergrid_total += ig.transfers_per_cycle * bytes / 4.0e9;
        }
    }

    let mut seconds = compute_total + comm_total + intergrid_total;
    // Hybrid OpenMP penalty (Figure 15) applies to the whole cycle; pure
    // OpenMP pays the coarse-mode derate instead.
    if !pure_openmp {
        seconds /= machine.omp_efficiency(threads);
    }

    Ok(CycleBreakdown {
        seconds,
        compute_seconds: compute_total,
        comm_seconds: comm_total,
        intergrid_seconds: intergrid_total,
        flops: profile.total_flops(),
        per_level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::paper_nsu3d_72m as nsu3d_72m;

    #[test]
    fn baseline_128_cpu_cycle_time_near_paper() {
        // Paper: 31.3 s per 6-level W-cycle on 128 CPUs (NUMAlink).
        let m = MachineConfig::columbia_vortex();
        let b = simulate_cycle(&nsu3d_72m(), &m, &RunConfig::mpi(128, Fabric::NumaLink4)).unwrap();
        assert!(
            (b.seconds - 31.3).abs() / 31.3 < 0.15,
            "128-CPU cycle {} s, paper 31.3 s",
            b.seconds
        );
    }

    #[test]
    fn cycle_time_2008_cpu_near_paper() {
        // Paper: 1.95 s per 6-level cycle on 2008 CPUs; ~2.8 TFLOP/s.
        let m = MachineConfig::columbia_vortex();
        let b = simulate_cycle(&nsu3d_72m(), &m, &RunConfig::mpi(2008, Fabric::NumaLink4)).unwrap();
        assert!(
            (b.seconds - 1.95).abs() / 1.95 < 0.25,
            "2008-CPU cycle {} s, paper 1.95 s",
            b.seconds
        );
        let tf = b.flops_per_second() / 1e12;
        assert!(tf > 2.0 && tf < 3.6, "TFLOP/s {tf}");
    }

    #[test]
    fn superlinear_speedup_on_numalink() {
        let m = MachineConfig::columbia_vortex();
        let p = nsu3d_72m();
        let t128 = simulate_cycle(&p, &m, &RunConfig::mpi(128, Fabric::NumaLink4))
            .unwrap()
            .seconds;
        let t2008 = simulate_cycle(&p, &m, &RunConfig::mpi(2008, Fabric::NumaLink4))
            .unwrap()
            .seconds;
        let speedup = 128.0 * t128 / t2008;
        assert!(
            speedup > 2008.0,
            "speedup {speedup} should be superlinear (paper: 2044)"
        );
        assert!(speedup < 2500.0, "speedup {speedup} implausibly high");
    }

    #[test]
    fn infiniband_multigrid_degrades_far_more_than_single_grid() {
        let m = MachineConfig::columbia_vortex();
        let p = nsu3d_72m();
        let single = p.truncated(1, true);
        // 2 OpenMP threads to respect the IB rank limit at 2008 CPUs.
        let nl_mg = simulate_cycle(&p, &m, &RunConfig::hybrid(2008, Fabric::NumaLink4, 2))
            .unwrap()
            .seconds;
        let ib_mg = simulate_cycle(&p, &m, &RunConfig::hybrid(2008, Fabric::InfiniBand, 2))
            .unwrap()
            .seconds;
        let nl_sg = simulate_cycle(&single, &m, &RunConfig::hybrid(2008, Fabric::NumaLink4, 2))
            .unwrap()
            .seconds;
        let ib_sg = simulate_cycle(&single, &m, &RunConfig::hybrid(2008, Fabric::InfiniBand, 2))
            .unwrap()
            .seconds;
        let mg_ratio = ib_mg / nl_mg;
        let sg_ratio = ib_sg / nl_sg;
        assert!(
            mg_ratio > 1.25,
            "IB should dramatically slow multigrid: ratio {mg_ratio}"
        );
        assert!(
            sg_ratio < 1.10,
            "IB single-grid should be near NUMAlink: ratio {sg_ratio}"
        );
        assert!(mg_ratio > sg_ratio + 0.2);
    }

    #[test]
    fn ib_rank_limit_enforced() {
        let m = MachineConfig::columbia_vortex();
        let p = nsu3d_72m();
        let err = simulate_cycle(&p, &m, &RunConfig::mpi(2008, Fabric::InfiniBand)).unwrap_err();
        assert!(matches!(err, SimError::IbRankLimit { .. }));
        // 2 threads/rank -> 1004 ranks: fine.
        assert!(simulate_cycle(&p, &m, &RunConfig::hybrid(2008, Fabric::InfiniBand, 2)).is_ok());
    }

    #[test]
    fn numalink_cannot_span_beyond_4_nodes() {
        let m = MachineConfig::columbia_full();
        let p = nsu3d_72m();
        let err = simulate_cycle(&p, &m, &RunConfig::mpi(4016, Fabric::NumaLink4)).unwrap_err();
        assert!(matches!(err, SimError::FabricSpan { .. }));
        // InfiniBand + 4 threads works on 4016 CPUs (paper §VI outlook).
        assert!(simulate_cycle(&p, &m, &RunConfig::hybrid(4016, Fabric::InfiniBand, 4)).is_ok());
    }

    #[test]
    fn pure_openmp_limited_to_one_node() {
        let m = MachineConfig::columbia_vortex();
        let p = nsu3d_72m().truncated(4, true);
        let run = RunConfig {
            ncpus: 504,
            fabric: Fabric::NumaLink4,
            model: ProgModel::PureOpenMp,
            min_nodes: 1,
        };
        assert!(simulate_cycle(&p, &m, &run).is_ok());
        let run2 = RunConfig { ncpus: 1000, ..run };
        assert!(matches!(
            simulate_cycle(&p, &m, &run2),
            Err(SimError::OpenMpSingleNode { .. })
        ));
    }

    #[test]
    fn hybrid_threads_cost_efficiency() {
        let m = MachineConfig::columbia_vortex();
        let p = nsu3d_72m();
        let t1 = simulate_cycle(&p, &m, &RunConfig::mpi(128, Fabric::NumaLink4))
            .unwrap()
            .seconds;
        let t2 = simulate_cycle(&p, &m, &RunConfig::hybrid(128, Fabric::NumaLink4, 2))
            .unwrap()
            .seconds;
        let t4 = simulate_cycle(&p, &m, &RunConfig::hybrid(128, Fabric::NumaLink4, 4))
            .unwrap()
            .seconds;
        assert!(t1 < t2 && t2 < t4, "{t1} {t2} {t4}");
        // Paper Figure 15: 98.4% and 87.2% efficiency.
        assert!((t1 / t2 - 0.984).abs() < 0.02, "eff2 {}", t1 / t2);
        assert!((t1 / t4 - 0.872).abs() < 0.03, "eff4 {}", t1 / t4);
    }

    #[test]
    fn too_many_cpus_is_rejected() {
        let m = MachineConfig::columbia_vortex(); // 2048 CPUs
        let p = nsu3d_72m();
        assert!(matches!(
            simulate_cycle(&p, &m, &RunConfig::mpi(4096, Fabric::InfiniBand)),
            Err(SimError::NotEnoughCpus { .. })
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        for e in [
            SimError::NotEnoughCpus {
                requested: 9,
                available: 4,
            },
            SimError::FabricSpan { needed: 5, max: 4 },
            SimError::IbRankLimit {
                ranks: 2000,
                limit: 1524,
            },
            SimError::OpenMpSingleNode {
                requested: 600,
                node: 512,
            },
        ] {
            let msg = e.to_string();
            assert!(msg.len() > 20, "vague message: {msg}");
        }
    }

    #[test]
    fn cycle_time_monotone_in_cpus_on_numalink() {
        // For the compute-dominated 72M-point workload, more CPUs must
        // never be slower across the paper's range.
        let m = MachineConfig::columbia_vortex();
        let p = nsu3d_72m();
        let mut prev = f64::INFINITY;
        for n in [64, 128, 256, 502, 1004, 1504, 2008] {
            let t = simulate_cycle(&p, &m, &RunConfig::mpi(n, Fabric::NumaLink4))
                .unwrap()
                .seconds;
            assert!(t < prev, "{n} CPUs slower than fewer: {t} vs {prev}");
            prev = t;
        }
    }

    #[test]
    fn flops_invariant_across_run_configs() {
        // The cycle FLOP count is a property of the workload, not the run.
        let m = MachineConfig::columbia_vortex();
        let p = nsu3d_72m();
        let a = simulate_cycle(&p, &m, &RunConfig::mpi(128, Fabric::NumaLink4)).unwrap();
        let b = simulate_cycle(&p, &m, &RunConfig::hybrid(1004, Fabric::InfiniBand, 2)).unwrap();
        assert_eq!(a.flops, b.flops);
        assert!((a.flops - p.total_flops()).abs() < 1.0);
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let m = MachineConfig::columbia_vortex();
        let p = nsu3d_72m();
        let b = simulate_cycle(&p, &m, &RunConfig::mpi(1004, Fabric::NumaLink4)).unwrap();
        let sum = b.compute_seconds + b.comm_seconds + b.intergrid_seconds;
        // Pure MPI (no hybrid divisor): breakdown is exact.
        assert!((sum - b.seconds).abs() < 1e-12 * b.seconds);
        let per_level: f64 = b.per_level.iter().map(|(c, m)| c + m).sum();
        assert!((per_level - (b.compute_seconds + b.comm_seconds)).abs() < 1e-12);
    }

    #[test]
    fn tengige_fallback_is_much_slower_than_infiniband() {
        // The paper: exceeding the IB rank limit drops the job to 10GigE;
        // verify the model prices that fabric as clearly worse for
        // multigrid.
        let m = MachineConfig::columbia_vortex();
        let p = nsu3d_72m();
        let ib = simulate_cycle(&p, &m, &RunConfig::hybrid(2008, Fabric::InfiniBand, 2))
            .unwrap()
            .seconds;
        let ge = simulate_cycle(&p, &m, &RunConfig::hybrid(2008, Fabric::TenGigE, 2))
            .unwrap()
            .seconds;
        assert!(ge > 1.5 * ib, "10GigE {ge} vs InfiniBand {ib}");
    }

    #[test]
    fn fewer_multigrid_levels_scale_better() {
        let m = MachineConfig::columbia_vortex();
        let p = nsu3d_72m();
        let speedup = |profile: &CycleProfile| {
            let a = simulate_cycle(profile, &m, &RunConfig::mpi(128, Fabric::NumaLink4))
                .unwrap()
                .seconds;
            let b = simulate_cycle(profile, &m, &RunConfig::mpi(2008, Fabric::NumaLink4))
                .unwrap()
                .seconds;
            128.0 * a / b
        };
        let s6 = speedup(&p);
        let s4 = speedup(&p.truncated(4, true));
        let s1 = speedup(&p.truncated(1, true));
        assert!(
            s1 > s4 && s4 > s6,
            "speedups should order single > 4-level > 6-level: {s1} {s4} {s6}"
        );
    }
}
