//! Columbia hardware description (paper §II).
//!
//! 20 SGI Altix 3700 nodes of 512 Itanium2 CPUs; the benchmark runs used
//! the four BX2 nodes c17-c20: 1.6 GHz, 4 FLOP/cycle peak (6.4 GFLOP/s),
//! 9 MB L3 per CPU, 2 GB memory per CPU, cache-coherent shared memory
//! *within* a node only.

/// Static machine description plus the calibrated efficiency constants of
/// the compute model.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// CPUs per Altix node (512).
    pub cpus_per_node: usize,
    /// Number of nodes available to a job (the paper's "vortex" subsystem
    /// c17-c20 = 4; the full machine has 20).
    pub nodes: usize,
    /// Clock rate (Hz).
    pub clock_hz: f64,
    /// Peak FLOPs per cycle per CPU (Itanium2: 4 with MADD).
    pub flops_per_cycle: f64,
    /// L3 cache per CPU (bytes).
    pub l3_bytes: f64,
    /// Sustained fraction of peak for memory-resident working sets.
    /// Calibrated so the 72M-point NSU3D profile reproduces the paper's
    /// ~1.36 GFLOP/s per CPU at 128 CPUs (31.3 s per 6-level cycle).
    pub base_efficiency: f64,
    /// Sustained fraction of peak when the working set fits in L3; the
    /// base → cache transition produces the paper's superlinear speedups
    /// (2250 on 2008 CPUs for 4-level multigrid, 2395 single-grid).
    pub cache_efficiency: f64,
    /// Width (in decades of working-set size) of the cache transition.
    pub cache_transition_decades: f64,
    /// Per-CPU rate derate applied to pure-OpenMP runs on more than 128
    /// CPUs: Altix "coarse mode" address swizzling beyond a 128-CPU double
    /// cabinet (paper §VII, Cart3D OpenMP slope break at 128 CPUs).
    pub coarse_mode_derate: f64,
    /// OpenMP hybrid efficiency constants: eff = 1 - c * (threads-1)^p,
    /// fit to the paper's Figure 15 (98.4% at 2 threads, 87.2% at 4).
    pub omp_penalty_coeff: f64,
    /// Exponent of the hybrid penalty law.
    pub omp_penalty_exp: f64,
    /// CPU-side cost per MPI message (pack/unpack + MPI stack), seconds.
    /// Dominates on coarse multigrid levels with 18 neighbours and almost
    /// no compute.
    pub mpi_msg_overhead: f64,
    /// Load-imbalance law: max/mean partition work ~ 1 + coeff / sqrt(q)
    /// for q points per partition — tiny coarse-level partitions (the paper
    /// observes *empty* ones at 2008 CPUs) straggle.
    pub imbalance_coeff: f64,
    /// Cap on the imbalance factor.
    pub imbalance_cap: f64,
    /// Small-partition efficiency: per-CPU rate is derated by
    /// `q / (q + small_partition_q0)` for q points per partition — short
    /// loops, boundary-dominated work and per-level fixed costs erode
    /// efficiency as partitions shrink (why coarse levels *alone* scale
    /// worse than the fine grid, paper Figure 19).
    pub small_partition_q0: f64,
    /// Per-exchange synchronisation jitter: every collective ghost
    /// exchange pays `sync_jitter * ln(ranks)` seconds — OS noise and
    /// stragglers amplify with rank count, and multigrid's many coarse
    /// visits multiply the cost (this is what rolls multigrid off at 2016
    /// CPUs even on NUMAlink, paper Figure 21).
    pub sync_jitter: f64,
}

impl MachineConfig {
    /// The four-node BX2 "vortex" subsystem (c17-c20) used for every
    /// benchmark in the paper.
    pub fn columbia_vortex() -> Self {
        MachineConfig {
            cpus_per_node: 512,
            nodes: 4,
            clock_hz: 1.6e9,
            flops_per_cycle: 4.0,
            l3_bytes: 9.0e6,
            base_efficiency: 0.2032, // ~1.30 GFLOP/s memory-resident
            cache_efficiency: 0.335, // ~2.1 GFLOP/s in-cache
            cache_transition_decades: 0.6,
            coarse_mode_derate: 0.97,
            omp_penalty_coeff: 0.016,
            omp_penalty_exp: 1.893,
            mpi_msg_overhead: 5.0e-6,
            imbalance_coeff: 2.0,
            imbalance_cap: 3.0,
            small_partition_q0: 500.0,
            sync_jitter: 2.0e-5,
        }
    }

    /// The full 20-node Columbia system.
    pub fn columbia_full() -> Self {
        MachineConfig {
            nodes: 20,
            ..Self::columbia_vortex()
        }
    }

    /// Peak FLOP rate of one CPU.
    pub fn peak_flops(&self) -> f64 {
        self.clock_hz * self.flops_per_cycle
    }

    /// Total CPUs available.
    pub fn total_cpus(&self) -> usize {
        self.cpus_per_node * self.nodes
    }

    /// Effective sustained FLOP rate of one CPU given its working-set size
    /// in bytes. Smooth logistic transition from `base_efficiency` (working
    /// set >> L3) to `cache_efficiency` (working set << L3).
    pub fn effective_rate(&self, working_set_bytes: f64) -> f64 {
        let ws = working_set_bytes.max(1.0);
        // x > 0 when the working set fits in cache.
        let x = (self.l3_bytes / ws).log10() / self.cache_transition_decades;
        let s = 1.0 / (1.0 + (-x).exp());
        let eff = self.base_efficiency + (self.cache_efficiency - self.base_efficiency) * s;
        eff * self.peak_flops()
    }

    /// Number of nodes spanned by `ncpus` CPUs (filled in order).
    pub fn nodes_spanned(&self, ncpus: usize) -> usize {
        ncpus.div_ceil(self.cpus_per_node).max(1)
    }

    /// Small-partition efficiency factor (floored at 1/2: per-visit fixed
    /// costs saturate once a partition is latency- rather than
    /// loop-dominated).
    pub fn small_partition_factor(&self, q: f64) -> f64 {
        if q <= 0.0 {
            return 0.5;
        }
        (q / (q + self.small_partition_q0)).max(0.5)
    }

    /// Load-imbalance factor for partitions of `q` points.
    pub fn imbalance_factor(&self, q: f64) -> f64 {
        if q <= 0.0 {
            return self.imbalance_cap;
        }
        (1.0 + self.imbalance_coeff / q.sqrt()).min(self.imbalance_cap)
    }

    /// Hybrid OpenMP efficiency for `threads` OpenMP threads per MPI rank.
    pub fn omp_efficiency(&self, threads: usize) -> f64 {
        if threads <= 1 {
            1.0
        } else {
            (1.0 - self.omp_penalty_coeff * ((threads - 1) as f64).powf(self.omp_penalty_exp))
                .max(0.05)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rate_is_6_4_gflops() {
        let m = MachineConfig::columbia_vortex();
        assert!((m.peak_flops() - 6.4e9).abs() < 1.0);
        assert_eq!(m.total_cpus(), 2048);
    }

    #[test]
    fn effective_rate_transitions_around_l3() {
        let m = MachineConfig::columbia_vortex();
        let big = m.effective_rate(1e9); // 1 GB working set
        let small = m.effective_rate(1e5); // 100 KB
        assert!(big < small, "cache model inverted");
        assert!((big - m.base_efficiency * m.peak_flops()).abs() / big < 0.05);
        assert!((small - m.cache_efficiency * m.peak_flops()).abs() / small < 0.05);
        // Monotone in between.
        let mid1 = m.effective_rate(3e7);
        let mid2 = m.effective_rate(9e6);
        assert!(big <= mid1 && mid1 <= mid2 && mid2 <= small);
    }

    #[test]
    fn calibrated_sustained_rate_matches_paper() {
        // Paper: ~1.36-1.4 GFLOP/s per CPU sustained on the 72M-point case.
        let m = MachineConfig::columbia_vortex();
        let r = m.effective_rate(300e6); // 72M pts / 128 CPUs * ~500 B/pt
        assert!(r > 1.2e9 && r < 1.5e9, "sustained rate {r}");
    }

    #[test]
    fn omp_efficiency_matches_figure15() {
        let m = MachineConfig::columbia_vortex();
        assert!((m.omp_efficiency(2) - 0.984).abs() < 0.002);
        assert!((m.omp_efficiency(4) - 0.872).abs() < 0.01);
        assert_eq!(m.omp_efficiency(1), 1.0);
    }

    #[test]
    fn nodes_spanned_boundaries() {
        let m = MachineConfig::columbia_vortex();
        assert_eq!(m.nodes_spanned(1), 1);
        assert_eq!(m.nodes_spanned(512), 1);
        assert_eq!(m.nodes_spanned(513), 2);
        assert_eq!(m.nodes_spanned(2016), 4);
    }
}
