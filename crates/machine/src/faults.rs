//! Fabric-derived fault severities for chaos runs.
//!
//! The interconnect model already knows how much worse each fabric behaves
//! as a job spreads over nodes (latency gaps, bandwidth collapse,
//! random-ring derates — paper §II/§VI). This module turns those same
//! numbers into [`FaultConfig`] severities, so a chaos run over a
//! simulated InfiniBand span injects measurably harsher faults than the
//! same run over NUMAlink — mirroring the operational reality the paper's
//! multi-day database fills had to survive.

use crate::interconnect::Fabric;
use columbia_rt::fault::FaultConfig;

/// Dimensionless fault severity of `fabric` spanning `span_nodes` nodes,
/// relative to intra-node NUMAlink (which scores 0): the base-2 log of the
/// worst of the latency and bandwidth penalty ratios.
pub fn fabric_severity(fabric: Fabric, span_nodes: usize) -> f64 {
    let base = Fabric::NumaLink4;
    let lat_ratio = fabric.latency(span_nodes) / base.latency(1);
    let bw_ratio = base.bandwidth(1) / fabric.bandwidth(span_nodes);
    lat_ratio.max(bw_ratio).log2().max(0.0)
}

/// Fault-injection severity for a run on `fabric` spanning `span_nodes`
/// nodes. Rates scale with [`fabric_severity`]: an intra-node NUMAlink
/// run is fault-free, a multi-node NUMAlink run is mild, multi-node
/// InfiniBand is harsh, and the 10GigE fallback is harsher still.
pub fn fabric_fault_config(fabric: Fabric, span_nodes: usize) -> FaultConfig {
    let sev = fabric_severity(fabric, span_nodes);
    FaultConfig {
        drop_rate: (0.010 * sev).min(0.20),
        dup_rate: (0.020 * sev).min(0.25),
        max_dups: 1 + (sev as u32).min(2),
        delay_rate: (0.080 * sev).min(0.50),
        max_delay_slots: 1 + sev.ceil() as u32,
        stall_rate: (0.015 * sev).min(0.20),
        max_stall_yields: 4 * (1 + (sev as u32).min(4)),
        max_retries: 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_node_numalink_is_fault_free() {
        assert_eq!(fabric_severity(Fabric::NumaLink4, 1), 0.0);
        assert!(fabric_fault_config(Fabric::NumaLink4, 1).is_fault_free());
    }

    #[test]
    fn severity_ranking_matches_the_interconnect_model() {
        let nl = fabric_severity(Fabric::NumaLink4, 4);
        let ib = fabric_severity(Fabric::InfiniBand, 4);
        let ge = fabric_severity(Fabric::TenGigE, 4);
        assert!(nl > 0.0, "multi-node NUMAlink should be mildly faulty");
        assert!(
            ib > nl,
            "InfiniBand must inject harsher faults: {ib} vs {nl}"
        );
        assert!(ge > ib, "10GigE must be harshest: {ge} vs {ib}");
    }

    #[test]
    fn configs_scale_with_severity_and_stay_bounded() {
        let nl = fabric_fault_config(Fabric::NumaLink4, 4);
        let ib = fabric_fault_config(Fabric::InfiniBand, 4);
        let ge = fabric_fault_config(Fabric::TenGigE, 4);
        assert!(!nl.is_fault_free());
        assert!(ib.delay_rate > nl.delay_rate);
        assert!(ib.drop_rate > nl.drop_rate);
        assert!(ge.delay_rate >= ib.delay_rate);
        assert!(ib.max_delay_slots > nl.max_delay_slots);
        for c in [nl, ib, ge] {
            assert!(c.drop_rate <= 0.20 && c.dup_rate <= 0.25);
            assert!(c.delay_rate <= 0.50 && c.stall_rate <= 0.20);
            assert!(c.max_retries >= 1);
        }
    }

    columbia_rt::props! {
        config: columbia_rt::props::Config::with_cases(32);

        /// Severity is monotone in node span for every fabric, and the
        /// derived rates are valid probabilities.
        fn prop_fault_config_sane(span in 1usize..20) {
            for f in [Fabric::NumaLink4, Fabric::InfiniBand, Fabric::TenGigE] {
                let c = fabric_fault_config(f, span);
                for r in [c.drop_rate, c.dup_rate, c.delay_rate, c.stall_rate] {
                    assert!((0.0..=1.0).contains(&r), "rate {r} out of range");
                }
                assert!(fabric_severity(f, span + 1) >= fabric_severity(f, span) - 1e-12);
            }
        }
    }
}
