//! Interconnect models: NUMAlink4, InfiniBand, 10GigE (paper §II and §VI).
//!
//! Parameters follow the paper and its reference \[4\] (Biswas et al.,
//! "An Application-Based Performance Characterization of the Columbia
//! Supercluster"): NUMAlink4 delivers ~6.4 GB/s peak with ~1 µs MPI
//! latency; InfiniBand delivers less bandwidth at several times the
//! latency, degrades when spanning 2 and again 4 nodes, and suffers a
//! severe "random-ring" collapse for irregular many-pair patterns — which
//! is precisely the signature of the non-nested *inter-grid* multigrid
//! transfers (the paper's §VI speculation, which our model adopts).

/// Communication fabric connecting Columbia nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fabric {
    /// SGI NUMAlink4 (spans at most 4 nodes / 2048 CPUs).
    NumaLink4,
    /// InfiniBand (spans the whole machine, rank-limited by eq. 1).
    InfiniBand,
    /// 10 Gigabit Ethernet fallback (user access / I/O network).
    TenGigE,
}

impl Fabric {
    /// Point-to-point message latency in seconds for a job spanning
    /// `span_nodes` nodes (worst-case pair).
    pub fn latency(self, span_nodes: usize) -> f64 {
        match self {
            Fabric::NumaLink4 => {
                if span_nodes <= 1 {
                    1.1e-6
                } else {
                    2.0e-6
                }
            }
            Fabric::InfiniBand => {
                if span_nodes <= 1 {
                    // Within one node MPI still goes through shared memory.
                    1.1e-6
                } else {
                    6.0e-6
                }
            }
            Fabric::TenGigE => 30.0e-6,
        }
    }

    /// Effective per-rank bandwidth (bytes/s) for `span_nodes` nodes.
    pub fn bandwidth(self, span_nodes: usize) -> f64 {
        match self {
            Fabric::NumaLink4 => {
                if span_nodes <= 1 {
                    3.2e9
                } else {
                    // Slight reduction through inter-node routers.
                    2.8e9
                }
            }
            Fabric::InfiniBand => match span_nodes {
                0 | 1 => 3.2e9, // intra-node = shared memory
                2 => 0.75e9,    // reference \[4\]: large drop across 2 nodes
                _ => 0.55e9,    // further penalty across 4 nodes
            },
            Fabric::TenGigE => 0.4e9,
        }
    }

    /// Extra multiplicative bandwidth derate applied to *inter-grid*
    /// (restriction/prolongation) traffic: non-nested coarse/fine partition
    /// overlap produces an irregular, random-ring-like pattern. NUMAlink
    /// barely notices; InfiniBand collapses (reference \[4\] random-ring
    /// measurements).
    pub fn random_ring_derate(self, span_nodes: usize) -> f64 {
        match self {
            Fabric::NumaLink4 => 0.9,
            Fabric::InfiniBand => {
                if span_nodes <= 1 {
                    0.9
                } else {
                    0.12
                }
            }
            Fabric::TenGigE => 0.2,
        }
    }

    /// Maximum number of nodes the fabric can span.
    pub fn max_nodes(self) -> usize {
        match self {
            Fabric::NumaLink4 => 4,
            Fabric::InfiniBand | Fabric::TenGigE => 20,
        }
    }
}

/// InfiniBand MPI connection cards per node.
pub const IB_CARDS_PER_NODE: f64 = 8.0;
/// MPI connections supported per card.
pub const IB_CONNECTIONS_PER_CARD: f64 = 65536.0;
/// Ratio of the practically observed 4-node limit (1524 ranks, paper §II)
/// to the theoretical connection-counting bound (~1671).
const IB_PRACTICAL_FACTOR: f64 = 0.9115;

/// Maximum MPI ranks a job spanning `nodes` Altix nodes may use over
/// InfiniBand (paper eq. 1). Exceeding it drops the job to 10GigE.
///
/// With ranks spread evenly over `n` nodes, each node terminates
/// `P^2 (n-1) / n^2` remote connections, bounded by cards x connections;
/// hence `P <= n * sqrt(cards * conn / (n-1))`, derated to the practical
/// limit the paper reports (1524 at n = 4).
pub fn ib_rank_limit(nodes: usize) -> usize {
    if nodes <= 1 {
        return usize::MAX;
    }
    let n = nodes as f64;
    let theoretical = n * (IB_CARDS_PER_NODE * IB_CONNECTIONS_PER_CARD / (n - 1.0)).sqrt();
    (theoretical * IB_PRACTICAL_FACTOR).floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ib_limit_matches_paper_at_4_nodes() {
        let lim = ib_rank_limit(4);
        assert!(
            (1500..=1540).contains(&lim),
            "4-node IB rank limit {lim} should be ~1524"
        );
    }

    #[test]
    fn ib_limit_monotone_in_nodes_after_two() {
        // More nodes => fewer connections available per pair => lower limit
        // per the (n-1) term, but the n prefactor grows; verify sane values.
        assert!(ib_rank_limit(2) > ib_rank_limit(4) / 2);
        assert_eq!(ib_rank_limit(1), usize::MAX);
    }

    #[test]
    fn numalink_beats_infiniband_across_nodes() {
        for span in [2, 4] {
            assert!(Fabric::NumaLink4.bandwidth(span) > Fabric::InfiniBand.bandwidth(span));
            assert!(Fabric::NumaLink4.latency(span) < Fabric::InfiniBand.latency(span));
        }
    }

    #[test]
    fn intra_node_fabrics_are_equivalent_shared_memory() {
        assert_eq!(
            Fabric::NumaLink4.bandwidth(1),
            Fabric::InfiniBand.bandwidth(1)
        );
        assert_eq!(Fabric::NumaLink4.latency(1), Fabric::InfiniBand.latency(1));
    }

    #[test]
    fn random_ring_collapses_only_on_ib_across_nodes() {
        assert!(Fabric::InfiniBand.random_ring_derate(4) < 0.2);
        assert!(Fabric::InfiniBand.random_ring_derate(1) > 0.8);
        assert!(Fabric::NumaLink4.random_ring_derate(4) > 0.8);
    }

    #[test]
    fn numalink_span_limit() {
        assert_eq!(Fabric::NumaLink4.max_nodes(), 4);
        assert!(Fabric::InfiniBand.max_nodes() >= 20);
    }

    columbia_rt::props! {
        /// Physical sanity across all spans: derates are proper fractions,
        /// latencies and bandwidths are positive, and NUMAlink4 dominates
        /// InfiniBand at every span (paper §II / reference [4]).
        fn prop_fabric_orderings(span in 1usize..20) {
            for f in [Fabric::NumaLink4, Fabric::InfiniBand, Fabric::TenGigE] {
                let d = f.random_ring_derate(span);
                assert!(d > 0.0 && d <= 1.0, "derate {}", d);
                assert!(f.latency(span) > 0.0);
                assert!(f.bandwidth(span) > 0.0);
            }
            assert!(Fabric::NumaLink4.bandwidth(span) >= Fabric::InfiniBand.bandwidth(span));
            assert!(Fabric::NumaLink4.latency(span) <= Fabric::InfiniBand.latency(span));
        }

        /// Eq. 1's `n / sqrt(n-1)` shape: the IB rank cap is finite for
        /// multi-node jobs and grows with the node count.
        fn prop_ib_rank_limit_monotone(nodes in 2usize..19) {
            assert!(ib_rank_limit(nodes) < usize::MAX);
            assert!(ib_rank_limit(nodes + 1) >= ib_rank_limit(nodes));
        }
    }
}
