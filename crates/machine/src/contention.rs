//! Discrete-event interconnect contention model (ROADMAP item 4).
//!
//! The analytic curves in [`crate::interconnect`] *assert* the paper's
//! fig15/fig21 fabric ordering (NUMAlink4 over InfiniBand over 10GigE) as
//! fitted latency/bandwidth constants. This module makes the degradation
//! *emergent*: messages are packets routed over links with finite service
//! rates, per-source FIFO queues, a pluggable arbiter at every link, and
//! finite downstream capacity with backpressure — so cross-node InfiniBand
//! slowdown appears because flows queue behind each other on a shared
//! uplink, not because a constant says so.
//!
//! ## Semantics
//!
//! * A **link** serves one message at a time. Service time is
//!   `latency_s + bytes / bandwidth_bps`. Arrivals wait in per-source FIFO
//!   **ports**; when the link goes idle the **arbiter** picks the next
//!   port (round-robin, fixed priority, or fair-share by served bytes).
//! * A link holds at most `capacity_msgs` *queued* messages (the one in
//!   service is not counted). A message finishing service moves to the
//!   next link on its route only if that link has a free slot; otherwise
//!   the upstream link is **blocked** — it keeps the finished message at
//!   its head and serves nobody (head-of-line blocking) until the
//!   downstream link frees a slot and admits it (backpressure). Freed
//!   slots admit waiters in strict FIFO order.
//! * Delivery happens when a message finishes service on the last link of
//!   its route.
//!
//! ## Determinism
//!
//! Time is f64 seconds. The event queue is the executor's own
//! [`TimeQueue`], keyed by `to_bits()` of the (non-negative, finite) event
//! time — IEEE-754 bit order equals numeric order on that domain — with
//! ties broken by `(key, seq)` exactly as in the executor. All mutable
//! state lives in `BTreeMap`/`VecDeque`/`Vec`; nothing iterates a hash
//! map. Hence the full delivery schedule is a pure function of
//! `(topology, arbiter, packet list)` — double runs are bit-identical,
//! which `tests/fabric_contention.rs` pins under chaos-seeded traffic.
//!
//! ## The uncongested limit is the analytic oracle
//!
//! [`Topology::uncontended`] instantiates every shared resource with zero
//! latency, infinite bandwidth and unbounded capacity, leaving only each
//! source's dedicated first-hop link with the analytic parameters. A lone
//! packet then costs exactly `inject + (latency(span) + bytes /
//! bandwidth(span))` — the same f64 expression, in the same association
//! order, as [`Fabric::latency`]/[`Fabric::bandwidth`] compose — so the
//! parity suite can demand bit-level agreement, not just a tolerance.

use crate::interconnect::Fabric;
use columbia_rt::timeq::TimeQueue;
use std::collections::{BTreeMap, VecDeque};

/// One link's physical parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// Per-message wire latency (seconds, >= 0, finite).
    pub latency_s: f64,
    /// Service bandwidth (bytes/second, > 0; `f64::INFINITY` allowed).
    pub bandwidth_bps: f64,
    /// Queue slots for waiting messages (the message in service is not
    /// counted). `usize::MAX` means unbounded; must be >= 1.
    pub capacity_msgs: usize,
}

impl LinkSpec {
    /// An ideal link: zero latency, infinite bandwidth, unbounded queue.
    pub fn ideal() -> Self {
        LinkSpec {
            latency_s: 0.0,
            bandwidth_bps: f64::INFINITY,
            capacity_msgs: usize::MAX,
        }
    }

    /// Service time for one message of `bytes` on this link.
    pub fn service_s(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }
}

/// Which port a link serves next when it goes idle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arbiter {
    /// Cycle through non-empty ports in source order, resuming after the
    /// last served source. No flow starves.
    RoundRobin,
    /// Always the lowest source id with traffic. Low ids can starve high
    /// ids for as long as they keep the port non-empty.
    Priority,
    /// The port with the fewest served bytes so far (ties to the lowest
    /// source id): a deficit counter, so byte throughput equalises even
    /// with unequal message sizes.
    FairShare,
}

/// One message offered to the fabric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Packet {
    /// Source rank (must differ from `dst`).
    pub src: usize,
    /// Destination rank.
    pub dst: usize,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Injection time (seconds, >= 0, finite).
    pub inject_s: f64,
}

/// The fate of one packet: when it left the fabric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Delivery {
    /// The packet, verbatim.
    pub packet: Packet,
    /// Delivery time (seconds).
    pub deliver_s: f64,
    /// Global delivery sequence number (0-based): the order messages left
    /// the fabric, with simultaneous deliveries ordered deterministically
    /// by the event queue's `(time, key, seq)` rule.
    pub order: usize,
}

/// How ranks map onto links.
#[derive(Clone, Debug)]
enum TopoKind {
    /// Columbia instantiation: per-rank intra-node channel (link id
    /// `src`), per-rank NIC (`nranks + src`), per-node shared uplink
    /// (`2 * nranks + node`). Intra-node pairs use the channel; cross-node
    /// pairs go NIC then uplink.
    Columbia,
    /// Explicit routing table: `(src, dst) -> link ids`, for tests.
    Explicit(BTreeMap<(usize, usize), Vec<usize>>),
}

/// A routed network of [`LinkSpec`]s.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Display name ("numalink4", "infiniband", "10gige", "explicit").
    pub name: &'static str,
    /// World size.
    pub nranks: usize,
    /// Columbia nodes the world is scattered over (1 for explicit nets).
    pub nodes: usize,
    links: Vec<LinkSpec>,
    kind: TopoKind,
}

/// Queued slots on each Columbia shared uplink: small enough that a burst
/// backpressures into the per-rank NICs (head-of-line blocking), which is
/// the effect the analytic model cannot express.
const UPLINK_SLOTS: usize = 2;

impl Topology {
    /// The Columbia instantiation of `fabric` for `nranks` ranks
    /// scattered round-robin over `nodes` nodes (the paper's fig15
    /// "spread over nodes" placement). Per-rank links carry the analytic
    /// latency/bandwidth for the job's node span; each node's shared
    /// uplink models the fabric's aggregate egress, with a per-message
    /// *occupancy* — the time the shared resource is held per message —
    /// on top of its byte rate:
    ///
    /// * **NUMAlink4** — fat-tree with full bisection (§II): the node's
    ///   share of the 400 GB/s bisection, cut-through switching (zero
    ///   per-message occupancy) — effectively uncontended at any rank
    ///   count we simulate;
    /// * **InfiniBand** — the cross-node latency *surplus* over shared
    ///   memory is HCA card-pool processing, which serialises under
    ///   load; the pool sustains about two concurrent full-rate streams
    ///   before the random-ring collapse the paper's reference \[4\]
    ///   measures, so the uplink is `2 x bandwidth(span)`;
    /// * **10GigE** — one shared wire at the 1.25 GB/s line rate, held
    ///   for half the (store-and-forward) message latency.
    pub fn columbia(fabric: Fabric, nranks: usize, nodes: usize) -> Self {
        let nodes = nodes.clamp(1, fabric.max_nodes());
        let span = nodes.max(2);
        let uplink = match fabric {
            Fabric::NumaLink4 => LinkSpec {
                latency_s: 0.0,
                bandwidth_bps: 400e9 / nodes as f64,
                capacity_msgs: UPLINK_SLOTS,
            },
            Fabric::InfiniBand => LinkSpec {
                latency_s: fabric.latency(span) - fabric.latency(1),
                bandwidth_bps: 2.0 * fabric.bandwidth(span),
                capacity_msgs: UPLINK_SLOTS,
            },
            Fabric::TenGigE => LinkSpec {
                latency_s: fabric.latency(span) / 2.0,
                bandwidth_bps: 1.25e9,
                capacity_msgs: UPLINK_SLOTS,
            },
        };
        Topology::columbia_with_uplink(fabric, nranks, nodes, uplink)
    }

    /// The uncongested limit: identical per-rank links, but every shared
    /// uplink is ideal (zero latency, infinite bandwidth, unbounded
    /// queue). A packet meeting no other traffic is delivered at exactly
    /// the analytic `inject + latency(span) + bytes / bandwidth(span)`.
    pub fn uncontended(fabric: Fabric, nranks: usize, nodes: usize) -> Self {
        let nodes = nodes.clamp(1, fabric.max_nodes());
        Topology::columbia_with_uplink(fabric, nranks, nodes, LinkSpec::ideal())
    }

    fn columbia_with_uplink(fabric: Fabric, nranks: usize, nodes: usize, uplink: LinkSpec) -> Self {
        assert!(nranks >= 1);
        let span = nodes;
        let intra = LinkSpec {
            latency_s: fabric.latency(1),
            bandwidth_bps: fabric.bandwidth(1),
            capacity_msgs: usize::MAX,
        };
        let nic = LinkSpec {
            latency_s: fabric.latency(span),
            bandwidth_bps: fabric.bandwidth(span),
            capacity_msgs: usize::MAX,
        };
        let mut links = Vec::with_capacity(2 * nranks + nodes);
        links.extend(std::iter::repeat_n(intra, nranks));
        links.extend(std::iter::repeat_n(nic, nranks));
        links.extend(std::iter::repeat_n(uplink, nodes));
        Topology {
            name: match fabric {
                Fabric::NumaLink4 => "numalink4",
                Fabric::InfiniBand => "infiniband",
                Fabric::TenGigE => "10gige",
            },
            nranks,
            nodes,
            links,
            kind: TopoKind::Columbia,
        }
    }

    /// An explicit network for tests: `routes[(src, dst)]` lists the link
    /// ids a packet traverses in order.
    pub fn explicit(
        nranks: usize,
        links: Vec<LinkSpec>,
        routes: BTreeMap<(usize, usize), Vec<usize>>,
    ) -> Self {
        for (pair, route) in &routes {
            assert!(!route.is_empty(), "empty route for {pair:?}");
            for &l in route {
                assert!(l < links.len(), "route {pair:?} uses unknown link {l}");
            }
        }
        Topology {
            name: "explicit",
            nranks,
            nodes: 1,
            links,
            kind: TopoKind::Explicit(routes),
        }
    }

    /// `nsrc` sources (ranks `0..nsrc`) all funnelling into rank `nsrc`
    /// over one shared link — the canonical arbitration fixture.
    pub fn shared_link(nsrc: usize, spec: LinkSpec) -> Self {
        let routes = (0..nsrc).map(|s| ((s, nsrc), vec![0])).collect();
        Topology::explicit(nsrc + 1, vec![spec], routes)
    }

    /// The Columbia node hosting rank `r` (round-robin scatter placement).
    pub fn node_of(&self, r: usize) -> usize {
        r % self.nodes.max(1)
    }

    /// Number of links in the network.
    pub fn nlinks(&self) -> usize {
        self.links.len()
    }

    /// Link `l`'s physical parameters.
    pub fn link(&self, l: usize) -> LinkSpec {
        self.links[l]
    }

    /// The link ids a `src -> dst` packet traverses, in order.
    pub fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        match &self.kind {
            TopoKind::Columbia => {
                if self.node_of(src) == self.node_of(dst) {
                    vec![src]
                } else {
                    vec![self.nranks + src, 2 * self.nranks + self.node_of(src)]
                }
            }
            TopoKind::Explicit(routes) => routes
                .get(&(src, dst))
                .unwrap_or_else(|| panic!("no route {src} -> {dst}"))
                .clone(),
        }
    }
}

/// Largest delivery time, 0.0 for no traffic.
pub fn makespan(deliveries: &[Delivery]) -> f64 {
    deliveries.iter().fold(0.0, |m, d| m.max(d.deliver_s))
}

/// The analytic oracle extended to a packet list: every source serialises
/// its own sends at the closed-form per-message cost for the pair's span,
/// with no cross-source contention anywhere. This is exactly what
/// [`Topology::uncontended`] simulates, and the baseline the emergent
/// model's slowdown is compared against.
pub fn analytic_makespan(fabric: Fabric, nodes: usize, packets: &[Packet]) -> f64 {
    let nodes = nodes.clamp(1, fabric.max_nodes());
    let mut free: BTreeMap<usize, f64> = BTreeMap::new();
    let mut end = 0.0f64;
    for p in packets {
        let span = if p.src % nodes == p.dst % nodes {
            1
        } else {
            nodes
        };
        let cost = fabric.latency(span) + p.bytes as f64 / fabric.bandwidth(span);
        let t = free.get(&p.src).copied().unwrap_or(0.0).max(p.inject_s) + cost;
        free.insert(p.src, t);
        end = end.max(t);
    }
    end
}

/// Simulation event: a packet entering the fabric, or a link finishing
/// the message it is serving.
enum Ev {
    Inject(usize),
    Done(usize),
}

/// Who is waiting for a queue slot on a link: a blocked upstream link
/// (holding a finished message at its head) or a not-yet-admitted packet.
enum Waiter {
    Link(usize),
    Inject(usize),
}

/// Per-link runtime state.
struct LinkRt {
    spec: LinkSpec,
    /// Per-source FIFO ports (empty ports are removed, so iteration sees
    /// exactly the contending sources, in source order).
    ports: BTreeMap<usize, VecDeque<usize>>,
    /// Total queued messages across ports (in-service not counted).
    queued: usize,
    /// Message in service (or finished and blocked downstream).
    busy_with: Option<usize>,
    /// `busy_with` finished service but its next hop is full.
    blocked: bool,
    /// Last source served (round-robin resume point).
    rr_last: Option<usize>,
    /// Bytes served per source (fair-share deficit counters).
    served_bytes: BTreeMap<usize, u64>,
    /// FIFO of admissions pending on a free slot.
    waiters: VecDeque<Waiter>,
}

struct Sim<'a> {
    topo: &'a Topology,
    arbiter: Arbiter,
    packets: &'a [Packet],
    routes: Vec<Vec<usize>>,
    hop: Vec<usize>,
    links: Vec<LinkRt>,
    q: TimeQueue<Ev>,
    out: Vec<Option<(f64, usize)>>,
    delivered: usize,
}

/// Event-time key: IEEE bit order equals numeric order for non-negative
/// finite f64, so `TimeQueue`'s u64 clock can carry seconds directly.
fn tbits(t: f64) -> u64 {
    debug_assert!(t >= 0.0 && t.is_finite(), "bad event time {t}");
    t.to_bits()
}

impl<'a> Sim<'a> {
    fn new(topo: &'a Topology, arbiter: Arbiter, packets: &'a [Packet]) -> Self {
        for (i, p) in packets.iter().enumerate() {
            assert!(p.src != p.dst, "packet {i} sends to itself");
            assert!(
                p.src < topo.nranks && p.dst < topo.nranks,
                "packet {i} rank oob"
            );
            assert!(
                p.inject_s >= 0.0 && p.inject_s.is_finite(),
                "packet {i} inject time {}",
                p.inject_s
            );
        }
        for (l, spec) in topo.links.iter().enumerate() {
            assert!(
                spec.latency_s >= 0.0 && spec.latency_s.is_finite(),
                "link {l} latency"
            );
            assert!(spec.bandwidth_bps > 0.0, "link {l} bandwidth");
            assert!(spec.capacity_msgs >= 1, "link {l} capacity");
        }
        let links = topo
            .links
            .iter()
            .map(|&spec| LinkRt {
                spec,
                ports: BTreeMap::new(),
                queued: 0,
                busy_with: None,
                blocked: false,
                rr_last: None,
                served_bytes: BTreeMap::new(),
                waiters: VecDeque::new(),
            })
            .collect();
        let routes: Vec<Vec<usize>> = packets.iter().map(|p| topo.route(p.src, p.dst)).collect();
        let mut q = TimeQueue::new();
        let nlinks = topo.links.len() as u64;
        for (m, p) in packets.iter().enumerate() {
            q.push(tbits(p.inject_s), nlinks + m as u64, Ev::Inject(m));
        }
        Sim {
            topo,
            arbiter,
            packets,
            routes,
            hop: vec![0; packets.len()],
            links,
            q,
            out: vec![None; packets.len()],
            delivered: 0,
        }
    }

    fn now_s(&self) -> f64 {
        f64::from_bits(self.q.now())
    }

    fn has_space(&self, l: usize) -> bool {
        self.links[l].queued < self.links[l].spec.capacity_msgs
    }

    /// Put `m` in `l`'s port queue (caller checked space) and poke the
    /// server.
    fn enqueue(&mut self, l: usize, m: usize) {
        let src = self.packets[m].src;
        self.links[l].ports.entry(src).or_default().push_back(m);
        self.links[l].queued += 1;
        self.try_serve(l);
    }

    /// Arbiter decision: which source's port the idle link `l` serves.
    fn pick(&self, l: usize) -> usize {
        let lk = &self.links[l];
        match self.arbiter {
            Arbiter::Priority => *lk.ports.keys().next().expect("pick on empty link"),
            Arbiter::RoundRobin => {
                let first = *lk.ports.keys().next().expect("pick on empty link");
                match lk.rr_last {
                    None => first,
                    Some(last) => *lk
                        .ports
                        .range(last + 1..)
                        .next()
                        .map(|(s, _)| s)
                        .unwrap_or(&first),
                }
            }
            Arbiter::FairShare => *lk
                .ports
                .keys()
                .min_by_key(|s| (lk.served_bytes.get(s).copied().unwrap_or(0), **s))
                .expect("pick on empty link"),
        }
    }

    /// If `l` is idle and has queued traffic, start serving the arbiter's
    /// choice and hand the freed queue slot to the first waiter.
    fn try_serve(&mut self, l: usize) {
        if self.links[l].busy_with.is_some() || self.links[l].queued == 0 {
            return;
        }
        let src = self.pick(l);
        let m = {
            let lk = &mut self.links[l];
            let port = lk.ports.get_mut(&src).expect("picked empty port");
            let m = port.pop_front().expect("picked empty port");
            if port.is_empty() {
                lk.ports.remove(&src);
            }
            lk.queued -= 1;
            lk.rr_last = Some(src);
            let bytes = self.packets[m].bytes;
            *lk.served_bytes.entry(src).or_insert(0) += bytes;
            lk.busy_with = Some(m);
            m
        };
        let service = self.links[l].spec.service_s(self.packets[m].bytes);
        let done = self.now_s() + service;
        self.q.push(tbits(done), l as u64, Ev::Done(l));
        // A queue slot freed: admit at most one waiter into it. This runs
        // *after* busy_with is set, so re-entrant try_serve calls from the
        // admission chain see the link busy and cannot double-serve.
        self.admit_one(l);
    }

    /// A slot freed on `l`: admit the longest-waiting admission, FIFO.
    fn admit_one(&mut self, l: usize) {
        if !self.has_space(l) {
            return;
        }
        match self.links[l].waiters.pop_front() {
            None => {}
            Some(Waiter::Inject(m)) => self.enqueue(l, m),
            Some(Waiter::Link(u)) => {
                let m = self.links[u].busy_with.take().expect("blocked link idle");
                debug_assert!(self.links[u].blocked);
                self.links[u].blocked = false;
                self.hop[m] += 1;
                self.enqueue(l, m);
                // The upstream head cleared: it can serve again, which in
                // turn frees one of its own slots for *its* waiters.
                self.try_serve(u);
            }
        }
    }

    /// Link `l` finished serving its message: deliver it, advance it one
    /// hop, or block behind a full downstream queue.
    fn on_done(&mut self, l: usize) {
        let m = self.links[l].busy_with.expect("done on idle link");
        let next_hop = self.hop[m] + 1;
        if next_hop == self.routes[m].len() {
            self.links[l].busy_with = None;
            self.out[m] = Some((self.now_s(), self.delivered));
            self.delivered += 1;
            self.try_serve(l);
        } else {
            let d = self.routes[m][next_hop];
            if self.has_space(d) {
                self.links[l].busy_with = None;
                self.hop[m] = next_hop;
                self.enqueue(d, m);
                self.try_serve(l);
            } else {
                self.links[l].blocked = true;
                self.links[d].waiters.push_back(Waiter::Link(l));
            }
        }
    }

    fn run(mut self) -> Vec<Delivery> {
        while let Some((_, _, ev)) = self.q.pop() {
            match ev {
                Ev::Inject(m) => {
                    let first = self.routes[m][0];
                    if self.has_space(first) {
                        self.enqueue(first, m);
                    } else {
                        self.links[first].waiters.push_back(Waiter::Inject(m));
                    }
                }
                Ev::Done(l) => self.on_done(l),
            }
        }
        assert_eq!(
            self.delivered,
            self.packets.len(),
            "fabric lost messages: {} of {} delivered ({})",
            self.delivered,
            self.packets.len(),
            self.topo.name
        );
        self.packets
            .iter()
            .zip(self.out)
            .map(|(&packet, slot)| {
                let (deliver_s, order) = slot.expect("undelivered packet survived the audit");
                Delivery {
                    packet,
                    deliver_s,
                    order,
                }
            })
            .collect()
    }
}

/// Run `packets` through `topo` under `arbiter`. Returns one [`Delivery`]
/// per packet, in input order; panics if the fabric loses a message
/// (conservation is an internal invariant, not a caller obligation).
pub fn simulate(topo: &Topology, arbiter: Arbiter, packets: &[Packet]) -> Vec<Delivery> {
    Sim::new(topo, arbiter, packets).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(src: usize, dst: usize, bytes: u64, inject_s: f64) -> Packet {
        Packet {
            src,
            dst,
            bytes,
            inject_s,
        }
    }

    /// A 1 µs + 1 GB/s shared link with a small queue.
    fn slow_link(capacity: usize) -> LinkSpec {
        LinkSpec {
            latency_s: 1.0e-6,
            bandwidth_bps: 1.0e9,
            capacity_msgs: capacity,
        }
    }

    #[test]
    fn lone_packet_costs_exactly_latency_plus_transfer() {
        let topo = Topology::shared_link(1, slow_link(usize::MAX));
        let d = simulate(&topo, Arbiter::RoundRobin, &[pkt(0, 1, 8000, 0.5)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].deliver_s, 0.5 + (1.0e-6 + 8000.0 / 1.0e9));
        assert_eq!(d[0].order, 0);
    }

    #[test]
    fn saturated_link_serialises_and_round_robin_alternates() {
        // Two sources, three equal messages each, all injected at t=0.
        let topo = Topology::shared_link(2, slow_link(usize::MAX));
        let mut packets = Vec::new();
        for k in 0..3 {
            packets.push(pkt(0, 2, 1000, 0.0));
            packets.push(pkt(1, 2, 1000, 0.0));
            let _ = k;
        }
        let d = simulate(&topo, Arbiter::RoundRobin, &packets);
        // Deliveries strictly alternate sources under round-robin.
        let mut by_order: Vec<&Delivery> = d.iter().collect();
        by_order.sort_by_key(|x| x.order);
        let srcs: Vec<usize> = by_order.iter().map(|x| x.packet.src).collect();
        assert_eq!(srcs, vec![0, 1, 0, 1, 0, 1]);
        // Makespan is the full serialised load.
        let per = 1.0e-6 + 1000.0 / 1.0e9;
        assert!((makespan(&d) - 6.0 * per).abs() < 1e-12);
    }

    #[test]
    fn priority_arbiter_starves_the_high_id_flow() {
        let topo = Topology::shared_link(2, slow_link(usize::MAX));
        let mut packets = Vec::new();
        for _ in 0..4 {
            packets.push(pkt(0, 2, 1000, 0.0));
        }
        // Source 1's message is queued while source 0's first is in
        // service; priority then drains source 0's port completely first.
        packets.push(pkt(1, 2, 1000, 0.0));
        let d = simulate(&topo, Arbiter::Priority, &packets);
        let mut by_order: Vec<&Delivery> = d.iter().collect();
        by_order.sort_by_key(|x| x.order);
        let srcs: Vec<usize> = by_order.iter().map(|x| x.packet.src).collect();
        assert_eq!(srcs, vec![0, 0, 0, 0, 1]);
    }

    #[test]
    fn fair_share_equalises_bytes_not_message_counts() {
        // Source 0 sends 4 x 4000-byte messages, source 1 sends 16 x
        // 1000-byte messages. Fair-share interleaves so served bytes stay
        // balanced: after each big message, several small ones catch up.
        let topo = Topology::shared_link(2, slow_link(usize::MAX));
        let mut packets = Vec::new();
        for _ in 0..4 {
            packets.push(pkt(0, 2, 4000, 0.0));
        }
        for _ in 0..16 {
            packets.push(pkt(1, 2, 1000, 0.0));
        }
        let d = simulate(&topo, Arbiter::FairShare, &packets);
        let mut by_order: Vec<&Delivery> = d.iter().collect();
        by_order.sort_by_key(|x| x.order);
        // Count source-1 deliveries before source 0's second delivery:
        // deficit counting must let several small messages through.
        let second_big = by_order
            .iter()
            .filter(|x| x.packet.src == 0)
            .nth(1)
            .unwrap()
            .order;
        let small_before = by_order
            .iter()
            .filter(|x| x.packet.src == 1 && x.order < second_big)
            .count();
        assert!(
            small_before >= 3,
            "fair-share served only {small_before} small messages before the second big one"
        );
    }

    #[test]
    fn backpressure_blocks_upstream_and_loses_nothing() {
        // Chain: fast feeder link -> slow drain link with one queue slot.
        // The feeder must stall (head-of-line) whenever the drain is full.
        let links = vec![
            LinkSpec {
                latency_s: 0.0,
                bandwidth_bps: 100.0e9,
                capacity_msgs: usize::MAX,
            },
            slow_link(1),
        ];
        let routes = std::iter::once(((0usize, 1usize), vec![0usize, 1])).collect();
        let topo = Topology::explicit(2, links, routes);
        let n = 8;
        let packets: Vec<Packet> = (0..n).map(|_| pkt(0, 1, 1000, 0.0)).collect();
        let d = simulate(&topo, Arbiter::RoundRobin, &packets);
        assert_eq!(d.len(), n);
        // Everything funnels through the slow link back-to-back; the fast
        // feeder adds its (tiny) service only ahead of the first fill.
        let per = 1.0e-6 + 1000.0 / 1.0e9;
        let span = makespan(&d);
        assert!(
            span >= n as f64 * per && span < n as f64 * per + 1e-6,
            "span {span}"
        );
        // FIFO through the chain: delivery order equals injection order.
        let orders: Vec<usize> = d.iter().map(|x| x.order).collect();
        assert_eq!(orders, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn uncontended_columbia_matches_the_analytic_makespan_exactly() {
        for fabric in [Fabric::NumaLink4, Fabric::InfiniBand, Fabric::TenGigE] {
            let topo = Topology::uncontended(fabric, 8, 4);
            // One cross-node and one intra-node packet per rank, spaced so
            // nothing queues.
            let mut packets = Vec::new();
            for r in 0..8usize {
                packets.push(pkt(r, (r + 1) % 8, 4096, r as f64));
                packets.push(pkt(r, (r + 4) % 8, 4096, 10.0 + r as f64));
            }
            let d = simulate(&topo, Arbiter::RoundRobin, &packets);
            let analytic = analytic_makespan(fabric, 4, &packets);
            assert_eq!(makespan(&d).to_bits(), analytic.to_bits(), "{fabric:?}");
        }
    }

    #[test]
    fn infiniband_degradation_is_emergent_not_fitted() {
        // 8 ranks scattered over 2 nodes (4 per node), ring + exchange
        // traffic: the shared IB uplinks queue, NUMAlink's fat-tree does
        // not. The contention IB/NL slowdown must exceed the analytic
        // ratio, which by construction has no cross-flow queueing at all.
        let mut packets = Vec::new();
        for r in 0..8usize {
            for k in 1..4usize {
                packets.push(pkt(r, (r + k) % 8, 65536, 0.0));
            }
        }
        let ratio = |f: Fabric| {
            let topo = Topology::columbia(f, 8, 2);
            makespan(&simulate(&topo, Arbiter::RoundRobin, &packets))
        };
        let contended = ratio(Fabric::InfiniBand) / ratio(Fabric::NumaLink4);
        let analytic = analytic_makespan(Fabric::InfiniBand, 2, &packets)
            / analytic_makespan(Fabric::NumaLink4, 2, &packets);
        assert!(
            contended > analytic,
            "IB slowdown should be emergent: contended {contended:.2}x vs analytic {analytic:.2}x"
        );
    }

    columbia_rt::props! {
        config: columbia_rt::props::Config::with_cases(48);

        /// Conservation under random traffic on the contended Columbia
        /// nets: every packet is delivered exactly once, and the delivery
        /// order ids form a permutation of 0..n.
        fn prop_conservation_on_columbia(seed in 0u64..u64::MAX, n in 1usize..40) {
            let mut rng = columbia_rt::Pcg32::seed_from_u64(seed);
            let fabric = match rng.gen_range(0u32..3) {
                0 => Fabric::NumaLink4,
                1 => Fabric::InfiniBand,
                _ => Fabric::TenGigE,
            };
            let topo = Topology::columbia(fabric, 6, 3);
            let packets: Vec<Packet> = (0..n)
                .map(|_| {
                    let src = rng.gen_range(0u64..6) as usize;
                    let mut dst = rng.gen_range(0u64..6) as usize;
                    if dst == src { dst = (dst + 1) % 6; }
                    Packet {
                        src,
                        dst,
                        bytes: rng.gen_range(1u64..100_000),
                        inject_s: rng.gen_range(0u64..1000) as f64 * 1e-6,
                    }
                })
                .collect();
            let arb = match rng.gen_range(0u32..3) {
                0 => Arbiter::RoundRobin,
                1 => Arbiter::Priority,
                _ => Arbiter::FairShare,
            };
            let d = simulate(&topo, arb, &packets);
            assert_eq!(d.len(), n);
            let mut orders: Vec<usize> = d.iter().map(|x| x.order).collect();
            orders.sort_unstable();
            assert_eq!(orders, (0..n).collect::<Vec<_>>(), "order ids not a permutation");
            for x in &d {
                assert!(x.deliver_s >= x.packet.inject_s);
            }
        }
    }
}
