//! Speedup-series generation for the figure harnesses.

use crate::columbia::MachineConfig;
use crate::model::{simulate_cycle, RunConfig, SimError};
use crate::profile::CycleProfile;

/// One point of a scaling study.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// CPUs used.
    pub ncpus: usize,
    /// Cycle wall-clock seconds (None if the configuration is infeasible).
    pub seconds: Option<f64>,
    /// Parallel speedup relative to the reference point (perfect speedup
    /// assumed at the reference, as in the paper's figures).
    pub speedup: Option<f64>,
    /// Achieved TFLOP/s.
    pub tflops: Option<f64>,
    /// Why the point is missing, if it is.
    pub error: Option<SimError>,
}

/// Produce a speedup series over `cpu_counts`, normalised so that the first
/// *feasible* count achieves perfect speedup (the paper assumes ideal
/// speedup at its smallest CPU count: 128 for NSU3D, 32 for Cart3D).
pub fn speedup_series(
    profile: &CycleProfile,
    machine: &MachineConfig,
    cpu_counts: &[usize],
    make_run: impl Fn(usize) -> RunConfig,
) -> Vec<ScalingPoint> {
    let mut reference: Option<(usize, f64)> = None;
    let mut points = Vec::with_capacity(cpu_counts.len());
    for &n in cpu_counts {
        let run = make_run(n);
        match simulate_cycle(profile, machine, &run) {
            Ok(b) => {
                if reference.is_none() {
                    reference = Some((n, b.seconds));
                }
                let (rn, rt) = reference.unwrap();
                points.push(ScalingPoint {
                    ncpus: n,
                    seconds: Some(b.seconds),
                    speedup: Some(rn as f64 * rt / b.seconds),
                    tflops: Some(b.flops_per_second() / 1e12),
                    error: None,
                });
            }
            Err(e) => points.push(ScalingPoint {
                ncpus: n,
                seconds: None,
                speedup: None,
                tflops: None,
                error: Some(e),
            }),
        }
    }
    points
}

/// Standard CPU counts of the paper's NSU3D studies.
pub const NSU3D_CPU_COUNTS: [usize; 5] = [128, 256, 502, 1004, 2008];

/// Standard CPU counts of the paper's Cart3D multi-node studies.
pub const CART3D_CPU_COUNTS: [usize; 10] = [32, 64, 128, 256, 496, 508, 688, 1024, 1524, 2016];

/// Node placement of the paper's Cart3D runs (§VII): 32-496 CPUs on one
/// node, 508-1000 spanning two nodes, 1024-2016 spanning four.
pub fn cart3d_node_span(ncpus: usize) -> usize {
    if ncpus >= 1024 {
        4
    } else if ncpus >= 508 {
        2
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interconnect::Fabric;
    use crate::profile::paper_nsu3d_72m as nsu3d_72m_profile;

    #[test]
    fn series_normalises_to_first_feasible() {
        let m = MachineConfig::columbia_vortex();
        let p = nsu3d_72m_profile();
        let pts = speedup_series(&p, &m, &NSU3D_CPU_COUNTS, |n| {
            RunConfig::mpi(n, Fabric::NumaLink4)
        });
        assert_eq!(pts.len(), 5);
        assert!((pts[0].speedup.unwrap() - 128.0).abs() < 1e-9);
        // Monotone increasing speedups on NUMAlink.
        for w in pts.windows(2) {
            assert!(w[1].speedup.unwrap() > w[0].speedup.unwrap());
        }
    }

    #[test]
    fn infeasible_points_reported_not_skipped() {
        let m = MachineConfig::columbia_vortex();
        let p = nsu3d_72m_profile();
        let pts = speedup_series(&p, &m, &[1004, 2008], |n| {
            RunConfig::mpi(n, Fabric::InfiniBand)
        });
        assert!(pts[0].speedup.is_some());
        assert!(pts[1].speedup.is_none());
        assert!(pts[1].error.is_some());
    }
}
