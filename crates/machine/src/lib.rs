//! Analytic performance model of the NASA Columbia supercluster.
//!
//! We obviously cannot run on 2016 Itanium2 CPUs across NUMAlink4 and
//! InfiniBand fabrics; what the paper's scalability figures actually encode
//! is the interaction of four measurable ingredients:
//!
//! 1. **per-CPU floating-point rate** with an L3 working-set effect (the
//!    source of the famous superlinear speedups at 2008 CPUs),
//! 2. **interconnect latency/bandwidth**, per fabric and per node span,
//!    including InfiniBand's degradation across nodes and its MPI
//!    connection limit (paper eq. 1, practical limit 1524 ranks on 4 nodes),
//! 3. **communication volume scaling** of domain-decomposed meshes
//!    (surface-to-volume laws measured from real partitions of real meshes
//!    by the solver crates),
//! 4. **multigrid cycling structure** (a W-cycle visits the coarsest of
//!    `L` levels `2^(L-1)` times; coarse levels have almost no work but the
//!    full communication graph).
//!
//! Solver crates *measure* ingredients 3-4 on real meshes at laptop scale
//! and extrapolate the surface laws; this crate supplies 1-2 from the
//! paper's published hardware parameters and composes everything into
//! wall-clock-per-cycle predictions at 32-4016 CPUs.

#![allow(clippy::needless_range_loop)] // index loops mirror the stencil/block structure of the kernels
#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0.0)` deliberately catches NaNs

pub mod columbia;
pub mod contention;
pub mod faults;
pub mod interconnect;
pub mod model;
pub mod profile;
pub mod scaling;

pub use columbia::MachineConfig;
pub use contention::{
    analytic_makespan, makespan, simulate, Arbiter, Delivery, LinkSpec, Packet, Topology,
};
pub use faults::{fabric_fault_config, fabric_severity};
pub use interconnect::{ib_rank_limit, Fabric};
pub use model::{check_run, ProgModel, SimError};
pub use model::{simulate_cycle, CycleBreakdown, RunConfig};
pub use profile::{paper_cart3d_25m, paper_nsu3d_72m};
pub use profile::{CycleProfile, IntergridProfile, LevelProfile};
pub use scaling::{
    cart3d_node_span, speedup_series, ScalingPoint, CART3D_CPU_COUNTS, NSU3D_CPU_COUNTS,
};
