//! Hybrid MPI x OpenMP layouts (paper §III, Figure 7).
//!
//! Under the hybrid model each MPI process owns several partitions, one
//! OpenMP thread per partition. Exchanges between partitions of the same
//! process are shared-memory copies; messages to partitions of another
//! process are packed by all threads into **one buffer per remote process**
//! and sent by the master thread alone (the strategy the paper adopts after
//! finding thread-parallel MPI "locks" and serialises).
//!
//! This module computes, from per-partition exchange plans, the *aggregated*
//! per-process message statistics — the quantity the Columbia machine model
//! needs to price a hybrid run.

use crate::exchange::Decomposition;
use crate::stats::CommStats;

/// Assignment of partitions to MPI ranks.
#[derive(Clone, Debug)]
pub struct HybridLayout {
    /// Number of MPI ranks.
    pub nranks: usize,
    /// OpenMP threads (= partitions) per rank.
    pub threads_per_rank: usize,
    /// `part_to_rank[p]` = owning MPI rank of partition `p`.
    pub part_to_rank: Vec<usize>,
}

impl HybridLayout {
    /// Block layout: partition `p` belongs to rank `p / threads_per_rank`.
    /// This matches the solver practice of keeping neighbouring partitions
    /// (which METIS numbers contiguously only loosely) on one node; block
    /// assignment over a locality-ordered partition vector is the standard
    /// choice.
    ///
    /// Uneven layouts are first-class: when `threads_per_rank` does not
    /// divide `nparts`, the **last rank absorbs the remainder** (the paper's
    /// own runs were uneven — e.g. 508 OpenMP threads on 512-CPU nodes).
    /// With fewer partitions than threads per rank, everything lands on one
    /// rank (pure OpenMP).
    ///
    /// # Panics
    /// If `threads_per_rank` or `nparts` is zero.
    pub fn block(nparts: usize, threads_per_rank: usize) -> Self {
        assert!(threads_per_rank > 0, "threads_per_rank must be positive");
        assert!(nparts > 0, "layout needs at least one partition");
        let nranks = (nparts / threads_per_rank).max(1);
        let part_to_rank = (0..nparts)
            .map(|p| (p / threads_per_rank).min(nranks - 1))
            .collect();
        HybridLayout {
            nranks,
            threads_per_rank,
            part_to_rank,
        }
    }

    /// Pure-MPI layout (one partition per rank).
    pub fn pure_mpi(nparts: usize) -> Self {
        Self::block(nparts, 1)
    }

    /// Aggregate per-partition exchange plans into per-MPI-rank send
    /// statistics: intra-rank traffic disappears (shared memory); messages
    /// from all threads of rank r to all threads of rank s merge into a
    /// single master-thread message (one per remote peer rank), with summed
    /// bytes.
    ///
    /// `bytes_per_entry` is the payload size per exchanged vertex (e.g.
    /// `6 * 8` for the six-variable RANS state).
    pub fn aggregate(&self, decomp: &Decomposition, bytes_per_entry: usize) -> Vec<CommStats> {
        let mut stats = vec![CommStats::default(); self.nranks];
        // Accumulate bytes per (rank, peer rank) pair.
        let mut bytes = vec![std::collections::BTreeMap::<usize, u64>::new(); self.nranks];
        for (p, plan) in decomp.plans.iter().enumerate() {
            let rp = self.part_to_rank[p];
            for (peer_part, idx) in &plan.sends {
                let rq = self.part_to_rank[*peer_part];
                if rq == rp {
                    continue; // shared memory copy
                }
                *bytes[rp].entry(rq).or_insert(0) += (idx.len() * bytes_per_entry) as u64;
            }
        }
        for (r, per_peer) in bytes.into_iter().enumerate() {
            for (peer, b) in per_peer {
                // One aggregated message per peer rank.
                stats[r].record_send(peer, b as usize);
            }
        }
        stats
    }

    /// Merge *measured* per-partition send statistics into per-MPI-rank
    /// statistics under this layout.
    ///
    /// Partition peers are mapped to their owning ranks; intra-rank traffic
    /// disappears (shared-memory copies); and traffic from all threads of a
    /// rank towards the same remote rank is **summed** — sibling partitions
    /// routinely share remote peers, so overlapping peer sets must
    /// accumulate rather than overwrite (the bug this method replaces:
    /// naively inserting per-partition peer tables into the rank table
    /// silently kept only the last thread's counts). Fault-protocol
    /// counters are per sending thread and accumulate over the rank's
    /// partitions unchanged.
    ///
    /// # Panics
    /// If `per_part` does not have exactly one entry per partition.
    pub fn aggregate_measured(&self, per_part: &[CommStats]) -> Vec<CommStats> {
        assert_eq!(
            per_part.len(),
            self.part_to_rank.len(),
            "one CommStats per partition required"
        );
        let mut out = vec![CommStats::default(); self.nranks];
        for (p, s) in per_part.iter().enumerate() {
            let rp = self.part_to_rank[p];
            for (peer_part, msgs, bytes) in s.peers() {
                let rq = self.part_to_rank[peer_part];
                if rq == rp {
                    continue; // shared-memory copy
                }
                out[rp].record_sends(rq, msgs, bytes);
            }
            out[rp].absorb_faults(s.faults());
            out[rp].absorb_pool(s.pool());
        }
        out
    }

    /// Fraction of exchanged vertex entries that stay inside a rank
    /// (shared-memory) — rises with `threads_per_rank`, the reason hybrid
    /// runs need fewer, larger messages.
    pub fn shared_memory_fraction(&self, decomp: &Decomposition) -> f64 {
        let mut intra = 0usize;
        let mut total = 0usize;
        for (p, plan) in decomp.plans.iter().enumerate() {
            let rp = self.part_to_rank[p];
            for (peer_part, idx) in &plan.sends {
                total += idx.len();
                if self.part_to_rank[*peer_part] == rp {
                    intra += idx.len();
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            intra as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exchange::decompose;

    /// Chain of 8 vertices in 4 partitions of 2.
    fn chain4() -> Decomposition {
        let edges: Vec<(u32, u32)> = (0..7).map(|i| (i, i + 1)).collect();
        let part = vec![0u32, 0, 1, 1, 2, 2, 3, 3];
        decompose(8, &part, 4, &edges)
    }

    #[test]
    fn pure_mpi_keeps_all_messages() {
        let d = chain4();
        let layout = HybridLayout::pure_mpi(4);
        let stats = layout.aggregate(&d, 8);
        // Middle ranks talk to two peers, end ranks to one.
        assert_eq!(stats[0].total_msgs(), 1);
        assert_eq!(stats[1].total_msgs(), 2);
        assert_eq!(layout.shared_memory_fraction(&d), 0.0);
    }

    #[test]
    fn two_threads_per_rank_halve_the_peers() {
        let d = chain4();
        let layout = HybridLayout::block(4, 2);
        assert_eq!(layout.nranks, 2);
        let stats = layout.aggregate(&d, 8);
        // Only the single 1<->2 partition boundary crosses ranks now.
        assert_eq!(stats[0].total_msgs(), 1);
        assert_eq!(stats[1].total_msgs(), 1);
        assert_eq!(stats[0].total_bytes(), 8);
        assert!(layout.shared_memory_fraction(&d) > 0.5);
    }

    #[test]
    fn all_threads_one_rank_is_pure_openmp() {
        let d = chain4();
        let layout = HybridLayout::block(4, 4);
        let stats = layout.aggregate(&d, 8);
        assert_eq!(stats[0].total_msgs(), 0);
        assert_eq!(layout.shared_memory_fraction(&d), 1.0);
    }

    #[test]
    fn aggregation_merges_messages_per_peer_rank() {
        // 2-D: 4 partitions in a square, 2 ranks of 2. Rank 0 = parts {0,1},
        // rank 1 = parts {2,3}; both 0-2 and 1-3 boundaries merge into ONE
        // message rank0->rank1.
        let id = |x: usize, y: usize| (x + 4 * y) as u32;
        let mut edges = Vec::new();
        for y in 0..4 {
            for x in 0..4 {
                if x + 1 < 4 {
                    edges.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < 4 {
                    edges.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        // Quadrant partitions: 0 = SW, 1 = SE, 2 = NW, 3 = NE.
        let part: Vec<u32> = (0..16)
            .map(|v| {
                let (x, y) = (v % 4, v / 4);
                ((x / 2) + 2 * (y / 2)) as u32
            })
            .collect();
        let d = decompose(16, &part, 4, &edges);
        let layout = HybridLayout::block(4, 2);
        let stats = layout.aggregate(&d, 8);
        // Each rank sends exactly one aggregated message to the other.
        assert_eq!(stats[0].total_msgs(), 1);
        assert_eq!(stats[1].total_msgs(), 1);
        assert_eq!(stats[0].degree(), 1);
        // Bytes: the full horizontal boundary (4 vertices) in one buffer.
        assert_eq!(stats[0].total_bytes(), 4 * 8);
    }

    #[test]
    fn uneven_layout_last_rank_absorbs_remainder() {
        // 5 partitions, 2 threads/rank: 2 ranks, the last takes 3 parts.
        let layout = HybridLayout::block(5, 2);
        assert_eq!(layout.nranks, 2);
        assert_eq!(layout.part_to_rank, vec![0, 0, 1, 1, 1]);
        // Fewer partitions than threads per rank degenerates to one rank.
        let tiny = HybridLayout::block(3, 4);
        assert_eq!(tiny.nranks, 1);
        assert_eq!(tiny.part_to_rank, vec![0, 0, 0]);
        // Aggregation works over the uneven mapping: a chain of 10 vertices
        // in 5 partitions of 2 has rank boundaries only at the 1|2 cut.
        let edges: Vec<(u32, u32)> = (0..9).map(|i| (i, i + 1)).collect();
        let part: Vec<u32> = (0..10u32).map(|v| v / 2).collect();
        let d = decompose(10, &part, 5, &edges);
        let stats = layout.aggregate(&d, 8);
        assert_eq!(stats[0].total_msgs(), 1);
        assert_eq!(stats[1].total_msgs(), 1);
        assert!(layout.shared_memory_fraction(&d) > 0.5);
    }

    #[test]
    fn measured_aggregation_sums_overlapping_peers() {
        // 4 partitions, 2 ranks of 2. Partitions 0 and 1 (both rank 0)
        // each send to partitions 2 and 3 (both rank 1): after mapping,
        // all four streams land on the SAME peer rank and must sum.
        let layout = HybridLayout::block(4, 2);
        let mut parts = vec![CommStats::default(); 4];
        parts[0].record_send(2, 100);
        parts[0].record_send(3, 10);
        parts[0].record_send(1, 999); // intra-rank: must vanish
        parts[1].record_send(2, 1);
        parts[1].record_send(3, 1);
        parts[1].record_retries(2);
        parts[2].record_send(0, 5);
        parts[3].record_send(1, 7);
        parts[3].record_stall(4);
        let ranks = layout.aggregate_measured(&parts);
        // Rank 0: 4 inter-rank messages, summed bytes, single peer.
        assert_eq!(ranks[0].total_msgs(), 4);
        assert_eq!(ranks[0].total_bytes(), 112);
        assert_eq!(ranks[0].degree(), 1);
        assert_eq!(ranks[0].faults().retries, 2);
        // Rank 1: two messages back to rank 0, faults carried over.
        assert_eq!(ranks[1].total_msgs(), 2);
        assert_eq!(ranks[1].total_bytes(), 12);
        assert_eq!(ranks[1].faults().stalls, 1);
        assert_eq!(ranks[1].faults().stall_yields, 4);
    }

    #[test]
    #[should_panic(expected = "one CommStats per partition")]
    fn measured_aggregation_rejects_wrong_arity() {
        let layout = HybridLayout::block(4, 2);
        layout.aggregate_measured(&vec![CommStats::default(); 2]);
    }
}
