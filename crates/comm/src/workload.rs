//! Synthetic paper-scale multigrid halo workload.
//!
//! The real solvers partition an unstructured mesh; building 2016 mesh
//! partitions just to exercise the runtime would dwarf the thing being
//! measured. This module is the communication *skeleton* of an NSU3D-style
//! multigrid cycle on a 1-D periodic decomposition: per level, each rank
//! smooths a local strip and exchanges one-cell halos with its ring
//! neighbours through a real [`ExchangePlan`] (packed buffers, buffer
//! pool, per-level attribution), with an allreduce'd residual norm and a
//! barrier per cycle. Every comm primitive the production drivers use is
//! on the hot path, at any world size, with O(points) work per rank —
//! which is what lets the event executor host the paper's 2016-rank world
//! on one machine (`COLUMBIA_SLOW_TESTS` smoke test, and the
//! `scaling_report --paper-scale` section).
//!
//! Determinism: initial data is a pure hash of the global cell id, the
//! cycle structure is fixed, and the runtime guarantees interleaving
//! invariance — so the residual history, `CommStats` and `RankTrace`s are
//! bit-identical across runs *and across executors* for a fixed
//! `(nranks, spec)`.

use crate::exchange::ExchangePlan;
use crate::runtime::{run_world, RankTrace};
use crate::stats::WorldCommSummary;
use columbia_exec::ExecContext;

/// Shape of one synthetic multigrid world: identical on every rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HaloWorkload {
    /// Finest-level owned cells per rank (halved per level, floor 2).
    pub points_per_rank: usize,
    /// Multigrid levels in the V-cycle.
    pub levels: usize,
    /// V-cycles to run (one norm + barrier each).
    pub cycles: usize,
}

impl HaloWorkload {
    /// The paper-scale shape used by `scaling_report --paper-scale`.
    pub fn paper_default() -> Self {
        HaloWorkload {
            points_per_rank: 32,
            levels: 4,
            cycles: 2,
        }
    }

    /// The cheapest shape that still exercises every comm primitive —
    /// the 2016-rank smoke-test configuration.
    pub fn smoke() -> Self {
        HaloWorkload {
            points_per_rank: 8,
            levels: 3,
            cycles: 1,
        }
    }

    /// Owned cells per rank on `level`.
    fn points_at(&self, level: usize) -> usize {
        (self.points_per_rank >> level).max(2)
    }

    /// Run the workload on `nranks` ranks under `ctx` (which selects the
    /// executor, fault plan and pool policy).
    ///
    /// # Panics
    /// If the ranks disagree on the residual history — the norm is
    /// allreduce'd, so divergence means the runtime broke collective
    /// semantics.
    pub fn run(&self, nranks: usize, ctx: &ExecContext) -> WorkloadReport {
        assert!(self.points_per_rank >= 2 && self.levels >= 1 && self.cycles >= 1);
        let spec = *self;
        let (histories, traces) = run_world(nranks, ctx, |rank| spec.rank_body(rank));
        let first = &histories[0];
        for (r, h) in histories.iter().enumerate() {
            assert_eq!(
                bits(h),
                bits(first),
                "rank {r} disagrees on the allreduce'd residual history"
            );
        }
        let summary = WorldCommSummary::from_ranks(
            &traces.iter().map(|t| t.stats.clone()).collect::<Vec<_>>(),
        );
        WorkloadReport {
            rms_history: first.clone(),
            summary,
            traces,
        }
    }

    /// One rank's V-cycles: descend smoothing twice per level, inject to
    /// the next coarser strip, ascend correcting and smoothing once, then
    /// allreduce the finest-level norm and synchronise.
    fn rank_body(&self, rank: &mut crate::runtime::Rank) -> Vec<f64> {
        let r = rank.rank();
        let n = rank.nranks();
        let plans: Vec<ExchangePlan> = (0..self.levels)
            .map(|l| ring_plan(r, n, self.points_at(l)))
            .collect();
        // Strip per level with one ghost cell at each end; owned cells at
        // local 1..=m. Finest level seeded from the global cell id hash,
        // coarser levels start at zero (corrections).
        let mut grids: Vec<Vec<[f64; 1]>> = (0..self.levels)
            .map(|l| vec![[0.0]; self.points_at(l) + 2])
            .collect();
        let m0 = self.points_at(0);
        for i in 0..m0 {
            grids[0][i + 1] = [seed_value(r * m0 + i)];
        }
        let mut history = Vec::with_capacity(self.cycles);
        for _cycle in 0..self.cycles {
            for l in 0..self.levels {
                rank.enter_level(l);
                smooth(rank, &plans[l], &mut grids[l], l as u64);
                smooth(rank, &plans[l], &mut grids[l], l as u64);
                rank.exit_level();
                if l + 1 < self.levels {
                    let mf = self.points_at(l);
                    let mc = self.points_at(l + 1);
                    for i in 0..mc {
                        grids[l + 1][i + 1] = grids[l][(2 * i).min(mf - 1) + 1];
                    }
                }
            }
            for l in (0..self.levels).rev() {
                if l + 1 < self.levels {
                    let mf = self.points_at(l);
                    let mc = self.points_at(l + 1);
                    for i in 0..mf {
                        grids[l][i + 1][0] += 0.5 * grids[l + 1][(i / 2).min(mc - 1) + 1][0];
                    }
                }
                rank.enter_level(l);
                smooth(rank, &plans[l], &mut grids[l], l as u64);
                rank.exit_level();
            }
            let local: f64 = grids[0][1..=m0].iter().map(|v| v[0] * v[0]).sum();
            let rms = (rank.allreduce_sum(local) / (n * m0) as f64).sqrt();
            history.push(rms);
            rank.barrier();
        }
        history
    }
}

/// What a workload run hands back: the (rank-agreed) residual history and
/// the world's comm ledger.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// Allreduce'd finest-level RMS after each cycle.
    pub rms_history: Vec<f64>,
    /// World totals aggregated from the teardown ledgers.
    pub summary: WorldCommSummary,
    /// Per-rank teardown ledgers (rank order).
    pub traces: Vec<RankTrace>,
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Deterministic initial value for global cell `g`: a SplitMix-style
/// integer hash scaled into `[0, 1)`. Pure arithmetic — no libm calls
/// whose rounding could vary across platforms.
fn seed_value(g: usize) -> f64 {
    let mut z = (g as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Damped Jacobi sweep over the owned cells after a ghost refresh.
fn smooth(rank: &mut crate::runtime::Rank, plan: &ExchangePlan, grid: &mut [[f64; 1]], tag: u64) {
    let m = grid.len() - 2;
    if rank.nranks() == 1 {
        // Ring of one: both ghosts wrap onto our own strip.
        grid[0] = grid[m];
        grid[m + 1] = grid[1];
    } else {
        plan.exchange_copy::<1>(rank, tag, grid);
    }
    let old: Vec<f64> = grid.iter().map(|v| v[0]).collect();
    for i in 1..=m {
        grid[i][0] = 0.25 * old[i - 1] + 0.5 * old[i] + 0.25 * old[i + 1];
    }
}

/// Halo exchange plan for rank `r` of `n` on a periodic 1-D strip of `m`
/// owned cells: send the first owned cell to the left neighbour and the
/// last to the right, receive into the matching ghosts. Index lists are
/// ordered by *global* id on both sides so packed buffers line up, which
/// matters when both neighbours are the same peer (`n == 2`).
fn ring_plan(r: usize, n: usize, m: usize) -> ExchangePlan {
    assert!(m >= 2, "strip too small for distinct boundary cells");
    if n == 1 {
        return ExchangePlan::default();
    }
    let left = (r + n - 1) % n;
    let right = (r + 1) % n;
    let mut plan = ExchangePlan::default();
    if left == right {
        // Two-rank ring: one peer owns both ghosts. Global order of our
        // boundary cells is (first, last); of our ghosts it is
        // (right ghost, left ghost) for rank 0 and the reverse for rank 1.
        let sends = vec![1u32, m as u32];
        let recvs = if r == 0 {
            vec![m as u32 + 1, 0]
        } else {
            vec![0, m as u32 + 1]
        };
        plan.sends.push((left, sends));
        plan.recvs.push((left, recvs));
    } else {
        let mut sends = vec![(left, vec![1u32]), (right, vec![m as u32])];
        let mut recvs = vec![(left, vec![0u32]), (right, vec![m as u32 + 1])];
        sends.sort_by_key(|(p, _)| *p);
        recvs.sort_by_key(|(p, _)| *p);
        plan.sends = sends;
        plan.recvs = recvs;
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use columbia_exec::Executor;

    #[test]
    fn histories_agree_and_replay_bit_identical() {
        let spec = HaloWorkload {
            points_per_rank: 8,
            levels: 3,
            cycles: 3,
        };
        let a = spec.run(5, &ExecContext::default());
        let b = spec.run(5, &ExecContext::default());
        assert_eq!(bits(&a.rms_history), bits(&b.rms_history));
        assert_eq!(a.rms_history.len(), 3);
        assert!(a.summary.total_bytes > 0);
        assert_eq!(a.traces.len(), 5);
    }

    #[test]
    fn executors_agree_at_every_small_world_size() {
        let spec = HaloWorkload {
            points_per_rank: 8,
            levels: 2,
            cycles: 2,
        };
        for n in [1, 2, 3, 4] {
            let t = spec.run(n, &ExecContext::default().with_executor(Executor::Threads));
            let e = spec.run(n, &ExecContext::default().with_executor(Executor::Events));
            assert_eq!(
                bits(&t.rms_history),
                bits(&e.rms_history),
                "residuals diverged at n={n}"
            );
            assert_eq!(t.traces, e.traces, "rank traces diverged at n={n}");
        }
    }

    #[test]
    fn smoothing_contracts_the_residual() {
        let spec = HaloWorkload {
            points_per_rank: 16,
            levels: 2,
            cycles: 4,
        };
        let report = spec.run(3, &ExecContext::default());
        // Injection "corrections" add energy, but repeated damped-Jacobi
        // smoothing of hash noise must still smooth: the history is finite
        // and positive throughout.
        for rms in &report.rms_history {
            assert!(rms.is_finite() && *rms > 0.0);
        }
    }
}
