//! Domain decomposition and ghost exchange (paper Figure 6(a)).
//!
//! For each partition, edges straddling two partitions are assigned to one
//! side, and a **ghost vertex** mirrors the off-partition endpoint. During a
//! residual evaluation fluxes accumulate at ghosts and are sent back to be
//! **added** at the owning vertex ([`ExchangePlan::exchange_add`]); updated
//! state is then **copied** owner → ghost ([`ExchangePlan::exchange_copy`]).
//! All values destined for one peer travel in a single packed buffer.
//!
//! The exchanges are allocation-free in the steady state: each plan lazily
//! compiles a [`PackedSchedule`] — contiguous pack/unpack index tables with
//! per-peer ranges — and payloads are checked out of the rank's buffer pool
//! with a capacity request of `width * max(send entries, recv entries)` per
//! peer, so both directions of a peer pair ping-pong the same buffer and
//! the pool reaches a zero-miss fixed point after one warm-up cycle.
//! [`ExchangePlan::exchange_add2`] coalesces two fields into one message
//! per peer (the paper's "fewer larger messages").
//!
//! Fields are addressed through the [`HaloField`] trait, so the same
//! compiled schedule packs AoS block slices (`[[f64; N]]`), scalar planes
//! (`[f64]`), and plane-resident [`SoaStates`] storage without an AoS
//! round-trip: the wire format (entry-major, `WIDTH` values per exchanged
//! vertex in component order) and the pooled-buffer sizing are identical
//! for every layout, so payload bytes — and therefore digests — do not
//! depend on how the field is stored.

use crate::runtime::Rank;
use columbia_linalg::SoaStates;
use std::collections::HashMap;
use std::sync::OnceLock;

/// A field the packed halo exchange can pack and unpack entry by entry,
/// independent of its memory layout. `WIDTH` values travel per exchanged
/// vertex, in component order; implementations must read and write those
/// values in exactly that order so the wire bytes match the historical
/// AoS path bit for bit.
pub trait HaloField {
    /// Values per exchanged entry.
    const WIDTH: usize;
    /// Append entry `i`'s `WIDTH` values to `buf`, in component order.
    fn pack_entry(&self, i: usize, buf: &mut Vec<f64>);
    /// Overwrite entry `i` from `vals` (`WIDTH` values, component order).
    fn set_entry(&mut self, i: usize, vals: &[f64]);
    /// Accumulate `vals` into entry `i`, component by component in order.
    fn add_entry(&mut self, i: usize, vals: &[f64]);
    /// Zero entry `i` (ghost reset after an accumulation pack).
    fn zero_entry(&mut self, i: usize);
}

impl<const N: usize> HaloField for [[f64; N]] {
    const WIDTH: usize = N;

    #[inline]
    fn pack_entry(&self, i: usize, buf: &mut Vec<f64>) {
        buf.extend_from_slice(&self[i]);
    }

    #[inline]
    fn set_entry(&mut self, i: usize, vals: &[f64]) {
        self[i].copy_from_slice(vals);
    }

    #[inline]
    fn add_entry(&mut self, i: usize, vals: &[f64]) {
        let row = &mut self[i];
        for c in 0..N {
            row[c] += vals[c];
        }
    }

    #[inline]
    fn zero_entry(&mut self, i: usize) {
        self[i] = [0.0; N];
    }
}

/// A bare scalar plane (one value per vertex). Wire-compatible with the
/// old `[[f64; 1]]` staging buffers, so migrating a `Vec<[f64; 1]>`
/// round-trip to a direct `Vec<f64>` exchange changes no payload byte.
impl HaloField for [f64] {
    const WIDTH: usize = 1;

    #[inline]
    fn pack_entry(&self, i: usize, buf: &mut Vec<f64>) {
        buf.push(self[i]);
    }

    #[inline]
    fn set_entry(&mut self, i: usize, vals: &[f64]) {
        self[i] = vals[0];
    }

    #[inline]
    fn add_entry(&mut self, i: usize, vals: &[f64]) {
        self[i] += vals[0];
    }

    #[inline]
    fn zero_entry(&mut self, i: usize) {
        self[i] = 0.0;
    }
}

/// Plane-resident state: entries gather and scatter across the component
/// planes with stride `len`, producing the same component-ordered wire
/// values as the AoS impl — no transpose buffer on the hot path.
impl<const N: usize> HaloField for SoaStates<N> {
    const WIDTH: usize = N;

    #[inline]
    fn pack_entry(&self, i: usize, buf: &mut Vec<f64>) {
        for k in 0..N {
            buf.push(self.at(k, i));
        }
    }

    #[inline]
    fn set_entry(&mut self, i: usize, vals: &[f64]) {
        for (k, v) in vals.iter().enumerate() {
            *self.at_mut(k, i) = *v;
        }
    }

    #[inline]
    fn add_entry(&mut self, i: usize, vals: &[f64]) {
        for (k, v) in vals.iter().enumerate() {
            *self.at_mut(k, i) += *v;
        }
    }

    #[inline]
    fn zero_entry(&mut self, i: usize) {
        for k in 0..N {
            *self.at_mut(k, i) = 0.0;
        }
    }
}

/// Packed ghost-exchange schedule for one partition.
pub struct ExchangePlan {
    /// Per peer: `(peer, owned local indices whose values this partition
    /// sends)`. Sorted by peer; index lists sorted by global id on both
    /// sides so buffers line up.
    pub sends: Vec<(usize, Vec<u32>)>,
    /// Per peer: `(peer, ghost local indices this partition receives into)`.
    pub recvs: Vec<(usize, Vec<u32>)>,
    /// Lazily compiled flat pack/unpack tables (built once per plan; a
    /// clone recompiles on first use).
    compiled: OnceLock<PackedSchedule>,
}

impl Clone for ExchangePlan {
    fn clone(&self) -> Self {
        ExchangePlan {
            sends: self.sends.clone(),
            recvs: self.recvs.clone(),
            compiled: OnceLock::new(),
        }
    }
}

impl Default for ExchangePlan {
    fn default() -> Self {
        ExchangePlan {
            sends: Vec::new(),
            recvs: Vec::new(),
            compiled: OnceLock::new(),
        }
    }
}

impl std::fmt::Debug for ExchangePlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExchangePlan")
            .field("sends", &self.sends)
            .field("recvs", &self.recvs)
            .finish()
    }
}

/// One peer's contiguous slice of a [`PackedSchedule`] direction.
#[derive(Clone, Copy, Debug)]
pub struct PeerRange {
    /// Peer partition.
    pub peer: usize,
    /// Start of this peer's indices in the flat table.
    pub start: u32,
    /// One past the end of this peer's indices.
    pub end: u32,
    /// `max(send entries, recv entries)` for this peer: the pooled
    /// payload request is `width * max_n`, identical in both directions,
    /// so one recycled buffer serves the whole peer pair.
    pub max_n: u32,
}

/// Flat pack/unpack tables compiled once from an [`ExchangePlan`]: the
/// per-peer index lists flattened into two contiguous arrays with
/// `(peer, range)` descriptors, walked without pointer chasing on every
/// exchange.
#[derive(Clone, Debug, Default)]
pub struct PackedSchedule {
    /// Per send peer, in plan order.
    pub send: Vec<PeerRange>,
    /// All send indices, peers back to back.
    pub send_idx: Vec<u32>,
    /// Per recv peer, in plan order.
    pub recv: Vec<PeerRange>,
    /// All recv indices, peers back to back.
    pub recv_idx: Vec<u32>,
}

impl PackedSchedule {
    fn compile(sends: &[(usize, Vec<u32>)], recvs: &[(usize, Vec<u32>)]) -> Self {
        let mut entries: HashMap<usize, u32> = HashMap::new();
        for (peer, idx) in sends.iter().chain(recvs) {
            let e = entries.entry(*peer).or_insert(0);
            *e = (*e).max(idx.len() as u32);
        }
        let flatten = |lists: &[(usize, Vec<u32>)]| {
            let mut ranges = Vec::with_capacity(lists.len());
            let mut flat = Vec::with_capacity(lists.iter().map(|(_, v)| v.len()).sum());
            for (peer, idx) in lists {
                let start = flat.len() as u32;
                flat.extend_from_slice(idx);
                ranges.push(PeerRange {
                    peer: *peer,
                    start,
                    end: flat.len() as u32,
                    max_n: entries[peer],
                });
            }
            (ranges, flat)
        };
        let (send, send_idx) = flatten(sends);
        let (recv, recv_idx) = flatten(recvs);
        PackedSchedule {
            send,
            send_idx,
            recv,
            recv_idx,
        }
    }
}

/// Diagnose a halo-exchange framing error with everything a chaos-run
/// triage needs: the receiving rank, the sending peer, the tag, and how
/// the element counts disagree.
#[inline]
fn check_len(rank: &Rank, peer: usize, tag: u64, entries: usize, width: usize, got: usize) {
    let expected = entries * width;
    assert!(
        got == expected,
        "rank {}: exchange buffer size mismatch from peer {peer} on tag {tag}: \
         expected {entries} entries x {width} values = {expected} elements, got {got}",
        rank.rank(),
    );
}

impl ExchangePlan {
    /// The flat pack/unpack tables, compiled on first use.
    pub fn compiled(&self) -> &PackedSchedule {
        self.compiled
            .get_or_init(|| PackedSchedule::compile(&self.sends, &self.recvs))
    }

    /// Copy owner values out to ghosts: pack `data[send_idx]`, send one
    /// buffer per peer, unpack into `data[recv_idx]` (overwrite).
    /// Payloads come from (and return to) the rank's buffer pool.
    pub fn exchange_copy<const N: usize>(&self, rank: &mut Rank, tag: u64, data: &mut [[f64; N]]) {
        self.exchange_copy_field(rank, tag, data);
    }

    /// Layout-generic owner-to-ghost copy; see
    /// [`ExchangePlan::exchange_copy`]. Wire bytes, peer order, and pooled
    /// buffer sizing are identical for every [`HaloField`] layout.
    pub fn exchange_copy_field<F: HaloField + ?Sized>(
        &self,
        rank: &mut Rank,
        tag: u64,
        data: &mut F,
    ) {
        let w = F::WIDTH;
        let sched = self.compiled();
        for pr in &sched.send {
            let mut buf = rank.buffer(pr.peer, w * pr.max_n as usize);
            for &i in &sched.send_idx[pr.start as usize..pr.end as usize] {
                data.pack_entry(i as usize, &mut buf);
            }
            rank.send(pr.peer, tag, buf);
        }
        for pr in &sched.recv {
            let idx = &sched.recv_idx[pr.start as usize..pr.end as usize];
            let buf = rank.recv(pr.peer, tag);
            check_len(rank, pr.peer, tag, idx.len(), w, buf.len());
            for (k, &i) in idx.iter().enumerate() {
                data.set_entry(i as usize, &buf[k * w..(k + 1) * w]);
            }
            rank.recycle(pr.peer, buf);
        }
    }

    /// Accumulate ghost contributions at owners: pack `data[recv_idx]`
    /// (the ghosts), send to the owner, **add** into `data[send_idx]`.
    /// The ghosts are zeroed after packing so repeated accumulation passes
    /// stay consistent. Payloads come from (and return to) the rank's
    /// buffer pool.
    pub fn exchange_add<const N: usize>(&self, rank: &mut Rank, tag: u64, data: &mut [[f64; N]]) {
        self.exchange_add_field(rank, tag, data);
    }

    /// Layout-generic ghost-to-owner accumulation; see
    /// [`ExchangePlan::exchange_add`].
    pub fn exchange_add_field<F: HaloField + ?Sized>(
        &self,
        rank: &mut Rank,
        tag: u64,
        data: &mut F,
    ) {
        let w = F::WIDTH;
        let sched = self.compiled();
        for pr in &sched.recv {
            let mut buf = rank.buffer(pr.peer, w * pr.max_n as usize);
            for &i in &sched.recv_idx[pr.start as usize..pr.end as usize] {
                data.pack_entry(i as usize, &mut buf);
                data.zero_entry(i as usize);
            }
            rank.send(pr.peer, tag, buf);
        }
        for pr in &sched.send {
            let idx = &sched.send_idx[pr.start as usize..pr.end as usize];
            let buf = rank.recv(pr.peer, tag);
            check_len(rank, pr.peer, tag, idx.len(), w, buf.len());
            for (k, &i) in idx.iter().enumerate() {
                data.add_entry(i as usize, &buf[k * w..(k + 1) * w]);
            }
            rank.recycle(pr.peer, buf);
        }
    }

    /// Coalesced two-field accumulation: one message per peer carries
    /// field `a` (width `A`) and field `b` (width `B`) interleaved per
    /// entry — `A + B` values per exchanged vertex — halving the
    /// per-sweep message count relative to two back-to-back
    /// [`ExchangePlan::exchange_add`] calls. Peers are walked in the same
    /// sorted order as the per-field path, so per-slot addition order —
    /// and therefore every bit of the result — is identical.
    pub fn exchange_add2<const A: usize, const B: usize>(
        &self,
        rank: &mut Rank,
        tag: u64,
        a: &mut [[f64; A]],
        b: &mut [[f64; B]],
    ) {
        self.exchange_add2_field(rank, tag, a, b);
    }

    /// Layout-generic coalesced two-field accumulation; see
    /// [`ExchangePlan::exchange_add2`]. The two fields may use different
    /// [`HaloField`] layouts (e.g. plane-resident state riding with an AoS
    /// scratch block) — the interleaved wire format is unchanged.
    pub fn exchange_add2_field<FA: HaloField + ?Sized, FB: HaloField + ?Sized>(
        &self,
        rank: &mut Rank,
        tag: u64,
        a: &mut FA,
        b: &mut FB,
    ) {
        let (wa, wb) = (FA::WIDTH, FB::WIDTH);
        let w = wa + wb;
        let sched = self.compiled();
        for pr in &sched.recv {
            let mut buf = rank.buffer(pr.peer, w * pr.max_n as usize);
            for &i in &sched.recv_idx[pr.start as usize..pr.end as usize] {
                a.pack_entry(i as usize, &mut buf);
                b.pack_entry(i as usize, &mut buf);
                a.zero_entry(i as usize);
                b.zero_entry(i as usize);
            }
            rank.send(pr.peer, tag, buf);
            rank.record_coalesced(2);
        }
        for pr in &sched.send {
            let idx = &sched.send_idx[pr.start as usize..pr.end as usize];
            let buf = rank.recv(pr.peer, tag);
            check_len(rank, pr.peer, tag, idx.len(), w, buf.len());
            for (k, &i) in idx.iter().enumerate() {
                let base = k * w;
                a.add_entry(i as usize, &buf[base..base + wa]);
                b.add_entry(i as usize, &buf[base + wa..base + w]);
            }
            rank.recycle(pr.peer, buf);
        }
    }

    /// Coalesced two-field copy: one message per peer carries field `a`
    /// (width `A`) and field `b` (width `B`) interleaved per entry.
    /// Copies are owner-to-ghost overwrites, so any two fields exchanged
    /// back to back without intervening compute may ride together; the
    /// result is bit-identical to two separate
    /// [`ExchangePlan::exchange_copy`] calls.
    pub fn exchange_copy2<const A: usize, const B: usize>(
        &self,
        rank: &mut Rank,
        tag: u64,
        a: &mut [[f64; A]],
        b: &mut [[f64; B]],
    ) {
        self.exchange_copy2_field(rank, tag, a, b);
    }

    /// Layout-generic coalesced two-field copy; see
    /// [`ExchangePlan::exchange_copy2`].
    pub fn exchange_copy2_field<FA: HaloField + ?Sized, FB: HaloField + ?Sized>(
        &self,
        rank: &mut Rank,
        tag: u64,
        a: &mut FA,
        b: &mut FB,
    ) {
        let (wa, wb) = (FA::WIDTH, FB::WIDTH);
        let w = wa + wb;
        let sched = self.compiled();
        for pr in &sched.send {
            let mut buf = rank.buffer(pr.peer, w * pr.max_n as usize);
            for &i in &sched.send_idx[pr.start as usize..pr.end as usize] {
                a.pack_entry(i as usize, &mut buf);
                b.pack_entry(i as usize, &mut buf);
            }
            rank.send(pr.peer, tag, buf);
            rank.record_coalesced(2);
        }
        for pr in &sched.recv {
            let idx = &sched.recv_idx[pr.start as usize..pr.end as usize];
            let buf = rank.recv(pr.peer, tag);
            check_len(rank, pr.peer, tag, idx.len(), w, buf.len());
            for (k, &i) in idx.iter().enumerate() {
                let base = k * w;
                a.set_entry(i as usize, &buf[base..base + wa]);
                b.set_entry(i as usize, &buf[base + wa..base + w]);
            }
            rank.recycle(pr.peer, buf);
        }
    }

    /// The seed (pre-pool) copy path: fresh allocation per peer, no pool
    /// interaction. Kept as the reference the pooled-equivalence property
    /// suite and the exchange bench compare against.
    pub fn exchange_copy_ref<const N: usize>(
        &self,
        rank: &mut Rank,
        tag: u64,
        data: &mut [[f64; N]],
    ) {
        for (peer, idx) in &self.sends {
            let mut buf = Vec::with_capacity(idx.len() * N);
            for &i in idx {
                buf.extend_from_slice(&data[i as usize]);
            }
            rank.send(*peer, tag, buf);
        }
        for (peer, idx) in &self.recvs {
            let buf = rank.recv(*peer, tag);
            check_len(rank, *peer, tag, idx.len(), N, buf.len());
            for (k, &i) in idx.iter().enumerate() {
                let row = &mut data[i as usize];
                row.copy_from_slice(&buf[k * N..(k + 1) * N]);
            }
        }
    }

    /// The seed (pre-pool) accumulate path; see
    /// [`ExchangePlan::exchange_copy_ref`].
    pub fn exchange_add_ref<const N: usize>(
        &self,
        rank: &mut Rank,
        tag: u64,
        data: &mut [[f64; N]],
    ) {
        for (peer, idx) in &self.recvs {
            let mut buf = Vec::with_capacity(idx.len() * N);
            for &i in idx {
                buf.extend_from_slice(&data[i as usize]);
                data[i as usize] = [0.0; N];
            }
            rank.send(*peer, tag, buf);
        }
        for (peer, idx) in &self.sends {
            let buf = rank.recv(*peer, tag);
            check_len(rank, *peer, tag, idx.len(), N, buf.len());
            for (k, &i) in idx.iter().enumerate() {
                let row = &mut data[i as usize];
                for c in 0..N {
                    row[c] += buf[k * N + c];
                }
            }
        }
    }

    /// Number of peer partitions.
    pub fn degree(&self) -> usize {
        self.sends.len().max(self.recvs.len())
    }
}

/// A full domain decomposition over `nparts` partitions.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// Per partition: global ids, owned vertices first, then ghosts
    /// (sorted by global id within each class).
    pub local_to_global: Vec<Vec<u32>>,
    /// Per partition: number of owned vertices (prefix of `local_to_global`).
    pub n_owned: Vec<usize>,
    /// Per partition: ghost-exchange plan.
    pub plans: Vec<ExchangePlan>,
    /// The partition vector this decomposition was built from.
    pub part: Vec<u32>,
}

impl Decomposition {
    /// Number of partitions.
    pub fn nparts(&self) -> usize {
        self.local_to_global.len()
    }

    /// Local index of global vertex `g` in partition `p` (linear scan of the
    /// ghost section is avoided by binary search in each sorted class).
    pub fn local_index(&self, p: usize, g: u32) -> Option<u32> {
        let l2g = &self.local_to_global[p];
        let no = self.n_owned[p];
        if let Ok(i) = l2g[..no].binary_search(&g) {
            return Some(i as u32);
        }
        l2g[no..].binary_search(&g).ok().map(|i| (no + i) as u32)
    }
}

/// Build a decomposition from a partition vector and the global edge list.
///
/// Ghosts of partition `p` are all off-partition endpoints of edges with one
/// endpoint in `p`. Send/recv lists are ordered by global vertex id, so both
/// sides of every peer pair agree on buffer layout without negotiation.
pub fn decompose(
    nvertices: usize,
    part: &[u32],
    nparts: usize,
    edges: &[(u32, u32)],
) -> Decomposition {
    assert_eq!(part.len(), nvertices);
    // Owned lists.
    let mut owned: Vec<Vec<u32>> = vec![Vec::new(); nparts];
    for v in 0..nvertices as u32 {
        owned[part[v as usize] as usize].push(v);
    }
    // Ghost sets per partition (global ids, deduplicated via sort).
    let mut ghosts: Vec<Vec<u32>> = vec![Vec::new(); nparts];
    for &(a, b) in edges {
        let pa = part[a as usize] as usize;
        let pb = part[b as usize] as usize;
        if pa != pb {
            ghosts[pa].push(b);
            ghosts[pb].push(a);
        }
    }
    for g in ghosts.iter_mut() {
        g.sort_unstable();
        g.dedup();
    }

    // Local numbering: owned (sorted) then ghosts (sorted).
    let mut local_to_global = Vec::with_capacity(nparts);
    let mut n_owned = Vec::with_capacity(nparts);
    for p in 0..nparts {
        let mut l2g = owned[p].clone(); // already ascending
        n_owned.push(l2g.len());
        l2g.extend_from_slice(&ghosts[p]);
        local_to_global.push(l2g);
    }

    // Exchange plans: partition p receives ghost g from part[g]; the owner
    // sends it. Group by peer.
    let mut plans: Vec<ExchangePlan> = vec![ExchangePlan::default(); nparts];
    // For quick local lookup build per-part hash of global→local.
    let g2l: Vec<HashMap<u32, u32>> = local_to_global
        .iter()
        .map(|l2g| {
            l2g.iter()
                .enumerate()
                .map(|(i, &g)| (g, i as u32))
                .collect()
        })
        .collect();
    for p in 0..nparts {
        // recvs: my ghosts grouped by owner, in global-id order.
        let mut by_owner: HashMap<usize, (Vec<u32>, Vec<u32>)> = HashMap::new();
        for &g in &ghosts[p] {
            let owner = part[g as usize] as usize;
            let e = by_owner.entry(owner).or_default();
            e.0.push(g2l[p][&g]); // my ghost local index
            e.1.push(g2l[owner][&g]); // owner's local index (owned section)
        }
        let mut owners: Vec<usize> = by_owner.keys().copied().collect();
        owners.sort_unstable();
        for o in owners {
            let (recv_idx, send_idx) = by_owner.remove(&o).unwrap();
            plans[p].recvs.push((o, recv_idx));
            plans[o].sends.push((p, send_idx));
        }
    }
    // Deterministic peer order.
    for plan in plans.iter_mut() {
        plan.sends.sort_by_key(|(p, _)| *p);
        plan.recvs.sort_by_key(|(p, _)| *p);
    }

    Decomposition {
        local_to_global,
        n_owned,
        plans,
        part: part.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_ranks;

    /// 1-D chain of 6 vertices split into 3 partitions of 2.
    fn chain_decomp() -> Decomposition {
        let edges: Vec<(u32, u32)> = (0..5).map(|i| (i, i + 1)).collect();
        let part = vec![0u32, 0, 1, 1, 2, 2];
        decompose(6, &part, 3, &edges)
    }

    #[test]
    fn ghosts_and_owned_counts() {
        let d = chain_decomp();
        assert_eq!(d.n_owned, vec![2, 2, 2]);
        // Middle partition sees one ghost on each side.
        assert_eq!(d.local_to_global[1], vec![2, 3, 1, 4]);
        assert_eq!(d.local_to_global[0], vec![0, 1, 2]);
    }

    #[test]
    fn plans_are_symmetric() {
        let d = chain_decomp();
        // Partition 0 sends vertex 1 to partition 1 and receives vertex 2.
        let p0 = &d.plans[0];
        assert_eq!(p0.sends.len(), 1);
        assert_eq!(p0.sends[0].0, 1);
        assert_eq!(p0.recvs[0].0, 1);
        let p1 = &d.plans[1];
        assert_eq!(p1.degree(), 2);
    }

    #[test]
    fn exchange_copy_fills_ghosts_with_owner_values() {
        let d = chain_decomp();
        let results = run_ranks(3, |rank| {
            let p = rank.rank();
            let l2g = &d.local_to_global[p];
            // State = global id at owned vertices, NaN at ghosts.
            let mut data: Vec<[f64; 2]> = l2g
                .iter()
                .enumerate()
                .map(|(i, &g)| {
                    if i < d.n_owned[p] {
                        [g as f64, (g * 10) as f64]
                    } else {
                        [f64::NAN, f64::NAN]
                    }
                })
                .collect();
            d.plans[p].exchange_copy(rank, 1, &mut data);
            data
        });
        for (p, data) in results.iter().enumerate() {
            for (i, &g) in chain_decomp().local_to_global[p].iter().enumerate() {
                assert_eq!(data[i][0], g as f64, "part {p} slot {i}");
                assert_eq!(data[i][1], (g * 10) as f64);
            }
        }
    }

    #[test]
    fn exchange_add_accumulates_at_owner_and_zeroes_ghosts() {
        let d = chain_decomp();
        let results = run_ranks(3, |rank| {
            let p = rank.rank();
            let n = d.local_to_global[p].len();
            // Every local slot (owned and ghost) holds 1.0.
            let mut data = vec![[1.0f64; 1]; n];
            d.plans[p].exchange_add(rank, 2, &mut data);
            data
        });
        // Global vertices 1, 2, 3, 4 are each ghosted by exactly one other
        // partition, so their owners accumulate 1 + 1 = 2.
        let expect = |g: u32| if (1..=4).contains(&g) { 2.0 } else { 1.0 };
        let d = chain_decomp();
        for (p, res) in results.iter().enumerate() {
            for (i, &g) in d.local_to_global[p].iter().enumerate() {
                if i < d.n_owned[p] {
                    assert_eq!(res[i][0], expect(g), "owner value at {g}");
                } else {
                    assert_eq!(res[i][0], 0.0, "ghost not zeroed at {g}");
                }
            }
        }
    }

    #[test]
    fn local_index_lookup() {
        let d = chain_decomp();
        assert_eq!(d.local_index(1, 2), Some(0));
        assert_eq!(d.local_index(1, 4), Some(3));
        assert_eq!(d.local_index(1, 5), None);
    }

    mod proptests {
        use super::*;

        columbia_rt::props! {
            config: columbia_rt::props::Config::with_cases(16);
            /// Conservation: exchange_add never creates or destroys mass —
            /// the global sum over owned slots after the exchange equals
            /// the global sum over all slots before it.
            fn prop_exchange_add_conserves_sum(
                n in 4usize..40,
                nparts in 2usize..5,
                seed in columbia_rt::props::array::<_, 16>(0.0f64..10.0),
            ) {
                let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
                let part: Vec<u32> = (0..n).map(|v| ((v * nparts) / n) as u32).collect();
                let d = decompose(n, &part, nparts, &edges);
                let d2 = d.clone();
                // Initial values: owned slot for global g holds seed[g%16];
                // ghosts hold a copy too (simulating accumulated partials).
                let total_before: f64 = (0..nparts)
                    .flat_map(|p| d.local_to_global[p].iter().map(|&g| seed[g as usize % 16]))
                    .sum();
                let results = run_ranks(nparts, move |rank| {
                    let p = rank.rank();
                    let mut data: Vec<[f64; 1]> = d2.local_to_global[p]
                        .iter()
                        .map(|&g| [seed[g as usize % 16]])
                        .collect();
                    d2.plans[p].exchange_add(rank, 5, &mut data);
                    // Owned sums only; ghosts are zeroed by the exchange.
                    data[..d2.n_owned[p]].iter().map(|x| x[0]).sum::<f64>()
                        + data[d2.n_owned[p]..].iter().map(|x| x[0]).sum::<f64>()
                });
                let total_after: f64 = results.iter().sum();
                assert!((total_after - total_before).abs() < 1e-9 * (1.0 + total_before.abs()));
            }

            /// exchange_copy is idempotent: a second copy changes nothing.
            fn prop_exchange_copy_idempotent(n in 4usize..30, nparts in 2usize..4) {
                let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
                let part: Vec<u32> = (0..n).map(|v| ((v * nparts) / n) as u32).collect();
                let d = decompose(n, &part, nparts, &edges);
                let results = run_ranks(nparts, |rank| {
                    let p = rank.rank();
                    let mut data: Vec<[f64; 2]> = d.local_to_global[p]
                        .iter()
                        .map(|&g| [g as f64, -(g as f64)])
                        .collect();
                    d.plans[p].exchange_copy(rank, 6, &mut data);
                    let snap = data.clone();
                    d.plans[p].exchange_copy(rank, 7, &mut data);
                    snap == data
                });
                assert!(results.iter().all(|&ok| ok));
            }
        }
    }

    #[test]
    fn decompose_2d_grid_parallel_sum_matches_serial() {
        // Residual-style check on a 2-D grid: each vertex accumulates the sum
        // of its neighbours' global ids; parallel with ghosts must equal
        // serial.
        let (nx, ny) = (8, 6);
        let id = |x: usize, y: usize| (x + nx * y) as u32;
        let mut edges = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    edges.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < ny {
                    edges.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        let n = nx * ny;
        // 4 vertical strips.
        let part: Vec<u32> = (0..n).map(|v| ((v % nx) * 4 / nx) as u32).collect();
        let d = decompose(n, &part, 4, &edges);

        // Serial reference.
        let mut serial = vec![0.0f64; n];
        for &(a, b) in &edges {
            serial[a as usize] += b as f64;
            serial[b as usize] += a as f64;
        }

        // Parallel: each partition owns the edges whose "a" endpoint it owns
        // or whose "a" is a ghost but "b" owned... assign each edge to the
        // partition owning its smaller endpoint.
        let d2 = d.clone();
        let edges2 = edges.clone();
        let results = run_ranks(4, move |rank| {
            let p = rank.rank();
            let nloc = d2.local_to_global[p].len();
            let mut acc = vec![[0.0f64; 1]; nloc];
            for &(a, b) in &edges2 {
                let owner = d2.part[a.min(b) as usize] as usize;
                if owner != p {
                    continue;
                }
                let la = d2.local_index(p, a).expect("edge endpoint not local");
                let lb = d2.local_index(p, b).expect("edge endpoint not local");
                acc[la as usize][0] += b as f64;
                acc[lb as usize][0] += a as f64;
            }
            d2.plans[p].exchange_add(rank, 9, &mut acc);
            acc
        });
        for (p, res) in results.iter().enumerate() {
            for (i, &g) in d.local_to_global[p].iter().enumerate().take(d.n_owned[p]) {
                assert!(
                    (res[i][0] - serial[g as usize]).abs() < 1e-12,
                    "mismatch at global {g}: {} vs {}",
                    res[i][0],
                    serial[g as usize]
                );
            }
        }
    }
}
