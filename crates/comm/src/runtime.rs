//! Ranks-as-threads message passing.

use crate::stats::CommStats;
use columbia_rt::channel::{unbounded, Receiver, Sender};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Barrier};

/// A message in flight: `(from, tag, payload)`.
type Message = (usize, u64, Vec<f64>);

/// Reserved tag space for collectives.
const TAG_COLLECTIVE: u64 = u64::MAX - 1024;

/// Per-rank communication context handed to the rank body.
pub struct Rank {
    rank: usize,
    nranks: usize,
    tx: Vec<Sender<Message>>,
    rx: Receiver<Message>,
    /// Out-of-order buffer keyed by `(from, tag)`.
    pending: HashMap<(usize, u64), VecDeque<Vec<f64>>>,
    barrier: Arc<Barrier>,
    stats: CommStats,
}

impl Rank {
    /// This rank's id in `0..nranks`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Non-blocking send of a packed buffer to `to` with a user `tag`.
    ///
    /// # Panics
    /// If `to` is out of range or `tag` falls in the reserved collective
    /// space.
    pub fn send(&mut self, to: usize, tag: u64, data: Vec<f64>) {
        assert!(tag < TAG_COLLECTIVE, "tag collides with collective space");
        self.send_raw(to, tag, data);
    }

    fn send_raw(&mut self, to: usize, tag: u64, data: Vec<f64>) {
        assert!(to < self.nranks, "rank {to} out of range");
        self.stats.record_send(to, data.len() * 8);
        self.tx[to]
            .send((self.rank, tag, data))
            .expect("peer rank hung up");
    }

    /// Blocking receive of one message from `from` with `tag`. Messages from
    /// other peers/tags arriving in between are buffered.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        if let Some(q) = self.pending.get_mut(&(from, tag)) {
            if let Some(data) = q.pop_front() {
                return data;
            }
        }
        loop {
            let (f, t, data) = self.rx.recv().expect("world shut down mid-recv");
            if f == from && t == tag {
                return data;
            }
            self.pending.entry((f, t)).or_default().push_back(data);
        }
    }

    /// Synchronise all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Sum `value` across all ranks (everyone receives the total).
    pub fn allreduce_sum(&mut self, value: f64) -> f64 {
        self.allreduce(value, |a, b| a + b)
    }

    /// Max of `value` across all ranks.
    pub fn allreduce_max(&mut self, value: f64) -> f64 {
        self.allreduce(value, f64::max)
    }

    fn allreduce(&mut self, value: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        // Gather to rank 0, reduce, broadcast. O(P) but P is small here;
        // the machine model charges log(P) as real MPI would.
        let tag = TAG_COLLECTIVE;
        if self.rank == 0 {
            let mut acc = value;
            for from in 1..self.nranks {
                let v = self.recv(from, tag);
                acc = op(acc, v[0]);
            }
            for to in 1..self.nranks {
                self.send_raw(to, tag + 1, vec![acc]);
            }
            acc
        } else {
            self.send_raw(0, tag, vec![value]);
            self.recv(0, tag + 1)[0]
        }
    }

    /// Snapshot of this rank's send statistics.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Take and reset the statistics (e.g. per multigrid cycle).
    pub fn take_stats(&mut self) -> CommStats {
        std::mem::take(&mut self.stats)
    }
}

/// Run `nranks` rank bodies on OS threads; returns each body's result in
/// rank order.
///
/// The body receives a mutable [`Rank`] context. Panics in any rank
/// propagate after all threads complete or abort.
pub fn run_ranks<T, F>(nranks: usize, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut Rank) -> T + Sync,
{
    assert!(nranks > 0);
    let mut senders: Vec<Sender<Message>> = Vec::with_capacity(nranks);
    let mut receivers: Vec<Receiver<Message>> = Vec::with_capacity(nranks);
    for _ in 0..nranks {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let barrier = Arc::new(Barrier::new(nranks));
    let body = &body;

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nranks);
        for (r, rx) in receivers.into_iter().enumerate() {
            let tx = senders.clone();
            let barrier = barrier.clone();
            handles.push(scope.spawn(move || {
                let mut ctx = Rank {
                    rank: r,
                    nranks,
                    tx,
                    rx,
                    pending: HashMap::new(),
                    barrier,
                    stats: CommStats::default(),
                };
                body(&mut ctx)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass_accumulates() {
        let results = run_ranks(4, |rank| {
            let r = rank.rank();
            let next = (r + 1) % 4;
            let prev = (r + 3) % 4;
            rank.send(next, 7, vec![r as f64]);
            let got = rank.recv(prev, 7);
            got[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let results = run_ranks(2, |rank| {
            if rank.rank() == 0 {
                rank.send(1, 1, vec![1.0]);
                rank.send(1, 2, vec![2.0]);
                0.0
            } else {
                // Receive in reverse tag order.
                let b = rank.recv(0, 2);
                let a = rank.recv(0, 1);
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(results[1], 12.0);
    }

    #[test]
    fn allreduce_sum_and_max() {
        let results = run_ranks(5, |rank| {
            let s = rank.allreduce_sum(rank.rank() as f64);
            let m = rank.allreduce_max(rank.rank() as f64);
            (s, m)
        });
        for (s, m) in results {
            assert_eq!(s, 10.0);
            assert_eq!(m, 4.0);
        }
    }

    #[test]
    fn single_rank_world_works() {
        let results = run_ranks(1, |rank| rank.allreduce_sum(5.0));
        assert_eq!(results, vec![5.0]);
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let results = run_ranks(2, |rank| {
            if rank.rank() == 0 {
                rank.send(1, 3, vec![0.0; 10]);
                rank.send(1, 4, vec![0.0; 5]);
            } else {
                rank.recv(0, 3);
                rank.recv(0, 4);
            }
            rank.barrier();
            rank.take_stats()
        });
        assert_eq!(results[0].total_msgs(), 2);
        assert_eq!(results[0].total_bytes(), 15 * 8);
        assert_eq!(results[1].total_msgs(), 0);
    }

    #[test]
    fn send_to_self_is_delivered() {
        let results = run_ranks(2, |rank| {
            let me = rank.rank();
            rank.send(me, 42, vec![me as f64 + 1.0]);
            rank.recv(me, 42)[0]
        });
        assert_eq!(results, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn send_out_of_range_panics() {
        // The offending rank panics with "rank 5 out of range"; the world
        // surfaces it as a rank failure when joining.
        run_ranks(1, |rank| rank.send(5, 1, vec![]));
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_ranks(4, |rank| {
            counter.fetch_add(1, Ordering::SeqCst);
            rank.barrier();
            // After the barrier everyone must see all 4 increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }
}
