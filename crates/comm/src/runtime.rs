//! Ranks-as-threads message passing with deterministic fault injection.
//!
//! Every message carries a per-`(from, to, tag)` sequence number. On a
//! perfect interconnect that is pure overhead bookkeeping; under a
//! [`FaultPlan`] it is what makes chaos survivable *and replayable*:
//!
//! * **drops** — the sender consults the plan for occurrence `seq` of its
//!   stream and simulates a bounded retry-with-timeout protocol: each
//!   dropped attempt records a retry, a saturated retry budget records a
//!   timeout and escalates to the reliable fallback path, so the payload
//!   still arrives exactly once;
//! * **duplicates** — extra copies travel with the same sequence number
//!   and are discarded by the receiver's dedup window;
//! * **delays / reordering** — delayed messages linger in the sender's
//!   queue for a plan-chosen number of send-slots (and are force-flushed
//!   at every blocking point, so no deadlock is possible); receivers
//!   reassemble streams in sequence order;
//! * **barrier stalls** — a rank entering a barrier may burn a
//!   plan-chosen number of scheduler yields first.
//!
//! All fault decisions are pure functions of `(fault seed, coordinates)`
//! — never of thread timing — so the same `(seed, nranks)` pair yields a
//! bit-identical fault schedule, solver result and [`CommStats`] trace on
//! every run.
//!
//! Two hot-path mechanisms keep the steady state allocation-free and
//! deterministic at once:
//!
//! * **buffer pool** — payloads checked out with [`Rank::buffer`] and
//!   returned with [`Rank::recycle`] are kept in buckets keyed by
//!   `(peer, exact capacity)` — the moral equivalent of MPI persistent
//!   requests, one set of recycled buffers per neighbour. Per-peer keying
//!   is what makes the zero-miss steady state *provable*: both ends of a
//!   peer pair run the identical exchange sequence with symmetric sizes,
//!   so their per-peer pools stay mirror images — every buffer sent to a
//!   peer is answered by one of the same capacity — and after the warm-up
//!   cycle every checkout finds a fit. Misses allocate exactly the
//!   requested capacity and injected duplicate copies preserve the
//!   original's capacity, so every pool hit/miss is a function of the
//!   logical program order, never of thread timing;
//! * **epochs** — every [`Rank::barrier`] is a quiescence point: each
//!   message sent before it must be received before it. The barrier
//!   drains the channel (dropping stale duplicate copies of the closing
//!   epoch), retires the whole per-stream dedup/reorder bookkeeping and
//!   restarts sequence numbering, so the maps stay bounded over
//!   arbitrarily long fills. Messages carry their epoch so a fast peer's
//!   next-epoch traffic is never confused with the retiring streams.

use crate::fabric::FabricClock;
use crate::sched::EventSched;
use crate::stats::CommStats;
use columbia_exec::{ExecContext, ExecutorKind, FabricKind};
use columbia_rt::channel::{unbounded, Receiver, Sender, TryRecvError};
use columbia_rt::fault::{FaultPlan, MessageAction};
use columbia_rt::trace::{SpanKey, Tracer};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Barrier, Mutex};

/// A message in flight: `(from, tag, seq, epoch, payload)`.
type Message = (usize, u64, u64, u64, Vec<f64>);

/// Reserved tag space for collectives.
const TAG_COLLECTIVE: u64 = u64::MAX - 1024;

/// Non-blocking channel polls before a receive parks on the blocking
/// path. Halo peers usually answer within the spin window, skipping the
/// mutex/condvar round-trip entirely; a straggler costs one park.
const SPIN_PULLS: usize = 64;

/// Within the spin window, polls that busy-wait (`spin_loop`) before the
/// remainder downgrade to `yield_now`.
const SPIN_FAST: usize = 8;

/// Per-recv spin budget for the thread backend. On a host with spare
/// cores, the sender really is running in parallel and usually answers
/// within the spin window, so polling skips the condvar round-trip. On an
/// oversubscribed host — more ranks than cores — a polling receiver holds
/// the very CPU its peer needs to produce the message: every spin slot is
/// stolen progress and the poll almost always ends in a park anyway.
/// There the budget is zero: park immediately on the channel condvar and
/// let the sender's `notify_one` be the wakeup token.
fn spin_budget(nranks: usize, cores: usize) -> usize {
    if nranks > cores {
        0
    } else {
        SPIN_PULLS
    }
}

/// Carrier-thread stack size for the event backend. Event-mode ranks are
/// cooperative tasks that spend their lives parked; the small fixed stack
/// is what makes 2016-rank (and 10,240-rank) worlds cheap — the address
/// space is reserved, but only touched pages are ever committed.
const EVENT_STACK_BYTES: usize = 1 << 20;

/// Best-effort human-readable panic payload (for rank-id prefixing).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// How a rank waits at blocking points: the thread backend parks in the
/// kernel (std barrier, channel condvar), the event backend yields its
/// run token to the deterministic scheduler.
enum WaitBackend {
    Threads {
        barrier: Arc<Barrier>,
        /// Pre-park poll budget (see [`spin_budget`]).
        spin: usize,
    },
    Events {
        sched: Arc<EventSched>,
    },
}

/// An outgoing message held back by an injected delay.
struct DelayedMsg {
    to: usize,
    tag: u64,
    seq: u64,
    data: Vec<f64>,
    duplicates: u32,
    slots_left: u32,
    /// Multigrid-level context at the original `send` call: a held-back
    /// message belongs to the level that sent it, not the level whose
    /// blocking point happens to flush it.
    level: Option<usize>,
}

/// Per-rank communication context handed to the rank body.
pub struct Rank {
    rank: usize,
    nranks: usize,
    tx: Vec<Sender<Message>>,
    rx: Receiver<Message>,
    /// Reorder buffer: per `(from, tag)` stream, payloads keyed by
    /// sequence number (duplicates of a buffered or consumed sequence are
    /// discarded on arrival).
    pending: HashMap<(usize, u64), BTreeMap<u64, Vec<f64>>>,
    /// Next sequence number to assign, per `(to, tag)` stream.
    send_seq: HashMap<(usize, u64), u64>,
    /// Next sequence number to deliver, per `(from, tag)` stream.
    recv_next: HashMap<(usize, u64), u64>,
    /// Outgoing messages held back by injected delays (flushed at every
    /// blocking point).
    delayed: VecDeque<DelayedMsg>,
    /// Barrier entries so far (fault-schedule coordinate).
    barrier_count: u64,
    /// Current epoch: bumped after every barrier, stamped on every
    /// outgoing message. Sequence numbers restart per epoch.
    epoch: u64,
    /// Recycled payload buffers, bucketed by `(peer, exact capacity)`
    /// (LIFO within a bucket so the hottest buffer stays cache-warm).
    pool: BTreeMap<(usize, usize), Vec<Vec<f64>>>,
    /// Buffer-pool policy from the launching [`ExecContext`]: when off,
    /// every checkout allocates fresh and recycles drop.
    pool_on: bool,
    faults: Option<Arc<FaultPlan>>,
    backend: WaitBackend,
    stats: CommStats,
    /// Multigrid-level context stack (innermost last): while non-empty,
    /// every comm event is additionally attributed to the top level's
    /// ledger in `per_level`.
    level_stack: Vec<usize>,
    /// Per-level attribution of the same events `stats` totals.
    per_level: BTreeMap<usize, CommStats>,
}

/// Everything a rank's comm ledger holds at teardown: the residual global
/// stats (whatever `take_stats` has not already handed out, including sends
/// performed by the teardown flush itself) plus the per-level attribution.
///
/// Handing this to the caller from [`run_world`] closes a silent
/// under-count: previously a `Rank` dropped without `take_stats` discarded
/// its whole send ledger, and even a well-behaved driver lost any delayed
/// sends flushed after its last `take_stats`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankTrace {
    pub rank: usize,
    /// Residual global ledger (empty if the body drained it at the very
    /// end and teardown flushed nothing).
    pub stats: CommStats,
    /// Per-multigrid-level ledgers, keyed by level index.
    pub per_level: BTreeMap<usize, CommStats>,
}

impl RankTrace {
    /// Record this rank's ledgers into a tracer: a `comm` span keyed by
    /// rank with the residual counters, one `comm_level` child per level.
    pub fn record_to(&self, tracer: &mut Tracer) {
        tracer.scoped(SpanKey::new("comm").rank(self.rank), |t| {
            self.stats.record_to(t);
            for (&level, stats) in &self.per_level {
                t.scoped(
                    SpanKey::new("comm_level").rank(self.rank).level(level),
                    |t| {
                        stats.record_to(t);
                    },
                );
            }
        });
    }
}

impl Rank {
    /// This rank's id in `0..nranks`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Push a multigrid-level context: until the matching
    /// [`Rank::exit_level`], every send/recv/barrier/fault event is also
    /// attributed to `level`'s ledger. Contexts nest (recursive cycles);
    /// attribution goes to the innermost.
    pub fn enter_level(&mut self, level: usize) {
        self.level_stack.push(level);
    }

    /// Pop the innermost level context.
    pub fn exit_level(&mut self) {
        self.level_stack.pop();
    }

    /// The innermost active level context, if any.
    pub fn current_level(&self) -> Option<usize> {
        self.level_stack.last().copied()
    }

    /// Ledger of events attributed to the innermost context at the time
    /// they occurred, per level.
    pub fn level_stats(&self) -> &BTreeMap<usize, CommStats> {
        &self.per_level
    }

    fn level_ledger(&mut self) -> Option<&mut CommStats> {
        match self.level_stack.last() {
            Some(&l) => Some(self.per_level.entry(l).or_default()),
            None => None,
        }
    }

    /// Check out an empty payload buffer for traffic with `peer`, with
    /// capacity at least `n`: the smallest pooled bucket for that peer
    /// that fits (pool hit), else a fresh *exact*-capacity allocation
    /// (pool miss).
    ///
    /// Pools are per peer because that makes the zero-miss fixed point an
    /// invariant rather than an accident: both ends of a pair perform the
    /// same pair ops in the same order with symmetric sizes, so the two
    /// per-peer pools evolve as mirror images (identical multisets pick
    /// identical best-fit capacities, and each send is answered by a
    /// buffer of the same capacity). During warm-up the pool only grows
    /// (a hit circulates back, a miss adds its exact size), so by cycle
    /// two every request in the sequence has a resident fit. A shared
    /// pool has no such guarantee — a near-fit buffer drifts to another
    /// peer and its home request misses forever.
    pub fn buffer(&mut self, peer: usize, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        // Pool off (ExecContext pool policy): the seed allocation
        // behaviour — every checkout is a fresh exact-capacity allocation,
        // counted as a miss; hits and recycles stay zero.
        if !self.pool_on {
            self.stats.record_pool_miss();
            if let Some(s) = self.level_ledger() {
                s.record_pool_miss();
            }
            return Vec::with_capacity(n);
        }
        // Exact-capacity fast path: misses allocate exact capacities and
        // steady state re-requests the same sizes, so one tree probe
        // answers almost every checkout. Buckets are never retired when
        // they drain — the empty `Vec` (and its spine) stays resident, so
        // the ping-pong refill on the next `recycle` is push-into-capacity
        // rather than a fresh bucket allocation.
        let hit = match self.pool.get_mut(&(peer, n)) {
            Some(bucket) if !bucket.is_empty() => bucket.pop(),
            _ => self
                .pool
                .range_mut((peer, n)..=(peer, usize::MAX))
                .find_map(|(_, bucket)| bucket.pop()),
        };
        if let Some(mut buf) = hit {
            buf.clear();
            self.stats.record_pool_hit();
            if let Some(s) = self.level_ledger() {
                s.record_pool_hit();
            }
            buf
        } else {
            self.stats.record_pool_miss();
            if let Some(s) = self.level_ledger() {
                s.record_pool_miss();
            }
            Vec::with_capacity(n)
        }
    }

    /// Return a payload buffer delivered from `peer` (or checked out for
    /// it) to that peer's pool. Only buffers obtained at *logical*
    /// program points (a `recv` return, a local checkout) may come back
    /// here — never a stale duplicate copy, whose observation depends on
    /// thread timing.
    pub fn recycle(&mut self, peer: usize, buf: Vec<f64>) {
        let cap = buf.capacity();
        if cap == 0 || !self.pool_on {
            return;
        }
        self.stats.record_pool_recycled();
        if let Some(s) = self.level_ledger() {
            s.record_pool_recycled();
        }
        self.pool.entry((peer, cap)).or_default().push(buf);
    }

    /// Number of buffers currently parked in the pool (test hook).
    pub fn pooled_buffers(&self) -> usize {
        self.pool.values().map(|b| b.len()).sum()
    }

    /// Record one coalesced message carrying `fields` fields (called by
    /// the multi-field exchange paths).
    pub fn record_coalesced(&mut self, fields: u64) {
        self.stats.record_coalesced(fields);
        if let Some(s) = self.level_ledger() {
            s.record_coalesced(fields);
        }
    }

    /// Sizes of the per-stream bookkeeping maps
    /// `(send_seq, recv_next, pending)` — test hook for the barrier-point
    /// compaction guarantee.
    pub fn stream_state_sizes(&self) -> (usize, usize, usize) {
        (
            self.send_seq.len(),
            self.recv_next.len(),
            self.pending.len(),
        )
    }

    /// Non-blocking send of a packed buffer to `to` with a user `tag`.
    ///
    /// # Panics
    /// If `to` is out of range or `tag` falls in the reserved collective
    /// space.
    pub fn send(&mut self, to: usize, tag: u64, data: Vec<f64>) {
        assert!(tag < TAG_COLLECTIVE, "tag collides with collective space");
        self.send_raw(to, tag, data);
    }

    fn send_raw(&mut self, to: usize, tag: u64, data: Vec<f64>) {
        assert!(to < self.nranks, "rank {to} out of range");
        let seq_entry = self.send_seq.entry((to, tag)).or_insert(0);
        let seq = *seq_entry;
        *seq_entry += 1;
        let level = self.current_level();

        let action = match &self.faults {
            Some(plan) => plan.message_action(self.rank, to, tag, seq),
            None => MessageAction::NONE,
        };
        if action.dropped_attempts > 0 {
            let n = action.dropped_attempts as u64;
            self.stats.record_retries(n);
            if action.timed_out {
                self.stats.record_timeout();
            }
            if let Some(s) = self.level_ledger() {
                s.record_retries(n);
                if action.timed_out {
                    s.record_timeout();
                }
            }
        }

        let n_delayed_before = self.delayed.len();
        if action.delay_slots > 0 {
            self.stats.record_delay(action.delay_slots as u64);
            if let Some(s) = self.level_ledger() {
                s.record_delay(action.delay_slots as u64);
            }
            self.delayed.push_back(DelayedMsg {
                to,
                tag,
                seq,
                data,
                duplicates: action.duplicates,
                slots_left: action.delay_slots,
                level,
            });
        } else {
            self.push_wire(to, tag, seq, data, action.duplicates, level);
        }
        self.tick_delayed(n_delayed_before);
    }

    /// Physically enqueue one message (plus any injected duplicate
    /// copies) on the destination's channel. Send-side statistics are
    /// recorded only *after* the channel accepts the message, so a send
    /// that panics on a hung-up peer leaves no phantom counts behind.
    /// `level` is the multigrid context of the *originating* send call
    /// (delayed messages keep theirs across the flush).
    fn push_wire(
        &mut self,
        to: usize,
        tag: u64,
        seq: u64,
        data: Vec<f64>,
        duplicates: u32,
        level: Option<usize>,
    ) {
        let bytes = data.len() * 8;
        for _ in 0..duplicates {
            // Duplicate copies preserve the original's *capacity*, not
            // just its contents: which physical copy a receiver ends up
            // delivering is timing-dependent, and the capacity-keyed pool
            // must see the same buffer either way.
            let mut copy = Vec::with_capacity(data.capacity());
            copy.extend_from_slice(&data);
            self.tx[to]
                .send((self.rank, tag, seq, self.epoch, copy))
                .expect("peer rank hung up");
        }
        self.tx[to]
            .send((self.rank, tag, seq, self.epoch, data))
            .expect("peer rank hung up");
        if let WaitBackend::Events { sched } = &self.backend {
            if to != self.rank {
                sched.notify_mail(self.rank, to, bytes as u64);
            }
        }
        self.stats.record_send(to, bytes);
        if duplicates > 0 {
            self.stats.record_dup_sent(duplicates as u64);
        }
        if let Some(l) = level {
            let s = self.per_level.entry(l).or_default();
            s.record_send(to, bytes);
            if duplicates > 0 {
                s.record_dup_sent(duplicates as u64);
            }
        }
    }

    /// Age the first `n` delayed messages by one send-slot and release the
    /// ones whose delay expired (after the triggering send, which is what
    /// reorders traffic).
    fn tick_delayed(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        for d in self.delayed.iter_mut().take(n) {
            d.slots_left -= 1;
        }
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].slots_left == 0 {
                let d = self.delayed.remove(i).unwrap();
                self.push_wire(d.to, d.tag, d.seq, d.data, d.duplicates, d.level);
            } else {
                i += 1;
            }
        }
    }

    /// Release every delayed message immediately. Called before any
    /// blocking operation (recv, barrier, collectives) and at rank
    /// teardown, which guarantees progress: a peer blocked on one of our
    /// delayed messages unblocks no later than our next blocking point.
    fn flush_delayed(&mut self) {
        while let Some(d) = self.delayed.pop_front() {
            self.push_wire(d.to, d.tag, d.seq, d.data, d.duplicates, d.level);
        }
    }

    /// Pull one raw message off the channel.
    ///
    /// Thread backend: poll within the [`spin_budget`] (zero on an
    /// oversubscribed host — park immediately, the sender's condvar
    /// notify is the wakeup token), then park on the blocking receive.
    /// Event backend: never block the carrier thread — yield the run
    /// token to the scheduler and resume when a sender's `notify_mail`
    /// reschedules this rank.
    fn pull_message(&mut self) -> Message {
        match &self.backend {
            WaitBackend::Events { sched } => loop {
                match self.rx.try_recv() {
                    Ok(m) => return m,
                    Err(TryRecvError::Empty) => sched.block_recv(self.rank),
                    Err(TryRecvError::Disconnected) => panic!("world shut down mid-recv"),
                }
            },
            WaitBackend::Threads { spin, .. } => {
                for pull in 0..*spin {
                    match self.rx.try_recv() {
                        Ok(m) => return m,
                        Err(TryRecvError::Empty) if pull < SPIN_FAST => std::hint::spin_loop(),
                        Err(TryRecvError::Empty) => std::thread::yield_now(),
                        Err(TryRecvError::Disconnected) => panic!("world shut down mid-recv"),
                    }
                }
                self.rx.recv().expect("world shut down mid-recv")
            }
        }
    }

    /// Blocking receive of one message from `from` with `tag`. Messages
    /// from other peers/tags/sequence positions arriving in between are
    /// buffered; duplicate copies are discarded.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        self.flush_delayed();
        let key = (from, tag);
        let next = *self.recv_next.entry(key).or_insert(0);
        if let Some(q) = self.pending.get_mut(&key) {
            if let Some(data) = q.remove(&next) {
                if q.is_empty() {
                    // Fully drained reorder buffer: retire the entry so
                    // `pending` stays proportional to the streams that are
                    // actually out of order right now.
                    self.pending.remove(&key);
                }
                *self.recv_next.get_mut(&key).unwrap() += 1;
                return self.deliver(data);
            }
        }
        loop {
            let (f, t, seq, ep, data) = self.pull_message();
            // Senders cannot outrun us past a barrier (the barrier waits
            // for everyone), and the barrier drain consumes the previous
            // epoch wholesale, so mid-recv traffic is always current.
            debug_assert_eq!(
                ep, self.epoch,
                "cross-epoch message outside a barrier drain"
            );
            let stream = (f, t);
            let expected = *self.recv_next.entry(stream).or_insert(0);
            if seq < expected {
                // Stale duplicate of an already-delivered message. Never
                // recycled: whether we observe it here or the barrier
                // drain swallows it depends on thread timing.
                continue;
            }
            if stream == key && seq == next {
                *self.recv_next.get_mut(&key).unwrap() += 1;
                return self.deliver(data);
            }
            // Out-of-order or foreign-stream message: buffer it. A
            // duplicate of an already-buffered sequence is dropped by the
            // or_insert.
            self.pending
                .entry(stream)
                .or_default()
                .entry(seq)
                .or_insert(data);
        }
    }

    /// Count one logical delivery. Recvs are recorded here — at delivery —
    /// never per channel pull: pull order depends on thread timing, the
    /// sequence of `recv()` returns does not.
    fn deliver(&mut self, data: Vec<f64>) -> Vec<f64> {
        let bytes = data.len() * 8;
        self.stats.record_recv(bytes);
        if let Some(s) = self.level_ledger() {
            s.record_recv(bytes);
        }
        data
    }

    /// Synchronise all ranks (possibly stalling first, if the fault plan
    /// says this rank hiccups here).
    ///
    /// The barrier is also a **quiescence point**: every message sent
    /// before it must have been received before it. In exchange, the
    /// per-stream dedup/reorder bookkeeping is retired wholesale and
    /// sequence numbering restarts, so long fills that keep inventing
    /// fresh `(peer, tag)` streams stay bounded. A message a rank sends
    /// before a barrier that its peer only receives after it is a
    /// protocol violation and panics with the offending streams.
    pub fn barrier(&mut self) {
        self.flush_delayed();
        let occurrence = self.barrier_count;
        self.barrier_count += 1;
        self.stats.record_barrier();
        if let Some(s) = self.level_ledger() {
            s.record_barrier();
        }
        if let Some(plan) = &self.faults {
            let yields = plan.barrier_stall(self.rank, occurrence);
            if yields > 0 {
                self.stats.record_stall(yields as u64);
                if let Some(s) = self.level_ledger() {
                    s.record_stall(yields as u64);
                }
                for _ in 0..yields {
                    std::thread::yield_now();
                }
            }
        }
        match &self.backend {
            WaitBackend::Threads { barrier, .. } => {
                barrier.wait();
            }
            WaitBackend::Events { sched } => sched.barrier_wait(self.rank),
        }
        self.drain_and_compact();
    }

    /// Post-barrier stream compaction. The barrier's happens-before edge
    /// guarantees everything sent to us before it is already in our
    /// channel, so one non-blocking drain sees the complete closing
    /// epoch: stale duplicate copies are dropped here instead of haunting
    /// the restarted sequence space, an undelivered *non*-duplicate is a
    /// quiescence violation and panics, and a fast peer's next-epoch
    /// traffic (it may clear the barrier and resume sending while we
    /// drain) is stashed and re-buffered after the reset. The drained set
    /// is deterministic — all pre-barrier sends minus all pre-barrier
    /// deliveries — even though the interleaving that put it there is not.
    fn drain_and_compact(&mut self) {
        let mut stashed: Vec<Message> = Vec::new();
        let mut violations: Vec<(usize, u64, u64, u64)> = Vec::new();
        // Empty and Disconnected both end the drain.
        while let Ok((f, t, seq, ep, data)) = self.rx.try_recv() {
            if ep == self.epoch {
                let expected = self.recv_next.get(&(f, t)).copied().unwrap_or(0);
                if seq >= expected {
                    violations.push((f, t, seq, expected));
                }
                // else: stale duplicate of a delivered message.
                drop(data);
            } else {
                debug_assert_eq!(
                    ep,
                    self.epoch + 1,
                    "message skipped an epoch (from {f}, tag {t})"
                );
                stashed.push((f, t, seq, ep, data));
            }
        }
        for (&(f, t), q) in self.pending.iter() {
            let expected = self.recv_next.get(&(f, t)).copied().unwrap_or(0);
            for &seq in q.keys() {
                violations.push((f, t, seq, expected));
            }
        }
        if !violations.is_empty() {
            violations.sort_unstable();
            panic!(
                "rank {} entered a barrier with undelivered messages — the barrier retires \
                 per-stream bookkeeping, so every message must be received in the epoch it \
                 was sent. Undelivered (from, tag, seq, next_expected): {:?}",
                self.rank, violations
            );
        }
        self.pending.clear();
        self.recv_next.clear();
        self.send_seq.clear();
        self.epoch += 1;
        for (f, t, seq, _ep, data) in stashed {
            self.pending
                .entry((f, t))
                .or_default()
                .entry(seq)
                .or_insert(data);
        }
    }

    /// Sum `value` across all ranks (everyone receives the total).
    pub fn allreduce_sum(&mut self, value: f64) -> f64 {
        self.allreduce(value, |a, b| a + b)
    }

    /// Max of `value` across all ranks.
    pub fn allreduce_max(&mut self, value: f64) -> f64 {
        self.allreduce(value, f64::max)
    }

    fn allreduce(&mut self, value: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        // Gather to rank 0, reduce, broadcast. O(P) but P is small here;
        // the machine model charges log(P) as real MPI would. The
        // sequence-number protocol makes this (like every exchange)
        // idempotent under duplication and stable under reordering.
        //
        // Tag-reuse audit: every collective reuses the same
        // `(TAG_COLLECTIVE, TAG_COLLECTIVE + 1)` pair, so interleaved
        // collectives (e.g. back-to-back norms on different multigrid
        // levels) share streams. They cannot cross: each rank
        // participates in every collective in the same program order, so
        // occurrence k of the gather stream on rank 0 is exactly
        // collective k on every rank, and the per-stream sequence numbers
        // pair contribution k with reduction k even when duplicated or
        // reordered copies arrive in between. A rank *skipping* a
        // collective would desynchronise the pairing — but it would
        // equally deadlock the gather itself; nothing new is risked by
        // the shared tags. The interleaving stress test below locks this
        // in under heavy duplication + reorder faults.
        let tag = TAG_COLLECTIVE;
        if self.rank == 0 {
            let mut acc = value;
            for from in 1..self.nranks {
                let v = self.recv(from, tag);
                acc = op(acc, v[0]);
            }
            for to in 1..self.nranks {
                self.send_raw(to, tag + 1, vec![acc]);
            }
            acc
        } else {
            self.send_raw(0, tag, vec![value]);
            self.recv(0, tag + 1)[0]
        }
    }

    /// Snapshot of this rank's send statistics.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Take and reset the statistics (e.g. per multigrid cycle). Flushes
    /// the injected-delay queue first: a held-back message has already been
    /// decided and counted as delayed, and its send must land in the trace
    /// being taken — not leak into the next cycle's (or nobody's) ledger.
    pub fn take_stats(&mut self) -> CommStats {
        self.flush_delayed();
        std::mem::take(&mut self.stats)
    }

    /// Take and reset the per-level attribution ledgers.
    pub fn take_level_stats(&mut self) -> BTreeMap<usize, CommStats> {
        self.flush_delayed();
        std::mem::take(&mut self.per_level)
    }

    /// Teardown bookkeeping: release held-back messages, then synchronise
    /// before any rank drops its receiver. The teardown barrier closes a
    /// race that fault injection makes likely: a peer can consume an
    /// injected duplicate copy, complete its body and drop its channel
    /// while the sender is still pushing the redundant original — which
    /// would turn a benign duplicate into a "peer rank hung up" panic (and
    /// strand every other rank). With the barrier, every send strictly
    /// precedes every receiver drop. Finally, check that no buffered
    /// out-of-order message was silently abandoned (a leak that previously
    /// vanished without trace), and hand back whatever is left in the
    /// ledgers — the caller decides whether to sink it. Before this
    /// existed, a body that never called `take_stats` (or whose teardown
    /// flush released delayed sends *after* its last `take_stats`) simply
    /// lost those counts.
    fn finish(&mut self) -> RankTrace {
        self.flush_delayed();
        match &self.backend {
            WaitBackend::Threads { barrier, .. } => {
                barrier.wait();
            }
            WaitBackend::Events { sched } => sched.barrier_wait(self.rank),
        }
        debug_assert!(
            self.pending.values().all(|q| q.is_empty()),
            "rank {} exited with unconsumed out-of-order messages: {:?}",
            self.rank,
            self.pending
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .map(|(&(from, tag), q)| (from, tag, q.len()))
                .collect::<Vec<_>>()
        );
        RankTrace {
            rank: self.rank,
            stats: std::mem::take(&mut self.stats),
            per_level: std::mem::take(&mut self.per_level),
        }
    }
}

/// Run `nranks` rank bodies on OS threads in the clean regime (no faults,
/// pool on); returns each body's result in rank order.
///
/// Convenience wrapper over [`run_world`] with a default [`ExecContext`],
/// for raw comm workloads that need no capability and no teardown ledger.
/// The body receives a mutable [`Rank`] context. Panics in any rank
/// propagate after all threads complete or abort.
pub fn run_ranks<T, F>(nranks: usize, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut Rank) -> T + Sync,
{
    run_world(nranks, &ExecContext::default(), body).0
}

/// THE driver entry point: run `nranks` rank bodies under an
/// [`ExecContext`], honoring its fault plan and buffer-pool policy, and
/// return each body's result plus each rank's teardown [`RankTrace`] — the
/// residual comm ledger (everything `take_stats` did not hand out,
/// including sends released by the teardown flush) and the per-level
/// attribution built up via [`Rank::enter_level`] — both in rank order.
///
/// With the default context this is byte-for-byte the perfect-interconnect
/// runtime. With a fault plan, sends are dropped / retried / duplicated /
/// delayed and barriers stall exactly as the plan's seed dictates; results
/// and [`CommStats`] traces remain bit-identical across runs for the same
/// `(seed, nranks)`. The trace vector is indexed by rank id, so its
/// content is independent of thread completion order — deterministic
/// whenever the workload is.
pub fn run_world<T, F>(nranks: usize, ctx: &ExecContext, body: F) -> (Vec<T>, Vec<RankTrace>)
where
    T: Send,
    F: Fn(&mut Rank) -> T + Sync,
{
    assert!(nranks > 0);
    let plan = ctx.clone_faults();
    let pool_on = ctx.pool().enabled;
    if let Some(p) = &plan {
        assert_eq!(
            p.nranks(),
            nranks,
            "fault plan built for {} ranks, world has {nranks}",
            p.nranks()
        );
    }
    match ctx.executor().resolve() {
        // The thread backend has no virtual clock, so the fabric model
        // selection is a documented no-op there: delivery cost lives in
        // the analytic report path either way.
        ExecutorKind::Threads => run_world_threads(nranks, plan, pool_on, body),
        ExecutorKind::Events => {
            let fabric = match ctx.fabric_model().resolve() {
                FabricKind::Analytic => None,
                FabricKind::Contention => Some(FabricClock::columbia_default(nranks)),
            };
            run_world_events(nranks, plan, pool_on, fabric, body)
        }
    }
}

/// Per-rank mailboxes: sender fan-out clone per rank, receiver by rank id.
#[allow(clippy::type_complexity)]
fn make_channels(nranks: usize) -> (Vec<Sender<Message>>, Vec<Receiver<Message>>) {
    let mut senders = Vec::with_capacity(nranks);
    let mut receivers = Vec::with_capacity(nranks);
    for _ in 0..nranks {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    (senders, receivers)
}

/// Fresh per-rank comm context (shared by both backends).
fn make_rank(
    r: usize,
    nranks: usize,
    tx: Vec<Sender<Message>>,
    rx: Receiver<Message>,
    faults: Option<Arc<FaultPlan>>,
    pool_on: bool,
    backend: WaitBackend,
) -> Rank {
    Rank {
        rank: r,
        nranks,
        tx,
        rx,
        pending: HashMap::new(),
        send_seq: HashMap::new(),
        recv_next: HashMap::new(),
        delayed: VecDeque::new(),
        barrier_count: 0,
        epoch: 0,
        pool: BTreeMap::new(),
        pool_on,
        faults,
        backend,
        stats: CommStats::default(),
        level_stack: Vec::new(),
        per_level: BTreeMap::new(),
    }
}

/// The classic backend: one preemptive OS thread per rank, kernel barrier,
/// channel-condvar parking with a [`spin_budget`]-bounded pre-park poll.
fn run_world_threads<T, F>(
    nranks: usize,
    plan: Option<Arc<FaultPlan>>,
    pool_on: bool,
    body: F,
) -> (Vec<T>, Vec<RankTrace>)
where
    T: Send,
    F: Fn(&mut Rank) -> T + Sync,
{
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let spin = spin_budget(nranks, cores);
    let (senders, receivers) = make_channels(nranks);
    let barrier = Arc::new(Barrier::new(nranks));
    let body = &body;
    let plan = &plan;
    // Teardown sink, slot per rank: ledgers land by rank id, never by
    // completion order.
    let sink: Mutex<Vec<Option<RankTrace>>> = Mutex::new((0..nranks).map(|_| None).collect());
    let sink = &sink;

    let results = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nranks);
        for (r, rx) in receivers.into_iter().enumerate() {
            let tx = senders.clone();
            let barrier = barrier.clone();
            let faults = plan.clone();
            handles.push(scope.spawn(move || {
                let mut ctx = make_rank(
                    r,
                    nranks,
                    tx,
                    rx,
                    faults,
                    pool_on,
                    WaitBackend::Threads { barrier, spin },
                );
                let out = catch_unwind(AssertUnwindSafe(|| {
                    let out = body(&mut ctx);
                    let trace = ctx.finish();
                    (out, trace)
                }));
                match out {
                    Ok((out, trace)) => {
                        sink.lock().expect("trace sink poisoned")[r] = Some(trace);
                        out
                    }
                    Err(payload) => {
                        let msg = panic_message(&*payload);
                        resume_unwind(Box::new(format!("rank {r} panicked: {msg}")))
                    }
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|payload| resume_unwind(payload)))
            .collect()
    });
    collect_traces(sink, results)
}

/// The discrete-event backend: every rank is a cooperative task on a small
/// fixed stack, scheduled by one deterministic [`EventSched`] — exactly
/// one rank runs at a time, blocked ranks are parked (never polling), and
/// the whole interleaving is a pure function of the rank program. This is
/// what hosts paper-scale worlds (512/1024/2016 ranks) on one machine,
/// bit-identical to the thread backend.
fn run_world_events<T, F>(
    nranks: usize,
    plan: Option<Arc<FaultPlan>>,
    pool_on: bool,
    fabric: Option<FabricClock>,
    body: F,
) -> (Vec<T>, Vec<RankTrace>)
where
    T: Send,
    F: Fn(&mut Rank) -> T + Sync,
{
    let (senders, receivers) = make_channels(nranks);
    let sched = Arc::new(EventSched::with_fabric(nranks, fabric));
    let body = &body;
    let plan = &plan;
    let sink: Mutex<Vec<Option<RankTrace>>> = Mutex::new((0..nranks).map(|_| None).collect());
    let sink = &sink;

    let results: Vec<T> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nranks);
        for (r, rx) in receivers.into_iter().enumerate() {
            let tx = senders.clone();
            let faults = plan.clone();
            let sched = sched.clone();
            let carrier = std::thread::Builder::new()
                .name(format!("rank-{r}"))
                .stack_size(EVENT_STACK_BYTES)
                .spawn_scoped(scope, move || {
                    // Park until granted the run token; from here on this
                    // thread only ever executes while holding it.
                    sched.wait_turn(r);
                    let mut ctx = make_rank(
                        r,
                        nranks,
                        tx,
                        rx,
                        faults,
                        pool_on,
                        WaitBackend::Events {
                            sched: sched.clone(),
                        },
                    );
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        let out = body(&mut ctx);
                        let trace = ctx.finish();
                        (out, trace)
                    }));
                    match out {
                        Ok((out, trace)) => {
                            sink.lock().expect("trace sink poisoned")[r] = Some(trace);
                            sched.retire(r);
                            out
                        }
                        Err(payload) => {
                            let msg = panic_message(&*payload);
                            sched.poison(r, &msg);
                            resume_unwind(Box::new(format!("rank {r} panicked: {msg}")))
                        }
                    }
                })
                .expect("spawn rank carrier thread");
            handles.push(carrier);
        }
        sched.kick();
        let mut outs = Vec::with_capacity(nranks);
        let mut failed = false;
        for h in handles {
            match h.join() {
                Ok(v) => outs.push(v),
                Err(_) => failed = true,
            }
        }
        if failed {
            // Every carrier has unwound; report the deterministic *first*
            // panic (only one rank runs at a time), not whichever join
            // happened to observe its own unwind.
            let (pr, msg) = sched
                .first_panic()
                .expect("failed world without recorded panic");
            std::panic::panic_any(format!("rank {pr} panicked: {msg}"));
        }
        outs
    });
    collect_traces(sink, results)
}

/// Drain the teardown sink into rank order next to the body results.
fn collect_traces<T>(
    sink: &Mutex<Vec<Option<RankTrace>>>,
    results: Vec<T>,
) -> (Vec<T>, Vec<RankTrace>) {
    let traces = sink
        .lock()
        .expect("trace sink poisoned")
        .iter_mut()
        .map(|slot| {
            slot.take()
                .expect("rank finished without sinking its trace")
        })
        .collect();
    (results, traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use columbia_rt::fault::FaultConfig;

    #[test]
    fn ring_pass_accumulates() {
        let results = run_ranks(4, |rank| {
            let r = rank.rank();
            let next = (r + 1) % 4;
            let prev = (r + 3) % 4;
            rank.send(next, 7, vec![r as f64]);
            let got = rank.recv(prev, 7);
            got[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let results = run_ranks(2, |rank| {
            if rank.rank() == 0 {
                rank.send(1, 1, vec![1.0]);
                rank.send(1, 2, vec![2.0]);
                0.0
            } else {
                // Receive in reverse tag order.
                let b = rank.recv(0, 2);
                let a = rank.recv(0, 1);
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(results[1], 12.0);
    }

    #[test]
    fn allreduce_sum_and_max() {
        let results = run_ranks(5, |rank| {
            let s = rank.allreduce_sum(rank.rank() as f64);
            let m = rank.allreduce_max(rank.rank() as f64);
            (s, m)
        });
        for (s, m) in results {
            assert_eq!(s, 10.0);
            assert_eq!(m, 4.0);
        }
    }

    #[test]
    fn single_rank_world_works() {
        let results = run_ranks(1, |rank| rank.allreduce_sum(5.0));
        assert_eq!(results, vec![5.0]);
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let results = run_ranks(2, |rank| {
            if rank.rank() == 0 {
                rank.send(1, 3, vec![0.0; 10]);
                rank.send(1, 4, vec![0.0; 5]);
            } else {
                rank.recv(0, 3);
                rank.recv(0, 4);
            }
            rank.barrier();
            rank.take_stats()
        });
        assert_eq!(results[0].total_msgs(), 2);
        assert_eq!(results[0].total_bytes(), 15 * 8);
        assert_eq!(results[1].total_msgs(), 0);
    }

    #[test]
    fn send_to_self_is_delivered() {
        let results = run_ranks(2, |rank| {
            let me = rank.rank();
            rank.send(me, 42, vec![me as f64 + 1.0]);
            rank.recv(me, 42)[0]
        });
        assert_eq!(results, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "rank 0 panicked: rank 5 out of range")]
    fn send_out_of_range_panics() {
        // The offending rank panics with "rank 5 out of range"; the world
        // re-reports it prefixed with the failing rank's id.
        run_ranks(1, |rank| rank.send(5, 1, vec![]));
    }

    #[test]
    fn spin_budget_parks_immediately_when_oversubscribed() {
        // More ranks than cores: polling steals the sender's CPU, so the
        // budget must be zero (park on the channel condvar, let the
        // sender's notify be the wakeup token). With spare cores the full
        // spin window applies.
        assert_eq!(spin_budget(8, 4), 0);
        assert_eq!(spin_budget(5, 4), 0);
        assert_eq!(spin_budget(4, 4), SPIN_PULLS);
        assert_eq!(spin_budget(2, 4), SPIN_PULLS);
        assert_eq!(spin_budget(1, 1), SPIN_PULLS);
        assert_eq!(spin_budget(2, 1), 0);
    }

    #[test]
    fn thread_backend_panics_carry_rank_prefix() {
        // Single-rank world (a multi-rank thread world would strand the
        // innocent peers; that pre-existing limitation is the event
        // backend's poison protocol to solve).
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_world(1, &ExecContext::default(), |_rank| {
                panic!("kaboom");
            });
        }))
        .expect_err("rank panic must propagate");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "rank 0 panicked: kaboom");
    }

    #[test]
    fn event_backend_panics_carry_rank_prefix_and_release_peers() {
        use columbia_exec::Executor;
        // Rank 1 panics while rank 0 is parked in a recv: the poison
        // protocol must wake rank 0 (no hang) and run_world must report
        // the *first* panic with its rank id.
        let ctx = ExecContext::default().with_executor(Executor::Events);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_world(2, &ctx, |rank| {
                if rank.rank() == 0 {
                    rank.recv(1, 1); // never satisfied
                } else {
                    panic!("bad interpolation weight");
                }
            });
        }))
        .expect_err("rank panic must propagate");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "rank 1 panicked: bad interpolation weight");
    }

    #[test]
    fn event_backend_ring_pass_matches_threads() {
        use columbia_exec::Executor;
        let run = |exec: Executor| {
            let ctx = ExecContext::default().with_executor(exec);
            run_world(5, &ctx, |rank| {
                let r = rank.rank();
                let n = rank.nranks();
                rank.send((r + 1) % n, 7, vec![r as f64]);
                let got = rank.recv((r + n - 1) % n, 7)[0];
                let sum = rank.allreduce_sum(got);
                rank.barrier();
                (got, sum, rank.take_stats())
            })
        };
        let (tr, tt) = run(Executor::Threads);
        let (er, et) = run(Executor::Events);
        for ((a, b, _), (c, d, _)) in tr.iter().zip(&er) {
            assert_eq!(a.to_bits(), c.to_bits());
            assert_eq!(b.to_bits(), d.to_bits());
        }
        assert_eq!(
            tr.iter().map(|(_, _, s)| s).collect::<Vec<_>>(),
            er.iter().map(|(_, _, s)| s).collect::<Vec<_>>(),
            "CommStats diverged between backends"
        );
        assert_eq!(tt, et, "teardown RankTraces diverged between backends");
    }

    #[test]
    fn event_backend_deadlock_is_detected_not_hung() {
        use columbia_exec::Executor;
        // Rank 0 recvs a message nobody sends: the thread backend would
        // park forever, the event scheduler must detect the empty queue
        // with live ranks and panic with the status table.
        let ctx = ExecContext::default().with_executor(Executor::Events);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_world(2, &ctx, |rank| {
                if rank.rank() == 0 {
                    rank.recv(1, 9);
                }
                rank.barrier();
            });
        }))
        .expect_err("deadlock must panic, not hang");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("deadlock"), "{msg}");
    }

    #[test]
    fn deadlock_status_table_lists_every_rank_exactly_once() {
        use columbia_exec::Executor;
        // Four ranks, two distinct fates: ranks 0 and 1 recv from a rank
        // that never sends; ranks 2 and 3 finish their bodies and park in
        // the teardown barrier the world can never complete. The deadlock
        // report must carry one status row per rank — no omissions, no
        // duplicates.
        let ctx = ExecContext::default().with_executor(Executor::Events);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_world(4, &ctx, |rank| match rank.rank() {
                0 | 1 => {
                    rank.recv(3, 42);
                }
                _ => {}
            });
        }))
        .expect_err("deadlock must panic, not hang");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("deadlock"), "{msg}");
        for row in [
            "(0, RecvWait)",
            "(1, RecvWait)",
            "(2, BarrierWait)",
            "(3, BarrierWait)",
        ] {
            assert_eq!(
                msg.matches(row).count(),
                1,
                "status row {row} missing or repeated in: {msg}"
            );
        }
        // Exactly the four rows — the table has no phantom ranks.
        assert_eq!(msg.matches("(0,").count(), 1, "{msg}");
        assert_eq!(msg.matches("RecvWait").count(), 2, "{msg}");
        assert_eq!(msg.matches("BarrierWait").count(), 2, "{msg}");
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_ranks(4, |rank| {
            counter.fetch_add(1, Ordering::SeqCst);
            rank.barrier();
            // After the barrier everyone must see all 4 increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    /// A messy mixed workload: ring pass, tagged cross-traffic, allreduce,
    /// barrier. Used to compare fault-free and faulty executions.
    fn chaos_workload(nranks: usize, plan: Option<Arc<FaultPlan>>) -> Vec<(f64, CommStats)> {
        run_world(nranks, &ExecContext::default().with_faults(plan), |rank| {
            let r = rank.rank();
            let n = rank.nranks();
            let next = (r + 1) % n;
            let prev = (r + n - 1) % n;
            let mut acc = 0.0;
            for round in 0..6u64 {
                rank.send(next, 7 + round % 2, vec![r as f64, round as f64]);
                let got = rank.recv(prev, 7 + round % 2);
                acc += got[0] * (round + 1) as f64 + got[1];
            }
            acc += rank.allreduce_sum(acc);
            rank.barrier();
            acc += rank.allreduce_max(r as f64);
            (acc, rank.take_stats())
        })
        .0
    }

    #[test]
    fn faulty_run_is_bit_identical_across_runs() {
        let plan = || {
            Some(Arc::new(FaultPlan::new(
                0xBAD_CAB1E,
                4,
                FaultConfig::severe(),
            )))
        };
        let a = chaos_workload(4, plan());
        let b = chaos_workload(4, plan());
        for ((va, sa), (vb, sb)) in a.iter().zip(&b) {
            assert_eq!(va.to_bits(), vb.to_bits(), "values diverged");
            assert_eq!(sa, sb, "stats traces diverged");
        }
        // The severe plan actually exercised the fault paths.
        let f: Vec<_> = a.iter().map(|(_, s)| *s.faults()).collect();
        assert!(f.iter().any(|c| c.retries > 0), "no retries recorded");
        assert!(f.iter().any(|c| c.dup_sent > 0), "no duplicates recorded");
        assert!(f.iter().any(|c| c.delayed_msgs > 0), "no delays recorded");
    }

    #[test]
    fn faults_do_not_change_delivered_values() {
        let clean = chaos_workload(4, None);
        let faulty = chaos_workload(
            4,
            Some(Arc::new(FaultPlan::new(99, 4, FaultConfig::severe()))),
        );
        for ((vc, _), (vf, _)) in clean.iter().zip(&faulty) {
            assert_eq!(
                vc.to_bits(),
                vf.to_bits(),
                "retry/dedup/reorder protocol must hide faults from payloads"
            );
        }
    }

    #[test]
    fn fault_free_plan_matches_no_plan_exactly() {
        let clean = chaos_workload(4, None);
        for seed in [0u64, 7, 0xFEED] {
            let plan = Arc::new(FaultPlan::new(seed, 4, FaultConfig::fault_free()));
            let gated = chaos_workload(4, Some(plan));
            for ((vc, sc), (vg, sg)) in clean.iter().zip(&gated) {
                assert_eq!(vc.to_bits(), vg.to_bits());
                assert_eq!(sc, sg, "zero-rate plan must leave the trace untouched");
            }
        }
    }

    #[test]
    fn duplicated_and_reordered_sends_are_deduped() {
        // Force heavy duplication + delay with zero drops: every payload
        // must still arrive exactly once, in order.
        let cfg = FaultConfig {
            dup_rate: 1.0,
            max_dups: 2,
            delay_rate: 0.8,
            max_delay_slots: 3,
            ..FaultConfig::fault_free()
        };
        let plan = Arc::new(FaultPlan::new(3, 2, cfg));
        let (results, _) = run_world(2, &ExecContext::faulty(plan), |rank| {
            if rank.rank() == 0 {
                for i in 0..20 {
                    rank.send(1, 5, vec![i as f64]);
                }
                Vec::new()
            } else {
                (0..20).map(|_| rank.recv(0, 5)[0]).collect::<Vec<f64>>()
            }
        });
        let expect: Vec<f64> = (0..20).map(|i| i as f64).collect();
        assert_eq!(results[1], expect, "stream order broken by dup/delay");
    }

    #[test]
    fn drops_are_retried_to_completion() {
        let cfg = FaultConfig {
            drop_rate: 0.9,
            max_retries: 3,
            ..FaultConfig::fault_free()
        };
        let plan = Arc::new(FaultPlan::new(17, 2, cfg));
        let (results, _) = run_world(2, &ExecContext::faulty(plan), |rank| {
            if rank.rank() == 0 {
                for i in 0..30 {
                    rank.send(1, 1, vec![i as f64]);
                }
                rank.take_stats()
            } else {
                for i in 0..30 {
                    assert_eq!(rank.recv(0, 1)[0], i as f64);
                }
                rank.take_stats()
            }
        });
        let f = results[0].faults();
        assert!(f.retries > 0, "90% drop rate must trigger retries");
        assert!(
            f.timeouts > 0,
            "0.9^3 per-message saturation must trigger timeouts"
        );
        // Every logical message was still delivered exactly once.
        assert_eq!(results[0].total_msgs(), 30);
    }

    #[test]
    fn recvs_and_barriers_are_counted_at_delivery() {
        let results = run_ranks(2, |rank| {
            if rank.rank() == 0 {
                rank.send(1, 3, vec![0.0; 10]);
            } else {
                rank.recv(0, 3);
            }
            rank.barrier();
            rank.take_stats()
        });
        assert_eq!(results[0].total_recvs(), 0);
        assert_eq!(results[1].total_recvs(), 1);
        assert_eq!(results[1].total_recv_bytes(), 80);
        assert_eq!(results[0].barriers(), 1);
        assert_eq!(results[1].barriers(), 1);
    }

    #[test]
    fn level_context_attributes_traffic() {
        let (_, traces) = run_world(2, &ExecContext::default(), |rank| {
            let peer = 1 - rank.rank();
            rank.enter_level(0);
            rank.send(peer, 1, vec![0.0; 4]);
            rank.recv(peer, 1);
            rank.enter_level(2); // nested: innermost wins
            rank.send(peer, 2, vec![0.0; 2]);
            rank.recv(peer, 2);
            rank.exit_level();
            rank.exit_level();
            rank.send(peer, 3, vec![0.0]); // no context: global only
            rank.recv(peer, 3);
        });
        for t in &traces {
            assert_eq!(t.stats.total_msgs(), 3, "global ledger counts all");
            assert_eq!(t.per_level.len(), 2);
            assert_eq!(t.per_level[&0].total_msgs(), 1);
            assert_eq!(t.per_level[&0].total_bytes(), 32);
            assert_eq!(t.per_level[&0].total_recvs(), 1);
            assert_eq!(t.per_level[&2].total_msgs(), 1);
            assert_eq!(t.per_level[&2].total_bytes(), 16);
        }
    }

    #[test]
    fn teardown_trace_captures_untaken_ledger() {
        // Body never calls take_stats: before the teardown sink existed
        // this ledger evaporated with the Rank.
        let (_, traces) = run_world(2, &ExecContext::default(), |rank| {
            let peer = 1 - rank.rank();
            rank.send(peer, 9, vec![1.0, 2.0]);
            rank.recv(peer, 9);
        });
        for t in &traces {
            assert_eq!(t.stats.total_msgs(), 1);
            assert_eq!(t.stats.total_bytes(), 16);
            assert_eq!(t.stats.total_recvs(), 1);
        }
    }

    #[test]
    fn teardown_trace_captures_delayed_sends_flushed_after_take_stats() {
        // Force every send into the delay queue, then take_stats *before*
        // the blocking point that flushes it... except take_stats itself
        // flushes. So instead: queue a delayed send as the very last
        // action after take_stats — only the teardown flush releases it.
        let cfg = FaultConfig {
            delay_rate: 1.0,
            max_delay_slots: 50,
            ..FaultConfig::fault_free()
        };
        let plan = Arc::new(FaultPlan::new(5, 2, cfg));
        let ((), ref traces) = {
            let (r, t) = run_world(2, &ExecContext::faulty(plan), |rank| {
                if rank.rank() == 0 {
                    let taken = rank.take_stats();
                    assert_eq!(taken.total_msgs(), 0);
                    // This send is delayed; nothing blocks after it, so
                    // only Rank::finish releases it onto the wire.
                    rank.send(1, 4, vec![7.0; 3]);
                } else {
                    assert_eq!(rank.recv(0, 4), vec![7.0; 3]);
                }
            });
            (r.into_iter().next().unwrap(), t.clone())
        };
        assert_eq!(
            traces[0].stats.total_msgs(),
            1,
            "teardown-flushed send must land in the rank trace, not vanish"
        );
        assert_eq!(traces[0].stats.faults().delayed_msgs, 1);
    }

    #[test]
    fn rank_traces_are_deterministic_and_recordable() {
        let run = || {
            let plan = Some(Arc::new(FaultPlan::new(11, 4, FaultConfig::severe())));
            run_world(4, &ExecContext::default().with_faults(plan), |rank| {
                let n = rank.nranks();
                let me = rank.rank();
                for level in 0..3usize {
                    rank.enter_level(level);
                    rank.send((me + 1) % n, level as u64, vec![me as f64; level + 1]);
                    rank.recv((me + n - 1) % n, level as u64);
                    rank.exit_level();
                }
                rank.barrier();
            })
            .1
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "rank traces must be bit-identical across runs");
        // And they serialize deterministically through the trace layer.
        let render = |traces: &[RankTrace]| {
            let mut t = Tracer::logical();
            for rt in traces {
                rt.record_to(&mut t);
            }
            t.finish().to_json().render()
        };
        assert_eq!(render(&a), render(&b));
        assert!(render(&a).contains("comm.sends"));
    }

    #[test]
    fn buffer_pool_recycles_by_peer_and_capacity() {
        run_ranks(1, |rank| {
            let b = rank.buffer(0, 10);
            assert_eq!(b.capacity(), 10, "misses must allocate exactly");
            rank.recycle(0, b);
            // Best fit: a smaller request reuses the 10-capacity buffer...
            let b2 = rank.buffer(0, 4);
            assert_eq!(b2.capacity(), 10);
            assert!(b2.is_empty(), "recycled buffers come back cleared");
            rank.recycle(0, b2);
            // ...a larger one cannot and allocates fresh.
            let b3 = rank.buffer(0, 11);
            assert_eq!(b3.capacity(), 11);
            rank.recycle(0, b3);
            assert_eq!(rank.pooled_buffers(), 2);
            // Pools never cross peers: peer 1's request misses even though
            // peer 0 has a fitting bucket parked.
            let b4 = rank.buffer(1, 4);
            assert_eq!(b4.capacity(), 4);
            rank.recycle(1, b4);
            assert_eq!(rank.pooled_buffers(), 3);
            // Zero-size requests and returns bypass the pool silently.
            assert_eq!(rank.buffer(0, 0).capacity(), 0);
            rank.recycle(0, Vec::new());
            let s = rank.take_stats();
            assert_eq!(s.pool().hits, 1);
            assert_eq!(s.pool().misses, 3);
            assert_eq!(s.pool().recycled, 4);
        });
    }

    #[test]
    fn pooled_payloads_round_trip_through_sends() {
        // A recycled buffer's capacity survives the wire: the receiver
        // recycles what the sender checked out, and the second cycle is
        // all hits on both sides.
        let stats = run_ranks(2, |rank| {
            let peer = 1 - rank.rank();
            for _ in 0..3 {
                let mut buf = rank.buffer(peer, 8);
                buf.extend_from_slice(&[rank.rank() as f64; 8]);
                rank.send(peer, 4, buf);
                let got = rank.recv(peer, 4);
                assert_eq!(got[0], peer as f64);
                rank.recycle(peer, got);
            }
            rank.take_stats()
        });
        for s in &stats {
            assert_eq!(s.pool().misses, 1, "only the first checkout allocates");
            assert_eq!(s.pool().hits, 2);
            assert_eq!(s.pool().recycled, 3);
        }
    }

    #[test]
    fn disabled_pool_allocates_fresh_but_delivers_identical_bytes() {
        let workload = |rank: &mut Rank| {
            let peer = 1 - rank.rank();
            let mut out = Vec::new();
            for round in 0..3 {
                let mut buf = rank.buffer(peer, 8);
                buf.extend_from_slice(&[rank.rank() as f64 + round as f64; 8]);
                rank.send(peer, 4, buf);
                let got = rank.recv(peer, 4);
                out.extend_from_slice(&got);
                rank.recycle(peer, got);
            }
            (out, rank.take_stats())
        };
        let (pooled, _) = run_world(2, &ExecContext::default(), workload);
        let off = ExecContext::default().with_pool(columbia_exec::PoolPolicy::disabled());
        let (fresh, _) = run_world(2, &off, workload);
        for ((pu, ps), (fu, fs)) in pooled.iter().zip(&fresh) {
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(pu), bits(fu), "payloads must not depend on the pool");
            assert_eq!(ps.pool().hits, 2);
            assert_eq!(ps.pool().misses, 1);
            assert_eq!(fs.pool().hits, 0, "pool off: no reuse");
            assert_eq!(fs.pool().misses, 3, "pool off: every checkout allocates");
            assert_eq!(fs.pool().recycled, 0, "pool off: recycles drop");
            assert_eq!(ps.total_msgs(), fs.total_msgs());
            assert_eq!(ps.total_bytes(), fs.total_bytes());
        }
    }

    #[test]
    fn stream_bookkeeping_is_bounded_across_cycles() {
        // A long fill that keeps inventing fresh tags: without the
        // barrier-point compaction, send_seq/recv_next grow one entry per
        // (peer, tag) forever — 200 entries by the end of this loop. The
        // dup/delay faults make sure the drain also swallows stale
        // duplicate copies parked in the channel at the barrier.
        let cfg = FaultConfig {
            dup_rate: 0.8,
            max_dups: 2,
            delay_rate: 0.6,
            max_delay_slots: 3,
            ..FaultConfig::fault_free()
        };
        let plan = Arc::new(FaultPlan::new(21, 3, cfg));
        let (maxima, _) = run_world(3, &ExecContext::faulty(plan), |rank| {
            let n = rank.nranks();
            let me = rank.rank();
            let mut worst = (0usize, 0usize, 0usize);
            for cycle in 0..50u64 {
                for t in 0..4u64 {
                    let tag = cycle * 16 + t; // never reused
                    rank.send((me + 1) % n, tag, vec![me as f64, cycle as f64]);
                    let got = rank.recv((me + n - 1) % n, tag);
                    assert_eq!(got[1], cycle as f64);
                }
                rank.barrier();
                let (a, b, c) = rank.stream_state_sizes();
                worst = (worst.0.max(a), worst.1.max(b), worst.2.max(c));
            }
            worst
        });
        for (send_seq, recv_next, pending) in maxima {
            assert!(send_seq <= 8, "send_seq map not bounded: {send_seq}");
            assert!(recv_next <= 8, "recv_next map not bounded: {recv_next}");
            assert!(pending <= 8, "pending map not bounded: {pending}");
        }
    }

    #[test]
    fn interleaved_collectives_never_cross_streams_under_faults() {
        // Satellite audit for the shared collective tag pair: interleave
        // sums and maxes under heavy duplication + reordering and check
        // every rank sees every result, in order, bit-exact.
        let cfg = FaultConfig {
            dup_rate: 0.9,
            max_dups: 3,
            delay_rate: 0.8,
            max_delay_slots: 5,
            ..FaultConfig::fault_free()
        };
        for seed in [2u64, 77, 0xABCD] {
            let plan = Arc::new(FaultPlan::new(seed, 4, cfg));
            let (results, _) = run_world(4, &ExecContext::faulty(plan), |rank| {
                let r = rank.rank() as f64;
                let mut out = Vec::new();
                for round in 0..12 {
                    let x = round as f64 + r;
                    out.push(rank.allreduce_sum(x));
                    out.push(rank.allreduce_max(x * 0.5));
                    out.push(rank.allreduce_sum(-x));
                }
                out
            });
            let mut expect = Vec::new();
            for round in 0..12 {
                let sum: f64 = (0..4).map(|r| round as f64 + r as f64).sum();
                let max = (0..4)
                    .map(|r| (round as f64 + r as f64) * 0.5)
                    .fold(f64::NEG_INFINITY, f64::max);
                let nsum: f64 = (0..4).map(|r| -(round as f64 + r as f64)).sum();
                expect.extend([sum, max, nsum]);
            }
            for (r, got) in results.iter().enumerate() {
                let gb: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
                let eb: Vec<u64> = expect.iter().map(|v| v.to_bits()).collect();
                assert_eq!(gb, eb, "rank {r} crossed collective streams (seed {seed})");
            }
        }
    }

    #[test]
    fn undelivered_message_at_barrier_panics_with_diagnostics() {
        // Both ranks violate quiescence symmetrically (a one-sided
        // violation would strand the innocent rank at the teardown
        // barrier once the guilty thread is down).
        run_ranks(2, |rank| {
            let peer = 1 - rank.rank();
            rank.send(peer, 6, vec![1.0]);
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rank.barrier()))
                .expect_err("quiescence violation must panic");
            let msg = err
                .downcast_ref::<String>()
                .expect("panic carries a message");
            assert!(msg.contains("undelivered"), "{msg}");
            assert!(msg.contains("6, 0, 0"), "stream coordinates missing: {msg}");
        });
    }

    #[test]
    fn mismatched_plan_world_size_panics() {
        let plan = Arc::new(FaultPlan::fault_free(3));
        let r = std::panic::catch_unwind(|| {
            run_world(2, &ExecContext::faulty(plan), |_| ());
        });
        assert!(r.is_err());
    }
}
