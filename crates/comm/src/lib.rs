//! Virtual message-passing runtime — the MPI substitute.
//!
//! The Rust ecosystem has no production MPI, and the reproduction does not
//! need a network: it needs the *communication pattern*. This crate runs
//! each "MPI rank" as an OS thread exchanging typed, packed messages over
//! `columbia-rt` MPMC channels, exactly mirroring NSU3D's strategy
//! (paper §III):
//!
//! * ghost values for a given peer are packed into **one buffer per peer**
//!   ("fewer larger messages ... reducing latency overheads");
//! * residual contributions accumulated at ghost vertices are sent back and
//!   **added** at their owners; updated state is then **copied** out to the
//!   ghosts;
//! * every send is instrumented (message count, bytes, peer), producing the
//!   per-level communication profiles the Columbia machine model replays at
//!   paper scale.
//!
//! [`hybrid`] describes MPI x OpenMP layouts: several partitions share one
//! rank, intra-rank exchanges become shared-memory copies, and inter-rank
//! messages from all threads of a rank pair are aggregated into a single
//! master-thread message.

//! [`runtime`] injects deterministic faults on demand: a seeded
//! [`FaultPlan`] decides per message occurrence whether it is dropped
//! (bounded retry-with-timeout), duplicated (sequence-number dedup),
//! delayed/reordered (flush-on-block sender queues) or whether a rank
//! stalls at a barrier — with the schedule, solver results and
//! [`CommStats`] traces bit-identical across runs for a fixed seed.

pub mod exchange;
pub mod fabric;
pub mod hybrid;
pub mod runtime;
mod sched;
pub mod stats;
pub mod workload;

pub use columbia_exec::{ExecContext, Executor, ExecutorKind, FabricKind, FabricModel, PoolPolicy};
pub use columbia_rt::fault::{FaultConfig, FaultPlan, MessageAction};
pub use exchange::{decompose, Decomposition, ExchangePlan, HaloField, PackedSchedule, PeerRange};
pub use fabric::{flows_from_traces, FabricClock};
pub use hybrid::HybridLayout;
pub use runtime::{run_ranks, run_world, Rank, RankTrace};
pub use stats::{CommStats, FaultCounters, PoolCounters, WorldCommSummary};
