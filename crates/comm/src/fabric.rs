//! Fabric models for the event executor's virtual time.
//!
//! The event backend schedules message wakeups on a virtual clock; by
//! default every cross-rank send costs one tick (the analytic regime —
//! delivery cost lives in `columbia_machine::interconnect`'s closed-form
//! curves, applied after the fact by the reports). Selecting
//! [`FabricModel::Contention`](columbia_exec::FabricModel) attaches a
//! [`FabricClock`] to the scheduler instead: each send walks its route
//! through a `columbia_machine::contention` topology, occupying every
//! link for the message's service time behind whatever traffic already
//! holds it, and the receiver's wakeup lands when the last hop drains.
//! Queueing delay on the virtual clock is therefore *emergent*.
//!
//! Two deliberate properties:
//!
//! * **Interleaving invariance is preserved.** The clock only reshapes
//!   *when* a parked receiver wakes, never what it reads: payload bits,
//!   `CommStats` and traces are bit-identical to the analytic regime
//!   (pinned by `tests/fabric_contention.rs`). The thread backend has no
//!   virtual clock, so the selection is a documented no-op there.
//! * **Determinism.** The clock is consulted only by the token-holding
//!   rank under the scheduler lock, and its state is a pure function of
//!   the send history — so double runs stay bit-identical.
//!
//! This is the *online* flavour of the contention model: per-link FIFO
//! occupancy without arbiter choice or finite capacity, cheap enough for
//! every send of a 2016-rank world. The full batch simulator (arbiters,
//! backpressure, head-of-line blocking) lives in
//! [`columbia_machine::contention`] and drives the `scaling_report
//! --fabric` section over [`flows_from_traces`] replays.

use crate::runtime::RankTrace;
use columbia_machine::contention::{Packet, Topology};
use columbia_machine::Fabric;

/// Per-link busy-until clock over a contention [`Topology`], in integer
/// nanoseconds (the event executor's tick).
pub struct FabricClock {
    topo: Topology,
    free_ns: Vec<u64>,
}

impl FabricClock {
    /// A clock over an explicit topology.
    pub fn new(topo: Topology) -> Self {
        let n = topo.nlinks();
        FabricClock {
            topo,
            free_ns: vec![0; n],
        }
    }

    /// The default contention regime for `nranks` event-executor ranks:
    /// the InfiniBand Columbia instantiation with ranks scattered over
    /// two nodes — the smallest placement whose cross-node uplinks
    /// actually contend, and the fabric whose degradation the paper's
    /// fig15/fig21 investigate.
    pub fn columbia_default(nranks: usize) -> Self {
        let nodes = if nranks >= 2 { 2 } else { 1 };
        FabricClock::new(Topology::columbia(Fabric::InfiniBand, nranks, nodes))
    }

    /// Route one `bytes`-sized message `src -> dst` injected at `now_ns`,
    /// occupying every link on the route FIFO behind its current holder.
    /// Returns the delivery delay in ticks (>= 1).
    pub fn delay_ns(&mut self, src: usize, dst: usize, bytes: u64, now_ns: u64) -> u64 {
        let mut t = now_ns;
        for l in self.topo.route(src, dst) {
            let svc = secs_to_ns(self.topo.link(l).service_s(bytes));
            t = t.max(self.free_ns[l]).saturating_add(svc);
            self.free_ns[l] = t;
        }
        (t - now_ns).max(1)
    }
}

/// Whole seconds-to-ticks conversion, rounding up so even a sub-tick
/// service occupies its link for one full tick.
fn secs_to_ns(s: f64) -> u64 {
    let ns = (s * 1e9).ceil();
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns as u64
    }
}

/// Replay a world's teardown ledgers as a packet burst: one packet per
/// recorded message, sized at the stream's mean message size (remainder
/// folded into the first packet), all injected at t = 0. Self-sends are
/// skipped — the fabric never saw them. Deterministic: ledger iteration
/// is `BTreeMap`-ordered and traces arrive in rank order.
pub fn flows_from_traces(traces: &[RankTrace]) -> Vec<Packet> {
    let mut packets = Vec::new();
    for t in traces {
        for (peer, msgs, bytes) in t.stats.peers() {
            if peer == t.rank || msgs == 0 {
                continue;
            }
            let per = bytes / msgs;
            let extra = bytes % msgs;
            for i in 0..msgs {
                packets.push(Packet {
                    src: t.rank,
                    dst: peer,
                    bytes: per + if i == 0 { extra } else { 0 },
                    inject_s: 0.0,
                });
            }
        }
    }
    packets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_delay_is_the_route_service_time() {
        let mut clock = FabricClock::new(Topology::uncontended(Fabric::InfiniBand, 4, 2));
        // Ranks 0 and 2 share node 0; 0 -> 2 is intra-node.
        let intra = clock.delay_ns(0, 2, 8000, 0);
        let expect =
            secs_to_ns(Fabric::InfiniBand.latency(1) + 8000.0 / Fabric::InfiniBand.bandwidth(1));
        assert_eq!(intra, expect);
        // 0 -> 1 crosses nodes at the span-2 parameters (ideal uplink).
        let cross = clock.delay_ns(0, 1, 8000, 0);
        let expect =
            secs_to_ns(Fabric::InfiniBand.latency(2) + 8000.0 / Fabric::InfiniBand.bandwidth(2));
        assert_eq!(cross, expect);
    }

    #[test]
    fn busy_links_queue_later_sends() {
        let mut clock = FabricClock::columbia_default(4);
        let first = clock.delay_ns(0, 1, 100_000, 0);
        // Same route again at the same instant: waits out the first
        // message's occupancy, so the delay at least doubles.
        // The NIC pipelines into the uplink, so the second message waits
        // out the NIC occupancy on top of its own full route.
        let second = clock.delay_ns(0, 1, 100_000, 0);
        assert!(second > first, "no queueing: {first} then {second}");
        // After the wave passes, the link is free again.
        let later = clock.delay_ns(0, 1, 100_000, u64::MAX / 2);
        assert_eq!(later, first);
    }

    #[test]
    fn delay_is_never_zero() {
        let mut clock = FabricClock::columbia_default(2);
        assert!(clock.delay_ns(0, 1, 0, 0) >= 1);
    }
}
