//! Cooperative rank-task scheduler: the discrete-event `run_world` backend.
//!
//! The thread backend lets the kernel decide which rank runs; this module
//! replaces the kernel with a deterministic [`TimeQueue`]. Every rank is a
//! cooperative task that holds a single **run token**: exactly one rank
//! executes at any instant, and it runs until it reaches a blocking point —
//! a `recv` with an empty channel, a barrier it is not the last to enter —
//! where it hands the token to whichever ready task the event queue pops
//! next. Blocked ranks are *parked* (condvar wait on their own gate), never
//! spinning, so one machine hosts paper-scale worlds: 2016 rank tasks cost
//! 2016 parked carrier threads with small stacks and zero scheduler noise.
//!
//! Determinism argument (pinned by `tests/executor_parity.rs`):
//!
//! 1. scheduler state is only ever mutated by the token holder, so there
//!    are no races on the schedule itself;
//! 2. wakeups enter the queue at `now + 1` keyed by rank id, and the queue
//!    pops by `(time, key, seq)` — a pure function of the push history;
//! 3. therefore the whole interleaving is a pure function of the rank
//!    program, and since payloads, `CommStats` and traces are already
//!    interleaving-invariant (the comm protocol's standing contract), the
//!    event backend is bit-identical to the thread backend.
//!
//! A rank that panics poisons the world: every parked task is woken to
//! unwind, and `run_world` re-reports the *first* panic (deterministic —
//! only one rank runs at a time) prefixed with its rank id.

use crate::fabric::FabricClock;
use columbia_rt::timeq::TimeQueue;
use std::sync::{Condvar, Mutex};

/// What a rank task is doing, from the scheduler's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RankStatus {
    /// In the event queue, waiting for the token.
    Ready,
    /// Holding the token.
    Running,
    /// Parked until a message lands in its channel.
    RecvWait,
    /// Parked in a barrier episode.
    BarrierWait,
    /// Body and teardown complete; carrier thread exited (or unwinding).
    Done,
}

/// Per-rank run gate: the carrier thread parks here between turns.
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

struct SchedState {
    /// Ready ranks, popped by `(time, rank, seq)`.
    queue: TimeQueue<()>,
    status: Vec<RankStatus>,
    /// Ranks parked in the current barrier episode. Exactly one episode is
    /// in flight at a time: a released rank can only re-enter a barrier
    /// while holding the token, after the list has been flushed.
    barrier_waiters: Vec<usize>,
    /// Ranks not yet `Done`.
    live: usize,
    /// First panic `(rank, message)` — set once, reported by `run_world`.
    poisoned: Option<(usize, String)>,
    /// Optional contention clock: when present, message wakeups are
    /// scheduled at the fabric's emergent delivery time instead of one
    /// tick out. Consulted only by the token holder under this lock, so
    /// its occupancy state is a pure function of the send history.
    fabric: Option<FabricClock>,
}

/// The shared scheduler for one event-backend world.
pub(crate) struct EventSched {
    state: Mutex<SchedState>,
    gates: Vec<Gate>,
}

impl EventSched {
    /// A world of `nranks` tasks, all ready at virtual time 0 in rank
    /// order, with an optional contention clock shaping message-wakeup
    /// delays (`None` is the analytic regime: one tick per wakeup). No
    /// gate is open until [`EventSched::kick`].
    pub(crate) fn with_fabric(nranks: usize, fabric: Option<FabricClock>) -> Self {
        let mut queue = TimeQueue::new();
        for r in 0..nranks {
            queue.push(0, r as u64, ());
        }
        EventSched {
            state: Mutex::new(SchedState {
                queue,
                status: vec![RankStatus::Ready; nranks],
                barrier_waiters: Vec::with_capacity(nranks),
                live: nranks,
                poisoned: None,
                fabric,
            }),
            gates: (0..nranks)
                .map(|_| Gate {
                    open: Mutex::new(false),
                    cv: Condvar::new(),
                })
                .collect(),
        }
    }

    /// Hand the token to the first scheduled rank (rank 0 at time 0).
    /// Called once by `run_world` after spawning the carrier threads.
    pub(crate) fn kick(&self) {
        let mut st = self.state.lock().expect("scheduler poisoned");
        let next = self.pop_next(&mut st).expect("empty world");
        drop(st);
        self.grant(next);
    }

    /// Open `rank`'s gate (the token transfer; the state lock must already
    /// have recorded the rank as `Running`).
    fn grant(&self, rank: usize) {
        let mut open = self.gates[rank].open.lock().expect("gate poisoned");
        *open = true;
        drop(open);
        self.gates[rank].cv.notify_one();
    }

    /// Park until granted the token. First thing every carrier thread
    /// does, and what every blocking point returns through.
    pub(crate) fn wait_turn(&self, rank: usize) {
        let mut open = self.gates[rank].open.lock().expect("gate poisoned");
        while !*open {
            open = self.gates[rank].cv.wait(open).expect("gate poisoned");
        }
        *open = false;
        drop(open);
        let st = self.state.lock().expect("scheduler poisoned");
        if let Some((pr, _)) = &st.poisoned {
            let pr = *pr;
            drop(st);
            panic!("world poisoned by rank {pr}");
        }
    }

    /// Pop the next ready rank and mark it running.
    fn pop_next(&self, st: &mut SchedState) -> Option<usize> {
        let (_, key, ()) = st.queue.pop()?;
        let next = key as usize;
        debug_assert_eq!(st.status[next], RankStatus::Ready);
        st.status[next] = RankStatus::Running;
        Some(next)
    }

    /// Hand the token onward after the current rank blocked or retired.
    /// With no ready rank but live tasks remaining, the world is
    /// deadlocked: poison it (so parked peers unwind) and panic with the
    /// full per-rank status table.
    fn yield_token(&self, mut st: std::sync::MutexGuard<'_, SchedState>, from: usize) {
        match self.pop_next(&mut st) {
            Some(next) => {
                drop(st);
                self.grant(next);
            }
            None if st.live == 0 => {} // world complete; nobody to run
            None => {
                let table: Vec<(usize, RankStatus)> =
                    st.status.iter().enumerate().map(|(r, &s)| (r, s)).collect();
                let msg = format!(
                    "event executor deadlock: no runnable rank, {} still live; \
                     statuses: {table:?}",
                    st.live
                );
                self.poison_locked(&mut st, from, &msg);
                drop(st);
                panic!("{msg}");
            }
        }
    }

    /// Blocking point: the running rank's channel is empty. Parks until a
    /// sender wakes us via [`EventSched::notify_mail`].
    pub(crate) fn block_recv(&self, rank: usize) {
        let mut st = self.state.lock().expect("scheduler poisoned");
        debug_assert_eq!(st.status[rank], RankStatus::Running);
        st.status[rank] = RankStatus::RecvWait;
        self.yield_token(st, rank);
        self.wait_turn(rank);
    }

    /// A `bytes`-sized message was pushed onto `to`'s channel by the
    /// running rank `from`. Under the analytic regime the wakeup lands
    /// one tick out; under a contention clock it lands when the fabric
    /// delivers — behind whatever traffic already occupies the route's
    /// links. The clock is advanced for every send (the message occupies
    /// the wire whether or not the receiver is parked), but only a
    /// `RecvWait` receiver is actually scheduled.
    pub(crate) fn notify_mail(&self, from: usize, to: usize, bytes: u64) {
        let mut st = self.state.lock().expect("scheduler poisoned");
        let now = st.queue.now();
        let delay = match &mut st.fabric {
            Some(clock) => clock.delay_ns(from, to, bytes, now),
            None => 1,
        };
        if st.status[to] == RankStatus::RecvWait {
            st.status[to] = RankStatus::Ready;
            st.queue.push_after(delay, to as u64, ());
        }
    }

    /// Cooperative barrier: the last live rank to arrive releases every
    /// waiter (scheduled at `now + 1`, popping in rank order) and keeps
    /// the token; everyone else parks.
    pub(crate) fn barrier_wait(&self, rank: usize) {
        let mut st = self.state.lock().expect("scheduler poisoned");
        debug_assert_eq!(st.status[rank], RankStatus::Running);
        st.barrier_waiters.push(rank);
        if st.barrier_waiters.len() == st.live {
            let waiters = std::mem::take(&mut st.barrier_waiters);
            for w in waiters {
                if w != rank {
                    debug_assert_eq!(st.status[w], RankStatus::BarrierWait);
                    st.status[w] = RankStatus::Ready;
                    st.queue.push_after(1, w as u64, ());
                }
            }
            // Last arriver continues running — no park, no token transfer.
        } else {
            st.status[rank] = RankStatus::BarrierWait;
            self.yield_token(st, rank);
            self.wait_turn(rank);
        }
    }

    /// The rank's body and teardown are complete: retire the task and pass
    /// the token to the next ready rank, if any.
    pub(crate) fn retire(&self, rank: usize) {
        let mut st = self.state.lock().expect("scheduler poisoned");
        debug_assert_eq!(st.status[rank], RankStatus::Running);
        st.status[rank] = RankStatus::Done;
        st.live -= 1;
        if st.live > 0 {
            self.yield_token(st, rank);
        }
    }

    /// Record the world's first panic and wake every parked task so its
    /// carrier thread can unwind (each observes `poisoned` in
    /// [`EventSched::wait_turn`] and panics in turn).
    pub(crate) fn poison(&self, rank: usize, msg: &str) {
        let mut st = self.state.lock().expect("scheduler poisoned");
        self.poison_locked(&mut st, rank, msg);
    }

    fn poison_locked(&self, st: &mut SchedState, rank: usize, msg: &str) {
        if st.poisoned.is_none() {
            st.poisoned = Some((rank, msg.to_string()));
        }
        if st.status[rank] != RankStatus::Done {
            st.status[rank] = RankStatus::Done;
            st.live -= 1;
        }
        for (r, s) in st.status.iter_mut().enumerate() {
            if matches!(
                *s,
                RankStatus::RecvWait | RankStatus::BarrierWait | RankStatus::Ready
            ) {
                self.grant(r);
            }
        }
    }

    /// The first panic recorded by [`EventSched::poison`], if any.
    pub(crate) fn first_panic(&self) -> Option<(usize, String)> {
        self.state
            .lock()
            .expect("scheduler poisoned")
            .poisoned
            .clone()
    }
}
