//! Boundary Fiduccia-Mattheyses-style k-way refinement.
//!
//! After each uncoarsening step, boundary vertices are repeatedly moved to
//! the neighbouring partition with the largest positive gain (reduction in
//! edge cut), subject to a balance constraint. A greedy pass over all
//! boundary vertices is repeated until no improving move exists or the pass
//! budget is exhausted.

use crate::graph::Graph;

/// Balance constraint: no part may exceed `max_imbalance` x mean weight.
#[derive(Clone, Copy, Debug)]
pub struct RefineParams {
    /// Allowed max-part/mean-part weight ratio (METIS default ~1.03).
    pub max_imbalance: f64,
    /// Maximum number of full boundary passes.
    pub max_passes: usize,
}

impl Default for RefineParams {
    fn default() -> Self {
        Self {
            max_imbalance: 1.05,
            max_passes: 8,
        }
    }
}

/// Refine `part` in place; returns the final edge cut.
pub fn refine_kway(g: &Graph, part: &mut [u32], k: usize, params: RefineParams) -> f64 {
    let n = g.nvertices();
    assert_eq!(part.len(), n);
    if n == 0 || k <= 1 {
        return 0.0;
    }
    let total_w = g.total_vwgt();
    let mean_w = total_w / k as f64;
    let max_w = mean_w * params.max_imbalance;

    let mut pw = vec![0.0f64; k];
    for (v, &p) in part.iter().enumerate() {
        pw[p as usize] += g.vwgt[v];
    }

    // Connectivity of vertex v to part p (sum of edge weights).
    let conn = |g: &Graph, part: &[u32], v: usize, p: u32| -> f64 {
        g.neighbors_weighted(v)
            .filter(|&(u, _)| part[u as usize] == p)
            .map(|(_, w)| w)
            .sum()
    };

    for _pass in 0..params.max_passes {
        let mut improved = false;
        for v in 0..n {
            let pv = part[v];
            // Only boundary vertices can have gainful moves.
            let mut candidate_parts: Vec<u32> = Vec::new();
            for &u in g.neighbors(v) {
                let pu = part[u as usize];
                if pu != pv && !candidate_parts.contains(&pu) {
                    candidate_parts.push(pu);
                }
            }
            if candidate_parts.is_empty() {
                continue;
            }
            let internal = conn(g, part, v, pv);
            let mut best: Option<(u32, f64)> = None;
            for &cp in &candidate_parts {
                let external = conn(g, part, v, cp);
                let gain = external - internal;
                let fits = pw[cp as usize] + g.vwgt[v] <= max_w;
                // Also allow zero-gain moves that strictly improve balance.
                let balance_gain = pw[pv as usize] - (pw[cp as usize] + g.vwgt[v]);
                let ok =
                    (gain > 1e-12 && fits) || (gain >= -1e-12 && fits && balance_gain > g.vwgt[v]);
                if ok {
                    match best {
                        Some((_, bg)) if bg >= gain => {}
                        _ => best = Some((cp, gain)),
                    }
                }
            }
            if let Some((cp, _gain)) = best {
                pw[pv as usize] -= g.vwgt[v];
                pw[cp as usize] += g.vwgt[v];
                part[v] = cp;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    // Recompute exactly to avoid float drift.
    edge_cut(g, part)
}

/// Total weight of edges crossing partition boundaries.
pub fn edge_cut(g: &Graph, part: &[u32]) -> f64 {
    let mut cut = 0.0;
    for v in 0..g.nvertices() {
        for (u, w) in g.neighbors_weighted(v) {
            if (u as usize) > v && part[u as usize] != part[v] {
                cut += w;
            }
        }
    }
    cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::grid_graph;

    #[test]
    fn refinement_never_increases_cut() {
        let g = grid_graph(10, 10, 1);
        // Deliberately bad partition: checkerboard.
        let mut part: Vec<u32> = (0..100).map(|v| ((v % 10) + (v / 10)) as u32 % 2).collect();
        let before = edge_cut(&g, &part);
        let after = refine_kway(&g, &mut part, 2, RefineParams::default());
        assert!(after <= before, "cut {after} > {before}");
        // Checkerboard on a 10x10 grid has cut 180; a half split has 10.
        assert!(
            after < before * 0.8,
            "refinement too weak: {after} vs {before}"
        );
    }

    #[test]
    fn refinement_respects_balance() {
        let g = grid_graph(12, 12, 1);
        let mut part: Vec<u32> = (0..144).map(|v| if v < 72 { 0 } else { 1 }).collect();
        refine_kway(&g, &mut part, 2, RefineParams::default());
        let w0 = part.iter().filter(|&&p| p == 0).count() as f64;
        let w1 = part.iter().filter(|&&p| p == 1).count() as f64;
        let imb = w0.max(w1) / 72.0;
        assert!(imb <= 1.05 + 1e-9, "imbalance {imb}");
    }

    #[test]
    fn single_part_is_noop() {
        let g = grid_graph(4, 4, 1);
        let mut part = vec![0u32; 16];
        let cut = refine_kway(&g, &mut part, 1, RefineParams::default());
        assert_eq!(cut, 0.0);
    }

    #[test]
    fn edge_cut_counts_weighted_crossings() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], vec![1.0; 3], &[2.0, 3.0]);
        assert_eq!(edge_cut(&g, &[0, 0, 1]), 3.0);
        assert_eq!(edge_cut(&g, &[0, 1, 0]), 5.0);
        assert_eq!(edge_cut(&g, &[0, 0, 0]), 0.0);
    }
}
