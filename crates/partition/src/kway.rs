//! The multilevel k-way driver: coarsen → initial partition → uncoarsen+refine.

use crate::coarsen::heavy_edge_matching;
use crate::graph::Graph;
use crate::initial::region_growing;
use crate::refine::{refine_kway, RefineParams};

/// Configuration of the multilevel partitioner.
#[derive(Clone, Copy, Debug)]
pub struct PartitionConfig {
    /// Stop coarsening when the graph has at most `coarsen_to * k` vertices.
    pub coarsen_to_per_part: usize,
    /// Refinement parameters applied at every uncoarsening step.
    pub refine: RefineParams,
    /// RNG seed for the matching order (determinism).
    pub seed: u64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        Self {
            coarsen_to_per_part: 30,
            refine: RefineParams::default(),
            seed: 0x5EED,
        }
    }
}

/// Partition `g` into `k` parts; returns a part id per vertex.
///
/// This is the drop-in METIS replacement: multilevel heavy-edge-matching
/// coarsening, greedy region-growing initial partition, boundary FM
/// refinement during uncoarsening.
///
/// ```
/// use columbia_partition::{partition_graph, PartitionConfig, PartitionQuality};
/// use columbia_partition::graph::grid_graph;
/// let g = grid_graph(12, 12, 1);
/// let part = partition_graph(&g, 4, &PartitionConfig::default());
/// let q = PartitionQuality::measure(&g, &part, 4);
/// assert!(q.imbalance < 1.1);
/// ```
pub fn partition_graph(g: &Graph, k: usize, config: &PartitionConfig) -> Vec<u32> {
    assert!(k > 0, "k must be positive");
    let n = g.nvertices();
    if k == 1 {
        return vec![0; n];
    }
    if n <= k {
        return (0..n as u32).collect();
    }

    // Coarsening phase.
    let target = (config.coarsen_to_per_part * k).max(2 * k);
    let mut graphs: Vec<Graph> = vec![g.clone()];
    let mut cmaps: Vec<Vec<u32>> = Vec::new();
    let mut seed = config.seed;
    while graphs.last().unwrap().nvertices() > target {
        let step = heavy_edge_matching(graphs.last().unwrap(), seed);
        seed = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        // Matching can stall on edgeless graphs; bail out.
        if step.coarse.nvertices() as f64 > 0.95 * graphs.last().unwrap().nvertices() as f64 {
            break;
        }
        graphs.push(step.coarse);
        cmaps.push(step.cmap);
    }

    // Initial partition on the coarsest graph.
    let coarsest = graphs.last().unwrap();
    let mut part = region_growing(coarsest, k);
    refine_kway(coarsest, &mut part, k, config.refine);

    // Uncoarsening: project and refine.
    for lvl in (0..cmaps.len()).rev() {
        let fine_g = &graphs[lvl];
        let cmap = &cmaps[lvl];
        let mut fine_part = vec![0u32; fine_g.nvertices()];
        for (v, &c) in cmap.iter().enumerate() {
            fine_part[v] = part[c as usize];
        }
        refine_kway(fine_g, &mut fine_part, k, config.refine);
        part = fine_part;
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::grid_graph;
    use crate::quality::PartitionQuality;

    #[test]
    fn bisection_of_grid_is_balanced_with_low_cut() {
        let g = grid_graph(16, 16, 1);
        let part = partition_graph(&g, 2, &PartitionConfig::default());
        let q = PartitionQuality::measure(&g, &part, 2);
        assert!(q.imbalance < 1.06, "imbalance {}", q.imbalance);
        // Ideal bisection cut is 16; accept up to 2x.
        assert!(q.edge_cut <= 32.0, "cut {}", q.edge_cut);
    }

    #[test]
    fn kway_16_parts_on_3d_grid() {
        let g = grid_graph(12, 12, 12);
        let part = partition_graph(&g, 16, &PartitionConfig::default());
        let q = PartitionQuality::measure(&g, &part, 16);
        assert!(q.imbalance < 1.10, "imbalance {}", q.imbalance);
        assert_eq!(q.nonempty_parts, 16);
        // Random partition cut would be ~15/16 of 4752 edges; demand far less.
        assert!(q.edge_cut < 1500.0, "cut {}", q.edge_cut);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let g = grid_graph(10, 10, 2);
        let c = PartitionConfig::default();
        assert_eq!(partition_graph(&g, 4, &c), partition_graph(&g, 4, &c));
    }

    #[test]
    fn k_one_is_all_zero() {
        let g = grid_graph(5, 5, 1);
        assert!(partition_graph(&g, 1, &PartitionConfig::default())
            .iter()
            .all(|&p| p == 0));
    }

    #[test]
    fn tiny_graph_many_parts() {
        let g = grid_graph(2, 2, 1);
        let part = partition_graph(&g, 8, &PartitionConfig::default());
        assert_eq!(part.len(), 4);
        assert!(part.iter().all(|&p| p < 8));
    }

    #[test]
    fn weighted_vertices_balance_by_weight() {
        // Line of 8 vertices; first two carry weight 3 each (like contracted
        // implicit lines), rest weight 1: total 12, so a 2-way split should
        // put the two heavy vertices alone against the six light ones.
        let edges: Vec<(u32, u32)> = (0..7).map(|i| (i, i + 1)).collect();
        let vwgt = vec![3.0, 3.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let ew = vec![1.0; edges.len()];
        let g = Graph::from_edges(8, &edges, vwgt, &ew);
        let part = partition_graph(&g, 2, &PartitionConfig::default());
        let q = PartitionQuality::measure(&g, &part, 2);
        assert!(q.imbalance < 1.2, "imbalance {}", q.imbalance);
    }

    columbia_rt::props! {
        config: columbia_rt::props::Config::with_cases(16);
        /// Every vertex gets a valid part; parts are <= k; imbalance bounded
        /// on grid graphs large relative to k.
        fn prop_partition_valid(nx in 6usize..14, ny in 6usize..14, k in 2usize..9) {
            let g = grid_graph(nx, ny, 1);
            let part = partition_graph(&g, k, &PartitionConfig::default());
            assert_eq!(part.len(), g.nvertices());
            assert!(part.iter().all(|&p| (p as usize) < k));
            let q = PartitionQuality::measure(&g, &part, k);
            assert!(q.imbalance < 1.35, "imbalance {}", q.imbalance);
        }
    }
}
