//! Compressed-sparse-row undirected graph with vertex and edge weights.

/// Undirected weighted graph in CSR form.
///
/// Every undirected edge `{u, v}` is stored twice (once in each adjacency
/// list) with the same weight. Vertex weights carry computational work
/// (e.g. number of mesh points collapsed into a contracted line vertex);
/// edge weights carry communication volume.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// Adjacency offsets; `xadj[v]..xadj[v+1]` indexes `adjncy`/`ewgt`.
    pub xadj: Vec<usize>,
    /// Flattened adjacency lists.
    pub adjncy: Vec<u32>,
    /// Vertex weights, length `nvertices`.
    pub vwgt: Vec<f64>,
    /// Edge weights, parallel to `adjncy`.
    pub ewgt: Vec<f64>,
}

impl Graph {
    /// Number of vertices.
    #[inline]
    pub fn nvertices(&self) -> usize {
        self.xadj.len().saturating_sub(1)
    }

    /// Number of undirected edges.
    #[inline]
    pub fn nedges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Neighbour vertex ids of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adjncy[self.xadj[v]..self.xadj[v + 1]]
    }

    /// `(neighbor, edge_weight)` pairs of `v`.
    #[inline]
    pub fn neighbors_weighted(&self, v: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let r = self.xadj[v]..self.xadj[v + 1];
        self.adjncy[r.clone()]
            .iter()
            .copied()
            .zip(self.ewgt[r].iter().copied())
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Total vertex weight.
    pub fn total_vwgt(&self) -> f64 {
        self.vwgt.iter().sum()
    }

    /// Build from an undirected edge list. Duplicate edges are merged by
    /// summing weights; self-loops are dropped.
    ///
    /// # Panics
    /// If any endpoint is `>= nvertices` or lengths disagree.
    pub fn from_edges(
        nvertices: usize,
        edges: &[(u32, u32)],
        vwgt: Vec<f64>,
        ewgt: &[f64],
    ) -> Self {
        assert_eq!(vwgt.len(), nvertices, "vertex weight length mismatch");
        assert_eq!(edges.len(), ewgt.len(), "edge weight length mismatch");
        // Count half-edges per vertex (excluding self loops).
        let mut deg = vec![0usize; nvertices];
        for &(u, v) in edges {
            assert!((u as usize) < nvertices && (v as usize) < nvertices);
            if u != v {
                deg[u as usize] += 1;
                deg[v as usize] += 1;
            }
        }
        let mut xadj = Vec::with_capacity(nvertices + 1);
        xadj.push(0usize);
        for d in &deg {
            xadj.push(xadj.last().unwrap() + d);
        }
        let half = *xadj.last().unwrap();
        let mut adjncy = vec![0u32; half];
        let mut ew = vec![0f64; half];
        let mut cursor = xadj[..nvertices].to_vec();
        for (&(u, v), &w) in edges.iter().zip(ewgt.iter()) {
            if u == v {
                continue;
            }
            adjncy[cursor[u as usize]] = v;
            ew[cursor[u as usize]] = w;
            cursor[u as usize] += 1;
            adjncy[cursor[v as usize]] = u;
            ew[cursor[v as usize]] = w;
            cursor[v as usize] += 1;
        }
        let mut g = Graph {
            xadj,
            adjncy,
            vwgt,
            ewgt: ew,
        };
        g.merge_duplicate_edges();
        g
    }

    /// Build with unit vertex and edge weights.
    pub fn unweighted(nvertices: usize, edges: &[(u32, u32)]) -> Self {
        let ew = vec![1.0; edges.len()];
        Self::from_edges(nvertices, edges, vec![1.0; nvertices], &ew)
    }

    /// Merge parallel edges in each adjacency list, summing their weights.
    fn merge_duplicate_edges(&mut self) {
        let n = self.nvertices();
        let mut new_xadj = Vec::with_capacity(n + 1);
        let mut new_adj = Vec::with_capacity(self.adjncy.len());
        let mut new_ew = Vec::with_capacity(self.ewgt.len());
        new_xadj.push(0usize);
        let mut pairs: Vec<(u32, f64)> = Vec::new();
        for v in 0..n {
            pairs.clear();
            pairs.extend(self.neighbors_weighted(v));
            pairs.sort_unstable_by_key(|&(u, _)| u);
            let mut i = 0;
            while i < pairs.len() {
                let (u, mut w) = pairs[i];
                let mut j = i + 1;
                while j < pairs.len() && pairs[j].0 == u {
                    w += pairs[j].1;
                    j += 1;
                }
                new_adj.push(u);
                new_ew.push(w);
                i = j;
            }
            new_xadj.push(new_adj.len());
        }
        self.xadj = new_xadj;
        self.adjncy = new_adj;
        self.ewgt = new_ew;
    }

    /// Contract the graph given a vertex→coarse-vertex map with `ncoarse`
    /// coarse vertices. Vertex weights are summed; edges between distinct
    /// coarse vertices are merged with summed weights; internal edges vanish.
    pub fn contract(&self, cmap: &[u32], ncoarse: usize) -> Graph {
        assert_eq!(cmap.len(), self.nvertices());
        let mut vwgt = vec![0.0; ncoarse];
        for (v, &c) in cmap.iter().enumerate() {
            assert!((c as usize) < ncoarse, "coarse id out of range");
            vwgt[c as usize] += self.vwgt[v];
        }
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut ewgt: Vec<f64> = Vec::new();
        for v in 0..self.nvertices() {
            let cv = cmap[v];
            for (u, w) in self.neighbors_weighted(v) {
                let cu = cmap[u as usize];
                // Keep each undirected coarse edge once (cv < cu).
                if cv < cu {
                    edges.push((cv, cu));
                    ewgt.push(w);
                }
            }
        }
        Graph::from_edges(ncoarse, &edges, vwgt, &ewgt)
    }

    /// Connected components; returns (component id per vertex, count).
    pub fn connected_components(&self) -> (Vec<u32>, usize) {
        let n = self.nvertices();
        let mut comp = vec![u32::MAX; n];
        let mut ncomp = 0u32;
        let mut stack = Vec::new();
        for s in 0..n {
            if comp[s] != u32::MAX {
                continue;
            }
            comp[s] = ncomp;
            stack.push(s);
            while let Some(v) = stack.pop() {
                for &u in self.neighbors(v) {
                    if comp[u as usize] == u32::MAX {
                        comp[u as usize] = ncomp;
                        stack.push(u as usize);
                    }
                }
            }
            ncomp += 1;
        }
        (comp, ncomp as usize)
    }

    /// Structural validation: symmetric adjacency, sorted lists, no self
    /// loops. Used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.nvertices();
        if self.vwgt.len() != n {
            return Err("vwgt length mismatch".into());
        }
        if self.adjncy.len() != self.ewgt.len() {
            return Err("ewgt length mismatch".into());
        }
        for v in 0..n {
            let mut prev: Option<u32> = None;
            for (u, w) in self.neighbors_weighted(v) {
                if u as usize >= n {
                    return Err(format!("neighbor {u} out of range"));
                }
                if u as usize == v {
                    return Err(format!("self loop at {v}"));
                }
                if let Some(p) = prev {
                    if u <= p {
                        return Err(format!("unsorted/duplicate adjacency at {v}"));
                    }
                }
                prev = Some(u);
                // Find the reverse edge.
                let rev = self
                    .neighbors_weighted(u as usize)
                    .find(|&(x, _)| x as usize == v);
                match rev {
                    Some((_, wr)) if (wr - w).abs() < 1e-9 * (1.0 + w.abs()) => {}
                    Some(_) => return Err(format!("asymmetric weight on edge {v}-{u}")),
                    None => return Err(format!("missing reverse edge {u}-{v}")),
                }
            }
        }
        Ok(())
    }
}

/// Build the edge list of a structured `nx x ny x nz` grid graph
/// (6-neighbour stencil). Shared by tests and benches as a canonical mesh
/// stand-in.
pub fn grid_graph(nx: usize, ny: usize, nz: usize) -> Graph {
    let id = |x: usize, y: usize, z: usize| (x + nx * (y + ny * z)) as u32;
    let mut edges = Vec::new();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    edges.push((id(x, y, z), id(x + 1, y, z)));
                }
                if y + 1 < ny {
                    edges.push((id(x, y, z), id(x, y + 1, z)));
                }
                if z + 1 < nz {
                    edges.push((id(x, y, z), id(x, y, z + 1)));
                }
            }
        }
    }
    Graph::unweighted(nx * ny * nz, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_graph_structure() {
        let g = Graph::unweighted(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.nvertices(), 3);
        assert_eq!(g.nedges(), 3);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        g.validate().unwrap();
    }

    #[test]
    fn self_loops_dropped_duplicates_merged() {
        let g = Graph::from_edges(
            2,
            &[(0, 0), (0, 1), (1, 0)],
            vec![1.0, 1.0],
            &[5.0, 2.0, 3.0],
        );
        assert_eq!(g.nedges(), 1);
        let (u, w) = g.neighbors_weighted(0).next().unwrap();
        assert_eq!(u, 1);
        assert_eq!(w, 5.0);
        g.validate().unwrap();
    }

    #[test]
    fn grid_graph_counts() {
        let g = grid_graph(3, 3, 3);
        assert_eq!(g.nvertices(), 27);
        // Edges: 3 directions * 2*3*3 = 54.
        assert_eq!(g.nedges(), 54);
        g.validate().unwrap();
        // Corner has degree 3, center degree 6.
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(13), 6);
    }

    #[test]
    fn contract_conserves_vertex_weight_and_drops_internal_edges() {
        let g = grid_graph(4, 1, 1); // path 0-1-2-3
        let cmap = vec![0u32, 0, 1, 1];
        let c = g.contract(&cmap, 2);
        assert_eq!(c.nvertices(), 2);
        assert_eq!(c.nedges(), 1);
        assert_eq!(c.total_vwgt(), g.total_vwgt());
        c.validate().unwrap();
    }

    #[test]
    fn contract_merges_parallel_edges() {
        // Square 0-1-2-3-0 contracted into two pairs across the square:
        // two parallel edges must merge with weight 2.
        let g = Graph::unweighted(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let c = g.contract(&[0, 1, 1, 0], 2);
        assert_eq!(c.nedges(), 1);
        let (_, w) = c.neighbors_weighted(0).next().unwrap();
        assert_eq!(w, 2.0);
    }

    #[test]
    fn components_of_disjoint_graphs() {
        let g = Graph::unweighted(5, &[(0, 1), (2, 3)]);
        let (comp, n) = g.connected_components();
        assert_eq!(n, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[0]);
    }

    columbia_rt::props! {
        /// from_edges always produces a structurally valid graph.
        fn prop_from_edges_valid(
            n in 1usize..30,
            edges in columbia_rt::props::vec((0u32..30, 0u32..30), 0..80),
        ) {
            let edges: Vec<_> = edges.into_iter()
                .filter(|&(u, v)| (u as usize) < n && (v as usize) < n)
                .collect();
            let ew = vec![1.0; edges.len()];
            let g = Graph::from_edges(n, &edges, vec![1.0; n], &ew);
            assert!(g.validate().is_ok());
        }

        /// Contraction conserves total vertex weight.
        fn prop_contract_conserves_weight(nx in 1usize..6, ny in 1usize..6, k in 1usize..5) {
            let g = grid_graph(nx, ny, 1);
            let cmap: Vec<u32> = (0..g.nvertices()).map(|v| (v % k) as u32).collect();
            let c = g.contract(&cmap, k);
            assert!((c.total_vwgt() - g.total_vwgt()).abs() < 1e-9);
            assert!(c.validate().is_ok());
        }
    }
}
