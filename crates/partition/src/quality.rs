//! Partition quality metrics: edge cut, imbalance, ghost counts, and the
//! communication-graph statistics the machine model consumes.

use crate::graph::Graph;

/// Quality measures of a k-way partition.
#[derive(Clone, Debug)]
pub struct PartitionQuality {
    /// Total weight of cut edges.
    pub edge_cut: f64,
    /// max part weight / mean part weight.
    pub imbalance: f64,
    /// Number of parts containing at least one vertex.
    pub nonempty_parts: usize,
    /// Per-part vertex weight.
    pub part_weights: Vec<f64>,
    /// Per-part number of ghost vertices (off-part neighbours it must mirror).
    pub ghosts_per_part: Vec<usize>,
    /// Per-part number of neighbouring parts (degree of the communication
    /// graph; the paper reports max degree 18 for the 72M-point fine grid).
    pub comm_degree: Vec<usize>,
}

impl PartitionQuality {
    /// Measure the quality of `part` (values in `0..k`) on `g`.
    pub fn measure(g: &Graph, part: &[u32], k: usize) -> Self {
        assert_eq!(part.len(), g.nvertices());
        let mut part_weights = vec![0.0f64; k];
        for (v, &p) in part.iter().enumerate() {
            part_weights[p as usize] += g.vwgt[v];
        }
        let mut edge_cut = 0.0;
        // ghosts[p] = set of off-part vertices adjacent to p; we count
        // distinct vertices using a stamp array.
        let mut ghost_stamp = vec![u32::MAX; g.nvertices()];
        let mut ghosts_per_part = vec![0usize; k];
        let mut neigh_stamp = vec![vec![]; k]; // neighbour part lists
        for v in 0..g.nvertices() {
            let pv = part[v];
            for (u, w) in g.neighbors_weighted(v) {
                let pu = part[u as usize];
                if pu != pv {
                    if (u as usize) > v {
                        edge_cut += w;
                    }
                    // u is a ghost of part pv.
                    if ghost_stamp[u as usize] != pv {
                        ghost_stamp[u as usize] = pv;
                        ghosts_per_part[pv as usize] += 1;
                    }
                    let np: &mut Vec<u32> = &mut neigh_stamp[pv as usize];
                    if !np.contains(&pu) {
                        np.push(pu);
                    }
                }
            }
        }
        let nonempty_parts = part_weights.iter().filter(|&&w| w > 0.0).count();
        let mean = g.total_vwgt() / k as f64;
        let imbalance = if mean > 0.0 {
            part_weights.iter().cloned().fold(0.0f64, f64::max) / mean
        } else {
            1.0
        };
        let comm_degree = neigh_stamp.iter().map(|v| v.len()).collect();
        PartitionQuality {
            edge_cut,
            imbalance,
            nonempty_parts,
            part_weights,
            ghosts_per_part,
            comm_degree,
        }
    }

    /// Maximum communication degree over parts.
    pub fn max_comm_degree(&self) -> usize {
        self.comm_degree.iter().copied().max().unwrap_or(0)
    }

    /// Mean ghosts per non-empty part (communication surface).
    pub fn mean_ghosts(&self) -> f64 {
        if self.nonempty_parts == 0 {
            return 0.0;
        }
        self.ghosts_per_part.iter().sum::<usize>() as f64 / self.nonempty_parts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::grid_graph;

    #[test]
    fn half_split_of_line_graph() {
        let g = grid_graph(4, 1, 1);
        let part = vec![0u32, 0, 1, 1];
        let q = PartitionQuality::measure(&g, &part, 2);
        assert_eq!(q.edge_cut, 1.0);
        assert_eq!(q.imbalance, 1.0);
        assert_eq!(q.nonempty_parts, 2);
        assert_eq!(q.ghosts_per_part, vec![1, 1]);
        assert_eq!(q.comm_degree, vec![1, 1]);
    }

    #[test]
    fn empty_parts_counted() {
        let g = grid_graph(4, 1, 1);
        let part = vec![0u32, 0, 0, 0];
        let q = PartitionQuality::measure(&g, &part, 3);
        assert_eq!(q.nonempty_parts, 1);
        assert_eq!(q.edge_cut, 0.0);
        assert!((q.imbalance - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ghost_counted_once_per_part() {
        // Star: center 0 in part 0, leaves in part 1. Center is one ghost
        // for part 1 even though three leaves touch it.
        let g = Graph::unweighted(4, &[(0, 1), (0, 2), (0, 3)]);
        let q = PartitionQuality::measure(&g, &[0, 1, 1, 1], 2);
        assert_eq!(q.ghosts_per_part[1], 1);
        assert_eq!(q.ghosts_per_part[0], 3);
    }

    #[test]
    fn comm_degree_on_strip() {
        // 3 parts in a row: middle part talks to both ends.
        let g = grid_graph(6, 1, 1);
        let part = vec![0u32, 0, 1, 1, 2, 2];
        let q = PartitionQuality::measure(&g, &part, 3);
        assert_eq!(q.comm_degree, vec![1, 2, 1]);
        assert_eq!(q.max_comm_degree(), 2);
    }
}
