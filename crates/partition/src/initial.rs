//! Initial k-way partition by greedy BFS region growing.
//!
//! On the coarsest graph of the multilevel hierarchy (a few hundred
//! vertices), `k` regions are grown breadth-first from spread-out seeds,
//! always extending the currently lightest region through its cheapest
//! boundary vertex. Unreached vertices (disconnected components) are swept
//! into the lightest region at the end.

use crate::graph::Graph;
use std::collections::VecDeque;

/// Greedy region-growing k-way partition. Returns a part id per vertex.
///
/// # Panics
/// If `k == 0`.
pub fn region_growing(g: &Graph, k: usize) -> Vec<u32> {
    assert!(k > 0);
    let n = g.nvertices();
    let mut part = vec![u32::MAX; n];
    if n == 0 {
        return part;
    }
    if k >= n {
        // Trivial: one vertex per part (extra parts stay empty).
        for (v, p) in part.iter_mut().enumerate() {
            *p = v as u32;
        }
        return part;
    }

    // Pick spread-out seeds: repeated BFS from the last seed picks the
    // farthest unassigned vertex (a pseudo-peripheral sweep).
    let mut seeds = Vec::with_capacity(k);
    let mut dist = vec![usize::MAX; n];
    let mut seed = 0usize;
    for _ in 0..k {
        seeds.push(seed);
        // BFS from all seeds so far; next seed = farthest vertex.
        for d in dist.iter_mut() {
            *d = usize::MAX;
        }
        let mut q = VecDeque::new();
        for &s in &seeds {
            dist[s] = 0;
            q.push_back(s);
        }
        let mut far = seed;
        while let Some(v) = q.pop_front() {
            for &u in g.neighbors(v) {
                let u = u as usize;
                if dist[u] == usize::MAX {
                    dist[u] = dist[v] + 1;
                    if dist[u] >= dist[far] || dist[far] == 0 {
                        far = u;
                    }
                    q.push_back(u);
                }
            }
        }
        // Farthest reachable vertex not already a seed; fall back to any
        // unreached vertex (other component).
        if let Some(un) = dist.iter().position(|&d| d == usize::MAX) {
            far = un;
        }
        seed = far;
    }

    // Grow regions: repeatedly extend the lightest region.
    let mut weight = vec![0.0f64; k];
    let mut frontier: Vec<VecDeque<usize>> = vec![VecDeque::new(); k];
    for (p, &s) in seeds.iter().enumerate() {
        part[s] = p as u32;
        weight[p] += g.vwgt[s];
        frontier[p].push_back(s);
    }
    let mut assigned = k;
    while assigned < n {
        // Lightest region with a non-empty frontier.
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&a, &b| weight[a].partial_cmp(&weight[b]).unwrap());
        let mut grew = false;
        'regions: for &p in &order {
            while let Some(v) = frontier[p].pop_front() {
                // Find an unassigned neighbour of v.
                let mut extended = false;
                for &u in g.neighbors(v) {
                    let u = u as usize;
                    if part[u] == u32::MAX {
                        part[u] = p as u32;
                        weight[p] += g.vwgt[u];
                        frontier[p].push_back(u);
                        assigned += 1;
                        extended = true;
                    }
                }
                if extended {
                    frontier[p].push_back(v);
                    grew = true;
                    break 'regions;
                }
            }
        }
        if !grew {
            // Remaining vertices are unreachable from any region (separate
            // components): sweep them into the lightest region via their own
            // BFS.
            let lightest = order[0];
            if let Some(v0) = part.iter().position(|&p| p == u32::MAX) {
                part[v0] = lightest as u32;
                weight[lightest] += g.vwgt[v0];
                frontier[lightest].push_back(v0);
                assigned += 1;
            }
        }
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::grid_graph;
    use crate::quality::PartitionQuality;

    #[test]
    fn all_vertices_assigned() {
        let g = grid_graph(8, 8, 1);
        let part = region_growing(&g, 4);
        assert!(part.iter().all(|&p| (p as usize) < 4));
    }

    #[test]
    fn balance_is_reasonable_on_grid() {
        let g = grid_graph(16, 16, 1);
        let part = region_growing(&g, 4);
        let q = PartitionQuality::measure(&g, &part, 4);
        assert!(q.imbalance < 1.25, "imbalance {}", q.imbalance);
    }

    #[test]
    fn disconnected_components_are_covered() {
        // Two disjoint paths.
        let g = Graph::unweighted(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let part = region_growing(&g, 2);
        assert!(part.iter().all(|&p| p < 2));
    }

    #[test]
    fn k_equal_n_gives_singletons() {
        let g = grid_graph(3, 1, 1);
        let part = region_growing(&g, 3);
        let mut s = part.clone();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2]);
    }

    #[test]
    fn k_greater_than_n_leaves_some_parts_empty() {
        let g = grid_graph(2, 1, 1);
        let part = region_growing(&g, 5);
        assert!(part.iter().all(|&p| p < 5));
    }
}
