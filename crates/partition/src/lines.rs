//! Implicit-line contraction for partitioning.
//!
//! The line-implicit smoother solves block-tridiagonal systems along mesh
//! lines; a line split across two partitions would serialise the solve
//! across an interconnect. NSU3D therefore contracts each line to a single
//! vertex (with summed vertex weight and merged edges) before calling the
//! partitioner, guaranteeing no line is ever broken (paper Figure 6(b)).

use crate::graph::Graph;

/// Result of contracting implicit lines.
#[derive(Clone, Debug)]
pub struct LineContraction {
    /// The contracted graph (one vertex per line; singleton "lines" for
    /// vertices outside any line).
    pub contracted: Graph,
    /// Fine-vertex → contracted-vertex map.
    pub cmap: Vec<u32>,
}

/// Contract `g` along `lines`: each inner `Vec<u32>` lists the fine vertices
/// of one line (length >= 1). Every fine vertex must appear in exactly one
/// line (singleton lines for point-implicit vertices).
///
/// # Panics
/// If the lines do not exactly cover the vertex set.
pub fn contract_lines(g: &Graph, lines: &[Vec<u32>]) -> LineContraction {
    let n = g.nvertices();
    let mut cmap = vec![u32::MAX; n];
    for (li, line) in lines.iter().enumerate() {
        assert!(!line.is_empty(), "empty line {li}");
        for &v in line {
            assert!(
                cmap[v as usize] == u32::MAX,
                "vertex {v} appears in more than one line"
            );
            cmap[v as usize] = li as u32;
        }
    }
    assert!(
        cmap.iter().all(|&c| c != u32::MAX),
        "lines must cover every vertex"
    );
    let contracted = g.contract(&cmap, lines.len());
    LineContraction { contracted, cmap }
}

/// Expand a partition of the contracted graph back to the fine vertices.
pub fn expand_line_partition(cmap: &[u32], line_part: &[u32]) -> Vec<u32> {
    cmap.iter().map(|&c| line_part[c as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::grid_graph;
    use crate::kway::{partition_graph, PartitionConfig};

    /// Build the k-direction lines of a structured grid: one line per (x, y)
    /// column.
    fn column_lines(nx: usize, ny: usize, nz: usize) -> Vec<Vec<u32>> {
        let id = |x: usize, y: usize, z: usize| (x + nx * (y + ny * z)) as u32;
        let mut lines = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                lines.push((0..nz).map(|z| id(x, y, z)).collect());
            }
        }
        lines
    }

    #[test]
    fn contraction_preserves_total_weight() {
        let g = grid_graph(4, 4, 8);
        let lines = column_lines(4, 4, 8);
        let lc = contract_lines(&g, &lines);
        assert_eq!(lc.contracted.nvertices(), 16);
        assert_eq!(lc.contracted.total_vwgt(), g.total_vwgt());
        // Each contracted vertex carries the 8 points of its line.
        assert!(lc.contracted.vwgt.iter().all(|&w| w == 8.0));
    }

    #[test]
    fn no_line_is_ever_broken() {
        let g = grid_graph(6, 6, 10);
        let lines = column_lines(6, 6, 10);
        let lc = contract_lines(&g, &lines);
        let line_part = partition_graph(&lc.contracted, 4, &PartitionConfig::default());
        let part = expand_line_partition(&lc.cmap, &line_part);
        for line in &lines {
            let p0 = part[line[0] as usize];
            assert!(
                line.iter().all(|&v| part[v as usize] == p0),
                "line split across partitions"
            );
        }
    }

    #[test]
    fn singleton_lines_reduce_to_identity() {
        let g = grid_graph(5, 1, 1);
        let lines: Vec<Vec<u32>> = (0..5u32).map(|v| vec![v]).collect();
        let lc = contract_lines(&g, &lines);
        assert_eq!(lc.contracted.nvertices(), 5);
        assert_eq!(lc.contracted.nedges(), g.nedges());
    }

    #[test]
    #[should_panic(expected = "cover every vertex")]
    fn incomplete_cover_panics() {
        let g = grid_graph(3, 1, 1);
        contract_lines(&g, &[vec![0, 1]]);
    }

    #[test]
    #[should_panic(expected = "more than one line")]
    fn overlapping_lines_panic() {
        let g = grid_graph(3, 1, 1);
        contract_lines(&g, &[vec![0, 1], vec![1, 2]]);
    }
}
