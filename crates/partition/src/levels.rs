//! Greedy inter-level partition matching.
//!
//! Each multigrid level is partitioned independently for intra-level balance.
//! To keep restriction/prolongation traffic local, coarse partitions are then
//! *relabelled* so that coarse partition `p` overlaps fine partition `p` as
//! much as possible — the "non-optimal greedy-type algorithm" of the paper.

/// Relabel `coarse_part` (ids in `0..k`) to maximise overlap with
/// `fine_part`, where `fine_to_coarse[v]` maps each fine vertex to its coarse
/// agglomerate. Overlap between fine part `f` and coarse part `c` counts the
/// fine vertices in `f` whose agglomerate lies in `c`, weighted by `weights`
/// (pass all-ones for vertex counts).
///
/// Returns the permuted coarse partition vector and the fraction of total
/// weight that ends up "aligned" (same label fine and coarse).
pub fn match_levels(
    fine_part: &[u32],
    fine_to_coarse: &[u32],
    coarse_part: &[u32],
    k: usize,
    weights: &[f64],
) -> (Vec<u32>, f64) {
    assert_eq!(fine_part.len(), fine_to_coarse.len());
    assert_eq!(fine_part.len(), weights.len());
    // Overlap matrix O[f][c].
    let mut overlap = vec![vec![0.0f64; k]; k];
    let mut total = 0.0;
    for ((&f, &agg), &w) in fine_part
        .iter()
        .zip(fine_to_coarse.iter())
        .zip(weights.iter())
    {
        let c = coarse_part[agg as usize] as usize;
        overlap[f as usize][c] += w;
        total += w;
    }
    // Greedy assignment: repeatedly take the largest remaining overlap pair.
    let mut pairs: Vec<(f64, usize, usize)> = Vec::with_capacity(k * k);
    for (f, row) in overlap.iter().enumerate() {
        for (c, &w) in row.iter().enumerate() {
            if w > 0.0 {
                pairs.push((w, f, c));
            }
        }
    }
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let mut fine_used = vec![false; k];
    let mut coarse_used = vec![false; k];
    // relabel[c] = new label of coarse part c.
    let mut relabel = vec![u32::MAX; k];
    let mut aligned = 0.0;
    for (w, f, c) in pairs {
        if !fine_used[f] && !coarse_used[c] {
            fine_used[f] = true;
            coarse_used[c] = true;
            relabel[c] = f as u32;
            aligned += w;
        }
    }
    // Unmatched coarse parts take any free fine label.
    let mut free: Vec<u32> = (0..k as u32).filter(|&f| !fine_used[f as usize]).collect();
    for r in relabel.iter_mut() {
        if *r == u32::MAX {
            *r = free.pop().expect("label accounting broken");
        }
    }
    let new_coarse: Vec<u32> = coarse_part.iter().map(|&c| relabel[c as usize]).collect();
    let frac = if total > 0.0 { aligned / total } else { 1.0 };
    (new_coarse, frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_nested_levels_align_fully() {
        // 4 fine vertices, 2 coarse agglomerates, nested partitions but with
        // permuted coarse labels.
        let fine_part = vec![0u32, 0, 1, 1];
        let fine_to_coarse = vec![0u32, 0, 1, 1];
        let coarse_part = vec![1u32, 0]; // swapped labels
        let w = vec![1.0; 4];
        let (relabeled, frac) = match_levels(&fine_part, &fine_to_coarse, &coarse_part, 2, &w);
        assert_eq!(relabeled, vec![0, 1]);
        assert_eq!(frac, 1.0);
    }

    #[test]
    fn partial_overlap_prefers_heavier_pairing() {
        // Agglomerate 0 has 3 fine vertices in part 0, 1 in part 1.
        let fine_part = vec![0u32, 0, 0, 1];
        let fine_to_coarse = vec![0u32, 0, 0, 0];
        let coarse_part = vec![1u32]; // only one coarse part, labelled 1
        let w = vec![1.0; 4];
        let (relabeled, frac) = match_levels(&fine_part, &fine_to_coarse, &coarse_part, 2, &w);
        assert_eq!(relabeled, vec![0]); // relabelled to the dominant fine part
        assert!((frac - 0.75).abs() < 1e-12);
    }

    #[test]
    fn all_labels_remain_valid_permutation() {
        let fine_part = vec![0u32, 1, 2, 3, 0, 1, 2, 3];
        let fine_to_coarse = vec![0u32, 1, 2, 3, 0, 1, 2, 3];
        let coarse_part = vec![3u32, 2, 1, 0];
        let w = vec![1.0; 8];
        let (relabeled, _) = match_levels(&fine_part, &fine_to_coarse, &coarse_part, 4, &w);
        let mut seen: Vec<u32> = relabeled.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4, "relabelling must stay a permutation");
    }

    #[test]
    fn weights_drive_matching() {
        // Two fine vertices; the heavy one dominates alignment.
        let fine_part = vec![0u32, 1];
        let fine_to_coarse = vec![0u32, 0];
        let coarse_part = vec![0u32];
        let w = vec![1.0, 10.0];
        let (relabeled, frac) = match_levels(&fine_part, &fine_to_coarse, &coarse_part, 2, &w);
        assert_eq!(relabeled, vec![1]);
        assert!((frac - 10.0 / 11.0).abs() < 1e-12);
    }
}
