//! Multilevel k-way graph partitioning — a from-scratch METIS substitute.
//!
//! NSU3D feeds the adjacency graph of every multigrid level to METIS
//! (Karypis & Kumar's multilevel scheme, paper reference \[10\]) and demands
//! two extra features reproduced here:
//!
//! * **implicit-line contraction** ([`lines`]) — the mesh's implicit solver
//!   lines are collapsed to single weighted vertices before partitioning so
//!   that no line is ever broken across a partition boundary;
//! * **inter-level matching** ([`levels`]) — coarse- and fine-level
//!   partitions are produced independently and then matched greedily by
//!   overlap, trading inter-level transfer locality for intra-level balance
//!   (the paper found intra-level optimality dominates).
//!
//! The partitioner itself is the classical multilevel scheme: heavy-edge
//! matching coarsens the graph ([`coarsen`]), a BFS region-growing heuristic
//! partitions the coarsest graph ([`initial`]), and boundary
//! Fiduccia-Mattheyses passes refine the projection back up ([`refine`]).

pub mod coarsen;
pub mod graph;
pub mod initial;
pub mod kway;
pub mod levels;
pub mod lines;
pub mod quality;
pub mod refine;

pub use graph::Graph;
pub use kway::{partition_graph, PartitionConfig};
pub use levels::match_levels;
pub use lines::{contract_lines, expand_line_partition};
pub use quality::PartitionQuality;
