//! Graph coarsening by heavy-edge matching (HEM).
//!
//! Vertices are visited in random order; each unmatched vertex is matched
//! with its unmatched neighbour of heaviest connecting edge. Matched pairs
//! collapse into one coarse vertex. This is the coarsening phase of the
//! Karypis-Kumar multilevel scheme.

use crate::graph::Graph;
use columbia_rt::Pcg32;

/// One coarsening step.
#[derive(Debug)]
pub struct CoarseningStep {
    /// The coarse graph.
    pub coarse: Graph,
    /// Fine-vertex → coarse-vertex map.
    pub cmap: Vec<u32>,
}

/// Perform one heavy-edge-matching coarsening pass.
///
/// `seed` makes the visit order deterministic for reproducibility.
pub fn heavy_edge_matching(g: &Graph, seed: u64) -> CoarseningStep {
    let n = g.nvertices();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = Pcg32::seed_from_u64(seed);
    rng.shuffle(&mut order);

    let mut matched = vec![u32::MAX; n];
    let mut ncoarse = 0u32;
    for &v in &order {
        let v = v as usize;
        if matched[v] != u32::MAX {
            continue;
        }
        // Heaviest unmatched neighbour.
        let mut best: Option<(u32, f64)> = None;
        for (u, w) in g.neighbors_weighted(v) {
            if matched[u as usize] == u32::MAX {
                match best {
                    Some((_, bw)) if bw >= w => {}
                    _ => best = Some((u, w)),
                }
            }
        }
        match best {
            Some((u, _)) => {
                matched[v] = ncoarse;
                matched[u as usize] = ncoarse;
            }
            None => {
                matched[v] = ncoarse;
            }
        }
        ncoarse += 1;
    }
    let coarse = g.contract(&matched, ncoarse as usize);
    CoarseningStep {
        coarse,
        cmap: matched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::grid_graph;

    #[test]
    fn matching_halves_path_graph() {
        let g = grid_graph(8, 1, 1);
        let step = heavy_edge_matching(&g, 1);
        // A perfect matching on a path of 8 gives 4 coarse vertices; an
        // imperfect one gives at most 8.
        assert!(step.coarse.nvertices() >= 4 && step.coarse.nvertices() < 8);
        assert_eq!(step.coarse.total_vwgt(), g.total_vwgt());
        step.coarse.validate().unwrap();
    }

    #[test]
    fn isolated_vertices_survive() {
        let g = Graph::unweighted(3, &[]);
        let step = heavy_edge_matching(&g, 0);
        assert_eq!(step.coarse.nvertices(), 3);
    }

    #[test]
    fn repeated_coarsening_terminates() {
        let mut g = grid_graph(10, 10, 1);
        let mut levels = 0;
        while g.nvertices() > 4 && levels < 20 {
            let step = heavy_edge_matching(&g, levels as u64);
            assert!(step.coarse.nvertices() < g.nvertices() || g.nedges() == 0);
            g = step.coarse;
            levels += 1;
        }
        assert!(levels < 20, "coarsening failed to reduce graph");
    }

    #[test]
    fn cmap_is_surjective_onto_coarse_ids() {
        let g = grid_graph(5, 5, 1);
        let step = heavy_edge_matching(&g, 7);
        let nc = step.coarse.nvertices();
        let mut hit = vec![false; nc];
        for &c in &step.cmap {
            hit[c as usize] = true;
        }
        assert!(hit.iter().all(|&h| h));
    }
}
