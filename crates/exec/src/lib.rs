//! `columbia-exec`: the unified execution context.
//!
//! The paper's central methodology is running the *same* solvers under many
//! execution regimes — MPI vs OpenMP vs hybrid layouts, NUMAlink vs
//! InfiniBand fabrics, 1–2016 CPUs — and comparing what the regime does to
//! an unchanged numerical kernel. The reproduction's equivalent knobs are
//! deterministic fault injection, deterministic tracing and the halo
//! buffer-pool policy; [`ExecContext`] makes them *parameters* of one
//! driver per workload instead of per-regime driver forks.
//!
//! Every parallel driver (`columbia_comm::run_world`, `mg::fas_cycle` /
//! `mg::solve_to_tolerance`, `rans::parallel`, `rans::parallel_mg`,
//! `euler::parallel`, `core::database` fills) takes `&mut ExecContext` and
//! honors whichever capabilities are switched on:
//!
//! * **faults** — an optional seeded [`FaultPlan`] the comm runtime
//!   consults per message/barrier occurrence. `None` (the default) is the
//!   perfect interconnect, byte-for-byte.
//! * **trace** — a [`Tracer`] sink for spans/counters/gauges. The default
//!   [`Tracer::disabled`] is a no-op clock whose `begin`/`add`/`gauge`
//!   calls return immediately without allocating, so the untraced hot path
//!   costs a branch per instrumentation point.
//! * **pool** — the [`PoolPolicy`] for halo payload buffers. Enabled by
//!   default (the zero-allocation steady state); disabling it makes every
//!   checkout a fresh allocation, for A/B measurements against the seed
//!   allocation behaviour.
//! * **fill** — the [`FillPolicy`] retry/quarantine budget database fills
//!   apply per case, including an optional chaos [`CasePlan`].
//!
//! The determinism contract is unchanged by any combination of
//! capabilities: results, `CommStats` counters and rendered trace JSON are
//! pure functions of (inputs, seeds, nranks) — never of thread timing.

use columbia_rt::fault::{CasePlan, FaultPlan};
use columbia_rt::trace::{Trace, Tracer};
use std::sync::Arc;

pub use columbia_rt::env::{ExecutorKind, FabricKind, FallbackKind};

/// Which `run_world` backend hosts the rank bodies.
///
/// * [`Executor::Threads`] — one OS thread per rank, kernel-scheduled.
///   The right choice for small worlds on a multi-core box (ranks really
///   run in parallel).
/// * [`Executor::Events`] — every rank is a cooperative task; a single
///   deterministic `(time, rank, seq)` event queue decides who runs, and
///   ranks yield at every blocking point (recv, barrier, allreduce)
///   instead of parking in the kernel. One machine hosts paper-scale
///   worlds (512/1024/2016 ranks) this way, bit-identical to the thread
///   backend.
/// * [`Executor::Auto`] (the default) — consult the typed
///   `COLUMBIA_EXECUTOR` env knob (`threads` | `events`), falling back to
///   `Threads` when unset. This is what lets CI run the whole tier-1
///   suite under the event backend without touching a single test.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Executor {
    /// Resolve from `COLUMBIA_EXECUTOR`, default [`Executor::Threads`].
    #[default]
    Auto,
    /// Rank-per-OS-thread backend.
    Threads,
    /// Cooperative discrete-event backend.
    Events,
}

impl Executor {
    /// The concrete backend this selection denotes, consulting the
    /// environment only for [`Executor::Auto`].
    pub fn resolve(self) -> ExecutorKind {
        match self {
            Executor::Threads => ExecutorKind::Threads,
            Executor::Events => ExecutorKind::Events,
            Executor::Auto => columbia_rt::env::executor().unwrap_or(ExecutorKind::Threads),
        }
    }
}

/// Which interconnect delivery model shapes the event executor's virtual
/// time.
///
/// * [`FabricModel::Analytic`] — the seed behaviour: message wakeups cost
///   one virtual tick, delivery cost lives only in the closed-form curves
///   of `columbia_machine::interconnect`. The reference oracle.
/// * [`FabricModel::Contention`] — the event backend routes every
///   cross-rank message through the discrete-event link/arbiter model
///   (`columbia_machine::contention`), so wakeup delays carry emergent
///   queueing. Payload bits, `CommStats` and traces are unchanged — the
///   comm protocol is interleaving-invariant — only the virtual-time
///   schedule moves. The thread backend has no virtual clock and ignores
///   the selection.
/// * [`FabricModel::Auto`] (the default) — consult the typed
///   `COLUMBIA_FABRIC` env knob (`analytic` | `contention`), falling back
///   to `Analytic` when unset.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FabricModel {
    /// Resolve from `COLUMBIA_FABRIC`, default [`FabricModel::Analytic`].
    #[default]
    Auto,
    /// Closed-form delivery cost (seed behaviour, reference oracle).
    Analytic,
    /// Discrete-event contention model on the event executor.
    Contention,
}

impl FabricModel {
    /// The concrete model this selection denotes, consulting the
    /// environment only for [`FabricModel::Auto`].
    pub fn resolve(self) -> FabricKind {
        match self {
            FabricModel::Analytic => FabricKind::Analytic,
            FabricModel::Contention => FabricKind::Contention,
            FabricModel::Auto => columbia_rt::env::fabric().unwrap_or(FabricKind::Analytic),
        }
    }
}

/// Halo buffer-pool policy of the comm runtime.
///
/// With `enabled` (the default), payloads checked out via `Rank::buffer`
/// recycle through per-`(peer, capacity)` buckets and the steady state
/// performs no payload allocations. Disabled, every checkout allocates
/// fresh (counted as a pool miss) and `Rank::recycle` drops its buffer —
/// the seed allocation behaviour, kept reachable for A/B benchmarks.
/// Payload bytes are bit-identical either way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolPolicy {
    /// Recycle payload buffers through the per-peer pool.
    pub enabled: bool,
}

impl Default for PoolPolicy {
    fn default() -> Self {
        PoolPolicy { enabled: true }
    }
}

impl PoolPolicy {
    /// Every checkout allocates; every recycle drops.
    pub fn disabled() -> Self {
        PoolPolicy { enabled: false }
    }
}

/// Per-case retry/quarantine policy of a database fill.
#[derive(Clone, Debug)]
pub struct FillPolicy {
    /// Maximum solver attempts per case (at least 1).
    pub max_attempts: u32,
    /// Optional deterministic chaos schedule: injected case failures for
    /// hardening tests (poisoned cases, seeded transient faults).
    pub chaos: Option<CasePlan>,
}

impl Default for FillPolicy {
    fn default() -> Self {
        FillPolicy {
            max_attempts: 3,
            chaos: None,
        }
    }
}

/// Degraded-answer policy of a database server facing quarantine holes.
///
/// * [`Fallback::Strict`] — a query whose interpolation stencil touches a
///   quarantined node is a typed error (`LookupError::QuarantinedRegion`).
///   The safe default: no answer is better than a placeholder-blended one.
/// * [`Fallback::Nearest`] — answer from the nearest valid grid node, with
///   the response explicitly flagged degraded. Opt-in, for consumers (e.g.
///   a virtual-flight sweep) that prefer a marked approximation over a
///   hole while the refinement queue re-runs the case.
/// * [`Fallback::Auto`] (the default) — consult the typed
///   `COLUMBIA_DB_FALLBACK` env knob (`strict` | `nearest`), falling back
///   to `Strict` when unset.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Fallback {
    /// Resolve from `COLUMBIA_DB_FALLBACK`, default [`Fallback::Strict`].
    #[default]
    Auto,
    /// Hole-touching queries are typed errors.
    Strict,
    /// Answer from the nearest valid node, flagged degraded.
    Nearest,
}

impl Fallback {
    /// The concrete policy this selection denotes, consulting the
    /// environment only for [`Fallback::Auto`].
    pub fn resolve(self) -> FallbackKind {
        match self {
            Fallback::Strict => FallbackKind::Strict,
            Fallback::Nearest => FallbackKind::Nearest,
            Fallback::Auto => columbia_rt::env::db_fallback().unwrap_or(FallbackKind::Strict),
        }
    }
}

/// Query-serving policy of a `DatabaseServer`: hot-region cache capacity,
/// degraded-answer policy, and the refinement budget per pump. `None`
/// capacities defer to the `COLUMBIA_DB_*` env knobs, then to the
/// defaults, so one binary serves laptop and CI configurations without
/// recompiling.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServePolicy {
    /// Hot-region cache capacity in cells; `None` → `COLUMBIA_DB_CACHE`,
    /// default [`ServePolicy::DEFAULT_CACHE`].
    pub cache_capacity: Option<usize>,
    /// Degraded-answer policy for quarantine holes.
    pub fallback: Fallback,
    /// Refinement re-runs per `refine_with` pump; `None` →
    /// `COLUMBIA_DB_REFINE`, default [`ServePolicy::DEFAULT_REFINE`].
    pub refine_budget: Option<usize>,
}

impl ServePolicy {
    /// Default hot-region cache capacity (cells).
    pub const DEFAULT_CACHE: usize = 512;
    /// Default refinement re-runs per pump.
    pub const DEFAULT_REFINE: usize = 4;

    /// The concrete cache capacity (at least 1), consulting
    /// `COLUMBIA_DB_CACHE` only when unset here.
    pub fn resolve_cache_capacity(&self) -> usize {
        self.cache_capacity
            .or_else(columbia_rt::env::db_cache)
            .unwrap_or(Self::DEFAULT_CACHE)
            .max(1)
    }

    /// The concrete per-pump refinement budget, consulting
    /// `COLUMBIA_DB_REFINE` only when unset here.
    pub fn resolve_refine_budget(&self) -> usize {
        self.refine_budget
            .or_else(columbia_rt::env::db_refine)
            .unwrap_or(Self::DEFAULT_REFINE)
    }
}

/// The execution regime of one driver run: optional fault plan, optional
/// trace sink, buffer-pool and database-fill policies.
///
/// `ExecContext::default()` is the clean regime — no faults, tracing off,
/// pool on, default retry budget — and costs nothing over a hard-coded
/// clean driver. Capabilities are switched on with the builder methods:
///
/// ```
/// use columbia_exec::ExecContext;
/// use columbia_rt::fault::FaultPlan;
/// use columbia_rt::trace::Tracer;
/// use std::sync::Arc;
///
/// let mut ctx = ExecContext::default()
///     .with_faults(Some(Arc::new(FaultPlan::fault_free(4))))
///     .with_tracer(Tracer::logical());
/// assert!(ctx.tracer().is_enabled());
/// let trace = ctx.finish_trace();
/// assert!(trace.spans.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct ExecContext {
    faults: Option<Arc<FaultPlan>>,
    pool: PoolPolicy,
    fill: FillPolicy,
    serve: ServePolicy,
    tracer: Tracer,
    executor: Executor,
    fabric: FabricModel,
}

impl ExecContext {
    /// The clean regime: no faults, tracing disabled, pool on, default
    /// fill policy. Identical to `ExecContext::default()`.
    pub fn new() -> Self {
        ExecContext::default()
    }

    /// Clean context under a deterministic fault plan — the most common
    /// non-default regime.
    pub fn faulty(plan: Arc<FaultPlan>) -> Self {
        ExecContext::default().with_faults(Some(plan))
    }

    /// Clean context recording into a logical-clock tracer (deterministic,
    /// byte-stable trace JSON).
    pub fn traced() -> Self {
        ExecContext::default().with_tracer(Tracer::logical())
    }

    /// Set (or clear) the fault plan.
    pub fn with_faults(mut self, plan: Option<Arc<FaultPlan>>) -> Self {
        self.faults = plan;
        self
    }

    /// Set the trace sink.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Set the buffer-pool policy.
    pub fn with_pool(mut self, pool: PoolPolicy) -> Self {
        self.pool = pool;
        self
    }

    /// Set the database-fill retry/quarantine policy.
    pub fn with_fill(mut self, fill: FillPolicy) -> Self {
        self.fill = fill;
        self
    }

    /// Set the database-server query-serving policy.
    pub fn with_serve(mut self, serve: ServePolicy) -> Self {
        self.serve = serve;
        self
    }

    /// Select the `run_world` backend (thread-per-rank vs cooperative
    /// event executor). The default, [`Executor::Auto`], defers to the
    /// `COLUMBIA_EXECUTOR` env knob.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Select the interconnect delivery model for the event executor's
    /// virtual time. The default, [`FabricModel::Auto`], defers to the
    /// `COLUMBIA_FABRIC` env knob.
    pub fn with_fabric_model(mut self, fabric: FabricModel) -> Self {
        self.fabric = fabric;
        self
    }

    /// The fault plan, if any.
    pub fn faults(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Clone the fault-plan handle for a rank launch.
    pub fn clone_faults(&self) -> Option<Arc<FaultPlan>> {
        self.faults.clone()
    }

    /// The buffer-pool policy.
    pub fn pool(&self) -> PoolPolicy {
        self.pool
    }

    /// The database-fill policy.
    pub fn fill(&self) -> &FillPolicy {
        &self.fill
    }

    /// The database-server query-serving policy.
    pub fn serve(&self) -> &ServePolicy {
        &self.serve
    }

    /// The selected `run_world` backend (unresolved; call
    /// [`Executor::resolve`] for the concrete kind).
    pub fn executor(&self) -> Executor {
        self.executor
    }

    /// The selected interconnect delivery model (unresolved; call
    /// [`FabricModel::resolve`] for the concrete kind).
    pub fn fabric_model(&self) -> FabricModel {
        self.fabric
    }

    /// The trace sink. Disabled by default; every `Tracer` entry point is
    /// a no-op then, so drivers record unconditionally.
    pub fn tracer(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// True when the context records spans (drivers never need to check —
    /// recording into a disabled tracer is free — but reporters do).
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// Take the accumulated trace, leaving the context with tracing
    /// disabled. A never-enabled context yields an empty trace.
    pub fn finish_trace(&mut self) -> Trace {
        std::mem::replace(&mut self.tracer, Tracer::disabled()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columbia_rt::trace::SpanKey;

    #[test]
    fn default_context_is_clean() {
        let mut ctx = ExecContext::new();
        assert!(ctx.faults().is_none());
        assert!(ctx.pool().enabled);
        assert_eq!(ctx.fill().max_attempts, 3);
        assert!(ctx.fill().chaos.is_none());
        assert_eq!(ctx.serve(), &ServePolicy::default());
        assert!(!ctx.tracing_enabled());
        // Recording into the disabled sink is a no-op, not an error.
        ctx.tracer().scoped(SpanKey::new("x"), |t| t.add("n", 1));
        assert!(ctx.finish_trace().spans.is_empty());
    }

    #[test]
    fn builders_compose() {
        let plan = Arc::new(FaultPlan::fault_free(3));
        let mut ctx = ExecContext::faulty(plan.clone())
            .with_pool(PoolPolicy::disabled())
            .with_fill(FillPolicy {
                max_attempts: 5,
                chaos: None,
            })
            .with_tracer(Tracer::logical());
        assert_eq!(ctx.faults().unwrap().nranks(), 3);
        assert!(!ctx.pool().enabled);
        assert_eq!(ctx.fill().max_attempts, 5);
        assert!(ctx.tracing_enabled());
        ctx.tracer()
            .scoped(SpanKey::new("solve"), |t| t.add("cycles", 2));
        let trace = ctx.finish_trace();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.counter_total("cycles"), 2);
        // finish_trace leaves the context reusable, tracing off.
        assert!(!ctx.tracing_enabled());
    }

    #[test]
    fn executor_selection_resolves_explicitly_without_the_environment() {
        // Explicit selections never touch the environment.
        assert_eq!(Executor::Threads.resolve(), ExecutorKind::Threads);
        assert_eq!(Executor::Events.resolve(), ExecutorKind::Events);
        let ctx = ExecContext::default();
        assert_eq!(ctx.executor(), Executor::Auto);
        let ctx = ctx.with_executor(Executor::Events);
        assert_eq!(ctx.executor(), Executor::Events);
        // Auto is resolved from COLUMBIA_EXECUTOR at run_world time; its
        // grammar is pinned in columbia_rt::env (no env mutation here —
        // tests must not race over process state).
    }

    #[test]
    fn fabric_selection_resolves_explicitly_without_the_environment() {
        assert_eq!(FabricModel::Analytic.resolve(), FabricKind::Analytic);
        assert_eq!(FabricModel::Contention.resolve(), FabricKind::Contention);
        let ctx = ExecContext::default();
        assert_eq!(ctx.fabric_model(), FabricModel::Auto);
        let ctx = ctx.with_fabric_model(FabricModel::Contention);
        assert_eq!(ctx.fabric_model(), FabricModel::Contention);
        // Auto defers to COLUMBIA_FABRIC, whose grammar is pinned in
        // columbia_rt::env (again no env mutation here).
    }

    #[test]
    fn serve_policy_resolves_explicit_values_without_the_environment() {
        // Explicit selections never touch the environment.
        assert_eq!(Fallback::Strict.resolve(), FallbackKind::Strict);
        assert_eq!(Fallback::Nearest.resolve(), FallbackKind::Nearest);
        let policy = ServePolicy {
            cache_capacity: Some(64),
            fallback: Fallback::Nearest,
            refine_budget: Some(2),
        };
        assert_eq!(policy.resolve_cache_capacity(), 64);
        assert_eq!(policy.resolve_refine_budget(), 2);
        // A zero capacity is clamped: an LRU of zero cells cannot serve.
        let zero = ServePolicy {
            cache_capacity: Some(0),
            ..ServePolicy::default()
        };
        assert_eq!(zero.resolve_cache_capacity(), 1);
        let mut ctx = ExecContext::default().with_serve(policy.clone());
        assert_eq!(ctx.serve(), &policy);
        // Auto defers to COLUMBIA_DB_FALLBACK / COLUMBIA_DB_CACHE /
        // COLUMBIA_DB_REFINE, whose grammar is pinned in columbia_rt::env
        // (no env mutation here — tests must not race over process state).
        let _ = ctx.tracer();
    }

    #[test]
    fn finish_trace_is_byte_stable() {
        let run = || {
            let mut ctx = ExecContext::traced();
            ctx.tracer().scoped(SpanKey::new("a").rank(1), |t| {
                t.add("sends", 3);
                t.gauge("rms", 0.5);
            });
            ctx.finish_trace().to_json().render()
        };
        assert_eq!(run(), run());
    }
}
