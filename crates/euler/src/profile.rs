//! Measured Cart3D workload profiles for the Columbia machine model.
//!
//! Mirrors `columbia_rans::profile` for the cell-centred solver: FLOPs per
//! cell per visit from instrumented cycles, SFC-partition surface laws
//! measured from real decompositions, and inter-grid locality from the
//! natural (same-curve) overlap of independently partitioned levels.

use crate::solver::EulerSolver;
use crate::state::NVARS5;
use columbia_cartesian::{partition_cells, CartMesh};
use columbia_machine::{CycleProfile, IntergridProfile, LevelProfile};
use columbia_mg::{CycleParams, CycleType};

/// Measured SFC-partition surface law (ghost cells per partition vs cells
/// per partition).
#[derive(Clone, Copy, Debug)]
pub struct SfcSurfaceLaw {
    /// Prefactor.
    pub coeff: f64,
    /// Exponent.
    pub exponent: f64,
    /// Largest partition-graph degree observed.
    pub max_degree: f64,
}

/// Ghosts per partition for an SFC decomposition of `mesh` into `p` parts.
pub fn measure_ghosts(mesh: &CartMesh, p: usize) -> (f64, usize) {
    let cp = partition_cells(mesh, p);
    let owner: Vec<usize> = (0..mesh.ncells()).map(|c| cp.owner(c)).collect();
    // Distinct off-part neighbour cells per part, and peer sets.
    let mut ghost_stamp = vec![usize::MAX; mesh.ncells()];
    let mut ghosts = vec![0usize; p];
    let mut peers: Vec<Vec<usize>> = vec![Vec::new(); p];
    for f in &mesh.faces {
        if f.is_boundary() {
            continue;
        }
        let (a, b) = (f.a as usize, f.b as usize);
        let (pa, pb) = (owner[a], owner[b]);
        if pa != pb {
            if ghost_stamp[b] != pa {
                ghost_stamp[b] = pa;
                ghosts[pa] += 1;
            }
            if ghost_stamp[a] != pb {
                ghost_stamp[a] = pb;
                ghosts[pb] += 1;
            }
            if !peers[pa].contains(&pb) {
                peers[pa].push(pb);
            }
            if !peers[pb].contains(&pa) {
                peers[pb].push(pa);
            }
        }
    }
    let nonempty = (0..p).filter(|&q| !cp.range(q).is_empty()).count().max(1);
    let mean = ghosts.iter().sum::<usize>() as f64 / nonempty as f64;
    let max_degree = peers.iter().map(|v| v.len()).max().unwrap_or(0);
    (mean, max_degree)
}

/// Fit the surface law over several partition counts.
pub fn fit_sfc_surface_law(mesh: &CartMesh, parts: &[usize]) -> SfcSurfaceLaw {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut max_degree = 0usize;
    for &p in parts {
        if p < 2 || p * 4 > mesh.ncells() {
            continue;
        }
        let (g, d) = measure_ghosts(mesh, p);
        if g > 0.0 {
            xs.push((mesh.ncells() as f64 / p as f64).ln());
            ys.push(g.ln());
        }
        max_degree = max_degree.max(d);
    }
    if xs.len() < 2 {
        return SfcSurfaceLaw {
            coeff: 5.0,
            exponent: 2.0 / 3.0,
            max_degree: (max_degree as f64).max(14.0),
        };
    }
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    let (coeff, exponent) = if denom.abs() < 1e-12 {
        (5.0, 2.0 / 3.0)
    } else {
        let e = ((n * sxy - sx * sy) / denom).clamp(0.3, 1.0);
        (((sy - e * sx) / n).exp(), e)
    };
    SfcSurfaceLaw {
        coeff,
        exponent,
        max_degree: (max_degree as f64).max(1.0),
    }
}

/// Fraction of fine cells whose SFC-partition owner differs between the
/// fine level and the (independently partitioned) coarse level.
pub fn measure_intergrid_nonlocal(
    fine: &CartMesh,
    coarse: &CartMesh,
    map: &[u32],
    p: usize,
) -> f64 {
    if p < 2 || coarse.ncells() < p {
        return 0.0;
    }
    let fp = partition_cells(fine, p);
    let cpp = partition_cells(coarse, p);
    let mut nonlocal = 0usize;
    for (c, &g) in map.iter().enumerate() {
        if fp.owner(c) != cpp.owner(g as usize) {
            nonlocal += 1;
        }
    }
    nonlocal as f64 / map.len().max(1) as f64
}

/// Measure a full Cart3D cycle profile, rescaled so the fine level has
/// `target_cells` (the paper's 25M-cell SSLV benchmark).
pub fn measure_profile(
    solver: &mut EulerSolver,
    cycle: &CycleParams,
    parts: &[usize],
    match_parts: usize,
    target_cells: f64,
    name: &str,
) -> CycleProfile {
    solver.take_flops();
    solver.cycle(cycle);
    let nlev = solver.nlevels();
    let visits: Vec<f64> = (0..nlev)
        .map(|l| match cycle.cycle {
            CycleType::V => 1.0,
            CycleType::W => (1usize << l) as f64,
        })
        .collect();
    let flops = solver.level_flops();
    let law = fit_sfc_surface_law(&solver.levels[0].mesh, parts);
    let scale = target_cells / solver.levels[0].ncells() as f64;
    // RK5: 5 state copies + 5 residual adds + 5 lam adds per step; sweeps
    // from the cycle parameters.
    let sweeps = (cycle.pre_sweeps + cycle.post_sweeps) as f64 / 2.0 + 1.0;
    let exchanges_per_visit = 15.0 * sweeps;
    // Working set: u, u0, forcing, restricted, res (5x40B) + lam + mesh.
    let state_bytes = (5 * NVARS5 * 8 + 8 + 100) as f64;

    let levels: Vec<LevelProfile> = (0..nlev)
        .map(|l| LevelProfile {
            name: format!("level {l}"),
            points: solver.levels[l].ncells() as f64 * scale,
            flops_per_point: flops[l] as f64 / (solver.levels[l].ncells() as f64 * visits[l]),
            state_bytes_per_point: state_bytes,
            exchange_bytes_per_entry: (NVARS5 * 8) as f64,
            exchanges_per_visit,
            surface_coeff: law.coeff,
            surface_exponent: law.exponent,
            max_degree: law.max_degree.max(14.0),
            visits: visits[l],
            // Cart3D's tuned cell-centred kernels: >1.5 GFLOP/s per CPU,
            // already cache-blocked (near-ideal rather than superlinear
            // scaling).
            rate_scale: 1.10,
            cache_fraction: 0.2,
        })
        .collect();

    let intergrid: Vec<IntergridProfile> = (0..nlev - 1)
        .map(|l| {
            let map = solver.levels[l].to_coarse.as_ref().unwrap();
            let nl = measure_intergrid_nonlocal(
                &solver.levels[l].mesh,
                &solver.levels[l + 1].mesh,
                map,
                match_parts,
            );
            IntergridProfile {
                bytes_per_fine_point: 60.0,
                transfers_per_cycle: visits[l + 1],
                nonlocal_fraction: nl.max(0.02),
                max_degree: law.max_degree.max(15.0),
                fine_points: solver.levels[l].ncells() as f64 * scale,
            }
        })
        .collect();

    CycleProfile {
        name: name.to_string(),
        levels,
        intergrid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::EulerParams;
    use columbia_cartesian::{build_octree, extract_mesh, CutCellConfig, Geometry, TriMesh};
    use columbia_mesh::Vec3;
    use columbia_sfc::CurveKind;

    fn sphere_solver(max_level: u32) -> EulerSolver {
        let prof: Vec<(f64, f64)> = (0..=10)
            .map(|i| {
                let t = std::f64::consts::PI * i as f64 / 10.0;
                (-0.3 * t.cos(), 0.3 * t.sin())
            })
            .collect();
        let geom = Geometry::new(&[TriMesh::body_of_revolution(&prof, 10)]);
        let config = CutCellConfig {
            min_level: 3,
            max_level,
            origin: Vec3::new(-1.0, -1.0, -1.0),
            size: 2.0,
        };
        let tree = build_octree(&geom, &config);
        let mesh = extract_mesh(&tree, &geom, CurveKind::Hilbert, 0.1);
        EulerSolver::new(mesh, EulerParams::default())
    }

    #[test]
    fn sfc_surface_law_is_sublinear() {
        let s = sphere_solver(5);
        let law = fit_sfc_surface_law(&s.levels[0].mesh, &[4, 8, 16, 32]);
        assert!(
            (0.3..=1.0).contains(&law.exponent),
            "exponent {}",
            law.exponent
        );
        assert!(law.coeff > 0.1);
    }

    #[test]
    fn intergrid_nonlocality_is_small_for_same_curve() {
        // Both levels split along the SAME SFC: overlap is naturally good
        // (paper: "generally very good overlap ... not perfectly nested").
        let s = sphere_solver(4);
        let map = s.levels[0].to_coarse.as_ref().unwrap();
        let f = measure_intergrid_nonlocal(&s.levels[0].mesh, &s.levels[1].mesh, map, 8);
        assert!((0.0..=0.5).contains(&f), "nonlocal fraction {f}");
    }

    #[test]
    fn measured_profile_validates_and_scales() {
        let mut s = sphere_solver(4);
        let p = measure_profile(
            &mut s,
            &CycleParams::default(),
            &[4, 8, 16],
            8,
            25.0e6,
            "measured Cart3D",
        );
        p.validate().unwrap();
        assert!((p.levels[0].points - 25.0e6).abs() / 25.0e6 < 1e-9);
        for l in &p.levels {
            assert!(
                l.flops_per_point > 100.0 && l.flops_per_point < 1e6,
                "{}: {}",
                l.name,
                l.flops_per_point
            );
        }
    }
}
