//! Multigrid driver, hierarchy construction and force integration.

use crate::level::EulerLevel;
use crate::state::{freestream5, pressure, State5, NVARS5};
use columbia_cartesian::{coarsen_hierarchy, CartMesh};
use columbia_comm::ExecContext;
use columbia_mesh::Vec3;
use columbia_mg::{fas_cycle, ConvergenceHistory, CycleParams, MultigridLevel};

/// Flow and numerical parameters of a Cart3D-style analysis.
#[derive(Clone, Copy, Debug)]
pub struct EulerParams {
    /// Free-stream Mach number.
    pub mach: f64,
    /// Angle of attack (radians).
    pub alpha: f64,
    /// Sideslip angle (radians).
    pub beta: f64,
    /// RK CFL number.
    pub cfl: f64,
    /// Multigrid levels to build.
    pub nlevels: usize,
}

impl Default for EulerParams {
    fn default() -> Self {
        EulerParams {
            mach: 0.5,
            alpha: 0.0,
            beta: 0.0,
            cfl: 1.5,
            nlevels: 4,
        }
    }
}

/// Integrated aerodynamic loads (pressure only; inviscid flow).
#[derive(Clone, Copy, Debug, Default)]
pub struct Forces {
    /// Force vector (freestream dynamic-pressure normalised coefficients
    /// are left to the caller, who knows the reference area).
    pub force: Vec3,
    /// Moment about the origin.
    pub moment: Vec3,
}

impl MultigridLevel for EulerLevel {
    fn smooth(&mut self, sweeps: usize) {
        for _ in 0..sweeps {
            self.rk_step();
        }
    }

    fn residual_norm(&mut self) -> f64 {
        self.residual_rms()
    }

    fn restrict_into(&mut self, coarse: &mut Self) {
        let map = self
            .to_coarse
            .clone()
            .expect("level has no coarse map; cannot restrict");
        self.compute_residual();
        let nc = coarse.ncells();
        let mut acc = vec![[0.0f64; NVARS5]; nc];
        let mut racc = vec![[0.0f64; NVARS5]; nc];
        for (c, &g) in map.iter().enumerate() {
            let vol = self.mesh.volumes[c];
            let g = g as usize;
            for k in 0..NVARS5 {
                acc[g][k] += vol * self.u.at(k, c);
                racc[g][k] += self.res.at(k, c);
            }
        }
        for g in 0..nc {
            let iv = 1.0 / coarse.mesh.volumes[g];
            for k in 0..NVARS5 {
                *coarse.u.at_mut(k, g) = acc[g][k] * iv;
            }
            coarse.guard_state(g);
        }
        coarse.restricted_u.copy_from(&coarse.u);
        coarse.forcing.fill_zero();
        coarse.compute_residual(); // res = -N_c(u_hat)
        for g in 0..nc {
            for k in 0..NVARS5 {
                *coarse.forcing.at_mut(k, g) = -coarse.res.at(k, g) + racc[g][k];
            }
        }
    }

    fn prolong_from(&mut self, coarse: &Self) {
        let map = self
            .to_coarse
            .clone()
            .expect("level has no coarse map; cannot prolongate");
        let relax = self.prolong_relax;
        for (c, &g) in map.iter().enumerate() {
            let g = g as usize;
            for k in 0..NVARS5 {
                *self.u.at_mut(k, c) += relax * (coarse.u.at(k, g) - coarse.restricted_u.at(k, g));
            }
            self.guard_state(c);
        }
    }
}

/// The Cart3D-style solver: SFC multigrid over a cut-cell mesh.
pub struct EulerSolver {
    /// Levels, finest first.
    pub levels: Vec<EulerLevel>,
    /// Parameters.
    pub params: EulerParams,
}

impl EulerSolver {
    /// Build a solver from a fine mesh.
    pub fn new(mesh: CartMesh, params: EulerParams) -> Self {
        let fs = freestream5(params.mach, params.alpha, params.beta);
        let steps = coarsen_hierarchy(&mesh, params.nlevels, 8);
        let mut levels = Vec::with_capacity(steps.len() + 1);
        let mut fine = EulerLevel::new(mesh, fs, params.cfl);
        for step in &steps {
            fine.to_coarse = Some(step.fine_to_coarse.clone());
            levels.push(fine);
            fine = EulerLevel::new(step.coarse.clone(), fs, params.cfl);
        }
        levels.push(fine);
        EulerSolver { levels, params }
    }

    /// Number of levels actually built.
    pub fn nlevels(&self) -> usize {
        self.levels.len()
    }

    /// Cell counts per level.
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.ncells()).collect()
    }

    /// Run one multigrid cycle.
    pub fn cycle(&mut self, cp: &CycleParams) {
        fas_cycle(&mut self.levels, cp, &mut ExecContext::default());
    }

    /// Run cycles until `tol` or `max_cycles`.
    pub fn solve(&mut self, cp: &CycleParams, tol: f64, max_cycles: usize) -> ConvergenceHistory {
        let mut h = ConvergenceHistory::default();
        h.residuals.push(self.levels[0].residual_rms());
        for _ in 0..max_cycles {
            if *h.residuals.last().unwrap() <= tol {
                break;
            }
            fas_cycle(&mut self.levels, cp, &mut ExecContext::default());
            h.residuals.push(self.levels[0].residual_rms());
        }
        h
    }

    /// Integrated surface loads on the fine level.
    pub fn forces(&self) -> Forces {
        let lvl = &self.levels[0];
        let mut force = Vec3::ZERO;
        let mut moment = Vec3::ZERO;
        for c in 0..lvl.ncells() {
            let w = lvl.mesh.wall_normal[c];
            if w.norm2() > 0.0 {
                let p = pressure(&lvl.u.get(c));
                let f = w * p;
                force += f;
                moment += lvl.mesh.centers[c].cross(f);
            }
        }
        Forces { force, moment }
    }

    /// Free-stream state of the analysis.
    pub fn freestream(&self) -> State5 {
        self.levels[0].fs
    }

    /// Take and reset the total FLOP count.
    pub fn take_flops(&mut self) -> u64 {
        let mut t = 0;
        for l in self.levels.iter_mut() {
            t += l.flops;
            l.flops = 0;
        }
        t
    }

    /// FLOPs per level since last reset (not reset).
    pub fn level_flops(&self) -> Vec<u64> {
        self.levels.iter().map(|l| l.flops).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columbia_cartesian::{build_octree, extract_mesh, CutCellConfig, Geometry, TriMesh};
    use columbia_sfc::CurveKind;

    fn sphere_mesh(max_level: u32) -> CartMesh {
        let prof: Vec<(f64, f64)> = (0..=12)
            .map(|i| {
                let t = std::f64::consts::PI * i as f64 / 12.0;
                (-0.3 * t.cos(), 0.3 * t.sin())
            })
            .collect();
        let geom = Geometry::new(&[TriMesh::body_of_revolution(&prof, 12)]);
        let config = CutCellConfig {
            min_level: 3,
            max_level,
            origin: columbia_mesh::Vec3::new(-1.0, -1.0, -1.0),
            size: 2.0,
        };
        let tree = build_octree(&geom, &config);
        extract_mesh(&tree, &geom, CurveKind::Hilbert, 0.1)
    }

    #[test]
    fn hierarchy_builds_requested_levels() {
        let s = EulerSolver::new(sphere_mesh(5), EulerParams::default());
        assert!(s.nlevels() >= 3, "sizes {:?}", s.level_sizes());
        let sizes = s.level_sizes();
        for w in sizes.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn multigrid_converges_subsonic_sphere() {
        let mut s = EulerSolver::new(sphere_mesh(4), EulerParams::default());
        let h = s.solve(&CycleParams::default(), 0.0, 30);
        assert!(
            h.orders_reduced() > 1.5,
            "only {} orders: {:?}",
            h.orders_reduced(),
            h.residuals.iter().step_by(5).collect::<Vec<_>>()
        );
    }

    #[test]
    fn multigrid_beats_single_grid_per_cycle() {
        let mesh = sphere_mesh(4);
        let mut mg = EulerSolver::new(mesh.clone(), EulerParams::default());
        let mut sg = EulerSolver::new(
            mesh,
            EulerParams {
                nlevels: 1,
                ..Default::default()
            },
        );
        let cp = CycleParams::default();
        let hm = mg.solve(&cp, 0.0, 12);
        let hs = sg.solve(&cp, 0.0, 12);
        assert!(
            hm.orders_reduced() > hs.orders_reduced(),
            "mg {} vs sg {}",
            hm.orders_reduced(),
            hs.orders_reduced()
        );
    }

    #[test]
    fn lift_increases_with_alpha() {
        let mesh = sphere_mesh(4);
        let force = |alpha: f64| {
            let mut s = EulerSolver::new(
                mesh.clone(),
                EulerParams {
                    mach: 2.0,
                    alpha,
                    ..Default::default()
                },
            );
            s.solve(&CycleParams::default(), 0.0, 20);
            s.forces().force
        };
        let f0 = force(0.0);
        let f1 = force(0.1);
        assert!(
            f1.z > f0.z + 1e-4,
            "lift must grow with alpha: {} -> {}",
            f0.z,
            f1.z
        );
    }

    #[test]
    fn w_cycle_at_least_matches_v_cycle() {
        use columbia_mg::CycleType;
        let mesh = sphere_mesh(4);
        let mut v = EulerSolver::new(mesh.clone(), EulerParams::default());
        let mut w = EulerSolver::new(mesh, EulerParams::default());
        let hv = v.solve(
            &CycleParams {
                cycle: CycleType::V,
                ..Default::default()
            },
            0.0,
            10,
        );
        let hw = w.solve(
            &CycleParams {
                cycle: CycleType::W,
                ..Default::default()
            },
            0.0,
            10,
        );
        assert!(
            hw.orders_reduced() >= hv.orders_reduced() - 0.3,
            "W {} vs V {}",
            hw.orders_reduced(),
            hv.orders_reduced()
        );
    }

    #[test]
    fn forces_produce_drag_and_flop_counts_grow() {
        let mut s = EulerSolver::new(
            sphere_mesh(4),
            EulerParams {
                mach: 2.0,
                ..Default::default()
            },
        );
        s.solve(&CycleParams::default(), 0.0, 20);
        let f = s.forces();
        assert!(f.force.x > 0.0, "supersonic drag expected: {f:?}");
        assert!(s.take_flops() > 0);
    }
}
