//! One multigrid level: cut-cell mesh + state + residual + RK smoother.

use crate::state::{flux, pressure, rusanov, spectral_radius, wall_flux, State5, GAMMA, NVARS5};
use columbia_cartesian::CartMesh;
use columbia_linalg::soa::{SoaStates, LANES};
use columbia_rt::env::{self, KernelKind};

/// Jameson-style five-stage Runge-Kutta coefficients.
pub const RK5: [f64; 5] = [0.25, 1.0 / 6.0, 0.375, 0.5, 1.0];

/// Software FLOP estimates per kernel (MADD = 2, as in the paper's
/// methodology with the Itanium counters).
pub mod flops {
    /// Per interior face (two flux evals + spectral radii + blend).
    pub const FACE: u64 = 120;
    /// Per boundary or wall closure evaluation.
    pub const BOUNDARY: u64 = 70;
    /// Per cell per RK stage (update + time step).
    pub const STAGE: u64 = 30;
}

/// One Euler solver level.
pub struct EulerLevel {
    /// Mesh geometry (fine: extracted; coarse: SFC-coarsened).
    pub mesh: CartMesh,
    /// Conservative state, one plane per component.
    pub u: SoaStates<NVARS5>,
    /// FAS forcing (zero on the finest level).
    pub forcing: SoaStates<NVARS5>,
    /// Restricted state stored at restriction time.
    pub restricted_u: SoaStates<NVARS5>,
    /// Residual scratch `r = forcing - N(u)`.
    pub res: SoaStates<NVARS5>,
    /// `u^n` storage for the RK stages.
    pub u0: SoaStates<NVARS5>,
    /// Spectral-radius accumulator for local time steps. Exchanged as a
    /// width-1 `HaloField` plane, coalesced with the residual planes.
    pub lam: Vec<f64>,
    /// Free-stream state.
    pub fs: State5,
    /// CFL number per RK cycle.
    pub cfl: f64,
    /// Under-relaxation of the prolonged correction.
    pub prolong_relax: f64,
    /// Map to the next coarser level (if any).
    pub to_coarse: Option<Vec<u32>>,
    /// Software FLOP counter.
    pub flops: u64,
    /// Ownership mask (ghosts are inactive in the parallel solver).
    pub active: Vec<bool>,
    /// Dense-kernel path for the RK stage updates. Resolved from
    /// `COLUMBIA_KERNELS` at construction (default [`KernelKind::Simd`]);
    /// both paths are bit-identical (`tests/kernel_parity.rs`), the field
    /// is public so harnesses can pin one explicitly.
    pub kernel: KernelKind,
}

impl EulerLevel {
    /// Build a level with the given free stream.
    pub fn new(mesh: CartMesh, fs: State5, cfl: f64) -> Self {
        let n = mesh.ncells();
        let mut filled = SoaStates::zeros(n);
        filled.fill_with(&fs);
        EulerLevel {
            u: filled.clone(),
            forcing: SoaStates::zeros(n),
            restricted_u: filled.clone(),
            res: SoaStates::zeros(n),
            u0: filled,
            lam: vec![0.0; n],
            fs,
            cfl,
            prolong_relax: 0.75,
            to_coarse: None,
            flops: 0,
            active: vec![true; n],
            kernel: env::kernels().unwrap_or(KernelKind::Simd),
            mesh,
        }
    }

    /// Number of cells.
    pub fn ncells(&self) -> usize {
        self.mesh.ncells()
    }

    /// Assemble `res = forcing - N(u)` and the spectral-radius sums.
    /// Split into accumulation and finalisation so the parallel solver can
    /// exchange ghost contributions in between.
    pub fn compute_residual(&mut self) {
        self.accumulate_residual();
        self.finalize_residual();
    }

    /// Face-loop accumulation of `-N(u)` (flux part) and spectral radii.
    pub fn accumulate_residual(&mut self) {
        let Self {
            mesh,
            u,
            res,
            lam,
            fs,
            active,
            flops: fc,
            ..
        } = self;
        let n = mesh.ncells();
        res.fill_zero();
        for l in lam.iter_mut() {
            *l = 0.0;
        }
        let mut rp = res.planes_mut();
        for f in &mesh.faces {
            let a = f.a as usize;
            if f.is_boundary() {
                // Far-field characteristic state via the upwind flux.
                let ua = u.get(a);
                let fb = rusanov(&ua, fs, f.normal);
                for (k, rk) in rp.iter_mut().enumerate() {
                    rk[a] -= fb[k];
                }
                lam[a] += spectral_radius(&ua, f.normal);
                *fc += flops::BOUNDARY;
                continue;
            }
            let b = f.b as usize;
            let ua = u.get(a);
            let ub = u.get(b);
            let fx = rusanov(&ua, &ub, f.normal);
            for (k, rk) in rp.iter_mut().enumerate() {
                rk[a] -= fx[k];
                rk[b] += fx[k];
            }
            let l2 = spectral_radius(&ua, f.normal).max(spectral_radius(&ub, f.normal));
            lam[a] += l2;
            lam[b] += l2;
            *fc += flops::FACE;
        }
        // Wall closure fluxes (cut cells). Only the owning rank evaluates
        // a cell's wall term — ghosts would double-count after exchange.
        for c in 0..n {
            if !active[c] {
                continue;
            }
            let w = mesh.wall_normal[c];
            if w.norm2() > 0.0 {
                let uc = u.get(c);
                let fw = wall_flux(&uc, w);
                for (k, rk) in rp.iter_mut().enumerate() {
                    rk[c] -= fw[k];
                }
                lam[c] += spectral_radius(&uc, w);
                *fc += flops::BOUNDARY;
            }
        }
    }

    /// Add forcing and zero inactive rows.
    pub fn finalize_residual(&mut self) {
        let Self {
            mesh,
            res,
            forcing,
            active,
            ..
        } = self;
        let mut rp = res.planes_mut();
        for c in 0..mesh.ncells() {
            if !active[c] {
                for rk in rp.iter_mut() {
                    rk[c] = 0.0;
                }
                continue;
            }
            for (k, rk) in rp.iter_mut().enumerate() {
                rk[c] += forcing.at(k, c);
            }
        }
    }

    /// RMS of the active residual rows.
    pub fn residual_rms(&mut self) -> f64 {
        self.compute_residual();
        let (ss, cnt) = self.residual_sumsq();
        if cnt == 0 {
            0.0
        } else {
            (ss / cnt as f64).sqrt()
        }
    }

    /// Sum of squares and count over active rows (no recompute).
    pub fn residual_sumsq(&self) -> (f64, usize) {
        let mut ss = 0.0;
        let mut cnt = 0;
        for c in 0..self.res.len() {
            if self.active[c] {
                for k in 0..NVARS5 {
                    let x = self.res.at(k, c);
                    ss += x * x;
                }
                cnt += NVARS5;
            }
        }
        (ss, cnt)
    }

    /// Apply one RK stage with coefficient `alpha`, given `res` and `lam`
    /// are assembled for the current `u` and `u0` holds the stage-0 state.
    ///
    /// The SIMD path processes runs of [`LANES`] consecutive active cells
    /// with the per-cell arithmetic unchanged (`u0 + (alpha * dt_v) * res`
    /// element-wise, then the positivity guard) — the stage update is
    /// cell-local, so chunking is bit-identical by construction.
    pub fn apply_stage(&mut self, alpha: f64) {
        let n = self.ncells();
        match self.kernel {
            KernelKind::Scalar => {
                for c in 0..n {
                    if !self.active[c] {
                        continue;
                    }
                    self.stage_cell(c, alpha);
                }
            }
            KernelKind::Simd => {
                let mut c = 0;
                while c + LANES <= n {
                    if self.active[c..c + LANES].iter().all(|&a| a) {
                        let mut dt_v = [0.0; LANES];
                        for (l, d) in dt_v.iter_mut().enumerate() {
                            *d = self.cfl / self.lam[c + l].max(1e-300);
                        }
                        for k in 0..NVARS5 {
                            let u0p = self.u0.plane(k);
                            let rp = self.res.plane(k);
                            let up = self.u.plane_mut(k);
                            for l in 0..LANES {
                                up[c + l] = u0p[c + l] + alpha * dt_v[l] * rp[c + l];
                            }
                        }
                        for l in 0..LANES {
                            self.guard_state(c + l);
                        }
                        c += LANES;
                    } else {
                        if self.active[c] {
                            self.stage_cell(c, alpha);
                        }
                        c += 1;
                    }
                }
                for c in c..n {
                    if self.active[c] {
                        self.stage_cell(c, alpha);
                    }
                }
            }
        }
        self.flops += n as u64 * flops::STAGE;
    }

    /// Scalar stage update of one cell (shared by both kernel paths).
    #[inline]
    fn stage_cell(&mut self, c: usize, alpha: f64) {
        let dt_v = self.cfl / self.lam[c].max(1e-300); // dt / V
        for k in 0..NVARS5 {
            *self.u.at_mut(k, c) = self.u0.at(k, c) + alpha * dt_v * self.res.at(k, c);
        }
        self.guard_state(c);
    }

    /// One full multistage RK smoothing step (serial path).
    pub fn rk_step(&mut self) {
        self.u0.copy_from(&self.u);
        for &alpha in RK5.iter() {
            self.compute_residual();
            self.apply_stage(alpha);
        }
    }

    /// Positivity guard on cell `c`.
    pub fn guard_state(&mut self, c: usize) {
        let mut view = self.u.point_mut(c);
        let mut u = view.load();
        u[0] = u[0].clamp(0.05, 20.0);
        let q2 = (u[1] * u[1] + u[2] * u[2] + u[3] * u[3]) / u[0];
        let p = (GAMMA - 1.0) * (u[4] - 0.5 * q2);
        let pmin = 0.02 / GAMMA;
        if p < pmin {
            u[4] = pmin / (GAMMA - 1.0) + 0.5 * q2;
        }
        view.store(&u);
    }

    /// Free-stream consistency defect: with `u == fs` everywhere, `N(u)`
    /// reduces to `F(fs) . (closure defect)`, which must vanish on a
    /// geometrically closed mesh up to the wall pressure terms.
    pub fn freestream_defect(&mut self) -> f64 {
        let saved = self.u.clone();
        let fs = self.fs;
        self.u.fill_with(&fs);
        let rms = self.residual_rms();
        self.u = saved;
        rms
    }

    /// Flux of the free stream through area `s` (test helper).
    pub fn fs_flux(&self, s: columbia_mesh::Vec3) -> State5 {
        flux(&self.fs, s)
    }

    /// Surface pressure force vector (sum of p * wall closure).
    pub fn wall_force(&self) -> columbia_mesh::Vec3 {
        let mut f = columbia_mesh::Vec3::ZERO;
        for c in 0..self.ncells() {
            let w = self.mesh.wall_normal[c];
            if w.norm2() > 0.0 {
                f += w * pressure(&self.u.get(c));
            }
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::freestream5;
    use columbia_cartesian::{build_octree, extract_mesh, CutCellConfig, Geometry, TriMesh};
    use columbia_mesh::Vec3;
    use columbia_sfc::CurveKind;

    fn sphere_level(max_level: u32, mach: f64) -> EulerLevel {
        let prof: Vec<(f64, f64)> = (0..=12)
            .map(|i| {
                let t = std::f64::consts::PI * i as f64 / 12.0;
                (-0.3 * t.cos(), 0.3 * t.sin())
            })
            .collect();
        let geom = Geometry::new(&[TriMesh::body_of_revolution(&prof, 12)]);
        let config = CutCellConfig {
            min_level: 3,
            max_level,
            origin: Vec3::new(-1.0, -1.0, -1.0),
            size: 2.0,
        };
        let tree = build_octree(&geom, &config);
        let mesh = extract_mesh(&tree, &geom, CurveKind::Hilbert, 0.1);
        EulerLevel::new(mesh, freestream5(mach, 0.0, 0.0), 1.5)
    }

    #[test]
    fn freestream_defect_is_pressure_closure_only() {
        // At u = fs the convective parts telescope; only wall pressure
        // terms on cut cells remain, and they are balanced by the momentum
        // flux difference — the defect must be small relative to the
        // free-stream flux scale but nonzero (the body disturbs the flow).
        let mut lvl = sphere_level(4, 0.5);
        let d = lvl.freestream_defect();
        assert!(d.is_finite());
        assert!(d > 0.0, "a body must disturb the free stream");
    }

    #[test]
    fn rk_smoothing_reduces_residual() {
        let mut lvl = sphere_level(4, 0.5);
        let r0 = lvl.residual_rms();
        for _ in 0..40 {
            lvl.rk_step();
        }
        let r1 = lvl.residual_rms();
        assert!(r1 < 0.5 * r0, "residual {r0} -> {r1}");
        for u in lvl.u.to_aos() {
            assert!(u.iter().all(|x| x.is_finite()));
            assert!(pressure(&u) > 0.0);
        }
    }

    #[test]
    fn wall_force_points_downstream_for_supersonic_flow() {
        // Blunt body drag: after smoothing, pressure force x-component
        // must be positive (drag) for supersonic flow along +x.
        let mut lvl = sphere_level(4, 2.0);
        for _ in 0..60 {
            lvl.rk_step();
        }
        let f = lvl.wall_force();
        assert!(f.x > 0.0, "drag should be positive, got {f:?}");
        // Symmetric body at zero incidence: lift ~ 0 relative to drag.
        assert!(f.y.abs() < 0.2 * f.x.abs(), "asymmetric force {f:?}");
    }

    #[test]
    fn uniform_grid_preserves_freestream_exactly() {
        let g = Geometry::new(&[]);
        let config = CutCellConfig {
            min_level: 3,
            max_level: 3,
            origin: Vec3::ZERO,
            size: 1.0,
        };
        let tree = build_octree(&g, &config);
        let mesh = extract_mesh(&tree, &g, CurveKind::Morton, 0.1);
        let mut lvl = EulerLevel::new(mesh, freestream5(0.8, 0.1, 0.05), 1.5);
        // Without a body the scheme must hold the free stream to round-off.
        assert!(lvl.residual_rms() < 1e-12);
        lvl.rk_step();
        for u in lvl.u.to_aos() {
            for k in 0..NVARS5 {
                assert!((u[k] - lvl.fs[k]).abs() < 1e-12);
            }
        }
    }
}
