//! Five-variable Euler state and fluxes.

use columbia_mesh::Vec3;

/// Unknowns per cell: density, momentum vector, total energy.
pub const NVARS5: usize = 5;

/// Conservative state.
pub type State5 = [f64; NVARS5];

/// Ratio of specific heats.
pub const GAMMA: f64 = 1.4;

/// Static pressure.
#[inline]
pub fn pressure(u: &State5) -> f64 {
    let q2 = (u[1] * u[1] + u[2] * u[2] + u[3] * u[3]) / u[0];
    (GAMMA - 1.0) * (u[4] - 0.5 * q2)
}

/// Velocity vector.
#[inline]
pub fn velocity(u: &State5) -> Vec3 {
    Vec3::new(u[1] / u[0], u[2] / u[0], u[3] / u[0])
}

/// Speed of sound.
#[inline]
pub fn sound_speed(u: &State5) -> f64 {
    (GAMMA * pressure(u) / u[0]).max(1e-300).sqrt()
}

/// Convective flux through area vector `s`.
#[inline]
pub fn flux(u: &State5, s: Vec3) -> State5 {
    let v = velocity(u);
    let un = v.dot(s);
    let p = pressure(u);
    [
        u[0] * un,
        u[1] * un + p * s.x,
        u[2] * un + p * s.y,
        u[3] * un + p * s.z,
        (u[4] + p) * un,
    ]
}

/// Convective spectral radius `|V.S| + c |S|`.
#[inline]
pub fn spectral_radius(u: &State5, s: Vec3) -> f64 {
    velocity(u).dot(s).abs() + sound_speed(u) * s.norm()
}

/// Rusanov (local Lax-Friedrichs) numerical flux, oriented l -> r.
#[inline]
pub fn rusanov(ul: &State5, ur: &State5, s: Vec3) -> State5 {
    let fl = flux(ul, s);
    let fr = flux(ur, s);
    let lam = spectral_radius(ul, s).max(spectral_radius(ur, s));
    let mut out = [0.0; NVARS5];
    for k in 0..NVARS5 {
        out[k] = 0.5 * (fl[k] + fr[k]) - 0.5 * lam * (ur[k] - ul[k]);
    }
    out
}

/// Wall flux through the embedded-boundary closure vector: pressure only
/// (no mass or energy crosses a solid wall).
#[inline]
pub fn wall_flux(u: &State5, wall: Vec3) -> State5 {
    let p = pressure(u);
    [0.0, p * wall.x, p * wall.y, p * wall.z, 0.0]
}

/// Free-stream state at Mach `mach`, angle of attack `alpha` and sideslip
/// `beta` (radians), unit density and sound speed.
pub fn freestream5(mach: f64, alpha: f64, beta: f64) -> State5 {
    let rho = 1.0;
    let p = 1.0 / GAMMA;
    let q = mach;
    // Wind axes: alpha pitches in the x-z' plane... use the aerospace
    // convention u = q cos(a) cos(b), v = q sin(b), w = q sin(a) cos(b).
    let vx = q * alpha.cos() * beta.cos();
    let vy = q * beta.sin();
    let vz = q * alpha.sin() * beta.cos();
    let e = p / (GAMMA - 1.0) + 0.5 * rho * q * q;
    [rho, rho * vx, rho * vy, rho * vz, e]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freestream_invariants() {
        let u = freestream5(2.6, 0.0365, 0.014); // paper's SSLV condition
        assert!((sound_speed(&u) - 1.0).abs() < 1e-12);
        assert!((velocity(&u).norm() - 2.6).abs() < 1e-12);
        assert!(pressure(&u) > 0.0);
    }

    #[test]
    fn rusanov_consistency_and_antisymmetry() {
        let ul = freestream5(0.8, 0.05, 0.0);
        let mut ur = ul;
        ur[0] = 1.2;
        let s = Vec3::new(0.2, -0.7, 0.4);
        let f = rusanov(&ul, &ul, s);
        let exact = flux(&ul, s);
        for k in 0..NVARS5 {
            assert!((f[k] - exact[k]).abs() < 1e-13);
        }
        let f1 = rusanov(&ul, &ur, s);
        let f2 = rusanov(&ur, &ul, -s);
        for k in 0..NVARS5 {
            assert!((f1[k] + f2[k]).abs() < 1e-13);
        }
    }

    #[test]
    fn wall_flux_carries_only_pressure_momentum() {
        let u = freestream5(0.5, 0.0, 0.0);
        let w = wall_flux(&u, Vec3::new(0.0, 2.0, 0.0));
        assert_eq!(w[0], 0.0);
        assert_eq!(w[4], 0.0);
        assert!((w[2] - 2.0 * pressure(&u)).abs() < 1e-15);
    }

    columbia_rt::props! {
        /// Free-stream invariants hold over the whole wind-axes envelope
        /// (subsonic through the paper's Mach 2.6 SSLV point).
        fn prop_freestream5_invariants(m in 0.3f64..3.0, al in -0.2f64..0.2, be in -0.1f64..0.1) {
            let u = freestream5(m, al, be);
            assert!((sound_speed(&u) - 1.0).abs() < 1e-12);
            assert!((velocity(&u).norm() - m).abs() < 1e-12);
            assert!(pressure(&u) > 0.0);
        }

        /// Rusanov flux is antisymmetric under orientation reversal, so
        /// face loops conserve exactly.
        fn prop_rusanov_antisymmetric(
            m in 0.3f64..2.0,
            drho in 0.0f64..0.5,
            sx in -1.0f64..1.0,
            sy in -1.0f64..1.0,
        ) {
            let ul = freestream5(m, 0.02, 0.01);
            let mut ur = ul;
            ur[0] += drho;
            let s = Vec3::new(sx, sy, 0.3);
            let f1 = rusanov(&ul, &ur, s);
            let f2 = rusanov(&ur, &ul, -s);
            for k in 0..NVARS5 {
                assert!((f1[k] + f2[k]).abs() < 1e-12 * (1.0 + f1[k].abs()), "component {}", k);
            }
        }
    }
}
