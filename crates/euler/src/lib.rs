//! Cart3D solver module analogue (paper §V).
//!
//! Solves the Euler equations of inviscid compressible flow on the cut-cell
//! Cartesian meshes produced by `columbia-cartesian`:
//!
//! * cell-centred finite volume, five unknowns per cell;
//! * Rusanov upwind fluxes across axis-aligned faces; wall pressure flux
//!   through each cut cell's embedded-boundary closure vector; far-field
//!   characteristic state at domain boundary faces;
//! * five-stage Runge-Kutta smoothing with local time stepping;
//! * FAS multigrid over the single-pass SFC-coarsened hierarchy (W-cycles
//!   preferred, as in the paper);
//! * SFC domain decomposition with packed ghost exchanges;
//! * surface force/moment integration for the aero-database fills of §IV.

#![allow(clippy::needless_range_loop)] // index loops mirror the stencil/block structure of the kernels
#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0.0)` deliberately catches NaNs

pub mod level;
pub mod parallel;
pub mod profile;
pub mod solver;
pub mod state;

pub use level::EulerLevel;
pub use profile::measure_profile;
pub use solver::{EulerParams, EulerSolver, Forces};
pub use state::{freestream5, State5, NVARS5};
