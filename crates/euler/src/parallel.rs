//! SFC domain-decomposed execution of the Euler solver.
//!
//! Cells are split into contiguous SFC segments (cut cells weighted 2.1x);
//! each rank owns its segment's cells plus ghost images across partition
//! boundaries; faces belong to the rank owning their `a` cell. One RK
//! stage interleaves: ghost state copy → local flux accumulation → ghost
//! residual/spectral-radius accumulation → stage update of owned cells.

use crate::level::{EulerLevel, RK5};
use crate::state::{State5, NVARS5};
use columbia_cartesian::{partition_cells, CartFace, CartMesh};
use columbia_comm::{decompose, run_world, Decomposition, ExecContext, Rank, RankTrace};
use columbia_rt::trace::SpanKey;

/// Per-rank local mesh + level.
pub struct LocalEuler {
    /// Local level (owned + ghost cells).
    pub level: EulerLevel,
    /// Owned-cell count (prefix of local numbering).
    pub n_owned: usize,
    /// Local → global cell map.
    pub local_to_global: Vec<u32>,
}

/// SFC-partition a mesh and build per-rank local levels.
pub fn build_local_levels(
    mesh: &CartMesh,
    nparts: usize,
    fs: State5,
    cfl: f64,
) -> (Decomposition, Vec<LocalEuler>) {
    let cp = partition_cells(mesh, nparts);
    let part: Vec<u32> = (0..mesh.ncells()).map(|c| cp.owner(c) as u32).collect();
    let pairs: Vec<(u32, u32)> = mesh
        .faces
        .iter()
        .filter(|f| !f.is_boundary())
        .map(|f| (f.a, f.b))
        .collect();
    let decomp = decompose(mesh.ncells(), &part, nparts, &pairs);

    let mut locals = Vec::with_capacity(nparts);
    for p in 0..nparts {
        let l2g = &decomp.local_to_global[p];
        let n_owned = decomp.n_owned[p];
        let mut local = CartMesh {
            max_level: mesh.max_level,
            ..Default::default()
        };
        for &g in l2g {
            let g = g as usize;
            local.centers.push(mesh.centers[g]);
            local.volumes.push(mesh.volumes[g]);
            local.kinds.push(mesh.kinds[g]);
            local.weights.push(mesh.weights[g]);
            local.wall_normal.push(mesh.wall_normal[g]);
            local.sfc_keys.push(mesh.sfc_keys[g]);
            local.levels.push(mesh.levels[g]);
            local.coords.push(mesh.coords[g]);
        }
        for f in &mesh.faces {
            if part[f.a as usize] as usize != p {
                continue;
            }
            let la = decomp.local_index(p, f.a).expect("owned cell missing");
            let lb = if f.is_boundary() {
                u32::MAX
            } else {
                decomp
                    .local_index(p, f.b)
                    .expect("face endpoint neither owned nor ghost")
            };
            local.faces.push(CartFace {
                a: la,
                b: lb,
                normal: f.normal,
            });
        }
        let mut level = EulerLevel::new(local, fs, cfl);
        for c in n_owned..l2g.len() {
            level.active[c] = false;
        }
        locals.push(LocalEuler {
            level,
            n_owned,
            local_to_global: l2g.clone(),
        });
    }
    (decomp, locals)
}

/// One parallel RK smoothing step.
pub fn parallel_rk_step(local: &mut LocalEuler, decomp: &Decomposition, rank: &mut Rank) {
    let plan = &decomp.plans[rank.rank()];
    let lvl = &mut local.level;
    lvl.u0.copy_from(&lvl.u);
    for (stage, &alpha) in RK5.iter().enumerate() {
        let tag = 100 + 10 * stage as u64;
        plan.exchange_copy_field(rank, tag, &mut lvl.u);
        lvl.accumulate_residual();
        // Ghost residuals and spectral radii ride ONE coalesced message
        // per peer (5 + 1 values per exchanged cell); the residual planes
        // and the `lam` plane are packed straight from the resident
        // storage — no AoS staging buffer.
        {
            let EulerLevel { res, lam, .. } = lvl;
            plan.exchange_add2_field(rank, tag + 1, res, &mut lam[..]);
        }
        lvl.finalize_residual();
        lvl.apply_stage(alpha);
    }
    let plan = &decomp.plans[rank.rank()];
    plan.exchange_copy_field(rank, 99, &mut local.level.u);
}

/// Parallel residual RMS (collective).
pub fn parallel_residual_rms(
    local: &mut LocalEuler,
    decomp: &Decomposition,
    rank: &mut Rank,
) -> f64 {
    let plan = &decomp.plans[rank.rank()];
    let lvl = &mut local.level;
    plan.exchange_copy_field(rank, 200, &mut lvl.u);
    lvl.accumulate_residual();
    plan.exchange_add_field(rank, 201, &mut lvl.res);
    lvl.finalize_residual();
    let (ss, cnt) = lvl.residual_sumsq();
    let gss = rank.allreduce_sum(ss);
    let gcnt = rank.allreduce_sum(cnt as f64);
    if gcnt == 0.0 {
        0.0
    } else {
        (gss / gcnt).sqrt()
    }
}

/// Run `steps` parallel RK steps; returns the assembled global state, the
/// global residual, and the per-rank teardown ledgers ([`RankTrace`] —
/// `traces[p].stats` carries rank `p`'s [`columbia_comm::CommStats`]).
///
/// `ctx` selects the run's capabilities: an attached fault plan injects
/// message drops/duplicates/delays and barrier stalls per its seed (the
/// retry/dedup/reorder protocol hides them from payloads, the stats carry
/// the fault-protocol counters); an enabled tracer records the run under
/// an `euler_smoothing` span — residual as a gauge, one `comm` child span
/// per rank. The default context runs clean with zero recording overhead.
pub fn run_parallel_smoothing(
    mesh: &CartMesh,
    fs: State5,
    cfl: f64,
    nparts: usize,
    steps: usize,
    ctx: &mut ExecContext,
) -> (Vec<State5>, f64, Vec<RankTrace>) {
    let (decomp, locals) = build_local_levels(mesh, nparts, fs, cfl);
    let locals = std::sync::Mutex::new(
        locals
            .into_iter()
            .map(Some)
            .collect::<Vec<Option<LocalEuler>>>(),
    );
    let (results, traces) = run_world(nparts, ctx, |rank| {
        let mut local = locals.lock().unwrap()[rank.rank()]
            .take()
            .expect("local level already taken");
        for _ in 0..steps {
            parallel_rk_step(&mut local, &decomp, rank);
        }
        let rms = parallel_residual_rms(&mut local, &decomp, rank);
        let owned: Vec<(u32, State5)> = (0..local.n_owned)
            .map(|c| (local.local_to_global[c], local.level.u.get(c)))
            .collect();
        (owned, rms)
    });
    let mut u = vec![[0.0; NVARS5]; mesh.ncells()];
    let mut rms = 0.0;
    for (owned, r) in results {
        for (g, v) in owned {
            u[g as usize] = v;
        }
        rms = r;
    }
    let tracer = ctx.tracer();
    tracer.scoped(SpanKey::new("euler_smoothing"), |t| {
        t.add("rk_steps", steps as u64);
        t.add("ranks", nparts as u64);
        t.gauge("residual_rms", rms);
        for tr in &traces {
            tr.record_to(t);
        }
    });
    (u, rms, traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::freestream5;
    use columbia_cartesian::{build_octree, extract_mesh, CutCellConfig, Geometry, TriMesh};
    use columbia_mesh::Vec3;
    use columbia_sfc::CurveKind;

    fn sphere_mesh() -> CartMesh {
        let prof: Vec<(f64, f64)> = (0..=10)
            .map(|i| {
                let t = std::f64::consts::PI * i as f64 / 10.0;
                (-0.3 * t.cos(), 0.3 * t.sin())
            })
            .collect();
        let geom = Geometry::new(&[TriMesh::body_of_revolution(&prof, 10)]);
        let config = CutCellConfig {
            min_level: 3,
            max_level: 4,
            origin: Vec3::new(-1.0, -1.0, -1.0),
            size: 2.0,
        };
        let tree = build_octree(&geom, &config);
        extract_mesh(&tree, &geom, CurveKind::Hilbert, 0.1)
    }

    #[test]
    fn parallel_matches_serial_rk_steps() {
        let mesh = sphere_mesh();
        let fs = freestream5(0.5, 0.0, 0.0);
        let mut serial = EulerLevel::new(mesh.clone(), fs, 1.5);
        for _ in 0..3 {
            serial.rk_step();
        }
        let serial_rms = serial.residual_rms();
        for nparts in [2, 4] {
            let (u, rms, traces) =
                run_parallel_smoothing(&mesh, fs, 1.5, nparts, 3, &mut ExecContext::default());
            let mut max_diff = 0.0f64;
            for (c, su) in serial.u.to_aos().iter().enumerate() {
                for k in 0..NVARS5 {
                    max_diff = max_diff.max((u[c][k] - su[k]).abs());
                }
            }
            assert!(max_diff < 1e-9, "{nparts}-way diverged: {max_diff}");
            assert!((rms - serial_rms).abs() < 1e-10 * (1.0 + serial_rms));
            assert!(traces.iter().any(|t| t.stats.total_msgs() > 0));
        }
    }

    #[test]
    fn traced_smoothing_matches_untraced() {
        let mesh = sphere_mesh();
        let fs = freestream5(0.5, 0.0, 0.0);
        let (u, rms, plain) =
            run_parallel_smoothing(&mesh, fs, 1.5, 2, 2, &mut ExecContext::default());
        let mut ctx = ExecContext::traced();
        let (ut, rmst, traces) = run_parallel_smoothing(&mesh, fs, 1.5, 2, 2, &mut ctx);
        assert_eq!(rms.to_bits(), rmst.to_bits());
        let bits = |u: &[State5]| u.iter().flatten().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&u), bits(&ut));
        for (p, tr) in plain.iter().zip(&traces) {
            assert_eq!(p.stats, tr.stats);
        }
        let trace = ctx.finish_trace();
        assert!(trace.find("euler_smoothing").is_some());
        assert!(trace.counter_total("comm.sends") > 0);
    }

    #[test]
    fn decomposition_covers_all_cells_and_faces() {
        let mesh = sphere_mesh();
        let fs = freestream5(0.5, 0.0, 0.0);
        let (_, locals) = build_local_levels(&mesh, 4, fs, 1.5);
        let owned: usize = locals.iter().map(|l| l.n_owned).sum();
        assert_eq!(owned, mesh.ncells());
        let faces: usize = locals.iter().map(|l| l.level.mesh.nfaces()).sum();
        assert_eq!(faces, mesh.nfaces());
    }
}
