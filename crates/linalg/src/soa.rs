//! Lane-interleaved (structure-of-arrays) block storage and batched
//! SIMD-friendly kernels.
//!
//! The scalar kernels in [`crate::block`] and [`crate::tridiag`] operate on
//! one dense `N x N` block at a time; inside a block the data dependencies
//! (pivot search, triangular substitution) serialise the arithmetic, so the
//! compiler cannot vectorise them. This module stores `LANES` independent
//! blocks *interleaved*: element `(r, c)` of lane `l` lives at
//! `a[r][c][l]`, so each `[f64; LANES]` group is one cache-line-sized,
//! contiguous vector register's worth of data and the innermost loop of
//! every kernel runs over independent lanes. The dependency chains of the
//! LU factorisation and the tridiagonal sweeps then cross *iterations of
//! the outer loop only*, and the lane loop autovectorises (and provides
//! instruction-level parallelism even where it does not).
//!
//! # Bit-identity contract
//!
//! Every batched kernel performs, per lane, the *exact same floating-point
//! operations in the exact same order* as its scalar counterpart:
//!
//! - no cross-lane arithmetic, no reassociation, no FMA contraction;
//! - pivot selection replicates the scalar search (strict `>`, ties keep
//!   the earlier row) independently per lane;
//! - accumulate-then-subtract sequences (`mul_vec_sub`, the forward
//!   elimination update) keep the scalar's grouping;
//! - the scalar matmul's zero-multiplier skip is *not* replicated: the
//!   batch accumulates every term. For finite inputs this is bit-identical
//!   (the accumulator starts at `+0.0` and adding a `±0.0` product never
//!   changes it), so the contract holds on finite data; lanes that have
//!   already been flagged singular are exempt (their output is garbage and
//!   must be discarded).
//!
//! `tests/kernel_parity.rs` and the unit tests below pin this contract
//! with exact `u64`-bit comparisons, which is what lets the solvers switch
//! the default kernel path to the batched kernels while keeping every
//! FNV-1a golden unchanged (the scalar path remains as the reference
//! oracle behind `COLUMBIA_KERNELS=scalar`).
//!
//! # Singular lanes
//!
//! The scalar LU returns `Err` at the first vanishing pivot. A batch
//! cannot early-return one lane, so [`BlockBatch::lu`] flags the lane in
//! [`BlockLuBatch::ok`], replaces the offending pivot with `1.0` to keep
//! the lane's arithmetic finite (protecting the *other* lanes from NaN
//! contamination is automatic — lanes never mix), and carries on. Callers
//! must discard flagged lanes, which is precisely what the solvers'
//! scalar paths do with `Err` results.

use crate::block::BlockMat;
use crate::flops;

/// Number of interleaved lanes per batch. Four `f64` lanes are 32 bytes —
/// half a cache line per element group, and wide enough to cover SSE2
/// (2 x f64) and AVX (4 x f64) registers while keeping the per-batch
/// working set of a 6x6 block system inside L1.
pub const LANES: usize = 4;

/// Batch of per-point `N`-vectors, lane-interleaved: entry `r` of lane `l`
/// is `v[r][l]`.
pub type VecBatch<const N: usize> = [[f64; LANES]; N];

/// An all-zero [`VecBatch`].
#[inline]
pub fn vec_batch_zero<const N: usize>() -> VecBatch<N> {
    [[0.0; LANES]; N]
}

/// `LANES` dense `N x N` matrices stored interleaved (`a[r][c][l]`).
#[derive(Clone, Copy, Debug)]
pub struct BlockBatch<const N: usize> {
    a: [[[f64; LANES]; N]; N],
}

impl<const N: usize> Default for BlockBatch<N> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<const N: usize> BlockBatch<N> {
    /// All lanes zero.
    #[inline]
    pub fn zero() -> Self {
        BlockBatch {
            a: [[[0.0; LANES]; N]; N],
        }
    }

    /// All lanes identity.
    #[inline]
    pub fn identity() -> Self {
        let mut b = Self::zero();
        for i in 0..N {
            for l in 0..LANES {
                b.a[i][i][l] = 1.0;
            }
        }
        b
    }

    /// Scatter a scalar block into lane `l`.
    #[inline]
    pub fn set_lane(&mut self, l: usize, m: &BlockMat<N>) {
        for r in 0..N {
            for c in 0..N {
                self.a[r][c][l] = m.get(r, c);
            }
        }
    }

    /// Gather lane `l` back into a scalar block.
    #[inline]
    pub fn lane(&self, l: usize) -> BlockMat<N> {
        BlockMat::from_fn(|r, c| self.a[r][c][l])
    }

    /// Interleave up to `LANES` scalar blocks; unused lanes are identity
    /// (non-singular padding whose results the caller ignores).
    pub fn from_lanes(mats: &[BlockMat<N>]) -> Self {
        assert!(mats.len() <= LANES, "at most {LANES} lanes per batch");
        let mut b = Self::identity();
        for (l, m) in mats.iter().enumerate() {
            b.set_lane(l, m);
        }
        b
    }

    /// Element access (`(r, c)` of lane `l`).
    #[inline(always)]
    pub fn get(&self, r: usize, c: usize, l: usize) -> f64 {
        self.a[r][c][l]
    }

    /// Batched LU factorisation with per-lane partial pivoting.
    ///
    /// `nlanes` is the number of live lanes, used only for FLOP
    /// accounting (padding lanes do useless work that should not inflate
    /// the achieved-FLOP/s figures). Per lane the pivot search, row swap
    /// and elimination replicate [`BlockMat::lu`] operation-for-operation;
    /// see the module docs for the singular-lane convention.
    pub fn lu(&self, nlanes: usize) -> BlockLuBatch<N> {
        flops::add(nlanes as u64 * flops::lu_flops(N as u64));
        let mut lu = self.a;
        let mut piv = [[0usize; N]; LANES];
        for lane in piv.iter_mut() {
            for (i, p) in lane.iter_mut().enumerate() {
                *p = i;
            }
        }
        let mut ok = [true; LANES];
        for k in 0..N {
            // Pivot search and swap are inherently per-lane (data-dependent
            // row exchange); the scalar search is replicated exactly:
            // strict `>` keeps the earliest maximal row.
            for l in 0..LANES {
                let mut pk = k;
                let mut pmax = lu[k][k][l].abs();
                for r in (k + 1)..N {
                    let v = lu[r][k][l].abs();
                    if v > pmax {
                        pmax = v;
                        pk = r;
                    }
                }
                if pmax < 1e-300 {
                    // Scalar path would return Err here; neutralise the
                    // lane with a unit pivot and let the caller discard it.
                    ok[l] = false;
                    lu[k][k][l] = 1.0;
                    continue;
                }
                if pk != k {
                    for c in 0..N {
                        let t = lu[k][c][l];
                        lu[k][c][l] = lu[pk][c][l];
                        lu[pk][c][l] = t;
                    }
                    piv[l].swap(k, pk);
                }
            }
            // Lane-parallel elimination: the inner loops run over lanes.
            let mut inv_pivot = [0.0; LANES];
            for l in 0..LANES {
                inv_pivot[l] = 1.0 / lu[k][k][l];
            }
            for r in (k + 1)..N {
                let mut m = [0.0; LANES];
                for l in 0..LANES {
                    m[l] = lu[r][k][l] * inv_pivot[l];
                    lu[r][k][l] = m[l];
                }
                for c in (k + 1)..N {
                    for l in 0..LANES {
                        lu[r][c][l] -= m[l] * lu[k][c][l];
                    }
                }
            }
        }
        BlockLuBatch { lu, piv, ok }
    }

    /// `self -= a * b` per lane — the forward-elimination update
    /// `D'_i = D_i - L_i U'_{i-1}`.
    ///
    /// Accumulates the full product row into a temporary (ascending `k`,
    /// matching the scalar matmul's order) and subtracts once, exactly as
    /// the scalar `dmod -= li * uprev` does. `nlanes` counts FLOPs.
    pub fn mul_sub_assign(&mut self, a: &BlockBatch<N>, b: &BlockBatch<N>, nlanes: usize) {
        flops::add(nlanes as u64 * flops::matmul_flops(N as u64));
        for r in 0..N {
            let mut acc = [[0.0; LANES]; N];
            for k in 0..N {
                for c in 0..N {
                    for l in 0..LANES {
                        acc[c][l] += a.a[r][k][l] * b.a[k][c][l];
                    }
                }
            }
            for c in 0..N {
                for l in 0..LANES {
                    self.a[r][c][l] -= acc[c][l];
                }
            }
        }
    }

    /// Per-lane matrix-vector product `y = A x` (accumulate order as
    /// [`BlockMat::mul_vec`]).
    pub fn mul_vec(&self, x: &VecBatch<N>, nlanes: usize) -> VecBatch<N> {
        flops::add(nlanes as u64 * flops::matvec_flops(N as u64));
        let mut y = vec_batch_zero();
        for r in 0..N {
            let mut s = [0.0; LANES];
            for c in 0..N {
                for l in 0..LANES {
                    s[l] += self.a[r][c][l] * x[c][l];
                }
            }
            y[r] = s;
        }
        y
    }

    /// Per-lane fused `y -= A x` (accumulate-then-subtract, as
    /// [`BlockMat::mul_vec_sub`]).
    pub fn mul_vec_sub(&self, x: &VecBatch<N>, y: &mut VecBatch<N>, nlanes: usize) {
        flops::add(nlanes as u64 * flops::matvec_flops(N as u64));
        for r in 0..N {
            let mut s = [0.0; LANES];
            for c in 0..N {
                for l in 0..LANES {
                    s[l] += self.a[r][c][l] * x[c][l];
                }
            }
            for l in 0..LANES {
                y[r][l] -= s[l];
            }
        }
    }
}

/// Batched LU factorisation: per-lane factors, permutations and success
/// flags. Lanes with `ok[l] == false` hold garbage that the caller must
/// discard (the scalar path's `Err`).
#[derive(Clone, Copy, Debug)]
pub struct BlockLuBatch<const N: usize> {
    lu: [[[f64; LANES]; N]; N],
    piv: [[usize; N]; LANES],
    ok: [bool; LANES],
}

impl<const N: usize> BlockLuBatch<N> {
    /// Per-lane success flags.
    #[inline]
    pub fn ok(&self) -> &[bool; LANES] {
        &self.ok
    }

    /// True when every live lane factorised successfully.
    pub fn all_ok(&self, nlanes: usize) -> bool {
        self.ok[..nlanes].iter().all(|&b| b)
    }

    /// Per-lane triangular solve, operation-for-operation identical to
    /// [`crate::block::BlockLu::solve`]. `nlanes` counts FLOPs.
    pub fn solve(&self, b: &VecBatch<N>, nlanes: usize) -> VecBatch<N> {
        flops::add(nlanes as u64 * flops::solve_flops(N as u64));
        let mut x = vec_batch_zero();
        // Apply each lane's row permutation while loading b.
        for r in 0..N {
            for l in 0..LANES {
                x[r][l] = b[self.piv[l][r]][l];
            }
        }
        // Forward substitution, unit lower triangle. The scalar kernel
        // accumulates `s = x[r]; s -= ...; x[r] = s`; successive in-place
        // subtractions are the same operation sequence.
        for r in 1..N {
            for c in 0..r {
                for l in 0..LANES {
                    x[r][l] -= self.lu[r][c][l] * x[c][l];
                }
            }
        }
        // Backward substitution (the final division matches the scalar
        // `s / lu[r][r]` — no reciprocal strength reduction).
        for r in (0..N).rev() {
            for c in (r + 1)..N {
                for l in 0..LANES {
                    x[r][l] -= self.lu[r][c][l] * x[c][l];
                }
            }
            for l in 0..LANES {
                x[r][l] /= self.lu[r][r][l];
            }
        }
        x
    }

    /// Per-lane block right-hand-side solve, column-wise as
    /// [`crate::block::BlockLu::solve_mat`]. FLOPs count via the inner
    /// [`Self::solve`] calls.
    pub fn solve_mat(&self, b: &BlockBatch<N>, nlanes: usize) -> BlockBatch<N> {
        let mut out = BlockBatch::zero();
        for c in 0..N {
            let mut col = vec_batch_zero();
            for r in 0..N {
                for l in 0..LANES {
                    col[r][l] = b.a[r][c][l];
                }
            }
            let x = self.solve(&col, nlanes);
            for r in 0..N {
                for l in 0..LANES {
                    out.a[r][c][l] = x[r][l];
                }
            }
        }
        out
    }
}

/// Batched block-tridiagonal system: `LANES` equal-length lines solved in
/// lockstep, mirroring [`crate::tridiag::BlockTridiag`] per lane.
///
/// Implicit lines are vertex-disjoint, so solving several at once (and in
/// any order) is bit-safe; the solver groups lines of equal length into
/// batches — NSU3D's classic vectorisation strategy, here realised with
/// lane interleaving. Padding lanes (beyond `nlanes`) carry identity
/// diagonals and zero RHS so they factorise trivially and are ignored.
#[derive(Clone, Debug, Default)]
pub struct TridiagBatch<const N: usize> {
    lower: Vec<BlockBatch<N>>,
    diag: Vec<BlockBatch<N>>,
    upper: Vec<BlockBatch<N>>,
    rhs: Vec<VecBatch<N>>,
    // Scratch for the factorisation.
    upper_mod: Vec<BlockBatch<N>>,
    y: Vec<VecBatch<N>>,
    nlanes: usize,
}

impl<const N: usize> TridiagBatch<N> {
    /// Create an empty system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset to `n` block rows with `nlanes` live lanes. Diagonals start
    /// as identity in every lane (live lanes are overwritten row by row;
    /// padding lanes must stay non-singular), couplings and RHS as zero.
    pub fn reset(&mut self, n: usize, nlanes: usize) {
        assert!(
            (1..=LANES).contains(&nlanes),
            "nlanes must be in 1..={LANES}"
        );
        self.lower.clear();
        self.diag.clear();
        self.upper.clear();
        self.rhs.clear();
        self.lower.resize(n, BlockBatch::zero());
        self.diag.resize(n, BlockBatch::identity());
        self.upper.resize(n, BlockBatch::zero());
        self.rhs.resize(n, vec_batch_zero());
        self.nlanes = nlanes;
    }

    /// Number of block rows.
    pub fn len(&self) -> usize {
        self.diag.len()
    }

    /// True when the system has no rows.
    pub fn is_empty(&self) -> bool {
        self.diag.is_empty()
    }

    /// Number of live lanes.
    pub fn nlanes(&self) -> usize {
        self.nlanes
    }

    /// Set the diagonal block of row `i`, lane `l`.
    pub fn set_diag(&mut self, i: usize, l: usize, m: &BlockMat<N>) {
        self.diag[i].set_lane(l, m);
    }

    /// Set the sub-diagonal block of row `i`, lane `l` (couples to `i-1`).
    pub fn set_lower(&mut self, i: usize, l: usize, m: &BlockMat<N>) {
        self.lower[i].set_lane(l, m);
    }

    /// Set the super-diagonal block of row `i`, lane `l` (couples to `i+1`).
    pub fn set_upper(&mut self, i: usize, l: usize, m: &BlockMat<N>) {
        self.upper[i].set_lane(l, m);
    }

    /// Set the right-hand side of row `i`, lane `l`.
    pub fn set_rhs(&mut self, i: usize, l: usize, b: &[f64; N]) {
        for r in 0..N {
            self.rhs[i][r][l] = b[r];
        }
    }

    /// Solve all lanes, writing lane-interleaved solutions through `out`.
    ///
    /// Returns per-lane success flags: where the scalar
    /// [`crate::tridiag::BlockTridiag::solve_into`] returns `Err` (leaving
    /// the line un-updated), the corresponding lane comes back `false` and
    /// its output is garbage the caller must discard. The forward
    /// elimination and back substitution replicate the scalar kernel's
    /// operation order per lane; see the module docs.
    pub fn solve_into(&mut self, out: &mut [VecBatch<N>]) -> [bool; LANES] {
        let n = self.len();
        assert_eq!(out.len(), n, "output slice length mismatch");
        let mut ok = [true; LANES];
        if n == 0 {
            return ok;
        }
        let nl = self.nlanes;
        self.upper_mod.clear();
        self.upper_mod.resize(n, BlockBatch::zero());
        self.y.clear();
        self.y.resize(n, vec_batch_zero());

        // Forward elimination (per lane):
        //   U'_i = D'^-1_i U_i
        //   D'_i = D_i - L_i U'_{i-1}
        //   b'_i = b_i - L_i y_{i-1};  y_i = D'^-1_i b'_i
        let lu0 = self.diag[0].lu(nl);
        and_flags(&mut ok, lu0.ok());
        self.upper_mod[0] = lu0.solve_mat(&self.upper[0], nl);
        self.y[0] = lu0.solve(&self.rhs[0], nl);
        for i in 1..n {
            let mut dmod = self.diag[i];
            dmod.mul_sub_assign(&self.lower[i], &self.upper_mod[i - 1], nl);
            let lui = dmod.lu(nl);
            and_flags(&mut ok, lui.ok());
            let mut b = self.rhs[i];
            self.lower[i].mul_vec_sub(&self.y[i - 1], &mut b, nl);
            self.y[i] = lui.solve(&b, nl);
            if i + 1 < n {
                self.upper_mod[i] = lui.solve_mat(&self.upper[i], nl);
            }
        }

        // Back substitution: x_n = y_n; x_i = y_i - U'_i x_{i+1}
        out[n - 1] = self.y[n - 1];
        for i in (0..n - 1).rev() {
            let mut x = self.y[i];
            let corr = self.upper_mod[i].mul_vec(&out[i + 1], nl);
            for k in 0..N {
                for l in 0..LANES {
                    x[k][l] -= corr[k][l];
                }
            }
            out[i] = x;
        }
        ok
    }
}

#[inline]
fn and_flags(acc: &mut [bool; LANES], flags: &[bool; LANES]) {
    for l in 0..LANES {
        acc[l] &= flags[l];
    }
}

/// Plain structure-of-arrays state storage: `N` contiguous component
/// planes of `len` points each (`plane(k)[i]` is component `k` of point
/// `i`). This is the *resident* representation of solver state: the RANS
/// and Euler levels keep `u`/`res`/forcing/gradients in these planes,
/// the halo exchange packs and unpacks entries straight out of them
/// (`columbia_comm`'s `HaloField`), and the cache-blocked sweeps stream
/// over plane chunks. Per-point access goes through [`SoaStates::get`] /
/// [`SoaStates::set`] / [`SoaStates::point_mut`], which gather a block
/// `[f64; N]` in component order — reading a gathered block and operating
/// on it is bit-identical to the old AoS access, so kernels migrated from
/// `Vec<[f64; N]>` keep their digests.
#[derive(Clone, Debug)]
pub struct SoaStates<const N: usize> {
    data: Vec<f64>,
    len: usize,
}

impl<const N: usize> SoaStates<N> {
    /// Zero-initialised storage for `len` points.
    pub fn zeros(len: usize) -> Self {
        SoaStates {
            data: vec![0.0; N * len],
            len,
        }
    }

    /// Transpose from array-of-blocks layout.
    pub fn from_aos(aos: &[[f64; N]]) -> Self {
        let mut s = Self::zeros(aos.len());
        for (i, blk) in aos.iter().enumerate() {
            for k in 0..N {
                s.data[k * s.len + i] = blk[k];
            }
        }
        s
    }

    /// Transpose back into array-of-blocks layout.
    pub fn to_aos(&self) -> Vec<[f64; N]> {
        let mut out = vec![[0.0; N]; self.len];
        for (i, blk) in out.iter_mut().enumerate() {
            for (k, v) in blk.iter_mut().enumerate() {
                *v = self.data[k * self.len + i];
            }
        }
        out
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the container holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Component plane `k` (contiguous over points).
    pub fn plane(&self, k: usize) -> &[f64] {
        &self.data[k * self.len..(k + 1) * self.len]
    }

    /// Mutable component plane `k`.
    pub fn plane_mut(&mut self, k: usize) -> &mut [f64] {
        &mut self.data[k * self.len..(k + 1) * self.len]
    }

    /// `self += a x` over every component plane. Element-wise, so the
    /// result is bit-identical to the AoS AXPY regardless of traversal
    /// order; the layouts differ only in memory-stream behaviour.
    pub fn axpy(&mut self, a: f64, x: &SoaStates<N>) {
        assert_eq!(self.len, x.len, "SoA axpy length mismatch");
        crate::vecops::axpy_flat(a, &x.data, &mut self.data);
    }

    /// Gather point `i` as a block, in component order.
    #[inline]
    pub fn get(&self, i: usize) -> [f64; N] {
        debug_assert!(i < self.len);
        let mut out = [0.0; N];
        for (k, v) in out.iter_mut().enumerate() {
            *v = self.data[k * self.len + i];
        }
        out
    }

    /// Scatter a block into point `i`, in component order.
    #[inline]
    pub fn set(&mut self, i: usize, v: &[f64; N]) {
        debug_assert!(i < self.len);
        for (k, x) in v.iter().enumerate() {
            self.data[k * self.len + i] = *x;
        }
    }

    /// Component `k` of point `i`.
    #[inline]
    pub fn at(&self, k: usize, i: usize) -> f64 {
        debug_assert!(k < N && i < self.len);
        self.data[k * self.len + i]
    }

    /// Mutable component `k` of point `i`.
    #[inline]
    pub fn at_mut(&mut self, k: usize, i: usize) -> &mut f64 {
        debug_assert!(k < N && i < self.len);
        &mut self.data[k * self.len + i]
    }

    /// Set every point to the same block (freestream init).
    pub fn fill_with(&mut self, v: &[f64; N]) {
        for k in 0..N {
            self.plane_mut(k).fill(v[k]);
        }
    }

    /// Zero every plane.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Plane-wise memcpy from another container of the same length.
    pub fn copy_from(&mut self, other: &SoaStates<N>) {
        assert_eq!(self.len, other.len, "SoA copy length mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// All `N` planes at once as disjoint mutable slices, for sweeps that
    /// update several components per pass without re-borrowing.
    pub fn planes_mut(&mut self) -> [&mut [f64]; N] {
        let len = self.len;
        let mut out: [&mut [f64]; N] = [(); N].map(|_| Default::default());
        if len == 0 {
            return out;
        }
        for (k, chunk) in self.data.chunks_exact_mut(len).enumerate() {
            out[k] = chunk;
        }
        out
    }

    /// Per-point mutable view for boundary fixups: load/store the whole
    /// block or poke single components without exposing the planes.
    #[inline]
    pub fn point_mut(&mut self, i: usize) -> PointMut<'_, N> {
        debug_assert!(i < self.len);
        PointMut { states: self, i }
    }

    /// Gather the indexed points (ghost lists) into a block buffer, in
    /// index order.
    pub fn gather(&self, idx: &[u32], out: &mut [[f64; N]]) {
        assert_eq!(idx.len(), out.len(), "SoA gather length mismatch");
        for (o, &i) in out.iter_mut().zip(idx.iter()) {
            *o = self.get(i as usize);
        }
    }

    /// Scatter block values into the indexed points, in index order.
    pub fn scatter(&mut self, idx: &[u32], vals: &[[f64; N]]) {
        assert_eq!(idx.len(), vals.len(), "SoA scatter length mismatch");
        for (v, &i) in vals.iter().zip(idx.iter()) {
            self.set(i as usize, v);
        }
    }
}

/// Mutable view of one point of a [`SoaStates`]: the per-vertex boundary
/// fixups (BC rows, positivity clamps) load the block, edit components,
/// and store it back — the same component-ordered reads and writes the
/// AoS `&mut [f64; N]` access performed.
pub struct PointMut<'a, const N: usize> {
    states: &'a mut SoaStates<N>,
    i: usize,
}

impl<const N: usize> PointMut<'_, N> {
    /// Gather the point's block.
    #[inline]
    pub fn load(&self) -> [f64; N] {
        self.states.get(self.i)
    }

    /// Scatter a block back into the point.
    #[inline]
    pub fn store(&mut self, v: &[f64; N]) {
        self.states.set(self.i, v);
    }

    /// Component `k`.
    #[inline]
    pub fn get(&self, k: usize) -> f64 {
        self.states.at(k, self.i)
    }

    /// Overwrite component `k`.
    #[inline]
    pub fn set(&mut self, k: usize, v: f64) {
        *self.states.at_mut(k, self.i) = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::LinalgError;
    use crate::tridiag::BlockTridiag;

    fn bits<const N: usize>(v: &[f64; N]) -> [u64; N] {
        let mut out = [0u64; N];
        for (o, x) in out.iter_mut().zip(v.iter()) {
            *o = x.to_bits();
        }
        out
    }

    fn seeded_mat<const N: usize>(seed: u64) -> BlockMat<N> {
        let mut s = seed;
        BlockMat::from_fn(|_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (s >> 11) as f64 / (1u64 << 53) as f64;
            2.0 * u - 1.0
        })
    }

    #[test]
    fn lane_roundtrip_preserves_bits() {
        let m = seeded_mat::<6>(7);
        let mut b = BlockBatch::<6>::zero();
        b.set_lane(2, &m);
        assert_eq!(b.lane(2), m);
    }

    #[test]
    fn batched_lu_solve_is_bit_identical_per_lane() {
        let mats: Vec<BlockMat<6>> = (0..LANES as u64)
            .map(|s| {
                let mut m = seeded_mat::<6>(s + 1);
                m.add_diagonal(6.0);
                m
            })
            .collect();
        let rhs_scalar: Vec<[f64; 6]> = (0..LANES)
            .map(|l| {
                let mut b = [0.0; 6];
                for (k, v) in b.iter_mut().enumerate() {
                    *v = (l as f64 + 1.0) * 0.37 - k as f64;
                }
                b
            })
            .collect();
        let batch = BlockBatch::from_lanes(&mats);
        let mut rhs = vec_batch_zero::<6>();
        for (l, b) in rhs_scalar.iter().enumerate() {
            for r in 0..6 {
                rhs[r][l] = b[r];
            }
        }
        let lu = batch.lu(LANES);
        assert!(lu.all_ok(LANES));
        let x = lu.solve(&rhs, LANES);
        for l in 0..LANES {
            let xs = mats[l].lu().unwrap().solve(&rhs_scalar[l]);
            let mut xb = [0.0; 6];
            for r in 0..6 {
                xb[r] = x[r][l];
            }
            assert_eq!(bits(&xs), bits(&xb), "lane {l} diverged");
        }
    }

    #[test]
    fn pivoting_lanes_diverge_independently() {
        // Lane 0 needs a row swap at column 0; lane 1 does not.
        let mut m0 = BlockMat::<3>::from_fn(|r, c| if r == c { 1.0 } else { 0.1 });
        m0.set(0, 0, 1e-8);
        m0.set(2, 0, 5.0); // forces pivot row 2 in lane 0
        let m1 = BlockMat::<3>::from_fn(|r, c| if r == c { 3.0 } else { 0.2 });
        let batch = BlockBatch::from_lanes(&[m0, m1]);
        let lu = batch.lu(2);
        assert!(lu.all_ok(2));
        let b = [1.0, 2.0, 3.0];
        let mut rb = vec_batch_zero::<3>();
        for l in 0..2 {
            for r in 0..3 {
                rb[r][l] = b[r];
            }
        }
        let x = lu.solve(&rb, 2);
        for (l, m) in [m0, m1].iter().enumerate() {
            let xs = m.lu().unwrap().solve(&b);
            for r in 0..3 {
                assert_eq!(xs[r].to_bits(), x[r][l].to_bits(), "lane {l} row {r}");
            }
        }
    }

    #[test]
    fn singular_lane_is_flagged_and_others_unharmed() {
        let good = {
            let mut m = seeded_mat::<4>(11);
            m.add_diagonal(5.0);
            m
        };
        // Column 1 identically zero => singular at elimination column 1.
        let bad = BlockMat::<4>::from_fn(|r, c| if c == 1 { 0.0 } else { (r + c) as f64 + 1.0 });
        assert!(matches!(bad.lu(), Err(LinalgError::Singular { .. })));
        let batch = BlockBatch::from_lanes(&[good, bad]);
        let lu = batch.lu(2);
        assert!(lu.ok()[0] && !lu.ok()[1]);
        let b = [1.0, -2.0, 3.0, -4.0];
        let mut rb = vec_batch_zero::<4>();
        for r in 0..4 {
            rb[r][0] = b[r];
            rb[r][1] = b[r];
        }
        let x = lu.solve(&rb, 2);
        let xs = good.lu().unwrap().solve(&b);
        for r in 0..4 {
            assert_eq!(xs[r].to_bits(), x[r][0].to_bits(), "good lane polluted");
            assert!(x[r][1].is_finite(), "flagged lane must stay finite");
        }
    }

    #[test]
    fn tridiag_batch_matches_scalar_bitwise() {
        let n = 9;
        let nlanes = 3; // deliberately under-full: padding lane in play
        let mut scalar = BlockTridiag::<4>::new();
        let mut batch = TridiagBatch::<4>::new();
        batch.reset(n, nlanes);
        let mut scalar_x: Vec<Vec<[f64; 4]>> = Vec::new();
        for l in 0..nlanes {
            scalar.reset(n);
            for i in 0..n {
                let mut d = seeded_mat::<4>((l * n + i) as u64 + 1);
                d.add_diagonal(9.0);
                *scalar.diag_mut(i) = d;
                batch.set_diag(i, l, &d);
                if i > 0 {
                    let lo = seeded_mat::<4>((l * n + i) as u64 + 101);
                    *scalar.lower_mut(i) = lo;
                    batch.set_lower(i, l, &lo);
                }
                if i + 1 < n {
                    let up = seeded_mat::<4>((l * n + i) as u64 + 201);
                    *scalar.upper_mut(i) = up;
                    batch.set_upper(i, l, &up);
                }
                let mut b = [0.0; 4];
                for (k, v) in b.iter_mut().enumerate() {
                    *v = (i as f64 - k as f64) * 0.21 + l as f64;
                }
                *scalar.rhs_mut(i) = b;
                batch.set_rhs(i, l, &b);
            }
            let mut x = vec![[0.0; 4]; n];
            scalar.solve_into(&mut x).unwrap();
            scalar_x.push(x);
        }
        let mut xb = vec![vec_batch_zero::<4>(); n];
        let ok = batch.solve_into(&mut xb);
        assert!(ok[..nlanes].iter().all(|&b| b));
        for (l, xs) in scalar_x.iter().enumerate() {
            for i in 0..n {
                for k in 0..4 {
                    assert_eq!(
                        xs[i][k].to_bits(),
                        xb[i][k][l].to_bits(),
                        "lane {l} row {i} comp {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn tridiag_singular_lane_flags_only_that_lane() {
        let mut batch = TridiagBatch::<2>::new();
        batch.reset(2, 2);
        // Lane 0: healthy. Lane 1: zero diagonal at row 1 => singular.
        let d = BlockMat::<2>::scaled_identity(4.0);
        for i in 0..2 {
            batch.set_diag(i, 0, &d);
            batch.set_rhs(i, 0, &[1.0, 2.0]);
        }
        batch.set_diag(0, 1, &d);
        batch.set_diag(1, 1, &BlockMat::zero());
        let mut x = vec![vec_batch_zero::<2>(); 2];
        let ok = batch.solve_into(&mut x);
        assert!(ok[0] && !ok[1]);
        for row in &x {
            for k in 0..2 {
                assert!((row[k][0] - [0.25, 0.5][k]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn soa_roundtrip_and_axpy_match_aos_bits() {
        let n = 37;
        let aos_x: Vec<[f64; 5]> = (0..n)
            .map(|i| {
                let mut b = [0.0; 5];
                for (k, v) in b.iter_mut().enumerate() {
                    *v = (i as f64 * 1.7 - k as f64 * 0.3).sin();
                }
                b
            })
            .collect();
        let mut aos_y: Vec<[f64; 5]> = aos_x.iter().map(|b| b.map(|v| v * 0.5 + 1.0)).collect();
        let sx = SoaStates::<5>::from_aos(&aos_x);
        let mut sy = SoaStates::<5>::from_aos(&aos_y);
        assert_eq!(sx.to_aos(), aos_x);
        let a = 0.731;
        crate::vecops::axpy(a, &aos_x, &mut aos_y);
        sy.axpy(a, &sx);
        let back = sy.to_aos();
        for i in 0..n {
            for k in 0..5 {
                assert_eq!(back[i][k].to_bits(), aos_y[i][k].to_bits());
            }
        }
    }

    /// Deterministic edge lengths: empty and shorter-than-LANES containers
    /// must round-trip, gather, scatter, and bulk-fill without panicking
    /// or perturbing a bit.
    #[test]
    fn soa_len_zero_and_sub_lane_lengths() {
        for len in [0usize, 1, 2, LANES - 1] {
            let aos: Vec<[f64; 6]> = (0..len)
                .map(|i| {
                    let mut b = [0.0; 6];
                    for (k, v) in b.iter_mut().enumerate() {
                        *v = (i as f64 * 2.9 + k as f64 * 0.7).cos();
                    }
                    b
                })
                .collect();
            let mut s = SoaStates::<6>::from_aos(&aos);
            assert_eq!(s.len(), len);
            assert_eq!(s.is_empty(), len == 0);
            assert_eq!(s.to_aos(), aos);
            let planes = s.planes_mut();
            for p in planes.iter() {
                assert_eq!(p.len(), len);
            }
            let idx: Vec<u32> = (0..len as u32).rev().collect();
            let mut gathered = vec![[0.0; 6]; len];
            s.gather(&idx, &mut gathered);
            for (g, &i) in gathered.iter().zip(idx.iter()) {
                assert_eq!(bits(g), bits(&aos[i as usize]));
            }
            let mut t = SoaStates::<6>::zeros(len);
            t.scatter(&idx, &gathered);
            assert_eq!(t.to_aos(), aos);
            t.fill_with(&[3.25, -1.5, 0.0, 7.0, -0.125, 2.0]);
            for i in 0..len {
                assert_eq!(t.get(i), [3.25, -1.5, 0.0, 7.0, -0.125, 2.0]);
            }
            t.fill_zero();
            assert_eq!(t.to_aos(), vec![[0.0; 6]; len]);
        }
    }

    columbia_rt::props! {
        /// Remainder-lane lengths (0, < LANES, non-multiples of LANES):
        /// from_aos/to_aos round-trips, gather/scatter of every point, the
        /// per-point views, and AXPY are all bit-identical to the AoS
        /// reference at any length.
        fn prop_soa_remainder_lane_bit_identity(
            len in 0usize..(3 * LANES + 3),
            seed in columbia_rt::props::array::<_, 16>(-4.0f64..4.0),
            a in -2.0f64..2.0,
        ) {
            let aos_x: Vec<[f64; 5]> = (0..len)
                .map(|i| {
                    let mut b = [0.0; 5];
                    for (k, v) in b.iter_mut().enumerate() {
                        *v = seed[(i * 5 + k) % 16] * (1.0 + i as f64 * 0.01);
                    }
                    b
                })
                .collect();
            let mut aos_y: Vec<[f64; 5]> =
                aos_x.iter().map(|b| b.map(|v| v * 0.5 - 0.25)).collect();
            let sx = SoaStates::<5>::from_aos(&aos_x);
            let mut sy = SoaStates::<5>::from_aos(&aos_y);

            // Round-trip.
            assert_eq!(sx.to_aos(), aos_x);

            // Gather/scatter round-trip over a shuffled ghost list.
            let idx: Vec<u32> =
                (0..len as u32).map(|i| (i * 7 + 3) % len.max(1) as u32).collect();
            let mut gathered = vec![[0.0; 5]; len];
            sx.gather(&idx, &mut gathered);
            for (g, &i) in gathered.iter().zip(idx.iter()) {
                assert_eq!(bits(g), bits(&aos_x[i as usize]));
            }
            let mut scat = SoaStates::<5>::zeros(len);
            scat.scatter(&idx, &gathered);
            for &i in &idx {
                assert_eq!(bits(&scat.get(i as usize)), bits(&aos_x[i as usize]));
            }

            // Per-point views agree with AoS indexing.
            for (i, blk) in aos_x.iter().enumerate() {
                assert_eq!(bits(&sx.get(i)), bits(blk));
                for (k, v) in blk.iter().enumerate() {
                    assert_eq!(sx.at(k, i).to_bits(), v.to_bits());
                }
            }

            // AXPY matches the AoS reference bit-for-bit.
            crate::vecops::axpy(a, &aos_x, &mut aos_y);
            sy.axpy(a, &sx);
            let back = sy.to_aos();
            for (b, r) in back.iter().zip(aos_y.iter()) {
                assert_eq!(bits(b), bits(r));
            }
        }
    }
}
