//! Small dense block linear-algebra kernels used by the implicit flow solvers.
//!
//! The NSU3D-style solver (crate `columbia-rans`) stores six unknowns per
//! grid point and requires, at every nonlinear iteration,
//!
//! * inversion of a dense 6x6 block at each grid point (point-implicit
//!   smoothing), and
//! * a block-tridiagonal LU decomposition along each implicit line in
//!   stretched boundary-layer regions (line-implicit smoothing).
//!
//! Both kernels are provided here over a const-generic block size `N` so the
//! Cart3D-style solver (5 unknowns per cell) can share them.
//!
//! The kernels are deliberately allocation-free in their hot paths: matrices
//! are plain `[f64; N*N]`-backed values, and the tridiagonal solver works in
//! caller-provided scratch storage so it can be reused across the thousands
//! of lines in a mesh.

#![allow(clippy::needless_range_loop)] // index loops mirror the stencil/block structure of the kernels
#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0.0)` deliberately catches NaNs

pub mod block;
pub mod flops;
pub mod soa;
pub mod tridiag;
pub mod vecops;

pub use block::{BlockLu, BlockMat, LinalgError};
pub use soa::{BlockBatch, BlockLuBatch, SoaStates, TridiagBatch, VecBatch, LANES};
pub use tridiag::BlockTridiag;
