//! Block-tridiagonal LU solver (block Thomas algorithm).
//!
//! This is the computational core of NSU3D's line-implicit smoother: along
//! each implicit line of `n` grid points the linearised system couples each
//! point to its two line neighbours through dense `N x N` blocks
//!
//! ```text
//!   | D0 U0          | x0     b0
//!   | L1 D1 U1       | x1   = b1
//!   |    L2 D2 U2    | x2     b2
//!   |       ...      | ..     ..
//! ```
//!
//! The factorisation is the standard block forward elimination; no pivoting
//! across blocks is performed (the diagonal blocks carry a `V/dt` term that
//! makes them strongly dominant in practice), but each diagonal block is
//! factorised with partially pivoted LU internally.

use crate::block::{BlockLu, BlockMat, LinalgError};

/// Reusable block-tridiagonal system of variable length.
///
/// The struct owns growable storage so a single instance can be reused for
/// every line in the mesh without reallocating (lines are solved serially
/// within a partition, in line-length-sorted batches, mirroring NSU3D's
/// vectorisation strategy).
#[derive(Clone, Debug, Default)]
pub struct BlockTridiag<const N: usize> {
    lower: Vec<BlockMat<N>>,
    diag: Vec<BlockMat<N>>,
    upper: Vec<BlockMat<N>>,
    rhs: Vec<[f64; N]>,
    // Scratch for the factorisation.
    diag_lu: Vec<Option<BlockLu<N>>>,
    upper_mod: Vec<BlockMat<N>>,
    // Forward-substitution scratch, persistent so steady-state line
    // solves never touch the allocator.
    y: Vec<[f64; N]>,
}

impl<const N: usize> BlockTridiag<N> {
    /// Create an empty system.
    pub fn new() -> Self {
        Self {
            lower: Vec::new(),
            diag: Vec::new(),
            upper: Vec::new(),
            rhs: Vec::new(),
            diag_lu: Vec::new(),
            upper_mod: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Reset to a system of length `n` with zero blocks and zero RHS.
    pub fn reset(&mut self, n: usize) {
        self.lower.clear();
        self.diag.clear();
        self.upper.clear();
        self.rhs.clear();
        self.lower.resize(n, BlockMat::zero());
        self.diag.resize(n, BlockMat::zero());
        self.upper.resize(n, BlockMat::zero());
        self.rhs.resize(n, [0.0; N]);
    }

    /// Number of block rows.
    pub fn len(&self) -> usize {
        self.diag.len()
    }

    /// True when the system has no rows.
    pub fn is_empty(&self) -> bool {
        self.diag.is_empty()
    }

    /// Mutable access to the sub-diagonal block of row `i` (couples to `i-1`).
    pub fn lower_mut(&mut self, i: usize) -> &mut BlockMat<N> {
        &mut self.lower[i]
    }

    /// Mutable access to the diagonal block of row `i`.
    pub fn diag_mut(&mut self, i: usize) -> &mut BlockMat<N> {
        &mut self.diag[i]
    }

    /// Mutable access to the super-diagonal block of row `i` (couples to `i+1`).
    pub fn upper_mut(&mut self, i: usize) -> &mut BlockMat<N> {
        &mut self.upper[i]
    }

    /// Mutable access to the right-hand side of row `i`.
    pub fn rhs_mut(&mut self, i: usize) -> &mut [f64; N] {
        &mut self.rhs[i]
    }

    /// Solve the system in place, writing the solution through `out`.
    ///
    /// `out` must have length `self.len()`. The contents of the blocks are
    /// preserved (the factorisation uses internal scratch), so the system
    /// may be re-solved with a different RHS by mutating `rhs_mut` only.
    pub fn solve_into(&mut self, out: &mut [[f64; N]]) -> Result<(), LinalgError> {
        let n = self.len();
        assert_eq!(out.len(), n, "output slice length mismatch");
        if n == 0 {
            return Ok(());
        }
        self.diag_lu.clear();
        self.diag_lu.resize(n, None);
        self.upper_mod.clear();
        self.upper_mod.resize(n, BlockMat::zero());
        self.y.clear();
        self.y.resize(n, [0.0; N]);

        // Forward elimination:
        //   D'_0 = D_0
        //   U'_i = D'^-1_i U_i
        //   D'_i = D_i - L_i U'_{i-1}
        //   b'_i = b_i - L_i (D'^-1_{i-1} b'_{i-1})
        let lu0 = self.diag[0].lu()?;
        self.upper_mod[0] = lu0.solve_mat(&self.upper[0]);
        self.y[0] = lu0.solve(&self.rhs[0]);
        self.diag_lu[0] = Some(lu0);
        for i in 1..n {
            // D'_i = D_i - L_i * U'_{i-1}
            let mut dmod = self.diag[i];
            let li = self.lower[i];
            let uprev = self.upper_mod[i - 1];
            dmod -= li * uprev;
            let lui = dmod.lu()?;
            // b'_i = b_i - L_i y_{i-1}; y_i = D'^-1_i b'_i
            let mut b = self.rhs[i];
            li.mul_vec_sub(&self.y[i - 1], &mut b);
            self.y[i] = lui.solve(&b);
            if i + 1 < n {
                self.upper_mod[i] = lui.solve_mat(&self.upper[i]);
            }
            self.diag_lu[i] = Some(lui);
        }

        // Back substitution: x_n = y_n; x_i = y_i - U'_i x_{i+1}
        out[n - 1] = self.y[n - 1];
        for i in (0..n - 1).rev() {
            let mut x = self.y[i];
            let ui = self.upper_mod[i];
            let xi1 = out[i + 1];
            let corr = ui.mul_vec(&xi1);
            for k in 0..N {
                x[k] -= corr[k];
            }
            out[i] = x;
        }
        Ok(())
    }

    /// Compute the residual `b - A x` for verification purposes.
    pub fn residual(&self, x: &[[f64; N]]) -> Vec<[f64; N]> {
        let n = self.len();
        let mut r = self.rhs.clone();
        for i in 0..n {
            self.diag[i].mul_vec_sub(&x[i], &mut r[i]);
            if i > 0 {
                self.lower[i].mul_vec_sub(&x[i - 1], &mut r[i]);
            }
            if i + 1 < n {
                self.upper[i].mul_vec_sub(&x[i + 1], &mut r[i]);
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs<const N: usize>(r: &[[f64; N]]) -> f64 {
        r.iter()
            .flat_map(|row| row.iter())
            .fold(0.0f64, |m, v| m.max(v.abs()))
    }

    #[test]
    fn single_block_row_reduces_to_dense_solve() {
        let mut t = BlockTridiag::<3>::new();
        t.reset(1);
        *t.diag_mut(0) = BlockMat::from_fn(|r, c| if r == c { 5.0 } else { 1.0 });
        *t.rhs_mut(0) = [1.0, 2.0, 3.0];
        let mut x = vec![[0.0; 3]; 1];
        t.solve_into(&mut x).unwrap();
        assert!(max_abs(&t.residual(&x)) < 1e-12);
    }

    #[test]
    fn scalar_tridiagonal_matches_thomas() {
        // N = 1 degenerates to the scalar Thomas algorithm; compare to a
        // hand-rolled reference on a Poisson-like [-1 2 -1] system.
        let n = 50;
        let mut t = BlockTridiag::<1>::new();
        t.reset(n);
        for i in 0..n {
            t.diag_mut(i).set(0, 0, 2.0);
            if i > 0 {
                t.lower_mut(i).set(0, 0, -1.0);
            }
            if i + 1 < n {
                t.upper_mut(i).set(0, 0, -1.0);
            }
            t.rhs_mut(i)[0] = 1.0;
        }
        let mut x = vec![[0.0; 1]; n];
        t.solve_into(&mut x).unwrap();
        assert!(max_abs(&t.residual(&x)) < 1e-9);
        // Poisson with unit load: solution is a parabola, maximum near centre.
        let mid = x[n / 2][0];
        assert!(x[0][0] < mid && x[n - 1][0] < mid);
    }

    #[test]
    fn empty_system_is_ok() {
        let mut t = BlockTridiag::<6>::new();
        t.reset(0);
        let mut x: Vec<[f64; 6]> = vec![];
        t.solve_into(&mut x).unwrap();
    }

    #[test]
    fn reuse_across_resets_gives_fresh_system() {
        let mut t = BlockTridiag::<2>::new();
        t.reset(3);
        for i in 0..3 {
            *t.diag_mut(i) = BlockMat::scaled_identity(4.0);
            t.rhs_mut(i)[0] = 1.0;
        }
        let mut x = vec![[0.0; 2]; 3];
        t.solve_into(&mut x).unwrap();
        // Second, different system after reset: confirm no stale state.
        t.reset(2);
        for i in 0..2 {
            *t.diag_mut(i) = BlockMat::scaled_identity(2.0);
            t.rhs_mut(i)[1] = 2.0;
        }
        let mut x2 = vec![[0.0; 2]; 2];
        t.solve_into(&mut x2).unwrap();
        for row in &x2 {
            assert!((row[0] - 0.0).abs() < 1e-12 && (row[1] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_diag_errors() {
        let mut t = BlockTridiag::<2>::new();
        t.reset(2);
        *t.diag_mut(0) = BlockMat::identity();
        // diag(1) left zero and no coupling => singular
        let mut x = vec![[0.0; 2]; 2];
        assert!(t.solve_into(&mut x).is_err());
    }

    columbia_rt::props! {
        /// Random diagonally-dominant block tridiagonal systems solve to a
        /// small residual.
        fn prop_solve_residual_small(
            n in 1usize..12,
            seed in columbia_rt::props::array::<_, 32>(-1.0f64..1.0),
        ) {
            let mut t = BlockTridiag::<4>::new();
            t.reset(n);
            let mut s = 0usize;
            let mut next = || { s = (s * 31 + 7) % 32; seed[s] };
            for i in 0..n {
                let mut d = BlockMat::<4>::from_fn(|_, _| next());
                d.add_diagonal(10.0);
                *t.diag_mut(i) = d;
                if i > 0 {
                    *t.lower_mut(i) = BlockMat::from_fn(|_, _| next() * 0.5);
                }
                if i + 1 < n {
                    *t.upper_mut(i) = BlockMat::from_fn(|_, _| next() * 0.5);
                }
                *t.rhs_mut(i) = [next(), next(), next(), next()];
            }
            let mut x = vec![[0.0; 4]; n];
            t.solve_into(&mut x).unwrap();
            assert!(max_abs(&t.residual(&x)) < 1e-8);
        }
    }
}
