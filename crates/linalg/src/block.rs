//! Dense `N x N` block matrices with LU factorisation.
//!
//! `N` is a const generic; the flow solvers instantiate `N = 6` (RANS:
//! density, three momenta, energy, turbulence working variable) and `N = 5`
//! (Euler). Storage is row-major and inline, so a `BlockMat<6>` is 288
//! bytes and lives happily inside per-point arrays without indirection.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// Error type for the dense kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// A pivot smaller than the singularity threshold was encountered.
    ///
    /// All indices refer to the *original* (unpivoted) matrix: partial
    /// pivoting permutes rows only, so `col` is both the elimination step
    /// and the original column whose pivot candidates all vanished, and
    /// `row` is the original row index that the permutation had brought to
    /// the pivot position when factorisation broke down. Solver
    /// diagnostics can therefore point at the right unknown (`col`) and
    /// the right equation (`row`) without undoing any permutation.
    Singular {
        /// Original column index at which factorisation broke down.
        col: usize,
        /// Original row index occupying the pivot position at breakdown.
        row: usize,
        /// Number of row swaps performed before the breakdown.
        swaps: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular { col, row, swaps } => {
                write!(
                    f,
                    "singular block matrix (pivot underflow in original column {col}, \
                     original row {row}, after {swaps} row swaps)"
                )
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Dense row-major `N x N` matrix of `f64`.
#[derive(Clone, Copy, PartialEq)]
pub struct BlockMat<const N: usize> {
    a: [[f64; N]; N],
}

impl<const N: usize> fmt::Debug for BlockMat<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BlockMat<{N}> [")?;
        for r in 0..N {
            writeln!(f, "  {:?}", self.a[r])?;
        }
        write!(f, "]")
    }
}

impl<const N: usize> Default for BlockMat<N> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<const N: usize> BlockMat<N> {
    /// The zero matrix.
    #[inline]
    pub fn zero() -> Self {
        BlockMat { a: [[0.0; N]; N] }
    }

    /// The identity matrix.
    #[inline]
    pub fn identity() -> Self {
        let mut m = Self::zero();
        for i in 0..N {
            m.a[i][i] = 1.0;
        }
        m
    }

    /// A diagonal matrix with constant value `d`.
    #[inline]
    pub fn scaled_identity(d: f64) -> Self {
        let mut m = Self::zero();
        for i in 0..N {
            m.a[i][i] = d;
        }
        m
    }

    /// Build from a row-major closure.
    #[inline]
    pub fn from_fn(mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zero();
        for r in 0..N {
            for c in 0..N {
                m.a[r][c] = f(r, c);
            }
        }
        m
    }

    /// Element access.
    #[inline(always)]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.a[r][c]
    }

    /// Mutable element access.
    #[inline(always)]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.a[r][c]
    }

    /// Set an element.
    #[inline(always)]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.a[r][c] = v;
    }

    /// Add `v` to the diagonal (used to add `V/dt` terms to flux Jacobians).
    #[inline]
    pub fn add_diagonal(&mut self, v: f64) {
        for i in 0..N {
            self.a[i][i] += v;
        }
    }

    /// Matrix-vector product `y = A x`.
    #[inline]
    pub fn mul_vec(&self, x: &[f64; N]) -> [f64; N] {
        crate::flops::add(crate::flops::matvec_flops(N as u64));
        let mut y = [0.0; N];
        for r in 0..N {
            let mut s = 0.0;
            for c in 0..N {
                s += self.a[r][c] * x[c];
            }
            y[r] = s;
        }
        y
    }

    /// `y -= A x`, fused to avoid a temporary in the tridiagonal sweeps.
    #[inline]
    pub fn mul_vec_sub(&self, x: &[f64; N], y: &mut [f64; N]) {
        crate::flops::add(crate::flops::matvec_flops(N as u64));
        for r in 0..N {
            let mut s = 0.0;
            for c in 0..N {
                s += self.a[r][c] * x[c];
            }
            y[r] -= s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        let mut s = 0.0;
        for r in 0..N {
            for c in 0..N {
                s += self.a[r][c] * self.a[r][c];
            }
        }
        s.sqrt()
    }

    /// Transpose.
    pub fn transpose(&self) -> Self {
        Self::from_fn(|r, c| self.a[c][r])
    }

    /// LU factorisation with partial pivoting.
    ///
    /// Returns an error if a pivot underflows the singularity threshold
    /// (`1e-300`), which in the solvers indicates a catastrophically bad
    /// Jacobian (e.g. vacuum state).
    pub fn lu(&self) -> Result<BlockLu<N>, LinalgError> {
        crate::flops::add(crate::flops::lu_flops(N as u64));
        let mut lu = self.a;
        let mut piv = [0usize; N];
        for (i, p) in piv.iter_mut().enumerate() {
            *p = i;
        }
        let mut swaps = 0usize;
        for k in 0..N {
            // Partial pivot: find the largest magnitude entry in column k.
            let mut pk = k;
            let mut pmax = lu[k][k].abs();
            for r in (k + 1)..N {
                let v = lu[r][k].abs();
                if v > pmax {
                    pmax = v;
                    pk = r;
                }
            }
            if pmax < 1e-300 {
                // Columns are never permuted, so k is the original column;
                // piv[k] is the original row the swaps parked here.
                return Err(LinalgError::Singular {
                    col: k,
                    row: piv[k],
                    swaps,
                });
            }
            if pk != k {
                lu.swap(k, pk);
                piv.swap(k, pk);
                swaps += 1;
            }
            let inv_pivot = 1.0 / lu[k][k];
            for r in (k + 1)..N {
                let m = lu[r][k] * inv_pivot;
                lu[r][k] = m;
                for c in (k + 1)..N {
                    lu[r][c] -= m * lu[k][c];
                }
            }
        }
        Ok(BlockLu { lu, piv })
    }

    /// Dense inverse via LU (convenience; the solvers keep the factorisation).
    pub fn inverse(&self) -> Result<BlockMat<N>, LinalgError> {
        let lu = self.lu()?;
        let mut inv = BlockMat::zero();
        for c in 0..N {
            let mut e = [0.0; N];
            e[c] = 1.0;
            let x = lu.solve(&e);
            for r in 0..N {
                inv.a[r][c] = x[r];
            }
        }
        Ok(inv)
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        let mut m = 0.0f64;
        for r in 0..N {
            for c in 0..N {
                m = m.max(self.a[r][c].abs());
            }
        }
        m
    }
}

impl<const N: usize> Add for BlockMat<N> {
    type Output = Self;
    #[inline]
    fn add(mut self, rhs: Self) -> Self {
        self += rhs;
        self
    }
}

impl<const N: usize> AddAssign for BlockMat<N> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        for r in 0..N {
            for c in 0..N {
                self.a[r][c] += rhs.a[r][c];
            }
        }
    }
}

impl<const N: usize> Sub for BlockMat<N> {
    type Output = Self;
    #[inline]
    fn sub(mut self, rhs: Self) -> Self {
        self -= rhs;
        self
    }
}

impl<const N: usize> SubAssign for BlockMat<N> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        for r in 0..N {
            for c in 0..N {
                self.a[r][c] -= rhs.a[r][c];
            }
        }
    }
}

impl<const N: usize> Mul for BlockMat<N> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        crate::flops::add(crate::flops::matmul_flops(N as u64));
        let mut out = Self::zero();
        for r in 0..N {
            for k in 0..N {
                let v = self.a[r][k];
                if v == 0.0 {
                    continue;
                }
                for c in 0..N {
                    out.a[r][c] += v * rhs.a[k][c];
                }
            }
        }
        out
    }
}

impl<const N: usize> Mul<f64> for BlockMat<N> {
    type Output = Self;
    #[inline]
    fn mul(mut self, s: f64) -> Self {
        for r in 0..N {
            for c in 0..N {
                self.a[r][c] *= s;
            }
        }
        self
    }
}

/// LU factorisation (with partial pivoting) of a [`BlockMat`].
#[derive(Clone, Copy, Debug)]
pub struct BlockLu<const N: usize> {
    lu: [[f64; N]; N],
    piv: [usize; N],
}

impl<const N: usize> BlockLu<N> {
    /// Solve `A x = b` using the stored factorisation.
    #[inline]
    pub fn solve(&self, b: &[f64; N]) -> [f64; N] {
        crate::flops::add(crate::flops::solve_flops(N as u64));
        // Apply the row permutation while loading b.
        let mut x = [0.0; N];
        for r in 0..N {
            x[r] = b[self.piv[r]];
        }
        // Forward substitution, unit lower triangle.
        for r in 1..N {
            let mut s = x[r];
            for c in 0..r {
                s -= self.lu[r][c] * x[c];
            }
            x[r] = s;
        }
        // Backward substitution.
        for r in (0..N).rev() {
            let mut s = x[r];
            for c in (r + 1)..N {
                s -= self.lu[r][c] * x[c];
            }
            x[r] = s / self.lu[r][r];
        }
        x
    }

    /// Solve `A X = B` column-wise for a block right-hand side; used in the
    /// block-tridiagonal forward elimination.
    #[inline]
    pub fn solve_mat(&self, b: &BlockMat<N>) -> BlockMat<N> {
        let mut out = BlockMat::zero();
        for c in 0..N {
            let mut col = [0.0; N];
            for r in 0..N {
                col[r] = b.get(r, c);
            }
            let x = self.solve(&col);
            for r in 0..N {
                out.set(r, c, x[r]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_close<const N: usize>(a: &[f64; N], b: &[f64; N], tol: f64) -> bool {
        a.iter().zip(b.iter()).all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn identity_solve_is_identity() {
        let m = BlockMat::<6>::identity();
        let lu = m.lu().unwrap();
        let b = [1.0, -2.0, 3.0, -4.0, 5.0, -6.0];
        assert_eq!(lu.solve(&b), b);
    }

    #[test]
    fn singular_matrix_reports_error() {
        let m = BlockMat::<3>::zero();
        assert!(matches!(m.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rank_deficient_matrix_reports_error() {
        // Two identical rows.
        let m = BlockMat::<3>::from_fn(|r, c| if r < 2 { (c + 1) as f64 } else { 1.0 });
        assert!(m.lu().is_err());
    }

    #[test]
    fn singular_error_reports_original_indices_under_permutation() {
        // Column 2 is identically zero, so elimination must break down at
        // original column 2 no matter how the rows are ordered. Row 3
        // carries the dominant column-0 entry, forcing a swap at step 0.
        let base = |r: usize, c: usize| -> f64 {
            if c == 2 {
                0.0
            } else {
                [
                    [4.0, 1.0, 0.0, 0.5],
                    [1.0, 5.0, 0.0, 0.25],
                    [0.5, 0.5, 0.0, 6.0],
                    [9.0, 0.25, 0.0, 1.0],
                ][r][c]
            }
        };
        let m = BlockMat::<4>::from_fn(base);
        match m.lu() {
            Err(LinalgError::Singular { col, row, swaps }) => {
                assert_eq!(col, 2, "must name the original zero column");
                assert!(row < 4);
                assert!(swaps >= 1, "the dominant row 3 forces at least one swap");
            }
            other => panic!("expected singular, got {other:?}"),
        }
        // Identity ordering (no dominant off-diagonal rows): zero swaps,
        // and the unpermuted pivot row is reported.
        let id = BlockMat::<3>::from_fn(|r, c| {
            if c == 1 {
                0.0
            } else if r == c {
                3.0 + r as f64
            } else {
                0.1
            }
        });
        assert_eq!(
            id.lu().map(|_| ()),
            Err(LinalgError::Singular {
                col: 1,
                row: 1,
                swaps: 0
            })
        );
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let m = BlockMat::<4>::from_fn(|r, c| {
            if r == c {
                4.0
            } else {
                1.0 / (1.0 + (r + c) as f64)
            }
        });
        let inv = m.inverse().unwrap();
        let prod = inv * m;
        let id = BlockMat::<4>::identity();
        assert!((prod - id).max_abs() < 1e-12, "{prod:?}");
    }

    #[test]
    fn mul_vec_sub_matches_manual() {
        let m = BlockMat::<3>::from_fn(|r, c| (r * 3 + c) as f64);
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 10.0, 10.0];
        m.mul_vec_sub(&x, &mut y);
        let mv = m.mul_vec(&x);
        assert_eq!(y, [10.0 - mv[0], 10.0 - mv[1], 10.0 - mv[2]]);
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut m = BlockMat::<5>::zero();
        m.add_diagonal(2.5);
        for r in 0..5 {
            for c in 0..5 {
                assert_eq!(m.get(r, c), if r == c { 2.5 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_twice_is_original() {
        let m = BlockMat::<6>::from_fn(|r, c| (r as f64) * 0.3 - (c as f64) * 1.7);
        assert_eq!(m.transpose().transpose(), m);
    }

    columbia_rt::props! {
        /// For diagonally dominant random matrices (always invertible),
        /// solving then multiplying recovers the right-hand side.
        fn prop_lu_solve_roundtrip(
            seed in columbia_rt::props::array::<_, 32>(-1.0f64..1.0),
            b in columbia_rt::props::array::<_, 6>(-10.0f64..10.0),
        ) {
            let mut m = BlockMat::<6>::from_fn(|r, c| seed[(r * 6 + c) % 32]);
            m.add_diagonal(8.0); // ensure diagonal dominance
            let lu = m.lu().unwrap();
            let x = lu.solve(&b);
            let back = m.mul_vec(&x);
            assert!(vec_close(&back, &b, 1e-9), "back={back:?} b={b:?}");
        }

        /// solve_mat agrees with column-by-column solve.
        fn prop_solve_mat_columns(seed in columbia_rt::props::array::<_, 16>(-1.0f64..1.0)) {
            let mut m = BlockMat::<4>::from_fn(|r, c| seed[r * 4 + c]);
            m.add_diagonal(6.0);
            let rhs = BlockMat::<4>::from_fn(|r, c| seed[(r + c * 4) % 16] * 2.0);
            let lu = m.lu().unwrap();
            let x = lu.solve_mat(&rhs);
            for c in 0..4 {
                let mut col = [0.0; 4];
                for r in 0..4 { col[r] = rhs.get(r, c); }
                let xc = lu.solve(&col);
                for r in 0..4 {
                    assert!((x.get(r, c) - xc[r]).abs() < 1e-12);
                }
            }
        }

        /// (A*B)x == A*(B*x)
        fn prop_matmul_assoc_with_vec(
            sa in columbia_rt::props::array::<_, 9>(-2.0f64..2.0),
            sb in columbia_rt::props::array::<_, 9>(-2.0f64..2.0),
            x in columbia_rt::props::array::<_, 3>(-5.0f64..5.0),
        ) {
            let a = BlockMat::<3>::from_fn(|r, c| sa[r * 3 + c]);
            let b = BlockMat::<3>::from_fn(|r, c| sb[r * 3 + c]);
            let lhs = (a * b).mul_vec(&x);
            let rhs = a.mul_vec(&b.mul_vec(&x));
            assert!(vec_close(&lhs, &rhs, 1e-9));
        }
    }
}
