//! Flat state-vector operations.
//!
//! Flow states are stored as structure-of-blocks: a `Vec<[f64; N]>` with one
//! block per grid point / cell. These helpers implement the handful of BLAS-1
//! style operations the multigrid drivers need, plus FLOP accounting used by
//! the performance instrumentation (the paper measures FLOP rates through
//! Itanium hardware counters; we count in software).

/// `y += a * x` over flat scalar slices, processed in unrolled chunks of
/// [`crate::soa::LANES`]. AXPY is element-wise, so chunking cannot change
/// a single bit of the result — there is no scalar/SIMD fork to oracle.
pub fn axpy_flat(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    crate::flops::add(crate::flops::axpy_flops(x.len() as u64));
    const LANES: usize = crate::soa::LANES;
    let mut yc = y.chunks_exact_mut(LANES);
    let mut xc = x.chunks_exact(LANES);
    for (ys, xs) in (&mut yc).zip(&mut xc) {
        for l in 0..LANES {
            ys[l] += a * xs[l];
        }
    }
    for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yi += a * xi;
    }
}

/// `y += a * x` over block arrays (delegates to the chunked flat kernel;
/// a `[[f64; N]]` is contiguous, so the flattening is free).
pub fn axpy<const N: usize>(a: f64, x: &[[f64; N]], y: &mut [[f64; N]]) {
    assert_eq!(x.len(), y.len());
    axpy_flat(a, x.as_flattened(), y.as_flattened_mut());
}

/// Set all blocks to zero.
pub fn zero_out<const N: usize>(x: &mut [[f64; N]]) {
    for xi in x.iter_mut() {
        *xi = [0.0; N];
    }
}

/// L2 norm over all components of all blocks.
pub fn l2_norm<const N: usize>(x: &[[f64; N]]) -> f64 {
    x.iter()
        .flat_map(|b| b.iter())
        .map(|v| v * v)
        .sum::<f64>()
        .sqrt()
}

/// RMS norm over all components (L2 / sqrt(count)); the convergence measure
/// plotted in the paper's Figure 14(a).
pub fn rms_norm<const N: usize>(x: &[[f64; N]]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    l2_norm(x) / ((x.len() * N) as f64).sqrt()
}

/// Infinity norm over all components.
pub fn max_norm<const N: usize>(x: &[[f64; N]]) -> f64 {
    x.iter()
        .flat_map(|b| b.iter())
        .fold(0.0f64, |m, v| m.max(v.abs()))
}

/// Dot product of two block arrays.
pub fn dot<const N: usize>(x: &[[f64; N]], y: &[[f64; N]]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y.iter())
        .map(|(a, b)| a.iter().zip(b.iter()).map(|(u, v)| u * v).sum::<f64>())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_accumulates() {
        let x = vec![[1.0, 2.0]; 3];
        let mut y = vec![[10.0, 20.0]; 3];
        axpy(2.0, &x, &mut y);
        for b in &y {
            assert_eq!(*b, [12.0, 24.0]);
        }
    }

    #[test]
    fn chunked_axpy_matches_naive_bitwise_at_awkward_lengths() {
        // Lengths straddling the unroll width, including the empty and
        // remainder-only cases.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 3.1).collect();
            let mut y: Vec<f64> = (0..n).map(|i| (i as f64 * 1.13).cos() - 0.4).collect();
            let mut y_ref = y.clone();
            let a = 0.816_496_580_927_726;
            for (yi, xi) in y_ref.iter_mut().zip(x.iter()) {
                *yi += a * xi;
            }
            axpy_flat(a, &x, &mut y);
            for (u, v) in y.iter().zip(y_ref.iter()) {
                assert_eq!(u.to_bits(), v.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn axpy_counts_flops() {
        let before = crate::flops::take();
        let x = vec![[1.0; 3]; 10];
        let mut y = vec![[0.0; 3]; 10];
        axpy(1.5, &x, &mut y);
        assert_eq!(crate::flops::take(), 60);
        crate::flops::add(before);
    }

    #[test]
    fn norms_on_unit_blocks() {
        let x = vec![[1.0; 4]; 4]; // 16 entries of 1.0
        assert!((l2_norm(&x) - 4.0).abs() < 1e-14);
        assert!((rms_norm(&x) - 1.0).abs() < 1e-14);
        assert_eq!(max_norm(&x), 1.0);
    }

    #[test]
    fn rms_of_empty_is_zero() {
        let x: Vec<[f64; 6]> = vec![];
        assert_eq!(rms_norm(&x), 0.0);
    }

    #[test]
    fn dot_matches_manual() {
        let x = vec![[1.0, 2.0], [3.0, 4.0]];
        let y = vec![[5.0, 6.0], [7.0, 8.0]];
        assert_eq!(dot(&x, &y), 5.0 + 12.0 + 21.0 + 32.0);
    }

    #[test]
    fn zero_out_clears() {
        let mut x = vec![[3.0; 5]; 7];
        zero_out(&mut x);
        assert_eq!(max_norm(&x), 0.0);
    }
}
