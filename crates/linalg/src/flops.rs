//! Ambient software FLOP accounting for the dense kernels.
//!
//! The paper measures FLOP rates with the Itanium2 hardware counters
//! (`pfmon`); the reproduction counts in software. The dense kernels —
//! block LU factorise/solve, matrix products, the batched SoA kernels in
//! [`crate::soa`], and the vector AXPYs — bump a thread-local counter
//! with *exact* operation counts (a MADD counts 2, a division or
//! reciprocal counts 1, comparisons and `abs` count 0, matching the
//! paper's counting of arithmetic retired). A benchmark brackets a kernel
//! invocation with [`take`] and divides by wall time for an achieved
//! FLOP/s figure directly comparable to the `columbia-machine` roofline
//! (`MachineConfig::effective_rate`).
//!
//! Only the factorise/solve/matvec/matmul/axpy kernels count — the ones
//! the roofline bench measures. The O(N²) element-wise helpers
//! (`AddAssign`, scalar scaling, `add_diagonal`) do not, so assembly-heavy
//! code does not pay a counter bump per edge.
//!
//! The counter is thread-local: each rank thread accounts its own kernel
//! work, and single-threaded benches see exactly the FLOPs they issued.

use std::cell::Cell;

thread_local! {
    static KERNEL_FLOPS: Cell<u64> = const { Cell::new(0) };
}

/// Add `n` FLOPs to this thread's kernel counter.
#[inline]
pub fn add(n: u64) {
    KERNEL_FLOPS.with(|c| c.set(c.get() + n));
}

/// This thread's accumulated kernel FLOPs.
pub fn total() -> u64 {
    KERNEL_FLOPS.with(|c| c.get())
}

/// Read and reset this thread's kernel counter.
pub fn take() -> u64 {
    KERNEL_FLOPS.with(|c| c.replace(0))
}

/// Exact FLOPs of one partially pivoted `n x n` LU factorisation: per
/// elimination column `k`, one reciprocal, `n-1-k` multiplier products,
/// and `2 (n-1-k)^2` trailing-submatrix MADD flops.
pub const fn lu_flops(n: u64) -> u64 {
    let mut total = 0;
    let mut k = 0;
    while k < n {
        let r = n - 1 - k;
        total += 1 + r + 2 * r * r;
        k += 1;
    }
    total
}

/// Exact FLOPs of one forward + backward triangular solve: `2n^2 - n`
/// (the permutation load is free, the final column divides).
pub const fn solve_flops(n: u64) -> u64 {
    2 * n * n - n
}

/// FLOPs of a block right-hand-side solve (`n` column solves).
pub const fn solve_mat_flops(n: u64) -> u64 {
    n * solve_flops(n)
}

/// FLOPs of a dense `n x n` matrix product, counted at the nominal
/// `2n^3` rate (the scalar kernel skips zero multipliers as a strength
/// reduction; counts stay layout-independent by using the nominal rate).
pub const fn matmul_flops(n: u64) -> u64 {
    2 * n * n * n
}

/// FLOPs of an `n x n` matrix-vector product.
pub const fn matvec_flops(n: u64) -> u64 {
    2 * n * n
}

/// FLOPs of `y += a x` over `len` scalars.
pub const fn axpy_flops(len: u64) -> u64 {
    2 * len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_takes() {
        let before = take();
        add(100);
        add(50);
        assert_eq!(total(), 150);
        assert_eq!(take(), 150);
        assert_eq!(total(), 0);
        // Restore whatever the surrounding test harness had accumulated.
        add(before);
    }

    #[test]
    fn formulas_match_hand_counts() {
        // 1x1 LU: one reciprocal.
        assert_eq!(lu_flops(1), 1);
        // 2x2: reciprocal + 1 multiplier + 2 MADD, then reciprocal.
        assert_eq!(lu_flops(2), (1 + 1 + 2) + 1);
        // Solve: forward n(n-1) + backward n(n-1) + n divides.
        assert_eq!(solve_flops(6), 2 * 36 - 6);
        assert_eq!(solve_mat_flops(6), 6 * solve_flops(6));
        assert_eq!(matmul_flops(6), 432);
        assert_eq!(matvec_flops(6), 72);
        assert_eq!(axpy_flops(10), 20);
    }
}
