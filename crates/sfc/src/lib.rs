//! Space-filling curves for Cartesian mesh coarsening and partitioning.
//!
//! Cart3D orders adaptively refined Cartesian cells along a space-filling
//! curve (Morton in 2-D illustrations, Peano-Hilbert preferred in 3-D). The
//! curve provides, essentially for free:
//!
//! * **reordering** for memory locality (a quicksort on curve keys);
//! * **coarsening** — consecutive same-size sibling cells along the curve
//!   collapse into their parent, building each coarse multigrid level in a
//!   single pass;
//! * **partitioning** — cutting the weighted curve into `P` contiguous
//!   segments yields compact, load-balanced subdomains whose
//!   surface-to-volume ratio tracks an idealised cubic partitioner
//!   (paper reference \[18\]).
//!
//! Keys are 63-bit: 21 bits per axis, supporting up to 2^21 cells per axis
//! (far beyond the 14 refinement levels used for the SSLV mesh).

#![allow(clippy::needless_range_loop)] // index loops mirror the stencil/block structure of the kernels
#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0.0)` deliberately catches NaNs

pub mod hilbert;
pub mod morton;
pub mod partition;

pub use hilbert::{hilbert_decode, hilbert_encode};
pub use morton::{morton_decode, morton_encode};
pub use partition::{split_weighted_curve, CurvePartition};

/// Maximum supported bits per axis for both curves.
pub const MAX_BITS: u32 = 21;

/// Which space-filling curve to use.
///
/// ```
/// use columbia_sfc::CurveKind;
/// let key = CurveKind::Hilbert.encode(3, 5, 7, 4);
/// assert_eq!(CurveKind::Hilbert.decode(key, 4), (3, 5, 7));
/// ```
///
/// The paper: "in 3D the Peano-Hilbert SFC is generally preferred" for its
/// better locality; Morton is cheaper to compute. Both are exposed so the
/// `ablation_sfc` bench can compare partition quality.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum CurveKind {
    /// Bit-interleaving Z-order curve.
    Morton,
    /// Peano-Hilbert curve (default, better locality).
    #[default]
    Hilbert,
}

impl CurveKind {
    /// Encode integer cell coordinates at `bits` of resolution into a curve key.
    #[inline]
    pub fn encode(self, x: u32, y: u32, z: u32, bits: u32) -> u64 {
        match self {
            CurveKind::Morton => morton_encode(x, y, z, bits),
            CurveKind::Hilbert => hilbert_encode(x, y, z, bits),
        }
    }

    /// Decode a curve key back to integer cell coordinates.
    #[inline]
    pub fn decode(self, key: u64, bits: u32) -> (u32, u32, u32) {
        match self {
            CurveKind::Morton => morton_decode(key, bits),
            CurveKind::Hilbert => hilbert_decode(key, bits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_kinds_roundtrip_origin() {
        for kind in [CurveKind::Morton, CurveKind::Hilbert] {
            assert_eq!(kind.decode(kind.encode(0, 0, 0, 4), 4), (0, 0, 0));
        }
    }

    columbia_rt::props! {
        fn prop_kinds_roundtrip(kindsel in 0u32..2, x in 0u32..512, y in 0u32..512, z in 0u32..512) {
            let kind = if kindsel == 0 { CurveKind::Morton } else { CurveKind::Hilbert };
            let key = kind.encode(x, y, z, 9);
            assert_eq!(kind.decode(key, 9), (x, y, z));
        }
    }
}
