//! Morton (Z-order) curve: bit interleaving in three dimensions.
//!
//! The key property exploited by the single-pass mesh coarsener is that the
//! eight children of an octree cell occupy eight *consecutive* positions on
//! the curve, so sibling detection is a local scan.

use crate::MAX_BITS;

/// Spread the low 21 bits of `v` so each lands every third bit position.
#[inline]
fn spread3(v: u32) -> u64 {
    let mut x = (v as u64) & 0x1f_ffff; // 21 bits
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Inverse of [`spread3`]: gather every third bit back into the low 21 bits.
#[inline]
fn compact3(v: u64) -> u32 {
    let mut x = v & 0x1249249249249249;
    x = (x | (x >> 2)) & 0x10c30c30c30c30c3;
    x = (x | (x >> 4)) & 0x100f00f00f00f00f;
    x = (x | (x >> 8)) & 0x1f0000ff0000ff;
    x = (x | (x >> 16)) & 0x1f00000000ffff;
    x = (x | (x >> 32)) & 0x1f_ffff;
    x as u32
}

/// Encode `(x, y, z)` at `bits` of per-axis resolution into a Morton key.
///
/// Bit `k` of `x` lands at key bit `3k`, of `y` at `3k + 1`, of `z` at
/// `3k + 2`; `bits` only bounds the valid coordinate range (the encoding
/// itself is resolution-independent).
///
/// # Panics
/// If `bits > 21` or any coordinate needs more than `bits` bits.
#[inline]
pub fn morton_encode(x: u32, y: u32, z: u32, bits: u32) -> u64 {
    assert!(
        bits <= MAX_BITS,
        "morton supports at most {MAX_BITS} bits/axis"
    );
    let lim = 1u32.checked_shl(bits).unwrap_or(u32::MAX);
    assert!(
        x < lim && y < lim && z < lim,
        "coordinate out of range for {bits} bits: ({x}, {y}, {z})"
    );
    spread3(x) | (spread3(y) << 1) | (spread3(z) << 2)
}

/// Decode a Morton key back into `(x, y, z)`.
#[inline]
pub fn morton_decode(key: u64, bits: u32) -> (u32, u32, u32) {
    assert!(bits <= MAX_BITS);
    let mask = if bits == 0 {
        0
    } else {
        (1u64 << (3 * bits)) - 1
    };
    let key = key & mask;
    (compact3(key), compact3(key >> 1), compact3(key >> 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn known_small_values() {
        // Unit cube corners at 1 bit.
        assert_eq!(morton_encode(0, 0, 0, 1), 0);
        assert_eq!(morton_encode(1, 0, 0, 1), 1);
        assert_eq!(morton_encode(0, 1, 0, 1), 2);
        assert_eq!(morton_encode(1, 1, 0, 1), 3);
        assert_eq!(morton_encode(0, 0, 1, 1), 4);
        assert_eq!(morton_encode(1, 1, 1, 1), 7);
    }

    #[test]
    fn children_are_consecutive() {
        // The 8 children of the cell at (2,4,6) level-3 parent occupy
        // 8 consecutive keys.
        let (px, py, pz) = (2u32, 4, 6);
        let mut keys: Vec<u64> = (0..8)
            .map(|c| {
                let dx = c & 1;
                let dy = (c >> 1) & 1;
                let dz = (c >> 2) & 1;
                morton_encode(px * 2 + dx, py * 2 + dy, pz * 2 + dz, 4)
            })
            .collect();
        keys.sort_unstable();
        for w in keys.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
        assert_eq!(keys[0] % 8, 0, "first child aligned to multiple of 8");
    }

    #[test]
    fn exhaustive_bijective_on_small_grid() {
        let bits = 3;
        let mut seen = HashSet::new();
        for x in 0..8 {
            for y in 0..8 {
                for z in 0..8 {
                    let k = morton_encode(x, y, z, bits);
                    assert!(seen.insert(k), "duplicate key {k}");
                    assert_eq!(morton_decode(k, bits), (x, y, z));
                }
            }
        }
        assert_eq!(seen.len(), 512);
        assert_eq!(*seen.iter().max().unwrap(), 511);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        morton_encode(8, 0, 0, 3);
    }

    #[test]
    fn max_bits_roundtrip() {
        let m = (1u32 << 21) - 1;
        let k = morton_encode(m, m, m, 21);
        assert_eq!(morton_decode(k, 21), (m, m, m));
        assert_eq!(k, (1u64 << 63) - 1);
    }

    columbia_rt::props! {
        fn prop_roundtrip(x in 0u32..(1 << 21), y in 0u32..(1 << 21), z in 0u32..(1 << 21)) {
            let k = morton_encode(x, y, z, 21);
            assert_eq!(morton_decode(k, 21), (x, y, z));
        }

        /// Monotone in each axis: increasing one coordinate increases the key
        /// when the others are zero.
        fn prop_axis_monotone(x in 0u32..((1 << 21) - 1)) {
            assert!(morton_encode(x, 0, 0, 21) < morton_encode(x + 1, 0, 0, 21));
            assert!(morton_encode(0, x, 0, 21) < morton_encode(0, x + 1, 0, 21));
            assert!(morton_encode(0, 0, x, 21) < morton_encode(0, 0, x + 1, 21));
        }
    }
}
