//! Peano-Hilbert curve in three dimensions.
//!
//! Implementation follows Skilling's "Programming the Hilbert curve"
//! (AIP Conf. Proc. 707, 2004): coordinates are converted to/from the
//! "transpose" representation with a pair of bit-twiddling passes, and the
//! final key is obtained by interleaving the transposed bits.
//!
//! Unlike Morton, consecutive Hilbert keys always correspond to cells that
//! are *face neighbours*, which is what gives SFC partitions their good
//! surface-to-volume ratio.

use crate::MAX_BITS;

const N: usize = 3;

/// Convert axis coordinates to the Hilbert transpose form, in place.
fn axes_to_transpose(x: &mut [u32; N], bits: u32) {
    let m = 1u32 << (bits - 1);
    // Inverse undo excess work.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..N {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..N {
        x[i] ^= x[i - 1];
    }
    let mut t = 0;
    let mut q = m;
    while q > 1 {
        if x[N - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }
}

/// Convert the Hilbert transpose form back to axis coordinates, in place.
fn transpose_to_axes(x: &mut [u32; N], bits: u32) {
    let m = 2u32 << (bits - 1);
    // Gray decode by H ^ (H/2).
    let mut t = x[N - 1] >> 1;
    for i in (1..N).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work.
    let mut q = 2;
    while q != m {
        let p = q - 1;
        for i in (0..N).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Encode `(x, y, z)` at `bits` of per-axis resolution into a Hilbert key.
///
/// # Panics
/// If `bits` is 0 or exceeds [`MAX_BITS`], or a coordinate is out of range.
pub fn hilbert_encode(x: u32, y: u32, z: u32, bits: u32) -> u64 {
    assert!(
        (1..=MAX_BITS).contains(&bits),
        "bits must be in 1..={MAX_BITS}"
    );
    let lim = 1u32 << bits;
    assert!(
        x < lim && y < lim && z < lim,
        "coordinate out of range for {bits} bits: ({x}, {y}, {z})"
    );
    let mut t = [x, y, z];
    axes_to_transpose(&mut t, bits);
    // Interleave: bit j of axis i lands at key bit 3*j + (2 - i), so axis 0
    // carries the most significant bit of each triple.
    let mut key = 0u64;
    for j in (0..bits).rev() {
        for ti in t.iter() {
            let bit = ((ti >> j) & 1) as u64;
            key = (key << 1) | bit;
        }
    }
    key
}

/// Decode a Hilbert key back into `(x, y, z)`.
pub fn hilbert_decode(key: u64, bits: u32) -> (u32, u32, u32) {
    assert!((1..=MAX_BITS).contains(&bits));
    let mut t = [0u32; N];
    for j in 0..bits {
        for (i, ti) in t.iter_mut().enumerate() {
            let shift = 3 * j + (2 - i as u32);
            let bit = ((key >> shift) & 1) as u32;
            *ti |= bit << j;
        }
    }
    transpose_to_axes(&mut t, bits);
    (t[0], t[1], t[2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn one_bit_curve_visits_all_corners_with_unit_steps() {
        let mut prev: Option<(u32, u32, u32)> = None;
        let mut seen = HashSet::new();
        for k in 0..8u64 {
            let p = hilbert_decode(k, 1);
            assert!(seen.insert(p));
            if let Some(q) = prev {
                let d = (p.0 as i64 - q.0 as i64).abs()
                    + (p.1 as i64 - q.1 as i64).abs()
                    + (p.2 as i64 - q.2 as i64).abs();
                assert_eq!(d, 1, "step {k} not a unit move: {q:?} -> {p:?}");
            }
            prev = Some(p);
        }
    }

    #[test]
    fn exhaustive_bijective_and_adjacent_on_16_cube() {
        let bits = 4;
        let n = 1u64 << (3 * bits);
        let mut seen = vec![false; n as usize];
        let mut prev: Option<(u32, u32, u32)> = None;
        for k in 0..n {
            let (x, y, z) = hilbert_decode(k, bits);
            let back = hilbert_encode(x, y, z, bits);
            assert_eq!(back, k, "roundtrip failed at key {k}");
            let idx = (x as usize) | ((y as usize) << 4) | ((z as usize) << 8);
            assert!(!seen[idx], "cell visited twice");
            seen[idx] = true;
            if let Some(q) = prev {
                let d = (x as i64 - q.0 as i64).abs()
                    + (y as i64 - q.1 as i64).abs()
                    + (z as i64 - q.2 as i64).abs();
                assert_eq!(d, 1, "non-adjacent step at key {k}");
            }
            prev = Some((x, y, z));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn start_at_origin() {
        for bits in 1..=8 {
            assert_eq!(hilbert_decode(0, bits), (0, 0, 0));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        hilbert_encode(4, 0, 0, 2);
    }

    #[test]
    fn locality_beats_morton_on_average() {
        // Mean squared euclidean distance between consecutive curve points
        // should be strictly smaller for Hilbert than Morton (Hilbert is
        // always 1.0 by construction).
        let bits = 4;
        let n = 1u64 << (3 * bits);
        let mut hsum = 0f64;
        let mut msum = 0f64;
        let mut hprev = hilbert_decode(0, bits);
        let mut mprev = crate::morton::morton_decode(0, bits);
        for k in 1..n {
            let h = hilbert_decode(k, bits);
            let m = crate::morton::morton_decode(k, bits);
            let d2 = |a: (u32, u32, u32), b: (u32, u32, u32)| {
                let dx = a.0 as f64 - b.0 as f64;
                let dy = a.1 as f64 - b.1 as f64;
                let dz = a.2 as f64 - b.2 as f64;
                dx * dx + dy * dy + dz * dz
            };
            hsum += d2(h, hprev);
            msum += d2(m, mprev);
            hprev = h;
            mprev = m;
        }
        assert!(hsum < msum, "hilbert {hsum} should beat morton {msum}");
        assert!(
            (hsum - (n - 1) as f64).abs() < 1e-9,
            "hilbert steps are all unit"
        );
    }

    columbia_rt::props! {
        fn prop_roundtrip(x in 0u32..(1 << 21), y in 0u32..(1 << 21), z in 0u32..(1 << 21)) {
            let k = hilbert_encode(x, y, z, 21);
            assert_eq!(hilbert_decode(k, 21), (x, y, z));
        }

        /// Consecutive keys decode to face-adjacent cells at any resolution.
        fn prop_unit_steps(k in 0u64..((1u64 << 18) - 1)) {
            let a = hilbert_decode(k, 6);
            let b = hilbert_decode(k + 1, 6);
            let d = (a.0 as i64 - b.0 as i64).abs()
                + (a.1 as i64 - b.1 as i64).abs()
                + (a.2 as i64 - b.2 as i64).abs();
            assert_eq!(d, 1);
        }
    }
}
