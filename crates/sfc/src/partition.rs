//! Weighted curve-splitting partitioner.
//!
//! Once cells are sorted along a space-filling curve, domain decomposition
//! reduces to cutting the curve into `P` contiguous segments of (nearly)
//! equal total weight. Cut cells are weighted more heavily than full
//! Cartesian hexahedra (the paper's SSLV example uses a factor of 2.1) to
//! balance the extra flux work they incur.

/// Result of splitting a weighted curve into contiguous partitions.
#[derive(Clone, Debug)]
pub struct CurvePartition {
    /// `starts[p]..starts[p+1]` is the index range (into the SFC-sorted cell
    /// array) owned by partition `p`. Length `nparts + 1`.
    pub starts: Vec<usize>,
}

impl CurvePartition {
    /// Number of partitions.
    pub fn nparts(&self) -> usize {
        self.starts.len() - 1
    }

    /// Index range of partition `p`.
    pub fn range(&self, p: usize) -> std::ops::Range<usize> {
        self.starts[p]..self.starts[p + 1]
    }

    /// Owner partition of sorted-cell index `i` (binary search).
    pub fn owner(&self, i: usize) -> usize {
        debug_assert!(i < *self.starts.last().unwrap());
        match self.starts.binary_search(&i) {
            Ok(p) => p.min(self.nparts() - 1),
            Err(p) => p - 1,
        }
    }

    /// Load imbalance: max partition weight / mean partition weight.
    pub fn imbalance(&self, weights: &[f64]) -> f64 {
        let total: f64 = weights.iter().sum();
        if total == 0.0 {
            return 1.0;
        }
        let mean = total / self.nparts() as f64;
        let mut max = 0.0f64;
        for p in 0..self.nparts() {
            let w: f64 = weights[self.range(p)].iter().sum();
            max = max.max(w);
        }
        max / mean
    }
}

/// Split a weighted, SFC-sorted cell list into `nparts` contiguous segments.
///
/// Uses the standard prefix-sum chunking: partition `p` ends at the first
/// index whose cumulative weight reaches `(p + 1) / nparts` of the total.
/// Empty partitions are possible only when there are fewer cells than
/// partitions (the paper notes some empty coarsest-level partitions at 2008
/// CPUs — the downstream machinery tolerates them).
///
/// # Panics
/// If `nparts == 0` or any weight is negative.
pub fn split_weighted_curve(weights: &[f64], nparts: usize) -> CurvePartition {
    assert!(nparts > 0, "need at least one partition");
    assert!(
        weights.iter().all(|&w| w >= 0.0),
        "cell weights must be non-negative"
    );
    let total: f64 = weights.iter().sum();
    let n = weights.len();
    let mut starts = Vec::with_capacity(nparts + 1);
    starts.push(0);
    let mut acc = 0.0;
    let mut i = 0;
    for p in 1..nparts {
        let target = total * (p as f64) / (nparts as f64);
        while i < n && acc + weights[i] * 0.5 < target {
            acc += weights[i];
            i += 1;
        }
        starts.push(i);
    }
    starts.push(n);
    CurvePartition { starts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_weights_split_evenly() {
        let w = vec![1.0; 100];
        let p = split_weighted_curve(&w, 4);
        assert_eq!(p.starts, vec![0, 25, 50, 75, 100]);
        assert!((p.imbalance(&w) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cut_cell_weighting_shifts_boundaries() {
        // First half cells are "cut" (weight 2.1), second half full (1.0);
        // the midpoint partition boundary must sit inside the first half.
        let mut w = vec![2.1; 50];
        w.resize(100, 1.0);
        let p = split_weighted_curve(&w, 2);
        assert!(
            p.starts[1] < 50,
            "boundary {} should be in cut region",
            p.starts[1]
        );
        assert!(p.imbalance(&w) < 1.05);
    }

    #[test]
    fn more_parts_than_cells_yields_empty_parts() {
        let w = vec![1.0; 3];
        let p = split_weighted_curve(&w, 8);
        assert_eq!(p.nparts(), 8);
        let nonempty = (0..8).filter(|&q| !p.range(q).is_empty()).count();
        assert_eq!(nonempty, 3);
        // All cells covered exactly once.
        let covered: usize = (0..8).map(|q| p.range(q).len()).sum();
        assert_eq!(covered, 3);
    }

    #[test]
    fn owner_is_consistent_with_ranges() {
        let w = vec![1.0; 37];
        let p = split_weighted_curve(&w, 5);
        for q in 0..5 {
            for i in p.range(q) {
                assert_eq!(p.owner(i), q);
            }
        }
    }

    #[test]
    fn single_partition_takes_everything() {
        let w = vec![3.0; 10];
        let p = split_weighted_curve(&w, 1);
        assert_eq!(p.range(0), 0..10);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_parts_panics() {
        split_weighted_curve(&[1.0], 0);
    }

    columbia_rt::props! {
        /// Partitions always tile the index range in order.
        fn prop_tiling(n in 0usize..200, nparts in 1usize..17) {
            let w: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
            let p = split_weighted_curve(&w, nparts);
            assert_eq!(p.starts[0], 0);
            assert_eq!(*p.starts.last().unwrap(), n);
            for k in 0..nparts {
                assert!(p.starts[k] <= p.starts[k + 1]);
            }
        }

        /// With many more unit-weight cells than partitions, imbalance stays
        /// close to 1.
        fn prop_balanced_when_plenty_of_cells(nparts in 1usize..16) {
            let w = vec![1.0; 10_000];
            let p = split_weighted_curve(&w, nparts);
            assert!(p.imbalance(&w) < 1.01);
        }
    }
}
