//! Micro-benchmark timing harness (criterion replacement).
//!
//! Provides the small API surface the workspace benches use: groups,
//! `bench_function`, `iter`, `sample_size`, `throughput`, and `black_box`.
//! Each benchmark auto-calibrates an iteration count to a target sample
//! time, takes a fixed number of samples, and reports min/median/mean
//! nanoseconds per iteration plus derived throughput.
//!
//! Set `COLUMBIA_BENCH_QUICK=1` to run one short sample per benchmark
//! (CI smoke mode).

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-iteration work declared for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level harness handle passed to each bench function.
pub struct Bench {
    quick: bool,
}

impl Bench {
    pub fn new() -> Self {
        Bench {
            quick: crate::env::bench_quick(),
        }
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        println!("\n== {name} ==");
        let quick = self.quick;
        Group {
            _bench: self,
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
            quick,
        }
    }
}

impl Default for Bench {
    fn default() -> Self {
        Self::new()
    }
}

/// A group of related benchmarks sharing sample settings.
pub struct Group<'a> {
    _bench: &'a mut Bench,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    quick: bool,
}

impl Group<'_> {
    /// Number of timed samples per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let (samples, target) = if self.quick {
            (1, Duration::from_millis(2))
        } else {
            (self.sample_size, Duration::from_millis(10))
        };

        // Calibrate: double the iteration count until a sample meets the
        // target time.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= target || iters >= 1 << 30 {
                break;
            }
            iters *= 2;
        }

        let mut per_iter: Vec<f64> = (0..samples)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;

        let tput = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12}/s", human_rate(n as f64 * 1e9 / median, "elem"))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12}/s", human_rate(n as f64 * 1e9 / median, "B"))
            }
            None => String::new(),
        };
        println!(
            "{:<40} {:>14} {:>14} {:>14}{tput}",
            format!("{}/{name}", self.name),
            format!("min {}", human_ns(min)),
            format!("med {}", human_ns(median)),
            format!("mean {}", human_ns(mean)),
        );
        self
    }

    /// End the group (parity with criterion's API; prints nothing extra).
    pub fn finish(&mut self) {}
}

/// Timer handle handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over this sample's iteration count.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn human_rate(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

/// Entry point for a `harness = false` bench target: runs each listed
/// `fn(&mut Bench)` in order.
#[macro_export]
macro_rules! bench_main {
    ($($func:path),+ $(,)?) => {
        fn main() {
            let mut bench = $crate::bench::Bench::new();
            $($func(&mut bench);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_scales() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 100);
        assert!(b.elapsed > Duration::ZERO || count == 100);
    }

    #[test]
    fn group_runs_benchmarks_in_quick_mode() {
        std::env::set_var("COLUMBIA_BENCH_QUICK", "1");
        let mut bench = Bench::new();
        let mut g = bench.benchmark_group("test-group");
        let mut calls = 0u64;
        g.sample_size(3)
            .throughput(Throughput::Elements(1))
            .bench_function("noop", |b| {
                b.iter(|| black_box(1 + 1));
                calls += 1;
            });
        g.finish();
        assert!(calls >= 2, "calibration + sample runs, got {calls}");
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human_ns(12.34), "12.3 ns");
        assert_eq!(human_ns(12_340.0), "12.34 µs");
        assert!(human_rate(2.5e9, "elem").starts_with("2.50 G"));
    }
}
