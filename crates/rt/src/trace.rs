//! Deterministic hierarchical tracing: spans, dual clocks, typed counters.
//!
//! The paper's evidence is instrumentation — per-multigrid-level timing and
//! communication breakdowns (NSU3D Tables 3–5), TFLOP/s trajectories for the
//! database fills. This module is the substrate those reports are built on.
//!
//! Design constraints:
//!
//! * **Deterministic in test mode.** With [`ClockMode::Logical`] the clock
//!   is a count of trace events, not time; two runs of the same seeded
//!   workload produce byte-identical span trees (and therefore byte-identical
//!   JSON via [`crate::json`]). Wall time exists only behind
//!   [`ClockMode::Wall`] for bench runs.
//! * **Keyed by logical position.** A span is identified by its name plus
//!   optional coordinates — rank, multigrid level, cycle index, fill case
//!   id — never by machine-dependent identifiers (thread ids, addresses).
//! * **Zero-dependency, near-zero overhead when off.** A
//!   [`Tracer::disabled`] tracer turns every call into a cheap no-op so hot
//!   loops can carry one unconditionally.
//!
//! A [`Tracer`] is deliberately single-threaded (`&mut self` everywhere).
//! Multi-rank workloads attach per-rank data after the parallel section —
//! indexed by rank id, so the result is independent of thread scheduling.

use crate::json::Json;
use std::collections::BTreeMap;
use std::time::Instant;

/// Which clock stamps span boundaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockMode {
    /// Tracing off: every operation is a no-op, [`Tracer::finish`] yields an
    /// empty trace.
    Disabled,
    /// Logical event counter — deterministic, bit-identical across runs.
    Logical,
    /// Monotonic wall time in nanoseconds since the tracer was created.
    Wall,
}

impl ClockMode {
    /// Stable string name used in rendered reports.
    pub fn label(self) -> &'static str {
        match self {
            ClockMode::Disabled => "disabled",
            ClockMode::Logical => "logical",
            ClockMode::Wall => "wall",
        }
    }
}

/// Logical position of a span: a name plus optional coordinates.
///
/// Coordinates are what make a span addressable across runs — "level 3 of
/// cycle 7 on rank 1" means the same thing in every execution of the same
/// configuration, unlike a thread id or a timestamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanKey {
    pub name: String,
    pub rank: Option<usize>,
    pub level: Option<usize>,
    pub cycle: Option<usize>,
    pub case_id: Option<usize>,
}

impl SpanKey {
    pub fn new(name: impl Into<String>) -> SpanKey {
        SpanKey {
            name: name.into(),
            rank: None,
            level: None,
            cycle: None,
            case_id: None,
        }
    }

    pub fn rank(mut self, r: usize) -> SpanKey {
        self.rank = Some(r);
        self
    }

    pub fn level(mut self, l: usize) -> SpanKey {
        self.level = Some(l);
        self
    }

    pub fn cycle(mut self, c: usize) -> SpanKey {
        self.cycle = Some(c);
        self
    }

    pub fn case_id(mut self, id: usize) -> SpanKey {
        self.case_id = Some(id);
        self
    }

    fn to_json(&self) -> Json {
        let mut o = Json::obj([("name", Json::Str(self.name.clone()))]);
        if let Some(r) = self.rank {
            o.set("rank", Json::UInt(r as u64));
        }
        if let Some(l) = self.level {
            o.set("level", Json::UInt(l as u64));
        }
        if let Some(c) = self.cycle {
            o.set("cycle", Json::UInt(c as u64));
        }
        if let Some(id) = self.case_id {
            o.set("case_id", Json::UInt(id as u64));
        }
        o
    }
}

/// A closed span: key, clock interval, counters, float gauges, children.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    pub key: SpanKey,
    /// Clock reading at `begin` (events in logical mode, ns in wall mode).
    pub start: u64,
    /// Clock reading at `end`.
    pub end: u64,
    /// Monotonic named counters (sends, bytes, retries, flops, ...).
    pub counters: BTreeMap<String, u64>,
    /// Named float gauges (residual rms, fractions, fitted coefficients).
    pub gauges: BTreeMap<String, f64>,
    pub children: Vec<Span>,
}

impl Span {
    fn open(key: SpanKey, start: u64) -> Span {
        Span {
            key,
            start,
            end: start,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            children: Vec::new(),
        }
    }

    /// Sum of a counter over this span and all descendants.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
            + self
                .children
                .iter()
                .map(|c| c.counter_total(name))
                .sum::<u64>()
    }

    /// Depth-first search for the first span with the given name.
    pub fn find(&self, name: &str) -> Option<&Span> {
        if self.key.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    fn to_json(&self) -> Json {
        let mut o = Json::obj([
            ("key", self.key.to_json()),
            ("start", Json::UInt(self.start)),
            ("end", Json::UInt(self.end)),
        ]);
        if !self.counters.is_empty() {
            o.set(
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            );
        }
        if !self.gauges.is_empty() {
            o.set(
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            );
        }
        if !self.children.is_empty() {
            o.set(
                "children",
                Json::arr(self.children.iter().map(|c| c.to_json())),
            );
        }
        o
    }
}

/// The recorder. Create one per logical activity, thread it by `&mut`
/// reference, and call [`Tracer::finish`] to obtain the [`Trace`].
#[derive(Debug)]
pub struct Tracer {
    mode: ClockMode,
    epoch: Option<Instant>,
    /// Logical event count (ticks on begin/end/event).
    events: u64,
    /// Open spans, innermost last.
    stack: Vec<Span>,
    /// Closed top-level spans.
    roots: Vec<Span>,
    /// Counters recorded while no span is open.
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

/// The default tracer is the disabled no-op sink.
impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A no-op tracer: all recording calls are cheap and `finish` yields an
    /// empty trace.
    pub fn disabled() -> Tracer {
        Tracer::with_mode(ClockMode::Disabled)
    }

    /// Deterministic event-count clock (test / report mode).
    pub fn logical() -> Tracer {
        Tracer::with_mode(ClockMode::Logical)
    }

    /// Monotonic wall-clock nanoseconds (bench mode).
    pub fn wall() -> Tracer {
        Tracer::with_mode(ClockMode::Wall)
    }

    fn with_mode(mode: ClockMode) -> Tracer {
        Tracer {
            mode,
            epoch: match mode {
                ClockMode::Wall => Some(Instant::now()),
                _ => None,
            },
            events: 0,
            stack: Vec::new(),
            roots: Vec::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
        }
    }

    pub fn mode(&self) -> ClockMode {
        self.mode
    }

    pub fn is_enabled(&self) -> bool {
        self.mode != ClockMode::Disabled
    }

    fn now(&mut self) -> u64 {
        match self.mode {
            ClockMode::Disabled => 0,
            ClockMode::Logical => {
                self.events += 1;
                self.events
            }
            ClockMode::Wall => self
                .epoch
                .expect("wall tracer has epoch")
                .elapsed()
                .as_nanos() as u64,
        }
    }

    /// Open a span; every subsequent record lands inside it until
    /// [`Tracer::end`].
    pub fn begin(&mut self, key: SpanKey) {
        if !self.is_enabled() {
            return;
        }
        let t = self.now();
        self.stack.push(Span::open(key, t));
    }

    /// Close the innermost open span. A stray `end` with nothing open is
    /// ignored rather than panicking — tracing must never take down a solve.
    pub fn end(&mut self) {
        if !self.is_enabled() {
            return;
        }
        let t = self.now();
        if let Some(mut span) = self.stack.pop() {
            span.end = t;
            match self.stack.last_mut() {
                Some(parent) => parent.children.push(span),
                None => self.roots.push(span),
            }
        }
    }

    /// Run a closure inside a span (exception-unsafe by design: a panic
    /// inside `f` aborts the trace along with the run).
    pub fn scoped<T>(&mut self, key: SpanKey, f: impl FnOnce(&mut Tracer) -> T) -> T {
        self.begin(key);
        let out = f(self);
        self.end();
        out
    }

    /// Bump a named counter on the innermost open span (or the trace root
    /// if none is open).
    pub fn add(&mut self, name: &str, delta: u64) {
        if !self.is_enabled() || delta == 0 {
            return;
        }
        let slot = match self.stack.last_mut() {
            Some(span) => span.counters.entry(name.to_string()).or_insert(0),
            None => self.counters.entry(name.to_string()).or_insert(0),
        };
        *slot += delta;
    }

    /// Record a point event: bumps the counter and ticks the logical clock.
    pub fn event(&mut self, name: &str) {
        if !self.is_enabled() {
            return;
        }
        self.now();
        self.add(name, 1);
    }

    /// Set a named float gauge on the innermost open span (last write wins).
    pub fn gauge(&mut self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        match self.stack.last_mut() {
            Some(span) => span.gauges.insert(name.to_string(), value),
            None => self.gauges.insert(name.to_string(), value),
        };
    }

    /// Close any spans left open and return the finished trace.
    pub fn finish(mut self) -> Trace {
        while !self.stack.is_empty() {
            self.end();
        }
        Trace {
            mode: self.mode,
            events: self.events,
            spans: self.roots,
            counters: self.counters,
            gauges: self.gauges,
        }
    }
}

/// A finished trace: the span forest plus root-level counters.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    pub mode: ClockMode,
    /// Total logical events observed (0 in wall/disabled mode).
    pub events: u64,
    pub spans: Vec<Span>,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
}

impl Trace {
    /// Sum of a counter over the whole forest plus root-level counters.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
            + self
                .spans
                .iter()
                .map(|s| s.counter_total(name))
                .sum::<u64>()
    }

    /// Depth-first search for the first span with the given name.
    pub fn find(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find_map(|s| s.find(name))
    }

    /// Deterministic JSON form (byte-identical across runs in logical mode).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj([
            ("clock", Json::Str(self.mode.label().to_string())),
            ("events", Json::UInt(self.events)),
        ]);
        if !self.counters.is_empty() {
            o.set(
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            );
        }
        if !self.gauges.is_empty() {
            o.set(
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            );
        }
        o.set("spans", Json::arr(self.spans.iter().map(|s| s.to_json())));
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(t: &mut Tracer) {
        t.begin(SpanKey::new("solve").rank(0));
        for cycle in 0..2 {
            t.scoped(SpanKey::new("cycle").cycle(cycle), |t| {
                for level in 0..3 {
                    t.scoped(SpanKey::new("level").level(level), |t| {
                        t.add("sends", 4);
                        t.add("bytes", 1024);
                        t.event("sweep");
                    });
                }
                t.gauge("residual_rms", 1.0 / (cycle + 1) as f64);
            });
        }
        t.end();
    }

    #[test]
    fn logical_traces_are_byte_identical() {
        let run = || {
            let mut t = Tracer::logical();
            workload(&mut t);
            t.finish().to_json().render()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn span_tree_shape_and_counters() {
        let mut t = Tracer::logical();
        workload(&mut t);
        let trace = t.finish();
        assert_eq!(trace.spans.len(), 1);
        let solve = &trace.spans[0];
        assert_eq!(solve.key.name, "solve");
        assert_eq!(solve.children.len(), 2);
        assert_eq!(solve.children[0].children.len(), 3);
        assert_eq!(trace.counter_total("sends"), 2 * 3 * 4);
        assert_eq!(trace.counter_total("bytes"), 2 * 3 * 1024);
        assert_eq!(trace.counter_total("sweep"), 6);
        let lvl = trace.find("level").unwrap();
        assert_eq!(lvl.key.level, Some(0));
        // Logical clock is strictly increasing along the tree.
        assert!(solve.start < solve.children[0].start);
        assert!(solve.children[0].end < solve.children[1].start);
        assert!(solve.children[1].end < solve.end);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        workload(&mut t);
        t.add("stray", 9);
        let trace = t.finish();
        assert!(trace.spans.is_empty());
        assert!(trace.counters.is_empty());
        assert_eq!(trace.events, 0);
    }

    #[test]
    fn unbalanced_spans_are_closed_by_finish() {
        let mut t = Tracer::logical();
        t.begin(SpanKey::new("outer"));
        t.begin(SpanKey::new("inner"));
        t.end(); // inner
        t.end(); // outer
        t.end(); // stray: ignored
        t.begin(SpanKey::new("left-open"));
        let trace = t.finish();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[1].key.name, "left-open");
        assert!(trace.spans[1].end >= trace.spans[1].start);
    }

    #[test]
    fn counters_outside_spans_land_on_the_root() {
        let mut t = Tracer::logical();
        t.add("orphan", 2);
        t.gauge("g", 0.5);
        let trace = t.finish();
        assert_eq!(trace.counters.get("orphan"), Some(&2));
        assert_eq!(trace.gauges.get("g"), Some(&0.5));
        assert_eq!(trace.counter_total("orphan"), 2);
    }

    #[test]
    fn wall_mode_produces_monotone_stamps() {
        let mut t = Tracer::wall();
        t.scoped(SpanKey::new("w"), |t| t.add("x", 1));
        let trace = t.finish();
        assert_eq!(trace.mode, ClockMode::Wall);
        let s = &trace.spans[0];
        assert!(s.end >= s.start);
    }
}
