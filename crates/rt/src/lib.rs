//! `columbia-rt`: the workspace's zero-dependency determinism runtime.
//!
//! The reproduction's tier-1 contract is a fully *hermetic* build:
//! `cargo build --release --offline && cargo test -q --offline` with no
//! crates-io dependency anywhere in the graph, and bit-identical results
//! across consecutive runs. This crate supplies the four pieces of
//! infrastructure that previously pulled in external crates:
//!
//! * [`rng`] — SplitMix64-seeded PCG32 with the `seed_from_u64` /
//!   `gen_range` / `shuffle` surface the mesh generator, partitioner and
//!   tests use (replaces `rand`);
//! * [`channel`] — unbounded MPMC channels over `Mutex`/`Condvar` for the
//!   ranks-as-threads comm runtime (replaces `crossbeam::channel`);
//! * [`props`] — a deterministic property-testing harness with seeded case
//!   generation, fixed case counts and failure-seed replay (replaces
//!   `proptest`);
//! * [`bench`] — a micro-benchmark timing harness for the
//!   `harness = false` bench targets (replaces `criterion`);
//! * [`fault`] — seeded, stateless fault schedules (message drop /
//!   duplicate / delay / reorder, barrier stalls, database-case
//!   poisoning) that the comm runtime injects deterministically;
//! * [`trace`] — deterministic observability: hierarchical spans keyed by
//!   logical position (rank, level, cycle, case id) with a logical
//!   event-count clock in test mode and wall time in bench mode, plus
//!   typed counters (replaces nothing — closes the instrumentation gap);
//! * [`json`] — a byte-stable JSON writer for trace and scaling reports
//!   (replaces `serde_json` where a repo would normally reach for it);
//! * [`env`] — typed, unit-tested parsing of every `COLUMBIA_*`
//!   environment knob (seeds, severities, slow-test and quick-bench
//!   flags, executor backend), so no harness hand-rolls `std::env::var`;
//! * [`timeq`] — the deterministic `(time, key, seq)` discrete-event
//!   queue that drives the cooperative event executor (ranks as resumable
//!   tasks instead of free-running OS threads).
//!
//! Everything here is plain `std`; the crate must never grow a dependency.

pub mod bench;
pub mod channel;
pub mod env;
pub mod fault;
pub mod json;
pub mod props;
pub mod rng;
pub mod timeq;
pub mod trace;

pub use fault::{CasePlan, FaultConfig, FaultPlan, MessageAction};
pub use json::Json;
pub use rng::{derive_seed, splitmix64, Pcg32};
pub use timeq::TimeQueue;
pub use trace::{ClockMode, Span, SpanKey, Trace, Tracer};
