//! `columbia-rt`: the workspace's zero-dependency determinism runtime.
//!
//! The reproduction's tier-1 contract is a fully *hermetic* build:
//! `cargo build --release --offline && cargo test -q --offline` with no
//! crates-io dependency anywhere in the graph, and bit-identical results
//! across consecutive runs. This crate supplies the four pieces of
//! infrastructure that previously pulled in external crates:
//!
//! * [`rng`] — SplitMix64-seeded PCG32 with the `seed_from_u64` /
//!   `gen_range` / `shuffle` surface the mesh generator, partitioner and
//!   tests use (replaces `rand`);
//! * [`channel`] — unbounded MPMC channels over `Mutex`/`Condvar` for the
//!   ranks-as-threads comm runtime (replaces `crossbeam::channel`);
//! * [`props`] — a deterministic property-testing harness with seeded case
//!   generation, fixed case counts and failure-seed replay (replaces
//!   `proptest`);
//! * [`bench`] — a micro-benchmark timing harness for the
//!   `harness = false` bench targets (replaces `criterion`);
//! * [`fault`] — seeded, stateless fault schedules (message drop /
//!   duplicate / delay / reorder, barrier stalls, database-case
//!   poisoning) that the comm runtime injects deterministically.
//!
//! Everything here is plain `std`; the crate must never grow a dependency.

pub mod bench;
pub mod channel;
pub mod fault;
pub mod props;
pub mod rng;

pub use fault::{CasePlan, FaultConfig, FaultPlan, MessageAction};
pub use rng::{derive_seed, splitmix64, Pcg32};
