//! Deterministic property-based testing.
//!
//! A miniature, fully offline `proptest` replacement: every property runs a
//! *fixed* number of cases from a *fixed* base seed, so `cargo test` is
//! bit-identical across runs and machines. Each case gets its own PRNG
//! derived from `(base seed, case index)`; when a case fails, the harness
//! reports the case index and seed so the exact inputs can be replayed with
//! `COLUMBIA_PT_REPLAY=<seed>` (optionally narrowing to one property via
//! the normal test filter).
//!
//! ```
//! columbia_rt::props! {
//!     config: columbia_rt::props::Config::default();
//!
//!     /// Addition commutes.
//!     fn prop_add_commutes(a in -1.0f64..1.0, b in -1.0f64..1.0) {
//!         assert_eq!(a + b, b + a);
//!     }
//! }
//! # fn main() {}
//! ```

use crate::rng::{derive_seed, Pcg32};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default number of cases per property — matches proptest's default so the
/// ported suites run at least as many cases as before.
pub const DEFAULT_CASES: u32 = 256;

/// Workspace-wide default base seed (arbitrary but fixed forever; changing
/// it changes every generated case).
pub const DEFAULT_SEED: u64 = 0xC01_0B1A_2005;

/// Per-property run configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases.
    pub cases: u32,
    /// Base seed; case `i` runs with `derive_seed(seed, i)`.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: DEFAULT_CASES,
            seed: DEFAULT_SEED,
        }
    }
}

impl Config {
    /// Fixed case count with the default seed.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }

    /// Override the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A deterministic value generator, the analogue of `proptest::Strategy`.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut Pcg32) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[inline]
            fn generate(&self, rng: &mut Pcg32) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}
impl_range_strategy!(u32, u64, usize, i32, i64, f64);

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    #[inline]
    fn generate(&self, rng: &mut Pcg32) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Constant strategy (the analogue of `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Pcg32) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut Pcg32) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// `Vec` strategy with a length range — the analogue of
/// `proptest::collection::vec`.
pub struct VecStrategy<S: Strategy> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut Pcg32) -> Vec<S::Value> {
        let n = if self.len.start + 1 >= self.len.end {
            self.len.start
        } else {
            rng.gen_range(self.len.clone())
        };
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// A vector of `elem`-generated values with length drawn from `len`.
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { elem, len }
}

/// Fixed-size array strategy — the analogue of `proptest::array::uniformN`.
pub struct ArrayStrategy<S: Strategy, const N: usize> {
    elem: S,
}

impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut Pcg32) -> [S::Value; N] {
        std::array::from_fn(|_| self.elem.generate(rng))
    }
}

/// An `[T; N]` of independently `elem`-generated values.
pub fn array<S: Strategy, const N: usize>(elem: S) -> ArrayStrategy<S, N> {
    ArrayStrategy { elem }
}

/// Run `body` for every case of `config`, reporting the failing case's seed
/// on panic. Drives the [`crate::props!`] macro; call directly for
/// hand-rolled properties.
pub fn run_cases<F: FnMut(&mut Pcg32)>(config: &Config, name: &str, mut body: F) {
    // Replay mode: run exactly one case from the given seed.
    if let Some(seed) = crate::env::pt_replay() {
        let mut rng = Pcg32::seed_from_u64(seed);
        eprintln!("{name}: replaying single case with seed {seed:#x}");
        body(&mut rng);
        return;
    }
    for case in 0..config.cases {
        let case_seed = derive_seed(config.seed, case as u64);
        let mut rng = Pcg32::seed_from_u64(case_seed);
        let result = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
        if let Err(panic) = result {
            eprintln!(
                "property `{name}` failed at case {case}/{} (seed {case_seed:#x}); \
                 replay with COLUMBIA_PT_REPLAY={case_seed:#x}",
                config.cases
            );
            resume_unwind(panic);
        }
    }
}

/// Declare deterministic property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]` that
/// runs the body for every generated case. An optional leading
/// `config: <expr>;` sets the case count / base seed for the whole block.
#[macro_export]
macro_rules! props {
    (
        config: $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __rt_config: $crate::props::Config = $cfg;
                $crate::props::run_cases(
                    &__rt_config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__rt_rng| {
                        $(let $arg = $crate::props::Strategy::generate(&($strat), __rt_rng);)+
                        $body
                    },
                );
            }
        )+
    };
    ( $($rest:tt)+ ) => {
        $crate::props! { config: $crate::props::Config::default(); $($rest)+ }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_across_runs() {
        let config = Config::with_cases(32);
        let collect = || {
            let mut vals = Vec::new();
            run_cases(&config, "det", |rng| vals.push(rng.next_u64()));
            vals
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn case_count_is_honoured() {
        let mut n = 0;
        run_cases(&Config::with_cases(77), "count", |_| n += 1);
        assert_eq!(n, 77);
    }

    #[test]
    fn failing_case_reports_and_propagates() {
        let config = Config::with_cases(50);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut n = 0u32;
            run_cases(&config, "boom", |_| {
                n += 1;
                assert!(n < 10, "synthetic failure");
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let s = vec(0u32..5, 2..7);
        let mut rng = Pcg32::seed_from_u64(1);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn array_and_tuple_strategies_compose() {
        let s = vec((0u32..10, -1.0f64..1.0), 1..4);
        let a = array::<_, 16>(-1.0f64..1.0);
        let mut rng = Pcg32::seed_from_u64(2);
        let v = s.generate(&mut rng);
        assert!(!v.is_empty());
        let arr = a.generate(&mut rng);
        assert!(arr.iter().all(|x| (-1.0..1.0).contains(x)));
    }

    // The macro itself, exercised end to end.
    crate::props! {
        config: crate::props::Config::with_cases(64);

        /// Generated values respect their strategies.
        fn prop_macro_generates_in_range(
            x in 0u32..100,
            y in -1.0f64..=1.0,
            v in crate::props::vec(0usize..9, 1..5),
        ) {
            assert!(x < 100);
            assert!((-1.0..=1.0).contains(&y));
            assert!(!v.is_empty() && v.iter().all(|&e| e < 9));
        }
    }

    crate::props! {
        /// Default-config form (no `config:` prefix).
        fn prop_macro_default_config(a in 1u64..1000) {
            assert!((1..1000).contains(&a));
        }
    }
}
