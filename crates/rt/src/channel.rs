//! Unbounded MPMC channels over `Mutex` + `Condvar`.
//!
//! A drop-in replacement for the `crossbeam::channel` subset the comm
//! runtime uses: cloneable senders *and* receivers, blocking `recv`,
//! `try_recv`, and `recv_timeout` with disconnect detection. Both halves
//! are `Send + Sync`, so a rank context can hold its receiver while peers
//! hold cloned senders, exactly like the crossbeam original.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent value is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders have disconnected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty but senders remain.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// Channel empty and all senders dropped.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Sending half; clone freely across threads.
pub struct Sender<T>(Arc<Shared<T>>);

/// Receiving half; clone freely across threads (MPMC — each message is
/// delivered to exactly one receiver).
pub struct Receiver<T>(Arc<Shared<T>>);

/// Create an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender(shared.clone()), Receiver(shared))
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.senders.fetch_add(1, Ordering::Relaxed);
        Sender(self.0.clone())
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake blocked receivers so they observe the
            // disconnect.
            let _guard = self.0.queue.lock().unwrap();
            self.0.ready.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Enqueue a message; fails only when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.0.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        let mut q = self.0.queue.lock().unwrap();
        q.push_back(value);
        drop(q);
        self.0.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.receivers.fetch_add(1, Ordering::Relaxed);
        Receiver(self.0.clone())
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.0.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.0.queue.lock().unwrap();
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            q = self.0.ready.wait(q).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.0.queue.lock().unwrap();
        if let Some(v) = q.pop_front() {
            return Ok(v);
        }
        if self.0.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Block up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.0.queue.lock().unwrap();
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) = self.0.ready.wait_timeout(q, deadline - now).unwrap();
            q = guard;
            if res.timed_out() && q.is_empty() {
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_a_sender() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = unbounded();
        let h = thread::spawn(move || rx.recv().unwrap());
        thread::sleep(Duration::from_millis(20));
        tx.send(99u32).unwrap();
        assert_eq!(h.join().unwrap(), 99);
    }

    #[test]
    fn disconnect_unblocks_receiver() {
        let (tx, rx) = unbounded::<u8>();
        let h = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(10));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn queued_messages_survive_sender_drop() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_recv_reports_empty_then_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5u64).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(3u8), Err(SendError(3)));
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = unbounded();
        let n = 1000;
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..n / 2 {
                        tx.send(p * (n / 2) + i).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        drop(tx);
        drop(rx);
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }
}
