//! Deterministic pseudo-random number generation.
//!
//! A SplitMix64 seed expander feeding a PCG32 (XSH-RR 64/32) stream — the
//! minimal, fully reproducible subset of the `rand` API this workspace
//! actually uses: seeding from a `u64`, uniform ranges, and Fisher-Yates
//! shuffling. Every generator in the repo (mesh jitter, matching order,
//! property-test cases) threads an explicit `u64` seed through this type,
//! so two runs of any test or figure binary are bit-identical.

use std::ops::{Range, RangeInclusive};

/// One step of the SplitMix64 sequence; used to expand seeds and to derive
/// independent per-case / per-level seeds from a base seed.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a decorrelated child seed from `(base, index)` — used wherever a
/// driver hands seeds to sub-generators (coarsening levels, test cases).
#[inline]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut s = base ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
    splitmix64(&mut s)
}

/// PCG32 (XSH-RR 64/32): 64-bit state, 32-bit output, period 2^64.
///
/// Small, fast, and statistically solid for the mesh/partition workloads
/// here; *not* cryptographic.
#[derive(Clone, Debug)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Seed deterministically from a single `u64` (SplitMix64-expanded, so
    /// nearby seeds give uncorrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let state = splitmix64(&mut sm);
        let inc = splitmix64(&mut sm) | 1; // stream increment must be odd
        let mut rng = Pcg32 { state: 0, inc };
        rng.state = rng.state.wrapping_add(state);
        rng.next_u32();
        rng
    }

    /// Next 32 uniform bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform integer in `[0, bound)` (Lemire widening multiply
    /// with rejection).
    #[inline]
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform sample from a range; supports the integer `Range` types and
    /// `Range`/`RangeInclusive` over `f64` used across the workspace.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// In-place Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Ranges [`Pcg32::gen_range`] can sample from.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut Pcg32) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Pcg32) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.gen_below(span) as i128) as $t
            }
        }
    )+};
}
impl_int_range!(u32, u64, usize, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Pcg32) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Pcg32) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty range");
        // Scale the half-open unit sample to the closed interval; for the
        // jitter-style symmetric ranges used here the endpoint bias of one
        // ulp is irrelevant.
        a + rng.gen_f64() * (b - a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Pcg32::seed_from_u64(42);
        let mut b = Pcg32::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg32::seed_from_u64(1);
        let mut b = Pcg32::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(
            same < 4,
            "streams should be uncorrelated, {same} collisions"
        );
    }

    #[test]
    fn gen_below_is_in_range_and_covers() {
        let mut rng = Pcg32::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_below(10) as usize;
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = Pcg32::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
        }
    }

    #[test]
    fn f64_ranges_respect_bounds() {
        let mut rng = Pcg32::seed_from_u64(13);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5f64..3.5);
            assert!((-2.5..3.5).contains(&v));
            let w = rng.gen_range(-0.1f64..=0.1);
            assert!((-0.1..=0.1).contains(&w));
        }
    }

    #[test]
    fn f64_mean_is_centred() {
        let mut rng = Pcg32::seed_from_u64(17);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut v: Vec<u32> = (0..50).collect();
        Pcg32::seed_from_u64(3).shuffle(&mut v);
        let mut w: Vec<u32> = (0..50).collect();
        Pcg32::seed_from_u64(3).shuffle(&mut w);
        assert_eq!(v, w);
        assert_ne!(v, (0..50).collect::<Vec<u32>>(), "shuffle changed order");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn derive_seed_decorrelates() {
        assert_ne!(derive_seed(0, 0), derive_seed(0, 1));
        assert_ne!(derive_seed(0, 0), derive_seed(1, 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Pcg32::seed_from_u64(0).gen_range(5u32..5);
    }
}
