//! Deterministic discrete-event time queue.
//!
//! The scheduling core of the event executor (ROADMAP item 1, cyclotron's
//! `timeq.rs` idiom): events are ordered by `(time, key, seq)` where `seq`
//! is a monotone insertion counter, so the pop order is a pure function of
//! the push history — never of wall clock, thread timing or hash order.
//! Three invariants are load-bearing for executor determinism and are
//! pinned by the property suite in this module:
//!
//! * **monotonic time** — `pop` never goes backwards: the queue's `now`
//!   only advances, and pushing an event before `now` is a caller bug
//!   (panic, not silent clamping);
//! * **stable tie-breaking** — events at the same time pop in ascending
//!   `key` order, and same `(time, key)` events pop in insertion (`seq`)
//!   order, so "wake every rank at t+1" resolves identically on every run;
//! * **no lost or duplicated events** — every push is popped exactly once
//!   (audited by the `pushed`/`popped` counters the executor asserts over
//!   at teardown).

use std::collections::BTreeMap;

/// A deterministic event queue: `pop` yields events in `(time, key, seq)`
/// order and advances the queue's virtual clock to the popped time.
///
/// `key` is the tie-breaking identity of the event's subject — the event
/// executor uses the rank id — and `seq` is assigned internally per push.
#[derive(Debug, Clone, Default)]
pub struct TimeQueue<E> {
    /// Pending events keyed by `(time, key, seq)` — BTreeMap order IS the
    /// pop order, with no hashing anywhere near the schedule.
    events: BTreeMap<(u64, u64, u64), E>,
    /// Virtual clock: the time of the most recently popped event.
    now: u64,
    /// Monotone insertion counter (never reset; ties within one
    /// `(time, key)` pop FIFO).
    seq: u64,
    /// Lifetime audit counters for the no-lost/no-duplicate invariant.
    pushed: u64,
    popped: u64,
}

impl<E> TimeQueue<E> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        TimeQueue {
            events: BTreeMap::new(),
            now: 0,
            seq: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// The virtual clock: the time of the last popped event (0 initially).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Lifetime number of pushes.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Lifetime number of pops.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Schedule `event` for `key` at absolute `time`.
    ///
    /// # Panics
    /// If `time` lies before the virtual clock — the caller would be
    /// rewriting history and the pop order would stop being monotone.
    pub fn push(&mut self, time: u64, key: u64, event: E) {
        assert!(
            time >= self.now,
            "event scheduled at t={time} behind the clock (now={})",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.pushed += 1;
        let prev = self.events.insert((time, key, seq), event);
        debug_assert!(prev.is_none(), "seq counter collision");
    }

    /// Schedule `event` for `key` at `now + delay`.
    pub fn push_after(&mut self, delay: u64, key: u64, event: E) {
        self.push(self.now.saturating_add(delay), key, event);
    }

    /// Pop the earliest event — smallest `(time, key, seq)` — advancing
    /// the clock to its time. Returns `(time, key, event)`.
    pub fn pop(&mut self) -> Option<(u64, u64, E)> {
        let (&(time, key, _seq), _) = self.events.iter().next()?;
        let event = self
            .events
            .remove(&(time, key, _seq))
            .expect("peeked key vanished");
        self.now = time;
        self.popped += 1;
        Some((time, key, event))
    }

    /// The earliest pending event without popping it.
    pub fn peek(&self) -> Option<(u64, u64, &E)> {
        self.events
            .iter()
            .next()
            .map(|(&(time, key, _), e)| (time, key, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_key_then_insertion_order() {
        let mut q = TimeQueue::new();
        q.push(5, 1, "t5k1");
        q.push(3, 9, "t3k9");
        q.push(3, 2, "t3k2-first");
        q.push(3, 2, "t3k2-second");
        q.push(7, 0, "t7k0");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, ["t3k2-first", "t3k2-second", "t3k9", "t5k1", "t7k0"]);
        assert_eq!(q.now(), 7);
        assert_eq!(q.pushed(), 5);
        assert_eq!(q.popped(), 5);
    }

    #[test]
    fn push_after_schedules_relative_to_the_clock() {
        let mut q = TimeQueue::new();
        q.push(4, 0, ());
        q.pop();
        assert_eq!(q.now(), 4);
        q.push_after(1, 3, ());
        assert_eq!(q.peek(), Some((5, 3, &())));
    }

    #[test]
    #[should_panic(expected = "behind the clock")]
    fn pushing_into_the_past_panics() {
        let mut q = TimeQueue::new();
        q.push(10, 0, ());
        q.pop();
        q.push(9, 0, ());
    }

    #[test]
    fn empty_queue_pops_none_and_keeps_time() {
        let mut q: TimeQueue<u8> = TimeQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), 0);
        q.push(2, 0, 7);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((2, 0, 7)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), 2, "failed pops must not move the clock");
    }

    // Property suite: the three executor-determinism invariants under
    // randomized interleaved push/pop traffic (see module docs).
    crate::props! {
        config: crate::props::Config::with_cases(64);

        /// Monotonic time + stable ties: however pushes and pops
        /// interleave, the popped sequence is non-decreasing in time,
        /// ascending in key within a time, and FIFO within a (time, key).
        fn prop_pop_order_is_total_and_stable(seed in 0u64..u64::MAX, n_ops in 10usize..200) {
            let mut rng = crate::Pcg32::seed_from_u64(seed);
            let mut q = TimeQueue::new();
            let mut popped: Vec<(u64, u64, u64)> = Vec::new(); // (time, key, push id)
            let mut next_id = 0u64;
            for _ in 0..n_ops {
                if rng.gen_range(0u32..3) < 2 {
                    let t = q.now() + rng.gen_range(0u64..5);
                    let k = rng.gen_range(0u64..4);
                    q.push(t, k, next_id);
                    next_id += 1;
                } else if let Some((t, k, id)) = q.pop() {
                    popped.push((t, k, id));
                }
            }
            while let Some((t, k, id)) = q.pop() {
                popped.push((t, k, id));
            }
            for w in popped.windows(2) {
                let ((t0, _, _), (t1, _, _)) = (w[0], w[1]);
                assert!(t0 <= t1, "time went backwards: {t0} then {t1} (seed {seed})");
            }
            // Within one drain run (no pushes in between), same-time events
            // come out key-ascending, and same-(time, key) events FIFO by
            // push id. Interleaved pushes can only add events at >= now, so
            // checking adjacent pairs is sufficient.
            for w in popped.windows(2) {
                let ((t0, k0, i0), (t1, k1, i1)) = (w[0], w[1]);
                if t0 == t1 && k0 == k1 {
                    assert!(i0 < i1, "FIFO broken within (t={t0}, k={k0}) (seed {seed})");
                }
            }
        }

        /// No lost or duplicated events: every push id comes out exactly
        /// once once the queue is drained, and the audit counters agree.
        fn prop_no_lost_or_duplicated_events(seed in 0u64..u64::MAX, n_ops in 10usize..200) {
            let mut rng = crate::Pcg32::seed_from_u64(seed);
            let mut q = TimeQueue::new();
            let mut pushed_ids = Vec::new();
            let mut popped_ids = Vec::new();
            for _ in 0..n_ops {
                if rng.gen_range(0u32..2) == 0 {
                    let id = pushed_ids.len() as u64;
                    q.push(q.now() + rng.gen_range(0u64..3), rng.gen_range(0u64..5), id);
                    pushed_ids.push(id);
                } else if let Some((_, _, id)) = q.pop() {
                    popped_ids.push(id);
                }
            }
            while let Some((_, _, id)) = q.pop() {
                popped_ids.push(id);
            }
            let mut sorted = popped_ids.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, pushed_ids, "lost or duplicated events (seed {seed})");
            assert_eq!(q.pushed(), pushed_ids.len() as u64);
            assert_eq!(q.popped(), popped_ids.len() as u64);
            assert!(q.is_empty());
        }

        /// The schedule is a pure function of the push history: replaying
        /// the same pseudo-random op sequence yields the identical popped
        /// sequence, times included.
        fn prop_replay_is_bit_identical(seed in 0u64..u64::MAX) {
            let run = || {
                let mut rng = crate::Pcg32::seed_from_u64(seed);
                let mut q = TimeQueue::new();
                let mut log = Vec::new();
                for i in 0..100u64 {
                    if rng.gen_range(0u32..3) < 2 {
                        q.push(q.now() + rng.gen_range(0u64..4), rng.gen_range(0u64..6), i);
                    } else if let Some(ev) = q.pop() {
                        log.push(ev);
                    }
                }
                while let Some(ev) = q.pop() {
                    log.push(ev);
                }
                log
            };
            assert_eq!(run(), run(), "replay diverged (seed {seed})");
        }
    }
}
