//! Typed parsing of the workspace's `COLUMBIA_*` environment knobs.
//!
//! Every knob the workspace reads is parsed here, once, with one
//! documented grammar — test files and harnesses must not hand-roll
//! `std::env::var` calls. The full set:
//!
//! | Variable                  | Grammar                  | Default      | Consumers                                  |
//! |---------------------------|--------------------------|--------------|--------------------------------------------|
//! | `COLUMBIA_FAULT_SEED`     | decimal or `0x`-hex u64  | `0xC01D_FA17`| CI fault matrix, `tests/fault_injection.rs`|
//! | `COLUMBIA_FAULT_SEVERITY` | `mild` \| `severe`       | `mild`       | CI fault matrix, `tests/fault_injection.rs`|
//! | `COLUMBIA_SLOW_TESTS`     | set and not `"0"` ⇒ on   | off          | 8-rank parity widths, paper-scale variants |
//! | `COLUMBIA_BENCH_QUICK`    | set ⇒ on                 | off          | [`crate::bench`] CI smoke mode             |
//! | `COLUMBIA_PT_REPLAY`      | decimal or `0x`-hex u64  | unset        | [`crate::props`] single-case replay        |
//! | `COLUMBIA_EXECUTOR`       | `threads` \| `events`    | unset        | `run_world` backend (CI executor matrix)   |
//! | `COLUMBIA_FABRIC`         | `analytic` \| `contention` | unset      | interconnect delivery model (CI fabric matrix) |
//! | `COLUMBIA_KERNELS`        | `scalar` \| `simd`       | unset        | dense-kernel path over the plane-resident state (batched sweeps vs scalar oracle; storage layout unchanged) |
//! | `COLUMBIA_DB_CACHE`       | decimal or `0x`-hex usize | unset       | database-server hot-region cache capacity (cells) |
//! | `COLUMBIA_DB_FALLBACK`    | `strict` \| `nearest`    | unset        | database-server degraded-answer policy for quarantine holes |
//! | `COLUMBIA_DB_REFINE`      | decimal or `0x`-hex usize | unset       | database-server refinement re-runs per pump     |
//!
//! The parsers are split into pure `parse_*` functions (unit-testable
//! without touching process state) and thin `std::env` wrappers, so the
//! grammar is pinned by tests that never race over environment variables.
//! Enum-valued knobs (`COLUMBIA_EXECUTOR`, `COLUMBIA_FABRIC`) report a
//! typed [`EnvError`] carrying the variable name, the offending value and
//! the accepted grammar, so harnesses can render or match on the failure
//! instead of catching a panic.

use crate::fault::FaultConfig;

/// A malformed `COLUMBIA_*` environment value: which variable, what it
/// held, and the grammar it violated. Returned by the enum-knob parsers
/// ([`parse_executor`], [`parse_fabric`]) so callers get a matchable error
/// instead of a formatted panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnvError {
    /// The environment variable the value came from.
    pub var: &'static str,
    /// The offending value, verbatim (pre-trim).
    pub value: String,
    /// The accepted grammar, e.g. `threads|events`.
    pub expected: &'static str,
}

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: bad value {:?} (use {})",
            self.var, self.value, self.expected
        )
    }
}

impl std::error::Error for EnvError {}

/// Fault seed used when `COLUMBIA_FAULT_SEED` is unset.
pub const DEFAULT_FAULT_SEED: u64 = 0xC01D_FA17;

/// Parse a u64 seed in the knob grammar: decimal, or hex with a `0x`/`0X`
/// prefix. Surrounding whitespace is ignored.
pub fn parse_seed(s: &str) -> Result<u64, String> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16)
            .map_err(|e| format!("bad hex seed {s:?}: {e}"))
    } else {
        s.replace('_', "")
            .parse()
            .map_err(|e| format!("bad seed {s:?}: {e}"))
    }
}

/// Chaos severity selected by `COLUMBIA_FAULT_SEVERITY`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    Mild,
    Severe,
}

impl Severity {
    /// The matching comm-layer fault profile.
    pub fn config(self) -> FaultConfig {
        match self {
            Severity::Mild => FaultConfig::mild(),
            Severity::Severe => FaultConfig::severe(),
        }
    }
}

/// Parse a `COLUMBIA_FAULT_SEVERITY` value; `None` means unset.
pub fn parse_severity(v: Option<&str>) -> Result<Severity, String> {
    match v.map(str::trim) {
        None | Some("mild") => Ok(Severity::Mild),
        Some("severe") => Ok(Severity::Severe),
        Some(other) => Err(format!("bad severity {other:?} (use mild|severe)")),
    }
}

/// Boolean knob: set and not literally `"0"`.
pub fn parse_flag(v: Option<&str>) -> bool {
    v.is_some_and(|v| v.trim() != "0")
}

/// `COLUMBIA_FAULT_SEED` for this run (CI fault-matrix seed), or
/// [`DEFAULT_FAULT_SEED`].
pub fn fault_seed() -> u64 {
    match std::env::var("COLUMBIA_FAULT_SEED") {
        Ok(s) => parse_seed(&s).expect("COLUMBIA_FAULT_SEED"),
        Err(_) => DEFAULT_FAULT_SEED,
    }
}

/// `COLUMBIA_FAULT_SEVERITY` for this run, default [`Severity::Mild`].
pub fn fault_severity() -> Severity {
    parse_severity(std::env::var("COLUMBIA_FAULT_SEVERITY").ok().as_deref())
        .expect("COLUMBIA_FAULT_SEVERITY")
}

/// `COLUMBIA_SLOW_TESTS`: opt in to the slow, wide test variants (set in
/// CI; any value but `"0"` enables).
pub fn slow_tests() -> bool {
    parse_flag(std::env::var("COLUMBIA_SLOW_TESTS").ok().as_deref())
}

/// `COLUMBIA_BENCH_QUICK`: one short sample per benchmark (CI smoke mode;
/// presence enables).
pub fn bench_quick() -> bool {
    std::env::var_os("COLUMBIA_BENCH_QUICK").is_some()
}

/// `COLUMBIA_PT_REPLAY`: replay one property-test case from this seed.
pub fn pt_replay() -> Option<u64> {
    std::env::var("COLUMBIA_PT_REPLAY")
        .ok()
        .map(|s| parse_seed(&s).expect("COLUMBIA_PT_REPLAY"))
}

/// The `run_world` backend selected by `COLUMBIA_EXECUTOR`.
///
/// `Threads` is the classic rank-per-OS-thread runtime; `Events` hosts
/// every rank as a cooperative task driven by one deterministic
/// [`crate::timeq::TimeQueue`], so paper-scale worlds (512/1024/2016
/// ranks) run on a laptop. Both produce bit-identical payloads, comm
/// counters and trace JSON — pinned by `tests/executor_parity.rs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutorKind {
    /// One OS thread per rank (preemptive, kernel-scheduled).
    Threads,
    /// Cooperative rank tasks on a deterministic event queue.
    Events,
}

/// Parse a `COLUMBIA_EXECUTOR` value; `None` means unset (caller default).
/// Malformed values yield the typed [`EnvError`], never a panic.
pub fn parse_executor(v: Option<&str>) -> Result<Option<ExecutorKind>, EnvError> {
    match v.map(str::trim) {
        None => Ok(None),
        Some("threads") => Ok(Some(ExecutorKind::Threads)),
        Some("events") => Ok(Some(ExecutorKind::Events)),
        Some(_) => Err(EnvError {
            var: "COLUMBIA_EXECUTOR",
            value: v.unwrap_or_default().to_string(),
            expected: "threads|events",
        }),
    }
}

/// `COLUMBIA_EXECUTOR` for this run; `None` when unset (the context picks
/// its default, currently [`ExecutorKind::Threads`]).
pub fn executor() -> Option<ExecutorKind> {
    try_executor().unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`executor`]: the typed [`EnvError`] instead of a
/// panic on a malformed value.
pub fn try_executor() -> Result<Option<ExecutorKind>, EnvError> {
    parse_executor(std::env::var("COLUMBIA_EXECUTOR").ok().as_deref())
}

/// The interconnect delivery model selected by `COLUMBIA_FABRIC`.
///
/// `Analytic` is the seed behaviour and the reference oracle: delivery
/// cost comes from the closed-form latency/bandwidth curves in
/// `columbia_machine::interconnect`. `Contention` routes every event-
/// executor message through the discrete-event link/arbiter model in
/// `columbia_machine::contention`, so queueing delay is emergent. Payload
/// bits, `CommStats` and traces are identical either way (the model only
/// reshapes the virtual-time schedule) — pinned by
/// `tests/fabric_contention.rs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FabricKind {
    /// Closed-form latency/bandwidth delivery cost (the default).
    Analytic,
    /// Discrete-event link/arbiter/backpressure delivery cost.
    Contention,
}

/// Parse a `COLUMBIA_FABRIC` value; `None` means unset (caller default).
/// Malformed values yield the typed [`EnvError`], never a panic.
pub fn parse_fabric(v: Option<&str>) -> Result<Option<FabricKind>, EnvError> {
    match v.map(str::trim) {
        None => Ok(None),
        Some("analytic") => Ok(Some(FabricKind::Analytic)),
        Some("contention") => Ok(Some(FabricKind::Contention)),
        Some(_) => Err(EnvError {
            var: "COLUMBIA_FABRIC",
            value: v.unwrap_or_default().to_string(),
            expected: "analytic|contention",
        }),
    }
}

/// `COLUMBIA_FABRIC` for this run; `None` when unset (the context picks
/// its default, currently [`FabricKind::Analytic`]).
pub fn fabric() -> Option<FabricKind> {
    try_fabric().unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`fabric`]: the typed [`EnvError`] instead of a panic
/// on a malformed value.
pub fn try_fabric() -> Result<Option<FabricKind>, EnvError> {
    parse_fabric(std::env::var("COLUMBIA_FABRIC").ok().as_deref())
}

/// The dense-kernel path selected by `COLUMBIA_KERNELS`.
///
/// `Simd` (the default the solvers pick when the knob is unset) runs the
/// lane-interleaved batched kernels in `columbia_linalg::soa`; `Scalar`
/// runs the classic one-block-at-a-time kernels and serves as the
/// bit-identity reference oracle. The two paths produce bit-identical
/// states, residuals and FLOP counts — pinned by `tests/kernel_parity.rs`
/// — so flipping this knob must never change a golden.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// One-block-at-a-time reference kernels (the oracle path).
    Scalar,
    /// Lane-interleaved SoA batch kernels (the default path).
    Simd,
}

/// Parse a `COLUMBIA_KERNELS` value; `None` means unset (caller default).
/// Malformed values yield the typed [`EnvError`], never a panic.
pub fn parse_kernels(v: Option<&str>) -> Result<Option<KernelKind>, EnvError> {
    match v.map(str::trim) {
        None => Ok(None),
        Some("scalar") => Ok(Some(KernelKind::Scalar)),
        Some("simd") => Ok(Some(KernelKind::Simd)),
        Some(_) => Err(EnvError {
            var: "COLUMBIA_KERNELS",
            value: v.unwrap_or_default().to_string(),
            expected: "scalar|simd",
        }),
    }
}

/// `COLUMBIA_KERNELS` for this run; `None` when unset (the solvers pick
/// their default, currently [`KernelKind::Simd`]).
pub fn kernels() -> Option<KernelKind> {
    try_kernels().unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`kernels`]: the typed [`EnvError`] instead of a
/// panic on a malformed value.
pub fn try_kernels() -> Result<Option<KernelKind>, EnvError> {
    parse_kernels(std::env::var("COLUMBIA_KERNELS").ok().as_deref())
}

/// Parse a usize count in the knob grammar: decimal, or hex with a
/// `0x`/`0X` prefix, `_` separators allowed (same grammar as
/// [`parse_seed`], narrowed to `usize`).
pub fn parse_count(s: &str) -> Result<usize, String> {
    let n = parse_seed(s)?;
    usize::try_from(n).map_err(|_| format!("count {n} exceeds usize"))
}

/// The database server's degraded-answer policy for quarantine holes,
/// selected by `COLUMBIA_DB_FALLBACK`.
///
/// `Strict` (the default the server picks when the knob is unset) turns
/// every hole-touching query into a typed `LookupError::QuarantinedRegion`;
/// `Nearest` answers from the nearest valid grid node instead, with the
/// response explicitly flagged degraded. Degradation is opt-in: the server
/// never silently substitutes a neighbouring value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallbackKind {
    /// Hole-touching queries are typed errors (the default).
    Strict,
    /// Answer from the nearest valid node, flagged `degraded`.
    Nearest,
}

/// Parse a `COLUMBIA_DB_FALLBACK` value; `None` means unset (caller
/// default). Malformed values yield the typed [`EnvError`], never a panic.
pub fn parse_db_fallback(v: Option<&str>) -> Result<Option<FallbackKind>, EnvError> {
    match v.map(str::trim) {
        None => Ok(None),
        Some("strict") => Ok(Some(FallbackKind::Strict)),
        Some("nearest") => Ok(Some(FallbackKind::Nearest)),
        Some(_) => Err(EnvError {
            var: "COLUMBIA_DB_FALLBACK",
            value: v.unwrap_or_default().to_string(),
            expected: "strict|nearest",
        }),
    }
}

/// `COLUMBIA_DB_FALLBACK` for this run; `None` when unset (the server
/// picks its default, currently [`FallbackKind::Strict`]).
pub fn db_fallback() -> Option<FallbackKind> {
    try_db_fallback().unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`db_fallback`]: the typed [`EnvError`] instead of a
/// panic on a malformed value.
pub fn try_db_fallback() -> Result<Option<FallbackKind>, EnvError> {
    parse_db_fallback(std::env::var("COLUMBIA_DB_FALLBACK").ok().as_deref())
}

/// `COLUMBIA_DB_CACHE`: database-server hot-region cache capacity in
/// cells; `None` when unset (the server picks its default).
pub fn db_cache() -> Option<usize> {
    std::env::var("COLUMBIA_DB_CACHE")
        .ok()
        .map(|s| parse_count(&s).expect("COLUMBIA_DB_CACHE"))
}

/// `COLUMBIA_DB_REFINE`: database-server refinement re-runs per pump;
/// `None` when unset (the server picks its default).
pub fn db_refine() -> Option<usize> {
    std::env::var("COLUMBIA_DB_REFINE")
        .ok()
        .map(|s| parse_count(&s).expect("COLUMBIA_DB_REFINE"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_grammar_accepts_decimal_hex_and_separators() {
        assert_eq!(parse_seed("42"), Ok(42));
        assert_eq!(parse_seed(" 0xC01D_FA17 "), Ok(0xC01D_FA17));
        assert_eq!(parse_seed("0Xff"), Ok(255));
        assert_eq!(parse_seed("1_000_000"), Ok(1_000_000));
        assert!(parse_seed("0x").is_err());
        assert!(parse_seed("banana").is_err());
        assert!(parse_seed("").is_err());
    }

    #[test]
    fn severity_grammar_is_mild_severe_with_mild_default() {
        assert_eq!(parse_severity(None), Ok(Severity::Mild));
        assert_eq!(parse_severity(Some("mild")), Ok(Severity::Mild));
        assert_eq!(parse_severity(Some(" severe ")), Ok(Severity::Severe));
        assert!(parse_severity(Some("apocalyptic")).is_err());
        assert_eq!(Severity::Severe.config(), FaultConfig::severe());
        assert_eq!(Severity::Mild.config(), FaultConfig::mild());
    }

    #[test]
    fn executor_grammar_is_threads_events_with_unset_passthrough() {
        assert_eq!(parse_executor(None), Ok(None));
        assert_eq!(
            parse_executor(Some("threads")),
            Ok(Some(ExecutorKind::Threads))
        );
        assert_eq!(
            parse_executor(Some(" events ")),
            Ok(Some(ExecutorKind::Events))
        );
        assert!(parse_executor(Some("fibers")).is_err());
        assert!(parse_executor(Some("")).is_err());
    }

    #[test]
    fn malformed_executor_yields_the_typed_error_not_a_panic() {
        let err = parse_executor(Some("fibers")).unwrap_err();
        assert_eq!(err.var, "COLUMBIA_EXECUTOR");
        assert_eq!(err.value, "fibers");
        assert_eq!(err.expected, "threads|events");
        assert_eq!(
            err.to_string(),
            "COLUMBIA_EXECUTOR: bad value \"fibers\" (use threads|events)"
        );
        // The raw (pre-trim) value is preserved for faithful reporting.
        let err = parse_executor(Some(" evnets ")).unwrap_err();
        assert_eq!(err.value, " evnets ");
    }

    #[test]
    fn fabric_grammar_is_analytic_contention_with_unset_passthrough() {
        assert_eq!(parse_fabric(None), Ok(None));
        assert_eq!(
            parse_fabric(Some("analytic")),
            Ok(Some(FabricKind::Analytic))
        );
        assert_eq!(
            parse_fabric(Some(" contention ")),
            Ok(Some(FabricKind::Contention))
        );
        assert!(parse_fabric(Some("quantum")).is_err());
        assert!(parse_fabric(Some("")).is_err());
    }

    #[test]
    fn malformed_fabric_yields_the_typed_error_not_a_panic() {
        let err = parse_fabric(Some("quantum")).unwrap_err();
        assert_eq!(err.var, "COLUMBIA_FABRIC");
        assert_eq!(err.value, "quantum");
        assert_eq!(err.expected, "analytic|contention");
        assert_eq!(
            err.to_string(),
            "COLUMBIA_FABRIC: bad value \"quantum\" (use analytic|contention)"
        );
    }

    #[test]
    fn kernels_grammar_is_scalar_simd_with_unset_passthrough() {
        assert_eq!(parse_kernels(None), Ok(None));
        assert_eq!(parse_kernels(Some("scalar")), Ok(Some(KernelKind::Scalar)));
        assert_eq!(parse_kernels(Some(" simd ")), Ok(Some(KernelKind::Simd)));
        assert!(parse_kernels(Some("avx512")).is_err());
        assert!(parse_kernels(Some("")).is_err());
    }

    #[test]
    fn malformed_kernels_yields_the_typed_error_not_a_panic() {
        let err = parse_kernels(Some("avx512")).unwrap_err();
        assert_eq!(err.var, "COLUMBIA_KERNELS");
        assert_eq!(err.value, "avx512");
        assert_eq!(err.expected, "scalar|simd");
        assert_eq!(
            err.to_string(),
            "COLUMBIA_KERNELS: bad value \"avx512\" (use scalar|simd)"
        );
    }

    #[test]
    fn db_fallback_grammar_is_strict_nearest_with_unset_passthrough() {
        assert_eq!(parse_db_fallback(None), Ok(None));
        assert_eq!(
            parse_db_fallback(Some("strict")),
            Ok(Some(FallbackKind::Strict))
        );
        assert_eq!(
            parse_db_fallback(Some(" nearest ")),
            Ok(Some(FallbackKind::Nearest))
        );
        assert!(parse_db_fallback(Some("optimistic")).is_err());
        assert!(parse_db_fallback(Some("")).is_err());
        let err = parse_db_fallback(Some("optimistic")).unwrap_err();
        assert_eq!(err.var, "COLUMBIA_DB_FALLBACK");
        assert_eq!(err.expected, "strict|nearest");
        assert_eq!(
            err.to_string(),
            "COLUMBIA_DB_FALLBACK: bad value \"optimistic\" (use strict|nearest)"
        );
    }

    #[test]
    fn count_grammar_matches_the_seed_grammar_narrowed_to_usize() {
        assert_eq!(parse_count("512"), Ok(512));
        assert_eq!(parse_count(" 0x100 "), Ok(256));
        assert_eq!(parse_count("1_024"), Ok(1024));
        assert!(parse_count("banana").is_err());
        assert!(parse_count("").is_err());
    }

    #[test]
    fn flag_grammar_treats_only_zero_as_off() {
        assert!(!parse_flag(None));
        assert!(!parse_flag(Some("0")));
        assert!(parse_flag(Some("1")));
        assert!(parse_flag(Some("yes")));
        assert!(parse_flag(Some("")));
    }
}
