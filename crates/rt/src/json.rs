//! Minimal deterministic JSON writer.
//!
//! The observability layer ([`crate::trace`]) promises *byte-identical*
//! reports for identical runs, which rules out any serializer whose output
//! depends on hash ordering or platform float formatting quirks. This
//! writer is the whole contract:
//!
//! * object keys are emitted in insertion order (callers build them from
//!   ordered data — `BTreeMap` iterations, fixed field lists);
//! * `f64` values render via Rust's shortest-roundtrip formatter, which is
//!   identical on every platform for the same bit pattern (non-finite
//!   values render as `null`, as JSON requires);
//! * strings are escaped per RFC 8259;
//! * `render_pretty` produces a stable 2-space indented layout for humans
//!   and diffs.
//!
//! Plain `std` only; this crate must never grow a dependency.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (kept exact; JSON numbers are only guaranteed to 2^53 but
    /// the counters we emit stay far below that).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point (non-finite renders as `null`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from ordered pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Push a key/value pair onto an object value.
    ///
    /// # Panics
    /// If `self` is not an object.
    pub fn set(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(pairs) => pairs.push((key.into(), value)),
            _ => panic!("Json::set on a non-object"),
        }
    }

    /// Look up a key in an object (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Human-readable rendering with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    // Shortest-roundtrip; always mark the value as a float
                    // so integral f64s don't collide with Int rendering.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::UInt(u64::MAX).render(), u64::MAX.to_string());
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(2.0).render(), "2.0");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Str("a\"b\n".into()).render(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn containers_preserve_order() {
        let v = Json::obj([
            ("zeta", Json::Int(1)),
            ("alpha", Json::arr([Json::Int(2), Json::Int(3)])),
        ]);
        assert_eq!(v.render(), "{\"zeta\":1,\"alpha\":[2,3]}");
        assert_eq!(v.get("alpha").unwrap().render(), "[2,3]");
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn pretty_rendering_is_stable() {
        let v = Json::obj([("k", Json::arr([Json::Int(1)]))]);
        assert_eq!(v.render_pretty(), "{\n  \"k\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn identical_values_render_identically() {
        let build = || Json::obj([("a", Json::Num(0.1 + 0.2)), ("b", Json::Str("x".into()))]);
        assert_eq!(build().render(), build().render());
    }
}
