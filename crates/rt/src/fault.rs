//! Seeded, stateless fault injection for the communication runtime.
//!
//! The Columbia workloads the paper describes run for days on a 10,240-CPU
//! supercluster where slow links, stalled ranks and failed database cases
//! are routine. To exercise that operational regime *reproducibly*, every
//! fault decision here is a pure function of `(seed, coordinates)`:
//!
//! * [`FaultPlan::message_action`] decides, per `(from, to, tag, seq)`
//!   message occurrence, how many send attempts are dropped, whether the
//!   message is duplicated, and how many send-slots it is delayed;
//! * [`FaultPlan::barrier_stall`] decides, per `(rank, occurrence)`,
//!   whether a rank stalls entering a barrier;
//! * [`CasePlan::fails`] decides, per `(case, attempt)`, whether a
//!   database-fill case is poisoned.
//!
//! Because no shared mutable RNG is consulted, the schedule is independent
//! of thread interleaving: the same `(fault_seed, nranks)` pair produces a
//! bit-identical fault schedule — and therefore bit-identical solver
//! results and `CommStats` traces — across runs. A failing chaos run is
//! replayed by re-running with the same seed (see DESIGN.md "Fault
//! model").

use crate::rng::{derive_seed, Pcg32};

/// Domain-separation salts so message, barrier and case streams never
/// alias even when their integer coordinates coincide.
const SALT_MESSAGE: u64 = 0x4D53_4721; // "MSG!"
const SALT_BARRIER: u64 = 0x4241_5221; // "BAR!"
const SALT_CASE: u64 = 0x4341_5345; // "CASE"

/// Fault severity knobs. All rates are probabilities in `[0, 1]` applied
/// independently per message / barrier / attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Per-attempt probability that a send attempt is dropped (the bounded
    /// retry protocol then retries with a timeout).
    pub drop_rate: f64,
    /// Probability a delivered message is duplicated.
    pub dup_rate: f64,
    /// Maximum extra copies of a duplicated message.
    pub max_dups: u32,
    /// Probability a message is delayed in the sender's NIC queue.
    pub delay_rate: f64,
    /// Maximum delay, in subsequent send-slots, of a delayed message
    /// (delayed messages are also flushed at every synchronisation point,
    /// so delays reorder traffic without risking deadlock).
    pub max_delay_slots: u32,
    /// Probability a rank stalls entering a barrier.
    pub stall_rate: f64,
    /// Maximum stall length in scheduler yields.
    pub max_stall_yields: u32,
    /// Bounded retry budget for dropped messages; when every attempt drops
    /// the protocol escalates to the reliable fallback path and records a
    /// timeout.
    pub max_retries: u32,
}

impl FaultConfig {
    /// The perfect-interconnect configuration: every rate zero.
    pub const fn fault_free() -> Self {
        FaultConfig {
            drop_rate: 0.0,
            dup_rate: 0.0,
            max_dups: 1,
            delay_rate: 0.0,
            max_delay_slots: 4,
            stall_rate: 0.0,
            max_stall_yields: 16,
            max_retries: 3,
        }
    }

    /// Occasional delays and duplicates, rare drops — a healthy but busy
    /// fabric (NUMAlink-class).
    pub const fn mild() -> Self {
        FaultConfig {
            drop_rate: 0.02,
            dup_rate: 0.05,
            max_dups: 1,
            delay_rate: 0.10,
            max_delay_slots: 3,
            stall_rate: 0.02,
            max_stall_yields: 8,
            max_retries: 3,
        }
    }

    /// Frequent reordering, duplication and drops — a congested
    /// multi-node InfiniBand-class fabric.
    pub const fn severe() -> Self {
        FaultConfig {
            drop_rate: 0.15,
            dup_rate: 0.20,
            max_dups: 2,
            delay_rate: 0.35,
            max_delay_slots: 6,
            stall_rate: 0.10,
            max_stall_yields: 32,
            max_retries: 4,
        }
    }

    /// True when no fault of any kind can fire (the plan is a no-op).
    pub fn is_fault_free(&self) -> bool {
        self.drop_rate == 0.0
            && self.dup_rate == 0.0
            && self.delay_rate == 0.0
            && self.stall_rate == 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::fault_free()
    }
}

/// What the fabric does to one message occurrence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MessageAction {
    /// Send attempts dropped before one succeeds (each costs a retry).
    pub dropped_attempts: u32,
    /// True when every attempt within the retry budget dropped; the
    /// runtime escalates to the reliable fallback path and records a
    /// timeout, so the payload still arrives exactly once.
    pub timed_out: bool,
    /// Extra copies delivered (receivers deduplicate by sequence number).
    pub duplicates: u32,
    /// Send-slots the message lingers in the sender's queue (0 = sent
    /// immediately).
    pub delay_slots: u32,
}

impl MessageAction {
    /// The no-fault action.
    pub const NONE: MessageAction = MessageAction {
        dropped_attempts: 0,
        timed_out: false,
        duplicates: 0,
        delay_slots: 0,
    };
}

/// A deterministic fault schedule for one world of `nranks` ranks.
///
/// Cheap to clone/share (`Arc` it across rank threads); all methods are
/// `&self` and lock-free.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    nranks: usize,
    config: FaultConfig,
}

impl FaultPlan {
    /// Build the schedule for `(seed, nranks)` under `config`.
    pub fn new(seed: u64, nranks: usize, config: FaultConfig) -> Self {
        FaultPlan {
            seed,
            nranks,
            config,
        }
    }

    /// A plan that injects nothing (useful as an explicit control arm).
    pub fn fault_free(nranks: usize) -> Self {
        FaultPlan::new(0, nranks, FaultConfig::fault_free())
    }

    /// The seed this schedule derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// World size the schedule was built for.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The severity knobs.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// True when the plan can never inject a fault; the runtime takes its
    /// zero-overhead path.
    pub fn is_fault_free(&self) -> bool {
        self.config.is_fault_free()
    }

    /// Per-occurrence RNG: a SplitMix64 chain over the coordinates, so the
    /// decision depends only on `(seed, from, to, tag, seq)`.
    fn message_rng(&self, from: usize, to: usize, tag: u64, seq: u64) -> Pcg32 {
        let mut s = derive_seed(self.seed ^ SALT_MESSAGE, from as u64);
        s = derive_seed(s, to as u64);
        s = derive_seed(s, tag);
        s = derive_seed(s, seq);
        Pcg32::seed_from_u64(s)
    }

    /// Fault decision for occurrence `seq` of the `(from, to, tag)` stream.
    pub fn message_action(&self, from: usize, to: usize, tag: u64, seq: u64) -> MessageAction {
        if self.config.is_fault_free() {
            return MessageAction::NONE;
        }
        let mut rng = self.message_rng(from, to, tag, seq);
        let c = &self.config;

        // Bounded retry: sample a drop per attempt; if the whole budget
        // drops, the reliable fallback path delivers the payload anyway.
        let mut dropped = 0u32;
        while dropped < c.max_retries && rng.gen_f64() < c.drop_rate {
            dropped += 1;
        }
        let timed_out = dropped == c.max_retries && c.drop_rate > 0.0;

        let duplicates = if c.dup_rate > 0.0 && rng.gen_f64() < c.dup_rate {
            1 + rng.gen_below(c.max_dups.max(1) as u64) as u32
        } else {
            0
        };
        let delay_slots = if c.delay_rate > 0.0 && rng.gen_f64() < c.delay_rate {
            1 + rng.gen_below(c.max_delay_slots.max(1) as u64) as u32
        } else {
            0
        };
        MessageAction {
            dropped_attempts: dropped,
            timed_out,
            duplicates,
            delay_slots,
        }
    }

    /// Stall length (scheduler yields) for `rank`'s `occurrence`-th
    /// barrier entry; 0 means no stall.
    pub fn barrier_stall(&self, rank: usize, occurrence: u64) -> u32 {
        let c = &self.config;
        if c.stall_rate == 0.0 {
            return 0;
        }
        let mut s = derive_seed(self.seed ^ SALT_BARRIER, rank as u64);
        s = derive_seed(s, occurrence);
        let mut rng = Pcg32::seed_from_u64(s);
        if rng.gen_f64() < c.stall_rate {
            1 + rng.gen_below(c.max_stall_yields.max(1) as u64) as u32
        } else {
            0
        }
    }
}

/// Deterministic per-case failure schedule for database fills.
///
/// `poisoned` cases fail every attempt (hardware gone, geometry broken);
/// other cases fail each attempt independently with `transient_rate`
/// (node hiccup, preempted job) and succeed on retry with probability
/// `1 - transient_rate`.
#[derive(Clone, Debug, Default)]
pub struct CasePlan {
    seed: u64,
    /// Per-attempt transient failure probability for non-poisoned cases.
    pub transient_rate: f64,
    /// Case indices that fail on every attempt (quarantine targets).
    pub poisoned: Vec<u64>,
}

impl CasePlan {
    /// Schedule with only seeded transient failures.
    pub fn transient(seed: u64, transient_rate: f64) -> Self {
        CasePlan {
            seed,
            transient_rate,
            poisoned: Vec::new(),
        }
    }

    /// Mark `case` as permanently failing.
    pub fn poison(mut self, case: u64) -> Self {
        self.poisoned.push(case);
        self
    }

    /// Does attempt `attempt` of case `case` fail?
    pub fn fails(&self, case: u64, attempt: u32) -> bool {
        if self.poisoned.contains(&case) {
            return true;
        }
        if self.transient_rate == 0.0 {
            return false;
        }
        let mut s = derive_seed(self.seed ^ SALT_CASE, case);
        s = derive_seed(s, attempt as u64);
        Pcg32::seed_from_u64(s).gen_f64() < self.transient_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::new(0xC0FFEE, 8, FaultConfig::severe());
        let b = FaultPlan::new(0xC0FFEE, 8, FaultConfig::severe());
        for from in 0..8 {
            for to in 0..8 {
                for seq in 0..16 {
                    assert_eq!(
                        a.message_action(from, to, 7, seq),
                        b.message_action(from, to, 7, seq)
                    );
                }
            }
            for occ in 0..16 {
                assert_eq!(a.barrier_stall(from, occ), b.barrier_stall(from, occ));
            }
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::new(1, 4, FaultConfig::severe());
        let b = FaultPlan::new(2, 4, FaultConfig::severe());
        let differs =
            (0..200).any(|seq| a.message_action(0, 1, 0, seq) != b.message_action(0, 1, 0, seq));
        assert!(differs, "seeds 1 and 2 produced identical schedules");
    }

    #[test]
    fn fault_free_plan_never_fires() {
        let p = FaultPlan::fault_free(16);
        assert!(p.is_fault_free());
        for seq in 0..100 {
            assert_eq!(p.message_action(3, 5, 11, seq), MessageAction::NONE);
            assert_eq!(p.barrier_stall(seq as usize % 16, seq), 0);
        }
    }

    #[test]
    fn zero_rate_config_never_fires_regardless_of_seed() {
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let p = FaultPlan::new(seed, 8, FaultConfig::fault_free());
            for seq in 0..64 {
                assert_eq!(p.message_action(1, 2, 3, seq), MessageAction::NONE);
            }
        }
    }

    #[test]
    fn severe_plan_actually_injects_each_fault_kind() {
        let p = FaultPlan::new(42, 4, FaultConfig::severe());
        let mut drops = 0;
        let mut dups = 0;
        let mut delays = 0;
        for seq in 0..500 {
            let a = p.message_action(0, 1, 0, seq);
            drops += a.dropped_attempts;
            dups += a.duplicates;
            delays += (a.delay_slots > 0) as u32;
        }
        assert!(drops > 0, "no drops injected");
        assert!(dups > 0, "no duplicates injected");
        assert!(delays > 0, "no delays injected");
        let stalls = (0..200).filter(|&o| p.barrier_stall(1, o) > 0).count();
        assert!(stalls > 0, "no barrier stalls injected");
    }

    #[test]
    fn retry_budget_bounds_drops_and_flags_timeouts() {
        let cfg = FaultConfig {
            drop_rate: 1.0,
            max_retries: 3,
            ..FaultConfig::fault_free()
        };
        let p = FaultPlan::new(7, 2, cfg);
        let a = p.message_action(0, 1, 0, 0);
        assert_eq!(a.dropped_attempts, 3);
        assert!(a.timed_out, "saturated retries must escalate to a timeout");
    }

    #[test]
    fn streams_are_decorrelated_across_coordinates() {
        let p = FaultPlan::new(9, 4, FaultConfig::severe());
        // Identical seq but different (from,to,tag) should not produce an
        // identical long action sequence.
        let seq_a: Vec<_> = (0..64).map(|s| p.message_action(0, 1, 5, s)).collect();
        let seq_b: Vec<_> = (0..64).map(|s| p.message_action(1, 0, 5, s)).collect();
        let seq_c: Vec<_> = (0..64).map(|s| p.message_action(0, 1, 6, s)).collect();
        assert_ne!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn case_plan_poisons_and_retries_deterministically() {
        let plan = CasePlan::transient(11, 0.5).poison(3);
        for attempt in 0..10 {
            assert!(plan.fails(3, attempt), "poisoned case must always fail");
        }
        // Transient failures are deterministic per (case, attempt).
        let plan2 = CasePlan::transient(11, 0.5).poison(3);
        for case in 0..20 {
            for attempt in 0..5 {
                assert_eq!(plan.fails(case, attempt), plan2.fails(case, attempt));
            }
        }
        // With rate 0.5 some attempts fail and some succeed.
        let outcomes: Vec<bool> = (0..40).map(|c| plan.fails(c, 0)).collect();
        assert!(outcomes.iter().any(|&f| f));
        assert!(outcomes.iter().any(|&f| !f));
    }

    #[test]
    fn zero_transient_rate_never_fails_unpoisoned_cases() {
        let plan = CasePlan::transient(5, 0.0);
        assert!((0..100).all(|c| !plan.fails(c, 0)));
    }
}
