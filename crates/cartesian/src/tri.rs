//! Watertight triangulated component geometry.
//!
//! Cart3D consumes "a set of watertight solids, either directly from the
//! optimizer or from a CAD system". The CAD-derived SSLV geometry is not
//! available, so components are built from parametric primitives (bodies of
//! revolution, boxes, wings) that preserve what the mesher exercises:
//! component count, surface area distribution, thin gaps between bodies,
//! and control-surface deflection as a geometry transform.

use columbia_mesh::{Aabb, Triangle, Vec3};

/// A triangulated surface (one watertight component).
#[derive(Clone, Debug, Default)]
pub struct TriMesh {
    /// Vertex coordinates.
    pub vertices: Vec<Vec3>,
    /// Triangles as CCW vertex index triples (outward normals).
    pub tris: Vec<[u32; 3]>,
}

impl TriMesh {
    /// Number of triangles.
    pub fn ntris(&self) -> usize {
        self.tris.len()
    }

    /// Materialise triangle `i`.
    pub fn triangle(&self, i: usize) -> Triangle {
        let [a, b, c] = self.tris[i];
        Triangle::new(
            self.vertices[a as usize],
            self.vertices[b as usize],
            self.vertices[c as usize],
        )
    }

    /// Bounding box of the whole mesh.
    pub fn aabb(&self) -> Aabb {
        let mut bb = Aabb::empty();
        for v in &self.vertices {
            bb.expand(*v);
        }
        bb
    }

    /// Total surface area.
    pub fn area(&self) -> f64 {
        (0..self.ntris()).map(|i| self.triangle(i).area()).sum()
    }

    /// Watertightness check: every undirected edge must be shared by
    /// exactly two triangles, with opposite orientations.
    pub fn is_watertight(&self) -> bool {
        use std::collections::HashMap;
        // Per undirected edge: (orientation balance, touch count). A
        // watertight, consistently oriented surface has balance 0 and
        // exactly two touches on every edge.
        let mut edges: HashMap<(u32, u32), (i32, u32)> = HashMap::new();
        for t in &self.tris {
            for k in 0..3 {
                let (a, b) = (t[k], t[(k + 1) % 3]);
                let e = edges.entry((a.min(b), a.max(b))).or_insert((0, 0));
                e.0 += if a < b { 1 } else { -1 };
                e.1 += 1;
            }
        }
        edges.values().all(|&(bal, touch)| bal == 0 && touch == 2)
    }

    /// Translate in place.
    pub fn translate(&mut self, d: Vec3) -> &mut Self {
        for v in self.vertices.iter_mut() {
            *v += d;
        }
        self
    }

    /// Uniform scale about the origin.
    pub fn scale(&mut self, s: f64) -> &mut Self {
        for v in self.vertices.iter_mut() {
            *v = *v * s;
        }
        self
    }

    /// Rotate about an axis-aligned line through `pivot` (axis 0 = x,
    /// 1 = y, 2 = z) — used for control-surface deflection.
    pub fn rotate(&mut self, axis: usize, pivot: Vec3, angle: f64) -> &mut Self {
        let (s, c) = angle.sin_cos();
        for v in self.vertices.iter_mut() {
            let p = *v - pivot;
            let q = match axis {
                0 => Vec3::new(p.x, c * p.y - s * p.z, s * p.y + c * p.z),
                1 => Vec3::new(c * p.x + s * p.z, p.y, -s * p.x + c * p.z),
                _ => Vec3::new(c * p.x - s * p.y, s * p.x + c * p.y, p.z),
            };
            *v = q + pivot;
        }
        self
    }

    /// Closed box between `lo` and `hi` (12 triangles).
    pub fn cuboid(lo: Vec3, hi: Vec3) -> TriMesh {
        let v = vec![
            Vec3::new(lo.x, lo.y, lo.z),
            Vec3::new(hi.x, lo.y, lo.z),
            Vec3::new(hi.x, hi.y, lo.z),
            Vec3::new(lo.x, hi.y, lo.z),
            Vec3::new(lo.x, lo.y, hi.z),
            Vec3::new(hi.x, lo.y, hi.z),
            Vec3::new(hi.x, hi.y, hi.z),
            Vec3::new(lo.x, hi.y, hi.z),
        ];
        // Outward-facing CCW triangles.
        let tris = vec![
            [0, 2, 1],
            [0, 3, 2], // bottom (z = lo)
            [4, 5, 6],
            [4, 6, 7], // top
            [0, 1, 5],
            [0, 5, 4], // front (y = lo)
            [2, 3, 7],
            [2, 7, 6], // back
            [1, 2, 6],
            [1, 6, 5], // right (x = hi)
            [3, 0, 4],
            [3, 4, 7], // left
        ];
        TriMesh { vertices: v, tris }
    }

    /// Closed body of revolution about the x axis: `profile` gives
    /// `(x, radius)` stations with radius > 0 in the interior; the ends are
    /// closed with cone fans. `nseg` azimuthal segments.
    pub fn body_of_revolution(profile: &[(f64, f64)], nseg: usize) -> TriMesh {
        assert!(profile.len() >= 2 && nseg >= 3);
        let mut vertices = Vec::new();
        let mut tris: Vec<[u32; 3]> = Vec::new();
        // Nose and tail apex points.
        let nose = Vec3::new(profile[0].0, 0.0, 0.0);
        let tail = Vec3::new(profile[profile.len() - 1].0, 0.0, 0.0);
        let rings: Vec<usize> = profile
            .iter()
            .enumerate()
            .filter(|(_, &(_, r))| r > 0.0)
            .map(|(i, _)| i)
            .collect();
        let nose_id = vertices.len() as u32;
        vertices.push(nose);
        let tail_id = vertices.len() as u32;
        vertices.push(tail);
        let mut ring_start = Vec::new();
        for &ri in &rings {
            let (x, r) = profile[ri];
            ring_start.push(vertices.len() as u32);
            for s in 0..nseg {
                let th = 2.0 * std::f64::consts::PI * s as f64 / nseg as f64;
                vertices.push(Vec3::new(x, r * th.cos(), r * th.sin()));
            }
        }
        let n = nseg as u32;
        // Nose fan (x increases along the axis; CCW seen from -x outside).
        let r0 = ring_start[0];
        for s in 0..n {
            tris.push([nose_id, r0 + (s + 1) % n, r0 + s]);
        }
        // Ring-to-ring quads.
        for w in ring_start.windows(2) {
            let (a, b) = (w[0], w[1]);
            for s in 0..n {
                let s1 = (s + 1) % n;
                tris.push([a + s, a + s1, b + s1]);
                tris.push([a + s, b + s1, b + s]);
            }
        }
        // Tail fan.
        let rl = *ring_start.last().unwrap();
        for s in 0..n {
            tris.push([tail_id, rl + s, rl + (s + 1) % n]);
        }
        TriMesh { vertices, tris }
    }

    /// Simple tapered wing (closed): a hexahedral slab with an elliptic-ish
    /// chordwise taper, spanning `span` in z. Good enough as a lifting
    /// surface or control surface for the mesher.
    pub fn wing(chord: f64, thickness: f64, span: f64) -> TriMesh {
        let mut w = Self::cuboid(
            Vec3::new(0.0, -0.5 * thickness, 0.0),
            Vec3::new(chord, 0.5 * thickness, span),
        );
        // Taper the trailing half in y to mimic an airfoil wedge.
        for v in w.vertices.iter_mut() {
            let t = (v.x / chord).clamp(0.0, 1.0);
            v.y *= 1.0 - 0.7 * t;
        }
        w
    }

    /// Merge several components into one triangle soup (indices offset).
    pub fn merge(components: &[TriMesh]) -> TriMesh {
        let mut out = TriMesh::default();
        for c in components {
            let off = out.vertices.len() as u32;
            out.vertices.extend_from_slice(&c.vertices);
            out.tris
                .extend(c.tris.iter().map(|t| [t[0] + off, t[1] + off, t[2] + off]));
        }
        out
    }
}

/// A multi-component geometry plus its BVH acceleration structure.
#[derive(Clone, Debug)]
pub struct Geometry {
    /// The merged triangle soup.
    pub surface: TriMesh,
    /// Acceleration structure over `surface`.
    pub bvh: Bvh,
}

impl Geometry {
    /// Build from components (each should be watertight individually).
    pub fn new(components: &[TriMesh]) -> Geometry {
        let surface = TriMesh::merge(components);
        let bvh = Bvh::build(&surface);
        Geometry { surface, bvh }
    }

    /// Does any triangle intersect the axis-aligned box?
    pub fn intersects_box(&self, center: Vec3, half: Vec3) -> bool {
        self.bvh.intersects_box(&self.surface, center, half)
    }

    /// Is `p` inside the solid? Ray-parity with a fixed irrational-ish
    /// direction (robust against axis-aligned coincidences).
    pub fn contains(&self, p: Vec3) -> bool {
        let dir = Vec3::new(0.531241, 0.7090023, 0.4642441).normalized();
        self.bvh.ray_crossings(&self.surface, p, dir) % 2 == 1
    }

    /// Bounding box of the geometry.
    pub fn aabb(&self) -> Aabb {
        self.surface.aabb()
    }
}

/// Flat median-split BVH over triangles.
#[derive(Clone, Debug)]
pub struct Bvh {
    nodes: Vec<BvhNode>,
    /// Triangle indices, leaf ranges index into this.
    order: Vec<u32>,
}

#[derive(Clone, Debug)]
struct BvhNode {
    bb: Aabb,
    /// Left child index, or triangle range start if leaf.
    a: u32,
    /// Right child index, or triangle range end if leaf.
    b: u32,
    leaf: bool,
}

const BVH_LEAF_SIZE: usize = 8;

impl Bvh {
    /// Build over a triangle mesh.
    pub fn build(mesh: &TriMesh) -> Bvh {
        let n = mesh.ntris();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let centroids: Vec<Vec3> = (0..n).map(|i| mesh.triangle(i).centroid()).collect();
        let boxes: Vec<Aabb> = (0..n).map(|i| mesh.triangle(i).aabb()).collect();
        let mut nodes = Vec::new();
        if n == 0 {
            nodes.push(BvhNode {
                bb: Aabb::new(Vec3::ZERO, Vec3::ZERO),
                a: 0,
                b: 0,
                leaf: true,
            });
            return Bvh { nodes, order };
        }
        build_node(&mut nodes, &mut order, 0, n, &centroids, &boxes);
        Bvh { nodes, order }
    }

    /// Any triangle overlapping the box?
    pub fn intersects_box(&self, mesh: &TriMesh, center: Vec3, half: Vec3) -> bool {
        let query = Aabb::new(center - half, center + half);
        let mut stack = vec![0usize];
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni];
            if !node.bb.overlaps(&query) {
                continue;
            }
            if node.leaf {
                for &t in &self.order[node.a as usize..node.b as usize] {
                    if mesh.triangle(t as usize).overlaps_box(center, half) {
                        return true;
                    }
                }
            } else {
                stack.push(node.a as usize);
                stack.push(node.b as usize);
            }
        }
        false
    }

    /// Count ray crossings (for inside/outside parity).
    pub fn ray_crossings(&self, mesh: &TriMesh, origin: Vec3, dir: Vec3) -> usize {
        let mut count = 0;
        let mut stack = vec![0usize];
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni];
            if !ray_hits_aabb(origin, dir, &node.bb) {
                continue;
            }
            if node.leaf {
                for &t in &self.order[node.a as usize..node.b as usize] {
                    if mesh.triangle(t as usize).ray_hit(origin, dir).is_some() {
                        count += 1;
                    }
                }
            } else {
                stack.push(node.a as usize);
                stack.push(node.b as usize);
            }
        }
        count
    }
}

fn build_node(
    nodes: &mut Vec<BvhNode>,
    order: &mut [u32],
    start: usize,
    end: usize,
    centroids: &[Vec3],
    boxes: &[Aabb],
) -> u32 {
    let mut bb = Aabb::empty();
    for &t in &order[start..end] {
        bb.merge(&boxes[t as usize]);
    }
    let idx = nodes.len() as u32;
    nodes.push(BvhNode {
        bb,
        a: start as u32,
        b: end as u32,
        leaf: true,
    });
    if end - start <= BVH_LEAF_SIZE {
        return idx;
    }
    // Split along the widest axis at the centroid median.
    let ext = bb.hi - bb.lo;
    let axis = if ext.x >= ext.y && ext.x >= ext.z {
        0
    } else if ext.y >= ext.z {
        1
    } else {
        2
    };
    let mid = (start + end) / 2;
    order[start..end].select_nth_unstable_by(mid - start, |&a, &b| {
        centroids[a as usize]
            .get(axis)
            .partial_cmp(&centroids[b as usize].get(axis))
            .unwrap()
    });
    let left = build_node(nodes, order, start, mid, centroids, boxes);
    let right = build_node(nodes, order, mid, end, centroids, boxes);
    nodes[idx as usize].a = left;
    nodes[idx as usize].b = right;
    nodes[idx as usize].leaf = false;
    idx
}

fn ray_hits_aabb(origin: Vec3, dir: Vec3, bb: &Aabb) -> bool {
    let mut tmin = 0.0f64;
    let mut tmax = f64::INFINITY;
    for axis in 0..3 {
        let o = origin.get(axis);
        let d = dir.get(axis);
        let (lo, hi) = (bb.lo.get(axis), bb.hi.get(axis));
        if d.abs() < 1e-300 {
            if o < lo || o > hi {
                return false;
            }
        } else {
            let inv = 1.0 / d;
            let (t0, t1) = if inv >= 0.0 {
                ((lo - o) * inv, (hi - o) * inv)
            } else {
                ((hi - o) * inv, (lo - o) * inv)
            };
            tmin = tmin.max(t0);
            tmax = tmax.min(t1);
            if tmin > tmax {
                return false;
            }
        }
    }
    true
}

/// Build the synthetic Space Shuttle Launch Vehicle stack: orbiter-like
/// body + wing, external tank, two solid rocket boosters and attach
/// hardware (paper Figures 9 and 12). `deflect_elevon` rotates the
/// control surface (config-space parameter).
pub fn sslv_geometry(deflect_elevon: f64) -> Geometry {
    let nseg = 24;
    // External tank: big body of revolution along x in [0, 4].
    let tank = TriMesh::body_of_revolution(
        &[
            (0.0, 0.0),
            (0.4, 0.35),
            (1.0, 0.42),
            (3.2, 0.42),
            (3.8, 0.30),
            (4.0, 0.0),
        ],
        nseg,
    );
    // Two SRBs flanking the tank in y.
    let mut srb1 = TriMesh::body_of_revolution(
        &[
            (0.0, 0.0),
            (0.25, 0.16),
            (3.4, 0.16),
            (3.7, 0.19),
            (3.9, 0.0),
        ],
        nseg,
    );
    srb1.translate(Vec3::new(0.2, 0.62, 0.0));
    let mut srb2 = srb1.clone();
    srb2.translate(Vec3::new(0.0, -1.24, 0.0));
    // Orbiter: fuselage above the tank plus a wing with an elevon.
    let mut fuselage = TriMesh::body_of_revolution(
        &[
            (0.0, 0.0),
            (0.35, 0.18),
            (2.2, 0.22),
            (2.9, 0.16),
            (3.1, 0.0),
        ],
        nseg,
    );
    fuselage.translate(Vec3::new(0.6, 0.0, 0.55));
    let mut wing = TriMesh::wing(0.9, 0.07, 1.6);
    wing.translate(Vec3::new(2.0, 0.0, 0.55 - 0.8));
    let mut elevon = TriMesh::wing(0.25, 0.05, 1.5);
    elevon.translate(Vec3::new(2.92, 0.0, 0.6 - 0.8)).rotate(
        2,
        Vec3::new(2.92, 0.0, 0.0),
        deflect_elevon,
    );
    // Attach hardware: small struts between tank and orbiter / SRBs.
    let strut1 = TriMesh::cuboid(Vec3::new(1.0, -0.06, 0.40), Vec3::new(1.2, 0.06, 0.58));
    let strut2 = TriMesh::cuboid(Vec3::new(2.6, -0.06, 0.40), Vec3::new(2.8, 0.06, 0.58));
    let strut3 = TriMesh::cuboid(Vec3::new(1.6, 0.40, -0.06), Vec3::new(1.8, 0.64, 0.06));
    let strut4 = TriMesh::cuboid(Vec3::new(1.6, -0.64, -0.06), Vec3::new(1.8, -0.40, 0.06));
    Geometry::new(&[
        tank, srb1, srb2, fuselage, wing, elevon, strut1, strut2, strut3, strut4,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuboid_is_watertight_with_outward_area() {
        let c = TriMesh::cuboid(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0));
        assert!(c.is_watertight());
        assert!((c.area() - 2.0 * (2.0 + 3.0 + 6.0)).abs() < 1e-12);
        // Net (vector) area of a closed surface is zero.
        let mut net = Vec3::ZERO;
        for i in 0..c.ntris() {
            net += c.triangle(i).normal();
        }
        assert!(net.norm() < 1e-12);
    }

    #[test]
    fn body_of_revolution_watertight() {
        let b = TriMesh::body_of_revolution(&[(0.0, 0.0), (0.5, 0.3), (1.5, 0.3), (2.0, 0.0)], 16);
        assert!(b.is_watertight());
        let mut net = Vec3::ZERO;
        for i in 0..b.ntris() {
            net += b.triangle(i).normal();
        }
        assert!(net.norm() < 1e-10, "net area {net:?}");
    }

    #[test]
    fn containment_of_cuboid() {
        let g = Geometry::new(&[TriMesh::cuboid(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0))]);
        assert!(g.contains(Vec3::new(0.5, 0.5, 0.5)));
        assert!(!g.contains(Vec3::new(1.5, 0.5, 0.5)));
        assert!(!g.contains(Vec3::new(-0.1, -0.1, -0.1)));
    }

    #[test]
    fn containment_of_revolution_body() {
        let g = Geometry::new(&[TriMesh::body_of_revolution(
            &[(0.0, 0.0), (0.5, 0.4), (1.5, 0.4), (2.0, 0.0)],
            32,
        )]);
        assert!(g.contains(Vec3::new(1.0, 0.0, 0.0)));
        assert!(g.contains(Vec3::new(1.0, 0.3, 0.0)));
        assert!(!g.contains(Vec3::new(1.0, 0.5, 0.0)));
        assert!(!g.contains(Vec3::new(-0.5, 0.0, 0.0)));
    }

    #[test]
    fn bvh_box_queries_match_brute_force() {
        let g = Geometry::new(&[TriMesh::body_of_revolution(
            &[(0.0, 0.0), (0.5, 0.3), (1.5, 0.3), (2.0, 0.0)],
            12,
        )]);
        let samples = [
            (Vec3::new(1.0, 0.3, 0.0), 0.05),
            (Vec3::new(1.0, 0.0, 0.0), 0.05),
            (Vec3::new(3.0, 0.0, 0.0), 0.2),
            (Vec3::new(0.0, 0.0, 0.0), 0.3),
        ];
        for (c, h) in samples {
            let half = Vec3::new(h, h, h);
            let brute = (0..g.surface.ntris()).any(|i| g.surface.triangle(i).overlaps_box(c, half));
            assert_eq!(g.intersects_box(c, half), brute, "at {c:?} h={h}");
        }
    }

    #[test]
    fn sslv_geometry_builds_watertight_components() {
        let g = sslv_geometry(0.15);
        assert!(g.surface.ntris() > 500, "only {} tris", g.surface.ntris());
        let bb = g.aabb();
        assert!(bb.hi.x > bb.lo.x && bb.hi.y > bb.lo.y);
        // Tank interior / free air.
        assert!(g.contains(Vec3::new(2.0, 0.0, 0.0)));
        assert!(!g.contains(Vec3::new(2.0, 0.0, 2.0)));
    }

    #[test]
    fn elevon_deflection_moves_surface() {
        let g0 = sslv_geometry(0.0);
        let g1 = sslv_geometry(0.4);
        // Probe a point swept by the deflected elevon.
        let probe = Vec3::new(3.05, 0.05, 0.3);
        assert_ne!(g0.contains(probe), g1.contains(probe));
    }

    #[test]
    fn rotate_preserves_watertightness_and_area() {
        let mut w = TriMesh::wing(1.0, 0.1, 2.0);
        let a0 = w.area();
        w.rotate(2, Vec3::new(0.5, 0.0, 0.0), 0.3);
        assert!(w.is_watertight());
        assert!((w.area() - a0).abs() < 1e-9);
    }
}
