//! Cell-centred finite-volume mesh extracted from the octree.
//!
//! Flow cells are the `Cut` and `Outside` leaves. Faces connect leaf pairs
//! (2:1 jumps produce sub-faces from the finer side), domain-boundary faces
//! carry the far-field condition, and each cut cell receives a wall-closure
//! area vector `-(sum of its open face normals)` through which the solver
//! applies the wall pressure flux. Cut cells get a flow-volume fraction from
//! corner+center containment sampling and the 2.1x partitioning weight the
//! paper uses for the SSLV example.

use crate::octree::{CellAddr, LeafKind, Octree};
use crate::tri::Geometry;
use columbia_mesh::Vec3;
use columbia_sfc::CurveKind;
use std::collections::HashMap;

/// Flow-cell classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellKind {
    /// Full Cartesian hexahedron.
    Full,
    /// Cut by the surface.
    Cut,
}

/// A face between two flow cells, or between a cell and the far field.
#[derive(Clone, Copy, Debug)]
pub struct CartFace {
    /// Left cell index.
    pub a: u32,
    /// Right cell index, or `u32::MAX` for a far-field boundary face.
    pub b: u32,
    /// Area-weighted normal pointing from `a` to `b` (axis-aligned).
    pub normal: Vec3,
}

impl CartFace {
    /// Is this a far-field boundary face?
    pub fn is_boundary(&self) -> bool {
        self.b == u32::MAX
    }
}

/// The finite-volume mesh.
#[derive(Clone, Debug, Default)]
pub struct CartMesh {
    /// Cell centers.
    pub centers: Vec<Vec3>,
    /// Flow volumes (cut cells: fraction-weighted).
    pub volumes: Vec<f64>,
    /// Cell kinds.
    pub kinds: Vec<CellKind>,
    /// Partitioning weights (cut cells 2.1, full cells 1.0).
    pub weights: Vec<f64>,
    /// Wall-closure area vector per cell (non-zero only for cut cells).
    pub wall_normal: Vec<Vec3>,
    /// Interior + far-field faces.
    pub faces: Vec<CartFace>,
    /// Space-filling-curve key per cell (cells are stored in SFC order).
    pub sfc_keys: Vec<u64>,
    /// Refinement level per cell.
    pub levels: Vec<u32>,
    /// Integer cell coordinates at the cell's own level.
    pub coords: Vec<[u32; 3]>,
    /// Finest refinement level used for SFC key quantisation.
    pub max_level: u32,
}

/// Cut-cell weighting used for the SSLV decomposition in the paper.
pub const CUT_CELL_WEIGHT: f64 = 2.1;

impl CartMesh {
    /// Number of flow cells.
    pub fn ncells(&self) -> usize {
        self.centers.len()
    }

    /// Number of faces (including boundary faces).
    pub fn nfaces(&self) -> usize {
        self.faces.len()
    }

    /// Total flow volume.
    pub fn total_volume(&self) -> f64 {
        self.volumes.iter().sum()
    }

    /// Count of cut cells.
    pub fn ncut(&self) -> usize {
        self.kinds.iter().filter(|&&k| k == CellKind::Cut).count()
    }

    /// Structural validation for tests.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.ncells();
        for f in &self.faces {
            if f.a as usize >= n {
                return Err("face endpoint a out of range".into());
            }
            if !f.is_boundary() && f.b as usize >= n {
                return Err("face endpoint b out of range".into());
            }
            if !f.normal.norm().is_finite() || f.normal.norm() == 0.0 {
                return Err("degenerate face normal".into());
            }
        }
        for (i, &v) in self.volumes.iter().enumerate() {
            if !(v > 0.0) {
                return Err(format!("cell {i} has non-positive volume"));
            }
        }
        // SFC keys strictly increasing (cells sorted along the curve).
        for w in self.sfc_keys.windows(2) {
            if w[1] <= w[0] {
                return Err("cells not in SFC order".into());
            }
        }
        Ok(())
    }

    /// Geometric closure: for every cell, the sum of outward face normals
    /// plus the wall normal must vanish (discrete Gauss). Returns the
    /// maximum closure defect.
    pub fn max_closure_defect(&self) -> f64 {
        let mut acc = vec![Vec3::ZERO; self.ncells()];
        for f in &self.faces {
            acc[f.a as usize] += f.normal;
            if !f.is_boundary() {
                acc[f.b as usize] -= f.normal;
            }
        }
        acc.iter()
            .zip(self.wall_normal.iter())
            .map(|(a, w)| (*a + *w).norm())
            .fold(0.0, f64::max)
    }
}

/// Extract the flow mesh from a classified octree.
///
/// `volume_fraction_floor` clamps tiny cut-cell volumes (Cart3D handles
/// small cells by merging; we clamp — documented substitution, the solver
/// uses local time stepping so only local stiffness is affected).
pub fn extract_mesh(
    tree: &Octree,
    geom: &Geometry,
    curve: CurveKind,
    volume_fraction_floor: f64,
) -> CartMesh {
    let max_level = tree.leaves.iter().map(|(a, _)| a.level).max().unwrap_or(0);

    // Flow cells in SFC order: key at max_level resolution of the cell's
    // first (lowest-coordinate) descendant... use the cell center quantised
    // at max_level for sibling contiguity we use the *corner* coordinate.
    let mut flow: Vec<(u64, u32)> = Vec::new(); // (key, leaf idx)
    for (i, (a, k)) in tree.leaves.iter().enumerate() {
        if *k == LeafKind::Inside {
            continue;
        }
        let shift = max_level - a.level;
        let key = curve.encode(a.ix << shift, a.iy << shift, a.iz << shift, max_level);
        flow.push((key, i as u32));
    }
    flow.sort_unstable();

    // Map leaf index -> flow cell index.
    let mut cell_of_leaf: HashMap<u32, u32> = HashMap::new();
    for (ci, (_, li)) in flow.iter().enumerate() {
        cell_of_leaf.insert(*li, ci as u32);
    }

    let n = flow.len();
    let mut centers = Vec::with_capacity(n);
    let mut volumes = Vec::with_capacity(n);
    let mut kinds = Vec::with_capacity(n);
    let mut weights = Vec::with_capacity(n);
    let mut levels = Vec::with_capacity(n);
    let mut sfc_keys = Vec::with_capacity(n);
    let mut coords = Vec::with_capacity(n);
    for (key, li) in &flow {
        let (a, k) = tree.leaves[*li as usize];
        let h = tree.cell_size(a.level);
        let c = tree.center(&a);
        let full_vol = h * h * h;
        let (kind, vol, w) = match k {
            LeafKind::Cut => {
                let frac = flow_fraction(geom, c, h).max(volume_fraction_floor);
                (CellKind::Cut, full_vol * frac, CUT_CELL_WEIGHT)
            }
            _ => (CellKind::Full, full_vol, 1.0),
        };
        centers.push(c);
        volumes.push(vol);
        kinds.push(kind);
        weights.push(w);
        levels.push(a.level);
        sfc_keys.push(*key);
        coords.push([a.ix, a.iy, a.iz]);
    }

    // Faces. For each flow leaf and +direction: same-level neighbour, or
    // coarser neighbour (this side creates the face), or finer neighbours
    // (create the 4 sub-faces from this, the coarser, side). For -direction
    // only the boundary of the domain and coarse-to-fine cases are handled
    // by the owner logic below, so each face is built exactly once.
    let mut faces: Vec<CartFace> = Vec::new();
    for (ci, (_, li)) in flow.iter().enumerate() {
        let (a, _) = tree.leaves[*li as usize];
        let h = tree.cell_size(a.level);
        let area = h * h;
        for axis in 0..3 {
            let axis_vec = match axis {
                0 => Vec3::new(1.0, 0.0, 0.0),
                1 => Vec3::new(0.0, 1.0, 0.0),
                _ => Vec3::new(0.0, 0.0, 1.0),
            };
            for dir in [1i32, -1] {
                let nvec = axis_vec * dir as f64;
                match a.neighbor(axis, dir) {
                    None => {
                        // Domain boundary: far-field face.
                        faces.push(CartFace {
                            a: ci as u32,
                            b: u32::MAX,
                            normal: nvec * area,
                        });
                    }
                    Some(nb) => {
                        // Find the covering leaf (same level or coarser).
                        let mut cur = nb;
                        let mut found: Option<(CellAddr, u32)> = None;
                        loop {
                            if let Some(&leaf_i) = tree.index.get(&cur) {
                                found = Some((tree.leaves[leaf_i as usize].0, leaf_i));
                                break;
                            }
                            if cur.level == 0 {
                                break;
                            }
                            cur = cur.parent();
                        }
                        match found {
                            Some((na, leaf_i)) => {
                                let nk = tree.leaves[leaf_i as usize].1;
                                if nk == LeafKind::Inside {
                                    continue; // covered by the wall closure
                                }
                                let nci = match cell_of_leaf.get(&leaf_i) {
                                    Some(&c) => c,
                                    None => continue,
                                };
                                // Thin-body guard: a face between two cut
                                // cells can lie inside the solid (bodies
                                // thinner than two cells leave no Inside
                                // cells at all); such faces carry no flow
                                // and are closed by the wall instead.
                                let my_kind = tree.leaves[*li as usize].1;
                                if my_kind == LeafKind::Cut && nk == LeafKind::Cut {
                                    let fc = tree.center(&a) + nvec * (0.5 * h);
                                    if geom.contains(fc) {
                                        continue;
                                    }
                                }
                                // Create once: same level -> only dir=+1;
                                // finer side creates when neighbour coarser.
                                let create = if na.level == a.level {
                                    dir == 1
                                } else {
                                    na.level < a.level // I'm finer: I create
                                };
                                if create {
                                    faces.push(CartFace {
                                        a: ci as u32,
                                        b: nci,
                                        normal: nvec * area,
                                    });
                                }
                            }
                            None => {
                                // Neighbour region is subdivided finer: the
                                // finer cells create these faces.
                            }
                        }
                    }
                }
            }
        }
    }

    // Wall closure: -(sum of outward open-face normals) per cell; for full
    // cells this is ~0 by construction, for cut cells it is the embedded
    // wall area vector.
    let mut wall_normal = vec![Vec3::ZERO; n];
    {
        let mut acc = vec![Vec3::ZERO; n];
        for f in &faces {
            acc[f.a as usize] += f.normal;
            if !f.is_boundary() {
                acc[f.b as usize] -= f.normal;
            }
        }
        for (i, a) in acc.into_iter().enumerate() {
            // Cut cells always get a wall closure. A Full cell adjacent to
            // an Inside cell (surface lying on the face) gets one too.
            if a.norm() > 1e-12 {
                wall_normal[i] = -a;
            }
        }
    }

    CartMesh {
        centers,
        volumes,
        kinds,
        weights,
        wall_normal,
        faces,
        sfc_keys,
        levels,
        coords,
        max_level,
    }
}

/// Fraction of a cut cell in the flow, from 9-point containment sampling
/// (8 corners + center).
fn flow_fraction(geom: &Geometry, center: Vec3, h: f64) -> f64 {
    let mut outside = 0;
    let mut total = 0;
    for dz in [-0.5, 0.5] {
        for dy in [-0.5, 0.5] {
            for dx in [-0.5, 0.5] {
                let p = center + Vec3::new(dx * h, dy * h, dz * h) * 0.999;
                if !geom.contains(p) {
                    outside += 1;
                }
                total += 1;
            }
        }
    }
    if !geom.contains(center) {
        outside += 1;
    }
    total += 1;
    outside as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::octree::{build_octree, CutCellConfig};
    use crate::tri::TriMesh;

    fn sphere_mesh(max_level: u32) -> (CartMesh, Geometry) {
        let prof: Vec<(f64, f64)> = (0..=12)
            .map(|i| {
                let t = std::f64::consts::PI * i as f64 / 12.0;
                (-0.3 * t.cos(), 0.3 * t.sin())
            })
            .collect();
        let geom = Geometry::new(&[TriMesh::body_of_revolution(&prof, 12)]);
        let config = CutCellConfig {
            min_level: 2,
            max_level,
            origin: Vec3::new(-1.0, -1.0, -1.0),
            size: 2.0,
        };
        let tree = build_octree(&geom, &config);
        let mesh = extract_mesh(&tree, &geom, CurveKind::Hilbert, 0.05);
        (mesh, geom)
    }

    #[test]
    fn mesh_is_valid_and_sorted() {
        let (m, _) = sphere_mesh(4);
        m.validate().unwrap();
        assert!(m.ncells() > 500);
        assert!(m.ncut() > 50);
    }

    #[test]
    fn full_cells_are_closed_and_cut_cells_have_walls() {
        let (m, _) = sphere_mesh(4);
        assert!(m.max_closure_defect() < 1e-12, "{}", m.max_closure_defect());
        let wall_area: f64 = m.wall_normal.iter().map(|w| w.norm()).sum();
        // Projected sphere area ~ pi r^2 * 6-ish directions; just demand a
        // sensible positive total comparable to the sphere area 4 pi r^2.
        let sphere = 4.0 * std::f64::consts::PI * 0.3 * 0.3;
        // The closure vector per cell is a *net* area vector, so the sum
        // is bounded by the projected area (~2 pi r^2), not the full 4 pi
        // r^2; accept a broad physical band.
        assert!(
            wall_area > 0.25 * sphere && wall_area < 3.0 * sphere,
            "wall area {wall_area} vs sphere {sphere}"
        );
    }

    #[test]
    fn flow_volume_close_to_domain_minus_sphere() {
        let (m, _) = sphere_mesh(5);
        let expect = 8.0 - 4.0 / 3.0 * std::f64::consts::PI * 0.3f64.powi(3);
        let got = m.total_volume();
        assert!(
            (got - expect).abs() / expect < 0.02,
            "volume {got} vs {expect}"
        );
    }

    #[test]
    fn boundary_faces_tile_the_cube_surface() {
        let (m, _) = sphere_mesh(3);
        let barea: f64 = m
            .faces
            .iter()
            .filter(|f| f.is_boundary())
            .map(|f| f.normal.norm())
            .sum();
        assert!((barea - 24.0).abs() < 1e-9, "boundary area {barea}");
    }

    #[test]
    fn face_count_matches_euler_relation_on_uniform_grid() {
        // No geometry: uniform grid of 4^3 cells — interior faces 3*4*4*3.
        let g = Geometry::new(&[]);
        let config = CutCellConfig {
            min_level: 2,
            max_level: 2,
            origin: Vec3::ZERO,
            size: 1.0,
        };
        let tree = build_octree(&g, &config);
        let m = extract_mesh(&tree, &g, CurveKind::Morton, 0.05);
        assert_eq!(m.ncells(), 64);
        let interior = m.faces.iter().filter(|f| !f.is_boundary()).count();
        assert_eq!(interior, 3 * 3 * 16);
        let boundary = m.faces.iter().filter(|f| f.is_boundary()).count();
        assert_eq!(boundary, 6 * 16);
        m.validate().unwrap();
    }

    #[test]
    fn refined_mesh_keeps_closure_across_2_to_1_faces() {
        let (m, _) = sphere_mesh(5);
        assert!(m.max_closure_defect() < 1e-12);
        // Levels actually vary (adaptive).
        let lmin = m.levels.iter().min().unwrap();
        let lmax = m.levels.iter().max().unwrap();
        assert!(lmax > lmin);
    }
}
