//! Cart3D substrate: automatic cut-cell Cartesian meshing from watertight
//! component geometry (paper §IV-V).
//!
//! The pipeline mirrors the Cart3D package:
//!
//! 1. geometry arrives as a set of **watertight triangulated solids**
//!    ([`tri`]) — here built synthetically (SSLV-style launch vehicle,
//!    wings with deflectable control surfaces, bodies of revolution),
//!    since the CAD-derived originals are not available;
//! 2. an **adaptive octree** refines around the surface with 2:1 balance
//!    and classifies cells as cut / inside / outside ([`octree`]);
//! 3. leaves become a **cell-centred finite-volume mesh** with face and
//!    wall-closure metrics ([`mesh`]);
//! 4. cells are ordered along a **space-filling curve** (Peano-Hilbert by
//!    default), which provides single-pass mesh **coarsening** (sibling
//!    collection, ratios > 7 in refined regions) and **partitioning**
//!    (weighted curve splitting, cut cells weighted 2.1x) ([`coarsen`]).

#![allow(clippy::needless_range_loop)] // index loops mirror the stencil/block structure of the kernels
#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0.0)` deliberately catches NaNs

pub mod coarsen;
pub mod mesh;
pub mod octree;
pub mod tri;

pub use coarsen::{coarsen_hierarchy, coarsen_mesh, partition_cells, Coarsening};
pub use mesh::{extract_mesh, CartFace, CartMesh, CellKind};
pub use octree::{build_octree, CutCellConfig, Octree};
pub use tri::{sslv_geometry, Bvh, Geometry, TriMesh};
