//! Single-pass SFC coarsening and weighted SFC partitioning (paper §V,
//! Figures 10-12 and reference \[18\]).
//!
//! "Tracing along the SFC, cells that collapse into the same coarse cell
//! ('siblings') are collected whenever they are all the same size, and the
//! corresponding coarse cell is inserted into a new mesh structure...
//! the coarse mesh is automatically generated with its cells already
//! ordered along the SFC" — this module implements exactly that scan, plus
//! the on-the-fly partitioner that splits the weighted curve.

use crate::mesh::{CartFace, CartMesh, CellKind, CUT_CELL_WEIGHT};
use columbia_mesh::Vec3;
use columbia_sfc::{split_weighted_curve, CurvePartition};
use std::collections::HashMap;

/// One coarsening step.
#[derive(Clone, Debug)]
pub struct Coarsening {
    /// The coarse mesh (already SFC-ordered by construction).
    pub coarse: CartMesh,
    /// Fine-cell → coarse-cell map.
    pub fine_to_coarse: Vec<u32>,
}

impl Coarsening {
    /// Fine/coarse cell ratio.
    pub fn ratio(&self, fine_cells: usize) -> f64 {
        fine_cells as f64 / self.coarse.ncells().max(1) as f64
    }
}

/// Single-pass sibling-collection coarsening along the SFC.
pub fn coarsen_mesh(fine: &CartMesh) -> Coarsening {
    let n = fine.ncells();
    let mut fine_to_coarse = vec![u32::MAX; n];

    // Scan along the SFC. A parent's subtree occupies one *aligned* key
    // block (both Morton and Hilbert visit each octant subtree
    // contiguously), so the flow children of a parent form a consecutive
    // run. A run merges when it covers the parent's entire flow subtree at
    // a single level: all cells at level `l`, keys confined to the aligned
    // block, at least two cells. This lets cut parents whose solid
    // (removed) children are missing still coarsen — exactly the
    // body-hugging coarse cut cells of the paper's Figure 11.
    let mut groups: Vec<(Vec<u32>, bool)> = Vec::new(); // (members, merged)
    let mut i = 0usize;
    while i < n {
        let l = fine.levels[i];
        let mut merged_end = i + 1;
        if l > 0 {
            let shift = 3 * (fine.max_level - (l - 1));
            let block = 1u64 << shift;
            let base = fine.sfc_keys[i] & !(block - 1);
            let starts_block = i == 0 || fine.sfc_keys[i - 1] < base;
            if starts_block {
                let mut j = i + 1;
                let mut uniform = true;
                while j < n && fine.sfc_keys[j] < base + block {
                    if fine.levels[j] != l {
                        uniform = false;
                    }
                    j += 1;
                }
                if uniform && j > i + 1 {
                    merged_end = j;
                }
            }
        }
        if merged_end > i + 1 {
            groups.push(((i as u32..merged_end as u32).collect(), true));
            i = merged_end;
        } else {
            groups.push((vec![i as u32], false));
            i += 1;
        }
    }

    let nc = groups.len();
    let mut centers = Vec::with_capacity(nc);
    let mut volumes = Vec::with_capacity(nc);
    let mut kinds = Vec::with_capacity(nc);
    let mut weights = Vec::with_capacity(nc);
    let mut wall_normal = Vec::with_capacity(nc);
    let mut sfc_keys = Vec::with_capacity(nc);
    let mut levels = Vec::with_capacity(nc);
    let mut coords = Vec::with_capacity(nc);
    for (ci, (members, merged)) in groups.iter().enumerate() {
        for &m in members {
            fine_to_coarse[m as usize] = ci as u32;
        }
        let f0 = members[0] as usize;
        if *merged {
            let mut vol = 0.0;
            let mut c = Vec3::ZERO;
            let mut w = Vec3::ZERO;
            let mut cut = false;
            for &m in members {
                let m = m as usize;
                vol += fine.volumes[m];
                c += fine.centers[m];
                w += fine.wall_normal[m];
                cut |= fine.kinds[m] == CellKind::Cut;
            }
            centers.push(c / members.len() as f64);
            volumes.push(vol);
            kinds.push(if cut { CellKind::Cut } else { CellKind::Full });
            weights.push(if cut { CUT_CELL_WEIGHT } else { 1.0 });
            wall_normal.push(w);
            sfc_keys.push(fine.sfc_keys[f0]);
            levels.push(fine.levels[f0] - 1);
            coords.push([
                fine.coords[f0][0] >> 1,
                fine.coords[f0][1] >> 1,
                fine.coords[f0][2] >> 1,
            ]);
        } else {
            centers.push(fine.centers[f0]);
            volumes.push(fine.volumes[f0]);
            kinds.push(fine.kinds[f0]);
            weights.push(fine.weights[f0]);
            wall_normal.push(fine.wall_normal[f0]);
            sfc_keys.push(fine.sfc_keys[f0]);
            levels.push(fine.levels[f0]);
            coords.push(fine.coords[f0]);
        }
    }

    // Aggregate faces between coarse groups; intra-group faces vanish.
    // Boundary faces aggregate per (cell, direction) so that opposite
    // domain faces never cancel.
    let mut interior: HashMap<(u32, u32), Vec3> = HashMap::new();
    let mut boundary: HashMap<(u32, i8), Vec3> = HashMap::new();
    for f in &fine.faces {
        let ca = fine_to_coarse[f.a as usize];
        if f.is_boundary() {
            let dir = dominant_direction(f.normal);
            *boundary.entry((ca, dir)).or_insert(Vec3::ZERO) += f.normal;
            continue;
        }
        let cb = fine_to_coarse[f.b as usize];
        if ca == cb {
            continue;
        }
        let (key, sign) = if ca < cb {
            ((ca, cb), 1.0)
        } else {
            ((cb, ca), -1.0)
        };
        *interior.entry(key).or_insert(Vec3::ZERO) += f.normal * sign;
    }
    let mut faces: Vec<CartFace> = interior
        .into_iter()
        .map(|((a, b), normal)| CartFace { a, b, normal })
        .collect();
    faces.extend(boundary.into_iter().map(|((a, _), normal)| CartFace {
        a,
        b: u32::MAX,
        normal,
    }));
    faces.sort_unstable_by_key(|f| (f.a, f.b));

    let coarse = CartMesh {
        centers,
        volumes,
        kinds,
        weights,
        wall_normal,
        faces,
        sfc_keys,
        levels,
        coords,
        max_level: fine.max_level,
    };
    Coarsening {
        coarse,
        fine_to_coarse,
    }
}

/// Signed dominant axis of an axis-aligned normal: +-1, +-2, +-3.
fn dominant_direction(n: Vec3) -> i8 {
    let ax = n.x.abs();
    let ay = n.y.abs();
    let az = n.z.abs();
    if ax >= ay && ax >= az {
        if n.x >= 0.0 {
            1
        } else {
            -1
        }
    } else if ay >= az {
        if n.y >= 0.0 {
            2
        } else {
            -2
        }
    } else if n.z >= 0.0 {
        3
    } else {
        -3
    }
}

/// Build a full coarsening hierarchy (finest first in the result's
/// conceptual ordering; element `l` coarsens level `l` to `l + 1`).
pub fn coarsen_hierarchy(fine: &CartMesh, max_levels: usize, min_cells: usize) -> Vec<Coarsening> {
    let mut steps: Vec<Coarsening> = Vec::new();
    let mut current = fine;
    for _ in 1..max_levels {
        if current.ncells() <= min_cells {
            break;
        }
        let step = coarsen_mesh(current);
        if step.coarse.ncells() >= current.ncells() {
            break;
        }
        steps.push(step);
        current = &steps.last().unwrap().coarse;
    }
    steps
}

/// Partition the (SFC-ordered) cells into `nparts` contiguous curve
/// segments, cut cells weighted 2.1x (paper Figure 12).
pub fn partition_cells(mesh: &CartMesh, nparts: usize) -> CurvePartition {
    split_weighted_curve(&mesh.weights, nparts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::extract_mesh;
    use crate::octree::{build_octree, CutCellConfig};
    use crate::tri::{Geometry, TriMesh};
    use columbia_mesh::Vec3 as V;
    use columbia_sfc::CurveKind;

    fn uniform_mesh(level: u32, curve: CurveKind) -> CartMesh {
        let g = Geometry::new(&[]);
        let config = CutCellConfig {
            min_level: level,
            max_level: level,
            origin: V::ZERO,
            size: 1.0,
        };
        let tree = build_octree(&g, &config);
        extract_mesh(&tree, &g, curve, 0.05)
    }

    fn sphere_mesh(max_level: u32) -> CartMesh {
        let prof: Vec<(f64, f64)> = (0..=12)
            .map(|i| {
                let t = std::f64::consts::PI * i as f64 / 12.0;
                (-0.3 * t.cos(), 0.3 * t.sin())
            })
            .collect();
        let geom = Geometry::new(&[TriMesh::body_of_revolution(&prof, 12)]);
        let config = CutCellConfig {
            min_level: 4,
            max_level,
            origin: V::new(-1.0, -1.0, -1.0),
            size: 2.0,
        };
        let tree = build_octree(&geom, &config);
        extract_mesh(&tree, &geom, CurveKind::Hilbert, 0.05)
    }

    #[test]
    fn uniform_grid_coarsens_by_exactly_8() {
        for curve in [CurveKind::Morton, CurveKind::Hilbert] {
            let m = uniform_mesh(3, curve);
            assert_eq!(m.ncells(), 512);
            let c = coarsen_mesh(&m);
            assert_eq!(c.coarse.ncells(), 64, "{curve:?}");
            assert!((c.ratio(m.ncells()) - 8.0).abs() < 1e-12);
            c.coarse.validate().unwrap();
        }
    }

    #[test]
    fn adapted_mesh_coarsening_ratio_near_7_plus() {
        // The paper: "coarsening ratios in excess of 7 on typical examples".
        let m = sphere_mesh(6);
        let c = coarsen_mesh(&m);
        let r = c.ratio(m.ncells());
        assert!(r > 4.0, "ratio {r}");
        c.coarse.validate().unwrap();
    }

    #[test]
    fn coarsening_conserves_volume_and_wall_area() {
        let m = sphere_mesh(4);
        let c = coarsen_mesh(&m);
        assert!((c.coarse.total_volume() - m.total_volume()).abs() < 1e-12);
        let fine_wall: Vec3 = m.wall_normal.iter().fold(V::ZERO, |a, &b| a + b);
        let coarse_wall: Vec3 = c.coarse.wall_normal.iter().fold(V::ZERO, |a, &b| a + b);
        assert!((fine_wall - coarse_wall).norm() < 1e-12);
    }

    #[test]
    fn coarse_mesh_closure_holds() {
        let m = sphere_mesh(4);
        let c = coarsen_mesh(&m);
        assert!(
            c.coarse.max_closure_defect() < 1e-11,
            "defect {}",
            c.coarse.max_closure_defect()
        );
    }

    #[test]
    fn hierarchy_terminates_and_shrinks() {
        let m = sphere_mesh(4);
        let steps = coarsen_hierarchy(&m, 4, 10);
        assert!(steps.len() >= 2);
        let mut prev = m.ncells();
        for s in &steps {
            assert!(s.coarse.ncells() < prev);
            prev = s.coarse.ncells();
        }
    }

    #[test]
    fn coarse_mesh_is_immediately_coarsenable_again() {
        // The paper stresses the coarse mesh comes out SFC-ordered, ready
        // for another pass.
        let m = uniform_mesh(3, CurveKind::Hilbert);
        let c1 = coarsen_mesh(&m);
        let c2 = coarsen_mesh(&c1.coarse);
        assert_eq!(c2.coarse.ncells(), 8);
        let c3 = coarsen_mesh(&c2.coarse);
        assert_eq!(c3.coarse.ncells(), 1);
    }

    #[test]
    fn partition_balances_weighted_cells() {
        let m = sphere_mesh(5);
        let p = partition_cells(&m, 16);
        assert_eq!(p.nparts(), 16);
        let imb = p.imbalance(&m.weights);
        assert!(imb < 1.05, "imbalance {imb}");
    }

    #[test]
    fn sfc_partitions_are_spatially_compact() {
        // Surface-to-volume of SFC partitions should beat random
        // partitions by a wide margin: measure cut faces.
        let m = uniform_mesh(4, CurveKind::Hilbert); // 4096 cells
        let p = partition_cells(&m, 8);
        let owner: Vec<usize> = (0..m.ncells()).map(|i| p.owner(i)).collect();
        let cut_sfc = m
            .faces
            .iter()
            .filter(|f| !f.is_boundary() && owner[f.a as usize] != owner[f.b as usize])
            .count();
        // Random assignment cuts ~ (1 - 1/8) of interior faces.
        let interior = m.faces.iter().filter(|f| !f.is_boundary()).count();
        assert!(
            (cut_sfc as f64) < 0.25 * interior as f64,
            "SFC cut {cut_sfc} of {interior}"
        );
    }

    columbia_rt::props! {
        config: columbia_rt::props::Config::with_cases(16);
        /// On a uniform mesh every octant merges: the coarsening ratio is
        /// exactly 8 for either curve, and the fine-to-coarse map is total.
        fn prop_uniform_coarsening_ratio_is_eight(level in 2u32..4, kindsel in 0u32..2) {
            let curve = if kindsel == 0 { CurveKind::Morton } else { CurveKind::Hilbert };
            let m = uniform_mesh(level, curve);
            let c = coarsen_mesh(&m);
            assert!((c.ratio(m.ncells()) - 8.0).abs() < 1e-12);
            assert!(c.fine_to_coarse.iter().all(|&j| (j as usize) < c.coarse.ncells()));
        }

        /// Weighted SFC partitions stay balanced for any part count the
        /// curve can support.
        fn prop_partition_imbalance_bounded(nparts in 2usize..12) {
            let m = uniform_mesh(3, CurveKind::Hilbert);
            let p = partition_cells(&m, nparts);
            assert_eq!(p.nparts(), nparts);
            let imb = p.imbalance(&m.weights);
            assert!(imb < 1.30, "imbalance {} at {} parts", imb, nparts);
        }
    }
}
