//! Adaptive octree refinement around embedded geometry.
//!
//! A cubic root domain is refined wherever a cell intersects the surface
//! triangulation, down to `max_level`, then 2:1 face balance is enforced
//! and each leaf is classified cut / inside / outside. Cell addresses are
//! `(level, ix, iy, iz)` integer coordinates, which later quantise directly
//! onto the space-filling curve.

use crate::tri::Geometry;
use columbia_mesh::Vec3;
use std::collections::HashMap;

/// Octree build parameters.
#[derive(Clone, Copy, Debug)]
pub struct CutCellConfig {
    /// Uniform background refinement level (every cell at least this deep).
    pub min_level: u32,
    /// Maximum refinement level at the surface (paper's SSLV mesh: 14).
    pub max_level: u32,
    /// Root cube lower corner.
    pub origin: Vec3,
    /// Root cube edge length.
    pub size: f64,
}

impl CutCellConfig {
    /// A root cube comfortably containing `geom` with padding factor
    /// `pad >= 1` (relative to the largest geometry extent).
    pub fn around(geom: &Geometry, pad: f64, min_level: u32, max_level: u32) -> CutCellConfig {
        let bb = geom.aabb();
        let ext = bb.hi - bb.lo;
        let size = ext.x.max(ext.y).max(ext.z) * pad;
        let center = bb.center();
        CutCellConfig {
            min_level,
            max_level,
            origin: center - Vec3::new(0.5 * size, 0.5 * size, 0.5 * size),
            size,
        }
    }
}

/// Leaf classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeafKind {
    /// Intersects the surface.
    Cut,
    /// Fully inside the solid (removed from the flow mesh).
    Inside,
    /// Fully in the flow.
    Outside,
}

/// Integer cell address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CellAddr {
    /// Refinement level (0 = root).
    pub level: u32,
    /// Integer coordinates in `0..2^level`.
    pub ix: u32,
    /// y coordinate.
    pub iy: u32,
    /// z coordinate.
    pub iz: u32,
}

impl CellAddr {
    /// Children addresses.
    pub fn children(&self) -> [CellAddr; 8] {
        let mut out = [*self; 8];
        for (c, o) in out.iter_mut().enumerate() {
            o.level = self.level + 1;
            o.ix = self.ix * 2 + (c as u32 & 1);
            o.iy = self.iy * 2 + ((c as u32 >> 1) & 1);
            o.iz = self.iz * 2 + ((c as u32 >> 2) & 1);
        }
        out
    }

    /// Parent address (root returns itself).
    pub fn parent(&self) -> CellAddr {
        if self.level == 0 {
            *self
        } else {
            CellAddr {
                level: self.level - 1,
                ix: self.ix / 2,
                iy: self.iy / 2,
                iz: self.iz / 2,
            }
        }
    }

    /// Same-level neighbour in direction `axis` (0..3), `dir` (+1/-1);
    /// None outside the root domain.
    pub fn neighbor(&self, axis: usize, dir: i32) -> Option<CellAddr> {
        let n = 1u32 << self.level;
        let mut c = [self.ix, self.iy, self.iz];
        let v = c[axis] as i64 + dir as i64;
        if v < 0 || v >= n as i64 {
            return None;
        }
        c[axis] = v as u32;
        Some(CellAddr {
            level: self.level,
            ix: c[0],
            iy: c[1],
            iz: c[2],
        })
    }
}

/// The built octree: a set of classified leaves.
#[derive(Clone, Debug)]
pub struct Octree {
    /// Build configuration.
    pub config: CutCellConfig,
    /// Leaves with classification.
    pub leaves: Vec<(CellAddr, LeafKind)>,
    /// Leaf lookup (address → index into `leaves`).
    pub index: HashMap<CellAddr, u32>,
}

impl Octree {
    /// Physical cell size at `level`.
    pub fn cell_size(&self, level: u32) -> f64 {
        self.config.size / (1u64 << level) as f64
    }

    /// Physical center of a cell.
    pub fn center(&self, a: &CellAddr) -> Vec3 {
        let h = self.cell_size(a.level);
        self.config.origin
            + Vec3::new(
                (a.ix as f64 + 0.5) * h,
                (a.iy as f64 + 0.5) * h,
                (a.iz as f64 + 0.5) * h,
            )
    }

    /// Number of leaves of each kind: (cut, inside, outside).
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for (_, k) in &self.leaves {
            match k {
                LeafKind::Cut => c.0 += 1,
                LeafKind::Inside => c.1 += 1,
                LeafKind::Outside => c.2 += 1,
            }
        }
        c
    }

    /// Is the leaf set 2:1 balanced across faces?
    pub fn is_balanced(&self) -> bool {
        for (a, _) in &self.leaves {
            for axis in 0..3 {
                for dir in [-1, 1] {
                    if let Some(n) = find_face_neighbor(&self.index, a, axis, dir) {
                        let nl = self.leaves[n as usize].0.level;
                        if nl + 1 < a.level || a.level + 1 < nl {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }
}

/// Find the leaf covering the same-or-coarser neighbour of `a` in the given
/// direction (used for balance checks; fine neighbours are found from the
/// other side).
pub fn find_face_neighbor(
    index: &HashMap<CellAddr, u32>,
    a: &CellAddr,
    axis: usize,
    dir: i32,
) -> Option<u32> {
    let mut n = a.neighbor(axis, dir)?;
    loop {
        if let Some(&i) = index.get(&n) {
            return Some(i);
        }
        if n.level == 0 {
            return None;
        }
        n = n.parent();
    }
}

/// Build the octree around `geom`.
pub fn build_octree(geom: &Geometry, config: &CutCellConfig) -> Octree {
    assert!(config.max_level >= config.min_level);
    assert!(config.max_level <= 20, "address space is 21 bits/axis");
    // Recursive refinement from the root.
    let mut intersecting: Vec<CellAddr> = vec![CellAddr {
        level: 0,
        ix: 0,
        iy: 0,
        iz: 0,
    }];
    let mut leaves: Vec<CellAddr> = Vec::new();
    let half_of = |a: &CellAddr| {
        let h = config.size / (1u64 << a.level) as f64 * 0.5;
        Vec3::new(h, h, h)
    };
    let center_of = |a: &CellAddr| {
        let h = config.size / (1u64 << a.level) as f64;
        config.origin
            + Vec3::new(
                (a.ix as f64 + 0.5) * h,
                (a.iy as f64 + 0.5) * h,
                (a.iz as f64 + 0.5) * h,
            )
    };
    while let Some(a) = intersecting.pop() {
        let cut = geom.intersects_box(center_of(&a), half_of(&a));
        let must_refine = a.level < config.min_level || (cut && a.level < config.max_level);
        if must_refine {
            for ch in a.children() {
                if a.level + 1 < config.min_level
                    || geom.intersects_box(center_of(&ch), half_of(&ch))
                {
                    intersecting.push(ch);
                } else {
                    leaves.push(ch);
                }
            }
        } else {
            leaves.push(a);
        }
    }

    // 2:1 balance: split any leaf whose face neighbour is 2+ levels finer.
    let mut index: HashMap<CellAddr, u32> = HashMap::new();
    for (i, a) in leaves.iter().enumerate() {
        index.insert(*a, i as u32);
    }
    loop {
        let mut to_split: Vec<CellAddr> = Vec::new();
        for a in leaves.iter() {
            // A coarse neighbour more than one level up must split.
            for axis in 0..3 {
                for dir in [-1, 1] {
                    let mut n = match a.neighbor(axis, dir) {
                        Some(n) => n,
                        None => continue,
                    };
                    loop {
                        if index.contains_key(&n) {
                            if a.level > n.level + 1 {
                                to_split.push(n);
                            }
                            break;
                        }
                        if n.level == 0 {
                            break;
                        }
                        n = n.parent();
                    }
                }
            }
        }
        to_split.sort_unstable_by_key(|a| (a.level, a.ix, a.iy, a.iz));
        to_split.dedup();
        if to_split.is_empty() {
            break;
        }
        for a in to_split {
            if let Some(i) = index.remove(&a) {
                // Replace leaf i by its 8 children.
                let last = leaves.len() - 1;
                leaves.swap(i as usize, last);
                if (i as usize) < last {
                    index.insert(leaves[i as usize], i);
                }
                leaves.pop();
                for ch in a.children() {
                    index.insert(ch, leaves.len() as u32);
                    leaves.push(ch);
                }
            }
        }
    }

    // Classification.
    let classified: Vec<(CellAddr, LeafKind)> = leaves
        .iter()
        .map(|a| {
            let kind = if geom.intersects_box(center_of(a), half_of(a)) {
                LeafKind::Cut
            } else if geom.contains(center_of(a)) {
                LeafKind::Inside
            } else {
                LeafKind::Outside
            };
            (*a, kind)
        })
        .collect();
    let mut index = HashMap::new();
    for (i, (a, _)) in classified.iter().enumerate() {
        index.insert(*a, i as u32);
    }
    Octree {
        config: *config,
        leaves: classified,
        index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tri::TriMesh;

    fn sphere_geom() -> Geometry {
        // Body of revolution approximating a sphere of radius 0.3 at origin.
        let prof: Vec<(f64, f64)> = (0..=16)
            .map(|i| {
                let t = std::f64::consts::PI * i as f64 / 16.0;
                (-0.3 * t.cos(), 0.3 * t.sin())
            })
            .collect();
        Geometry::new(&[TriMesh::body_of_revolution(&prof, 16)])
    }

    fn config() -> CutCellConfig {
        CutCellConfig {
            min_level: 2,
            max_level: 5,
            origin: Vec3::new(-1.0, -1.0, -1.0),
            size: 2.0,
        }
    }

    #[test]
    fn octree_refines_at_surface_and_is_balanced() {
        let tree = build_octree(&sphere_geom(), &config());
        let (cut, inside, outside) = tree.counts();
        assert!(cut > 100, "cut {cut}");
        assert!(inside > 0, "inside {inside}");
        assert!(outside > cut, "outside {outside}");
        assert!(tree.is_balanced());
        // All cut cells at max level.
        for (a, k) in &tree.leaves {
            if *k == LeafKind::Cut {
                assert_eq!(a.level, 5);
            }
        }
    }

    #[test]
    fn leaves_tile_the_root_volume() {
        let tree = build_octree(&sphere_geom(), &config());
        let total: f64 = tree
            .leaves
            .iter()
            .map(|(a, _)| tree.cell_size(a.level).powi(3))
            .sum();
        let root = config().size.powi(3);
        assert!((total - root).abs() < 1e-9 * root, "{total} vs {root}");
    }

    #[test]
    fn inside_cells_are_inside_the_sphere() {
        let g = sphere_geom();
        let tree = build_octree(&g, &config());
        for (a, k) in &tree.leaves {
            if *k == LeafKind::Inside {
                let c = tree.center(a);
                assert!(c.norm() < 0.3 + 1e-9, "inside cell at {c:?}");
            }
        }
    }

    #[test]
    fn min_level_gives_uniform_background() {
        let tree = build_octree(&sphere_geom(), &config());
        for (a, _) in &tree.leaves {
            assert!(a.level >= 2, "leaf above min level");
        }
    }

    #[test]
    fn addr_children_partition_parent() {
        let a = CellAddr {
            level: 3,
            ix: 2,
            iy: 5,
            iz: 7,
        };
        for ch in a.children() {
            assert_eq!(ch.parent(), a);
        }
        assert_eq!(a.neighbor(0, 1).unwrap().ix, 3);
        assert_eq!(a.neighbor(0, -1).unwrap().ix, 1);
        let edge = CellAddr {
            level: 1,
            ix: 0,
            iy: 0,
            iz: 0,
        };
        assert!(edge.neighbor(0, -1).is_none());
    }
}
