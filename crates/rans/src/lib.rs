//! NSU3D analogue: the high-fidelity unstructured flow solver.
//!
//! Faithful to the algorithmic skeleton of paper §III:
//!
//! * **six coupled unknowns per vertex** — density, momentum vector, total
//!   energy, and a Spalart-Allmaras-style turbulence working variable
//!   solved *coupled* with the flow equations;
//! * **edge-based vertex-centred finite volume** discretisation — Rusanov
//!   (local Lax-Friedrichs) convective fluxes, edge-based diffusion for
//!   viscous terms, Green-Gauss velocity gradients feeding the turbulence
//!   production term;
//! * **point-implicit smoothing** — a dense 6x6 Jacobian block inverted at
//!   every vertex every iteration;
//! * **line-implicit smoothing** — block-tridiagonal solves along the
//!   implicit lines extracted in stretched boundary-layer regions;
//! * **agglomeration multigrid** with FAS coupling and W-cycles;
//! * **domain decomposition** with implicit-line-preserving partitioning
//!   and packed ghost exchanges.
//!
//! Fidelity note (documented in DESIGN.md): the paper's NSU3D solves full
//! RANS with a second-order reconstruction; this reproduction uses a
//! first-order Rusanov convective operator and thin-layer-style edge
//! diffusion. Multigrid/line-solver behaviour, the 6x6 block structure, and
//! all parallel machinery — the subjects of the paper's study — are
//! preserved.

#![allow(clippy::needless_range_loop)] // index loops mirror the stencil/block structure of the kernels
#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0.0)` deliberately catches NaNs

pub mod flops;
pub mod level;
pub mod parallel;
pub mod parallel_mg;
pub mod profile;
pub mod solver;
pub mod state;

pub use level::RansLevel;
pub use parallel_mg::ParallelMg;
pub use profile::{fit_surface_law, measure_profile, FitFallback, FitProvenance, SurfaceLaw};
pub use solver::{RansSolver, SolverParams};
pub use state::{freestream, State, NVARS};
