//! Measured workload profiles for the Columbia machine model.
//!
//! The scalability figures need, per multigrid level: FLOPs per point per
//! visit, the ghost-surface scaling law, communication-graph degrees, and
//! inter-grid transfer locality. All of these are *measured* here on real
//! meshes — by running instrumented cycles and by partitioning the actual
//! level graphs at several CPU counts — then extrapolated to the paper's
//! 72M-point problem through the fitted surface law.

use crate::solver::RansSolver;
use crate::state::NVARS;
use columbia_comm::ExecContext;
use columbia_machine::{CycleProfile, IntergridProfile, LevelProfile};
use columbia_mg::{CycleParams, CycleType};
use columbia_partition::{
    contract_lines, expand_line_partition, match_levels, partition_graph, PartitionConfig,
    PartitionQuality,
};
use columbia_rt::trace::{SpanKey, Tracer};

/// Surface-law fit: `ghosts_per_part = coeff * q^exponent`.
#[derive(Clone, Debug)]
pub struct SurfaceLaw {
    /// Prefactor.
    pub coeff: f64,
    /// Exponent (~2/3 in 3-D).
    pub exponent: f64,
    /// Largest communication degree observed while fitting.
    pub max_degree: f64,
    /// How the fit was obtained (samples used, skips, fallback reason).
    pub provenance: FitProvenance,
}

/// Provenance of a [`SurfaceLaw`] fit: which of the requested part counts
/// actually contributed regression points, and why the fit fell back to the
/// canonical law if it did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FitProvenance {
    /// Part counts the caller asked for.
    pub parts_requested: usize,
    /// Part counts skipped because the level is too small
    /// (`p < 2` or `p * 4 > nvertices`).
    pub parts_skipped_small: usize,
    /// Partitions that produced no ghost vertices and so contributed
    /// nothing to the regression.
    pub parts_zero_ghosts: usize,
    /// Regression points actually used.
    pub samples_used: usize,
    /// `None` for a genuine least-squares fit; otherwise the reason the
    /// canonical 3-D law was substituted.
    pub fallback: Option<FitFallback>,
}

/// Reason a surface-law fit fell back to the canonical `6 q^(2/3)` law.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FitFallback {
    /// Fewer than two usable regression points survived the skips.
    TooFewSamples,
    /// The regression matrix was singular (all samples at one abscissa).
    DegenerateRegression,
}

impl FitFallback {
    /// Stable label used in trace counters and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FitFallback::TooFewSamples => "too_few_samples",
            FitFallback::DegenerateRegression => "degenerate_regression",
        }
    }
}

impl FitProvenance {
    /// Record the fit outcome on `tracer` as a `surface_fit` span for
    /// `level`, so skipped part counts and fallbacks are visible instead of
    /// silently discarded.
    pub fn record_to(&self, tracer: &mut Tracer, level: usize, law: &SurfaceLaw) {
        tracer.begin(SpanKey::new("surface_fit").level(level));
        tracer.add("fit.parts_requested", self.parts_requested as u64);
        tracer.add("fit.parts_skipped_small", self.parts_skipped_small as u64);
        tracer.add("fit.parts_zero_ghosts", self.parts_zero_ghosts as u64);
        tracer.add("fit.samples_used", self.samples_used as u64);
        match self.fallback {
            None => tracer.add("fit.fallback.none", 1),
            Some(f) => {
                let name = match f {
                    FitFallback::TooFewSamples => "fit.fallback.too_few_samples",
                    FitFallback::DegenerateRegression => "fit.fallback.degenerate_regression",
                };
                tracer.add(name, 1);
            }
        }
        tracer.gauge("fit.coeff", law.coeff);
        tracer.gauge("fit.exponent", law.exponent);
        tracer.gauge("fit.max_degree", law.max_degree);
        tracer.end();
    }
}

/// Fit the ghost-surface law of a mesh level by partitioning its
/// (line-contracted) graph at each count in `parts` and regressing
/// `log(mean ghosts)` on `log(mean points)`.
pub fn fit_surface_law(solver: &RansSolver, level: usize, parts: &[usize]) -> SurfaceLaw {
    let lvl = &solver.levels[level];
    let graph = lvl.mesh.dual_graph();
    let cover = line_cover(lvl);
    let lc = contract_lines(&graph, &cover);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut max_degree = 0.0f64;
    let mut prov = FitProvenance {
        parts_requested: parts.len(),
        ..FitProvenance::default()
    };
    for &p in parts {
        if p < 2 || p * 4 > lvl.nvertices() {
            prov.parts_skipped_small += 1;
            continue;
        }
        let lp = partition_graph(&lc.contracted, p, &PartitionConfig::default());
        let part = expand_line_partition(&lc.cmap, &lp);
        let q = PartitionQuality::measure(&graph, &part, p);
        let mean_pts = lvl.nvertices() as f64 / p as f64;
        let mean_ghosts = q.mean_ghosts();
        if mean_ghosts > 0.0 {
            xs.push(mean_pts.ln());
            ys.push(mean_ghosts.ln());
        } else {
            prov.parts_zero_ghosts += 1;
        }
        max_degree = max_degree.max(q.max_comm_degree() as f64);
    }
    prov.samples_used = xs.len();
    if xs.len() < 2 {
        // Too small to fit: fall back to the canonical 3-D law.
        prov.fallback = Some(FitFallback::TooFewSamples);
        return SurfaceLaw {
            coeff: 6.0,
            exponent: 2.0 / 3.0,
            max_degree: max_degree.max(18.0),
            provenance: prov,
        };
    }
    // Least squares on ln y = ln c + e ln x.
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    let (coeff, exponent) = if denom.abs() < 1e-12 {
        prov.fallback = Some(FitFallback::DegenerateRegression);
        (6.0, 2.0 / 3.0)
    } else {
        let e = (n * sxy - sx * sy) / denom;
        let lnc = (sy - e * sx) / n;
        (lnc.exp(), e.clamp(0.3, 1.0))
    };
    SurfaceLaw {
        coeff,
        exponent,
        max_degree: max_degree.max(1.0),
        provenance: prov,
    }
}

fn line_cover(lvl: &crate::level::RansLevel) -> Vec<Vec<u32>> {
    let mut covered = vec![false; lvl.nvertices()];
    let mut cover = lvl.lines.clone();
    for line in &cover {
        for &v in line {
            covered[v as usize] = true;
        }
    }
    for v in 0..lvl.nvertices() {
        if !covered[v] {
            cover.push(vec![v as u32]);
        }
    }
    cover
}

/// Measure the non-local fraction of inter-grid transfers between level
/// `l` and `l + 1` when both are partitioned independently into `p` parts
/// and greedily matched (the paper's strategy).
pub fn measure_intergrid_nonlocal(solver: &RansSolver, level: usize, p: usize) -> f64 {
    let fine = &solver.levels[level];
    let coarse = &solver.levels[level + 1];
    let map = fine.to_coarse.as_ref().expect("no map");
    if p < 2 || coarse.nvertices() < p {
        return 0.0;
    }
    let cfg = PartitionConfig::default();
    let fine_part = partition_graph(&fine.mesh.dual_graph(), p, &cfg);
    let coarse_part = partition_graph(&coarse.mesh.dual_graph(), p, &cfg);
    let w = vec![1.0; fine.nvertices()];
    let (matched, aligned) = match_levels(&fine_part, map, &coarse_part, p, &w);
    let _ = matched;
    1.0 - aligned
}

/// Measure a full [`CycleProfile`] from an instrumented solver.
///
/// * Runs one W-cycle with FLOP counters to get per-level FLOPs/point/visit.
/// * Fits the ghost-surface law on the finest level (`parts` samples) and
///   reuses its exponent for coarser levels (same mesh family) with
///   per-level degree measurements.
/// * Measures inter-grid non-locality with `match_parts`-way partitions.
/// * Rescales the level sizes so the finest level has `target_points`
///   (the paper's 72M), preserving the measured coarsening ratios.
///
/// With tracing enabled on `ctx`, the fit provenance and per-level FLOP
/// counts are recorded under a `profile_measure` span instead of dropped.
#[allow(clippy::too_many_arguments)]
pub fn measure_profile(
    solver: &mut RansSolver,
    cycle: &CycleParams,
    parts: &[usize],
    match_parts: usize,
    target_points: f64,
    name: &str,
    ctx: &mut ExecContext,
) -> CycleProfile {
    let tracer = ctx.tracer();
    tracer.begin(SpanKey::new("profile_measure"));
    // FLOP measurement over one cycle.
    for lvl in solver.levels.iter_mut() {
        lvl.flops.take();
    }
    solver.cycle(cycle);
    let nlev = solver.nlevels();
    let visits: Vec<f64> = (0..nlev)
        .map(|l| match cycle.cycle {
            CycleType::V => 1.0,
            CycleType::W => (1usize << l) as f64,
        })
        .collect();
    let flops_per_point: Vec<f64> = (0..nlev)
        .map(|l| {
            let f = solver.levels[l].flops.total() as f64;
            f / (solver.levels[l].nvertices() as f64 * visits[l])
        })
        .collect();

    for (l, f) in flops_per_point.iter().enumerate() {
        tracer.add("profile.flops", solver.levels[l].flops.total());
        tracer.gauge(&format!("profile.flops_per_point.level{l}"), *f);
    }

    let law = fit_surface_law(solver, 0, parts);
    law.provenance.record_to(tracer, 0, &law);
    let scale = target_points / solver.levels[0].nvertices() as f64;

    // Exchanges per visit: each smoothing sweep needs gradient add+copy,
    // residual add, diagonal add, state copy = 5; plus the residual
    // assembly for the transfer. Derived from the cycle parameters.
    let sweeps = (cycle.pre_sweeps + cycle.post_sweeps) as f64 / 2.0 + 1.0;
    let exchanges_per_visit = 5.0 * sweeps + 2.0;

    // Working set per point: 4 state-sized arrays + gradients + diagonal
    // blocks + mesh metrics (edges amortised per vertex).
    let state_bytes = (4 * NVARS * 8 + 72 + 296 + 200) as f64;

    let levels: Vec<LevelProfile> = (0..nlev)
        .map(|l| LevelProfile {
            name: format!("level {l}"),
            points: solver.levels[l].nvertices() as f64 * scale,
            flops_per_point: flops_per_point[l],
            state_bytes_per_point: state_bytes,
            exchange_bytes_per_entry: (NVARS * 8) as f64,
            exchanges_per_visit,
            surface_coeff: law.coeff,
            surface_exponent: law.exponent,
            max_degree: law.max_degree.max(18.0),
            visits: visits[l],
            rate_scale: 1.0,
            cache_fraction: 1.0,
        })
        .collect();

    let intergrid: Vec<IntergridProfile> = (0..nlev - 1)
        .map(|l| IntergridProfile {
            // Restriction ships state+residual (13 doubles), prolongation
            // ships the correction (6): ~ (13 + 6) * 8 / 2 per transfer.
            bytes_per_fine_point: 76.0,
            transfers_per_cycle: visits[l + 1],
            nonlocal_fraction: measure_intergrid_nonlocal(solver, l, match_parts).max(0.05),
            max_degree: (law.max_degree + 1.0).max(19.0),
            fine_points: solver.levels[l].nvertices() as f64 * scale,
        })
        .collect();

    tracer.add("profile.levels", nlev as u64);
    tracer.end();
    CycleProfile {
        name: name.to_string(),
        levels,
        intergrid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolverParams;
    use columbia_mesh::{wing_mesh, WingMeshSpec};

    fn solver(points: usize, levels: usize) -> RansSolver {
        let mesh = wing_mesh(&WingMeshSpec {
            jitter: 0.0,
            ..WingMeshSpec::with_target_points(points)
        });
        RansSolver::new(
            mesh,
            SolverParams {
                mach: 0.5,
                ..Default::default()
            },
            levels,
        )
    }

    #[test]
    fn surface_law_is_sublinear() {
        let s = solver(12000, 1);
        let law = fit_surface_law(&s, 0, &[4, 8, 16, 32]);
        assert!(
            (0.3..=1.0).contains(&law.exponent),
            "exponent {}",
            law.exponent
        );
        assert!(law.coeff > 0.1, "coeff {}", law.coeff);
        assert!(law.max_degree >= 2.0);
    }

    #[test]
    fn fit_provenance_reports_skips_and_fallback() {
        let s = solver(12000, 1);
        // Healthy fit: every requested count usable, no fallback.
        let law = fit_surface_law(&s, 0, &[4, 8, 16, 32]);
        assert_eq!(law.provenance.parts_requested, 4);
        assert_eq!(law.provenance.parts_skipped_small, 0);
        assert_eq!(law.provenance.samples_used, 4);
        assert_eq!(law.provenance.fallback, None);

        // Oversized part counts are skipped (p * 4 > nvertices) and the
        // fallback reason is recorded instead of silently dropped.
        let n = s.levels[0].nvertices();
        let law = fit_surface_law(&s, 0, &[n, 2 * n]);
        assert_eq!(law.provenance.parts_requested, 2);
        assert_eq!(law.provenance.parts_skipped_small, 2);
        assert_eq!(law.provenance.samples_used, 0);
        assert_eq!(law.provenance.fallback, Some(FitFallback::TooFewSamples));
        assert_eq!(law.provenance.fallback.unwrap().label(), "too_few_samples");
        assert!((law.exponent - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn measure_profile_records_fit_provenance() {
        let mut s = solver(4000, 2);
        let mut ctx = ExecContext::traced();
        let p = measure_profile(
            &mut s,
            &CycleParams::default(),
            &[4, 8, 16],
            8,
            72.0e6,
            "traced",
            &mut ctx,
        );
        p.validate().unwrap();
        let trace = ctx.finish_trace();
        let span = trace.find("profile_measure").expect("profile span");
        let fit = span
            .children
            .iter()
            .find(|c| c.key.name == "surface_fit")
            .expect("surface_fit child span");
        assert_eq!(fit.counters.get("fit.parts_requested"), Some(&3));
        assert!(fit.gauges.contains_key("fit.exponent"));
        assert!(span.counters.get("profile.flops").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn intergrid_nonlocality_in_unit_range() {
        let s = solver(4000, 3);
        let f = measure_intergrid_nonlocal(&s, 0, 8);
        assert!((0.0..=1.0).contains(&f), "fraction {f}");
    }

    #[test]
    fn measured_profile_validates_and_scales() {
        let mut s = solver(4000, 3);
        let p = measure_profile(
            &mut s,
            &CycleParams::default(),
            &[4, 8, 16],
            8,
            72.0e6,
            "measured NSU3D",
            &mut ExecContext::default(),
        );
        p.validate().unwrap();
        assert!((p.levels[0].points - 72.0e6).abs() / 72.0e6 < 1e-9);
        // FLOPs per point per visit should be in a physically sensible band
        // for a 6-variable implicit solver (10^3..10^6).
        for l in &p.levels {
            assert!(
                l.flops_per_point > 1e3 && l.flops_per_point < 1e6,
                "{}: {}",
                l.name,
                l.flops_per_point
            );
        }
    }
}
