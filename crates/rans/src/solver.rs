//! The multigrid solver driver: hierarchy construction and FAS transfers.

use crate::level::RansLevel;
pub use crate::level::SolverParams;
use crate::state::NVARS;
use columbia_comm::ExecContext;
use columbia_mesh::{agglomerate_hierarchy, BoundaryKind, UnstructuredMesh};
use columbia_mg::{fas_cycle, solve_to_tolerance, ConvergenceHistory, CycleParams, MultigridLevel};

impl MultigridLevel for RansLevel {
    fn smooth(&mut self, sweeps: usize) {
        for _ in 0..sweeps {
            self.smooth_sweep();
        }
    }

    fn residual_norm(&mut self) -> f64 {
        self.residual_rms()
    }

    fn restrict_into(&mut self, coarse: &mut Self) {
        let map = self
            .to_coarse
            .clone()
            .expect("level has no coarse map; cannot restrict");
        self.compute_residual();
        let nc = coarse.nvertices();
        let mut acc = vec![[0.0f64; NVARS]; nc];
        let mut racc = vec![[0.0f64; NVARS]; nc];
        for (v, &c) in map.iter().enumerate() {
            let vol = self.mesh.volumes[v];
            let c = c as usize;
            for k in 0..NVARS {
                acc[c][k] += vol * self.u.at(k, v);
                racc[c][k] += self.res.at(k, v);
            }
        }
        for c in 0..nc {
            let iv = 1.0 / coarse.mesh.volumes[c];
            for k in 0..NVARS {
                *coarse.u.at_mut(k, c) = acc[c][k] * iv;
            }
        }
        // The coarse state must satisfy the same strong BCs, and the stored
        // restricted state must match it so the correction is consistent.
        coarse.apply_bcs();
        coarse.restricted_u.copy_from(&coarse.u);
        // FAS forcing: f_c = N_c(u_hat) + R(r_fine); compute N_c with zero
        // forcing first.
        coarse.forcing.fill_zero();
        coarse.compute_residual(); // res = -N_c(u_hat) (BC rows zeroed)
        for c in 0..nc {
            for k in 0..NVARS {
                *coarse.forcing.at_mut(k, c) = -coarse.res.at(k, c) + racc[c][k];
            }
        }
    }

    fn prolong_from(&mut self, coarse: &Self) {
        let map = self
            .to_coarse
            .as_ref()
            .expect("level has no coarse map; cannot prolongate");
        let relax = self.params.prolong_relax;
        for (v, &c) in map.iter().enumerate() {
            if self.mesh.bc[v] == BoundaryKind::FarField {
                continue;
            }
            let c = c as usize;
            let mut corr = [0.0f64; NVARS];
            for k in 0..NVARS {
                corr[k] = relax * (coarse.u.at(k, c) - coarse.restricted_u.at(k, c));
            }
            // Positivity backtracking: halve the correction until density
            // and pressure stay within a factor of 2 of the current state.
            let uv = self.u.get(v);
            let mut alpha = 1.0;
            for _ in 0..6 {
                let mut trial = uv;
                for k in 0..NVARS {
                    trial[k] += alpha * corr[k];
                }
                let rho_ok = trial[0] > 0.5 * uv[0] && trial[0] < 2.0 * uv[0];
                let p_old = crate::state::pressure(&uv);
                let p_new = crate::state::pressure(&trial);
                let p_ok = p_new > 0.5 * p_old && p_new < 2.0 * p_old;
                if rho_ok && p_ok {
                    break;
                }
                alpha *= 0.5;
            }
            for k in 0..NVARS {
                *self.u.at_mut(k, v) += alpha * corr[k];
            }
        }
        self.apply_bcs();
    }
}

/// The NSU3D-style solver: an agglomeration multigrid hierarchy over an
/// unstructured mesh.
pub struct RansSolver {
    /// Levels, finest first.
    pub levels: Vec<RansLevel>,
}

impl RansSolver {
    /// Build a solver with up to `nlevels` agglomerated levels (coarsening
    /// stops early if a level would drop below ~10 vertices).
    pub fn new(mesh: UnstructuredMesh, params: SolverParams, nlevels: usize) -> Self {
        assert!(nlevels >= 1);
        let steps = agglomerate_hierarchy(&mesh, nlevels, 10);
        let mut levels = Vec::with_capacity(steps.len() + 1);
        let mut fine = RansLevel::new(mesh, params);
        for step in &steps {
            fine.to_coarse = Some(step.fine_to_coarse.clone());
            levels.push(fine);
            fine = RansLevel::new(step.coarse.clone(), params);
        }
        levels.push(fine);
        let mut solver = RansSolver { levels };
        solver.initialize();
        solver
    }

    /// Reset all levels to free stream with boundary conditions applied.
    pub fn initialize(&mut self) {
        for lvl in &mut self.levels {
            let fs = lvl.fs;
            lvl.u.fill_with(&fs);
            lvl.forcing.fill_zero();
            lvl.apply_bcs();
        }
    }

    /// Number of levels actually built.
    pub fn nlevels(&self) -> usize {
        self.levels.len()
    }

    /// Vertex counts per level, finest first.
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.nvertices()).collect()
    }

    /// Run one multigrid cycle.
    pub fn cycle(&mut self, params: &CycleParams) {
        fas_cycle(&mut self.levels, params, &mut ExecContext::default());
    }

    /// Set the working CFL on every level.
    pub fn set_cfl(&mut self, cfl: f64) {
        for lvl in &mut self.levels {
            lvl.cfl_now = cfl;
        }
    }

    /// Run cycles to tolerance with geometric CFL ramping from
    /// `params.cfl_start` to `params.cfl`; returns the fine residual
    /// history.
    pub fn solve(
        &mut self,
        params: &CycleParams,
        tol: f64,
        max_cycles: usize,
    ) -> ConvergenceHistory {
        let sp = self.levels[0].params;
        let mut history = ConvergenceHistory::default();
        history.residuals.push(self.levels[0].residual_rms());
        let mut cfl = sp.cfl_start.min(sp.cfl);
        for _ in 0..max_cycles {
            if *history.residuals.last().unwrap() <= tol {
                break;
            }
            self.set_cfl(cfl);
            fas_cycle(&mut self.levels, params, &mut ExecContext::default());
            history.residuals.push(self.levels[0].residual_rms());
            cfl = (cfl * 1.6).min(sp.cfl);
        }
        history
    }

    /// Run cycles at a fixed CFL (no ramping) — used by tests and by the
    /// generic driver parity checks.
    pub fn solve_fixed_cfl(
        &mut self,
        params: &CycleParams,
        tol: f64,
        max_cycles: usize,
    ) -> ConvergenceHistory {
        solve_to_tolerance(
            &mut self.levels,
            params,
            tol,
            max_cycles,
            &mut ExecContext::default(),
        )
    }

    /// Total software-counted FLOPs across all levels (and reset counters).
    pub fn take_flops(&mut self) -> u64 {
        self.levels.iter_mut().map(|l| l.flops.take()).sum()
    }

    /// Per-level FLOPs since the last reset, finest first (not reset).
    pub fn level_flops(&self) -> Vec<u64> {
        self.levels.iter().map(|l| l.flops.total()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columbia_mesh::{wing_mesh, WingMeshSpec};
    use columbia_mg::CycleType;

    fn wing(n: usize) -> UnstructuredMesh {
        wing_mesh(&WingMeshSpec {
            jitter: 0.0,
            ..WingMeshSpec::with_target_points(n)
        })
    }

    fn params() -> SolverParams {
        SolverParams {
            mach: 0.5,
            ..Default::default()
        }
    }

    #[test]
    fn hierarchy_has_requested_levels() {
        let s = RansSolver::new(wing(4000), params(), 4);
        assert_eq!(s.nlevels(), 4);
        let sizes = s.level_sizes();
        for w in sizes.windows(2) {
            assert!(w[1] < w[0], "levels must shrink: {sizes:?}");
        }
    }

    #[test]
    fn multigrid_drives_residual_down() {
        let mut s = RansSolver::new(wing(3000), params(), 4);
        let hist = s.solve(&CycleParams::default(), 0.0, 25);
        assert!(
            hist.orders_reduced() > 2.0,
            "only {} orders in 25 cycles: {:?}",
            hist.orders_reduced(),
            &hist.residuals
        );
    }

    #[test]
    fn multigrid_beats_single_grid_per_cycle() {
        let mesh = wing(3000);
        let mut mg = RansSolver::new(mesh.clone(), params(), 4);
        let mut sg = RansSolver::new(mesh, params(), 1);
        let cp = CycleParams::default();
        let hm = mg.solve(&cp, 0.0, 12);
        let hs = sg.solve(&cp, 0.0, 12);
        assert!(
            hm.orders_reduced() > hs.orders_reduced(),
            "mg {} vs single {}",
            hm.orders_reduced(),
            hs.orders_reduced()
        );
    }

    #[test]
    fn w_cycle_at_least_matches_v_cycle() {
        let mesh = wing(3000);
        let mut v = RansSolver::new(mesh.clone(), params(), 4);
        let mut w = RansSolver::new(mesh, params(), 4);
        let cv = CycleParams {
            cycle: CycleType::V,
            ..Default::default()
        };
        let cw = CycleParams {
            cycle: CycleType::W,
            ..Default::default()
        };
        let hv = v.solve(&cv, 0.0, 10);
        let hw = w.solve(&cw, 0.0, 10);
        assert!(
            hw.orders_reduced() >= hv.orders_reduced() - 0.3,
            "W {} vs V {}",
            hw.orders_reduced(),
            hv.orders_reduced()
        );
    }

    #[test]
    fn flop_accounting_scales_with_cycles() {
        let mut s = RansSolver::new(wing(2000), params(), 3);
        s.cycle(&CycleParams::default());
        let f1 = s.take_flops();
        s.cycle(&CycleParams::default());
        s.cycle(&CycleParams::default());
        let f2 = s.take_flops();
        assert!(f1 > 0);
        let ratio = f2 as f64 / f1 as f64;
        assert!(
            (1.5..=2.5).contains(&ratio),
            "2 cycles should cost ~2x one: ratio {ratio}"
        );
    }
}
