//! Fully distributed multigrid: every level domain-decomposed, with
//! cross-rank restriction/prolongation schedules.
//!
//! This is the machinery behind the paper's inter-grid transfer discussion
//! (§III and §VI): each level is partitioned *independently* for intra-level
//! balance, coarse partitions are greedily matched to fine partitions by
//! overlap, and the remaining non-local fine-coarse pairs exchange packed
//! transfer messages (state + residual down, corrections up). The measured
//! non-local fraction of these transfers is exactly what the machine model
//! prices against InfiniBand's random-ring weakness.
//!
//! The implementation is SPMD: every rank runs the same W-cycle control
//! flow over its local sub-levels; transfers and norms are collectives.

use crate::level::{RansLevel, SolverParams};
use crate::parallel::{build_local_levels, parallel_sweep, partition_mesh_line_aware, LocalLevel};
use crate::state::{pressure, NVARS};
use columbia_comm::{run_world, Decomposition, ExecContext, Rank, RankTrace};
use columbia_mesh::{agglomerate_hierarchy, BoundaryKind, UnstructuredMesh};
use columbia_mg::{ConvergenceHistory, CycleParams, CycleType};
use columbia_partition::match_levels;
use columbia_rt::trace::SpanKey;
use std::sync::Mutex;

/// Packed restriction entry: `vol * u` (6), fine residual (6) — the fine
/// volume rides along as entry 12 for the volume-weighted average.
const RESTRICT_WIDTH: usize = 13;

/// One fine→coarse transfer pair, local indices on both sides.
#[derive(Clone, Debug)]
struct TransferPair {
    /// Owned fine vertex (local index on the fine rank).
    fine_local: u32,
    /// Target coarse vertex (local index on the coarse rank).
    coarse_local: u32,
}

/// Transfer schedule between two adjacent levels for all ranks.
#[derive(Clone, Debug, Default)]
pub struct TransferSchedule {
    /// `local[rank]`: same-rank pairs.
    local: Vec<Vec<TransferPair>>,
    /// `sends[fine_rank]`: per peer coarse rank, ordered pairs (the fine
    /// side packs `fine_local` in list order).
    sends: Vec<Vec<(usize, Vec<TransferPair>)>>,
    /// `recvs[coarse_rank]`: per peer fine rank, the coarse-local targets
    /// in the exact order the fine side packs them.
    recvs: Vec<Vec<(usize, Vec<u32>)>>,
}

impl TransferSchedule {
    /// Fraction of fine vertices whose transfer crosses ranks.
    pub fn nonlocal_fraction(&self) -> f64 {
        let local: usize = self.local.iter().map(|v| v.len()).sum();
        let remote: usize = self
            .sends
            .iter()
            .flat_map(|peers| peers.iter().map(|(_, v)| v.len()))
            .sum();
        if local + remote == 0 {
            0.0
        } else {
            remote as f64 / (local + remote) as f64
        }
    }
}

/// The distributed multigrid solver state (builder side).
pub struct ParallelMg {
    /// Per level: the partition vector over global vertices.
    pub parts: Vec<Vec<u32>>,
    /// Per level: decomposition (ghost plans etc.).
    pub decomps: Vec<Decomposition>,
    /// Per level, per rank: local sub-level.
    pub locals: Vec<Vec<LocalLevel>>,
    /// Per level pair `l -> l+1`: transfer schedule.
    pub transfers: Vec<TransferSchedule>,
    /// Number of ranks.
    pub nparts: usize,
}

impl ParallelMg {
    /// Build the distributed hierarchy: agglomerate, partition every level
    /// independently (line-aware on the finest), greedily match coarse to
    /// fine partition labels, and precompute the transfer schedules.
    pub fn new(
        mesh: &UnstructuredMesh,
        params: SolverParams,
        nparts: usize,
        nlevels: usize,
    ) -> Self {
        let steps = agglomerate_hierarchy(mesh, nlevels, 10);
        // Global meshes per level (level 0 borrows the caller's).
        let mut meshes: Vec<&UnstructuredMesh> = vec![mesh];
        for s in &steps {
            meshes.push(&s.coarse);
        }
        let nlev = meshes.len();

        // Partition each level independently (all line-aware), then
        // relabel each coarse partition for overlap with the next finer
        // level (the paper's greedy matching).
        let mut parts: Vec<Vec<u32>> = Vec::with_capacity(nlev);
        parts.push(partition_mesh_line_aware(
            mesh,
            nparts,
            params.line_threshold,
        ));
        for l in 1..nlev {
            // Coarse levels are also partitioned line-aware (implicit lines
            // exist on agglomerated levels too and must not be broken).
            let raw = partition_mesh_line_aware(meshes[l], nparts, params.line_threshold);
            let map = &steps[l - 1].fine_to_coarse;
            let w = vec![1.0; meshes[l - 1].nvertices()];
            let (matched, _aligned) = match_levels(&parts[l - 1], map, &raw, nparts, &w);
            parts.push(matched);
        }

        // Local levels per (level, rank); coarse levels use generic line
        // extraction on their local meshes via build_local_levels.
        let mut decomps = Vec::with_capacity(nlev);
        let mut locals = Vec::with_capacity(nlev);
        for l in 0..nlev {
            let (d, mut ls) = build_local_levels(meshes[l], &parts[l], nparts, params);
            // Attach the global->coarse map so ranks can see level sizes.
            for lr in ls.iter_mut() {
                lr.level.to_coarse = None;
            }
            decomps.push(d);
            locals.push(ls);
        }

        // Transfer schedules between adjacent levels.
        let mut transfers = Vec::with_capacity(nlev.saturating_sub(1));
        for l in 0..nlev - 1 {
            let map = &steps[l].fine_to_coarse;
            let fine_part = &parts[l];
            let coarse_part = &parts[l + 1];
            let fine_d = &decomps[l];
            let coarse_d = &decomps[l + 1];
            let mut sched = TransferSchedule {
                local: vec![Vec::new(); nparts],
                sends: vec![Vec::new(); nparts],
                recvs: vec![Vec::new(); nparts],
            };
            // Group pairs by (fine_rank, coarse_rank), ordered by
            // (coarse_global, fine_global) so both sides agree on layout.
            // Entry: (coarse_global, fine_local, coarse_local).
            type PairsByRanks = std::collections::BTreeMap<(usize, usize), Vec<(u32, u32, u32)>>;
            let mut grouped: PairsByRanks = PairsByRanks::new();
            for v in 0..meshes[l].nvertices() {
                let g = map[v];
                let fr = fine_part[v] as usize;
                let cr = coarse_part[g as usize] as usize;
                let fl = fine_d
                    .local_index(fr, v as u32)
                    .expect("owned fine vertex must be local");
                let cl = coarse_d
                    .local_index(cr, g)
                    .expect("owned coarse vertex must be local");
                grouped.entry((fr, cr)).or_default().push((g, v as u32, 0));
                let e = grouped.get_mut(&(fr, cr)).unwrap().last_mut().unwrap();
                *e = (g, fl, cl);
            }
            for ((fr, cr), mut pairs) in grouped {
                pairs.sort_unstable();
                let tp: Vec<TransferPair> = pairs
                    .iter()
                    .map(|&(_, fl, cl)| TransferPair {
                        fine_local: fl,
                        coarse_local: cl,
                    })
                    .collect();
                if fr == cr {
                    sched.local[fr].extend(tp);
                } else {
                    sched.recvs[cr].push((fr, tp.iter().map(|p| p.coarse_local).collect()));
                    sched.sends[fr].push((cr, tp));
                }
            }
            // Deterministic peer order.
            for s in sched.sends.iter_mut() {
                s.sort_by_key(|(p, _)| *p);
            }
            for r in sched.recvs.iter_mut() {
                r.sort_by_key(|(p, _)| *p);
            }
            transfers.push(sched);
        }

        ParallelMg {
            parts,
            decomps,
            locals,
            transfers,
            nparts,
        }
    }

    /// Number of levels built.
    pub fn nlevels(&self) -> usize {
        self.locals.len()
    }

    /// Measured non-local transfer fractions per level pair.
    pub fn nonlocal_fractions(&self) -> Vec<f64> {
        self.transfers
            .iter()
            .map(|t| t.nonlocal_fraction())
            .collect()
    }

    /// Run `max_cycles` W-/V-cycles in parallel; returns the residual
    /// history (identical on every rank) and the per-rank teardown ledgers.
    ///
    /// Every rank runs under a multigrid-level context (sweeps attributed
    /// to their level, restriction/prolongation traffic to the *coarse*
    /// level of the pair — the intergrid cost the paper charges against
    /// coarse grids), so `traces[p].per_level` is always populated. A fault
    /// plan on `ctx` injects message/barrier faults per its seed, and an
    /// enabled tracer additionally records the ledgers under an `mg_solve`
    /// span. The default context runs clean with no recording overhead.
    pub fn solve(
        mut self,
        cp: &CycleParams,
        cfl: f64,
        max_cycles: usize,
        ctx: &mut ExecContext,
    ) -> (ConvergenceHistory, Vec<RankTrace>) {
        let nparts = self.nparts;
        // Move each rank's column of levels into a per-rank bundle.
        let mut bundles: Vec<Option<Vec<LocalLevel>>> =
            (0..nparts).map(|_| Some(Vec::new())).collect();
        for lvl in self.locals.drain(..) {
            for (r, local) in lvl.into_iter().enumerate() {
                bundles[r].as_mut().unwrap().push(local);
            }
        }
        let bundles = Mutex::new(bundles);
        let decomps = &self.decomps;
        let transfers = &self.transfers;

        let (results, traces) = run_world(nparts, ctx, |rank| {
            let mut levels = bundles.lock().unwrap()[rank.rank()]
                .take()
                .expect("bundle already taken");
            for (l, lv) in levels.iter_mut().enumerate() {
                rank.enter_level(l);
                lv.level.cfl_now = cfl;
                lv.level.apply_bcs();
                decomps[l].plans[rank.rank()].exchange_copy_field(rank, 1, &mut lv.level.u);
                rank.exit_level();
            }
            let mut history = ConvergenceHistory::default();
            rank.enter_level(0);
            history
                .residuals
                .push(level_residual_rms(&mut levels[0], &decomps[0], rank, 900));
            rank.exit_level();
            for _cycle in 0..max_cycles {
                mg_recurse(&mut levels, decomps, transfers, cp, 0, rank);
                rank.enter_level(0);
                history
                    .residuals
                    .push(level_residual_rms(&mut levels[0], &decomps[0], rank, 901));
                rank.exit_level();
            }
            // No take_stats: the teardown sink hands the whole ledger back.
            history
        });

        let history = results.into_iter().next_back().unwrap_or_default();
        let tracer = ctx.tracer();
        tracer.scoped(SpanKey::new("mg_solve"), |t| {
            t.add("cycles", history.cycles() as u64);
            t.gauge("orders_reduced", history.orders_reduced());
            if let Some(&r) = history.residuals.last() {
                t.gauge("final_residual_rms", r);
            }
            for tr in &traces {
                tr.record_to(t);
            }
        });
        (history, traces)
    }
}

/// Residual RMS of one level (collective).
fn level_residual_rms(
    local: &mut LocalLevel,
    decomp: &Decomposition,
    rank: &mut Rank,
    tag: u64,
) -> f64 {
    let plan = &decomp.plans[rank.rank()];
    let lvl = &mut local.level;
    lvl.begin_residual();
    lvl.accumulate_gradients();
    plan.exchange_add_field(rank, tag, lvl.grad_mut());
    lvl.finalize_gradients();
    plan.exchange_copy_field(rank, tag + 1, lvl.grad_mut());
    lvl.accumulate_fluxes();
    plan.exchange_add_field(rank, tag + 2, &mut lvl.res);
    lvl.finalize_residual();
    let (ss, cnt) = lvl.residual_sumsq();
    let gss = rank.allreduce_sum(ss);
    let gcnt = rank.allreduce_sum(cnt as f64);
    if gcnt == 0.0 {
        0.0
    } else {
        (gss / gcnt).sqrt()
    }
}

/// Recursive SPMD FAS cycle over the rank's local levels.
fn mg_recurse(
    levels: &mut [LocalLevel],
    decomps: &[Decomposition],
    transfers: &[TransferSchedule],
    cp: &CycleParams,
    l: usize,
    rank: &mut Rank,
) {
    let last = levels.len() - 1;
    if l == last {
        rank.enter_level(l);
        for _ in 0..cp.coarse_sweeps {
            let (head, _) = levels.split_at_mut(l + 1);
            parallel_sweep(&mut head[l], &decomps[l], rank);
        }
        rank.exit_level();
        return;
    }
    rank.enter_level(l);
    for _ in 0..cp.pre_sweeps {
        parallel_sweep(&mut levels[l], &decomps[l], rank);
    }
    rank.exit_level();
    // Intergrid transfers are charged to the coarse level of the pair —
    // the same attribution the paper's per-level tables use.
    rank.enter_level(l + 1);
    parallel_restrict(levels, decomps, transfers, l, rank);
    rank.exit_level();
    let visits = match cp.cycle {
        CycleType::V => 1,
        CycleType::W => 2,
    };
    for _ in 0..visits {
        mg_recurse(levels, decomps, transfers, cp, l + 1, rank);
    }
    rank.enter_level(l + 1);
    parallel_prolong(levels, decomps, transfers, l, rank);
    rank.exit_level();
    rank.enter_level(l);
    for _ in 0..cp.post_sweeps {
        parallel_sweep(&mut levels[l], &decomps[l], rank);
    }
    rank.exit_level();
}

/// Distributed FAS restriction `l -> l+1`.
fn parallel_restrict(
    levels: &mut [LocalLevel],
    decomps: &[Decomposition],
    transfers: &[TransferSchedule],
    l: usize,
    rank: &mut Rank,
) {
    let p = rank.rank();
    let tag = 300 + 10 * l as u64;

    // Fine residual (complete at owners).
    {
        let fine = &mut levels[l];
        let plan = &decomps[l].plans[p];
        let lvl = &mut fine.level;
        lvl.begin_residual();
        lvl.accumulate_gradients();
        plan.exchange_add_field(rank, tag, lvl.grad_mut());
        lvl.finalize_gradients();
        plan.exchange_copy_field(rank, tag + 1, lvl.grad_mut());
        lvl.accumulate_fluxes();
        plan.exchange_add_field(rank, tag + 2, &mut lvl.res);
        lvl.finalize_residual();
    }

    let (fine_slice, coarse_slice) = levels.split_at_mut(l + 1);
    let fine = &fine_slice[l];
    let coarse = &mut coarse_slice[0];
    let sched = &transfers[l];

    // Accumulators over the coarse rank's local vertices.
    let nc = coarse.level.nvertices();
    let mut acc_u = vec![[0.0f64; NVARS]; nc];
    let mut acc_r = vec![[0.0f64; NVARS]; nc];

    // Send packed (vol*u, r, vol) per remote coarse rank. Payloads come
    // from the rank's pool, sized for the wider (restrict) direction so
    // restriction and prolongation ping-pong one recycled buffer per
    // peer pair.
    for (peer, pairs) in &sched.sends[p] {
        let mut buf = rank.buffer(*peer, RESTRICT_WIDTH.max(NVARS) * pairs.len());
        for pr in pairs {
            let v = pr.fine_local as usize;
            let vol = fine.level.mesh.volumes[v];
            for k in 0..NVARS {
                buf.push(vol * fine.level.u.at(k, v));
            }
            for k in 0..NVARS {
                buf.push(fine.level.res.at(k, v));
            }
            buf.push(vol);
        }
        rank.send(*peer, tag + 3, buf);
    }
    // Local pairs accumulate directly.
    for pr in &sched.local[p] {
        let v = pr.fine_local as usize;
        let c = pr.coarse_local as usize;
        let vol = fine.level.mesh.volumes[v];
        for k in 0..NVARS {
            acc_u[c][k] += vol * fine.level.u.at(k, v);
            acc_r[c][k] += fine.level.res.at(k, v);
        }
    }
    // Receive remote contributions.
    for (peer, targets) in &sched.recvs[p] {
        let buf = rank.recv(*peer, tag + 3);
        assert_eq!(
            buf.len(),
            targets.len() * RESTRICT_WIDTH,
            "rank {p}: restriction buffer size mismatch from peer {peer} on tag {}",
            tag + 3
        );
        for (i, &cl) in targets.iter().enumerate() {
            let base = i * RESTRICT_WIDTH;
            let c = cl as usize;
            for k in 0..NVARS {
                acc_u[c][k] += buf[base + k];
                acc_r[c][k] += buf[base + NVARS + k];
            }
        }
        rank.recycle(*peer, buf);
    }

    // Coarse state = volume-weighted average (coarse volume is the exact
    // sum of child volumes by construction of the agglomeration).
    for c in 0..nc {
        if !coarse.level.active[c] {
            continue;
        }
        let iv = 1.0 / coarse.level.mesh.volumes[c];
        for k in 0..NVARS {
            *coarse.level.u.at_mut(k, c) = acc_u[c][k] * iv;
        }
    }
    coarse.level.apply_bcs();
    let plan_c = &decomps[l + 1].plans[p];
    plan_c.exchange_copy_field(rank, tag + 4, &mut coarse.level.u);
    let RansLevel {
        restricted_u, u, ..
    } = &mut coarse.level;
    restricted_u.copy_from(u);

    // FAS forcing: f_c = N_c(u_hat) + R(r_f) — compute N_c with zero
    // forcing via the parallel residual phases.
    coarse.level.forcing.fill_zero();
    {
        let lvl = &mut coarse.level;
        lvl.begin_residual();
        lvl.accumulate_gradients();
        plan_c.exchange_add_field(rank, tag + 5, lvl.grad_mut());
        lvl.finalize_gradients();
        plan_c.exchange_copy_field(rank, tag + 6, lvl.grad_mut());
        lvl.accumulate_fluxes();
        plan_c.exchange_add_field(rank, tag + 7, &mut lvl.res);
        lvl.finalize_residual();
    }
    for c in 0..nc {
        for k in 0..NVARS {
            *coarse.level.forcing.at_mut(k, c) = -coarse.level.res.at(k, c) + acc_r[c][k];
        }
    }
}

/// Distributed FAS prolongation `l+1 -> l` with the same damping +
/// positivity backtracking as the serial driver.
fn parallel_prolong(
    levels: &mut [LocalLevel],
    decomps: &[Decomposition],
    transfers: &[TransferSchedule],
    l: usize,
    rank: &mut Rank,
) {
    let p = rank.rank();
    let tag = 600 + 10 * l as u64;
    let (fine_slice, coarse_slice) = levels.split_at_mut(l + 1);
    let fine = &mut fine_slice[l];
    let coarse = &coarse_slice[0];
    let sched = &transfers[l];

    // Corrections per coarse vertex.
    let corr_of = |c: usize| -> [f64; NVARS] {
        let mut out = [0.0; NVARS];
        for k in 0..NVARS {
            out[k] = coarse.level.u.at(k, c) - coarse.level.restricted_u.at(k, c);
        }
        out
    };

    // Remote: the coarse side sends one 6-vector per fine vertex in the
    // agreed order (reverse direction of the restriction lists). The
    // pooled request is sized for the wider restrict direction so the
    // buffer received during restriction is reused here.
    for (peer, targets) in &sched.recvs[p] {
        let mut buf = rank.buffer(*peer, RESTRICT_WIDTH.max(NVARS) * targets.len());
        for &cl in targets {
            let corr = corr_of(cl as usize);
            buf.extend_from_slice(&corr);
        }
        rank.send(*peer, tag, buf);
    }
    let relax = fine.level.params.prolong_relax;
    let apply = |lvl: &mut RansLevel, v: usize, corr: &[f64; NVARS]| {
        if lvl.mesh.bc[v] == BoundaryKind::FarField {
            return;
        }
        let mut scaled = [0.0; NVARS];
        for k in 0..NVARS {
            scaled[k] = relax * corr[k];
        }
        let uv = lvl.u.get(v);
        let mut alpha = 1.0;
        for _ in 0..6 {
            let mut trial = uv;
            for k in 0..NVARS {
                trial[k] += alpha * scaled[k];
            }
            let rho_ok = trial[0] > 0.5 * uv[0] && trial[0] < 2.0 * uv[0];
            let p_old = pressure(&uv);
            let p_new = pressure(&trial);
            if rho_ok && p_new > 0.5 * p_old && p_new < 2.0 * p_old {
                break;
            }
            alpha *= 0.5;
        }
        for k in 0..NVARS {
            *lvl.u.at_mut(k, v) += alpha * scaled[k];
        }
    };
    for pr in &sched.local[p] {
        let corr = corr_of(pr.coarse_local as usize);
        apply(&mut fine.level, pr.fine_local as usize, &corr);
    }
    for (peer, pairs) in &sched.sends[p] {
        let buf = rank.recv(*peer, tag);
        assert_eq!(
            buf.len(),
            pairs.len() * NVARS,
            "rank {p}: prolongation buffer size mismatch from peer {peer} on tag {tag}"
        );
        for (i, pr) in pairs.iter().enumerate() {
            let mut corr = [0.0; NVARS];
            corr.copy_from_slice(&buf[i * NVARS..(i + 1) * NVARS]);
            apply(&mut fine.level, pr.fine_local as usize, &corr);
        }
        rank.recycle(*peer, buf);
    }
    fine.level.apply_bcs();
    decomps[l].plans[p].exchange_copy_field(rank, tag + 1, &mut fine.level.u);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::RansSolver;
    use columbia_mesh::{wing_mesh, WingMeshSpec};

    fn mesh() -> UnstructuredMesh {
        wing_mesh(&WingMeshSpec {
            ni: 24,
            nj: 5,
            nk: 12,
            nk_bl: 6,
            jitter: 0.0,
            ..Default::default()
        })
    }

    fn params() -> SolverParams {
        SolverParams {
            mach: 0.5,
            ..Default::default()
        }
    }

    #[test]
    fn schedules_cover_every_fine_vertex_exactly_once() {
        let m = mesh();
        let pmg = ParallelMg::new(&m, params(), 4, 3);
        assert!(pmg.nlevels() >= 3);
        for (l, sched) in pmg.transfers.iter().enumerate() {
            let local: usize = sched.local.iter().map(|v| v.len()).sum();
            let remote: usize = sched
                .sends
                .iter()
                .flat_map(|s| s.iter().map(|(_, v)| v.len()))
                .sum();
            let n_fine: usize = pmg.decomps[l].n_owned.iter().sum();
            assert_eq!(local + remote, n_fine, "level {l} transfer coverage");
        }
        // Greedy matching keeps most transfers local.
        let fr = pmg.nonlocal_fractions();
        assert!(fr.iter().all(|&f| f < 0.7), "nonlocal fractions {fr:?}");
    }

    #[test]
    fn parallel_multigrid_matches_serial_history() {
        let m = mesh();
        let cp = CycleParams::default();
        let cfl = 4.0;

        // Serial reference at fixed CFL.
        let mut serial = RansSolver::new(m.clone(), params(), 3);
        serial.set_cfl(cfl);
        let sh = serial.solve_fixed_cfl(&cp, 0.0, 3);

        let pmg = ParallelMg::new(&m, params(), 3, 3);
        let (ph, traces) = pmg.solve(&cp, cfl, 3, &mut ExecContext::default());

        assert_eq!(sh.residuals.len(), ph.residuals.len());
        for (i, (a, b)) in sh.residuals.iter().zip(ph.residuals.iter()).enumerate() {
            assert!(
                (a - b).abs() <= 1e-6 * (1.0 + a.abs()),
                "cycle {i}: serial {a} vs parallel {b}"
            );
        }
        // Inter-grid messages actually flowed.
        assert!(traces.iter().any(|t| t.stats.total_msgs() > 0));
    }

    #[test]
    fn traced_solve_attributes_traffic_per_level() {
        let m = mesh();
        let nlevels = {
            let pmg = ParallelMg::new(&m, params(), 3, 3);
            pmg.nlevels()
        };
        let run = || {
            let pmg = ParallelMg::new(&m, params(), 3, 3);
            let mut ctx = ExecContext::traced();
            let (h, traces) = pmg.solve(&CycleParams::default(), 4.0, 2, &mut ctx);
            (h, traces, ctx.finish_trace().to_json().render())
        };
        let (h, traces, json) = run();
        assert!(h.cycles() == 2);
        for tr in &traces {
            // Every level has an attributed ledger, and it's all attributed:
            // no send escaped the level contexts.
            assert_eq!(tr.per_level.len(), nlevels, "rank {}", tr.rank);
            let attributed: u64 = tr.per_level.values().map(|s| s.total_msgs()).sum();
            assert_eq!(attributed, tr.stats.total_msgs(), "rank {}", tr.rank);
            // Smoothing happens on every level, so every level communicates.
            assert!(tr.per_level.values().all(|s| s.total_msgs() > 0));
        }
        // Byte-identical across runs, structure intact.
        let (_, _, json2) = run();
        assert_eq!(json, json2, "traced solve must be deterministic");
        assert!(json.contains("\"mg_solve\""));
        assert!(json.contains("\"comm_level\""));
    }

    #[test]
    fn parallel_multigrid_converges_on_more_ranks() {
        let m = mesh();
        let pmg = ParallelMg::new(&m, params(), 6, 3);
        let (h, _) = pmg.solve(
            &CycleParams::default(),
            6.0,
            12,
            &mut ExecContext::default(),
        );
        assert!(
            h.orders_reduced() > 2.0,
            "distributed MG failed to converge: {} orders",
            h.orders_reduced()
        );
    }
}
