//! Flow state, fluxes, and Jacobians for the six-variable system.
//!
//! Conservative variables per vertex: `[rho, rho*u, rho*v, rho*w, E,
//! rho*nu_t]` — compressible flow plus a passively advected, diffused and
//! sourced turbulence working variable (Spalart-Allmaras style), solved
//! coupled as in NSU3D.

use columbia_linalg::BlockMat;
use columbia_mesh::Vec3;

/// Number of coupled unknowns per vertex (paper: "six degrees of freedom at
/// each grid point").
pub const NVARS: usize = 6;

/// Conservative state vector.
pub type State = [f64; NVARS];

/// Ratio of specific heats.
pub const GAMMA: f64 = 1.4;

/// Turbulence model constants (Spalart-Allmaras).
pub mod sa {
    /// Production coefficient.
    pub const CB1: f64 = 0.1355;
    /// Diffusion coefficient.
    pub const SIGMA: f64 = 2.0 / 3.0;
    /// Second diffusion coefficient.
    pub const CB2: f64 = 0.622;
    /// Kármán constant.
    pub const KAPPA: f64 = 0.41;
    /// Destruction coefficient `cb1/kappa^2 + (1 + cb2)/sigma`.
    pub const CW1: f64 = CB1 / (KAPPA * KAPPA) + (1.0 + CB2) / SIGMA;
    /// Wall-damping constant.
    pub const CV1: f64 = 7.1;
}

/// Static pressure from the conservative state.
#[inline]
pub fn pressure(u: &State) -> f64 {
    let rho = u[0];
    let q2 = (u[1] * u[1] + u[2] * u[2] + u[3] * u[3]) / rho;
    (GAMMA - 1.0) * (u[4] - 0.5 * q2)
}

/// A state on which the acoustic wavespeed is undefined: nonpositive (or
/// non-finite) `c^2 = GAMMA p / rho`, i.e. vacuum, negative pressure or a
/// NaN-contaminated state. Carries the offending quantities so solver
/// diagnostics can report the actual bad state instead of a symptom.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NonPhysicalState {
    /// Density of the offending state.
    pub rho: f64,
    /// Static pressure of the offending state.
    pub pressure: f64,
    /// The squared wavespeed that failed the `> 0` check.
    pub c2: f64,
}

impl std::fmt::Display for NonPhysicalState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "nonphysical state: c^2 = GAMMA p / rho = {:e} (rho = {:e}, p = {:e})",
            self.c2, self.rho, self.pressure
        )
    }
}

impl std::error::Error for NonPhysicalState {}

/// Speed of sound, reporting nonphysical states instead of masking them.
pub fn try_sound_speed(u: &State) -> Result<f64, NonPhysicalState> {
    let p = pressure(u);
    let c2 = GAMMA * p / u[0];
    if c2.is_finite() && c2 > 0.0 {
        Ok(c2.sqrt())
    } else {
        Err(NonPhysicalState {
            rho: u[0],
            pressure: p,
            c2,
        })
    }
}

/// Speed of sound.
///
/// The `1e-300` floor exists so a *release* solver keeps marching on a
/// transiently bad state (the positivity guards in `apply_bcs` repair it
/// within the sweep); in debug builds a nonphysical state trips the
/// assert instead of silently yielding a near-zero wavespeed (and so a
/// near-zero CFL time step). Diagnostics that want the error as a value
/// use [`try_sound_speed`].
#[inline]
pub fn sound_speed(u: &State) -> f64 {
    debug_assert!(
        {
            let c2 = GAMMA * pressure(u) / u[0];
            c2.is_finite() && c2 > 0.0
        },
        "nonphysical state in sound_speed: rho = {:e}, p = {:e} (the 1e-300 floor would mask it)",
        u[0],
        pressure(u),
    );
    (GAMMA * pressure(u) / u[0]).max(1e-300).sqrt()
}

/// Velocity vector.
#[inline]
pub fn velocity(u: &State) -> Vec3 {
    Vec3::new(u[1] / u[0], u[2] / u[0], u[3] / u[0])
}

/// Turbulence working variable `nu_t = (rho*nu_t)/rho`.
#[inline]
pub fn nu_tilde(u: &State) -> f64 {
    u[5] / u[0]
}

/// Convective flux through area vector `s` (magnitude = face area).
#[inline]
pub fn flux(u: &State, s: Vec3) -> State {
    let v = velocity(u);
    let un = v.dot(s); // volume flux through the face
    let p = pressure(u);
    [
        u[0] * un,
        u[1] * un + p * s.x,
        u[2] * un + p * s.y,
        u[3] * un + p * s.z,
        (u[4] + p) * un,
        u[5] * un,
    ]
}

/// Convective spectral radius `|V.S| + c|S|`.
#[inline]
pub fn spectral_radius(u: &State, s: Vec3) -> f64 {
    velocity(u).dot(s).abs() + sound_speed(u) * s.norm()
}

/// Rusanov (local Lax-Friedrichs) numerical flux from `ul` to `ur` through
/// area vector `s` (oriented l -> r). Robust, monotone, and smooth enough
/// to be driven hard by implicit smoothers — the appropriate model operator
/// for a scalability reproduction.
#[inline]
pub fn rusanov(ul: &State, ur: &State, s: Vec3) -> State {
    let fl = flux(ul, s);
    let fr = flux(ur, s);
    let lam = spectral_radius(ul, s).max(spectral_radius(ur, s));
    let mut out = [0.0; NVARS];
    for k in 0..NVARS {
        out[k] = 0.5 * (fl[k] + fr[k]) - 0.5 * lam * (ur[k] - ul[k]);
    }
    out
}

/// Analytic Jacobian `dF/dU` of the convective flux through `s`.
///
/// Standard compressible-flow Jacobian extended with the passively advected
/// sixth variable (pressure does not depend on `rho*nu_t`).
pub fn flux_jacobian(u: &State, s: Vec3) -> BlockMat<NVARS> {
    let rho = u[0];
    let vel = velocity(u);
    let (vx, vy, vz) = (vel.x, vel.y, vel.z);
    let un = vel.dot(s);
    let q2 = vx * vx + vy * vy + vz * vz;
    let phi = 0.5 * (GAMMA - 1.0) * q2;
    let p = pressure(u);
    let h = (u[4] + p) / rho; // total enthalpy
    let nt = u[5] / rho;
    let g1 = GAMMA - 1.0;

    let mut a = BlockMat::zero();
    // Mass row.
    a.set(0, 1, s.x);
    a.set(0, 2, s.y);
    a.set(0, 3, s.z);
    // Momentum rows.
    let sv = [s.x, s.y, s.z];
    let vv = [vx, vy, vz];
    for i in 0..3 {
        a.set(1 + i, 0, phi * sv[i] - vv[i] * un);
        for j in 0..3 {
            let mut val = vv[i] * sv[j] - g1 * vv[j] * sv[i];
            if i == j {
                val += un;
            }
            a.set(1 + i, 1 + j, val);
        }
        a.set(1 + i, 4, g1 * sv[i]);
    }
    // Energy row.
    a.set(4, 0, un * (phi - h));
    for j in 0..3 {
        a.set(4, 1 + j, h * sv[j] - g1 * vv[j] * un);
    }
    a.set(4, 4, GAMMA * un);
    // Turbulence row: F6 = (rho nu) * un.
    a.set(5, 0, -nt * un);
    for j in 0..3 {
        a.set(5, 1 + j, nt * sv[j]);
    }
    a.set(5, 5, un);
    a
}

/// Free-stream conservative state for Mach number `mach` at `alpha` radians
/// angle of attack (in the x-y plane) with unit density and unit sound
/// speed, and turbulence variable `nu_t_inf`.
pub fn freestream(mach: f64, alpha: f64, nu_t_inf: f64) -> State {
    let rho = 1.0;
    let p = 1.0 / GAMMA; // c = 1
    let q = mach;
    let (vx, vy, vz) = (q * alpha.cos(), q * alpha.sin(), 0.0);
    let e = p / (GAMMA - 1.0) + 0.5 * rho * q * q;
    [rho, rho * vx, rho * vy, rho * vz, e, rho * nu_t_inf]
}

/// SA wall-damping function `fv1 = chi^3 / (chi^3 + cv1^3)`, `chi = nu_t/nu`.
#[inline]
pub fn fv1(nu_t: f64, nu_laminar: f64) -> f64 {
    let chi = (nu_t / nu_laminar).max(0.0);
    let c3 = chi * chi * chi;
    c3 / (c3 + sa::CV1 * sa::CV1 * sa::CV1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> State {
        freestream(0.5, 0.02, 1e-4)
    }

    #[test]
    fn freestream_has_unit_sound_speed() {
        let u = fs();
        assert!((sound_speed(&u) - 1.0).abs() < 1e-12);
        assert!((velocity(&u).norm() - 0.5).abs() < 1e-12);
        assert!((nu_tilde(&u) - 1e-4).abs() < 1e-18);
    }

    #[test]
    fn flux_in_zero_normal_is_zero() {
        let u = fs();
        let f = flux(&u, Vec3::ZERO);
        assert!(f.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn rusanov_is_consistent() {
        // f(u, u, s) == F(u).s (consistency of the numerical flux).
        let u = fs();
        let s = Vec3::new(0.3, -0.2, 0.9);
        let num = rusanov(&u, &u, s);
        let exact = flux(&u, s);
        for k in 0..NVARS {
            assert!((num[k] - exact[k]).abs() < 1e-14, "component {k}");
        }
    }

    #[test]
    fn rusanov_conserves_antisymmetry() {
        // Flux l->r through s equals minus flux r->l through -s.
        let ul = fs();
        let mut ur = fs();
        ur[0] = 1.1;
        ur[4] *= 1.2;
        let s = Vec3::new(0.5, 0.1, -0.3);
        let f1 = rusanov(&ul, &ur, s);
        let f2 = rusanov(&ur, &ul, -s);
        for k in 0..NVARS {
            assert!((f1[k] + f2[k]).abs() < 1e-14, "component {k}");
        }
    }

    #[test]
    fn jacobian_matches_finite_differences() {
        let u = {
            let mut u = fs();
            u[3] = 0.1; // non-trivial w
            u
        };
        let s = Vec3::new(0.7, -0.4, 0.2);
        let a = flux_jacobian(&u, s);
        let eps = 1e-7;
        for j in 0..NVARS {
            let mut up = u;
            let mut um = u;
            let h = eps * (1.0 + u[j].abs());
            up[j] += h;
            um[j] -= h;
            let fp = flux(&up, s);
            let fm = flux(&um, s);
            for i in 0..NVARS {
                let fd = (fp[i] - fm[i]) / (2.0 * h);
                let an = a.get(i, j);
                assert!(
                    (fd - an).abs() < 1e-5 * (1.0 + an.abs()),
                    "dF{i}/dU{j}: fd {fd} vs analytic {an}"
                );
            }
        }
    }

    #[test]
    fn spectral_radius_bounds_jacobian_in_1d() {
        // For the exact Jacobian, the largest eigenvalue magnitude is
        // |un| + c|s|; check the Rusanov lambda dominates a matvec growth.
        let u = fs();
        let s = Vec3::new(1.0, 0.0, 0.0);
        let lam = spectral_radius(&u, s);
        assert!((lam - (0.5 * 0.02f64.cos() + 1.0)).abs() < 1e-10);
    }

    #[test]
    fn fv1_limits() {
        assert!(fv1(0.0, 1e-3) == 0.0);
        assert!(fv1(1.0, 1e-6) > 0.999);
        let mid = fv1(7.1e-3, 1e-3); // chi = cv1 -> 0.5
        assert!((mid - 0.5).abs() < 1e-12);
    }

    #[test]
    fn negative_pressure_is_reported_not_masked() {
        // Kinetic energy exceeding total energy => negative pressure.
        let bad: State = [1.0, 2.0, 0.0, 0.0, 0.5, 0.0];
        assert!(pressure(&bad) < 0.0);
        let err = try_sound_speed(&bad).unwrap_err();
        assert_eq!(err.rho, 1.0);
        assert!(err.pressure < 0.0 && err.c2 < 0.0);
        let msg = err.to_string();
        assert!(msg.contains("nonphysical"), "{msg}");
        // Vacuum density: c^2 becomes non-finite, also reported.
        let vacuum: State = [0.0, 0.0, 0.0, 0.0, 1.0, 0.0];
        assert!(try_sound_speed(&vacuum).is_err());
        // Physical states round-trip through both entry points bit-equal.
        let good = freestream(0.75, 0.05, 1e-4);
        assert_eq!(
            try_sound_speed(&good).unwrap().to_bits(),
            sound_speed(&good).to_bits()
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "nonphysical state in sound_speed")]
    fn debug_sound_speed_asserts_on_negative_pressure() {
        let bad: State = [1.0, 2.0, 0.0, 0.0, 0.5, 0.0];
        let _ = sound_speed(&bad);
    }

    columbia_rt::props! {
        /// Pressure positivity is preserved by the freestream constructor
        /// and pressure() inverts the energy relation.
        fn prop_freestream_roundtrip(m in 0.05f64..0.95, al in -0.3f64..0.3) {
            let u = freestream(m, al, 1e-4);
            assert!(pressure(&u) > 0.0);
            assert!((pressure(&u) - 1.0 / GAMMA).abs() < 1e-12);
            assert!((velocity(&u).norm() - m).abs() < 1e-12);
        }

        /// Jacobian is exactly the derivative of a *homogeneous* function:
        /// for Euler (rows 0..5), F(U) = A(U) U (flux homogeneity of degree
        /// one in U).
        fn prop_flux_homogeneity(m in 0.1f64..0.9, sx in -1.0f64..1.0, sy in -1.0f64..1.0) {
            let u = freestream(m, 0.1, 1e-4);
            let s = Vec3::new(sx, sy, 0.4);
            let a = flux_jacobian(&u, s);
            let au = a.mul_vec(&u);
            let f = flux(&u, s);
            for k in 0..NVARS {
                assert!((au[k] - f[k]).abs() < 1e-12 * (1.0 + f[k].abs()), "component {}", k);
            }
        }
    }
}
