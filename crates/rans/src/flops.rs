//! Software FLOP accounting.
//!
//! The paper measured FLOP rates with the Itanium2 `pfmon` hardware
//! counters; we count in software using per-kernel operation estimates
//! (hand counts of the arithmetic in each kernel, MADD counted as 2 as in
//! the paper's methodology). The absolute numbers only need to be
//! *consistent* — they calibrate the `flops_per_point` fields of the
//! machine-model profiles.

/// FLOPs per Rusanov flux evaluation (two flux evals, two spectral radii,
/// blend) for the 6-variable system.
pub const FLUX: u64 = 150;
/// FLOPs per edge for the viscous/diffusion terms.
pub const VISCOUS: u64 = 40;
/// FLOPs per edge for the Green-Gauss gradient accumulation.
pub const GRADIENT_EDGE: u64 = 42;
/// FLOPs per vertex for the turbulence source terms.
pub const SOURCE: u64 = 60;
/// FLOPs to assemble one edge's contribution to the implicit diagonal
/// (flux Jacobian + accumulate).
pub const JACOBIAN_EDGE: u64 = 160;
/// FLOPs for one 6x6 LU factorisation + solve.
pub const LU_SOLVE: u64 = 6 * 6 * 6 * 2 / 3 + 2 * 6 * 6;
/// FLOPs per interior block row of a block-tridiagonal solve
/// (two 6x6 matmuls + LU + two matvecs).
pub const TRIDIAG_ROW: u64 = 2 * 6 * 6 * 6 * 2 + LU_SOLVE;
/// FLOPs per vertex for state update + norm accumulation.
pub const UPDATE: u64 = 30;

/// Simple accumulator carried by each solver level.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlopCounter {
    total: u64,
}

impl FlopCounter {
    /// Add `n` FLOPs.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.total += n;
    }

    /// Total FLOPs recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Reset and return the previous total.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_takes() {
        let mut c = FlopCounter::default();
        c.add(100);
        c.add(50);
        assert_eq!(c.total(), 150);
        assert_eq!(c.take(), 150);
        assert_eq!(c.total(), 0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn kernel_constants_are_plausible() {
        // LU of a 6x6 is ~144 + 72 backsolve flops.
        assert!(LU_SOLVE > 100 && LU_SOLVE < 400);
        assert!(TRIDIAG_ROW > LU_SOLVE);
    }
}
