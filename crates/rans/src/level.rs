//! One multigrid level of the solver: mesh data, state, residual assembly,
//! and the point-/line-implicit smoothers.
//!
//! Solver state is **plane-resident**: `u`, `res`, the FAS fields, and the
//! Green-Gauss gradient accumulators live in [`SoaStates`] component
//! planes, and the residual/gradient sweeps stream over cache-sized plane
//! chunks ([`EDGE_BLOCK`] edges / [`VBLOCK`] vertices per block). Per-edge
//! physics (Rusanov fluxes, Jacobians) gathers the two endpoint blocks in
//! component order — bit-identical to the historical AoS access — so every
//! digest pinned against the AoS goldens still holds, on either kernel
//! path (`COLUMBIA_KERNELS=scalar` keeps the one-block-at-a-time oracle by
//! materialising AoS views lazily per edge/vertex).

use crate::flops::{self, FlopCounter};
use crate::state::{
    self, flux_jacobian, freestream, fv1, pressure, rusanov, sa, spectral_radius, velocity, State,
    GAMMA, NVARS,
};
use columbia_linalg::soa::{vec_batch_zero, BlockBatch, SoaStates, TridiagBatch, VecBatch, LANES};
use columbia_linalg::{BlockMat, BlockTridiag};
use columbia_mesh::{extract_lines, BoundaryKind, UnstructuredMesh};
use columbia_rt::env::{self, KernelKind};

/// Edges per cache block of the plane-major Green-Gauss sweep: the
/// gathered per-edge average-velocity and normal scratch (48 bytes/edge,
/// ~24 KiB per block) stays cache-resident while the nine gradient
/// component planes stream over it one at a time.
pub const EDGE_BLOCK: usize = 512;

/// Vertices per cache block of the gradient-finalisation sweep: the
/// inverse control volumes (8 KiB per block) are computed once and reused
/// by all nine plane passes.
pub const VBLOCK: usize = 1024;

/// Physical and numerical parameters shared by all levels.
#[derive(Clone, Copy, Debug)]
pub struct SolverParams {
    /// Free-stream Mach number (paper's benchmark: 0.75).
    pub mach: f64,
    /// Angle of attack in radians.
    pub alpha: f64,
    /// Reynolds number based on the chord (paper: 3e6).
    pub reynolds: f64,
    /// Target CFL number of the implicit smoother.
    pub cfl: f64,
    /// Starting CFL; the solver ramps geometrically from here to `cfl`
    /// over the first cycles (impulsive starts are where implicit schemes
    /// blow up).
    pub cfl_start: f64,
    /// Under-relaxation of the prolonged coarse-grid correction.
    pub prolong_relax: f64,
    /// Anisotropy threshold for implicit-line extraction.
    pub line_threshold: f64,
    /// Free-stream turbulence variable as a multiple of laminar viscosity.
    pub nu_t_inf_ratio: f64,
    /// Dense-kernel path: `None` defers to `COLUMBIA_KERNELS`, falling
    /// back to the lane-interleaved SIMD batches ([`KernelKind::Simd`]).
    /// Both paths are bit-identical (pinned by `tests/kernel_parity.rs`);
    /// [`KernelKind::Scalar`] keeps the one-block-at-a-time oracle.
    pub kernel: Option<KernelKind>,
}

impl Default for SolverParams {
    fn default() -> Self {
        SolverParams {
            mach: 0.75,
            alpha: 0.0,
            reynolds: 3.0e6,
            cfl: 6.0,
            cfl_start: 1.0,
            prolong_relax: 0.75,
            line_threshold: 10.0,
            nu_t_inf_ratio: 3.0,
            kernel: None,
        }
    }
}

impl SolverParams {
    /// Non-dimensional laminar dynamic viscosity `rho_inf q_inf c / Re`.
    pub fn mu_laminar(&self) -> f64 {
        self.mach / self.reynolds
    }

    /// Free-stream conservative state.
    pub fn freestream(&self) -> State {
        freestream(
            self.mach,
            self.alpha,
            self.nu_t_inf_ratio * self.mu_laminar(),
        )
    }
}

/// Effective edge viscosity (laminar + mean turbulent eddy viscosity)
/// from the two gathered endpoint states.
#[inline]
fn mu_eff(mu: f64, ua: &State, ub: &State) -> f64 {
    let mt = |uv: &State| {
        let nt = state::nu_tilde(uv).max(0.0);
        uv[0] * nt * fv1(nt, mu / uv[0])
    };
    mu + 0.5 * (mt(ua) + mt(ub))
}

/// Off-diagonal Jacobian blocks for line edge `i` (joining `line[i]` to
/// `line[i+1]`): the `(upper_i, lower_{i+1})` pair. Shared by the scalar
/// and the batched line solvers so the assembly arithmetic is one piece
/// of code; a free function so the callers can hold disjoint borrows of
/// the level's other fields (no `mem::take` dance).
fn line_edge_blocks(
    mesh: &UnstructuredMesh,
    u: &SoaStates<NVARS>,
    mu: f64,
    line: &[u32],
    i: usize,
    ei: u32,
    sign: f64,
) -> (BlockMat<NVARS>, BlockMat<NVARS>) {
    let e = &mesh.edges[ei as usize];
    let s = e.normal * sign; // oriented line[i] -> line[i+1]
    let (vi, vj) = (line[i] as usize, line[i + 1] as usize);
    let ui = u.get(vi);
    let uj = u.get(vj);
    let lam = spectral_radius(&ui, s).max(spectral_radius(&uj, s));
    let coef = e.normal.norm() / e.length;
    let me = mu_eff(mu, &ui, &uj);
    let visc = me * coef / ui[0].min(uj[0]);
    // dN_i/du_j = 0.5 A(u_j, S_out) - (0.5 lam + visc) I.
    let mut upper = flux_jacobian(&uj, s) * 0.5;
    upper.add_diagonal(-(0.5 * lam + visc));
    // dN_{i+1}/du_i with outward normal -S.
    let mut lower = flux_jacobian(&ui, -s) * 0.5;
    lower.add_diagonal(-(0.5 * lam + visc));
    (upper, lower)
}

/// Solve the block-tridiagonal system along one line and update. All
/// operands are disjoint borrows of the level's fields.
#[allow(clippy::too_many_arguments)]
fn solve_line_scalar(
    mesh: &UnstructuredMesh,
    mu: f64,
    u: &mut SoaStates<NVARS>,
    diag: &[BlockMat<NVARS>],
    res: &SoaStates<NVARS>,
    tridiag: &mut BlockTridiag<NVARS>,
    line_x: &mut Vec<State>,
    fc: &mut FlopCounter,
    line: &[u32],
    les: &[(u32, f64)],
) {
    let m = line.len();
    tridiag.reset(m);
    for (i, &v) in line.iter().enumerate() {
        *tridiag.diag_mut(i) = diag[v as usize];
        *tridiag.rhs_mut(i) = res.get(v as usize);
    }
    for (i, &(ei, sign)) in les.iter().enumerate() {
        let (upper, lower) = line_edge_blocks(mesh, u, mu, line, i, ei, sign);
        *tridiag.upper_mut(i) = upper;
        *tridiag.lower_mut(i + 1) = lower;
    }
    line_x.resize(m, [0.0; NVARS]);
    if tridiag.solve_into(line_x).is_ok() {
        for (i, &v) in line.iter().enumerate() {
            for k in 0..NVARS {
                *u.at_mut(k, v as usize) += line_x[i][k];
            }
        }
    }
    fc.add(m as u64 * flops::TRIDIAG_ROW);
}

/// Batched line solve: up to [`LANES`] equal-length lines through one
/// interleaved tridiagonal factorisation, using the level's persistent
/// batch scratch.
#[allow(clippy::too_many_arguments)]
fn solve_line_batch(
    mesh: &UnstructuredMesh,
    mu: f64,
    u: &mut SoaStates<NVARS>,
    diag: &[BlockMat<NVARS>],
    res: &SoaStates<NVARS>,
    tb: &mut TridiagBatch<NVARS>,
    line_x_batch: &mut Vec<VecBatch<NVARS>>,
    fc: &mut FlopCounter,
    chunk: &[u32],
    lines: &[Vec<u32>],
    line_edges: &[Vec<(u32, f64)>],
) {
    let m = lines[chunk[0] as usize].len();
    let nl = chunk.len();
    tb.reset(m, nl);
    for (l, &li) in chunk.iter().enumerate() {
        let line = &lines[li as usize];
        let les = &line_edges[li as usize];
        for (i, &v) in line.iter().enumerate() {
            tb.set_diag(i, l, &diag[v as usize]);
            tb.set_rhs(i, l, &res.get(v as usize));
        }
        for (i, &(ei, sign)) in les.iter().enumerate() {
            let (upper, lower) = line_edge_blocks(mesh, u, mu, line, i, ei, sign);
            tb.set_upper(i, l, &upper);
            tb.set_lower(i + 1, l, &lower);
        }
    }
    line_x_batch.clear();
    line_x_batch.resize(m, vec_batch_zero());
    let ok = tb.solve_into(line_x_batch);
    for (l, &li) in chunk.iter().enumerate() {
        let line = &lines[li as usize];
        if ok[l] {
            for (i, &v) in line.iter().enumerate() {
                for k in 0..NVARS {
                    *u.at_mut(k, v as usize) += line_x_batch[i][k][l];
                }
            }
        }
        fc.add(line.len() as u64 * flops::TRIDIAG_ROW);
    }
}

/// One solver level: the mesh dual plus all per-vertex solver state, held
/// in resident [`SoaStates`] component planes.
pub struct RansLevel {
    /// The level's mesh (finest: generated; coarser: agglomerated).
    pub mesh: UnstructuredMesh,
    /// Implicit lines (multi-vertex only).
    pub lines: Vec<Vec<u32>>,
    /// Per line: the edge index joining consecutive line vertices, and the
    /// sign of its stored normal relative to the walk direction.
    line_edges: Vec<Vec<(u32, f64)>>,
    in_line: Vec<bool>,
    /// Conservative state, one plane per component.
    pub u: SoaStates<NVARS>,
    /// FAS forcing (zero on the finest level).
    pub forcing: SoaStates<NVARS>,
    /// State stored at restriction time (for the coarse-grid correction).
    pub restricted_u: SoaStates<NVARS>,
    /// Residual scratch `r = forcing - N(u)`.
    pub res: SoaStates<NVARS>,
    /// Green-Gauss velocity-gradient accumulators (nine planes,
    /// row-major `3 i + j` = `d v_i / d x_j`).
    grad: SoaStates<9>,
    diag: Vec<BlockMat<NVARS>>,
    lamsum: Vec<f64>,
    tridiag: BlockTridiag<NVARS>,
    line_x: Vec<State>,
    /// Resolved dense-kernel path (params override, else env, else SIMD).
    pub kernel: KernelKind,
    /// Line indices grouped by (length, index): equal-length lines are
    /// adjacent so the SIMD path can solve up to [`LANES`] of them in
    /// lockstep. Lines are vertex-disjoint, so solving them in this order
    /// is bit-identical to the construction order.
    line_order: Vec<u32>,
    tridiag_batch: TridiagBatch<NVARS>,
    line_x_batch: Vec<VecBatch<NVARS>>,
    /// Per-block scratch of the plane-major gradient sweep: gathered edge
    /// average velocities and normals ([`EDGE_BLOCK`] entries, persistent
    /// so steady-state sweeps allocate nothing).
    edge_avg: Vec<[f64; 3]>,
    edge_nrm: Vec<[f64; 3]>,
    /// Per-block inverse control volumes of the finalisation sweep.
    vol_inv: Vec<f64>,
    /// Persistent pack buffer for the diagonal + lamsum ghost exchange
    /// (36 Jacobian entries + lamsum per vertex); level-owned so the
    /// parallel sweep's coalesced exchange is allocation-free.
    pub(crate) diag_pack: Vec<[f64; 37]>,
    /// Solver parameters.
    pub params: SolverParams,
    /// Free-stream state (BC and initialisation).
    pub fs: State,
    /// Current CFL (ramped by the solver driver from `params.cfl_start`
    /// towards `params.cfl`).
    pub cfl_now: f64,
    /// Map from this level's vertices to the next coarser level (if any).
    pub to_coarse: Option<Vec<u32>>,
    /// Software FLOP counter.
    pub flops: FlopCounter,
    /// Vertices this instance is responsible for updating. All-true for the
    /// serial solver; the domain-decomposed solver marks ghosts inactive.
    pub active: Vec<bool>,
}

impl RansLevel {
    /// Build a level from a mesh. Lines are extracted here; state starts at
    /// free stream.
    pub fn new(mesh: UnstructuredMesh, params: SolverParams) -> Self {
        let lines = extract_lines(&mesh, params.line_threshold).lines;
        Self::with_lines(mesh, params, lines)
    }

    /// Build a level with an explicitly supplied line set (the
    /// domain-decomposed solver passes the restriction of the *global*
    /// lines so every rank smooths exactly what the serial solver would).
    pub fn with_lines(mesh: UnstructuredMesh, params: SolverParams, lines: Vec<Vec<u32>>) -> Self {
        let n = mesh.nvertices();
        let mut in_line = vec![false; n];
        for line in &lines {
            for &v in line {
                in_line[v as usize] = true;
            }
        }
        // Pre-resolve the edge joining each consecutive line pair.
        let ve = mesh.vertex_edges();
        let mut line_edges = Vec::with_capacity(lines.len());
        for line in &lines {
            let mut les = Vec::with_capacity(line.len() - 1);
            for w in line.windows(2) {
                let mut found = None;
                for r in ve.of(w[0] as usize) {
                    if r.other == w[1] {
                        found = Some((r.edge, r.sign));
                        break;
                    }
                }
                les.push(found.expect("line pair without mesh edge"));
            }
            line_edges.push(les);
        }
        let fs = params.freestream();
        let mut line_order: Vec<u32> = (0..lines.len() as u32).collect();
        line_order.sort_by_key(|&i| (lines[i as usize].len(), i));
        let kernel = params
            .kernel
            .or_else(env::kernels)
            .unwrap_or(KernelKind::Simd);
        let mut u = SoaStates::zeros(n);
        u.fill_with(&fs);
        let mut restricted_u = SoaStates::zeros(n);
        restricted_u.fill_with(&fs);
        RansLevel {
            lines,
            line_edges,
            in_line,
            kernel,
            line_order,
            tridiag_batch: TridiagBatch::new(),
            line_x_batch: Vec::new(),
            u,
            forcing: SoaStates::zeros(n),
            restricted_u,
            res: SoaStates::zeros(n),
            grad: SoaStates::zeros(n),
            diag: vec![BlockMat::zero(); n],
            lamsum: vec![0.0; n],
            tridiag: BlockTridiag::new(),
            line_x: Vec::new(),
            edge_avg: vec![[0.0; 3]; EDGE_BLOCK],
            edge_nrm: vec![[0.0; 3]; EDGE_BLOCK],
            vol_inv: vec![0.0; VBLOCK],
            diag_pack: vec![[0.0; 37]; n],
            cfl_now: params.cfl_start.min(params.cfl),
            params,
            fs,
            to_coarse: None,
            mesh,
            flops: FlopCounter::default(),
            active: vec![true; n],
        }
    }

    /// Number of vertices.
    pub fn nvertices(&self) -> usize {
        self.mesh.nvertices()
    }

    /// Fraction of vertices covered by implicit lines.
    pub fn line_coverage(&self) -> f64 {
        self.in_line.iter().filter(|&&b| b).count() as f64 / self.nvertices().max(1) as f64
    }

    /// Assemble the full residual `r = forcing - N(u)` into `self.res`.
    ///
    /// `N(u)` = convective + viscous edge fluxes minus sources. Rows
    /// governed by strong boundary conditions are zeroed.
    ///
    /// The four phases are public so the domain-decomposed solver can
    /// interleave ghost exchanges between them.
    pub fn compute_residual(&mut self) {
        self.begin_residual();
        self.accumulate_gradients();
        self.finalize_gradients();
        self.accumulate_fluxes();
        self.finalize_residual();
    }

    /// Phase 1: clear the residual and gradient accumulators.
    pub fn begin_residual(&mut self) {
        self.res.fill_zero();
        self.grad.fill_zero();
    }

    /// Phase 2: accumulate raw Green-Gauss velocity-gradient sums
    /// (not yet divided by the control volume).
    ///
    /// The SIMD path is a cache-blocked plane-major sweep: per
    /// [`EDGE_BLOCK`] of edges it gathers the average edge velocity and
    /// normal once, then streams each of the nine gradient planes over
    /// the block. Every accumulator still receives its incident-edge
    /// contributions in global edge order and each product is computed
    /// exactly once, so the result is bit-identical to the scalar
    /// edge-at-a-time oracle.
    pub fn accumulate_gradients(&mut self) {
        let Self {
            mesh,
            u,
            grad,
            edge_avg,
            edge_nrm,
            kernel,
            flops: fc,
            ..
        } = self;
        match *kernel {
            KernelKind::Scalar => {
                for e in &mesh.edges {
                    let (a, b) = (e.a as usize, e.b as usize);
                    let va = velocity(&u.get(a));
                    let vb = velocity(&u.get(b));
                    let avg = (va + vb) * 0.5;
                    let s = e.normal;
                    let comp = [avg.x, avg.y, avg.z];
                    let sv = [s.x, s.y, s.z];
                    for i in 0..3 {
                        for j in 0..3 {
                            let c = comp[i] * sv[j];
                            *grad.at_mut(3 * i + j, a) += c;
                            *grad.at_mut(3 * i + j, b) -= c;
                        }
                    }
                }
            }
            KernelKind::Simd => {
                for chunk in mesh.edges.chunks(EDGE_BLOCK) {
                    for (t, e) in chunk.iter().enumerate() {
                        let va = velocity(&u.get(e.a as usize));
                        let vb = velocity(&u.get(e.b as usize));
                        let avg = (va + vb) * 0.5;
                        edge_avg[t] = [avg.x, avg.y, avg.z];
                        edge_nrm[t] = [e.normal.x, e.normal.y, e.normal.z];
                    }
                    for i in 0..3 {
                        for j in 0..3 {
                            let p = grad.plane_mut(3 * i + j);
                            for (t, e) in chunk.iter().enumerate() {
                                let c = edge_avg[t][i] * edge_nrm[t][j];
                                p[e.a as usize] += c;
                                p[e.b as usize] -= c;
                            }
                        }
                    }
                }
            }
        }
        fc.add(mesh.nedges() as u64 * flops::GRADIENT_EDGE);
    }

    /// Phase 3: divide gradient sums by the control volumes. The SIMD
    /// path computes [`VBLOCK`] inverse volumes once per block and reuses
    /// them across all nine plane passes — the same single divide per
    /// vertex the scalar path performs.
    pub fn finalize_gradients(&mut self) {
        let Self {
            mesh,
            grad,
            vol_inv,
            kernel,
            ..
        } = self;
        let n = mesh.nvertices();
        match *kernel {
            KernelKind::Scalar => {
                for v in 0..n {
                    let inv = 1.0 / mesh.volumes[v];
                    for k in 0..9 {
                        *grad.at_mut(k, v) *= inv;
                    }
                }
            }
            KernelKind::Simd => {
                let mut start = 0;
                while start < n {
                    let end = (start + VBLOCK).min(n);
                    for v in start..end {
                        vol_inv[v - start] = 1.0 / mesh.volumes[v];
                    }
                    for k in 0..9 {
                        let p = grad.plane_mut(k);
                        for v in start..end {
                            p[v] *= vol_inv[v - start];
                        }
                    }
                    start = end;
                }
            }
        }
    }

    /// Direct access to the raw gradient planes (ghost exchange).
    pub fn grad_mut(&mut self) -> &mut SoaStates<9> {
        &mut self.grad
    }

    /// Phase 4: accumulate convective and diffusive edge fluxes into
    /// `res = -N` (flux part). Endpoint states are gathered per edge;
    /// residual updates scatter straight into the component planes.
    pub fn accumulate_fluxes(&mut self) {
        let Self {
            mesh,
            u,
            res,
            params,
            flops: fc,
            ..
        } = self;
        let mu = params.mu_laminar();
        let mut rp = res.planes_mut();
        for e in &mesh.edges {
            let (a, b) = (e.a as usize, e.b as usize);
            let s = e.normal;
            let ua = u.get(a);
            let ub = u.get(b);
            let f = rusanov(&ua, &ub, s);
            for (k, rk) in rp.iter_mut().enumerate() {
                // res = -N: flux out of a decreases res[a].
                rk[a] -= f[k];
                rk[b] += f[k];
            }
            // Edge-based diffusion (viscous + turbulence transport).
            let coef = e.normal.norm() / e.length;
            let me = mu_eff(mu, &ua, &ub);
            let va = velocity(&ua);
            let vb = velocity(&ub);
            let dv = vb - va;
            let dvc = [dv.x, dv.y, dv.z];
            for k in 0..3 {
                let d = me * coef * dvc[k];
                // Diffusive flux out of a is -me*coef*(v_b - v_a): N[a] -= d.
                rp[1 + k][a] += d;
                rp[1 + k][b] -= d;
            }
            let ha = (ua[4] + pressure(&ua)) / ua[0];
            let hb = (ub[4] + pressure(&ub)) / ub[0];
            let de = me * coef * (hb - ha);
            rp[4][a] += de;
            rp[4][b] -= de;
            let mt = mu + 0.5 * (ua[5].max(0.0) + ub[5].max(0.0));
            let dn = mt / sa::SIGMA * coef * (ub[5] / ub[0] - ua[5] / ua[0]);
            rp[5][a] += dn;
            rp[5][b] -= dn;
        }
        fc.add(mesh.nedges() as u64 * (flops::FLUX + flops::VISCOUS));
    }

    /// Phase 5: turbulence sources, FAS forcing, boundary-row zeroing.
    /// Inactive (ghost) rows are zeroed — their flux contributions have
    /// already been shipped to the owning rank.
    pub fn finalize_residual(&mut self) {
        let Self {
            mesh,
            u,
            res,
            grad,
            forcing,
            active,
            flops: fc,
            ..
        } = self;
        let n = mesh.nvertices();
        let mut rp = res.planes_mut();
        for v in 0..n {
            if !active[v] {
                for rk in rp.iter_mut() {
                    rk[v] = 0.0;
                }
                continue;
            }
            let vol = mesh.volumes[v];
            match mesh.bc[v] {
                BoundaryKind::FarField => {
                    for rk in rp.iter_mut() {
                        rk[v] = 0.0;
                    }
                    continue;
                }
                BoundaryKind::Wall => {
                    // Strongly enforced momentum and turbulence rows.
                    for k in 1..4 {
                        rp[k][v] = 0.0;
                    }
                    rp[5][v] = 0.0;
                }
                BoundaryKind::Interior => {
                    // Vorticity from the velocity-gradient tensor
                    // (row-major g[3i + j] = d v_i / d x_j).
                    let wx = grad.at(7, v) - grad.at(5, v);
                    let wy = grad.at(2, v) - grad.at(6, v);
                    let wz = grad.at(3, v) - grad.at(1, v);
                    let omega = (wx * wx + wy * wy + wz * wz).sqrt();
                    let rho = u.at(0, v);
                    let rnt = u.at(5, v).max(0.0);
                    let nt = rnt / rho;
                    let d = mesh.wall_distance[v].max(1e-12);
                    let prod = sa::CB1 * omega * rnt;
                    let dest = sa::CW1 * rho * (nt / d) * (nt / d);
                    // res = -N and N includes -(P - D)*V.
                    rp[5][v] += (prod - dest) * vol;
                }
            }
            for (k, rk) in rp.iter_mut().enumerate() {
                rk[v] += forcing.at(k, v);
            }
            // BC rows of the forcing must not leak into constrained rows.
            match mesh.bc[v] {
                BoundaryKind::Wall => {
                    for k in 1..4 {
                        rp[k][v] = 0.0;
                    }
                    rp[5][v] = 0.0;
                }
                BoundaryKind::FarField => {
                    for rk in rp.iter_mut() {
                        rk[v] = 0.0;
                    }
                }
                BoundaryKind::Interior => {}
            }
        }
        fc.add(n as u64 * flops::SOURCE);
    }

    /// Sum of squares and entry count of the residual over active rows
    /// (no recompute; parallel ranks combine these with an allreduce).
    /// Vertex-outer, component-inner — the historical AoS summation
    /// order, so the floating-point sum is unchanged.
    pub fn residual_sumsq(&self) -> (f64, usize) {
        let mut ss = 0.0;
        let mut cnt = 0usize;
        for v in 0..self.res.len() {
            if self.active[v] {
                for k in 0..NVARS {
                    let x = self.res.at(k, v);
                    ss += x * x;
                }
                cnt += NVARS;
            }
        }
        (ss, cnt)
    }

    /// RMS norm of the current residual (recomputed, active rows only).
    pub fn residual_rms(&mut self) -> f64 {
        self.compute_residual();
        let (ss, cnt) = self.residual_sumsq();
        if cnt == 0 {
            0.0
        } else {
            (ss / cnt as f64).sqrt()
        }
    }

    /// Enforce strong boundary conditions on the state (per-vertex
    /// load/store views over the planes; same component read/write order
    /// as the AoS path).
    pub fn apply_bcs(&mut self) {
        for v in 0..self.nvertices() {
            let mut p = self.u.point_mut(v);
            match self.mesh.bc[v] {
                BoundaryKind::Wall => {
                    p.set(1, 0.0);
                    p.set(2, 0.0);
                    p.set(3, 0.0);
                    p.set(5, 0.0);
                }
                BoundaryKind::FarField => {
                    p.store(&self.fs);
                }
                BoundaryKind::Interior => {}
            }
            // Positivity guards: keep the implicit updates out of vacuum.
            let mut u = p.load();
            u[0] = u[0].clamp(0.05, 20.0);
            u[5] = u[5].max(0.0);
            let q2 = (u[1] * u[1] + u[2] * u[2] + u[3] * u[3]) / u[0];
            let pr = (GAMMA - 1.0) * (u[4] - 0.5 * q2);
            let pmin = 0.02 / GAMMA;
            if pr < pmin {
                u[4] = pmin / (GAMMA - 1.0) + 0.5 * q2;
            }
            p.store(&u);
        }
    }

    /// One implicit smoothing sweep: residual assembly, block-diagonal
    /// (and block-tridiagonal along lines) solve, state update, BCs.
    pub fn smooth_sweep(&mut self) {
        self.compute_residual();
        self.assemble_diagonal();
        self.solve_implicit();
    }

    /// The implicit solve + update of a sweep, given `res` and `diag` are
    /// assembled (the parallel solver assembles them with exchanges first).
    ///
    /// Dispatches on [`Self::kernel`]: the scalar path solves one block /
    /// one line at a time (the reference oracle); the SIMD path batches up
    /// to [`LANES`] point blocks and equal-length lines through the
    /// lane-interleaved kernels in `columbia_linalg::soa`. The two paths
    /// are bit-identical, so every golden holds under either. All scratch
    /// (tridiagonal systems, batch buffers) is level-owned, so the steady
    /// state allocates nothing (asserted by `tests/kernel_parity.rs`).
    pub fn solve_implicit(&mut self) {
        match self.kernel {
            KernelKind::Scalar => {
                let Self {
                    mesh,
                    lines,
                    line_edges,
                    tridiag,
                    line_x,
                    diag,
                    res,
                    u,
                    params,
                    flops: fc,
                    ..
                } = self;
                let mu = params.mu_laminar();
                for (line, les) in lines.iter().zip(line_edges.iter()) {
                    solve_line_scalar(mesh, mu, u, diag, res, tridiag, line_x, fc, line, les);
                }
                self.solve_points_scalar();
            }
            KernelKind::Simd => {
                self.solve_lines_simd();
                self.solve_points_simd();
            }
        }
        self.apply_bcs();
    }

    /// Point-implicit update for everything not in a line, one block at a
    /// time. Vertices with no incident edges (possible on degenerate
    /// coarsest levels) have no physics to advance and are skipped.
    fn solve_points_scalar(&mut self) {
        for v in 0..self.nvertices() {
            if !self.point_eligible(v) {
                continue;
            }
            if let Ok(lu) = self.diag[v].lu() {
                let du = lu.solve(&self.res.get(v));
                for (k, d) in du.iter().enumerate() {
                    *self.u.at_mut(k, v) += d;
                }
            }
            self.flops.add(flops::LU_SOLVE + flops::UPDATE);
        }
    }

    #[inline]
    fn point_eligible(&self, v: usize) -> bool {
        !(self.in_line[v]
            || !self.active[v]
            || self.lamsum[v] <= 0.0
            || self.mesh.bc[v] == BoundaryKind::FarField)
    }

    /// Point-implicit update batching up to [`LANES`] eligible vertices
    /// (in the same ascending order the scalar path visits them) through
    /// one interleaved LU factorise + solve. Point updates touch only
    /// their own vertex, so batching cannot change any result bit; lanes
    /// whose block is singular are discarded exactly as the scalar path
    /// skips `Err` factorisations.
    fn solve_points_simd(&mut self) {
        let n = self.nvertices();
        let mut batch = [0usize; LANES];
        let mut count = 0usize;
        for v in 0..n {
            if !self.point_eligible(v) {
                continue;
            }
            batch[count] = v;
            count += 1;
            if count == LANES {
                self.flush_point_batch(&batch[..count]);
                count = 0;
            }
        }
        if count > 0 {
            self.flush_point_batch(&batch[..count]);
        }
    }

    fn flush_point_batch(&mut self, vs: &[usize]) {
        let nl = vs.len();
        let mut mats = BlockBatch::<NVARS>::identity();
        let mut rhs = vec_batch_zero::<NVARS>();
        for (l, &v) in vs.iter().enumerate() {
            mats.set_lane(l, &self.diag[v]);
            let r = self.res.get(v);
            for (k, row) in rhs.iter_mut().enumerate() {
                row[l] = r[k];
            }
        }
        let lu = mats.lu(nl);
        let du = lu.solve(&rhs, nl);
        for (l, &v) in vs.iter().enumerate() {
            if lu.ok()[l] {
                for (k, row) in du.iter().enumerate() {
                    *self.u.at_mut(k, v) += row[l];
                }
            }
            self.flops.add(flops::LU_SOLVE + flops::UPDATE);
        }
    }

    /// Line-implicit solves in (length, index) order, batching up to
    /// [`LANES`] equal-length lines per interleaved tridiagonal solve.
    /// Lines are vertex-disjoint (proven by the mesh line-extraction
    /// tests), so both the reordering and the batching leave every line's
    /// arithmetic untouched.
    fn solve_lines_simd(&mut self) {
        let Self {
            mesh,
            lines,
            line_edges,
            line_order,
            tridiag_batch,
            line_x_batch,
            diag,
            res,
            u,
            params,
            flops: fc,
            ..
        } = self;
        let mu = params.mu_laminar();
        let mut i = 0;
        while i < line_order.len() {
            let len = lines[line_order[i] as usize].len();
            let mut j = i + 1;
            while j < line_order.len()
                && j - i < LANES
                && lines[line_order[j] as usize].len() == len
            {
                j += 1;
            }
            solve_line_batch(
                mesh,
                mu,
                u,
                diag,
                res,
                tridiag_batch,
                line_x_batch,
                fc,
                &line_order[i..j],
                lines,
                line_edges,
            );
            i = j;
        }
    }

    /// Assemble the implicit diagonal blocks and local time steps
    /// (phases public for the domain-decomposed solver).
    pub fn assemble_diagonal(&mut self) {
        self.accumulate_diagonal();
        self.finalize_diagonal();
    }

    /// Diagonal phase 1: per-edge Jacobian contributions.
    pub fn accumulate_diagonal(&mut self) {
        let Self {
            mesh,
            u,
            diag,
            lamsum,
            params,
            flops: fc,
            ..
        } = self;
        let n = mesh.nvertices();
        for v in 0..n {
            diag[v] = BlockMat::zero();
            lamsum[v] = 0.0;
        }
        let mu = params.mu_laminar();
        for e in &mesh.edges {
            let (a, b) = (e.a as usize, e.b as usize);
            let s = e.normal;
            let ua = u.get(a);
            let ub = u.get(b);
            let lam = spectral_radius(&ua, s).max(spectral_radius(&ub, s));
            let coef = e.normal.norm() / e.length;
            let me = mu_eff(mu, &ua, &ub);
            let visc = me * coef / ua[0].min(ub[0]);
            // Row a: +0.5 A(u_a, S) + (0.5 lam + visc) I.
            let mut ja = flux_jacobian(&ua, s) * 0.5;
            ja.add_diagonal(0.5 * lam + visc);
            diag[a] += ja;
            // Row b: outward normal is -S.
            let mut jb = flux_jacobian(&ub, -s) * 0.5;
            jb.add_diagonal(0.5 * lam + visc);
            diag[b] += jb;
            lamsum[a] += lam + visc;
            lamsum[b] += lam + visc;
        }
        fc.add(mesh.nedges() as u64 * flops::JACOBIAN_EDGE);
    }

    /// Diagonal phase 2: time-step and source-Jacobian terms.
    pub fn finalize_diagonal(&mut self) {
        let n = self.nvertices();
        for v in 0..n {
            // V/dt = lamsum / CFL.
            let vdt = self.lamsum[v] / self.cfl_now;
            self.diag[v].add_diagonal(vdt.max(1e-300));
            // Turbulence destruction Jacobian (stabilising, positive).
            let rho = self.u.at(0, v);
            let nt = (self.u.at(5, v) / rho).max(0.0);
            let d = self.mesh.wall_distance[v].max(1e-12);
            let dj = 2.0 * sa::CW1 * nt / (d * d) * self.mesh.volumes[v];
            *self.diag[v].get_mut(5, 5) += dj;
        }
    }

    /// Pack the implicit diagonal blocks + time-step accumulators into the
    /// level-owned flat per-vertex buffer (36 Jacobian entries + lamsum)
    /// for ghost exchange. Persistent scratch: no allocation per sweep.
    pub fn pack_diag_scratch(&mut self) {
        let Self {
            diag,
            lamsum,
            diag_pack,
            ..
        } = self;
        for (v, row) in diag_pack.iter_mut().enumerate() {
            for r in 0..NVARS {
                for c in 0..NVARS {
                    row[r * NVARS + c] = diag[v].get(r, c);
                }
            }
            row[36] = lamsum[v];
        }
    }

    /// Inverse of [`Self::pack_diag_scratch`].
    pub fn unpack_diag_scratch(&mut self) {
        let Self {
            diag,
            lamsum,
            diag_pack,
            ..
        } = self;
        for (v, row) in diag_pack.iter().enumerate() {
            diag[v] = BlockMat::from_fn(|r, c| row[r * NVARS + c]);
            lamsum[v] = row[36];
        }
    }

    /// The diagonal exchange buffer as a mutable slice (coalesced halo
    /// exchange rides it together with the residual planes).
    pub fn diag_pack_mut(&mut self) -> &mut [[f64; 37]] {
        &mut self.diag_pack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columbia_mesh::{isotropic_box_mesh, wing_mesh, WingMeshSpec};

    fn small_wing() -> RansLevel {
        let spec = WingMeshSpec {
            ni: 16,
            nj: 4,
            nk: 10,
            nk_bl: 5,
            jitter: 0.0,
            ..Default::default()
        };
        RansLevel::new(
            wing_mesh(&spec),
            SolverParams {
                mach: 0.5,
                cfl: 10.0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn freestream_is_near_steady_on_isotropic_box() {
        // With state == freestream everywhere, interior convective residuals
        // involve identical states: Rusanov dissipation vanishes and the
        // central fluxes telescope except for metric closure at boundaries
        // (all far-field here, so zeroed). Residual must be ~machine zero.
        let mesh = isotropic_box_mesh(6, 6, 6);
        let mut lvl = RansLevel::new(
            mesh,
            SolverParams {
                mach: 0.5,
                ..Default::default()
            },
        );
        let r = lvl.residual_rms();
        assert!(r < 1e-10, "freestream residual {r}");
    }

    #[test]
    fn wall_disturbs_freestream() {
        let mut lvl = small_wing();
        lvl.apply_bcs(); // zero wall momentum
        let r = lvl.residual_rms();
        assert!(r > 1e-8, "wall should generate residual, got {r}");
    }

    #[test]
    fn smoothing_reduces_residual() {
        let mut lvl = small_wing();
        lvl.apply_bcs();
        let r0 = lvl.residual_rms();
        for _ in 0..30 {
            lvl.smooth_sweep();
        }
        let r1 = lvl.residual_rms();
        assert!(
            r1 < 0.5 * r0,
            "smoother failed to reduce residual: {r0} -> {r1}"
        );
        // State must stay physical.
        for u in lvl.u.to_aos() {
            assert!(u[0] > 0.0 && pressure(&u) > 0.0);
            assert!(u.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn lines_cover_boundary_layer() {
        let lvl = small_wing();
        assert!(
            lvl.line_coverage() > 0.3,
            "line coverage {} too small",
            lvl.line_coverage()
        );
    }

    #[test]
    fn flop_counter_grows_with_sweeps() {
        let mut lvl = small_wing();
        lvl.smooth_sweep();
        let f1 = lvl.flops.total();
        lvl.smooth_sweep();
        let f2 = lvl.flops.total();
        assert!(f1 > 0);
        assert!(f2 > f1);
    }

    #[test]
    fn wall_bcs_enforced_after_sweep() {
        let mut lvl = small_wing();
        for _ in 0..3 {
            lvl.smooth_sweep();
        }
        for v in 0..lvl.nvertices() {
            if lvl.mesh.bc[v] == BoundaryKind::Wall {
                assert_eq!(lvl.u.at(1, v), 0.0);
                assert_eq!(lvl.u.at(2, v), 0.0);
                assert_eq!(lvl.u.at(3, v), 0.0);
                assert_eq!(lvl.u.at(5, v), 0.0);
            }
            if lvl.mesh.bc[v] == BoundaryKind::FarField {
                assert_eq!(lvl.u.get(v), lvl.fs);
            }
        }
    }

    /// The scalar lazy-AoS-view sweeps and the cache-blocked plane sweeps
    /// must agree bit for bit on every phase output after several full
    /// smoothing sweeps (the global parity suite pins the same property on
    /// partitioned meshes; this is the fast in-crate check).
    #[test]
    fn blocked_plane_sweeps_match_scalar_bits() {
        let mk = |kernel| {
            let spec = WingMeshSpec {
                ni: 16,
                nj: 4,
                nk: 10,
                nk_bl: 5,
                jitter: 0.0,
                ..Default::default()
            };
            let mut lvl = RansLevel::new(
                wing_mesh(&spec),
                SolverParams {
                    mach: 0.5,
                    cfl: 10.0,
                    kernel: Some(kernel),
                    ..Default::default()
                },
            );
            lvl.apply_bcs();
            for _ in 0..4 {
                lvl.smooth_sweep();
            }
            lvl.compute_residual();
            lvl
        };
        let a = mk(KernelKind::Scalar);
        let b = mk(KernelKind::Simd);
        for v in 0..a.nvertices() {
            for k in 0..NVARS {
                assert_eq!(
                    a.u.at(k, v).to_bits(),
                    b.u.at(k, v).to_bits(),
                    "u mismatch at v={v} k={k}"
                );
                assert_eq!(
                    a.res.at(k, v).to_bits(),
                    b.res.at(k, v).to_bits(),
                    "res mismatch at v={v} k={k}"
                );
            }
        }
    }
}
