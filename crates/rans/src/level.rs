//! One multigrid level of the solver: mesh data, state, residual assembly,
//! and the point-/line-implicit smoothers.

use crate::flops::{self, FlopCounter};
use crate::state::{
    self, flux_jacobian, freestream, fv1, pressure, rusanov, sa, spectral_radius, velocity, State,
    GAMMA, NVARS,
};
use columbia_linalg::soa::{vec_batch_zero, BlockBatch, TridiagBatch, VecBatch, LANES};
use columbia_linalg::{BlockMat, BlockTridiag};
use columbia_mesh::{extract_lines, BoundaryKind, UnstructuredMesh};
use columbia_rt::env::{self, KernelKind};

/// Physical and numerical parameters shared by all levels.
#[derive(Clone, Copy, Debug)]
pub struct SolverParams {
    /// Free-stream Mach number (paper's benchmark: 0.75).
    pub mach: f64,
    /// Angle of attack in radians.
    pub alpha: f64,
    /// Reynolds number based on the chord (paper: 3e6).
    pub reynolds: f64,
    /// Target CFL number of the implicit smoother.
    pub cfl: f64,
    /// Starting CFL; the solver ramps geometrically from here to `cfl`
    /// over the first cycles (impulsive starts are where implicit schemes
    /// blow up).
    pub cfl_start: f64,
    /// Under-relaxation of the prolonged coarse-grid correction.
    pub prolong_relax: f64,
    /// Anisotropy threshold for implicit-line extraction.
    pub line_threshold: f64,
    /// Free-stream turbulence variable as a multiple of laminar viscosity.
    pub nu_t_inf_ratio: f64,
    /// Dense-kernel path: `None` defers to `COLUMBIA_KERNELS`, falling
    /// back to the lane-interleaved SIMD batches ([`KernelKind::Simd`]).
    /// Both paths are bit-identical (pinned by `tests/kernel_parity.rs`);
    /// [`KernelKind::Scalar`] keeps the one-block-at-a-time oracle.
    pub kernel: Option<KernelKind>,
}

impl Default for SolverParams {
    fn default() -> Self {
        SolverParams {
            mach: 0.75,
            alpha: 0.0,
            reynolds: 3.0e6,
            cfl: 6.0,
            cfl_start: 1.0,
            prolong_relax: 0.75,
            line_threshold: 10.0,
            nu_t_inf_ratio: 3.0,
            kernel: None,
        }
    }
}

impl SolverParams {
    /// Non-dimensional laminar dynamic viscosity `rho_inf q_inf c / Re`.
    pub fn mu_laminar(&self) -> f64 {
        self.mach / self.reynolds
    }

    /// Free-stream conservative state.
    pub fn freestream(&self) -> State {
        freestream(
            self.mach,
            self.alpha,
            self.nu_t_inf_ratio * self.mu_laminar(),
        )
    }
}

/// One solver level: the mesh dual plus all per-vertex solver state.
pub struct RansLevel {
    /// The level's mesh (finest: generated; coarser: agglomerated).
    pub mesh: UnstructuredMesh,
    /// Implicit lines (multi-vertex only).
    pub lines: Vec<Vec<u32>>,
    /// Per line: the edge index joining consecutive line vertices, and the
    /// sign of its stored normal relative to the walk direction.
    line_edges: Vec<Vec<(u32, f64)>>,
    in_line: Vec<bool>,
    /// Conservative state per vertex.
    pub u: Vec<State>,
    /// FAS forcing (zero on the finest level).
    pub forcing: Vec<State>,
    /// State stored at restriction time (for the coarse-grid correction).
    pub restricted_u: Vec<State>,
    /// Residual scratch `r = forcing - N(u)`.
    pub res: Vec<State>,
    grad: Vec<[f64; 9]>,
    diag: Vec<BlockMat<NVARS>>,
    lamsum: Vec<f64>,
    tridiag: BlockTridiag<NVARS>,
    line_x: Vec<State>,
    /// Resolved dense-kernel path (params override, else env, else SIMD).
    pub kernel: KernelKind,
    /// Line indices grouped by (length, index): equal-length lines are
    /// adjacent so the SIMD path can solve up to [`LANES`] of them in
    /// lockstep. Lines are vertex-disjoint, so solving them in this order
    /// is bit-identical to the construction order.
    line_order: Vec<u32>,
    tridiag_batch: TridiagBatch<NVARS>,
    line_x_batch: Vec<VecBatch<NVARS>>,
    /// Solver parameters.
    pub params: SolverParams,
    /// Free-stream state (BC and initialisation).
    pub fs: State,
    /// Current CFL (ramped by the solver driver from `params.cfl_start`
    /// towards `params.cfl`).
    pub cfl_now: f64,
    /// Map from this level's vertices to the next coarser level (if any).
    pub to_coarse: Option<Vec<u32>>,
    /// Software FLOP counter.
    pub flops: FlopCounter,
    /// Vertices this instance is responsible for updating. All-true for the
    /// serial solver; the domain-decomposed solver marks ghosts inactive.
    pub active: Vec<bool>,
}

impl RansLevel {
    /// Build a level from a mesh. Lines are extracted here; state starts at
    /// free stream.
    pub fn new(mesh: UnstructuredMesh, params: SolverParams) -> Self {
        let lines = extract_lines(&mesh, params.line_threshold).lines;
        Self::with_lines(mesh, params, lines)
    }

    /// Build a level with an explicitly supplied line set (the
    /// domain-decomposed solver passes the restriction of the *global*
    /// lines so every rank smooths exactly what the serial solver would).
    pub fn with_lines(mesh: UnstructuredMesh, params: SolverParams, lines: Vec<Vec<u32>>) -> Self {
        let n = mesh.nvertices();
        let mut in_line = vec![false; n];
        for line in &lines {
            for &v in line {
                in_line[v as usize] = true;
            }
        }
        // Pre-resolve the edge joining each consecutive line pair.
        let ve = mesh.vertex_edges();
        let mut line_edges = Vec::with_capacity(lines.len());
        for line in &lines {
            let mut les = Vec::with_capacity(line.len() - 1);
            for w in line.windows(2) {
                let mut found = None;
                for r in ve.of(w[0] as usize) {
                    if r.other == w[1] {
                        found = Some((r.edge, r.sign));
                        break;
                    }
                }
                les.push(found.expect("line pair without mesh edge"));
            }
            line_edges.push(les);
        }
        let fs = params.freestream();
        let mut line_order: Vec<u32> = (0..lines.len() as u32).collect();
        line_order.sort_by_key(|&i| (lines[i as usize].len(), i));
        let kernel = params
            .kernel
            .or_else(env::kernels)
            .unwrap_or(KernelKind::Simd);
        RansLevel {
            lines,
            line_edges,
            in_line,
            kernel,
            line_order,
            tridiag_batch: TridiagBatch::new(),
            line_x_batch: Vec::new(),
            u: vec![fs; n],
            forcing: vec![[0.0; NVARS]; n],
            restricted_u: vec![fs; n],
            res: vec![[0.0; NVARS]; n],
            grad: vec![[0.0; 9]; n],
            diag: vec![BlockMat::zero(); n],
            lamsum: vec![0.0; n],
            tridiag: BlockTridiag::new(),
            line_x: Vec::new(),
            cfl_now: params.cfl_start.min(params.cfl),
            params,
            fs,
            to_coarse: None,
            mesh,
            flops: FlopCounter::default(),
            active: vec![true; n],
        }
    }

    /// Number of vertices.
    pub fn nvertices(&self) -> usize {
        self.mesh.nvertices()
    }

    /// Fraction of vertices covered by implicit lines.
    pub fn line_coverage(&self) -> f64 {
        self.in_line.iter().filter(|&&b| b).count() as f64 / self.nvertices().max(1) as f64
    }

    /// Effective edge viscosity (laminar + mean turbulent eddy viscosity).
    #[inline]
    fn mu_eff(&self, a: usize, b: usize) -> f64 {
        let mu = self.params.mu_laminar();
        let mt = |v: usize| {
            let nt = state::nu_tilde(&self.u[v]).max(0.0);
            self.u[v][0] * nt * fv1(nt, mu / self.u[v][0])
        };
        mu + 0.5 * (mt(a) + mt(b))
    }

    /// Assemble the full residual `r = forcing - N(u)` into `self.res`.
    ///
    /// `N(u)` = convective + viscous edge fluxes minus sources. Rows
    /// governed by strong boundary conditions are zeroed.
    ///
    /// The four phases are public so the domain-decomposed solver can
    /// interleave ghost exchanges between them.
    pub fn compute_residual(&mut self) {
        self.begin_residual();
        self.accumulate_gradients();
        self.finalize_gradients();
        self.accumulate_fluxes();
        self.finalize_residual();
    }

    /// Phase 1: clear the residual and gradient accumulators.
    pub fn begin_residual(&mut self) {
        for r in self.res.iter_mut() {
            *r = [0.0; NVARS];
        }
        for g in self.grad.iter_mut() {
            *g = [0.0; 9];
        }
    }

    /// Phase 2: accumulate raw Green-Gauss velocity-gradient sums
    /// (not yet divided by the control volume).
    pub fn accumulate_gradients(&mut self) {
        for e in &self.mesh.edges {
            let (a, b) = (e.a as usize, e.b as usize);
            let va = velocity(&self.u[a]);
            let vb = velocity(&self.u[b]);
            let avg = (va + vb) * 0.5;
            let s = e.normal;
            let comp = [avg.x, avg.y, avg.z];
            let sv = [s.x, s.y, s.z];
            for i in 0..3 {
                for j in 0..3 {
                    self.grad[a][3 * i + j] += comp[i] * sv[j];
                    self.grad[b][3 * i + j] -= comp[i] * sv[j];
                }
            }
        }
        self.flops
            .add(self.mesh.nedges() as u64 * flops::GRADIENT_EDGE);
    }

    /// Phase 3: divide gradient sums by the control volumes.
    pub fn finalize_gradients(&mut self) {
        for v in 0..self.nvertices() {
            let inv = 1.0 / self.mesh.volumes[v];
            for g in self.grad[v].iter_mut() {
                *g *= inv;
            }
        }
    }

    /// Direct access to a vertex's raw gradient storage (ghost exchange).
    pub fn grad_mut(&mut self) -> &mut [[f64; 9]] {
        &mut self.grad
    }

    /// Phase 4: accumulate convective and diffusive edge fluxes into
    /// `res = -N` (flux part).
    pub fn accumulate_fluxes(&mut self) {
        let mu = self.params.mu_laminar();
        for e in &self.mesh.edges {
            let (a, b) = (e.a as usize, e.b as usize);
            let s = e.normal;
            let f = rusanov(&self.u[a], &self.u[b], s);
            for k in 0..NVARS {
                // res = -N: flux out of a decreases res[a].
                self.res[a][k] -= f[k];
                self.res[b][k] += f[k];
            }
            // Edge-based diffusion (viscous + turbulence transport).
            let coef = e.normal.norm() / e.length;
            let me = self.mu_eff(a, b);
            let va = velocity(&self.u[a]);
            let vb = velocity(&self.u[b]);
            let dv = vb - va;
            let dvc = [dv.x, dv.y, dv.z];
            for k in 0..3 {
                let d = me * coef * dvc[k];
                // Diffusive flux out of a is -me*coef*(v_b - v_a): N[a] -= d.
                self.res[a][1 + k] += d;
                self.res[b][1 + k] -= d;
            }
            let ha = (self.u[a][4] + pressure(&self.u[a])) / self.u[a][0];
            let hb = (self.u[b][4] + pressure(&self.u[b])) / self.u[b][0];
            let de = me * coef * (hb - ha);
            self.res[a][4] += de;
            self.res[b][4] -= de;
            let mt = mu + 0.5 * (self.u[a][5].max(0.0) + self.u[b][5].max(0.0));
            let dn =
                mt / sa::SIGMA * coef * (self.u[b][5] / self.u[b][0] - self.u[a][5] / self.u[a][0]);
            self.res[a][5] += dn;
            self.res[b][5] -= dn;
        }
        self.flops
            .add(self.mesh.nedges() as u64 * (flops::FLUX + flops::VISCOUS));
    }

    /// Phase 5: turbulence sources, FAS forcing, boundary-row zeroing.
    /// Inactive (ghost) rows are zeroed — their flux contributions have
    /// already been shipped to the owning rank.
    pub fn finalize_residual(&mut self) {
        let n = self.nvertices();
        for v in 0..n {
            if !self.active[v] {
                self.res[v] = [0.0; NVARS];
                continue;
            }
            let vol = self.mesh.volumes[v];
            match self.mesh.bc[v] {
                BoundaryKind::FarField => {
                    self.res[v] = [0.0; NVARS];
                    continue;
                }
                BoundaryKind::Wall => {
                    // Strongly enforced momentum and turbulence rows.
                    for k in 1..4 {
                        self.res[v][k] = 0.0;
                    }
                    self.res[v][5] = 0.0;
                }
                BoundaryKind::Interior => {
                    // Vorticity from the velocity-gradient tensor
                    // (row-major g[3i + j] = d v_i / d x_j).
                    let g = &self.grad[v];
                    let wx = g[7] - g[5];
                    let wy = g[2] - g[6];
                    let wz = g[3] - g[1];
                    let omega = (wx * wx + wy * wy + wz * wz).sqrt();
                    let rho = self.u[v][0];
                    let rnt = self.u[v][5].max(0.0);
                    let nt = rnt / rho;
                    let d = self.mesh.wall_distance[v].max(1e-12);
                    let prod = sa::CB1 * omega * rnt;
                    let dest = sa::CW1 * rho * (nt / d) * (nt / d);
                    // res = -N and N includes -(P - D)*V.
                    self.res[v][5] += (prod - dest) * vol;
                }
            }
            for k in 0..NVARS {
                self.res[v][k] += self.forcing[v][k];
            }
            // BC rows of the forcing must not leak into constrained rows.
            match self.mesh.bc[v] {
                BoundaryKind::Wall => {
                    for k in 1..4 {
                        self.res[v][k] = 0.0;
                    }
                    self.res[v][5] = 0.0;
                }
                BoundaryKind::FarField => self.res[v] = [0.0; NVARS],
                BoundaryKind::Interior => {}
            }
        }
        self.flops.add(n as u64 * flops::SOURCE);
    }

    /// Sum of squares and entry count of the residual over active rows
    /// (no recompute; parallel ranks combine these with an allreduce).
    pub fn residual_sumsq(&self) -> (f64, usize) {
        let mut ss = 0.0;
        let mut cnt = 0usize;
        for (v, r) in self.res.iter().enumerate() {
            if self.active[v] {
                for x in r {
                    ss += x * x;
                }
                cnt += NVARS;
            }
        }
        (ss, cnt)
    }

    /// RMS norm of the current residual (recomputed, active rows only).
    pub fn residual_rms(&mut self) -> f64 {
        self.compute_residual();
        let (ss, cnt) = self.residual_sumsq();
        if cnt == 0 {
            0.0
        } else {
            (ss / cnt as f64).sqrt()
        }
    }

    /// Enforce strong boundary conditions on the state.
    pub fn apply_bcs(&mut self) {
        for v in 0..self.nvertices() {
            match self.mesh.bc[v] {
                BoundaryKind::Wall => {
                    self.u[v][1] = 0.0;
                    self.u[v][2] = 0.0;
                    self.u[v][3] = 0.0;
                    self.u[v][5] = 0.0;
                }
                BoundaryKind::FarField => {
                    self.u[v] = self.fs;
                }
                BoundaryKind::Interior => {}
            }
            // Positivity guards: keep the implicit updates out of vacuum.
            let u = &mut self.u[v];
            u[0] = u[0].clamp(0.05, 20.0);
            u[5] = u[5].max(0.0);
            let q2 = (u[1] * u[1] + u[2] * u[2] + u[3] * u[3]) / u[0];
            let p = (GAMMA - 1.0) * (u[4] - 0.5 * q2);
            let pmin = 0.02 / GAMMA;
            if p < pmin {
                u[4] = pmin / (GAMMA - 1.0) + 0.5 * q2;
            }
        }
    }

    /// One implicit smoothing sweep: residual assembly, block-diagonal
    /// (and block-tridiagonal along lines) solve, state update, BCs.
    pub fn smooth_sweep(&mut self) {
        self.compute_residual();
        self.assemble_diagonal();
        self.solve_implicit();
    }

    /// The implicit solve + update of a sweep, given `res` and `diag` are
    /// assembled (the parallel solver assembles them with exchanges first).
    ///
    /// Dispatches on [`Self::kernel`]: the scalar path solves one block /
    /// one line at a time (the reference oracle); the SIMD path batches up
    /// to [`LANES`] point blocks and equal-length lines through the
    /// lane-interleaved kernels in `columbia_linalg::soa`. The two paths
    /// are bit-identical, so every golden holds under either.
    pub fn solve_implicit(&mut self) {
        match self.kernel {
            KernelKind::Scalar => {
                // Line-implicit solves.
                let lines = std::mem::take(&mut self.lines);
                let line_edges = std::mem::take(&mut self.line_edges);
                for (line, les) in lines.iter().zip(line_edges.iter()) {
                    self.solve_line(line, les);
                }
                self.lines = lines;
                self.line_edges = line_edges;
                self.solve_points_scalar();
            }
            KernelKind::Simd => {
                self.solve_lines_simd();
                self.solve_points_simd();
            }
        }
        self.apply_bcs();
    }

    /// Point-implicit update for everything not in a line, one block at a
    /// time. Vertices with no incident edges (possible on degenerate
    /// coarsest levels) have no physics to advance and are skipped.
    fn solve_points_scalar(&mut self) {
        for v in 0..self.nvertices() {
            if !self.point_eligible(v) {
                continue;
            }
            if let Ok(lu) = self.diag[v].lu() {
                let du = lu.solve(&self.res[v]);
                for k in 0..NVARS {
                    self.u[v][k] += du[k];
                }
            }
            self.flops.add(flops::LU_SOLVE + flops::UPDATE);
        }
    }

    #[inline]
    fn point_eligible(&self, v: usize) -> bool {
        !(self.in_line[v]
            || !self.active[v]
            || self.lamsum[v] <= 0.0
            || self.mesh.bc[v] == BoundaryKind::FarField)
    }

    /// Point-implicit update batching up to [`LANES`] eligible vertices
    /// (in the same ascending order the scalar path visits them) through
    /// one interleaved LU factorise + solve. Point updates touch only
    /// their own vertex, so batching cannot change any result bit; lanes
    /// whose block is singular are discarded exactly as the scalar path
    /// skips `Err` factorisations.
    fn solve_points_simd(&mut self) {
        let n = self.nvertices();
        let mut batch = [0usize; LANES];
        let mut count = 0usize;
        for v in 0..n {
            if !self.point_eligible(v) {
                continue;
            }
            batch[count] = v;
            count += 1;
            if count == LANES {
                self.flush_point_batch(&batch[..count]);
                count = 0;
            }
        }
        if count > 0 {
            self.flush_point_batch(&batch[..count]);
        }
    }

    fn flush_point_batch(&mut self, vs: &[usize]) {
        let nl = vs.len();
        let mut mats = BlockBatch::<NVARS>::identity();
        let mut rhs = vec_batch_zero::<NVARS>();
        for (l, &v) in vs.iter().enumerate() {
            mats.set_lane(l, &self.diag[v]);
            for (k, row) in rhs.iter_mut().enumerate() {
                row[l] = self.res[v][k];
            }
        }
        let lu = mats.lu(nl);
        let du = lu.solve(&rhs, nl);
        for (l, &v) in vs.iter().enumerate() {
            if lu.ok()[l] {
                for k in 0..NVARS {
                    self.u[v][k] += du[k][l];
                }
            }
            self.flops.add(flops::LU_SOLVE + flops::UPDATE);
        }
    }

    /// Line-implicit solves in (length, index) order, batching up to
    /// [`LANES`] equal-length lines per interleaved tridiagonal solve.
    /// Lines are vertex-disjoint (proven by the mesh line-extraction
    /// tests), so both the reordering and the batching leave every line's
    /// arithmetic untouched.
    fn solve_lines_simd(&mut self) {
        let order = std::mem::take(&mut self.line_order);
        let lines = std::mem::take(&mut self.lines);
        let line_edges = std::mem::take(&mut self.line_edges);
        let mut i = 0;
        while i < order.len() {
            let len = lines[order[i] as usize].len();
            let mut j = i + 1;
            while j < order.len() && j - i < LANES && lines[order[j] as usize].len() == len {
                j += 1;
            }
            self.solve_line_batch(&order[i..j], &lines, &line_edges);
            i = j;
        }
        self.line_order = order;
        self.lines = lines;
        self.line_edges = line_edges;
    }

    fn solve_line_batch(
        &mut self,
        chunk: &[u32],
        lines: &[Vec<u32>],
        line_edges: &[Vec<(u32, f64)>],
    ) {
        let m = lines[chunk[0] as usize].len();
        let nl = chunk.len();
        let mut tb = std::mem::take(&mut self.tridiag_batch);
        tb.reset(m, nl);
        for (l, &li) in chunk.iter().enumerate() {
            let line = &lines[li as usize];
            let les = &line_edges[li as usize];
            for (i, &v) in line.iter().enumerate() {
                tb.set_diag(i, l, &self.diag[v as usize]);
                tb.set_rhs(i, l, &self.res[v as usize]);
            }
            for (i, &(ei, sign)) in les.iter().enumerate() {
                let (upper, lower) = self.line_edge_blocks(line, i, ei, sign);
                tb.set_upper(i, l, &upper);
                tb.set_lower(i + 1, l, &lower);
            }
        }
        self.line_x_batch.clear();
        self.line_x_batch.resize(m, vec_batch_zero());
        let mut x = std::mem::take(&mut self.line_x_batch);
        let ok = tb.solve_into(&mut x);
        for (l, &li) in chunk.iter().enumerate() {
            let line = &lines[li as usize];
            if ok[l] {
                for (i, &v) in line.iter().enumerate() {
                    for k in 0..NVARS {
                        self.u[v as usize][k] += x[i][k][l];
                    }
                }
            }
            self.flops.add(line.len() as u64 * flops::TRIDIAG_ROW);
        }
        self.line_x_batch = x;
        self.tridiag_batch = tb;
    }

    /// Assemble the implicit diagonal blocks and local time steps
    /// (phases public for the domain-decomposed solver).
    pub fn assemble_diagonal(&mut self) {
        self.accumulate_diagonal();
        self.finalize_diagonal();
    }

    /// Diagonal phase 1: per-edge Jacobian contributions.
    pub fn accumulate_diagonal(&mut self) {
        let n = self.nvertices();
        for v in 0..n {
            self.diag[v] = BlockMat::zero();
            self.lamsum[v] = 0.0;
        }
        for e in &self.mesh.edges {
            let (a, b) = (e.a as usize, e.b as usize);
            let s = e.normal;
            let lam = spectral_radius(&self.u[a], s).max(spectral_radius(&self.u[b], s));
            let coef = e.normal.norm() / e.length;
            let me = self.mu_eff(a, b);
            let visc = me * coef / self.u[a][0].min(self.u[b][0]);
            // Row a: +0.5 A(u_a, S) + (0.5 lam + visc) I.
            let mut ja = flux_jacobian(&self.u[a], s) * 0.5;
            ja.add_diagonal(0.5 * lam + visc);
            self.diag[a] += ja;
            // Row b: outward normal is -S.
            let mut jb = flux_jacobian(&self.u[b], -s) * 0.5;
            jb.add_diagonal(0.5 * lam + visc);
            self.diag[b] += jb;
            self.lamsum[a] += lam + visc;
            self.lamsum[b] += lam + visc;
        }
        self.flops
            .add(self.mesh.nedges() as u64 * flops::JACOBIAN_EDGE);
    }

    /// Diagonal phase 2: time-step and source-Jacobian terms.
    pub fn finalize_diagonal(&mut self) {
        let n = self.nvertices();
        for v in 0..n {
            // V/dt = lamsum / CFL.
            let vdt = self.lamsum[v] / self.cfl_now;
            self.diag[v].add_diagonal(vdt.max(1e-300));
            // Turbulence destruction Jacobian (stabilising, positive).
            let rho = self.u[v][0];
            let nt = (self.u[v][5] / rho).max(0.0);
            let d = self.mesh.wall_distance[v].max(1e-12);
            let dj = 2.0 * sa::CW1 * nt / (d * d) * self.mesh.volumes[v];
            *self.diag[v].get_mut(5, 5) += dj;
        }
    }

    /// Pack the implicit diagonal blocks + time-step accumulators into a
    /// flat per-vertex buffer (36 Jacobian entries + lamsum) for ghost
    /// exchange.
    pub fn pack_diag(&self) -> Vec<[f64; 37]> {
        (0..self.nvertices())
            .map(|v| {
                let mut row = [0.0; 37];
                for r in 0..NVARS {
                    for c in 0..NVARS {
                        row[r * NVARS + c] = self.diag[v].get(r, c);
                    }
                }
                row[36] = self.lamsum[v];
                row
            })
            .collect()
    }

    /// Inverse of [`Self::pack_diag`].
    pub fn unpack_diag(&mut self, data: &[[f64; 37]]) {
        assert_eq!(data.len(), self.nvertices());
        for (v, row) in data.iter().enumerate() {
            self.diag[v] = BlockMat::from_fn(|r, c| row[r * NVARS + c]);
            self.lamsum[v] = row[36];
        }
    }

    /// Off-diagonal Jacobian blocks for line edge `i` (joining `line[i]`
    /// to `line[i+1]`): the `(upper_i, lower_{i+1})` pair. Shared by the
    /// scalar and the batched line solvers so the assembly arithmetic is
    /// one piece of code.
    fn line_edge_blocks(
        &self,
        line: &[u32],
        i: usize,
        ei: u32,
        sign: f64,
    ) -> (BlockMat<NVARS>, BlockMat<NVARS>) {
        let e = &self.mesh.edges[ei as usize];
        let s = e.normal * sign; // oriented line[i] -> line[i+1]
        let (vi, vj) = (line[i] as usize, line[i + 1] as usize);
        let lam = spectral_radius(&self.u[vi], s).max(spectral_radius(&self.u[vj], s));
        let coef = e.normal.norm() / e.length;
        let me = self.mu_eff(vi, vj);
        let visc = me * coef / self.u[vi][0].min(self.u[vj][0]);
        // dN_i/du_j = 0.5 A(u_j, S_out) - (0.5 lam + visc) I.
        let mut upper = flux_jacobian(&self.u[vj], s) * 0.5;
        upper.add_diagonal(-(0.5 * lam + visc));
        // dN_{i+1}/du_i with outward normal -S.
        let mut lower = flux_jacobian(&self.u[vi], -s) * 0.5;
        lower.add_diagonal(-(0.5 * lam + visc));
        (upper, lower)
    }

    /// Solve the block-tridiagonal system along one line and update.
    fn solve_line(&mut self, line: &[u32], les: &[(u32, f64)]) {
        let m = line.len();
        self.tridiag.reset(m);
        for (i, &v) in line.iter().enumerate() {
            *self.tridiag.diag_mut(i) = self.diag[v as usize];
            *self.tridiag.rhs_mut(i) = self.res[v as usize];
        }
        for (i, &(ei, sign)) in les.iter().enumerate() {
            let (upper, lower) = self.line_edge_blocks(line, i, ei, sign);
            *self.tridiag.upper_mut(i) = upper;
            *self.tridiag.lower_mut(i + 1) = lower;
        }
        self.line_x.resize(m, [0.0; NVARS]);
        let mut x = std::mem::take(&mut self.line_x);
        if self.tridiag.solve_into(&mut x).is_ok() {
            for (i, &v) in line.iter().enumerate() {
                for k in 0..NVARS {
                    self.u[v as usize][k] += x[i][k];
                }
            }
        }
        self.line_x = x;
        self.flops.add(m as u64 * flops::TRIDIAG_ROW);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columbia_mesh::{isotropic_box_mesh, wing_mesh, WingMeshSpec};

    fn small_wing() -> RansLevel {
        let spec = WingMeshSpec {
            ni: 16,
            nj: 4,
            nk: 10,
            nk_bl: 5,
            jitter: 0.0,
            ..Default::default()
        };
        RansLevel::new(
            wing_mesh(&spec),
            SolverParams {
                mach: 0.5,
                cfl: 10.0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn freestream_is_near_steady_on_isotropic_box() {
        // With state == freestream everywhere, interior convective residuals
        // involve identical states: Rusanov dissipation vanishes and the
        // central fluxes telescope except for metric closure at boundaries
        // (all far-field here, so zeroed). Residual must be ~machine zero.
        let mesh = isotropic_box_mesh(6, 6, 6);
        let mut lvl = RansLevel::new(
            mesh,
            SolverParams {
                mach: 0.5,
                ..Default::default()
            },
        );
        let r = lvl.residual_rms();
        assert!(r < 1e-10, "freestream residual {r}");
    }

    #[test]
    fn wall_disturbs_freestream() {
        let mut lvl = small_wing();
        lvl.apply_bcs(); // zero wall momentum
        let r = lvl.residual_rms();
        assert!(r > 1e-8, "wall should generate residual, got {r}");
    }

    #[test]
    fn smoothing_reduces_residual() {
        let mut lvl = small_wing();
        lvl.apply_bcs();
        let r0 = lvl.residual_rms();
        for _ in 0..30 {
            lvl.smooth_sweep();
        }
        let r1 = lvl.residual_rms();
        assert!(
            r1 < 0.5 * r0,
            "smoother failed to reduce residual: {r0} -> {r1}"
        );
        // State must stay physical.
        for u in &lvl.u {
            assert!(u[0] > 0.0 && pressure(u) > 0.0);
            assert!(u.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn lines_cover_boundary_layer() {
        let lvl = small_wing();
        assert!(
            lvl.line_coverage() > 0.3,
            "line coverage {} too small",
            lvl.line_coverage()
        );
    }

    #[test]
    fn flop_counter_grows_with_sweeps() {
        let mut lvl = small_wing();
        lvl.smooth_sweep();
        let f1 = lvl.flops.total();
        lvl.smooth_sweep();
        let f2 = lvl.flops.total();
        assert!(f1 > 0);
        assert!(f2 > f1);
    }

    #[test]
    fn wall_bcs_enforced_after_sweep() {
        let mut lvl = small_wing();
        for _ in 0..3 {
            lvl.smooth_sweep();
        }
        for v in 0..lvl.nvertices() {
            if lvl.mesh.bc[v] == BoundaryKind::Wall {
                assert_eq!(lvl.u[v][1], 0.0);
                assert_eq!(lvl.u[v][2], 0.0);
                assert_eq!(lvl.u[v][3], 0.0);
                assert_eq!(lvl.u[v][5], 0.0);
            }
            if lvl.mesh.bc[v] == BoundaryKind::FarField {
                assert_eq!(lvl.u[v], lvl.fs);
            }
        }
    }
}
