//! Domain-decomposed execution of the solver (paper §III, Figure 6).
//!
//! The mesh's dual graph is contracted along the implicit lines (no line is
//! ever broken across a partition boundary), partitioned with the
//! multilevel k-way partitioner, and each rank builds a local sub-level
//! containing its owned vertices, the ghost images of off-rank neighbours,
//! and the edges it owns. A smoothing sweep then interleaves the serial
//! kernel phases with packed ghost exchanges:
//!
//! 1. gradient accumulation → add ghosts to owners → copy back,
//! 2. flux + implicit-diagonal accumulation → one **coalesced** add per
//!    peer carrying ghost residuals and diagonal blocks together
//!    (`ExchangePlan::exchange_add2`) → copy diagonal blocks back,
//! 3. local line/point solves (lines are rank-local by construction),
//! 4. state update → copy owners to ghosts.
//!
//! All exchange payloads are recycled through the rank's buffer pool, so
//! the steady-state sweep performs no payload allocations.
//!
//! The result is bitwise-equivalent to the serial solver up to floating
//! point summation order; tests check parity to tight tolerances.

use crate::level::{RansLevel, SolverParams};
use crate::state::{State, NVARS};
use columbia_comm::{decompose, run_world, Decomposition, ExecContext, Rank, RankTrace};
use columbia_mesh::{extract_lines, Edge, UnstructuredMesh};
use columbia_partition::{contract_lines, expand_line_partition, partition_graph, PartitionConfig};
use columbia_rt::trace::SpanKey;

/// Partition a mesh without breaking implicit lines.
pub fn partition_mesh_line_aware(
    mesh: &UnstructuredMesh,
    nparts: usize,
    line_threshold: f64,
) -> Vec<u32> {
    let graph = mesh.dual_graph();
    let ls = extract_lines(mesh, line_threshold);
    let cover = ls.covering_lines();
    let lc = contract_lines(&graph, &cover);
    let lp = partition_graph(&lc.contracted, nparts, &PartitionConfig::default());
    expand_line_partition(&lc.cmap, &lp)
}

/// Everything one rank needs to run its sub-level.
pub struct LocalLevel {
    /// The local solver level (owned + ghost vertices).
    pub level: RansLevel,
    /// Number of owned vertices (prefix of the local numbering).
    pub n_owned: usize,
    /// Local → global vertex map.
    pub local_to_global: Vec<u32>,
}

/// Build the per-rank sub-levels of a mesh under partition `part`.
///
/// Edge ownership: a cut edge belongs to the rank owning its `a` endpoint,
/// so each edge is assembled exactly once globally.
pub fn build_local_levels(
    mesh: &UnstructuredMesh,
    part: &[u32],
    nparts: usize,
    params: SolverParams,
) -> (Decomposition, Vec<LocalLevel>) {
    let pairs: Vec<(u32, u32)> = mesh.edges.iter().map(|e| (e.a, e.b)).collect();
    let decomp = decompose(mesh.nvertices(), part, nparts, &pairs);

    // Global line set, restricted per rank (lines never cross ranks when
    // the partition came from `partition_mesh_line_aware`).
    let global_lines = extract_lines(mesh, params.line_threshold).lines;

    let mut locals = Vec::with_capacity(nparts);
    for p in 0..nparts {
        let l2g = &decomp.local_to_global[p];
        let n_owned = decomp.n_owned[p];
        let nloc = l2g.len();
        let mut points = Vec::with_capacity(nloc);
        let mut volumes = Vec::with_capacity(nloc);
        let mut bc = Vec::with_capacity(nloc);
        let mut wall = Vec::with_capacity(nloc);
        for &g in l2g {
            let g = g as usize;
            points.push(mesh.points[g]);
            volumes.push(mesh.volumes[g]);
            bc.push(mesh.bc[g]);
            wall.push(mesh.wall_distance[g]);
        }
        let mut edges = Vec::new();
        for e in &mesh.edges {
            if part[e.a as usize] as usize != p {
                continue;
            }
            let la = decomp.local_index(p, e.a).expect("owned endpoint missing");
            let lb = decomp
                .local_index(p, e.b)
                .expect("edge endpoint neither owned nor ghost");
            edges.push(Edge {
                a: la,
                b: lb,
                normal: e.normal,
                length: e.length,
            });
        }
        let local_mesh = UnstructuredMesh {
            points,
            edges,
            volumes,
            bc,
            wall_distance: wall,
        };
        // Restrict global lines: lines whose first vertex is owned by p.
        let mut lines = Vec::new();
        for line in &global_lines {
            if part[line[0] as usize] as usize != p {
                continue;
            }
            let local_line: Vec<u32> = line
                .iter()
                .map(|&v| {
                    decomp
                        .local_index(p, v)
                        .expect("line crosses rank boundary")
                })
                .collect();
            lines.push(local_line);
        }
        let mut level = RansLevel::with_lines(local_mesh, params, lines);
        for v in n_owned..nloc {
            level.active[v] = false;
        }
        locals.push(LocalLevel {
            level,
            n_owned,
            local_to_global: l2g.clone(),
        });
    }
    (decomp, locals)
}

/// One parallel smoothing sweep on a local level.
pub fn parallel_sweep(local: &mut LocalLevel, decomp: &Decomposition, rank: &mut Rank) {
    let p = rank.rank();
    let plan = &decomp.plans[p];
    let lvl = &mut local.level;

    // Residual with exchanges.
    lvl.begin_residual();
    lvl.accumulate_gradients();
    plan.exchange_add_field(rank, 10, lvl.grad_mut());
    lvl.finalize_gradients();
    plan.exchange_copy_field(rank, 11, lvl.grad_mut());
    lvl.accumulate_fluxes();

    // Residual + implicit-diagonal ghost contributions travel in ONE
    // coalesced message per peer (6 + 37 values per exchanged vertex).
    // `accumulate_diagonal`/`pack_diag_scratch` read only the state and
    // edge coefficients — never the residual — so hoisting them before
    // `finalize_residual` leaves every accumulated value bit-identical
    // to the per-field schedule. The pack buffer is level-owned scratch:
    // the steady-state sweep allocates nothing.
    lvl.accumulate_diagonal();
    lvl.pack_diag_scratch();
    {
        let RansLevel { res, diag_pack, .. } = lvl;
        plan.exchange_add2_field(rank, 12, res, &mut diag_pack[..]);
    }
    lvl.finalize_residual();
    plan.exchange_copy_field(rank, 14, lvl.diag_pack_mut());
    lvl.unpack_diag_scratch();
    lvl.finalize_diagonal();

    // Local solves + update, then refresh ghosts.
    lvl.solve_implicit();
    plan.exchange_copy_field(rank, 15, &mut lvl.u);
}

/// Parallel residual norm (collective).
pub fn parallel_residual_rms(
    local: &mut LocalLevel,
    decomp: &Decomposition,
    rank: &mut Rank,
) -> f64 {
    let p = rank.rank();
    let plan = &decomp.plans[p];
    let lvl = &mut local.level;
    lvl.begin_residual();
    lvl.accumulate_gradients();
    plan.exchange_add_field(rank, 20, lvl.grad_mut());
    lvl.finalize_gradients();
    plan.exchange_copy_field(rank, 21, lvl.grad_mut());
    lvl.accumulate_fluxes();
    plan.exchange_add_field(rank, 22, &mut lvl.res);
    lvl.finalize_residual();
    let (ss, cnt) = lvl.residual_sumsq();
    let gss = rank.allreduce_sum(ss);
    let gcnt = rank.allreduce_sum(cnt as f64);
    if gcnt == 0.0 {
        0.0
    } else {
        (gss / gcnt).sqrt()
    }
}

/// Run `sweeps` parallel smoothing sweeps on `nparts` ranks; returns the
/// assembled global state, the final global residual RMS, and the per-rank
/// teardown ledgers ([`RankTrace`] — `traces[p].stats` carries rank `p`'s
/// [`columbia_comm::CommStats`]).
///
/// `ctx` selects the run's capabilities: an attached fault plan injects
/// message drops/duplicates/delays and barrier stalls per its seed (the
/// retry/dedup/reorder protocol hides them from payloads, the stats carry
/// the fault-protocol counters); an enabled tracer records the run under a
/// `rans_smoothing` span — residual as a gauge, one `comm` child span per
/// rank. The default context runs clean with zero recording overhead.
pub fn run_parallel_smoothing(
    mesh: &UnstructuredMesh,
    params: SolverParams,
    nparts: usize,
    sweeps: usize,
    ctx: &mut ExecContext,
) -> (Vec<State>, f64, Vec<RankTrace>) {
    let part = partition_mesh_line_aware(mesh, nparts, params.line_threshold);
    let (decomp, locals) = build_local_levels(mesh, &part, nparts, params);
    let locals = std::sync::Mutex::new(
        locals
            .into_iter()
            .map(Some)
            .collect::<Vec<Option<LocalLevel>>>(),
    );

    let (results, traces) = run_world(nparts, ctx, |rank| {
        let mut local = locals.lock().unwrap()[rank.rank()]
            .take()
            .expect("local level already taken");
        // Apply BCs and make ghosts consistent before starting (mirrors
        // the serial driver's initialisation).
        local.level.apply_bcs();
        decomp.plans[rank.rank()].exchange_copy_field(rank, 1, &mut local.level.u);
        for _ in 0..sweeps {
            parallel_sweep(&mut local, &decomp, rank);
        }
        let rms = parallel_residual_rms(&mut local, &decomp, rank);
        let owned_u: Vec<(u32, State)> = (0..local.n_owned)
            .map(|i| (local.local_to_global[i], local.level.u.get(i)))
            .collect();
        (owned_u, rms)
    });

    let mut global_u = vec![[0.0; NVARS]; mesh.nvertices()];
    let mut rms = 0.0;
    for (owned, r) in results {
        for (g, u) in owned {
            global_u[g as usize] = u;
        }
        rms = r;
    }
    let tracer = ctx.tracer();
    tracer.scoped(SpanKey::new("rans_smoothing"), |t| {
        t.add("sweeps", sweeps as u64);
        t.add("ranks", nparts as u64);
        t.gauge("residual_rms", rms);
        for tr in &traces {
            tr.record_to(t);
        }
    });
    (global_u, rms, traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use columbia_mesh::{wing_mesh, WingMeshSpec};

    fn mesh() -> UnstructuredMesh {
        wing_mesh(&WingMeshSpec {
            ni: 16,
            nj: 4,
            nk: 10,
            nk_bl: 5,
            jitter: 0.0,
            ..Default::default()
        })
    }

    fn params() -> SolverParams {
        SolverParams {
            mach: 0.5,
            ..Default::default()
        }
    }

    #[test]
    fn parallel_state_matches_serial_after_sweeps() {
        let m = mesh();
        // Serial reference.
        let mut serial = RansLevel::new(m.clone(), params());
        serial.apply_bcs();
        for _ in 0..3 {
            serial.smooth_sweep();
        }
        let serial_rms = serial.residual_rms();

        for nparts in [2, 4] {
            let (u, rms, traces) =
                run_parallel_smoothing(&m, params(), nparts, 3, &mut ExecContext::default());
            let mut max_diff = 0.0f64;
            for (v, su) in serial.u.to_aos().iter().enumerate() {
                for k in 0..NVARS {
                    max_diff = max_diff.max((u[v][k] - su[k]).abs());
                }
            }
            assert!(
                max_diff < 1e-8,
                "{nparts}-way parallel state diverged: {max_diff}"
            );
            assert!(
                (rms - serial_rms).abs() < 1e-10 * (1.0 + serial_rms),
                "residual mismatch: {rms} vs {serial_rms}"
            );
            // Communication actually happened.
            assert!(traces.iter().any(|t| t.stats.total_msgs() > 0));
        }
    }

    #[test]
    fn traced_smoothing_matches_untraced_and_loses_no_counts() {
        let m = mesh();
        let (u, rms, plain) =
            run_parallel_smoothing(&m, params(), 2, 2, &mut ExecContext::default());
        let mut ctx = ExecContext::traced();
        let (ut, rmst, traces) = run_parallel_smoothing(&m, params(), 2, 2, &mut ctx);
        assert_eq!(rms.to_bits(), rmst.to_bits());
        let bits = |u: &[State]| u.iter().flatten().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&u), bits(&ut));
        // Tracing changes nothing in the teardown ledgers.
        for (p, tr) in plain.iter().zip(&traces) {
            assert_eq!(p.stats, tr.stats);
        }
        let trace = ctx.finish_trace();
        let span = trace.find("rans_smoothing").unwrap();
        assert!(span.gauges.contains_key("residual_rms"));
        assert!(trace.counter_total("comm.sends") > 0);
    }

    #[test]
    fn partition_preserves_lines() {
        let m = mesh();
        let part = partition_mesh_line_aware(&m, 4, 10.0);
        let lines = extract_lines(&m, 10.0).lines;
        for line in &lines {
            let p0 = part[line[0] as usize];
            assert!(line.iter().all(|&v| part[v as usize] == p0));
        }
    }

    #[test]
    fn ghost_counts_match_decomposition_surface() {
        let m = mesh();
        let part = partition_mesh_line_aware(&m, 4, 10.0);
        let (decomp, locals) = build_local_levels(&m, &part, 4, params());
        let total_owned: usize = locals.iter().map(|l| l.n_owned).sum();
        assert_eq!(total_owned, m.nvertices());
        // Every local mesh is structurally valid.
        for (p, l) in locals.iter().enumerate() {
            l.level.mesh.validate().unwrap();
            assert!(decomp.plans[p].degree() >= 1);
        }
        // Edges are globally conserved.
        let total_edges: usize = locals.iter().map(|l| l.level.mesh.nedges()).sum();
        assert_eq!(total_edges, m.nedges());
    }
}
