//! High-fidelity (NSU3D-style) single-point analysis.

use columbia_mesh::{wing_mesh, UnstructuredMesh, WingMeshSpec};
use columbia_mg::{ConvergenceHistory, CycleParams, CycleType};
use columbia_rans::{RansSolver, SolverParams};

/// A configured high-fidelity analysis.
///
/// ```
/// use columbia_core::FlowAnalysis;
/// let report = FlowAnalysis::new()
///     .mach(0.5)
///     .alpha_deg(1.0)
///     .mesh_points(3_000)
///     .multigrid_levels(4)
///     .run(40);
/// assert!(report.history.orders_reduced() > 2.0);
/// ```
#[derive(Clone, Debug)]
pub struct FlowAnalysis {
    params: SolverParams,
    spec: WingMeshSpec,
    nlevels: usize,
    cycle: CycleParams,
    mesh: Option<UnstructuredMesh>,
}

impl Default for FlowAnalysis {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowAnalysis {
    /// Analysis with default transonic-wing settings (Mach 0.5 for the
    /// robust subsonic regime of the model operator; the paper's benchmark
    /// condition is Mach 0.75).
    pub fn new() -> Self {
        FlowAnalysis {
            params: SolverParams {
                mach: 0.5,
                ..Default::default()
            },
            spec: WingMeshSpec {
                jitter: 0.0,
                ..WingMeshSpec::with_target_points(5_000)
            },
            nlevels: 5,
            cycle: CycleParams::default(),
            mesh: None,
        }
    }

    /// Set the free-stream Mach number.
    pub fn mach(mut self, m: f64) -> Self {
        self.params.mach = m;
        self
    }

    /// Set the angle of attack in degrees.
    pub fn alpha_deg(mut self, a: f64) -> Self {
        self.params.alpha = a.to_radians();
        self
    }

    /// Set the Reynolds number.
    pub fn reynolds(mut self, re: f64) -> Self {
        self.params.reynolds = re;
        self
    }

    /// Target mesh size (vertices).
    pub fn mesh_points(mut self, n: usize) -> Self {
        self.spec = WingMeshSpec {
            jitter: 0.0,
            ..WingMeshSpec::with_target_points(n)
        };
        self
    }

    /// Supply an explicit mesh instead of the synthetic wing.
    pub fn with_mesh(mut self, mesh: UnstructuredMesh) -> Self {
        self.mesh = Some(mesh);
        self
    }

    /// Number of agglomerated multigrid levels.
    pub fn multigrid_levels(mut self, n: usize) -> Self {
        self.nlevels = n.max(1);
        self
    }

    /// Select V- or W-cycles (the paper uses W exclusively for NSU3D).
    pub fn cycle_type(mut self, t: CycleType) -> Self {
        self.cycle.cycle = t;
        self
    }

    /// Build the solver without running (for custom drivers).
    pub fn build(&self) -> RansSolver {
        let mesh = self.mesh.clone().unwrap_or_else(|| wing_mesh(&self.spec));
        RansSolver::new(mesh, self.params, self.nlevels)
    }

    /// Run up to `max_cycles` multigrid cycles.
    pub fn run(&self, max_cycles: usize) -> FlowReport {
        let mut solver = self.build();
        let history = solver.solve(&self.cycle, 1e-13, max_cycles);
        let flops = solver.take_flops();
        FlowReport {
            history,
            level_sizes: solver.level_sizes(),
            line_coverage: solver.levels[0].line_coverage(),
            flops,
        }
    }
}

/// Results of a high-fidelity analysis.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Fine-grid residual history.
    pub history: ConvergenceHistory,
    /// Vertices per multigrid level.
    pub level_sizes: Vec<usize>,
    /// Fraction of fine vertices inside implicit lines.
    pub line_coverage: f64,
    /// Software-counted FLOPs for the whole solve.
    pub flops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_analysis_converges() {
        let r = FlowAnalysis::new().mesh_points(2_500).run(30);
        assert!(
            r.history.orders_reduced() > 2.0,
            "orders {}",
            r.history.orders_reduced()
        );
        assert!(r.level_sizes.len() >= 3);
        assert!(r.line_coverage > 0.2);
        assert!(r.flops > 0);
    }

    #[test]
    fn builder_setters_apply() {
        let a = FlowAnalysis::new()
            .mach(0.6)
            .alpha_deg(2.0)
            .reynolds(1e6)
            .multigrid_levels(2)
            .mesh_points(2_000);
        let s = a.build();
        assert_eq!(s.nlevels(), 2);
        assert!((s.levels[0].params.mach - 0.6).abs() < 1e-12);
        assert!((s.levels[0].params.alpha - 2.0f64.to_radians()).abs() < 1e-12);
    }
}
