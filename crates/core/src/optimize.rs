//! Design optimisation driver (paper §IV).
//!
//! "The outcome of design optimization is a modified vehicle whose
//! performance is known only at the design points... as many as 20 to 50
//! analysis cycles may be required to reach a local optimum." This module
//! provides the optimisation loop around an arbitrary analysis oracle
//! (usually a [`crate::CartAnalysis`] or [`crate::FlowAnalysis`] closure),
//! counting analysis cycles the way the paper's cost estimates do.
//!
//! The algorithm is derivative-free golden-section search over one design
//! variable — the appropriate tool when each objective evaluation is a CFD
//! solve and adjoint gradients are out of scope (the paper's own
//! optimisation uses the adjoint machinery of its references 23-26).

/// Result of a 1-D design optimisation.
#[derive(Clone, Copy, Debug)]
pub struct Optimum {
    /// Optimal design variable.
    pub x: f64,
    /// Objective at the optimum.
    pub value: f64,
    /// Number of analysis cycles spent (the paper's cost currency).
    pub analysis_cycles: usize,
}

/// Minimise `objective` over `[lo, hi]` by golden-section search until the
/// bracket is below `tol` or `max_evals` analyses have run.
///
/// # Panics
/// If `lo >= hi` or `max_evals < 2`.
pub fn golden_section(
    lo: f64,
    hi: f64,
    tol: f64,
    max_evals: usize,
    mut objective: impl FnMut(f64) -> f64,
) -> Optimum {
    assert!(lo < hi, "invalid bracket");
    assert!(max_evals >= 2);
    const PHI: f64 = 0.618_033_988_749_894_9;
    let mut a = lo;
    let mut b = hi;
    let mut x1 = b - PHI * (b - a);
    let mut x2 = a + PHI * (b - a);
    let mut f1 = objective(x1);
    let mut f2 = objective(x2);
    let mut evals = 2;
    while (b - a) > tol && evals < max_evals {
        if f1 <= f2 {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - PHI * (b - a);
            f1 = objective(x1);
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + PHI * (b - a);
            f2 = objective(x2);
        }
        evals += 1;
    }
    let (x, value) = if f1 <= f2 { (x1, f1) } else { (x2, f2) };
    Optimum {
        x,
        value,
        analysis_cycles: evals,
    }
}

/// Trim search: find the control deflection where `moment(x)` crosses zero
/// by bisection (the classic G&C use of an aero database).
pub fn trim_bisection(
    mut lo: f64,
    mut hi: f64,
    tol: f64,
    max_evals: usize,
    mut moment: impl FnMut(f64) -> f64,
) -> Optimum {
    let mut m_lo = moment(lo);
    let m_hi = moment(hi);
    let mut evals = 2;
    assert!(
        m_lo * m_hi <= 0.0,
        "trim bracket must straddle zero: M({lo}) = {m_lo}, M({hi}) = {m_hi}"
    );
    while (hi - lo) > tol && evals < max_evals {
        let mid = 0.5 * (lo + hi);
        let m_mid = moment(mid);
        evals += 1;
        if m_lo * m_mid <= 0.0 {
            hi = mid;
        } else {
            lo = mid;
            m_lo = m_mid;
        }
    }
    let x = 0.5 * (lo + hi);
    Optimum {
        x,
        value: 0.0,
        analysis_cycles: evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_finds_quadratic_minimum() {
        let mut count = 0;
        let opt = golden_section(-2.0, 3.0, 1e-6, 100, |x| {
            count += 1;
            (x - 0.7) * (x - 0.7) + 1.5
        });
        assert!((opt.x - 0.7).abs() < 1e-5, "x = {}", opt.x);
        assert!((opt.value - 1.5).abs() < 1e-9);
        assert_eq!(opt.analysis_cycles, count);
        // The paper's band: a local optimum within 20-50 analyses.
        assert!(
            opt.analysis_cycles >= 20 && opt.analysis_cycles <= 50,
            "{} analyses",
            opt.analysis_cycles
        );
    }

    #[test]
    fn golden_section_respects_budget() {
        let opt = golden_section(0.0, 1.0, 0.0, 10, |x| x * x);
        assert_eq!(opt.analysis_cycles, 10);
        assert!(opt.x < 0.3);
    }

    #[test]
    fn trim_bisection_finds_zero_crossing() {
        let opt = trim_bisection(-1.0, 1.0, 1e-8, 100, |x| 2.0 * (x - 0.31));
        assert!((opt.x - 0.31).abs() < 1e-7);
        assert!(opt.analysis_cycles < 40);
    }

    #[test]
    #[should_panic(expected = "straddle zero")]
    fn trim_requires_a_bracket() {
        trim_bisection(0.0, 1.0, 1e-6, 50, |x| x + 1.0);
    }

    columbia_rt::props! {
        /// Golden-section search locates the minimum of any parabola placed
        /// anywhere in the bracket, to bracket tolerance.
        fn prop_golden_section_finds_parabola_min(xmin in -4.0f64..4.0, scale in 0.5f64..5.0) {
            let opt = golden_section(-5.0, 5.0, 1e-6, 200, |x| scale * (x - xmin) * (x - xmin));
            assert!((opt.x - xmin).abs() < 1e-5, "found {} expected {}", opt.x, xmin);
            assert!(opt.value >= 0.0);
        }

        /// Trim bisection finds the zero crossing of any monotone moment
        /// curve that straddles zero.
        fn prop_trim_finds_crossing(root in -0.9f64..0.9, gain in 0.2f64..4.0) {
            let opt = trim_bisection(-1.0, 1.0, 1e-9, 200, |x| gain * (x - root));
            assert!((opt.x - root).abs() < 1e-7, "found {} expected {}", opt.x, root);
        }
    }
}
