//! Virtual flight: a six-degree-of-freedom rigid-body integrator flying a
//! vehicle through the aero-performance database (paper §I and §IV).
//!
//! "When coupled with a six-degree-of-freedom (6-DOF) integrator, the
//! vehicle can be 'flown' through the database by guidance and control
//! system designers to explore issues of stability and control." The
//! database produced by [`crate::DatabaseFill`] is interpolated
//! multilinearly in (deflection, Mach, alpha); the integrator advances a
//! quaternion rigid-body state with RK4.
//!
//! Units follow the solvers' non-dimensionalisation: unit free-stream
//! density and sound speed, so speed == Mach number and forces come out of
//! the database unscaled.

use crate::database::DatabaseEntry;
use columbia_mesh::Vec3;

/// A lookup that cannot be answered from the table: the typed error
/// returned by [`AeroDatabase::lookup_checked`] (and surfaced per query by
/// `columbia_core::server::DatabaseServer`). Quarantine holes are *typed*,
/// never silently interpolated as placeholder zero loads.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LookupError {
    /// The interpolation stencil at the (clamped) flight condition touches
    /// quarantined grid nodes, so any answer would blend placeholder loads.
    QuarantinedRegion {
        /// Queried deflection (pre-clamp).
        deflection: f64,
        /// Queried Mach number (pre-clamp).
        mach: f64,
        /// Queried angle of attack (pre-clamp).
        alpha: f64,
        /// Number of quarantined nodes with nonzero interpolation weight.
        holes: usize,
    },
    /// A query coordinate is NaN or infinite; clamping cannot repair it.
    NonFiniteQuery {
        /// Queried deflection.
        deflection: f64,
        /// Queried Mach number.
        mach: f64,
        /// Queried angle of attack.
        alpha: f64,
    },
}

impl std::fmt::Display for LookupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LookupError::QuarantinedRegion {
                deflection,
                mach,
                alpha,
                holes,
            } => write!(
                f,
                "lookup (defl {deflection}, M {mach}, alpha {alpha}) touches \
                 {holes} quarantined node(s); re-run the hole or opt into a \
                 degraded fallback"
            ),
            LookupError::NonFiniteQuery {
                deflection,
                mach,
                alpha,
            } => write!(
                f,
                "non-finite query (defl {deflection}, M {mach}, alpha {alpha})"
            ),
        }
    }
}

impl std::error::Error for LookupError {}

/// A structurally invalid aero table: the typed error returned by
/// [`AeroDatabase::from_axes`]. Breakpoint axes must be finite and
/// *strictly* increasing — a duplicated or descending breakpoint would
/// make the interpolation weight `t = (x - v[i]) / (v[i+1] - v[i])`
/// divide by zero (or flip sign), which the lookup used to paper over
/// with a `1e-300` floor instead of reporting.
#[derive(Clone, Debug, PartialEq)]
pub enum TableError {
    /// An axis breakpoint is NaN or infinite.
    NonFinite {
        /// Axis name (`"deflection"`, `"mach"`, `"alpha"`).
        axis: &'static str,
        /// Index of the offending breakpoint.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// An axis is not strictly increasing: `v[index + 1] <= v[index]`.
    NonMonotonic {
        /// Axis name.
        axis: &'static str,
        /// Index of the first violation.
        index: usize,
        /// `v[index]`.
        prev: f64,
        /// `v[index + 1]`.
        next: f64,
    },
    /// An axis has no breakpoints.
    EmptyAxis {
        /// Axis name.
        axis: &'static str,
    },
    /// Table length does not match the axis product.
    BadShape {
        /// Expected number of nodes (`nd * nm * na`).
        expected: usize,
        /// Supplied number of nodes.
        got: usize,
    },
    /// An entry carries [`crate::database::CaseStatus::Quarantined`]: its
    /// loads are the fill's placeholder zeros, not a solution. Strict
    /// construction ([`AeroDatabase::from_entries`]) rejects the whole
    /// table; [`AeroDatabase::from_entries_masked`] admits it as a typed
    /// hole instead.
    QuarantinedNode {
        /// Deflection of the quarantined entry.
        deflection: f64,
        /// Mach number of the quarantined entry.
        mach: f64,
        /// Angle of attack of the quarantined entry.
        alpha: f64,
    },
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::NonFinite { axis, index, value } => {
                write!(f, "{axis} axis: breakpoint {index} is not finite ({value})")
            }
            TableError::NonMonotonic {
                axis,
                index,
                prev,
                next,
            } => write!(
                f,
                "{axis} axis: breakpoints must be strictly increasing, \
                 but v[{index}] = {prev} is followed by {next}"
            ),
            TableError::EmptyAxis { axis } => write!(f, "{axis} axis has no breakpoints"),
            TableError::BadShape { expected, got } => {
                write!(f, "table holds {got} nodes but the axes span {expected}")
            }
            TableError::QuarantinedNode {
                deflection,
                mach,
                alpha,
            } => write!(
                f,
                "entry (defl {deflection}, M {mach}, alpha {alpha}) is \
                 quarantined: placeholder loads must not be interpolated \
                 (re-run the case, or build with from_entries_masked)"
            ),
        }
    }
}

impl std::error::Error for TableError {}

/// Structured (deflection x Mach x alpha) force/moment tables.
///
/// Invariant: every axis is finite and strictly increasing — enforced by
/// [`Self::from_axes`], which every constructor funnels through, so
/// [`Self::lookup`] never divides by a zero breakpoint gap.
#[derive(Clone, Debug)]
pub struct AeroDatabase {
    deflections: Vec<f64>,
    machs: Vec<f64>,
    alphas: Vec<f64>,
    /// `force[(d, m, a)]` in solver axes (x downstream, z up).
    force: Vec<Vec3>,
    moment: Vec<Vec3>,
    /// Quarantine mask: `true` nodes hold placeholder loads, never real
    /// solutions. Strict constructors leave this all-false.
    quarantined: Vec<bool>,
    /// Number of `true` bits in `quarantined` (hole count).
    nholes: usize,
}

fn validate_axis(axis: &'static str, v: &[f64]) -> Result<(), TableError> {
    if v.is_empty() {
        return Err(TableError::EmptyAxis { axis });
    }
    for (i, &x) in v.iter().enumerate() {
        if !x.is_finite() {
            return Err(TableError::NonFinite {
                axis,
                index: i,
                value: x,
            });
        }
    }
    for i in 0..v.len() - 1 {
        if v[i + 1] <= v[i] {
            return Err(TableError::NonMonotonic {
                axis,
                index: i,
                prev: v[i],
                next: v[i + 1],
            });
        }
    }
    Ok(())
}

impl AeroDatabase {
    /// Assemble from database entries; the entries must cover the full
    /// (deflection, Mach, alpha) tensor grid (beta is ignored: longitudinal
    /// database).
    ///
    /// Strict construction: an entry whose [`DatabaseEntry::status`] is
    /// [`crate::database::CaseStatus::Quarantined`] holds the fill's
    /// placeholder zero loads, not a solution, and is rejected with
    /// [`TableError::QuarantinedNode`] — it must never be tensor-filled
    /// and interpolated as if real. To keep the holes as typed,
    /// explicitly-masked nodes instead, use
    /// [`AeroDatabase::from_entries_masked`].
    ///
    /// # Panics
    /// If any grid node is missing.
    pub fn from_entries(entries: &[DatabaseEntry]) -> Result<AeroDatabase, TableError> {
        Self::assemble(entries, false)
    }

    /// Assemble from database entries, admitting quarantined entries as
    /// explicit holes: their nodes are masked, [`Self::lookup_checked`]
    /// reports any stencil that touches them with
    /// [`LookupError::QuarantinedRegion`], and the infallible
    /// [`Self::lookup`] refuses to run at all (see its panic contract).
    /// Holes are repaired with [`Self::fill_node`] once a re-run converges.
    pub fn from_entries_masked(entries: &[DatabaseEntry]) -> Result<AeroDatabase, TableError> {
        Self::assemble(entries, true)
    }

    fn assemble(entries: &[DatabaseEntry], mask: bool) -> Result<AeroDatabase, TableError> {
        let mut deflections: Vec<f64> = entries.iter().map(|e| e.deflection).collect();
        let mut machs: Vec<f64> = entries.iter().map(|e| e.mach).collect();
        let mut alphas: Vec<f64> = entries.iter().map(|e| e.alpha).collect();
        for v in [&mut deflections, &mut machs, &mut alphas] {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        }
        let nd = deflections.len();
        let nm = machs.len();
        let na = alphas.len();
        let mut force = vec![Vec3::ZERO; nd * nm * na];
        let mut moment = vec![Vec3::ZERO; nd * nm * na];
        let mut filled = vec![false; nd * nm * na];
        let mut quarantined = vec![false; nd * nm * na];
        let mut nholes = 0usize;
        let find = |v: &[f64], x: f64| {
            v.iter()
                .position(|&y| (y - x).abs() < 1e-12)
                .expect("entry off the tensor grid")
        };
        for e in entries {
            let idx = find(&deflections, e.deflection) * nm * na
                + find(&machs, e.mach) * na
                + find(&alphas, e.alpha);
            if !e.status.is_ok() {
                if !mask {
                    return Err(TableError::QuarantinedNode {
                        deflection: e.deflection,
                        mach: e.mach,
                        alpha: e.alpha,
                    });
                }
                // The node exists (no missing-node panic) but its
                // placeholder loads stay zero and masked.
                if !quarantined[idx] {
                    quarantined[idx] = true;
                    nholes += 1;
                }
                filled[idx] = true;
                continue;
            }
            force[idx] = e.forces.force;
            moment[idx] = e.forces.moment;
            filled[idx] = true;
        }
        assert!(
            filled.iter().all(|&f| f),
            "database does not cover the full tensor grid"
        );
        let mut db = AeroDatabase::from_axes(deflections, machs, alphas, force, moment)
            .expect("from_entries produced an invalid axis after sort/dedup");
        db.quarantined = quarantined;
        db.nholes = nholes;
        Ok(db)
    }

    /// Assemble directly from breakpoint axes and flattened tables
    /// (`force[(d * nm + m) * na + a]`).
    ///
    /// Each axis must be non-empty, finite, and strictly increasing; the
    /// tables must span the full tensor grid. A duplicated or descending
    /// breakpoint is rejected here with a typed error rather than silently
    /// degrading the interpolation weight inside [`Self::lookup`].
    pub fn from_axes(
        deflections: Vec<f64>,
        machs: Vec<f64>,
        alphas: Vec<f64>,
        force: Vec<Vec3>,
        moment: Vec<Vec3>,
    ) -> Result<AeroDatabase, TableError> {
        validate_axis("deflection", &deflections)?;
        validate_axis("mach", &machs)?;
        validate_axis("alpha", &alphas)?;
        let expected = deflections.len() * machs.len() * alphas.len();
        for table in [&force, &moment] {
            if table.len() != expected {
                return Err(TableError::BadShape {
                    expected,
                    got: table.len(),
                });
            }
        }
        Ok(AeroDatabase {
            quarantined: vec![false; force.len()],
            nholes: 0,
            deflections,
            machs,
            alphas,
            force,
            moment,
        })
    }

    /// Bracket `x` on a strictly increasing breakpoint axis: the cell index
    /// `i` and interpolation weight `t` in `[0, 1]`, with out-of-range
    /// inputs clamped to the edge cells.
    ///
    /// This is a `partition_point` binary search over the upper breakpoints
    /// `v[1..]`, replacing the seed's O(n) linear scan; it reproduces the
    /// scan's `(i, t)` exactly, including the convention that an exact
    /// interior breakpoint lands in the *lower* cell with `t = 1.0`
    /// (pinned by the `bracket_binary_search_matches_linear_scan` parity
    /// test).
    pub fn bracket(v: &[f64], x: f64) -> (usize, f64) {
        if v.len() == 1 {
            return (0, 0.0);
        }
        let x = x.clamp(v[0], v[v.len() - 1]);
        // First upper breakpoint >= x, i.e. the linear scan's first k with
        // x <= v[k + 1]; out-of-range x already clamped above.
        let i = v[1..].partition_point(|&y| y < x).min(v.len() - 2);
        // Construction guarantees strictly increasing breakpoints, so the
        // gap is positive; a zero gap here means the invariant was broken.
        let dv = v[i + 1] - v[i];
        debug_assert!(dv > 0.0, "non-increasing axis reached lookup: dv = {dv}");
        let t = (x - v[i]) / dv;
        (i, t.clamp(0.0, 1.0))
    }

    /// Trilinear interpolation of (force, moment) at a flight condition;
    /// inputs outside the tables are clamped to the edges.
    ///
    /// # Panics
    /// If the table carries quarantine holes
    /// ([`Self::from_entries_masked`] with quarantined entries): an
    /// infallible lookup on a holed table is exactly the silent
    /// placeholder-load corruption this type exists to prevent. Masked
    /// tables must be queried through [`Self::lookup_checked`] (or a
    /// `columbia_core::server::DatabaseServer` with an explicit degraded
    /// policy).
    pub fn lookup(&self, deflection: f64, mach: f64, alpha: f64) -> (Vec3, Vec3) {
        assert!(
            self.nholes == 0,
            "infallible lookup on a masked database with {} quarantine \
             hole(s); use lookup_checked",
            self.nholes
        );
        match self.interpolate(deflection, mach, alpha, false) {
            Ok(fm) => fm,
            Err(e) => panic!("lookup failed on a hole-free table: {e}"),
        }
    }

    /// Trilinear interpolation with typed failure: quarantine holes under
    /// the stencil and non-finite queries are errors, never silently
    /// blended placeholder loads.
    pub fn lookup_checked(
        &self,
        deflection: f64,
        mach: f64,
        alpha: f64,
    ) -> Result<(Vec3, Vec3), LookupError> {
        self.interpolate(deflection, mach, alpha, true)
    }

    fn interpolate(
        &self,
        deflection: f64,
        mach: f64,
        alpha: f64,
        checked: bool,
    ) -> Result<(Vec3, Vec3), LookupError> {
        if !(deflection.is_finite() && mach.is_finite() && alpha.is_finite()) {
            return Err(LookupError::NonFiniteQuery {
                deflection,
                mach,
                alpha,
            });
        }
        let (id, td) = Self::bracket(&self.deflections, deflection);
        let (im, tm) = Self::bracket(&self.machs, mach);
        let (ia, ta) = Self::bracket(&self.alphas, alpha);
        let nm = self.machs.len();
        let na = self.alphas.len();
        let idx = |d: usize, m: usize, a: usize| d * nm * na + m * na + a;
        let mut f = Vec3::ZERO;
        let mut mo = Vec3::ZERO;
        let mut holes = 0usize;
        for (dd, wd) in [(0usize, 1.0 - td), (1, td)] {
            if wd == 0.0 && dd == 1 {
                continue;
            }
            let d = (id + dd).min(self.deflections.len() - 1);
            for (dm, wm) in [(0usize, 1.0 - tm), (1, tm)] {
                if wm == 0.0 && dm == 1 {
                    continue;
                }
                let m = (im + dm).min(nm - 1);
                for (da, wa) in [(0usize, 1.0 - ta), (1, ta)] {
                    if wa == 0.0 && da == 1 {
                        continue;
                    }
                    let a = (ia + da).min(na - 1);
                    let n = idx(d, m, a);
                    if checked && self.quarantined[n] {
                        holes += 1;
                        continue;
                    }
                    let w = wd * wm * wa;
                    f += self.force[n] * w;
                    mo += self.moment[n] * w;
                }
            }
        }
        if holes > 0 {
            return Err(LookupError::QuarantinedRegion {
                deflection,
                mach,
                alpha,
                holes,
            });
        }
        Ok((f, mo))
    }

    /// Grid extents (useful for choosing initial conditions).
    pub fn mach_range(&self) -> (f64, f64) {
        (self.machs[0], *self.machs.last().unwrap())
    }

    /// Axis lengths `(nd, nm, na)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.deflections.len(), self.machs.len(), self.alphas.len())
    }

    /// The breakpoint axes `(deflections, machs, alphas)`.
    pub fn axes(&self) -> (&[f64], &[f64], &[f64]) {
        (&self.deflections, &self.machs, &self.alphas)
    }

    /// Bracket a flight condition on all three axes:
    /// `[(id, td), (im, tm), (ia, ta)]`. The cell identity is what
    /// `columbia_core::server::DatabaseServer` keys its hot-region cache
    /// on.
    pub fn cell(&self, deflection: f64, mach: f64, alpha: f64) -> [(usize, f64); 3] {
        [
            Self::bracket(&self.deflections, deflection),
            Self::bracket(&self.machs, mach),
            Self::bracket(&self.alphas, alpha),
        ]
    }

    /// The (force, moment) stored at grid node `(d, m, a)`.
    pub fn node(&self, d: usize, m: usize, a: usize) -> (Vec3, Vec3) {
        let n = (d * self.machs.len() + m) * self.alphas.len() + a;
        (self.force[n], self.moment[n])
    }

    /// Is grid node `(d, m, a)` a quarantine hole?
    pub fn node_quarantined(&self, d: usize, m: usize, a: usize) -> bool {
        self.quarantined[(d * self.machs.len() + m) * self.alphas.len() + a]
    }

    /// Number of quarantine holes in the table.
    pub fn holes(&self) -> usize {
        self.nholes
    }

    /// Grid coordinates of every quarantine hole, in node order.
    pub fn hole_coords(&self) -> Vec<(usize, usize, usize)> {
        let (_, nm, na) = self.shape();
        self.quarantined
            .iter()
            .enumerate()
            .filter(|(_, &q)| q)
            .map(|(n, _)| (n / (nm * na), (n / na) % nm, n % na))
            .collect()
    }

    /// Repair a quarantine hole with a converged re-run's loads: stores the
    /// values and clears the mask. Returns `false` (and changes nothing) if
    /// the node was not masked.
    pub fn fill_node(&mut self, d: usize, m: usize, a: usize, force: Vec3, moment: Vec3) -> bool {
        let n = (d * self.machs.len() + m) * self.alphas.len() + a;
        if !self.quarantined[n] {
            return false;
        }
        self.force[n] = force;
        self.moment[n] = moment;
        self.quarantined[n] = false;
        self.nholes -= 1;
        true
    }
}

/// Rigid-body state: position, velocity (world frame), attitude quaternion
/// (body -> world), angular rate (body frame).
#[derive(Clone, Copy, Debug)]
pub struct RigidState {
    /// Position (world).
    pub pos: Vec3,
    /// Velocity (world).
    pub vel: Vec3,
    /// Attitude quaternion `(w, x, y, z)`, body -> world.
    pub quat: [f64; 4],
    /// Angular velocity (body frame).
    pub omega: Vec3,
}

impl RigidState {
    /// Level flight at speed (= Mach) `m` along +x.
    pub fn level(m: f64) -> RigidState {
        RigidState {
            pos: Vec3::ZERO,
            vel: Vec3::new(m, 0.0, 0.0),
            quat: [1.0, 0.0, 0.0, 0.0],
            omega: Vec3::ZERO,
        }
    }

    /// Rotate a world vector into the body frame.
    pub fn world_to_body(&self, v: Vec3) -> Vec3 {
        quat_rotate(quat_conj(self.quat), v)
    }

    /// Rotate a body vector into the world frame.
    pub fn body_to_world(&self, v: Vec3) -> Vec3 {
        quat_rotate(self.quat, v)
    }

    /// Angle of attack: angle between the body x-axis and the body-frame
    /// velocity, in the x-z plane.
    pub fn alpha(&self) -> f64 {
        let vb = self.world_to_body(self.vel);
        vb.z.atan2(vb.x)
    }

    /// Flight Mach number (unit sound speed).
    pub fn mach(&self) -> f64 {
        self.vel.norm()
    }
}

fn quat_conj(q: [f64; 4]) -> [f64; 4] {
    [q[0], -q[1], -q[2], -q[3]]
}

fn quat_mul(a: [f64; 4], b: [f64; 4]) -> [f64; 4] {
    [
        a[0] * b[0] - a[1] * b[1] - a[2] * b[2] - a[3] * b[3],
        a[0] * b[1] + a[1] * b[0] + a[2] * b[3] - a[3] * b[2],
        a[0] * b[2] - a[1] * b[3] + a[2] * b[0] + a[3] * b[1],
        a[0] * b[3] + a[1] * b[2] - a[2] * b[1] + a[3] * b[0],
    ]
}

fn quat_rotate(q: [f64; 4], v: Vec3) -> Vec3 {
    let p = [0.0, v.x, v.y, v.z];
    let r = quat_mul(quat_mul(q, p), quat_conj(q));
    Vec3::new(r[1], r[2], r[3])
}

fn quat_normalize(q: &mut [f64; 4]) {
    let n = (q[0] * q[0] + q[1] * q[1] + q[2] * q[2] + q[3] * q[3]).sqrt();
    for c in q.iter_mut() {
        *c /= n;
    }
}

/// Vehicle mass properties and the 6-DOF integrator.
#[derive(Clone, Debug)]
pub struct SixDof {
    /// Aero tables.
    pub db: AeroDatabase,
    /// Vehicle mass (solver units).
    pub mass: f64,
    /// Diagonal body inertia.
    pub inertia: Vec3,
    /// Gravity acceleration (world frame; zero for pure aero studies).
    pub gravity: Vec3,
    /// Aerodynamic rate-damping derivatives (Clp, Cmq, Cnr analogues):
    /// moment -= damping .* omega. Static databases carry no dynamic
    /// derivatives, so damping is supplied as a vehicle property.
    pub rate_damping: Vec3,
    /// Control schedule: time -> elevon deflection.
    pub control: fn(f64) -> f64,
}

impl SixDof {
    /// Time derivative of the state.
    fn deriv(&self, t: f64, s: &RigidState) -> (Vec3, Vec3, [f64; 4], Vec3) {
        let defl = (self.control)(t);
        let mach = s.mach();
        let alpha = s.alpha();
        let (f_body, m_body) = self.db.lookup(defl, mach, alpha);
        // Database force convention: x = downstream (drag), z = lift. In
        // body axes drag opposes the body-frame velocity direction. At zero
        // airspeed there is no flow direction to oppose: the drag term
        // vanishes instead of normalising a zero vector into NaN that the
        // RK4 stages would silently propagate through the whole trajectory.
        let vb = s.world_to_body(s.vel);
        let speed = vb.norm();
        let drag_dir = if speed > 0.0 {
            -(vb / speed)
        } else {
            Vec3::ZERO
        };
        let f_aero_body = drag_dir * f_body.x + Vec3::new(0.0, f_body.y, f_body.z);
        let f_world = s.body_to_world(f_aero_body) + self.gravity * self.mass;
        let acc = f_world / self.mass;
        // Euler's equations with diagonal inertia + rate damping.
        let w = s.omega;
        let i = self.inertia;
        let d = self.rate_damping;
        let dw = Vec3::new(
            (m_body.x - d.x * w.x - (i.z - i.y) * w.y * w.z) / i.x,
            (m_body.y - d.y * w.y - (i.x - i.z) * w.z * w.x) / i.y,
            (m_body.z - d.z * w.z - (i.y - i.x) * w.x * w.y) / i.z,
        );
        // Quaternion kinematics: qdot = 0.5 q * (0, w).
        let qd = quat_mul(s.quat, [0.0, 0.5 * w.x, 0.5 * w.y, 0.5 * w.z]);
        (s.vel, acc, qd, dw)
    }

    /// One RK4 step of size `dt` at time `t`.
    pub fn step(&self, t: f64, s: &RigidState, dt: f64) -> RigidState {
        let add = |s: &RigidState, k: &(Vec3, Vec3, [f64; 4], Vec3), h: f64| RigidState {
            pos: s.pos + k.0 * h,
            vel: s.vel + k.1 * h,
            quat: [
                s.quat[0] + k.2[0] * h,
                s.quat[1] + k.2[1] * h,
                s.quat[2] + k.2[2] * h,
                s.quat[3] + k.2[3] * h,
            ],
            omega: s.omega + k.3 * h,
        };
        let k1 = self.deriv(t, s);
        let k2 = self.deriv(t + 0.5 * dt, &add(s, &k1, 0.5 * dt));
        let k3 = self.deriv(t + 0.5 * dt, &add(s, &k2, 0.5 * dt));
        let k4 = self.deriv(t + dt, &add(s, &k3, dt));
        let mut out = RigidState {
            pos: s.pos + (k1.0 + k2.0 * 2.0 + k3.0 * 2.0 + k4.0) * (dt / 6.0),
            vel: s.vel + (k1.1 + k2.1 * 2.0 + k3.1 * 2.0 + k4.1) * (dt / 6.0),
            quat: [0.0; 4],
            omega: s.omega + (k1.3 + k2.3 * 2.0 + k3.3 * 2.0 + k4.3) * (dt / 6.0),
        };
        for c in 0..4 {
            out.quat[c] =
                s.quat[c] + (k1.2[c] + 2.0 * k2.2[c] + 2.0 * k3.2[c] + k4.2[c]) * (dt / 6.0);
        }
        quat_normalize(&mut out.quat);
        out
    }

    /// Fly a trajectory: `n` steps of `dt`, sampling the state each step.
    pub fn fly(&self, start: RigidState, dt: f64, n: usize) -> Vec<(f64, RigidState)> {
        let mut out = Vec::with_capacity(n + 1);
        let mut s = start;
        let mut t = 0.0;
        out.push((t, s));
        for _ in 0..n {
            s = self.step(t, &s, dt);
            t += dt;
            out.push((t, s));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::{CaseStatus, DatabaseEntry};
    use columbia_euler::Forces;

    /// Synthetic linear-aero database: drag = 0.1 + M^2/10, lift = 2 alpha,
    /// pitching moment = -1.0 * alpha (statically stable) + 0.5 defl.
    fn synthetic_db() -> AeroDatabase {
        let mut entries = Vec::new();
        for &d in &[0.0, 0.2] {
            for &m in &[0.5, 1.0, 2.0] {
                for &a in &[-0.1, 0.0, 0.1] {
                    entries.push(DatabaseEntry {
                        deflection: d,
                        mach: m,
                        alpha: a,
                        beta: 0.0,
                        forces: Forces {
                            force: Vec3::new(0.1 + m * m / 10.0, 0.0, 2.0 * a),
                            moment: Vec3::new(0.0, 0.5 * d - a, 0.0),
                        },
                        orders: 5.0,
                        status: CaseStatus::Converged,
                    });
                }
            }
        }
        AeroDatabase::from_entries(&entries).unwrap()
    }

    fn vehicle(db: AeroDatabase) -> SixDof {
        SixDof {
            db,
            mass: 100.0,
            inertia: Vec3::new(5.0, 5.0, 5.0),
            gravity: Vec3::ZERO,
            rate_damping: Vec3::new(5.0, 5.0, 5.0),
            control: |_| 0.0,
        }
    }

    #[test]
    fn lookup_reproduces_grid_nodes_and_interpolates() {
        let db = synthetic_db();
        let (f, m) = db.lookup(0.0, 1.0, 0.1);
        assert!((f.x - 0.2).abs() < 1e-12);
        assert!((f.z - 0.2).abs() < 1e-12);
        assert!((m.y + 0.1).abs() < 1e-12);
        // Midpoint in Mach: drag averages the two nodes.
        let (f2, _) = db.lookup(0.0, 0.75, 0.0);
        let expect = 0.5 * (0.1 + 0.025) + 0.5 * (0.1 + 0.1);
        assert!((f2.x - expect).abs() < 1e-12, "{} vs {expect}", f2.x);
        // Clamping outside the table.
        let (f3, _) = db.lookup(0.0, 5.0, 0.0);
        assert!((f3.x - 0.5).abs() < 1e-12);
    }

    #[test]
    fn drag_decelerates_the_vehicle() {
        let v = vehicle(synthetic_db());
        let traj = v.fly(RigidState::level(2.0), 0.05, 200);
        let m0 = traj.first().unwrap().1.mach();
        let m1 = traj.last().unwrap().1.mach();
        assert!(m1 < m0 - 0.02, "no deceleration: {m0} -> {m1}");
        // Quaternion stays normalised.
        for (_, s) in &traj {
            let n: f64 = s.quat.iter().map(|q| q * q).sum();
            assert!((n - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn statically_stable_pitch_oscillation_stays_bounded() {
        let v = vehicle(synthetic_db());
        // Start with a pitch disturbance via angular rate.
        let mut s = RigidState::level(1.0);
        s.omega = Vec3::new(0.0, 0.05, 0.0);
        let traj = v.fly(s, 0.02, 800);
        let max_alpha = traj
            .iter()
            .map(|(_, s)| s.alpha().abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_alpha < 0.5,
            "stable vehicle pitched out of bounds: {max_alpha}"
        );
    }

    #[test]
    fn elevon_deflection_trims_to_nonzero_alpha() {
        // With moment = -alpha + 0.5 defl, a constant deflection of 0.2
        // trims at alpha = 0.1; the vehicle should settle near it.
        let mut v = vehicle(synthetic_db());
        v.control = |_| 0.2;
        let traj = v.fly(RigidState::level(1.0), 0.02, 2500);
        let tail: Vec<f64> = traj[1500..].iter().map(|(_, s)| s.alpha()).collect();
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        let spread = tail.iter().fold(0.0f64, |m, a| m.max((a - mean).abs()));
        // Static trim is alpha = 0.1; the steady turning flight (lift keeps
        // curving the path) plus rate damping bias it upward a little.
        assert!(
            mean > 0.05 && mean < 0.25,
            "trim alpha {mean} should settle near 0.1"
        );
        assert!(spread < 0.05, "oscillation should be damped out: {spread}");
    }

    #[test]
    fn duplicated_breakpoint_is_a_typed_error_not_a_masked_division() {
        // Regression: `bracket` used to divide by `(v[i+1] - v[i]).max(1e-300)`,
        // so a duplicated Mach breakpoint silently collapsed the weight to an
        // edge instead of being reported. Construction now rejects it.
        let err = AeroDatabase::from_axes(
            vec![0.0],
            vec![0.5, 1.0, 1.0, 2.0],
            vec![0.0],
            vec![Vec3::ZERO; 4],
            vec![Vec3::ZERO; 4],
        )
        .unwrap_err();
        assert_eq!(
            err,
            TableError::NonMonotonic {
                axis: "mach",
                index: 1,
                prev: 1.0,
                next: 1.0,
            }
        );
        assert!(err.to_string().contains("strictly increasing"), "{err}");
    }

    #[test]
    fn descending_and_nonfinite_axes_are_rejected() {
        let desc = AeroDatabase::from_axes(
            vec![0.2, 0.0],
            vec![1.0],
            vec![0.0],
            vec![Vec3::ZERO; 2],
            vec![Vec3::ZERO; 2],
        )
        .unwrap_err();
        assert_eq!(
            desc,
            TableError::NonMonotonic {
                axis: "deflection",
                index: 0,
                prev: 0.2,
                next: 0.0,
            }
        );
        let nan = AeroDatabase::from_axes(
            vec![0.0],
            vec![1.0],
            vec![0.0, f64::NAN],
            vec![Vec3::ZERO; 2],
            vec![Vec3::ZERO; 2],
        )
        .unwrap_err();
        match nan {
            TableError::NonFinite { axis, index, value } => {
                assert_eq!((axis, index), ("alpha", 1));
                assert!(value.is_nan());
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
        let empty =
            AeroDatabase::from_axes(vec![], vec![1.0], vec![0.0], vec![], vec![]).unwrap_err();
        assert_eq!(empty, TableError::EmptyAxis { axis: "deflection" });
        let shape = AeroDatabase::from_axes(
            vec![0.0],
            vec![0.5, 1.0],
            vec![0.0],
            vec![Vec3::ZERO; 3],
            vec![Vec3::ZERO; 3],
        )
        .unwrap_err();
        assert_eq!(
            shape,
            TableError::BadShape {
                expected: 2,
                got: 3
            }
        );
    }

    #[test]
    fn near_duplicate_entries_still_interpolate_with_bounded_weight() {
        // `from_entries` dedups breakpoints closer than 1e-12, so gaps just
        // above that survive; the interpolation weight must stay in [0, 1].
        let mut entries = Vec::new();
        for &m in &[1.0, 1.0 + 1e-11, 2.0] {
            entries.push(DatabaseEntry {
                deflection: 0.0,
                mach: m,
                alpha: 0.0,
                beta: 0.0,
                forces: Forces {
                    force: Vec3::new(m, 0.0, 0.0),
                    moment: Vec3::ZERO,
                },
                orders: 1.0,
                status: CaseStatus::Converged,
            });
        }
        let db = AeroDatabase::from_entries(&entries).unwrap();
        let (f, _) = db.lookup(0.0, 1.0 + 5e-12, 0.0);
        assert!(f.x.is_finite());
        assert!(
            (1.0..=1.0 + 1e-11).contains(&f.x),
            "weight escaped the bracket: {}",
            f.x
        );
    }

    #[test]
    #[should_panic(expected = "tensor grid")]
    fn incomplete_database_panics() {
        let mut entries = Vec::new();
        for &m in &[0.5, 1.0] {
            entries.push(DatabaseEntry {
                deflection: 0.0,
                mach: m,
                alpha: 0.0,
                beta: 0.0,
                forces: Forces::default(),
                orders: 1.0,
                status: CaseStatus::Converged,
            });
        }
        entries.push(DatabaseEntry {
            deflection: 0.0,
            mach: 0.5,
            alpha: 0.1,
            beta: 0.0,
            forces: Forces::default(),
            orders: 1.0,
            status: CaseStatus::Converged,
        });
        let _ = AeroDatabase::from_entries(&entries);
    }

    /// One entry of `synthetic_db`'s grid turned into a quarantined
    /// placeholder (zero loads), the way a node failure leaves it.
    fn poisoned_entries() -> Vec<DatabaseEntry> {
        let mut entries = Vec::new();
        for &d in &[0.0, 0.2] {
            for &m in &[0.5, 1.0, 2.0] {
                for &a in &[-0.1, 0.0, 0.1] {
                    let poisoned = d == 0.0 && m == 1.0 && a == 0.1;
                    entries.push(DatabaseEntry {
                        deflection: d,
                        mach: m,
                        alpha: a,
                        beta: 0.0,
                        forces: if poisoned {
                            Forces::default()
                        } else {
                            Forces {
                                force: Vec3::new(0.1 + m * m / 10.0, 0.0, 2.0 * a),
                                moment: Vec3::new(0.0, 0.5 * d - a, 0.0),
                            }
                        },
                        orders: if poisoned { 0.0 } else { 5.0 },
                        status: if poisoned {
                            CaseStatus::Quarantined {
                                attempts: 3,
                                reason: "node failure".into(),
                            }
                        } else {
                            CaseStatus::Converged
                        },
                    });
                }
            }
        }
        entries
    }

    #[test]
    fn quarantined_entry_is_a_typed_construction_error_not_silent_zeros() {
        // Regression: `from_entries` used to tensor-fill quarantined
        // entries' placeholder zero loads, so a poisoned fill silently
        // corrupted every nearby lookup (and any SixDof trajectory flown
        // through it). Strict construction now rejects the table outright.
        let err = AeroDatabase::from_entries(&poisoned_entries()).unwrap_err();
        assert_eq!(
            err,
            TableError::QuarantinedNode {
                deflection: 0.0,
                mach: 1.0,
                alpha: 0.1,
            }
        );
        assert!(err.to_string().contains("quarantined"), "{err}");
    }

    #[test]
    fn masked_database_reports_holes_instead_of_blending_placeholders() {
        let db = AeroDatabase::from_entries_masked(&poisoned_entries()).unwrap();
        assert_eq!(db.holes(), 1);
        assert_eq!(db.hole_coords(), vec![(0, 1, 2)]);
        assert!(db.node_quarantined(0, 1, 2));
        // A stencil touching the hole is a typed error...
        let err = db.lookup_checked(0.0, 1.0, 0.09).unwrap_err();
        match err {
            LookupError::QuarantinedRegion { holes, .. } => assert!(holes >= 1),
            other => panic!("expected QuarantinedRegion, got {other:?}"),
        }
        // ...while stencils clear of it still answer, identically to the
        // clean table.
        let clean = synthetic_db();
        let (f, m) = db.lookup_checked(0.2, 2.0, -0.05).unwrap();
        let (fc, mc) = clean.lookup(0.2, 2.0, -0.05);
        assert_eq!((f, m), (fc, mc));
        // Repairing the hole restores full coverage.
        let mut db = db;
        assert!(db.fill_node(0, 1, 2, Vec3::new(0.2, 0.0, 0.2), Vec3::new(0.0, -0.1, 0.0)));
        assert_eq!(db.holes(), 0);
        let (f, _) = db.lookup_checked(0.0, 1.0, 0.1).unwrap();
        assert!((f.z - 0.2).abs() < 1e-12);
        // A second fill of the same node is a no-op.
        assert!(!db.fill_node(0, 1, 2, Vec3::ZERO, Vec3::ZERO));
    }

    #[test]
    #[should_panic(expected = "masked database")]
    fn infallible_lookup_on_a_holed_table_panics_instead_of_corrupting() {
        let db = AeroDatabase::from_entries_masked(&poisoned_entries()).unwrap();
        // Flying a SixDof through a holed table would silently blend
        // placeholder zeros into the trajectory; the infallible path
        // refuses outright.
        db.lookup(0.0, 1.0, 0.1);
    }

    #[test]
    fn non_finite_queries_are_typed_errors() {
        let db = synthetic_db();
        let err = db.lookup_checked(0.0, f64::NAN, 0.0).unwrap_err();
        match err {
            LookupError::NonFiniteQuery { mach, .. } => assert!(mach.is_nan()),
            other => panic!("expected NonFiniteQuery, got {other:?}"),
        }
        assert!(db.lookup_checked(f64::INFINITY, 1.0, 0.0).is_err());
    }

    #[test]
    fn bracket_binary_search_matches_linear_scan() {
        // The seed's O(n) per-axis scan, kept verbatim as the oracle.
        fn oracle(v: &[f64], x: f64) -> (usize, f64) {
            if v.len() == 1 {
                return (0, 0.0);
            }
            let x = x.clamp(v[0], v[v.len() - 1]);
            let mut i = v.len() - 2;
            for k in 0..v.len() - 1 {
                if x <= v[k + 1] {
                    i = k;
                    break;
                }
            }
            let t = (x - v[i]) / (v[i + 1] - v[i]);
            (i, t.clamp(0.0, 1.0))
        }
        let axes: [&[f64]; 4] = [
            &[0.0],
            &[0.5, 2.0],
            &[-0.3, -0.1, 0.0, 0.4, 1.7],
            &[0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5],
        ];
        for v in axes {
            let mut probes: Vec<f64> = Vec::new();
            // Every breakpoint (exact interior breakpoints land in the
            // lower cell with t = 1.0 — the convention the parity pins),
            // every midpoint, and clamped out-of-range inputs both sides.
            probes.extend_from_slice(v);
            for w in v.windows(2) {
                probes.push(0.5 * (w[0] + w[1]));
            }
            probes.extend_from_slice(&[v[0] - 10.0, v[v.len() - 1] + 10.0]);
            // A seeded sweep between and beyond the extremes.
            let mut rng = columbia_rt::Pcg32::seed_from_u64(0x0B4A_C4E7 ^ v.len() as u64);
            let span = v[v.len() - 1] - v[0];
            for _ in 0..200 {
                probes.push(v[0] - 0.6 * span + 2.2 * span * rng.gen_f64());
            }
            for x in probes {
                let (i, t) = AeroDatabase::bracket(v, x);
                let (oi, ot) = oracle(v, x);
                assert_eq!((i, t), (oi, ot), "axis {v:?}, x = {x}");
            }
        }
    }

    #[test]
    fn zero_airspeed_state_stays_finite() {
        // Regression: deriv normalised the body-frame velocity for the
        // drag direction; from rest that is 0/0. The guard zeroes the drag
        // term instead, so a vehicle at rest (no gravity, symmetric aero)
        // must integrate cleanly and stay put.
        let v = vehicle(synthetic_db());
        let mut s = RigidState::level(0.0);
        s.omega = Vec3::new(0.0, 0.01, 0.0);
        let traj = v.fly(s, 0.02, 50);
        for (_, s) in &traj {
            for c in [
                s.pos.x, s.pos.y, s.pos.z, s.vel.x, s.vel.y, s.vel.z, s.omega.x, s.omega.y,
                s.omega.z,
            ] {
                assert!(c.is_finite(), "state went non-finite: {s:?}");
            }
            for q in s.quat {
                assert!(q.is_finite());
            }
        }
    }
}
