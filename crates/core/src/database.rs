//! Automated aero-performance database fills (paper §IV).
//!
//! "A typical analysis may consider three Configuration-Space parameters
//! (e.g. aileron, elevator and rudder deflections) and examine three
//! Wind-Space parameters (Mach number, angle-of-attack, and sideslip)."
//! Jobs are arranged hierarchically: geometry instances at the top level,
//! wind cases below, so the cost of meshing each configuration is
//! amortised over all its wind-space runs; independent cases run on
//! separate threads ("computational efficiency dictates running as many
//! cases simultaneously as memory permits").

use crate::cart_analysis::CartAnalysis;
use columbia_cartesian::Geometry;
use columbia_euler::Forces;

/// Parameter grid of a database fill.
#[derive(Clone, Debug)]
pub struct DatabaseSpec {
    /// Configuration-space: control-surface deflections (radians); one
    /// geometry instance (and one mesh) is built per entry.
    pub deflections: Vec<f64>,
    /// Wind-space Mach numbers.
    pub machs: Vec<f64>,
    /// Wind-space angles of attack (radians).
    pub alphas: Vec<f64>,
    /// Wind-space sideslip angles (radians).
    pub betas: Vec<f64>,
    /// Multigrid cycles per case.
    pub cycles: usize,
}

impl DatabaseSpec {
    /// Total number of CFD cases in the fill.
    pub fn ncases(&self) -> usize {
        self.deflections.len() * self.machs.len() * self.alphas.len() * self.betas.len()
    }
}

/// One database entry: the case parameters and its results.
#[derive(Clone, Debug)]
pub struct DatabaseEntry {
    /// Control-surface deflection of the geometry instance.
    pub deflection: f64,
    /// Mach number.
    pub mach: f64,
    /// Angle of attack.
    pub alpha: f64,
    /// Sideslip.
    pub beta: f64,
    /// Integrated loads.
    pub forces: Forces,
    /// Orders of residual reduction achieved.
    pub orders: f64,
}

/// The database-fill driver.
pub struct DatabaseFill {
    /// Analysis template (resolution, cycle settings).
    pub analysis: CartAnalysis,
    /// Geometry factory: deflection -> geometry instance. Mirrors the
    /// paper's automated triangulation + control-surface positioning.
    pub geometry: Box<dyn Fn(f64) -> Geometry + Sync>,
}

impl DatabaseFill {
    /// New fill with the given geometry factory.
    pub fn new(
        analysis: CartAnalysis,
        geometry: impl Fn(f64) -> Geometry + Sync + 'static,
    ) -> Self {
        DatabaseFill {
            analysis,
            geometry: Box::new(geometry),
        }
    }

    /// Run the fill; wind cases of each geometry instance run concurrently
    /// on `threads_per_config` OS threads.
    pub fn run(&self, spec: &DatabaseSpec, threads_per_config: usize) -> Vec<DatabaseEntry> {
        let mut out = Vec::with_capacity(spec.ncases());
        for &defl in &spec.deflections {
            // One geometry + one mesh per configuration instance.
            let geom = (self.geometry)(defl);
            let mesh = self.analysis.mesh(&geom);
            // Wind-space case list.
            let mut cases = Vec::new();
            for &m in &spec.machs {
                for &a in &spec.alphas {
                    for &b in &spec.betas {
                        cases.push((m, a, b));
                    }
                }
            }
            // Fan out across threads, chunked.
            let chunk = cases.len().div_ceil(threads_per_config.max(1));
            let entries = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for batch in cases.chunks(chunk.max(1)) {
                    let mesh = mesh.clone();
                    let analysis = self.analysis.clone();
                    handles.push(scope.spawn(move || {
                        batch
                            .iter()
                            .map(|&(m, a, b)| {
                                let report = analysis
                                    .clone()
                                    .wind(m, a, b)
                                    .run_on_mesh(mesh.clone(), spec.cycles);
                                DatabaseEntry {
                                    deflection: defl,
                                    mach: m,
                                    alpha: a,
                                    beta: b,
                                    forces: report.forces,
                                    orders: report.history.orders_reduced(),
                                }
                            })
                            .collect::<Vec<_>>()
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("database worker panicked"))
                    .collect::<Vec<_>>()
            });
            out.extend(entries);
        }
        out
    }

    /// Re-run a single case on demand ("virtual database": it is often
    /// faster to re-run a case than to retrieve it from mass storage").
    pub fn rerun(&self, defl: f64, mach: f64, alpha: f64, beta: f64, cycles: usize) -> DatabaseEntry {
        let geom = (self.geometry)(defl);
        let mesh = self.analysis.mesh(&geom);
        let report = self
            .analysis
            .clone()
            .wind(mach, alpha, beta)
            .run_on_mesh(mesh, cycles);
        DatabaseEntry {
            deflection: defl,
            mach,
            alpha,
            beta,
            forces: report.forces,
            orders: report.history.orders_reduced(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columbia_cartesian::TriMesh;

    fn tiny_fill() -> (DatabaseFill, DatabaseSpec) {
        let analysis = CartAnalysis::default().resolution(3, 4);
        let fill = DatabaseFill::new(analysis, |defl| {
            // A chunky finned body the coarse test octree can resolve.
            let mut fin = TriMesh::cuboid(
                columbia_mesh::Vec3::new(0.1, -0.1, -0.4),
                columbia_mesh::Vec3::new(0.5, 0.1, 0.4),
            );
            fin.rotate(2, columbia_mesh::Vec3::ZERO, defl);
            Geometry::new(&[fin])
        });
        let spec = DatabaseSpec {
            deflections: vec![0.0, 0.2],
            machs: vec![0.5, 2.0],
            alphas: vec![0.0],
            betas: vec![0.0],
            cycles: 15,
        };
        (fill, spec)
    }

    #[test]
    fn fill_produces_all_cases() {
        let (fill, spec) = tiny_fill();
        assert_eq!(spec.ncases(), 4);
        let db = fill.run(&spec, 2);
        assert_eq!(db.len(), 4);
        // Supersonic cases must show more drag than subsonic on the same
        // geometry.
        let sub = db
            .iter()
            .find(|e| e.mach == 0.5 && e.deflection == 0.0)
            .unwrap();
        let sup = db
            .iter()
            .find(|e| e.mach == 2.0 && e.deflection == 0.0)
            .unwrap();
        assert!(sup.forces.force.x > sub.forces.force.x);
    }

    #[test]
    fn rerun_matches_database_entry() {
        let (fill, spec) = tiny_fill();
        let db = fill.run(&spec, 1);
        let again = fill.rerun(0.2, 2.0, 0.0, 0.0, spec.cycles);
        let orig = db
            .iter()
            .find(|e| e.deflection == 0.2 && e.mach == 2.0)
            .unwrap();
        assert!((again.forces.force.x - orig.forces.force.x).abs() < 1e-12);
    }
}
