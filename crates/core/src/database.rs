//! Automated aero-performance database fills (paper §IV).
//!
//! "A typical analysis may consider three Configuration-Space parameters
//! (e.g. aileron, elevator and rudder deflections) and examine three
//! Wind-Space parameters (Mach number, angle-of-attack, and sideslip)."
//! Jobs are arranged hierarchically: geometry instances at the top level,
//! wind cases below, so the cost of meshing each configuration is
//! amortised over all its wind-space runs; independent cases run on
//! separate threads ("computational efficiency dictates running as many
//! cases simultaneously as memory permits").

use crate::cart_analysis::CartAnalysis;
use columbia_cartesian::Geometry;
use columbia_euler::Forces;
pub use columbia_exec::{ExecContext, FillPolicy};
use columbia_rt::trace::SpanKey;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Parameter grid of a database fill.
#[derive(Clone, Debug)]
pub struct DatabaseSpec {
    /// Configuration-space: control-surface deflections (radians); one
    /// geometry instance (and one mesh) is built per entry.
    pub deflections: Vec<f64>,
    /// Wind-space Mach numbers.
    pub machs: Vec<f64>,
    /// Wind-space angles of attack (radians).
    pub alphas: Vec<f64>,
    /// Wind-space sideslip angles (radians).
    pub betas: Vec<f64>,
    /// Multigrid cycles per case.
    pub cycles: usize,
}

impl DatabaseSpec {
    /// Total number of CFD cases in the fill.
    pub fn ncases(&self) -> usize {
        self.deflections.len() * self.machs.len() * self.alphas.len() * self.betas.len()
    }
}

/// How a case fared under the fill's retry policy.
///
/// Multi-day fills on thousands of CPUs lose cases to node failures; the
/// paper's automated framework has to report such holes in the database
/// rather than abort the whole parameter study.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CaseStatus {
    /// Succeeded on the first attempt.
    Converged,
    /// Succeeded after transient failures (`attempts` runs total).
    Recovered {
        /// Attempts consumed, including the successful one.
        attempts: u32,
    },
    /// Every attempt failed; the entry carries placeholder loads and must
    /// be re-run (or excluded) by the consumer.
    Quarantined {
        /// Attempts consumed.
        attempts: u32,
        /// Failure description from the last attempt.
        reason: String,
    },
}

impl CaseStatus {
    /// True when the entry holds a usable solution.
    pub fn is_ok(&self) -> bool {
        !matches!(self, CaseStatus::Quarantined { .. })
    }
}

/// One database entry: the case parameters and its results.
#[derive(Clone, Debug)]
pub struct DatabaseEntry {
    /// Control-surface deflection of the geometry instance.
    pub deflection: f64,
    /// Mach number.
    pub mach: f64,
    /// Angle of attack.
    pub alpha: f64,
    /// Sideslip.
    pub beta: f64,
    /// Integrated loads.
    pub forces: Forces,
    /// Orders of residual reduction achieved.
    pub orders: f64,
    /// Outcome of the case under the fill's retry policy.
    pub status: CaseStatus,
}

/// The database-fill driver.
pub struct DatabaseFill {
    /// Analysis template (resolution, cycle settings).
    pub analysis: CartAnalysis,
    /// Geometry factory: deflection -> geometry instance. Mirrors the
    /// paper's automated triangulation + control-surface positioning.
    pub geometry: Box<dyn Fn(f64) -> Geometry + Sync>,
}

impl DatabaseFill {
    /// New fill with the given geometry factory.
    pub fn new(
        analysis: CartAnalysis,
        geometry: impl Fn(f64) -> Geometry + Sync + 'static,
    ) -> Self {
        DatabaseFill {
            analysis,
            geometry: Box::new(geometry),
        }
    }

    /// Run the fill; wind cases of each geometry instance run concurrently
    /// on `threads_per_config` OS threads.
    ///
    /// The context's [`FillPolicy`] governs retry/quarantine: every case is
    /// attempted up to `max_attempts` times; a case that fails every
    /// attempt (solver panic, non-finite loads, or an injected chaos
    /// failure) is *quarantined* — the fill completes, the entry is present
    /// with placeholder loads, and its [`DatabaseEntry::status`] reports
    /// the failure. Cases are numbered globally (configuration-major,
    /// wind-space-minor), so a chaos [`columbia_rt::fault::CasePlan`]
    /// addresses the same case regardless of thread count.
    ///
    /// With tracing enabled on `ctx`, the fill is recorded under a
    /// `database_fill` span with outcome totals and one `case` child span
    /// per global case id (attempt count, outcome, convergence gauge).
    /// Case spans are recorded serially from the ordered entry list
    /// *after* the threaded fill (output order is global-case-id order by
    /// construction), so the trace is deterministic for any thread count.
    pub fn run(
        &self,
        spec: &DatabaseSpec,
        threads_per_config: usize,
        ctx: &mut ExecContext,
    ) -> Vec<DatabaseEntry> {
        let policy = ctx.fill().clone();
        let policy = &policy;
        let nwind = spec.machs.len() * spec.alphas.len() * spec.betas.len();
        let mut out = Vec::with_capacity(spec.ncases());
        for (defl_idx, &defl) in spec.deflections.iter().enumerate() {
            // One geometry + one mesh per configuration instance.
            let geom = (self.geometry)(defl);
            let mesh = self.analysis.mesh(&geom);
            // Wind-space case list with global case ids.
            let mut cases = Vec::new();
            for &m in &spec.machs {
                for &a in &spec.alphas {
                    for &b in &spec.betas {
                        let id = (defl_idx * nwind + cases.len()) as u64;
                        cases.push((id, m, a, b));
                    }
                }
            }
            // Fan out across threads, chunked.
            let chunk = cases.len().div_ceil(threads_per_config.max(1));
            let entries = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for batch in cases.chunks(chunk.max(1)) {
                    let mesh = mesh.clone();
                    let analysis = self.analysis.clone();
                    handles.push(scope.spawn(move || {
                        batch
                            .iter()
                            .map(|&(id, m, a, b)| {
                                run_case(&analysis, &mesh, policy, id, defl, m, a, b, spec.cycles)
                            })
                            .collect::<Vec<_>>()
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("database worker panicked"))
                    .collect::<Vec<_>>()
            });
            out.extend(entries);
        }
        if ctx.tracing_enabled() {
            ctx.tracer().scoped(SpanKey::new("database_fill"), |t| {
                t.add("cases", out.len() as u64);
                for (id, e) in out.iter().enumerate() {
                    let (outcome, attempts) = match &e.status {
                        CaseStatus::Converged => ("converged", 1),
                        CaseStatus::Recovered { attempts } => ("recovered", *attempts),
                        CaseStatus::Quarantined { attempts, .. } => ("quarantined", *attempts),
                    };
                    t.scoped(SpanKey::new("case").case_id(id), |t| {
                        t.add(outcome, 1);
                        t.add("attempts", attempts as u64);
                        t.gauge("orders_reduced", e.orders);
                    });
                    // Fill-level rollups of the same outcomes.
                    t.add(outcome, 1);
                    t.add("attempts", attempts as u64);
                }
            });
        }
        out
    }

    /// Re-run a single case on demand ("virtual database": it is often
    /// faster to re-run a case than to retrieve it from mass storage").
    ///
    /// The re-run goes through exactly the same [`run_case`] path as the
    /// fill, so it obeys the context's [`FillPolicy`] — retry budget,
    /// chaos schedule, finite-load validation — and honestly reports
    /// [`CaseStatus::Recovered`]/[`CaseStatus::Quarantined`] instead of
    /// unconditionally stamping [`CaseStatus::Converged`] the way the seed
    /// did (which let an injected or real failure masquerade as a
    /// converged solution). `case_id` addresses the chaos
    /// [`columbia_rt::fault::CasePlan`] the same way fill-time ids do, so
    /// an on-demand re-run of a poisoned case fails deterministically on
    /// replay; `DatabaseServer` refinement derives it from the grid node
    /// index.
    ///
    /// With tracing enabled on `ctx`, the re-run is recorded under a
    /// `database_rerun` span with one `case` child (attempt count,
    /// outcome, convergence gauge) — the same shape as fill-time case
    /// spans.
    #[allow(clippy::too_many_arguments)] // case coordinates + context, as for run_case
    pub fn rerun(
        &self,
        case_id: u64,
        defl: f64,
        mach: f64,
        alpha: f64,
        beta: f64,
        cycles: usize,
        ctx: &mut ExecContext,
    ) -> DatabaseEntry {
        let policy = ctx.fill().clone();
        let geom = (self.geometry)(defl);
        let mesh = self.analysis.mesh(&geom);
        let entry = run_case(
            &self.analysis,
            &mesh,
            &policy,
            case_id,
            defl,
            mach,
            alpha,
            beta,
            cycles,
        );
        if ctx.tracing_enabled() {
            ctx.tracer().scoped(SpanKey::new("database_rerun"), |t| {
                let (outcome, attempts) = match &entry.status {
                    CaseStatus::Converged => ("converged", 1),
                    CaseStatus::Recovered { attempts } => ("recovered", *attempts),
                    CaseStatus::Quarantined { attempts, .. } => ("quarantined", *attempts),
                };
                t.scoped(SpanKey::new("case").case_id(case_id as usize), |t| {
                    t.add(outcome, 1);
                    t.add("attempts", attempts as u64);
                    t.gauge("orders_reduced", entry.orders);
                });
                t.add(outcome, 1);
                t.add("attempts", attempts as u64);
            });
        }
        entry
    }
}

/// Render a panic payload as a quarantine reason.
fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("solver panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("solver panicked: {s}")
    } else {
        "solver panicked (opaque payload)".to_string()
    }
}

/// Attempt one case under the retry policy, producing an entry whatever
/// happens: converged, recovered after transient failures, or quarantined
/// after the attempt budget is spent.
#[allow(clippy::too_many_arguments)] // case coordinates + context, no natural struct
fn run_case(
    analysis: &CartAnalysis,
    mesh: &columbia_cartesian::CartMesh,
    policy: &FillPolicy,
    case_id: u64,
    defl: f64,
    mach: f64,
    alpha: f64,
    beta: f64,
    cycles: usize,
) -> DatabaseEntry {
    let max_attempts = policy.max_attempts.max(1);
    let mut attempt = 0u32;
    let (forces, orders, status) = loop {
        let injected = policy
            .chaos
            .as_ref()
            .is_some_and(|p| p.fails(case_id, attempt));
        let result = if injected {
            Err(format!("injected fault on attempt {attempt}"))
        } else {
            catch_unwind(AssertUnwindSafe(|| {
                analysis
                    .clone()
                    .wind(mach, alpha, beta)
                    .run_on_mesh(mesh.clone(), cycles)
            }))
            .map_err(panic_reason)
            .and_then(|report| {
                let f = report.forces;
                let orders = report.history.orders_reduced();
                let finite = f.force.x.is_finite()
                    && f.force.y.is_finite()
                    && f.force.z.is_finite()
                    && f.moment.x.is_finite()
                    && f.moment.y.is_finite()
                    && f.moment.z.is_finite()
                    && orders.is_finite();
                if finite {
                    Ok((f, orders))
                } else {
                    Err("non-finite loads or residual history".to_string())
                }
            })
        };
        attempt += 1;
        match result {
            Ok((f, o)) => {
                let status = if attempt > 1 {
                    CaseStatus::Recovered { attempts: attempt }
                } else {
                    CaseStatus::Converged
                };
                break (f, o, status);
            }
            Err(reason) if attempt >= max_attempts => {
                break (
                    Forces::default(),
                    0.0,
                    CaseStatus::Quarantined {
                        attempts: attempt,
                        reason,
                    },
                );
            }
            Err(_) => {} // transient: retry
        }
    };
    DatabaseEntry {
        deflection: defl,
        mach,
        alpha,
        beta,
        forces,
        orders,
        status,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columbia_cartesian::TriMesh;
    use columbia_rt::fault::CasePlan;

    fn tiny_fill() -> (DatabaseFill, DatabaseSpec) {
        let analysis = CartAnalysis::default().resolution(3, 4);
        let fill = DatabaseFill::new(analysis, |defl| {
            // A chunky finned body the coarse test octree can resolve.
            let mut fin = TriMesh::cuboid(
                columbia_mesh::Vec3::new(0.1, -0.1, -0.4),
                columbia_mesh::Vec3::new(0.5, 0.1, 0.4),
            );
            fin.rotate(2, columbia_mesh::Vec3::ZERO, defl);
            Geometry::new(&[fin])
        });
        let spec = DatabaseSpec {
            deflections: vec![0.0, 0.2],
            machs: vec![0.5, 2.0],
            alphas: vec![0.0],
            betas: vec![0.0],
            cycles: 15,
        };
        (fill, spec)
    }

    #[test]
    fn fill_produces_all_cases() {
        let (fill, spec) = tiny_fill();
        assert_eq!(spec.ncases(), 4);
        let db = fill.run(&spec, 2, &mut ExecContext::default());
        assert_eq!(db.len(), 4);
        // Supersonic cases must show more drag than subsonic on the same
        // geometry.
        let sub = db
            .iter()
            .find(|e| e.mach == 0.5 && e.deflection == 0.0)
            .unwrap();
        let sup = db
            .iter()
            .find(|e| e.mach == 2.0 && e.deflection == 0.0)
            .unwrap();
        assert!(sup.forces.force.x > sub.forces.force.x);
    }

    #[test]
    fn poisoned_case_is_quarantined_without_aborting_the_fill() {
        let (fill, spec) = tiny_fill();
        // Global case ids are configuration-major: deflection 0.2 (index 1)
        // x mach 2.0 (wind index 1) = case 3.
        let policy = FillPolicy {
            max_attempts: 2,
            chaos: Some(CasePlan::transient(11, 0.0).poison(3)),
        };
        let db = fill.run(&spec, 2, &mut ExecContext::default().with_fill(policy));
        assert_eq!(db.len(), 4, "fill must complete despite the poisoned case");
        let quarantined: Vec<_> = db.iter().filter(|e| !e.status.is_ok()).collect();
        assert_eq!(quarantined.len(), 1, "exactly the poisoned case fails");
        let q = quarantined[0];
        assert_eq!((q.deflection, q.mach), (0.2, 2.0));
        match &q.status {
            CaseStatus::Quarantined { attempts, reason } => {
                assert_eq!(*attempts, 2, "whole retry budget consumed");
                assert!(reason.contains("injected"), "reason reported: {reason}");
            }
            s => panic!("expected quarantine, got {s:?}"),
        }
        // The surviving cases match a policy-free fill bit-for-bit.
        let clean = fill.run(&spec, 2, &mut ExecContext::default());
        for (e, c) in db.iter().zip(&clean) {
            if e.status.is_ok() {
                assert_eq!(e.status, CaseStatus::Converged);
                // The cut-cell solver is deterministic to roundoff but not
                // to the last ulp across runs (see `rerun` test tolerance).
                assert!((e.forces.force.x - c.forces.force.x).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transient_chaos_recovers_deterministically() {
        let (fill, spec) = tiny_fill();
        let policy = FillPolicy {
            max_attempts: 4,
            chaos: Some(CasePlan::transient(0xC0FFEE, 0.5)),
        };
        let a = fill.run(
            &spec,
            2,
            &mut ExecContext::default().with_fill(policy.clone()),
        );
        let b = fill.run(&spec, 1, &mut ExecContext::default().with_fill(policy));
        assert_eq!(a.len(), 4);
        // The chaos schedule is a pure function of (seed, case, attempt):
        // statuses are identical across runs and across thread counts.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.status, y.status);
            assert!((x.forces.force.x - y.forces.force.x).abs() < 1e-12);
        }
        // With a 50% per-attempt failure rate over 4 cases, this seed sees
        // at least one first-attempt failure; recovery must be recorded.
        assert!(
            a.iter()
                .any(|e| matches!(e.status, CaseStatus::Recovered { .. })),
            "statuses: {:?}",
            a.iter().map(|e| e.status.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn traced_fill_reports_outcomes_independent_of_thread_count() {
        let (fill, spec) = tiny_fill();
        let policy = FillPolicy {
            max_attempts: 2,
            chaos: Some(CasePlan::transient(11, 0.0).poison(3)),
        };
        let run = |threads: usize| {
            let mut ctx = ExecContext::traced().with_fill(policy.clone());
            fill.run(&spec, threads, &mut ctx);
            ctx.finish_trace()
        };
        let mut t2 = run(2);
        let mut t1 = run(1);
        // Outcome spans are keyed by global case id, so the trace shape is
        // identical whatever the thread count. Gauges are excluded: the
        // cut-cell solver is deterministic to roundoff, not to the ulp
        // (same caveat as the `rerun` test tolerance).
        fn scrub(spans: &mut [columbia_rt::trace::Span]) {
            for s in spans {
                s.gauges.clear();
                scrub(&mut s.children);
            }
        }
        scrub(&mut t2.spans);
        scrub(&mut t1.spans);
        assert_eq!(t2.to_json().render(), t1.to_json().render());
        let fill_span = t2.find("database_fill").unwrap();
        assert_eq!(fill_span.counters["cases"], 4);
        assert_eq!(fill_span.counters["quarantined"], 1);
        assert_eq!(fill_span.counters["converged"], 3);
        // Quarantined case 3 consumed its whole budget: 3 + 2 attempts.
        assert_eq!(fill_span.counters["attempts"], 5);
        assert_eq!(fill_span.children.len(), 4);
        assert_eq!(fill_span.children[3].key.case_id, Some(3));
        assert_eq!(fill_span.children[3].counters["quarantined"], 1);
    }

    #[test]
    fn rerun_matches_database_entry() {
        let (fill, spec) = tiny_fill();
        let db = fill.run(&spec, 1, &mut ExecContext::default());
        let again = fill.rerun(
            3,
            0.2,
            2.0,
            0.0,
            0.0,
            spec.cycles,
            &mut ExecContext::default(),
        );
        assert_eq!(again.status, CaseStatus::Converged);
        let orig = db
            .iter()
            .find(|e| e.deflection == 0.2 && e.mach == 2.0)
            .unwrap();
        assert!((again.forces.force.x - orig.forces.force.x).abs() < 1e-12);
    }

    #[test]
    fn rerun_obeys_the_fill_policy_instead_of_stamping_converged() {
        // Regression: `rerun` used to bypass run_case entirely — no retry
        // budget, no chaos, no finite-load validation — and unconditionally
        // stamped CaseStatus::Converged. A poisoned re-run must now consume
        // its whole attempt budget and report quarantine, bit-identically
        // on replay.
        let (fill, spec) = tiny_fill();
        let policy = FillPolicy {
            max_attempts: 2,
            chaos: Some(CasePlan::transient(11, 0.0).poison(3)),
        };
        let run = || {
            let mut ctx = ExecContext::traced().with_fill(policy.clone());
            let e = fill.rerun(3, 0.2, 2.0, 0.0, 0.0, spec.cycles, &mut ctx);
            (e, ctx.finish_trace())
        };
        let (entry, trace) = run();
        match &entry.status {
            CaseStatus::Quarantined { attempts, reason } => {
                assert_eq!(*attempts, 2, "whole retry budget consumed");
                assert!(reason.contains("injected"), "reason reported: {reason}");
            }
            s => panic!("expected quarantine, got {s:?}"),
        }
        // The trace records the re-run like a fill-time case.
        let span = trace.find("database_rerun").unwrap();
        assert_eq!(span.counters["quarantined"], 1);
        assert_eq!(span.counters["attempts"], 2);
        assert_eq!(span.children[0].key.case_id, Some(3));
        // Replay is bit-identical: same status, same trace shape.
        let (entry2, trace2) = run();
        assert_eq!(entry.status, entry2.status);
        assert_eq!(trace.to_json().render(), trace2.to_json().render());
        // A non-poisoned case id under the same plan still converges.
        let clean = fill.rerun(
            2,
            0.2,
            2.0,
            0.0,
            0.0,
            spec.cycles,
            &mut ExecContext::default().with_fill(policy),
        );
        assert_eq!(clean.status, CaseStatus::Converged);
    }

    #[test]
    fn rerun_recovers_from_transient_chaos() {
        let (fill, spec) = tiny_fill();
        // Locate a case id whose first attempt fails transiently and whose
        // second succeeds under this schedule — the chaos plan is a pure
        // function of (seed, case, attempt), so the probe is deterministic.
        let plan = CasePlan::transient(0xC0FFEE, 0.5);
        let case = (0..64)
            .find(|&c| plan.fails(c, 0) && !plan.fails(c, 1))
            .expect("some case fails exactly once under this seed");
        let policy = FillPolicy {
            max_attempts: 3,
            chaos: Some(plan),
        };
        let entry = fill.rerun(
            case,
            0.0,
            0.5,
            0.0,
            0.0,
            spec.cycles,
            &mut ExecContext::default().with_fill(policy),
        );
        assert_eq!(entry.status, CaseStatus::Recovered { attempts: 2 });
    }
}
