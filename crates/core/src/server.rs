//! Aero-database server (paper §IV): the filled (deflection, Mach, alpha)
//! tables as a high-throughput lookup *service*.
//!
//! The paper's digital-flight workflow queries a filled database millions of
//! times — 6-DOF integrations, trim sweeps, G&C Monte Carlo — and those
//! query streams are heavily clustered: a trajectory dwells in a handful of
//! interpolation cells for thousands of consecutive steps. [`DatabaseServer`]
//! exploits that structure:
//!
//! * **hot-region cache** — an O(1) LRU of gathered interpolation cells
//!   (the 8 corner loads + quarantine bits), keyed by cell index, so a
//!   cache hit replaces three binary searches and 16 scattered table reads
//!   with one hash probe and a register-resident blend;
//! * **batch dedup** — identical queries inside one [`Self::serve_batch`]
//!   call (bit-exact coordinates) are answered once and copied;
//! * **quarantine policy** — a query whose stencil touches a masked hole is
//!   a typed [`LookupError::QuarantinedRegion`] under the strict policy, or
//!   a nearest-valid-node answer flagged [`Response::degraded`] under the
//!   opt-in [`FallbackKind::Nearest`] policy — never a silent blend of
//!   placeholder loads;
//! * **refinement queue** — blocked queries enqueue their hole nodes;
//!   [`Self::drain_refinement`] schedules them by observed query density so
//!   an incremental [`DatabaseFill::rerun`] ([`Self::refine_with`]) repairs
//!   the holes that actually gate the query stream first.
//!
//! Every path is deterministic: the cache, dedup memo, fallback search and
//! refinement order depend only on the query stream and the table, so a
//! replayed storm is bit-identical (pinned by `tests/database_server.rs`).

use std::collections::HashMap;

use crate::database::{DatabaseFill, ExecContext};
use crate::flight::{AeroDatabase, LookupError};
use columbia_mesh::Vec3;

pub use columbia_exec::{Fallback, FallbackKind, ServePolicy};

/// One interpolation query: a flight condition in table coordinates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Query {
    pub deflection: f64,
    pub mach: f64,
    pub alpha: f64,
}

impl From<(f64, f64, f64)> for Query {
    fn from((deflection, mach, alpha): (f64, f64, f64)) -> Self {
        Query {
            deflection,
            mach,
            alpha,
        }
    }
}

/// A served answer: interpolated loads, plus whether the strict answer was
/// unavailable and a nearest-valid-node fallback was substituted.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Response {
    pub force: Vec3,
    pub moment: Vec3,
    /// `true` when the interpolation stencil touched quarantine holes and
    /// the configured [`FallbackKind::Nearest`] policy answered from the
    /// nearest valid grid node instead. Strict-policy answers are never
    /// degraded (blocked queries error instead).
    pub degraded: bool,
}

/// Monotonic service counters (all start at zero).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Queries served (including errors).
    pub queries: u64,
    /// Answers assembled from a cached cell gather.
    pub cache_hits: u64,
    /// Answers that had to gather a cell from the table.
    pub cache_misses: u64,
    /// Answers copied from an identical earlier query in the same batch
    /// (these touch neither the cache nor the table).
    pub dedup_hits: u64,
    /// Cells evicted from the hot-region cache.
    pub evictions: u64,
    /// Degraded (nearest-valid-node) answers.
    pub degraded: u64,
    /// Typed lookup errors returned.
    pub errors: u64,
    /// Quarantine holes repaired via [`DatabaseServer::apply_refinement`].
    pub refined: u64,
}

/// A gathered interpolation cell: the 8 corner loads in `dd<<2 | dm<<1 | da`
/// order (clamped on degenerate axes) plus the corner quarantine bits.
#[derive(Clone, Copy)]
struct CachedCell {
    force: [Vec3; 8],
    moment: [Vec3; 8],
    holes: u8,
}

/// Multiply-xor finalizer for cell keys (splitmix64's mixing rounds).
#[inline]
fn mix_key(key: u64) -> u64 {
    let mut h = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

const FREE: u32 = u32::MAX;

/// Open-addressing `cell key -> LRU slot` index with linear probing and
/// backward-shift deletion — the per-query map probe is one multiply mix
/// and (at the fixed <= 25% load factor) almost always one slot read.
struct CellMap {
    mask: usize,
    slots: Vec<(u64, u32)>,
}

impl CellMap {
    fn new(capacity: usize) -> Self {
        let n = (4 * capacity.max(2)).next_power_of_two();
        CellMap {
            mask: n - 1,
            slots: vec![(0, FREE); n],
        }
    }

    fn find(&self, key: u64) -> Option<usize> {
        let mut i = mix_key(key) as usize & self.mask;
        loop {
            let (k, v) = self.slots[i & self.mask];
            if v == FREE {
                return None;
            }
            if k == key {
                return Some(i & self.mask);
            }
            i += 1;
        }
    }

    fn get(&self, key: u64) -> Option<u32> {
        self.find(key).map(|i| self.slots[i].1)
    }

    /// Insert or overwrite.
    fn set(&mut self, key: u64, val: u32) {
        let mut i = mix_key(key) as usize & self.mask;
        loop {
            let (k, v) = self.slots[i & self.mask];
            if v == FREE || k == key {
                self.slots[i & self.mask] = (key, val);
                return;
            }
            i += 1;
        }
    }

    /// Remove `key`, compacting the probe chain behind it (backward-shift
    /// deletion keeps `find` tombstone-free).
    fn remove(&mut self, key: u64) -> Option<u32> {
        let mut i = self.find(key)?;
        let val = self.slots[i].1;
        let mut j = i;
        'fill: loop {
            self.slots[i] = (0, FREE);
            loop {
                j = (j + 1) & self.mask;
                let (k, v) = self.slots[j];
                if v == FREE {
                    break 'fill;
                }
                // `k` may slide back into the emptied slot only if its home
                // position is cyclically outside (i, j].
                let home = mix_key(k) as usize & self.mask;
                if j.wrapping_sub(home) & self.mask >= j.wrapping_sub(i) & self.mask {
                    self.slots[i] = (k, v);
                    i = j;
                    continue 'fill;
                }
            }
        }
        Some(val)
    }
}

/// Intrusive doubly-linked LRU slot.
struct Slot {
    key: u64,
    cell: CachedCell,
    /// Queries served out of this slot since it was last folded into the
    /// server's density map — the hot-region signal for refinement.
    heat: u64,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// O(1) LRU of gathered cells: [`CellMap`] key -> slot index, slots
/// threaded on an intrusive most-recent-first list.
struct LruCache {
    capacity: usize,
    map: CellMap,
    slots: Vec<Slot>,
    head: usize,
    tail: usize,
}

impl LruCache {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        LruCache {
            capacity,
            map: CellMap::new(capacity),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h].prev = i,
        }
        self.head = i;
    }

    /// Look up and touch (move to front, bump heat). Returns a copy of
    /// the cell.
    fn get(&mut self, key: u64) -> Option<CachedCell> {
        let i = self.map.get(key)? as usize;
        self.slots[i].heat += 1;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(self.slots[i].cell)
    }

    /// Insert a fresh cell, evicting the least-recently-used slot when at
    /// capacity. Returns the evicted `(key, heat)` for density folding.
    fn insert(&mut self, key: u64, cell: CachedCell) -> Option<(u64, u64)> {
        debug_assert!(self.map.get(key).is_none(), "insert after miss only");
        if self.slots.len() < self.capacity {
            let i = self.slots.len();
            self.slots.push(Slot {
                key,
                cell,
                heat: 1,
                prev: NIL,
                next: NIL,
            });
            self.map.set(key, i as u32);
            self.push_front(i);
            return None;
        }
        // Reuse the tail slot.
        let i = self.tail;
        self.unlink(i);
        let evicted = (self.slots[i].key, self.slots[i].heat);
        self.map.remove(self.slots[i].key);
        self.slots[i].key = key;
        self.slots[i].cell = cell;
        self.slots[i].heat = 1;
        self.map.set(key, i as u32);
        self.push_front(i);
        Some(evicted)
    }

    /// Drop a key if present (refinement invalidation), returning its
    /// accumulated heat.
    fn remove(&mut self, key: u64) -> Option<(u64, u64)> {
        let i = self.map.remove(key)? as usize;
        self.unlink(i);
        let heat = self.slots[i].heat;
        // Swap-remove the slot vector, fixing the moved slot's links.
        let last = self.slots.len() - 1;
        self.slots.swap(i, last);
        self.slots.pop();
        if i < last {
            self.map.set(self.slots[i].key, i as u32);
            let (prev, next) = (self.slots[i].prev, self.slots[i].next);
            match prev {
                NIL => self.head = i,
                p => self.slots[p].next = i,
            }
            match next {
                NIL => self.tail = i,
                n => self.slots[n].prev = i,
            }
        }
        Some((key, heat))
    }

    /// Fold every live slot's heat into `density` and reset the counters.
    fn fold_heat(&mut self, density: &mut HashMap<u64, u64>) {
        for slot in &mut self.slots {
            if slot.heat > 0 {
                *density.entry(slot.key).or_insert(0) += slot.heat;
                slot.heat = 0;
            }
        }
    }

    fn len(&self) -> usize {
        self.slots.len()
    }
}

/// The database server. See the module docs for the architecture.
pub struct DatabaseServer {
    db: AeroDatabase,
    cache: LruCache,
    /// Quarantine policy and refinement budget, resolved once at
    /// construction so a replayed storm cannot be perturbed by mid-run
    /// environment changes.
    fallback: FallbackKind,
    refine_budget: usize,
    /// Query count per cell key — the density signal that orders the
    /// refinement queue.
    density: HashMap<u64, u64>,
    /// Hole nodes awaiting refinement, in first-blocked order.
    pending: Vec<usize>,
    /// Persistent batch-dedup memo: `(query bits, answer index, epoch)`
    /// open-addressing slots, invalidated wholesale by bumping `epoch`
    /// instead of reallocating per batch (and cleared outright on the
    /// astronomically rare epoch wrap).
    memo: Vec<([u64; 3], u32, u32)>,
    epoch: u32,
    stats: ServerStats,
}

impl DatabaseServer {
    /// Serve `db` under `policy`. `Auto` fields resolve through the typed
    /// `COLUMBIA_DB_*` environment knobs exactly once, here.
    pub fn new(db: AeroDatabase, policy: &ServePolicy) -> Self {
        DatabaseServer {
            cache: LruCache::new(policy.resolve_cache_capacity()),
            fallback: policy.fallback.resolve(),
            refine_budget: policy.resolve_refine_budget(),
            db,
            density: HashMap::new(),
            pending: Vec::new(),
            memo: Vec::new(),
            epoch: 0,
            stats: ServerStats::default(),
        }
    }

    /// The served table (holes shrink as refinement lands).
    pub fn database(&self) -> &AeroDatabase {
        &self.db
    }

    /// Service counters so far.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Resolved quarantine policy.
    pub fn fallback(&self) -> FallbackKind {
        self.fallback
    }

    /// Cells currently resident in the hot-region cache.
    pub fn cached_cells(&self) -> usize {
        self.cache.len()
    }

    /// Hole nodes currently queued for refinement.
    pub fn pending_refinements(&self) -> usize {
        self.pending.len()
    }

    fn key_of(&self, id: usize, im: usize, ia: usize) -> u64 {
        let (_, nm, na) = self.db.shape();
        ((id * nm + im) * na + ia) as u64
    }

    /// Serve one batch. Responses are positionally aligned with `queries`;
    /// identical queries (bit-exact coordinates) are answered once per
    /// batch and copied.
    ///
    /// The dedup memo is a flat open-addressing table over the queries'
    /// raw bit patterns — in a trajectory-dwell storm the overwhelming
    /// majority of queries resolve to one multiply-mix hash, one probe and
    /// a 64-byte copy, which is where the hot-storm throughput of
    /// `bench_database` comes from.
    pub fn serve_batch(&mut self, queries: &[Query]) -> Vec<Result<Response, LookupError>> {
        let cap = (2 * queries.len().max(1)).next_power_of_two();
        if self.memo.len() < cap {
            self.memo.resize(cap, ([0; 3], 0, 0));
        }
        let cap = self.memo.len();
        // A slot whose epoch predates this batch is free; bumping the
        // epoch empties the whole memo without touching it.
        if self.epoch == u32::MAX {
            self.memo.fill(([0; 3], 0, 0));
            self.epoch = 0;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        // Probe pass: each query resolves to an index into the batch's
        // distinct-answer list — a dedup hit is a hash, one slot read and
        // a 4-byte write, with no response copied yet.
        let mut answers: Vec<Result<Response, LookupError>> = Vec::new();
        let mut order: Vec<u32> = Vec::with_capacity(queries.len());
        for q in queries {
            let bits = [q.deflection.to_bits(), q.mach.to_bits(), q.alpha.to_bits()];
            let mut i = Self::mix(bits) as usize & (cap - 1);
            loop {
                let (slot_bits, ans, slot_epoch) = self.memo[i];
                if slot_epoch != epoch {
                    let idx = answers.len() as u32;
                    let r = self.serve_one(*q);
                    self.memo[i] = (bits, idx, epoch);
                    answers.push(r);
                    order.push(idx);
                    break;
                }
                if slot_bits == bits {
                    order.push(ans);
                    break;
                }
                i = (i + 1) & (cap - 1);
            }
        }
        // Fold the dedup copies into the counters. `serve_one` already
        // counted each distinct answer once; per-answer attribution of the
        // copies is only needed when the batch held degraded or failing
        // answers at all.
        let dedup = (queries.len() - answers.len()) as u64;
        self.stats.queries += dedup;
        self.stats.dedup_hits += dedup;
        let special = answers
            .iter()
            .any(|r| !matches!(r, Ok(resp) if !resp.degraded));
        if special {
            let mut counts = vec![0u64; answers.len()];
            for &ix in &order {
                counts[ix as usize] += 1;
            }
            for (r, &n) in answers.iter().zip(&counts) {
                match r {
                    Ok(resp) if resp.degraded => self.stats.degraded += n - 1,
                    Ok(_) => {}
                    Err(_) => self.stats.errors += n - 1,
                }
            }
        }
        // Gather pass: materialize the positional responses from the
        // (small, cache-resident) distinct-answer list.
        order.iter().map(|&ix| answers[ix as usize]).collect()
    }

    /// Single-multiply mix of a query's bit pattern for the batch memo.
    /// The rotations keep permuted coordinates from cancelling; one
    /// multiply plus a shift-xor is enough spread for a table that only
    /// has to separate a batch's distinct queries.
    #[inline]
    fn mix(bits: [u64; 3]) -> u64 {
        let h = bits[0] ^ bits[1].rotate_left(21) ^ bits[2].rotate_left(43);
        let h = (h ^ (h >> 31)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^ (h >> 32)
    }

    /// Serve a single query (counted like a one-element batch, without the
    /// dedup memo).
    pub fn serve_one(&mut self, q: Query) -> Result<Response, LookupError> {
        self.stats.queries += 1;
        if !(q.deflection.is_finite() && q.mach.is_finite() && q.alpha.is_finite()) {
            self.stats.errors += 1;
            return Err(LookupError::NonFiniteQuery {
                deflection: q.deflection,
                mach: q.mach,
                alpha: q.alpha,
            });
        }
        let [(id, td), (im, tm), (ia, ta)] = self.db.cell(q.deflection, q.mach, q.alpha);
        let key = self.key_of(id, im, ia);
        // Query density is tallied as per-slot heat (folded into `density`
        // on eviction/removal/drain), not a map update per query.
        let cell = match self.cache.get(key) {
            Some(c) => {
                self.stats.cache_hits += 1;
                c
            }
            None => {
                self.stats.cache_misses += 1;
                let c = self.gather(id, im, ia);
                if let Some((old_key, heat)) = self.cache.insert(key, c) {
                    self.stats.evictions += 1;
                    *self.density.entry(old_key).or_insert(0) += heat;
                }
                c
            }
        };
        // Blend the 8 corners. A corner participates under exactly the
        // stencil-visit rule of `AeroDatabase::lookup_checked`: the upper
        // offset on an axis is skipped when its weight is zero, the lower
        // offset never is — so a hole at a zero-weight *lower* corner still
        // blocks, matching the table's typed semantics bit for bit.
        let mut force = Vec3::ZERO;
        let mut moment = Vec3::ZERO;
        let mut holes = 0usize;
        for (corner, w) in Self::stencil(td, tm, ta) {
            if cell.holes >> corner & 1 == 1 {
                holes += 1;
                continue;
            }
            force += cell.force[corner as usize] * w;
            moment += cell.moment[corner as usize] * w;
        }
        if holes == 0 {
            return Ok(Response {
                force,
                moment,
                degraded: false,
            });
        }
        // Blocked: enqueue every hole node under the stencil, then apply
        // the degraded-answer policy.
        self.enqueue_holes(id, im, ia, td, tm, ta);
        match self.fallback {
            FallbackKind::Strict => {
                self.stats.errors += 1;
                Err(LookupError::QuarantinedRegion {
                    deflection: q.deflection,
                    mach: q.mach,
                    alpha: q.alpha,
                    holes,
                })
            }
            FallbackKind::Nearest => {
                let (d, m, a) = self.nearest_valid(id, im, ia, td, tm, ta).ok_or({
                    // Every node is a hole: nothing valid to degrade to.
                    LookupError::QuarantinedRegion {
                        deflection: q.deflection,
                        mach: q.mach,
                        alpha: q.alpha,
                        holes,
                    }
                })?;
                self.stats.degraded += 1;
                let (force, moment) = self.db.node(d, m, a);
                Ok(Response {
                    force,
                    moment,
                    degraded: true,
                })
            }
        }
    }

    /// The visited stencil corners and weights for cell weights
    /// `(td, tm, ta)`, in `dd<<2 | dm<<1 | da` order. Mirrors the loop
    /// structure (and skip rule) of `AeroDatabase::lookup_checked`.
    fn stencil(td: f64, tm: f64, ta: f64) -> impl Iterator<Item = (u8, f64)> {
        let axes = [td, tm, ta];
        (0u8..8).filter_map(move |corner| {
            let mut w = 1.0;
            for (axis, &t) in axes.iter().enumerate() {
                let upper = corner >> (2 - axis) & 1 == 1;
                let wt = if upper { t } else { 1.0 - t };
                if upper && wt == 0.0 {
                    return None;
                }
                w *= wt;
            }
            Some((corner, w))
        })
    }

    /// Gather one interpolation cell from the table (16 scattered reads).
    fn gather(&self, id: usize, im: usize, ia: usize) -> CachedCell {
        let (nd, nm, na) = self.db.shape();
        let mut cell = CachedCell {
            force: [Vec3::ZERO; 8],
            moment: [Vec3::ZERO; 8],
            holes: 0,
        };
        for corner in 0u8..8 {
            let d = (id + (corner >> 2 & 1) as usize).min(nd - 1);
            let m = (im + (corner >> 1 & 1) as usize).min(nm - 1);
            let a = (ia + (corner & 1) as usize).min(na - 1);
            let (f, mo) = self.db.node(d, m, a);
            cell.force[corner as usize] = f;
            cell.moment[corner as usize] = mo;
            if self.db.node_quarantined(d, m, a) {
                cell.holes |= 1 << corner;
            }
        }
        cell
    }

    /// Queue every hole node under the visited stencil (deduplicated).
    fn enqueue_holes(&mut self, id: usize, im: usize, ia: usize, td: f64, tm: f64, ta: f64) {
        let (nd, nm, na) = self.db.shape();
        for (corner, _) in Self::stencil(td, tm, ta) {
            let d = (id + (corner >> 2 & 1) as usize).min(nd - 1);
            let m = (im + (corner >> 1 & 1) as usize).min(nm - 1);
            let a = (ia + (corner & 1) as usize).min(na - 1);
            if self.db.node_quarantined(d, m, a) {
                let node = (d * nm + m) * na + a;
                if !self.pending.contains(&node) {
                    self.pending.push(node);
                }
            }
        }
    }

    /// Nearest valid (non-hole) node to the query point, by expanding
    /// Chebyshev shells in index space around the query's nearest node.
    /// Within a shell, ties break in (d, m, a) node order — fully
    /// deterministic.
    fn nearest_valid(
        &self,
        id: usize,
        im: usize,
        ia: usize,
        td: f64,
        tm: f64,
        ta: f64,
    ) -> Option<(usize, usize, usize)> {
        let (nd, nm, na) = self.db.shape();
        let near = |i: usize, t: f64, n: usize| -> isize {
            (if t > 0.5 { (i + 1).min(n - 1) } else { i }) as isize
        };
        let (cd, cm, ca) = (near(id, td, nd), near(im, tm, nm), near(ia, ta, na));
        let max_r = (nd.max(nm).max(na)) as isize;
        for r in 0..=max_r {
            for d in (cd - r).max(0)..=(cd + r).min(nd as isize - 1) {
                for m in (cm - r).max(0)..=(cm + r).min(nm as isize - 1) {
                    for a in (ca - r).max(0)..=(ca + r).min(na as isize - 1) {
                        let on_shell = (d - cd).abs().max((m - cm).abs()).max((a - ca).abs()) == r;
                        if !on_shell {
                            continue;
                        }
                        let (d, m, a) = (d as usize, m as usize, a as usize);
                        if !self.db.node_quarantined(d, m, a) {
                            return Some((d, m, a));
                        }
                    }
                }
            }
        }
        None
    }

    /// Drain up to the policy's refinement budget of queued hole nodes,
    /// hottest first: nodes are ordered by the summed query density of
    /// their incident cells (descending), ties by node index (ascending).
    /// Returns grid coordinates ready to hand to [`DatabaseFill::rerun`].
    pub fn drain_refinement(&mut self) -> Vec<(usize, usize, usize)> {
        let budget = self.refine_budget.min(self.pending.len());
        if budget == 0 {
            return Vec::new();
        }
        // Pull live cache heat into the density map so the ranking sees
        // the full query history.
        self.cache.fold_heat(&mut self.density);
        let (_, nm, na) = self.db.shape();
        let heat = |node: usize| -> u64 {
            let (d, m, a) = (node / (nm * na), (node / na) % nm, node % na);
            // Cells incident to a node have lower corner in
            // {d-1, d} x {m-1, m} x {a-1, a} (clipped to valid cell range).
            let mut h = 0u64;
            for dd in d.saturating_sub(1)..=d {
                for dm in m.saturating_sub(1)..=m {
                    for da in a.saturating_sub(1)..=a {
                        let key = ((dd * nm + dm) * na + da) as u64;
                        h += self.density.get(&key).copied().unwrap_or(0);
                    }
                }
            }
            h
        };
        let mut ranked: Vec<(u64, usize)> = self.pending.iter().map(|&n| (heat(n), n)).collect();
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let take: Vec<usize> = ranked.into_iter().take(budget).map(|(_, n)| n).collect();
        self.pending.retain(|n| !take.contains(n));
        take.into_iter()
            .map(|n| (n / (nm * na), (n / na) % nm, n % na))
            .collect()
    }

    /// Land a converged re-run at hole node `(d, m, a)`: repairs the table
    /// and invalidates every cached cell whose stencil could touch the
    /// node. Returns `false` (no change) if the node was not a hole.
    pub fn apply_refinement(
        &mut self,
        d: usize,
        m: usize,
        a: usize,
        force: Vec3,
        moment: Vec3,
    ) -> bool {
        if !self.db.fill_node(d, m, a, force, moment) {
            return false;
        }
        self.stats.refined += 1;
        let (_, nm, na) = self.db.shape();
        for dd in d.saturating_sub(1)..=d {
            for dm in m.saturating_sub(1)..=m {
                for da in a.saturating_sub(1)..=a {
                    if let Some((key, heat)) = self.cache.remove(((dd * nm + dm) * na + da) as u64)
                    {
                        *self.density.entry(key).or_insert(0) += heat;
                    }
                }
            }
        }
        true
    }

    /// Closed-loop refinement: drain the hottest queued holes and re-run
    /// each through `fill` under the context's full retry/quarantine/chaos
    /// policy ([`DatabaseFill::rerun`]). A converged or recovered re-run
    /// repairs its node; a re-quarantined one leaves the hole masked (and
    /// re-queued by the next blocked query). The chaos case id is the flat
    /// grid-node index, so injected failures address refinement
    /// deterministically. Returns `(repaired, still_failing)` counts.
    pub fn refine_with(
        &mut self,
        fill: &DatabaseFill,
        beta: f64,
        cycles: usize,
        ctx: &mut ExecContext,
    ) -> (usize, usize) {
        let nodes = self.drain_refinement();
        let (_, nm, na) = self.db.shape();
        let (axes_d, axes_m, axes_a) = {
            let (d, m, a) = self.db.axes();
            (d.to_vec(), m.to_vec(), a.to_vec())
        };
        let mut repaired = 0;
        let mut failing = 0;
        for (d, m, a) in nodes {
            let case_id = ((d * nm + m) * na + a) as u64;
            let entry = fill.rerun(case_id, axes_d[d], axes_m[m], axes_a[a], beta, cycles, ctx);
            if entry.status.is_ok() {
                self.apply_refinement(d, m, a, entry.forces.force, entry.forces.moment);
                repaired += 1;
            } else {
                failing += 1;
            }
        }
        (repaired, failing)
    }
}

/// FNV-1a over the raw bits of a response stream — the replay parity
/// digest used by the server tests and `bench_database`.
pub fn digest_responses(responses: &[Result<Response, LookupError>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for r in responses {
        match r {
            Ok(resp) => {
                eat(1);
                for v in [resp.force, resp.moment] {
                    eat(v.x.to_bits());
                    eat(v.y.to_bits());
                    eat(v.z.to_bits());
                }
                eat(resp.degraded as u64);
            }
            Err(e) => {
                eat(2);
                match e {
                    LookupError::QuarantinedRegion { holes, .. } => {
                        eat(3);
                        eat(*holes as u64);
                    }
                    LookupError::NonFiniteQuery { .. } => eat(4),
                }
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use columbia_exec::Fallback;

    /// A synthetic hole-free table with a smooth analytic field.
    fn table(nd: usize, nm: usize, na: usize) -> AeroDatabase {
        let axis = |n: usize, lo: f64, hi: f64| -> Vec<f64> {
            (0..n)
                .map(|i| lo + (hi - lo) * i as f64 / (n - 1).max(1) as f64)
                .collect()
        };
        let (ds, ms, aas) = (axis(nd, -0.3, 0.3), axis(nm, 0.6, 3.0), axis(na, -0.1, 0.1));
        let mut force = Vec::new();
        let mut moment = Vec::new();
        for &d in &ds {
            for &m in &ms {
                for &a in &aas {
                    force.push(Vec3::new(0.1 * m * m, d * a, 2.0 * a + 0.05 * d));
                    moment.push(Vec3::new(0.0, -0.4 * a + 0.1 * d, 0.0));
                }
            }
        }
        AeroDatabase::from_axes(ds, ms, aas, force, moment).unwrap()
    }

    fn strict_policy(cache: usize) -> ServePolicy {
        ServePolicy {
            cache_capacity: Some(cache),
            fallback: Fallback::Strict,
            refine_budget: Some(4),
        }
    }

    #[test]
    fn served_answers_match_direct_lookup_exactly() {
        let db = table(3, 5, 4);
        let mut server = DatabaseServer::new(db.clone(), &strict_policy(8));
        let queries: Vec<Query> = (0..200)
            .map(|i| {
                let t = i as f64 / 199.0;
                Query {
                    deflection: -0.35 + 0.7 * t,
                    mach: 0.5 + 2.6 * t,
                    alpha: -0.12 + 0.24 * (1.0 - t),
                }
            })
            .collect();
        for (q, r) in queries.iter().zip(server.serve_batch(&queries)) {
            let (f, m) = db.lookup(q.deflection, q.mach, q.alpha);
            let r = r.expect("hole-free table never errors on finite queries");
            assert_eq!(r.force, f, "force mismatch at {q:?}");
            assert_eq!(r.moment, m, "moment mismatch at {q:?}");
            assert!(!r.degraded);
        }
    }

    #[test]
    fn lru_capacity_one_still_answers_transparently_and_evicts() {
        let db = table(3, 4, 3);
        let mut server = DatabaseServer::new(db.clone(), &strict_policy(1));
        // Alternate between two distinct cells so every probe misses.
        let qs = [
            Query {
                deflection: 0.0,
                mach: 0.8,
                alpha: 0.0,
            },
            Query {
                deflection: 0.0,
                mach: 2.5,
                alpha: 0.0,
            },
        ];
        for _ in 0..5 {
            for q in qs {
                let r = server.serve_one(q).unwrap();
                let (f, _) = db.lookup(q.deflection, q.mach, q.alpha);
                assert_eq!(r.force, f);
            }
        }
        let s = server.stats();
        assert_eq!(s.cache_hits, 0, "{s:?}");
        assert_eq!(s.cache_misses, 10, "{s:?}");
        assert_eq!(s.evictions, 9, "{s:?}");
        assert_eq!(server.cached_cells(), 1);
    }

    #[test]
    fn batch_dedup_answers_identical_queries_once() {
        let db = table(3, 4, 3);
        let mut server = DatabaseServer::new(db, &strict_policy(8));
        let q = Query {
            deflection: 0.1,
            mach: 1.7,
            alpha: 0.02,
        };
        let batch = vec![q; 100];
        let rs = server.serve_batch(&batch);
        assert!(rs.windows(2).all(|w| w[0] == w[1]));
        let s = server.stats();
        assert_eq!(s.queries, 100);
        assert_eq!(s.dedup_hits, 99);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 0, "dedup must bypass the cache entirely");
    }

    #[test]
    fn non_finite_queries_are_typed_errors_and_counted() {
        let db = table(2, 2, 2);
        let mut server = DatabaseServer::new(db, &strict_policy(4));
        let r = server.serve_one(Query {
            deflection: f64::NAN,
            mach: 1.0,
            alpha: 0.0,
        });
        assert!(matches!(r, Err(LookupError::NonFiniteQuery { .. })));
        assert_eq!(server.stats().errors, 1);
    }
}
