//! Automated Cartesian (Cart3D-style) analysis: geometry in, loads out.

use columbia_cartesian::{build_octree, extract_mesh, CartMesh, CutCellConfig, Geometry};
use columbia_euler::{EulerParams, EulerSolver, Forces};
use columbia_mg::{ConvergenceHistory, CycleParams};
use columbia_sfc::CurveKind;
use std::time::Instant;

/// A configured Cartesian analysis.
///
/// The entire chain — octree refinement around the watertight components,
/// cut-cell mesh extraction, SFC coarsening, multigrid solution, force
/// integration — runs without user intervention, which is what enables the
/// paper's 10^4..10^6-case database fills.
#[derive(Clone, Debug)]
pub struct CartAnalysis {
    /// Flow parameters.
    pub params: EulerParams,
    /// Octree resolution.
    pub min_level: u32,
    /// Maximum surface refinement.
    pub max_level: u32,
    /// Root-box padding factor.
    pub pad: f64,
    /// Space-filling curve (Peano-Hilbert preferred in 3-D).
    pub curve: CurveKind,
    /// Multigrid cycle settings.
    pub cycle: CycleParams,
}

impl Default for CartAnalysis {
    fn default() -> Self {
        CartAnalysis {
            params: EulerParams::default(),
            min_level: 3,
            max_level: 5,
            pad: 3.0,
            curve: CurveKind::Hilbert,
            cycle: CycleParams::default(),
        }
    }
}

impl CartAnalysis {
    /// Set wind-space parameters (Mach, alpha, beta in radians).
    pub fn wind(mut self, mach: f64, alpha: f64, beta: f64) -> Self {
        self.params.mach = mach;
        self.params.alpha = alpha;
        self.params.beta = beta;
        self
    }

    /// Set octree refinement depth.
    pub fn resolution(mut self, min_level: u32, max_level: u32) -> Self {
        self.min_level = min_level;
        self.max_level = max_level;
        self
    }

    /// Generate the cut-cell mesh for `geom` (reusable across wind cases).
    pub fn mesh(&self, geom: &Geometry) -> CartMesh {
        let config = CutCellConfig::around(geom, self.pad, self.min_level, self.max_level);
        let tree = build_octree(geom, &config);
        extract_mesh(&tree, geom, self.curve, 0.1)
    }

    /// Run on a pre-built mesh (database fills reuse one mesh for hundreds
    /// of wind-space cases).
    pub fn run_on_mesh(&self, mesh: CartMesh, max_cycles: usize) -> CartReport {
        let ncells = mesh.ncells();
        let ncut = mesh.ncut();
        let mut solver = EulerSolver::new(mesh, self.params);
        let history = solver.solve(&self.cycle, 1e-12, max_cycles);
        CartReport {
            forces: solver.forces(),
            history,
            ncells,
            ncut,
            level_sizes: solver.level_sizes(),
            mesh_seconds: 0.0,
            cells_per_minute: 0.0,
        }
    }

    /// Full pipeline: mesh generation + solve.
    pub fn run(&self, geom: &Geometry, max_cycles: usize) -> CartReport {
        let t0 = Instant::now();
        let mesh = self.mesh(geom);
        let mesh_seconds = t0.elapsed().as_secs_f64();
        let ncells = mesh.ncells();
        let mut report = self.run_on_mesh(mesh, max_cycles);
        report.mesh_seconds = mesh_seconds;
        report.cells_per_minute = ncells as f64 / (mesh_seconds / 60.0).max(1e-12);
        report
    }
}

/// Results of a Cartesian analysis.
#[derive(Clone, Debug)]
pub struct CartReport {
    /// Integrated pressure loads.
    pub forces: Forces,
    /// Residual history.
    pub history: ConvergenceHistory,
    /// Fine-mesh cell count.
    pub ncells: usize,
    /// Cut-cell count.
    pub ncut: usize,
    /// Cells per multigrid level.
    pub level_sizes: Vec<usize>,
    /// Mesh generation wall-clock (seconds).
    pub mesh_seconds: f64,
    /// Mesh generation rate (the paper quotes 3-5M cells/minute on a
    /// 1.5 GHz Itanium2; see EXPERIMENTS.md for measured values here).
    pub cells_per_minute: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use columbia_cartesian::TriMesh;

    fn sphere() -> Geometry {
        let prof: Vec<(f64, f64)> = (0..=10)
            .map(|i| {
                let t = std::f64::consts::PI * i as f64 / 10.0;
                (-0.3 * t.cos(), 0.3 * t.sin())
            })
            .collect();
        Geometry::new(&[TriMesh::body_of_revolution(&prof, 10)])
    }

    #[test]
    fn full_pipeline_runs_and_converges() {
        let report = CartAnalysis::default()
            .wind(0.5, 0.0, 0.0)
            .resolution(3, 4)
            .run(&sphere(), 20);
        assert!(report.ncells > 500);
        assert!(report.ncut > 50);
        assert!(report.history.orders_reduced() > 1.0);
        assert!(report.cells_per_minute > 0.0);
    }

    #[test]
    fn mesh_reuse_across_wind_cases() {
        let a = CartAnalysis::default().resolution(3, 4);
        let mesh = a.mesh(&sphere());
        let r1 = a.clone().wind(0.4, 0.0, 0.0).run_on_mesh(mesh.clone(), 10);
        let r2 = a.wind(2.0, 0.05, 0.0).run_on_mesh(mesh, 10);
        // Supersonic drag far exceeds the subsonic value.
        assert!(r2.forces.force.x > r1.forces.force.x);
    }
}
