//! The Columbia scaling-study driver.
//!
//! Wraps the machine model and the workload profiles into the study shapes
//! the paper's evaluation section uses: speedup vs CPU count for a given
//! fabric / programming model, and relative-efficiency comparisons at a
//! fixed CPU count.

use columbia_machine::{
    simulate_cycle, speedup_series, CycleProfile, Fabric, MachineConfig, RunConfig, ScalingPoint,
};

/// One row of a study table.
#[derive(Clone, Debug)]
pub struct StudyRow {
    /// Series label ("NUMAlink, 1 OMP thread").
    pub label: String,
    /// Scaling points over the CPU counts.
    pub points: Vec<ScalingPoint>,
}

/// A configured scaling study over one workload profile.
#[derive(Clone)]
pub struct PerformanceStudy {
    /// The machine.
    pub machine: MachineConfig,
    /// The workload.
    pub profile: CycleProfile,
    /// CPU counts to evaluate.
    pub cpu_counts: Vec<usize>,
}

impl PerformanceStudy {
    /// Study on the 4-node Columbia "vortex" subsystem.
    pub fn new(profile: CycleProfile, cpu_counts: &[usize]) -> Self {
        PerformanceStudy {
            machine: MachineConfig::columbia_vortex(),
            profile,
            cpu_counts: cpu_counts.to_vec(),
        }
    }

    /// Speedup series for one run-configuration family.
    pub fn series(&self, label: &str, make_run: impl Fn(usize) -> RunConfig) -> StudyRow {
        StudyRow {
            label: label.to_string(),
            points: speedup_series(&self.profile, &self.machine, &self.cpu_counts, make_run),
        }
    }

    /// Compare fabrics x OpenMP thread counts (the paper's Figures 15-18
    /// series families).
    pub fn fabric_thread_matrix(
        &self,
        fabrics: &[(Fabric, &str)],
        threads: &[usize],
    ) -> Vec<StudyRow> {
        let mut rows = Vec::new();
        for &(fabric, fname) in fabrics {
            for &t in threads {
                let label = format!("{fname}: {t} OMP thread{}", if t == 1 { "" } else { "s" });
                rows.push(self.series(&label, move |n| RunConfig::hybrid(n, fabric, t)));
            }
        }
        rows
    }

    /// Relative efficiency at a fixed CPU count vs a baseline run
    /// (Figure 15: 128 CPUs, NUMAlink pure MPI = 1.0).
    pub fn relative_efficiency(
        &self,
        ncpus: usize,
        baseline: RunConfig,
        cases: &[(String, RunConfig)],
    ) -> Vec<(String, f64)> {
        let base = simulate_cycle(&self.profile, &self.machine, &baseline)
            .expect("baseline run infeasible")
            .seconds;
        cases
            .iter()
            .map(|(label, run)| {
                assert_eq!(run.ncpus, ncpus);
                let eff = match simulate_cycle(&self.profile, &self.machine, run) {
                    Ok(b) => base / b.seconds,
                    Err(_) => f64::NAN,
                };
                (label.clone(), eff)
            })
            .collect()
    }

    /// Format a set of rows as an aligned text table (figure binaries
    /// print these).
    pub fn format_table(rows: &[StudyRow], cpu_counts: &[usize]) -> String {
        let mut s = String::new();
        s.push_str(&format!("{:<34}", "series \\ CPUs"));
        for &n in cpu_counts {
            s.push_str(&format!("{n:>10}"));
        }
        s.push('\n');
        for row in rows {
            s.push_str(&format!("{:<34}", row.label));
            for p in &row.points {
                match p.speedup {
                    Some(sp) => s.push_str(&format!("{sp:>10.0}")),
                    None => s.push_str(&format!("{:>10}", "-")),
                }
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columbia_machine::profile::paper_nsu3d_72m;
    use columbia_machine::NSU3D_CPU_COUNTS;

    fn study() -> PerformanceStudy {
        PerformanceStudy::new(paper_nsu3d_72m(), &NSU3D_CPU_COUNTS)
    }

    #[test]
    fn numalink_series_is_superlinear() {
        let s = study();
        let row = s.series("NUMAlink", |n| RunConfig::mpi(n, Fabric::NumaLink4));
        let last = row.points.last().unwrap();
        assert!(last.speedup.unwrap() > last.ncpus as f64);
    }

    #[test]
    fn matrix_produces_all_series() {
        let s = study();
        let rows = s.fabric_thread_matrix(
            &[
                (Fabric::NumaLink4, "NUMAlink"),
                (Fabric::InfiniBand, "InfiniBand"),
            ],
            &[1, 2],
        );
        assert_eq!(rows.len(), 4);
        let table = PerformanceStudy::format_table(&rows, &NSU3D_CPU_COUNTS);
        assert!(table.contains("NUMAlink: 1 OMP thread"));
        // IB pure MPI at 2008 must be marked infeasible.
        let ib1 = &rows[2];
        assert!(ib1.points.last().unwrap().speedup.is_none());
    }

    #[test]
    fn relative_efficiency_matches_figure15_shape() {
        let s = study();
        let base = RunConfig::mpi(128, Fabric::NumaLink4);
        let cases = vec![
            (
                "NUMAlink 2 threads".to_string(),
                RunConfig::hybrid(128, Fabric::NumaLink4, 2),
            ),
            (
                "NUMAlink 4 threads".to_string(),
                RunConfig::hybrid(128, Fabric::NumaLink4, 4),
            ),
            (
                "InfiniBand 1 thread".to_string(),
                RunConfig::mpi(128, Fabric::InfiniBand),
            ),
        ];
        let eff = s.relative_efficiency(128, base, &cases);
        // Paper: 98.4%, 87.2%, ~95.7%.
        assert!((eff[0].1 - 0.984).abs() < 0.03, "{:?}", eff);
        assert!((eff[1].1 - 0.872).abs() < 0.04, "{:?}", eff);
        assert!(eff[2].1 > 0.90 && eff[2].1 <= 1.001, "{:?}", eff);
    }
}
