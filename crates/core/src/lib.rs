//! Public umbrella API for the Columbia reproduction.
//!
//! The paper's workflow (§I, §IV) combines two simulation packages:
//!
//! * [`FlowAnalysis`] — the high-fidelity NSU3D-style RANS analysis used at
//!   the most important flight conditions and for design optimisation;
//! * [`CartAnalysis`] — the fully automated Cart3D-style inviscid analysis
//!   used to sweep the entire flight envelope;
//! * [`DatabaseFill`] — the automated parameter-study driver that fills
//!   aero-performance databases over configuration-space (control-surface
//!   deflections) x wind-space (Mach, alpha, sideslip) grids;
//! * [`PerformanceStudy`] — the Columbia scaling-study driver that replays
//!   measured cycle workloads through the machine model to regenerate the
//!   paper's scalability figures.

pub mod analysis;
pub mod cart_analysis;
pub mod database;
pub mod flight;
pub mod optimize;
pub mod performance;
pub mod server;

pub use analysis::{FlowAnalysis, FlowReport};
pub use cart_analysis::{CartAnalysis, CartReport};
pub use database::{
    CaseStatus, DatabaseEntry, DatabaseFill, DatabaseSpec, ExecContext, FillPolicy,
};
pub use flight::{AeroDatabase, LookupError, RigidState, SixDof, TableError};
pub use optimize::{golden_section, trim_bisection, Optimum};
pub use performance::{PerformanceStudy, StudyRow};
pub use server::{
    digest_responses, DatabaseServer, Fallback, FallbackKind, Query, Response, ServePolicy,
    ServerStats,
};
