//! Shared infrastructure for the kernel microbenchmarks: the SoA/SIMD
//! batch kernels of `columbia_linalg::soa` against their scalar
//! references, at several working-set sizes spanning the
//! `columbia-machine` cache model's L3 crossover.
//!
//! Four kernels, matching the solvers' hot loops:
//!
//! * **point_lu6** — per-point 6x6 block factorise + solve, the RANS
//!   point-implicit update (`RansLevel::solve_points_*`);
//! * **line_tridiag6** — block-tridiagonal line solves of length 32, the
//!   RANS line-implicit smoother (`RansLevel::solve_lines_*`);
//! * **rk_axpy** — 5-wide state AXPY, the Cart3D Runge-Kutta stage
//!   update (`EulerLevel::apply_stage`);
//! * **resident_sweep6** — full `RansLevel::smooth_sweep` passes on a
//!   wing mesh, plane-resident state against a convert-at-boundary
//!   baseline that round-trips `u` through AoS around every sweep (the
//!   storage layout the plane-resident migration replaced). Here the
//!   "scalar" column is the conversion baseline and "simd" is the
//!   resident path; both run the same batched kernels, so the speedup
//!   isolates the storage layout.
//!
//! Every scalar/batch runner pair is bit-identical by construction (the
//! batch kernels replay the scalar operation order per lane), so the
//! deterministic section of `bench_kernels` pins FNV digests of both
//! outputs and asserts they match; wall-clock comparisons ride in the
//! `measured` section on exactly the same data.

use columbia_linalg::soa::{vec_batch_zero, SoaStates};
use columbia_linalg::{flops, BlockBatch, BlockMat, BlockTridiag, TridiagBatch, LANES};
use columbia_machine::MachineConfig;
use columbia_mesh::{wing_mesh, WingMeshSpec};
use columbia_rans::level::SolverParams;
use columbia_rans::state::{State, NVARS};
use columbia_rans::RansLevel;
use columbia_rt::env::KernelKind;
use columbia_rt::{derive_seed, Pcg32};

/// Block size: the RANS mean-flow + turbulence system (6 variables).
pub const NB: usize = 6;
/// Euler state width for the AXPY kernel.
pub const NVARS5: usize = 5;
/// Implicit-line length for the tridiagonal kernel (a paper-typical
/// boundary-layer line).
pub const LINE_LEN: usize = 32;

/// Point counts for `point_lu6`: ~384 B/point, so the sweep crosses the
/// columbia cache model's 9 MB L3 between 32768 (~12 MB in flight with
/// LU scratch) and 262144.
pub const POINT_SIZES: [usize; 4] = [512, 4096, 32768, 262144];
/// Line counts for `line_tridiag6` (each line ~30 KB of blocks).
pub const LINE_COUNTS: [usize; 3] = [16, 128, 1024];
/// Cell counts for `rk_axpy` (80 B/cell touched).
pub const AXPY_SIZES: [usize; 3] = [4096, 65536, 1_048_576];

/// FNV-1a over the raw bits of a state array; the parity digest.
pub fn digest_states<const N: usize>(xs: &[[f64; N]]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for row in xs {
        for &v in row {
            h ^= v.to_bits();
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Roofline-predicted sustained GFLOP/s of one Columbia CPU at the given
/// working-set size (the machine model's logistic L3 transition).
pub fn predicted_gflops(working_set_bytes: f64) -> f64 {
    MachineConfig::columbia_vortex().effective_rate(working_set_bytes) / 1e9
}

fn random_state<const N: usize>(rng: &mut Pcg32, scale: f64) -> [f64; N] {
    std::array::from_fn(|_| scale * (rng.gen_f64() - 0.5))
}

/// A random diagonally dominant block: always comfortably non-singular,
/// so both paths take the success branch on every point.
fn dominant_block(rng: &mut Pcg32, dominance: f64) -> BlockMat<NB> {
    let mut m = BlockMat::from_fn(|_, _| rng.gen_f64() - 0.5);
    m.add_diagonal(dominance);
    m
}

// ---------------------------------------------------------------------------
// point_lu6
// ---------------------------------------------------------------------------

/// Input set for the point-implicit kernel.
pub struct PointSet {
    /// Per-point diagonal blocks.
    pub blocks: Vec<BlockMat<NB>>,
    /// Per-point right-hand sides.
    pub rhs: Vec<[f64; NB]>,
}

impl PointSet {
    /// Bytes a single pass touches: block + rhs + solution per point.
    pub fn working_set_bytes(&self) -> u64 {
        (self.blocks.len() * (NB * NB + 2 * NB) * 8) as u64
    }
}

/// Deterministically seeded point set.
pub fn point_set(n: usize, seed: u64) -> PointSet {
    let mut rng = Pcg32::seed_from_u64(derive_seed(seed, 1));
    let blocks = (0..n).map(|_| dominant_block(&mut rng, 4.0)).collect();
    let rhs = (0..n).map(|_| random_state(&mut rng, 1.0)).collect();
    PointSet { blocks, rhs }
}

/// Scalar reference: factorise and solve each point independently.
pub fn point_lu_scalar(set: &PointSet, out: &mut [[f64; NB]]) {
    for ((b, r), x) in set.blocks.iter().zip(&set.rhs).zip(out.iter_mut()) {
        let lu = b.lu().expect("dominant block must factorise");
        *x = lu.solve(r);
    }
}

/// Batched path: gather lanes of [`LANES`] points, factorise and solve
/// lane-parallel, scatter. Bit-identical to the scalar path per lane.
pub fn point_lu_simd(set: &PointSet, out: &mut [[f64; NB]]) {
    let n = set.blocks.len();
    let mut c = 0;
    while c < n {
        let nl = LANES.min(n - c);
        let batch = BlockBatch::from_lanes(&set.blocks[c..c + nl]);
        let mut rhs = vec_batch_zero::<NB>();
        for (l, r) in set.rhs[c..c + nl].iter().enumerate() {
            for (row, &v) in rhs.iter_mut().zip(r.iter()) {
                row[l] = v;
            }
        }
        let lu = batch.lu(nl);
        assert!(lu.all_ok(nl), "dominant block must factorise");
        let x = lu.solve(&rhs, nl);
        for l in 0..nl {
            for k in 0..NB {
                out[c + l][k] = x[k][l];
            }
        }
        c += nl;
    }
}

/// Nominal FLOPs per pass over `n` points (factorise + solve each).
pub fn point_lu_pass_flops(n: usize) -> u64 {
    n as u64 * (flops::lu_flops(NB as u64) + flops::solve_flops(NB as u64))
}

// ---------------------------------------------------------------------------
// line_tridiag6
// ---------------------------------------------------------------------------

/// Input set for the line-implicit kernel: `nlines` block-tridiagonal
/// lines, all of length [`LINE_LEN`].
pub struct LineSet {
    /// `lower[line][row]`, rows `1..LINE_LEN` used.
    pub lower: Vec<Vec<BlockMat<NB>>>,
    /// `diag[line][row]`.
    pub diag: Vec<Vec<BlockMat<NB>>>,
    /// `upper[line][row]`, rows `0..LINE_LEN - 1` used.
    pub upper: Vec<Vec<BlockMat<NB>>>,
    /// `rhs[line][row]`.
    pub rhs: Vec<Vec<[f64; NB]>>,
}

impl LineSet {
    /// Bytes a single pass touches: three block diagonals + rhs +
    /// solution per row.
    pub fn working_set_bytes(&self) -> u64 {
        (self.diag.len() * LINE_LEN * (3 * NB * NB + 2 * NB) * 8) as u64
    }
}

/// Deterministically seeded line set: dominant diagonal blocks with
/// weaker couplings, so every Schur complement stays well conditioned.
pub fn line_set(nlines: usize, seed: u64) -> LineSet {
    let mut rng = Pcg32::seed_from_u64(derive_seed(seed, 2));
    let mut set = LineSet {
        lower: Vec::with_capacity(nlines),
        diag: Vec::with_capacity(nlines),
        upper: Vec::with_capacity(nlines),
        rhs: Vec::with_capacity(nlines),
    };
    for _ in 0..nlines {
        set.diag.push(
            (0..LINE_LEN)
                .map(|_| dominant_block(&mut rng, 8.0))
                .collect(),
        );
        set.lower.push(
            (0..LINE_LEN)
                .map(|_| BlockMat::from_fn(|_, _| 0.25 * (rng.gen_f64() - 0.5)))
                .collect(),
        );
        set.upper.push(
            (0..LINE_LEN)
                .map(|_| BlockMat::from_fn(|_, _| 0.25 * (rng.gen_f64() - 0.5)))
                .collect(),
        );
        set.rhs
            .push((0..LINE_LEN).map(|_| random_state(&mut rng, 1.0)).collect());
    }
    set
}

/// Scalar reference: the sequential `BlockTridiag` solve, line by line.
pub fn line_tridiag_scalar(
    set: &LineSet,
    scratch: &mut BlockTridiag<NB>,
    out: &mut [Vec<[f64; NB]>],
) {
    for (line, x) in out.iter_mut().enumerate().take(set.diag.len()) {
        scratch.reset(LINE_LEN);
        for i in 0..LINE_LEN {
            *scratch.diag_mut(i) = set.diag[line][i];
            *scratch.rhs_mut(i) = set.rhs[line][i];
            if i > 0 {
                *scratch.lower_mut(i) = set.lower[line][i];
            }
            if i + 1 < LINE_LEN {
                *scratch.upper_mut(i) = set.upper[line][i];
            }
        }
        scratch.solve_into(x).expect("dominant line must solve");
    }
}

/// Batched path: [`LANES`] lines solved lane-parallel per Thomas sweep.
/// Bit-identical to the scalar path per lane.
pub fn line_tridiag_simd(
    set: &LineSet,
    scratch: &mut TridiagBatch<NB>,
    out: &mut [Vec<[f64; NB]>],
) {
    let nlines = set.diag.len();
    let mut x = vec![vec_batch_zero::<NB>(); LINE_LEN];
    let mut c = 0;
    while c < nlines {
        let nl = LANES.min(nlines - c);
        scratch.reset(LINE_LEN, nl);
        for l in 0..nl {
            let line = c + l;
            for i in 0..LINE_LEN {
                scratch.set_diag(i, l, &set.diag[line][i]);
                scratch.set_rhs(i, l, &set.rhs[line][i]);
                if i > 0 {
                    scratch.set_lower(i, l, &set.lower[line][i]);
                }
                if i + 1 < LINE_LEN {
                    scratch.set_upper(i, l, &set.upper[line][i]);
                }
            }
        }
        let ok = scratch.solve_into(&mut x);
        assert!(ok.iter().take(nl).all(|&o| o), "dominant line must solve");
        for l in 0..nl {
            for i in 0..LINE_LEN {
                for k in 0..NB {
                    out[c + l][i][k] = x[i][k][l];
                }
            }
        }
        c += nl;
    }
}

/// Digest of a per-line solution set.
pub fn digest_lines(out: &[Vec<[f64; NB]>]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for line in out {
        for row in line {
            for &v in row {
                h ^= v.to_bits();
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

// ---------------------------------------------------------------------------
// rk_axpy
// ---------------------------------------------------------------------------

/// Input set for the Runge-Kutta stage AXPY.
pub struct AxpySet {
    /// Residual-like operand.
    pub x: Vec<[f64; NVARS5]>,
    /// Initial state the pass updates a copy of.
    pub y0: Vec<[f64; NVARS5]>,
}

impl AxpySet {
    /// Bytes a single pass touches: read `x`, read-modify-write `y`.
    pub fn working_set_bytes(&self) -> u64 {
        (self.x.len() * 2 * NVARS5 * 8) as u64
    }
}

/// Deterministically seeded AXPY operands.
pub fn axpy_set(n: usize, seed: u64) -> AxpySet {
    let mut rng = Pcg32::seed_from_u64(derive_seed(seed, 3));
    let x = (0..n).map(|_| random_state(&mut rng, 1.0)).collect();
    let y0 = (0..n).map(|_| random_state(&mut rng, 1.0)).collect();
    AxpySet { x, y0 }
}

/// Scalar reference: the seed solvers' straight-line per-cell update.
pub fn axpy_scalar(a: f64, x: &[[f64; NVARS5]], y: &mut [[f64; NVARS5]]) {
    for (xi, yi) in x.iter().zip(y.iter_mut()) {
        for k in 0..NVARS5 {
            yi[k] += a * xi[k];
        }
    }
    flops::add(flops::axpy_flops((x.len() * NVARS5) as u64));
}

/// Chunked path: `vecops::axpy` over the flattened planes. Element-wise,
/// so trivially bit-identical to the scalar reference.
pub fn axpy_simd(a: f64, x: &[[f64; NVARS5]], y: &mut [[f64; NVARS5]]) {
    columbia_linalg::vecops::axpy(a, x, y);
}

/// Nominal FLOPs per pass over `n` cells.
pub fn axpy_pass_flops(n: usize) -> u64 {
    flops::axpy_flops((n * NVARS5) as u64)
}

// ---------------------------------------------------------------------------
// resident_sweep6
// ---------------------------------------------------------------------------

/// Target point counts for `resident_sweep6`: one comfortably in-cache
/// size and one at the paper's per-CPU working set (~100k vertices,
/// tens of MB of level state — well past the L3 crossover).
pub const SWEEP_POINTS: [usize; 2] = [8_000, 100_000];
/// Smoothing sweeps per timed pass.
pub const SWEEP_PASSES: usize = 2;

/// A freshly initialised RANS level on the jitter-free wing mesh, batched
/// kernel path. Both sweep variants run on levels built exactly like
/// this, so the comparison isolates the storage layout.
pub fn sweep_level(target_points: usize) -> RansLevel {
    let mesh = wing_mesh(&WingMeshSpec {
        jitter: 0.0,
        ..WingMeshSpec::with_target_points(target_points)
    });
    let params = SolverParams {
        mach: 0.5,
        kernel: Some(KernelKind::Simd),
        ..Default::default()
    };
    let mut lvl = RansLevel::new(mesh, params);
    lvl.apply_bcs();
    lvl
}

/// Rewind a level to its post-construction state so every timed pass
/// starts from identical inputs (and identical FP history).
pub fn sweep_reset(lvl: &mut RansLevel) {
    let fs = lvl.fs;
    lvl.u.fill_with(&fs);
    lvl.forcing.fill_zero();
    lvl.cfl_now = lvl.params.cfl_start.min(lvl.params.cfl);
    lvl.apply_bcs();
}

/// Plane-resident pass: [`SWEEP_PASSES`] smoothing sweeps straight on the
/// level's resident `SoaStates` planes. No conversions anywhere.
pub fn sweep_resident(lvl: &mut RansLevel) {
    for _ in 0..SWEEP_PASSES {
        lvl.smooth_sweep();
    }
}

/// Convert-at-boundary baseline: the pre-migration layout kept solver
/// state in AoS between phases, so every batched kernel and every ghost
/// exchange converted on entry and exit. Modelled here by round-tripping
/// `u`, the gradients and the residual through AoS buffers at each phase
/// boundary of the sweep — the same sweeps (round-trips are bit-exact),
/// plus the conversion tax the resident layout removed.
pub fn sweep_convert_at_boundary(
    lvl: &mut RansLevel,
    u_aos: &mut Vec<State>,
    res_aos: &mut Vec<State>,
) {
    for _ in 0..SWEEP_PASSES {
        lvl.u = SoaStates::from_aos(u_aos);
        lvl.compute_residual();
        let grad_aos = lvl.grad_mut().to_aos();
        *lvl.grad_mut() = SoaStates::from_aos(&grad_aos);
        *res_aos = lvl.res.to_aos();
        lvl.res = SoaStates::from_aos(res_aos);
        lvl.assemble_diagonal();
        lvl.solve_implicit();
        *u_aos = lvl.u.to_aos();
        *res_aos = lvl.res.to_aos();
    }
}

/// Bytes one smoothing sweep touches: the four state fields + gradients
/// + diagonal blocks + lamsum per vertex, plus the edge list.
pub fn sweep_working_set_bytes(lvl: &RansLevel) -> u64 {
    let nv = lvl.mesh.nvertices() as u64;
    let ne = lvl.mesh.nedges() as u64;
    nv * ((4 * NVARS as u64 + 9 + NVARS as u64 * NVARS as u64 + 1) * 8) + ne * 40
}

/// Nominal FLOPs of one resident pass, measured off the level's own
/// counter (the sweep mixes too many phases for a closed form).
pub fn sweep_pass_flops(lvl: &mut RansLevel) -> u64 {
    sweep_reset(lvl);
    lvl.flops.take();
    sweep_resident(lvl);
    lvl.flops.take()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_lu_paths_are_bit_identical_and_flop_matched() {
        for &n in &[7usize, 64] {
            let set = point_set(n, 42);
            let mut a = vec![[0.0; NB]; n];
            let mut b = vec![[0.0; NB]; n];
            flops::take();
            point_lu_scalar(&set, &mut a);
            let fa = flops::take();
            point_lu_simd(&set, &mut b);
            let fb = flops::take();
            assert_eq!(digest_states(&a), digest_states(&b));
            assert_eq!(fa, point_lu_pass_flops(n));
            // The batch counts padding lanes in the final partial batch.
            assert!(fb >= fa, "{fb} < {fa}");
        }
    }

    #[test]
    fn line_tridiag_paths_are_bit_identical() {
        let nlines = 6; // one full batch + one partial
        let set = line_set(nlines, 42);
        let mut a = vec![vec![[0.0; NB]; LINE_LEN]; nlines];
        let mut b = vec![vec![[0.0; NB]; LINE_LEN]; nlines];
        let mut scalar_scratch = BlockTridiag::new();
        let mut batch_scratch = TridiagBatch::new();
        line_tridiag_scalar(&set, &mut scalar_scratch, &mut a);
        line_tridiag_simd(&set, &mut batch_scratch, &mut b);
        assert_eq!(digest_lines(&a), digest_lines(&b));
    }

    #[test]
    fn axpy_paths_are_bit_identical() {
        let set = axpy_set(1003, 42);
        let mut a = set.y0.clone();
        let mut b = set.y0.clone();
        axpy_scalar(0.37, &set.x, &mut a);
        axpy_simd(0.37, &set.x, &mut b);
        assert_eq!(digest_states(&a), digest_states(&b));
    }

    #[test]
    fn sweep_variants_are_bit_identical() {
        let mut lvl = sweep_level(900);
        sweep_reset(&mut lvl);
        sweep_resident(&mut lvl);
        let resident_u = digest_states(&lvl.u.to_aos());
        let resident_res = digest_states(&lvl.res.to_aos());
        sweep_reset(&mut lvl);
        let mut u_aos = lvl.u.to_aos();
        let mut res_aos = lvl.res.to_aos();
        sweep_convert_at_boundary(&mut lvl, &mut u_aos, &mut res_aos);
        assert_eq!(resident_u, digest_states(&u_aos));
        assert_eq!(resident_res, digest_states(&res_aos));
    }

    #[test]
    fn predicted_rate_shows_the_cache_crossover() {
        let small = predicted_gflops(64.0 * 1024.0);
        let big = predicted_gflops(128.0 * 1024.0 * 1024.0);
        assert!(small > big, "in-cache rate must exceed streaming rate");
    }
}
