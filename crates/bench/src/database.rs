//! Database-server storm benchmark: seeded query storms against a filled
//! aero-database served by `columbia_core::server::DatabaseServer`, with a
//! closed refinement loop over an injected-hole table.
//!
//! Everything in [`database_storm_section`] is deterministic — synthetic
//! tables, seeded storms, typed policies resolved without the environment —
//! so the section is byte-identical across runs and machines; that is the
//! `bench_database --stable` CI smoke check. Wall-clock throughput lives
//! only in the measured section of the `bench_database` binary.

use columbia_core::{
    digest_responses, AeroDatabase, CaseStatus, DatabaseEntry, DatabaseServer, Fallback,
    LookupError, Query, Response, ServePolicy,
};
use columbia_euler::Forces;
use columbia_mesh::Vec3;
use columbia_rt::{derive_seed, Json, Pcg32};

/// Grid shape `(nd, nm, na)` of the synthetic database. Sized so the
/// flattened tables (~7.8 MB) dwarf the last-level cache: an uncached
/// trilinear lookup pays 16 scattered table reads, which is exactly the
/// cost the server's hot-region cache and batch dedup amortise away.
pub const DB_SHAPE: (usize, usize, usize) = (17, 97, 49);

/// Base seed for every storm (query streams derive sub-seeds from it).
pub const STORM_SEED: u64 = 0xDB_5E_ED;

/// Queries per batch — one [`DatabaseServer::serve_batch`] call.
pub const BATCH_LEN: usize = 4096;

/// Distinct flight conditions in the hot storm, sampled [`BATCH_LEN`]
/// times per batch (a few dozen concurrent trajectories dwelling at fixed
/// table conditions).
pub const HOT_DISTINCT: usize = 32;

/// Batches per storm in the deterministic section.
pub const STORM_BATCHES: usize = 8;

/// Holes punched into the degraded-storm table.
pub const STORM_HOLES: usize = 12;

/// The analytic load field the synthetic database tabulates: smooth,
/// anisotropic, and non-separable so trilinear weights all matter.
pub fn analytic_loads(d: f64, m: f64, a: f64) -> (Vec3, Vec3) {
    let force = Vec3::new(
        0.12 * m * m + 0.4 * a * a + 0.05 * (3.0 * d).sin(),
        0.3 * d * a + 0.01 * (m - 1.0),
        2.1 * a + 0.07 * d + 0.02 * a * m,
    );
    let moment = Vec3::new(
        0.02 * d,
        -0.45 * a + 0.11 * d - 0.01 * (a * m).cos() * a,
        0.005 * d * m,
    );
    (force, moment)
}

/// Breakpoint axes of the synthetic grid.
pub fn storm_axes() -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let (nd, nm, na) = DB_SHAPE;
    let axis = |n: usize, lo: f64, hi: f64| -> Vec<f64> {
        (0..n)
            .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
            .collect()
    };
    (
        axis(nd, -0.4, 0.4),
        axis(nm, 0.6, 3.0),
        axis(na, -0.12, 0.12),
    )
}

/// Synthetic fill output: one converged [`DatabaseEntry`] per grid node of
/// [`DB_SHAPE`], loads from [`analytic_loads`].
pub fn synthetic_entries() -> Vec<DatabaseEntry> {
    let (ds, ms, aas) = storm_axes();
    let mut out = Vec::with_capacity(ds.len() * ms.len() * aas.len());
    for &d in &ds {
        for &m in &ms {
            for &a in &aas {
                let (force, moment) = analytic_loads(d, m, a);
                out.push(DatabaseEntry {
                    deflection: d,
                    mach: m,
                    alpha: a,
                    beta: 0.0,
                    forces: Forces { force, moment },
                    orders: 6.0,
                    status: CaseStatus::Converged,
                });
            }
        }
    }
    out
}

/// Quarantine `nholes` deterministic entries (placeholder zero loads, the
/// exact failure mode a lost fill case leaves behind). Returns the flat
/// node indices of the holes.
pub fn poison_entries(entries: &mut [DatabaseEntry], nholes: usize, seed: u64) -> Vec<usize> {
    let mut rng = Pcg32::seed_from_u64(derive_seed(seed, 0x401E));
    let mut holes = Vec::new();
    while holes.len() < nholes {
        let i = rng.gen_range(0..entries.len());
        if holes.contains(&i) {
            continue;
        }
        holes.push(i);
        entries[i].forces = Forces::default();
        entries[i].orders = 0.0;
        entries[i].status = CaseStatus::Quarantined {
            attempts: 3,
            reason: "injected node loss".into(),
        };
    }
    holes.sort_unstable();
    holes
}

/// Envelope-wide storm: every query lands somewhere new (worst case for
/// the cache, the baseline for the hot-storm speedup).
pub fn cold_queries(n: usize, seed: u64) -> Vec<Query> {
    let (ds, ms, aas) = storm_axes();
    let mut rng = Pcg32::seed_from_u64(derive_seed(seed, 0xC01D));
    let span = |v: &[f64]| (v[0], *v.last().unwrap());
    let ((d0, d1), (m0, m1), (a0, a1)) = (span(&ds), span(&ms), span(&aas));
    (0..n)
        .map(|_| Query {
            // 5% overhang each side exercises the clamp path too.
            deflection: rng.gen_range(d0 - 0.05 * (d1 - d0)..d1 + 0.05 * (d1 - d0)),
            mach: rng.gen_range(m0 - 0.05 * (m1 - m0)..m1 + 0.05 * (m1 - m0)),
            alpha: rng.gen_range(a0 - 0.05 * (a1 - a0)..a1 + 0.05 * (a1 - a0)),
        })
        .collect()
}

/// Dwell storm: `n` samples drawn from [`HOT_DISTINCT`] fixed flight
/// conditions across the envelope — the access pattern of a batch of
/// concurrent trajectories / Monte Carlo particles, where each batch
/// repeats a small distinct query set the server's cache and dedup
/// collapse.
pub fn hot_queries(n: usize, seed: u64) -> Vec<Query> {
    let distinct = cold_queries(HOT_DISTINCT, derive_seed(seed, 0x407));
    let mut rng = Pcg32::seed_from_u64(derive_seed(seed, 0x408));
    (0..n)
        .map(|_| distinct[rng.gen_range(0..distinct.len())])
        .collect()
}

/// Hole-seeking storm: queries jittered around quarantined nodes so most
/// stencils are blocked — the degraded-service worst case.
pub fn degraded_queries(db: &AeroDatabase, n: usize, seed: u64) -> Vec<Query> {
    let holes = db.hole_coords();
    assert!(!holes.is_empty(), "degraded storm needs a holed table");
    let (ds, ms, aas) = db.axes();
    let (ds, ms, aas) = (ds.to_vec(), ms.to_vec(), aas.to_vec());
    let mut rng = Pcg32::seed_from_u64(derive_seed(seed, 0xDE64));
    (0..n)
        .map(|_| {
            let (d, m, a) = holes[rng.gen_range(0..holes.len())];
            let jitter = |v: &[f64], i: usize, rng: &mut Pcg32| {
                let lo = v[i.saturating_sub(1)];
                let hi = v[(i + 1).min(v.len() - 1)];
                rng.gen_range(lo..=hi)
            };
            Query {
                deflection: jitter(&ds, d, &mut rng),
                mach: jitter(&ms, m, &mut rng),
                alpha: jitter(&aas, a, &mut rng),
            }
        })
        .collect()
}

/// Serve a storm in [`BATCH_LEN`] batches, returning all responses in
/// order.
pub fn serve_storm(
    server: &mut DatabaseServer,
    queries: &[Query],
) -> Vec<Result<Response, LookupError>> {
    let mut out = Vec::with_capacity(queries.len());
    for batch in queries.chunks(BATCH_LEN) {
        out.extend(server.serve_batch(batch));
    }
    out
}

/// The strict, environment-independent policy every storm runs under.
pub fn storm_policy(fallback: Fallback) -> ServePolicy {
    ServePolicy {
        cache_capacity: Some(512),
        fallback,
        refine_budget: Some(4),
    }
}

fn stats_json(server: &DatabaseServer) -> Json {
    let s = server.stats();
    Json::obj([
        ("queries", Json::UInt(s.queries)),
        ("cache_hits", Json::UInt(s.cache_hits)),
        ("cache_misses", Json::UInt(s.cache_misses)),
        ("dedup_hits", Json::UInt(s.dedup_hits)),
        ("evictions", Json::UInt(s.evictions)),
        ("degraded", Json::UInt(s.degraded)),
        ("errors", Json::UInt(s.errors)),
        ("refined", Json::UInt(s.refined)),
    ])
}

/// The deterministic section: cold and hot storms on a clean table, then
/// the closed refinement loop on a holed table — a degraded storm under
/// the nearest-valid policy, hottest holes drained and "re-run" (the
/// analytic truth stands in for a converged [`columbia_core::DatabaseFill`]
/// re-run; every third node fails its first re-run to exercise re-queue),
/// repeated until the table is hole-free and the storm digest matches the
/// clean table's answers for the same stream.
pub fn database_storm_section() -> Json {
    let entries = synthetic_entries();
    let db = AeroDatabase::from_entries(&entries).expect("synthetic fill is clean");
    let n = STORM_BATCHES * BATCH_LEN;

    // Cold storm: strict policy, envelope-wide.
    let mut cold_server = DatabaseServer::new(db.clone(), &storm_policy(Fallback::Strict));
    let cold = serve_storm(&mut cold_server, &cold_queries(n, STORM_SEED));
    assert!(cold.iter().all(|r| r.is_ok()), "clean table never errors");

    // Hot storm: strict policy, trajectory dwell.
    let mut hot_server = DatabaseServer::new(db.clone(), &storm_policy(Fallback::Strict));
    let hot = serve_storm(&mut hot_server, &hot_queries(n, STORM_SEED));

    // Degraded storm + closed refinement loop on a holed copy.
    let mut holed = entries;
    let holes = poison_entries(&mut holed, STORM_HOLES, STORM_SEED);
    let holed_db = AeroDatabase::from_entries_masked(&holed).expect("masked build admits holes");
    assert_eq!(holed_db.holes(), STORM_HOLES);
    let mut server = DatabaseServer::new(holed_db, &storm_policy(Fallback::Nearest));
    let storm = degraded_queries(server.database(), BATCH_LEN, STORM_SEED);
    let (dsx, msx, asx) = storm_axes();
    let mut failed_once: Vec<usize> = Vec::new();
    let mut rounds = Vec::new();
    let mut final_digest = 0u64;
    for round in 0..8 {
        let responses = serve_storm(&mut server, &storm);
        let degraded = responses
            .iter()
            .filter(|r| matches!(r, Ok(resp) if resp.degraded))
            .count();
        final_digest = digest_responses(&responses);
        rounds.push(Json::obj([
            ("round", Json::UInt(round as u64)),
            ("degraded", Json::UInt(degraded as u64)),
            ("holes", Json::UInt(server.database().holes() as u64)),
            ("digest", Json::Str(format!("{final_digest:016x}"))),
        ]));
        if server.database().holes() == 0 {
            break;
        }
        // Background refill: drain the hottest queued holes and land the
        // analytic truth, except each `node % 3 == 0` hole fails its first
        // re-run (stays masked, is re-queued by the next blocked query).
        let (_, nm, na) = DB_SHAPE;
        for (d, m, a) in server.drain_refinement() {
            let node = (d * nm + m) * na + a;
            if node % 3 == 0 && !failed_once.contains(&node) {
                failed_once.push(node);
                continue;
            }
            let (force, moment) = analytic_loads(dsx[d], msx[m], asx[a]);
            assert!(server.apply_refinement(d, m, a, force, moment));
        }
    }
    assert_eq!(
        server.database().holes(),
        0,
        "refinement loop must converge"
    );
    // Post-refill answers must be bit-identical to a clean-table server.
    let mut clean = DatabaseServer::new(db, &storm_policy(Fallback::Nearest));
    let clean_digest = digest_responses(&serve_storm(&mut clean, &storm));
    assert_eq!(
        final_digest, clean_digest,
        "refined table must answer exactly like a never-holed one"
    );

    Json::obj([
        (
            "grid",
            Json::arr([DB_SHAPE.0, DB_SHAPE.1, DB_SHAPE.2].map(|x| Json::UInt(x as u64))),
        ),
        ("seed", Json::UInt(STORM_SEED)),
        ("batch_len", Json::UInt(BATCH_LEN as u64)),
        ("storm_queries", Json::UInt(n as u64)),
        (
            "cold",
            Json::obj([
                (
                    "digest",
                    Json::Str(format!("{:016x}", digest_responses(&cold))),
                ),
                ("stats", stats_json(&cold_server)),
            ]),
        ),
        (
            "hot",
            Json::obj([
                (
                    "digest",
                    Json::Str(format!("{:016x}", digest_responses(&hot))),
                ),
                ("distinct", Json::UInt(HOT_DISTINCT as u64)),
                ("stats", stats_json(&hot_server)),
            ]),
        ),
        (
            "refinement",
            Json::obj([
                ("holes_injected", Json::UInt(holes.len() as u64)),
                ("rounds", Json::Arr(rounds)),
                ("matches_clean_table", Json::Bool(true)),
                ("stats", stats_json(&server)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_section_is_deterministic_and_converges() {
        let a = database_storm_section().render_pretty();
        let b = database_storm_section().render_pretty();
        assert_eq!(a, b, "storm section must be byte-stable");
        assert!(a.contains("matches_clean_table"));
    }

    #[test]
    fn hot_storm_is_dominated_by_dedup_and_cache_hits() {
        let db = AeroDatabase::from_entries(&synthetic_entries()).unwrap();
        let mut server = DatabaseServer::new(db, &storm_policy(Fallback::Strict));
        let responses = serve_storm(&mut server, &hot_queries(4 * BATCH_LEN, STORM_SEED));
        assert!(responses.iter().all(|r| r.is_ok()));
        let s = server.stats();
        // Each batch answers at most HOT_DISTINCT queries outside the memo,
        // and the distinct set spans a few cells, so real gathers are rare.
        assert!(s.dedup_hits >= s.queries * 9 / 10, "{s:?}");
        assert!(s.cache_misses < 64, "{s:?}");
    }
}
