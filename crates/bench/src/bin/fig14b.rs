//! Figure 14(b): NSU3D parallel speedup and TFLOP/s on Columbia,
//! 128-2008 CPUs, NUMAlink, for single-grid and 4/5/6-level multigrid.
//!
//! Paper values at 2008 CPUs: speedups 2395 (single grid), 2250 (4-level),
//! 2044 (6-level); computational rates 3.4, 3.1, 2.95, 2.8 TFLOP/s for
//! single/4/5/6-level; 31.3 s per 6-level cycle at 128 CPUs, 1.95 s at
//! 2008 CPUs.

use columbia_bench::{header, nsu3d_profile, use_measured};
use columbia_machine::{simulate_cycle, Fabric, MachineConfig, RunConfig, NSU3D_CPU_COUNTS};

fn main() {
    header(
        "Figure 14(b)",
        "NSU3D scalability + TFLOP/s on Columbia (NUMAlink)",
    );
    let profile6 = nsu3d_profile(use_measured());
    println!("workload: {}\n", profile6.name);
    let machine = MachineConfig::columbia_vortex();

    let variants: Vec<(String, _)> = vec![
        ("single grid".to_string(), profile6.truncated(1, true)),
        ("4-level multigrid".to_string(), profile6.truncated(4, true)),
        ("5-level multigrid".to_string(), profile6.truncated(5, true)),
        ("6-level multigrid".to_string(), profile6.clone()),
    ];

    println!(
        "{:<20}{:>8}{:>12}{:>12}{:>12}",
        "series", "CPUs", "sec/cycle", "speedup", "TFLOP/s"
    );
    for (name, p) in &variants {
        let mut t128 = None;
        for &n in &NSU3D_CPU_COUNTS {
            let b = simulate_cycle(p, &machine, &RunConfig::mpi(n, Fabric::NumaLink4))
                .expect("NUMAlink run feasible");
            let t0 = *t128.get_or_insert(b.seconds);
            println!(
                "{:<20}{:>8}{:>12.2}{:>12.0}{:>12.2}",
                name,
                n,
                b.seconds,
                128.0 * t0 / b.seconds,
                b.flops_per_second() / 1e12
            );
        }
        println!();
    }
    println!(
        "paper: speedups at 2008 CPUs 2395/2250/2044 (single/4-level/6-level);\n\
         rates 3.4/3.1/2.95/2.8 TFLOP/s; 6-level cycle 31.3 s @128 -> 1.95 s @2008.\n\
         shape checks: all series superlinear; fewer levels scale better."
    );
}
