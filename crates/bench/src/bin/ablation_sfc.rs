//! Ablation: Morton vs Peano-Hilbert space-filling curves for Cart3D
//! partitioning (paper §V: "in 3D the Peano-Hilbert SFC is generally
//! preferred"). Measures partition surface (ghost cells) and communication
//! degree on the same adapted mesh.

use columbia_bench::header;
use columbia_cartesian::{build_octree, extract_mesh, CutCellConfig, Geometry, TriMesh};
use columbia_euler::profile::measure_ghosts;
use columbia_mesh::Vec3;
use columbia_sfc::CurveKind;

fn main() {
    header("Ablation", "Morton vs Peano-Hilbert SFC partition quality");
    let prof: Vec<(f64, f64)> = (0..=14)
        .map(|i| {
            let t = std::f64::consts::PI * i as f64 / 14.0;
            (-0.3 * t.cos(), 0.3 * t.sin())
        })
        .collect();
    let geom = Geometry::new(&[TriMesh::body_of_revolution(&prof, 16)]);
    let config = CutCellConfig {
        min_level: 4,
        max_level: 6,
        origin: Vec3::new(-1.0, -1.0, -1.0),
        size: 2.0,
    };
    let tree = build_octree(&geom, &config);
    println!(
        "{:<10}{:>10}{:>22}{:>22}",
        "curve", "cells", "parts=16 ghosts/part", "parts=64 ghosts/part"
    );
    for curve in [CurveKind::Morton, CurveKind::Hilbert] {
        let mesh = extract_mesh(&tree, &geom, curve, 0.1);
        let (g16, d16) = measure_ghosts(&mesh, 16);
        let (g64, d64) = measure_ghosts(&mesh, 64);
        println!(
            "{:<10}{:>10}{:>15.0} (d={:>2}){:>15.0} (d={:>2})",
            format!("{curve:?}"),
            mesh.ncells(),
            g16,
            d16,
            g64,
            d64
        );
    }
    println!("\nexpected: Hilbert partitions show equal or smaller surfaces and\ncommunication degrees (better locality along the curve).");
}
