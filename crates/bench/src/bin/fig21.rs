//! Figure 21: Cart3D parallel speedup across the full 4-node NUMAlink
//! system, 32-2016 CPUs — 4-level multigrid vs single grid.
//!
//! Paper shape: single grid nearly ideal (~1900 at 2016 CPUs); multigrid
//! rolls off above ~688 CPUs and more clearly above 1024 (25M cells give
//! only ~12,000 cells/partition; the coarsest mesh has ~16 cells per
//! partition at 2016 CPUs), posting ~1585 at 2016 CPUs and slightly over
//! 2.4 TFLOP/s.

use columbia_bench::{cart3d_profile, header, use_measured};
use columbia_machine::{
    cart3d_node_span, simulate_cycle, Fabric, MachineConfig, RunConfig, CART3D_CPU_COUNTS,
};

fn main() {
    header(
        "Figure 21",
        "Cart3D multigrid vs single grid, NUMAlink, 32-2016 CPUs",
    );
    let p = cart3d_profile(use_measured());
    let single = p.truncated(1, true);
    let machine = MachineConfig::columbia_vortex();
    println!(
        "{:<10}{:>16}{:>16}{:>14}",
        "CPUs", "4-level MG", "single grid", "MG TFLOP/s"
    );
    let mut rmg = None;
    let mut rsg = None;
    for &n in &CART3D_CPU_COUNTS {
        let mg = simulate_cycle(
            &p,
            &machine,
            &RunConfig::mpi(n, Fabric::NumaLink4).spread_over(cart3d_node_span(n)),
        )
        .unwrap();
        let sg = simulate_cycle(
            &single,
            &machine,
            &RunConfig::mpi(n, Fabric::NumaLink4).spread_over(cart3d_node_span(n)),
        )
        .unwrap();
        let m0 = *rmg.get_or_insert(mg.seconds);
        let s0 = *rsg.get_or_insert(sg.seconds);
        println!(
            "{:<10}{:>16.0}{:>16.0}{:>14.2}",
            n,
            32.0 * m0 / mg.seconds,
            32.0 * s0 / sg.seconds,
            mg.flops_per_second() / 1e12
        );
    }
    println!("\npaper: single grid ~1900 and multigrid ~1585 at 2016 CPUs; ~2.4 TFLOP/s.");
}
