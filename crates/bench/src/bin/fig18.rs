//! Figure 18: NSU3D 72M-point speedup, NUMAlink vs InfiniBand —
//! (a) four-level multigrid, (b) five-level multigrid.

use columbia_bench::{fabric_comparison_table, header, nsu3d_profile, use_measured};
use columbia_machine::NSU3D_CPU_COUNTS;

fn main() {
    let p = nsu3d_profile(use_measured());
    header(
        "Figure 18(a)",
        "four-level multigrid, NUMAlink vs InfiniBand",
    );
    fabric_comparison_table(&p.truncated(4, true), &NSU3D_CPU_COUNTS);
    println!();
    header(
        "Figure 18(b)",
        "five-level multigrid, NUMAlink vs InfiniBand",
    );
    fabric_comparison_table(&p.truncated(5, true), &NSU3D_CPU_COUNTS);
}
