//! Figure 15: relative parallel efficiency of the 72M-point six-level
//! multigrid case on 128 CPUs distributed over four compute nodes —
//! NUMAlink vs InfiniBand, 1 / 2 / 4 OpenMP threads per MPI process.
//!
//! Paper values (baseline = NUMAlink pure MPI): NUMAlink 2 threads 98.4%,
//! 4 threads 87.2%; InfiniBand pure MPI 95.7%, with the 4-thread
//! InfiniBand case actually edging out NUMAlink.

use columbia_bench::{header, nsu3d_profile, use_measured};
use columbia_core::PerformanceStudy;
use columbia_machine::{Fabric, RunConfig};

fn main() {
    header(
        "Figure 15",
        "relative efficiency at 128 CPUs over 4 nodes: fabric x OpenMP threads",
    );
    let thread_parallel = std::env::args().any(|a| a == "--thread-parallel");
    let profile = nsu3d_profile(use_measured());
    let mut study = PerformanceStudy::new(profile, &[128]);
    if thread_parallel {
        // Ablation: the thread-parallel MPI strategy the paper rejected —
        // MPI calls lock and serialise at the thread level, modelled as a
        // much steeper hybrid penalty.
        study.machine.omp_penalty_coeff = 0.10;
        println!("(ablation: thread-parallel MPI communication strategy)\n");
    }
    let baseline = RunConfig::mpi(128, Fabric::NumaLink4).spread_over(4);
    let cases: Vec<(String, RunConfig)> = [
        (
            "NUMAlink, 1 OMP thread",
            RunConfig::mpi(128, Fabric::NumaLink4).spread_over(4),
        ),
        (
            "NUMAlink, 2 OMP threads",
            RunConfig::hybrid(128, Fabric::NumaLink4, 2).spread_over(4),
        ),
        (
            "NUMAlink, 4 OMP threads",
            RunConfig::hybrid(128, Fabric::NumaLink4, 4).spread_over(4),
        ),
        (
            "InfiniBand, 1 OMP thread",
            RunConfig::mpi(128, Fabric::InfiniBand).spread_over(4),
        ),
        (
            "InfiniBand, 2 OMP threads",
            RunConfig::hybrid(128, Fabric::InfiniBand, 2).spread_over(4),
        ),
        (
            "InfiniBand, 4 OMP threads",
            RunConfig::hybrid(128, Fabric::InfiniBand, 4).spread_over(4),
        ),
    ]
    .into_iter()
    .map(|(l, r)| (l.to_string(), r))
    .collect();
    let eff = study.relative_efficiency(128, baseline, &cases);
    println!("{:<28}{:>12}", "configuration", "efficiency");
    for (label, e) in &eff {
        println!("{label:<28}{:>11.1}%", e * 100.0);
    }
    println!(
        "\npaper: NUMAlink 100 / 98.4 / 87.2 %; InfiniBand 95.7% pure MPI,\n\
         4-thread InfiniBand slightly outperforming 4-thread NUMAlink."
    );
}
