//! Ablation: W-cycle vs V-cycle (paper §III: "the multigrid W-cycle has
//! been found to produce superior convergence rates and to be more robust,
//! and is thus used exclusively").

use columbia_bench::header;
use columbia_mesh::{wing_mesh, WingMeshSpec};
use columbia_mg::{CycleParams, CycleType};
use columbia_rans::{RansSolver, SolverParams};

fn main() {
    header("Ablation", "multigrid W-cycle vs V-cycle");
    let mesh = wing_mesh(&WingMeshSpec {
        jitter: 0.0,
        ..WingMeshSpec::with_target_points(16_000)
    });
    let params = SolverParams {
        mach: 0.5,
        ..Default::default()
    };
    for cycle in [CycleType::V, CycleType::W] {
        let mut s = RansSolver::new(mesh.clone(), params, 5);
        let cp = CycleParams {
            cycle,
            ..Default::default()
        };
        let t0 = std::time::Instant::now();
        let h = s.solve(&cp, 1e-12, 40);
        println!(
            "{cycle:?}-cycle: {:.2} orders in {} cycles ({:.2} s, mean reduction {:.3})",
            h.orders_reduced(),
            h.cycles(),
            t0.elapsed().as_secs_f64(),
            h.mean_reduction_factor()
        );
    }
}
