//! Figure 19: coarse multigrid levels run ALONE — (a) the second grid
//! (~9M points), (b) the third grid (~1M points) — NUMAlink vs InfiniBand.
//!
//! This is the paper's key diagnostic: the coarse levels *by themselves*
//! scale worse than the fine grid (less work per partition) but degrade at
//! SIMILAR rates on both fabrics — so intra-level traffic is NOT what
//! kills InfiniBand multigrid; the non-nested inter-grid transfers are.

use columbia_bench::{fabric_comparison_table, header, nsu3d_profile, use_measured};
use columbia_machine::NSU3D_CPU_COUNTS;

fn main() {
    let p = nsu3d_profile(use_measured());
    header("Figure 19(a)", "second grid level alone (~9M points)");
    fabric_comparison_table(&p.single_level(1), &NSU3D_CPU_COUNTS);
    println!();
    header("Figure 19(b)", "third grid level alone (~1M points)");
    fabric_comparison_table(&p.single_level(2), &NSU3D_CPU_COUNTS);
    println!("\npaper shape: both fabrics degrade together on coarse levels;\nthe InfiniBand-specific collapse appears only with inter-grid transfers.");
}
