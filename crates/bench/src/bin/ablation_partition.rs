//! Ablation: independent per-level partitioning + greedy matching (the
//! paper's choice) vs naive nested partitioning for the NSU3D multigrid
//! hierarchy. The paper argues intra-level balance matters more than
//! inter-level transfer locality.

use columbia_bench::header;
use columbia_mesh::{wing_mesh, WingMeshSpec};
use columbia_partition::{match_levels, partition_graph, PartitionConfig, PartitionQuality};
use columbia_rans::{RansSolver, SolverParams};

fn main() {
    header(
        "Ablation",
        "independent vs nested multigrid level partitioning",
    );
    let mesh = wing_mesh(&WingMeshSpec {
        jitter: 0.0,
        ..WingMeshSpec::with_target_points(16_000)
    });
    let solver = RansSolver::new(
        mesh,
        SolverParams {
            mach: 0.5,
            ..Default::default()
        },
        3,
    );
    let k = 16;
    let cfg = PartitionConfig::default();
    let fine = &solver.levels[0];
    let coarse = &solver.levels[1];
    let map = fine.to_coarse.as_ref().unwrap();

    let fine_part = partition_graph(&fine.mesh.dual_graph(), k, &cfg);

    // Independent coarse partition + greedy matching.
    let coarse_indep = partition_graph(&coarse.mesh.dual_graph(), k, &cfg);
    let w = vec![1.0; fine.nvertices()];
    let (matched, aligned) = match_levels(&fine_part, map, &coarse_indep, k, &w);
    let qi = PartitionQuality::measure(&coarse.mesh.dual_graph(), &matched, k);

    // Nested: coarse vertex inherits the majority partition of its children.
    let mut votes = vec![std::collections::HashMap::<u32, f64>::new(); coarse.nvertices()];
    for (v, &c) in map.iter().enumerate() {
        *votes[c as usize].entry(fine_part[v]).or_insert(0.0) += fine.mesh.volumes[v];
    }
    let nested: Vec<u32> = votes
        .iter()
        .map(|m| {
            m.iter()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(&p, _)| p)
                .unwrap_or(0)
        })
        .collect();
    let qn = PartitionQuality::measure(&coarse.mesh.dual_graph(), &nested, k);
    let aligned_nested: f64 = map
        .iter()
        .enumerate()
        .filter(|(v, &c)| nested[c as usize] == fine_part[*v])
        .count() as f64
        / map.len() as f64;

    println!(
        "{:<14}{:>14}{:>12}{:>16}",
        "strategy", "coarse imbal.", "edge cut", "aligned transfer"
    );
    println!(
        "{:<14}{:>14.3}{:>12.0}{:>15.1}%",
        "independent",
        qi.imbalance,
        qi.edge_cut,
        aligned * 100.0
    );
    println!(
        "{:<14}{:>14.3}{:>12.0}{:>15.1}%",
        "nested",
        qn.imbalance,
        qn.edge_cut,
        aligned_nested * 100.0
    );
    println!("\nexpected: nested aligns transfers perfectly but pays in coarse-level\nbalance and cut; independent+matching balances the level (the paper's\nfinding that intra-level partitioning dominates).");
}
