//! Figure 20(b): Cart3D solver scalability on a single 512-CPU Columbia
//! node — OpenMP vs MPI, 32-504 CPUs, 25M-cell SSLV mesh, 4-level
//! multigrid; right axis TFLOP/s.
//!
//! Paper shape: both nearly ideal; MPI shows no appreciable degradation
//! while OpenMP breaks slope at 128 CPUs (Altix "coarse mode" addressing
//! beyond a 128-CPU double cabinet); ~0.75 TFLOP/s at 496 CPUs
//! (>1.5 GFLOP/s per CPU).

use columbia_bench::{cart3d_profile, header, use_measured};
use columbia_machine::{simulate_cycle, Fabric, MachineConfig, ProgModel, RunConfig};

fn main() {
    header("Figure 20(b)", "Cart3D OpenMP vs MPI on one Columbia node");
    let p = cart3d_profile(use_measured());
    println!("workload: {}\n", p.name);
    let machine = MachineConfig::columbia_vortex();
    let counts = [32usize, 64, 96, 128, 192, 256, 384, 504];

    println!(
        "{:<10}{:>14}{:>14}{:>14}{:>14}",
        "CPUs", "MPI speedup", "OMP speedup", "MPI TFLOP/s", "OMP TFLOP/s"
    );
    let mut ref_mpi = None;
    let mut ref_omp = None;
    for &n in &counts {
        let mpi = simulate_cycle(&p, &machine, &RunConfig::mpi(n, Fabric::NumaLink4)).unwrap();
        let omp = simulate_cycle(
            &p,
            &machine,
            &RunConfig {
                ncpus: n,
                fabric: Fabric::NumaLink4,
                model: ProgModel::PureOpenMp,
                min_nodes: 1,
            },
        )
        .unwrap();
        let rm = *ref_mpi.get_or_insert(mpi.seconds);
        let ro = *ref_omp.get_or_insert(omp.seconds);
        println!(
            "{:<10}{:>14.0}{:>14.0}{:>14.2}{:>14.2}",
            n,
            32.0 * rm / mpi.seconds,
            32.0 * ro / omp.seconds,
            mpi.flops_per_second() / 1e12,
            omp.flops_per_second() / 1e12
        );
    }
    println!(
        "\npaper: ~0.75 TFLOP/s at 496 CPUs; OpenMP slope break at 128 CPUs\n\
         (coarse-mode pointer dereferencing), MPI unaffected."
    );
}
