//! Figure 16: NSU3D 72M-point speedup, NUMAlink vs InfiniBand, 1-2 OpenMP
//! threads per MPI process — (a) single grid, (b) six-level multigrid.
//!
//! Paper shape: the single-grid case shows only slight degradation from
//! NUMAlink to InfiniBand and from 1 to 2 threads, staying superlinear at
//! 2008 CPUs; the six-level multigrid case degrades dramatically on
//! InfiniBand at high CPU counts (the non-nested inter-grid transfers hit
//! the fabric's random-ring weakness). Pure-MPI InfiniBand cannot run at
//! 2008 CPUs (1524-rank limit) — marked "-".

use columbia_bench::{fabric_comparison_table, header, nsu3d_profile, use_measured};
use columbia_machine::NSU3D_CPU_COUNTS;

fn main() {
    let p = nsu3d_profile(use_measured());
    header(
        "Figure 16(a)",
        "single-grid scalability, NUMAlink vs InfiniBand",
    );
    fabric_comparison_table(&p.truncated(1, true), &NSU3D_CPU_COUNTS);
    println!();
    header(
        "Figure 16(b)",
        "six-level multigrid scalability, NUMAlink vs InfiniBand",
    );
    fabric_comparison_table(&p, &NSU3D_CPU_COUNTS);
    println!("\npaper shape: (a) all series within a few percent, superlinear;\n(b) InfiniBand collapses at >1000 CPUs while NUMAlink stays near-ideal.");
}
