//! Figure 17: NSU3D 72M-point speedup, NUMAlink vs InfiniBand —
//! (a) two-level multigrid, (b) three-level multigrid.
//!
//! Paper shape: "a gradual degradation of performance is observed as the
//! number of multigrid levels is increased. However, even the two level
//! multigrid case shows substantial degradation between the NUMAlink and
//! InfiniBand results."

use columbia_bench::{fabric_comparison_table, header, nsu3d_profile, use_measured};
use columbia_machine::NSU3D_CPU_COUNTS;

fn main() {
    let p = nsu3d_profile(use_measured());
    header(
        "Figure 17(a)",
        "two-level multigrid, NUMAlink vs InfiniBand",
    );
    fabric_comparison_table(&p.truncated(2, true), &NSU3D_CPU_COUNTS);
    println!();
    header(
        "Figure 17(b)",
        "three-level multigrid, NUMAlink vs InfiniBand",
    );
    fabric_comparison_table(&p.truncated(3, true), &NSU3D_CPU_COUNTS);
}
