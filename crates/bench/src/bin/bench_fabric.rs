//! Contended-fabric benchmark: traced halo traffic replayed through the
//! discrete-event Columbia interconnect, committed as `BENCH_fabric.json`.
//!
//! Usage:
//!   bench_fabric [--json PATH]
//!
//! One section per rank count (2/4/8/16): the synthetic multigrid halo
//! workload runs on the event executor, its teardown ledgers become a
//! packet burst, and the burst is replayed through the contended
//! NUMAlink4 / InfiniBand / 10GigE topologies under each arbiter. Every
//! number derives from the deterministic simulator over deterministic
//! traces — no wall clock anywhere — so a double run is byte-identical;
//! that is the CI smoke check.

use columbia_bench::report::{fabric_contention_section, FABRIC_RANK_COUNTS};
use columbia_rt::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json requires a path").clone());

    columbia_bench::header(
        "fabric contention",
        "traced halo traffic through the discrete-event Columbia interconnect",
    );

    let section = fabric_contention_section(&FABRIC_RANK_COUNTS);
    if let Json::Arr(rows) = &section {
        println!(
            "{:>5}  {:>8}  {:>11}  {:>11}  {:>9}  {:>9}  {:>8}",
            "ranks", "packets", "IB cont(us)", "NL cont(us)", "IB slow", "analytic", "emergent"
        );
        for row in rows {
            let uint = |k: &str| match row.get(k) {
                Some(Json::UInt(n)) => *n,
                _ => 0,
            };
            let num = |k: &str, f: &str| match row.get(k).and_then(|r| r.get(f)) {
                Some(Json::Num(x)) => *x,
                _ => f64::NAN,
            };
            let slow = |k: &str| match row.get(k) {
                Some(Json::Num(x)) => *x,
                _ => f64::NAN,
            };
            println!(
                "{:>5}  {:>8}  {:>11.1}  {:>11.1}  {:>8.2}x  {:>8.2}x  {:>8}",
                uint("ranks"),
                uint("packets"),
                1e6 * num("infiniband", "contended_s"),
                1e6 * num("numalink", "contended_s"),
                slow("ib_slowdown"),
                slow("analytic_ib_slowdown"),
                match row.get("emergent_exceeds_analytic") {
                    Some(Json::Bool(true)) => "yes",
                    _ => "no",
                },
            );
        }
    }

    let report = Json::obj([
        ("bench", Json::Str("fabric".into())),
        ("schema", Json::Str("columbia-bench-fabric/1".into())),
        (
            "rank_counts",
            Json::arr(FABRIC_RANK_COUNTS.iter().map(|&n| Json::UInt(n as u64))),
        ),
        ("arbiter", Json::Str("round_robin".into())),
        ("rows", section),
    ]);

    if let Some(path) = json_path {
        std::fs::write(&path, report.render_pretty()).expect("write report");
        println!("wrote {path}");
    }
}
