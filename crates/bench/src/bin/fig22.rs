//! Figure 22: Cart3D 4-level multigrid — NUMAlink vs InfiniBand, 32-2016
//! CPUs, pure MPI.
//!
//! Paper shape: identical on one node (32-496 CPUs, no box-to-box
//! traffic); InfiniBand lags across 2 nodes, with the 508-CPU two-node
//! case actually UNDER-performing the 496-CPU single-node case; a further
//! drop across 4 nodes; InfiniBand cannot exceed 1524 MPI ranks (eq. 1).

use columbia_bench::{cart3d_profile, header, use_measured};
use columbia_machine::{
    cart3d_node_span, simulate_cycle, Fabric, MachineConfig, RunConfig, CART3D_CPU_COUNTS,
};

fn main() {
    header("Figure 22", "Cart3D multigrid: NUMAlink vs InfiniBand");
    let p = cart3d_profile(use_measured());
    let machine = MachineConfig::columbia_vortex();
    println!(
        "{:<10}{:>14}{:>14}{:>10}",
        "CPUs", "NUMAlink", "InfiniBand", "nodes"
    );
    let mut rn = None;
    let mut ri = None;
    for &n in &CART3D_CPU_COUNTS {
        let nl = simulate_cycle(
            &p,
            &machine,
            &RunConfig::mpi(n, Fabric::NumaLink4).spread_over(cart3d_node_span(n)),
        )
        .unwrap();
        let n0 = *rn.get_or_insert(nl.seconds);
        let ib = simulate_cycle(
            &p,
            &machine,
            &RunConfig::mpi(n, Fabric::InfiniBand).spread_over(cart3d_node_span(n)),
        );
        let ibs = match &ib {
            Ok(b) => {
                let i0 = *ri.get_or_insert(b.seconds);
                format!("{:.0}", 32.0 * i0 / b.seconds)
            }
            Err(_) => "-".to_string(), // beyond the 1524-rank IB limit
        };
        println!(
            "{:<10}{:>14.0}{:>14}{:>10}",
            n,
            32.0 * n0 / nl.seconds,
            ibs,
            cart3d_node_span(n)
        );
    }
    println!(
        "\npaper shape: curves coincide through 496 CPUs (one node); IB dips AT\n\
         508 CPUs (two nodes) below the 496-CPU point; further 4-node penalty;\n\
         IB series ends at 1524 CPUs (MPI connection limit)."
    );
}
