//! Halo-exchange benchmark: the pooled/coalesced hot path against the
//! seed per-field allocating path, on a real wing-mesh decomposition.
//!
//! Usage:
//!   bench_exchange [--json PATH] [--stable]
//!
//! Two sections:
//!
//! * **microbench** — 2-rank ping-pong `exchange_copy` at several payload
//!   sizes, pooled vs seed (`_ref`), isolating the per-message allocation
//!   and packing cost;
//! * **macrobench** — 8 ranks exchanging the RANS smoothing sweep's
//!   field sequence (gradient accumulate + copy at width 9, residual 6 +
//!   diagonal 37 coalesced, diagonal 37 + state 6 copies coalesced) over
//!   a partitioned wing mesh: the seed path sends one freshly allocated
//!   message per field (six per peer per sweep), the pooled path recycles
//!   every payload and rides four messages per peer per sweep.
//!
//! Counters (message/byte counts, pool hits/misses, coalescing) are
//! deterministic and always emitted; wall-clock timings go into a
//! `measured` section that `--stable` omits, so a double run under
//! `--stable` must be byte-identical — that is the CI smoke check.

use columbia_comm::{decompose, run_ranks, CommStats, Decomposition, ExchangePlan, Rank};
use columbia_mesh::{wing_mesh, WingMeshSpec};
use columbia_rans::parallel::partition_mesh_line_aware;
use columbia_rt::Json;
use std::sync::Arc;
use std::time::Instant;

/// Ranks in the macrobench (the acceptance criterion's world size).
const RANKS: usize = 8;
/// Measured sweeps per macrobench repetition (after one warm-up sweep).
const SWEEPS: usize = 800;
/// Timing repetitions; the minimum is reported.
const REPS: usize = 8;
/// Microbench payload sizes (exchanged entries per side, width 6).
const MICRO_ENTRIES: [usize; 3] = [64, 1024, 16384];
/// Microbench iterations per repetition.
const MICRO_ITERS: usize = 1000;

fn wing_decomp(nparts: usize) -> Decomposition {
    let mesh = wing_mesh(&WingMeshSpec {
        jitter: 0.0,
        ..WingMeshSpec::with_target_points(1_000)
    });
    let part = partition_mesh_line_aware(&mesh, nparts, 10.0);
    let pairs: Vec<(u32, u32)> = mesh.edges.iter().map(|e| (e.a, e.b)).collect();
    decompose(mesh.nvertices(), &part, nparts, &pairs)
}

/// Per-rank working fields with the smoothing sweep's widths.
struct Fields {
    grad: Vec<[f64; 9]>,
    res: Vec<[f64; 6]>,
    diag: Vec<[f64; 37]>,
    u: Vec<[f64; 6]>,
}

impl Fields {
    fn new(decomp: &Decomposition, p: usize) -> Self {
        let n = decomp.local_to_global[p].len();
        Fields {
            grad: vec![[1.0; 9]; n],
            res: vec![[1.0; 6]; n],
            diag: vec![[1.0; 37]; n],
            u: vec![[1.0; 6]; n],
        }
    }
}

/// The smoothing sweep's exchange sequence on the pooled/coalesced path:
/// 4 messages per peer (residual + diagonal accumulate together, and the
/// dependency-free trailing copies of diagonal + state ride together),
/// zero steady-state allocations.
fn pooled_sweep(plan: &ExchangePlan, rank: &mut Rank, f: &mut Fields) {
    plan.exchange_add::<9>(rank, 10, &mut f.grad);
    plan.exchange_copy::<9>(rank, 11, &mut f.grad);
    plan.exchange_add2::<6, 37>(rank, 12, &mut f.res, &mut f.diag);
    plan.exchange_copy2::<37, 6>(rank, 14, &mut f.diag, &mut f.u);
}

/// The same sequence on the seed path: one message per peer per field
/// (6 total), each in a freshly allocated buffer.
fn seed_sweep(plan: &ExchangePlan, rank: &mut Rank, f: &mut Fields) {
    plan.exchange_add_ref::<9>(rank, 10, &mut f.grad);
    plan.exchange_copy_ref::<9>(rank, 11, &mut f.grad);
    plan.exchange_add_ref::<6>(rank, 12, &mut f.res);
    plan.exchange_add_ref::<37>(rank, 13, &mut f.diag);
    plan.exchange_copy_ref::<37>(rank, 14, &mut f.diag);
    plan.exchange_copy_ref::<6>(rank, 15, &mut f.u);
}

/// Run `SWEEPS` sweeps on every rank (after one untimed warm-up sweep);
/// returns (wall seconds, per-rank stats for the measured sweeps only).
fn run_macro(decomp: &Arc<Decomposition>, pooled: bool) -> (f64, Vec<CommStats>) {
    let d = Arc::clone(decomp);
    let start = Instant::now();
    let stats = run_ranks(RANKS, move |rank| {
        let p = rank.rank();
        let plan = &d.plans[p];
        let mut f = Fields::new(&d, p);
        let sweep: fn(&ExchangePlan, &mut Rank, &mut Fields) =
            if pooled { pooled_sweep } else { seed_sweep };
        sweep(plan, rank, &mut f);
        rank.take_stats(); // discard warm-up counters
        for _ in 0..SWEEPS {
            sweep(plan, rank, &mut f);
        }
        rank.take_stats()
    });
    (start.elapsed().as_secs_f64(), stats)
}

/// 2-rank ping-pong copy of `entries` 6-wide rows; returns wall seconds
/// for `MICRO_ITERS` iterations after one warm-up.
fn run_micro(entries: usize, pooled: bool) -> f64 {
    // A 2-partition chain whose single boundary exchanges `entries` rows:
    // partition 0 owns vertices 0..entries, partition 1 the rest, with one
    // edge per boundary row.
    let n = 2 * entries;
    let edges: Vec<(u32, u32)> = (0..entries as u32)
        .map(|i| (i, i + entries as u32))
        .collect();
    let part: Vec<u32> = (0..n).map(|v| (v >= entries) as u32).collect();
    let decomp = Arc::new(decompose(n, &part, 2, &edges));
    let start = Instant::now();
    run_ranks(2, move |rank| {
        let p = rank.rank();
        let plan = &decomp.plans[p];
        let mut data = vec![[1.0f64; 6]; decomp.local_to_global[p].len()];
        for it in 0..=MICRO_ITERS {
            if it == 1 {
                // warm-up done; the clock outside covers everything, but
                // the pool is hot from here on either way.
            }
            if pooled {
                plan.exchange_copy::<6>(rank, 7, &mut data);
            } else {
                plan.exchange_copy_ref::<6>(rank, 7, &mut data);
            }
        }
    });
    start.elapsed().as_secs_f64()
}

fn min_of(mut f: impl FnMut() -> f64) -> f64 {
    (0..REPS).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn pool_json(total: &CommStats) -> Json {
    let p = total.pool();
    Json::obj([
        ("hits", Json::UInt(p.hits)),
        ("misses", Json::UInt(p.misses)),
        ("recycled", Json::UInt(p.recycled)),
        ("coalesced_msgs", Json::UInt(p.coalesced_msgs)),
        ("coalesced_fields", Json::UInt(p.coalesced_fields)),
    ])
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut stable = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = Some(args.next().expect("--json requires a path")),
            "--stable" => stable = true,
            other => panic!("unknown argument {other}"),
        }
    }

    columbia_bench::header(
        "exchange bench",
        "pooled/coalesced halo exchange vs the seed per-field path",
    );

    let decomp = Arc::new(wing_decomp(RANKS));
    let nvertices: usize = decomp.n_owned.iter().sum();

    // Deterministic counters from single stats runs.
    let (_, seed_stats) = run_macro(&decomp, false);
    let (_, pooled_stats) = run_macro(&decomp, true);
    let sum = |stats: &[CommStats]| {
        let mut t = CommStats::default();
        for s in stats {
            t.merge(s);
        }
        t
    };
    let seed_total = sum(&seed_stats);
    let pooled_total = sum(&pooled_stats);
    let steady_misses = pooled_total.pool().misses;
    assert_eq!(
        steady_misses, 0,
        "pooled macrobench must be allocation-free after warm-up"
    );

    println!("macro: {RANKS} ranks, {nvertices} vertices, {SWEEPS} sweeps/run");
    println!(
        "  seed   path: {:>8} msgs, {:>12} bytes",
        seed_total.total_msgs(),
        seed_total.total_bytes()
    );
    println!(
        "  pooled path: {:>8} msgs, {:>12} bytes ({} coalesced, {} pool hits, {} misses)",
        pooled_total.total_msgs(),
        pooled_total.total_bytes(),
        pooled_total.pool().coalesced_msgs,
        pooled_total.pool().hits,
        steady_misses,
    );

    let mut root = Json::obj([
        ("bench", Json::Str("exchange".into())),
        (
            "config",
            Json::obj([
                ("ranks", Json::UInt(RANKS as u64)),
                ("sweeps", Json::UInt(SWEEPS as u64)),
                ("reps", Json::UInt(REPS as u64)),
                ("vertices", Json::UInt(nvertices as u64)),
                ("micro_iters", Json::UInt(MICRO_ITERS as u64)),
            ]),
        ),
        (
            "deterministic",
            Json::obj([
                (
                    "macro",
                    Json::obj([
                        ("seed_msgs", Json::UInt(seed_total.total_msgs())),
                        ("seed_bytes", Json::UInt(seed_total.total_bytes())),
                        ("pooled_msgs", Json::UInt(pooled_total.total_msgs())),
                        ("pooled_bytes", Json::UInt(pooled_total.total_bytes())),
                        ("steady_state_pool_misses", Json::UInt(steady_misses)),
                        ("pool", pool_json(&pooled_total)),
                    ]),
                ),
                (
                    "micro",
                    Json::arr(MICRO_ENTRIES.iter().map(|&e| {
                        Json::obj([
                            ("entries", Json::UInt(e as u64)),
                            ("width", Json::UInt(6)),
                            ("bytes_per_msg", Json::UInt((e * 6 * 8) as u64)),
                        ])
                    })),
                ),
            ]),
        ),
    ]);

    if !stable {
        let seed_s = min_of(|| run_macro(&decomp, false).0);
        let pooled_s = min_of(|| run_macro(&decomp, true).0);
        let speedup = seed_s / pooled_s;
        println!(
            "  wall: seed {:.4} s, pooled {:.4} s -> {speedup:.2}x speedup",
            seed_s, pooled_s
        );

        let mut micro = Vec::new();
        for &e in &MICRO_ENTRIES {
            let ref_s = min_of(|| run_micro(e, false));
            let pool_s = min_of(|| run_micro(e, true));
            println!(
                "micro: {e:>6} entries: ref {:>10.2} µs/op, pooled {:>10.2} µs/op ({:.2}x)",
                ref_s * 1e6 / MICRO_ITERS as f64,
                pool_s * 1e6 / MICRO_ITERS as f64,
                ref_s / pool_s
            );
            micro.push(Json::obj([
                ("entries", Json::UInt(e as u64)),
                ("ref_s", Json::Num(ref_s)),
                ("pooled_s", Json::Num(pool_s)),
                ("speedup", Json::Num(ref_s / pool_s)),
            ]));
        }
        root.set(
            "measured",
            Json::obj([
                ("macro_seed_s", Json::Num(seed_s)),
                ("macro_pooled_s", Json::Num(pooled_s)),
                ("macro_speedup", Json::Num(speedup)),
                ("micro", Json::Arr(micro)),
            ]),
        );
    }

    if let Some(path) = json_path {
        std::fs::write(&path, root.render_pretty()).expect("write bench json");
        println!("wrote {path}");
    }
}
