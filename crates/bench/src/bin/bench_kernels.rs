//! Kernel microbenchmark: the SoA/SIMD batch kernels against their scalar
//! references across working-set sizes spanning the columbia cache
//! model's L3 crossover.
//!
//! Usage:
//!   bench_kernels [--json PATH] [--stable]
//!
//! Two sections:
//!
//! * **deterministic** — per kernel and size: software FLOP counts for
//!   one pass, working-set bytes, FNV parity digests of the scalar and
//!   batch outputs (asserted equal: the batch kernels replay the scalar
//!   operation order per lane), and the roofline-predicted sustained
//!   GFLOP/s of one Columbia CPU at that working-set size;
//! * **measured** — min-of-reps wall time per pass for both paths,
//!   achieved GFLOP/s against the roofline prediction, and the
//!   batch-over-scalar speedup. `--stable` omits this section, so a
//!   double run under `--stable` must be byte-identical (the CI smoke
//!   check).
//!
//! For the `resident_sweep6` rows the two columns are storage layouts,
//! not instruction paths: "scalar" is the convert-at-boundary baseline
//! (state round-tripped through AoS around every sweep) and "simd" is
//! the plane-resident sweep; both run the batched kernels, so the
//! speedup is the conversion tax the plane-resident migration removed.

use columbia_bench::kernels::{
    axpy_pass_flops, axpy_scalar, axpy_set, axpy_simd, digest_lines, digest_states, line_set,
    line_tridiag_scalar, line_tridiag_simd, point_lu_pass_flops, point_lu_scalar, point_lu_simd,
    point_set, predicted_gflops, sweep_convert_at_boundary, sweep_level, sweep_pass_flops,
    sweep_reset, sweep_resident, sweep_working_set_bytes, AXPY_SIZES, LINE_COUNTS, LINE_LEN, NB,
    POINT_SIZES, SWEEP_PASSES, SWEEP_POINTS,
};
use columbia_linalg::{flops, BlockTridiag, TridiagBatch};
use columbia_rt::Json;
use std::time::Instant;

/// Timing repetitions; the minimum is reported.
const REPS: usize = 9;
/// Timing repetitions for the full-sweep rows (each pass is whole
/// smoothing sweeps on a ~100k-point mesh; three reps bound the runtime).
const SWEEP_REPS: usize = 3;
/// Seed for every input set.
const SEED: u64 = 0xC01D_B10C;

/// One kernel/size row of the report.
struct Row {
    kernel: &'static str,
    size: usize,
    working_set_bytes: u64,
    scalar_flops: u64,
    simd_flops: u64,
    digest: u64,
    predicted_gflops: f64,
    scalar_s: Option<f64>,
    simd_s: Option<f64>,
}

impl Row {
    fn speedup(&self) -> Option<f64> {
        match (self.scalar_s, self.simd_s) {
            (Some(a), Some(b)) if b > 0.0 => Some(a / b),
            _ => None,
        }
    }

    fn json(&self) -> Json {
        let mut j = Json::obj([
            ("kernel", Json::Str(self.kernel.into())),
            ("size", Json::UInt(self.size as u64)),
            ("working_set_bytes", Json::UInt(self.working_set_bytes)),
            ("scalar_flops", Json::UInt(self.scalar_flops)),
            ("simd_flops", Json::UInt(self.simd_flops)),
            ("digest", Json::Str(format!("{:016x}", self.digest))),
            ("predicted_gflops", Json::Num(self.predicted_gflops)),
        ]);
        if let (Some(a), Some(b), Some(s)) = (self.scalar_s, self.simd_s, self.speedup()) {
            j.set("scalar_s", Json::Num(a));
            j.set("simd_s", Json::Num(b));
            j.set(
                "scalar_achieved_gflops",
                Json::Num(self.scalar_flops as f64 / a / 1e9),
            );
            j.set(
                "simd_achieved_gflops",
                Json::Num(self.simd_flops as f64 / b / 1e9),
            );
            j.set("speedup", Json::Num(s));
        }
        j
    }
}

fn min_of_reps(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn min_of(f: impl FnMut() -> f64) -> f64 {
    min_of_reps(REPS, f)
}

fn point_rows(measure: bool) -> Vec<Row> {
    POINT_SIZES
        .iter()
        .map(|&n| {
            let set = point_set(n, SEED);
            let mut a = vec![[0.0; NB]; n];
            let mut b = vec![[0.0; NB]; n];
            flops::take();
            point_lu_scalar(&set, &mut a);
            let scalar_flops = flops::take();
            point_lu_simd(&set, &mut b);
            let simd_flops = flops::take();
            let (da, db) = (digest_states(&a), digest_states(&b));
            assert_eq!(da, db, "point_lu6 parity broke at n = {n}");
            assert_eq!(scalar_flops, point_lu_pass_flops(n));
            let (mut scalar_s, mut simd_s) = (None, None);
            if measure {
                scalar_s = Some(min_of(|| {
                    let t = Instant::now();
                    point_lu_scalar(&set, &mut a);
                    t.elapsed().as_secs_f64()
                }));
                simd_s = Some(min_of(|| {
                    let t = Instant::now();
                    point_lu_simd(&set, &mut b);
                    t.elapsed().as_secs_f64()
                }));
            }
            Row {
                kernel: "point_lu6",
                size: n,
                working_set_bytes: set.working_set_bytes(),
                scalar_flops,
                simd_flops,
                digest: da,
                predicted_gflops: predicted_gflops(set.working_set_bytes() as f64),
                scalar_s,
                simd_s,
            }
        })
        .collect()
}

fn line_rows(measure: bool) -> Vec<Row> {
    LINE_COUNTS
        .iter()
        .map(|&nlines| {
            let set = line_set(nlines, SEED);
            let mut a = vec![vec![[0.0; NB]; LINE_LEN]; nlines];
            let mut b = vec![vec![[0.0; NB]; LINE_LEN]; nlines];
            let mut scalar_scratch = BlockTridiag::new();
            let mut batch_scratch = TridiagBatch::new();
            flops::take();
            line_tridiag_scalar(&set, &mut scalar_scratch, &mut a);
            let scalar_flops = flops::take();
            line_tridiag_simd(&set, &mut batch_scratch, &mut b);
            let simd_flops = flops::take();
            let (da, db) = (digest_lines(&a), digest_lines(&b));
            assert_eq!(da, db, "line_tridiag6 parity broke at nlines = {nlines}");
            let (mut scalar_s, mut simd_s) = (None, None);
            if measure {
                scalar_s = Some(min_of(|| {
                    let t = Instant::now();
                    line_tridiag_scalar(&set, &mut scalar_scratch, &mut a);
                    t.elapsed().as_secs_f64()
                }));
                simd_s = Some(min_of(|| {
                    let t = Instant::now();
                    line_tridiag_simd(&set, &mut batch_scratch, &mut b);
                    t.elapsed().as_secs_f64()
                }));
            }
            Row {
                kernel: "line_tridiag6",
                size: nlines,
                working_set_bytes: set.working_set_bytes(),
                scalar_flops,
                simd_flops,
                digest: da,
                predicted_gflops: predicted_gflops(set.working_set_bytes() as f64),
                scalar_s,
                simd_s,
            }
        })
        .collect()
}

fn axpy_rows(measure: bool) -> Vec<Row> {
    AXPY_SIZES
        .iter()
        .map(|&n| {
            let set = axpy_set(n, SEED);
            let mut a = set.y0.clone();
            let mut b = set.y0.clone();
            flops::take();
            axpy_scalar(0.37, &set.x, &mut a);
            let scalar_flops = flops::take();
            axpy_simd(0.37, &set.x, &mut b);
            let simd_flops = flops::take();
            let (da, db) = (digest_states(&a), digest_states(&b));
            assert_eq!(da, db, "rk_axpy parity broke at n = {n}");
            assert_eq!(scalar_flops, axpy_pass_flops(n));
            let (mut scalar_s, mut simd_s) = (None, None);
            if measure {
                scalar_s = Some(min_of(|| {
                    let mut y = set.y0.clone();
                    let t = Instant::now();
                    axpy_scalar(0.37, &set.x, &mut y);
                    t.elapsed().as_secs_f64()
                }));
                simd_s = Some(min_of(|| {
                    let mut y = set.y0.clone();
                    let t = Instant::now();
                    axpy_simd(0.37, &set.x, &mut y);
                    t.elapsed().as_secs_f64()
                }));
            }
            Row {
                kernel: "rk_axpy",
                size: n,
                working_set_bytes: set.working_set_bytes(),
                scalar_flops,
                simd_flops,
                digest: da,
                predicted_gflops: predicted_gflops(set.working_set_bytes() as f64),
                scalar_s,
                simd_s,
            }
        })
        .collect()
}

fn sweep_rows(measure: bool) -> Vec<Row> {
    SWEEP_POINTS
        .iter()
        .map(|&target| {
            let mut lvl = sweep_level(target);
            let n = lvl.mesh.nvertices();
            let ws = sweep_working_set_bytes(&lvl);
            // Deterministic part: FLOPs of one resident pass off the
            // level's own counter, and the post-pass state digest.
            let sweep_flops = sweep_pass_flops(&mut lvl);
            let digest = digest_states(&lvl.u.to_aos());
            // The baseline must land on exactly the same bits: same
            // sweeps, only the storage layout around them differs.
            sweep_reset(&mut lvl);
            let mut u_aos = lvl.u.to_aos();
            let mut res_aos = lvl.res.to_aos();
            sweep_convert_at_boundary(&mut lvl, &mut u_aos, &mut res_aos);
            assert_eq!(
                digest,
                digest_states(&u_aos),
                "resident_sweep6 parity broke at n = {n}"
            );
            let (mut scalar_s, mut simd_s) = (None, None);
            if measure {
                // Passes take hundreds of ms, so reps alternate variants:
                // clock/turbo drift over the run then biases both mins
                // equally instead of penalising whichever ran last.
                let (mut base, mut resident) = (f64::INFINITY, f64::INFINITY);
                for _ in 0..SWEEP_REPS {
                    sweep_reset(&mut lvl);
                    let t = Instant::now();
                    sweep_resident(&mut lvl);
                    resident = resident.min(t.elapsed().as_secs_f64());
                    sweep_reset(&mut lvl);
                    let mut u_aos = lvl.u.to_aos();
                    let mut res_aos = lvl.res.to_aos();
                    let t = Instant::now();
                    sweep_convert_at_boundary(&mut lvl, &mut u_aos, &mut res_aos);
                    base = base.min(t.elapsed().as_secs_f64());
                }
                scalar_s = Some(base);
                simd_s = Some(resident);
            }
            Row {
                kernel: "resident_sweep6",
                size: n,
                working_set_bytes: ws,
                scalar_flops: sweep_flops,
                simd_flops: sweep_flops,
                digest,
                predicted_gflops: predicted_gflops(ws as f64),
                scalar_s,
                simd_s,
            }
        })
        .collect()
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut stable = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = Some(args.next().expect("--json requires a path")),
            "--stable" => stable = true,
            other => panic!("unknown argument {other}"),
        }
    }

    columbia_bench::header(
        "kernel bench",
        "SoA/SIMD batch kernels vs scalar references, with roofline targets",
    );

    let measure = !stable;
    let mut rows = point_rows(measure);
    rows.extend(line_rows(measure));
    rows.extend(axpy_rows(measure));
    rows.extend(sweep_rows(measure));

    println!(
        "{:<16} {:>9} {:>12} {:>12} {:>10}  parity digest",
        "kernel", "size", "ws_bytes", "flops/pass", "pred GF/s"
    );
    for r in &rows {
        println!(
            "{:<16} {:>9} {:>12} {:>12} {:>10.3}  {:016x}",
            r.kernel, r.size, r.working_set_bytes, r.scalar_flops, r.predicted_gflops, r.digest
        );
    }
    if measure {
        println!();
        println!(
            "{:<16} {:>9} {:>12} {:>12} {:>12} {:>8}",
            "kernel", "size", "scalar µs", "simd µs", "achvd GF/s", "speedup"
        );
        for r in &rows {
            let (a, b) = (r.scalar_s.unwrap(), r.simd_s.unwrap());
            println!(
                "{:<16} {:>9} {:>12.2} {:>12.2} {:>12.3} {:>7.2}x",
                r.kernel,
                r.size,
                a * 1e6,
                b * 1e6,
                r.simd_flops as f64 / b / 1e9,
                r.speedup().unwrap()
            );
        }
    }

    let mut root = Json::obj([
        ("bench", Json::Str("kernels".into())),
        (
            "config",
            Json::obj([
                ("reps", Json::UInt(REPS as u64)),
                ("sweep_reps", Json::UInt(SWEEP_REPS as u64)),
                ("sweep_passes", Json::UInt(SWEEP_PASSES as u64)),
                ("seed", Json::UInt(SEED)),
                ("line_len", Json::UInt(LINE_LEN as u64)),
                ("lanes", Json::UInt(columbia_linalg::LANES as u64)),
            ]),
        ),
        (
            "deterministic",
            Json::arr(rows.iter().map(|r| {
                Json::obj([
                    ("kernel", Json::Str(r.kernel.into())),
                    ("size", Json::UInt(r.size as u64)),
                    ("working_set_bytes", Json::UInt(r.working_set_bytes)),
                    ("scalar_flops", Json::UInt(r.scalar_flops)),
                    ("simd_flops", Json::UInt(r.simd_flops)),
                    ("digest", Json::Str(format!("{:016x}", r.digest))),
                    ("predicted_gflops", Json::Num(r.predicted_gflops)),
                ])
            })),
        ),
    ]);
    if measure {
        root.set("measured", Json::arr(rows.iter().map(Row::json)));
    }

    if let Some(path) = json_path {
        std::fs::write(&path, root.render_pretty()).expect("write bench json");
        println!("wrote {path}");
    }
}
